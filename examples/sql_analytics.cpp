// Example: scheduling a burst of analytical SQL jobs on a simulated 20-node
// cluster, comparing Ursa's fine-grained scheduling with an executor-model
// baseline - the paper's headline scenario at a friendly scale.
//
//   $ ./examples/sql_analytics [num_jobs]
#include <cstdio>
#include <cstdlib>

#include "src/common/table.h"
#include "src/driver/experiment.h"
#include "src/workloads/tpch.h"

int main(int argc, char** argv) {
  using namespace ursa;
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 30;

  TpchWorkloadConfig wc;
  wc.num_jobs = num_jobs;
  wc.submit_interval = 5.0;
  wc.seed = 7;
  const Workload workload = MakeTpchWorkload(wc);
  std::printf("submitting %d TPC-H-shaped jobs, one every %.0f s, to 20 workers\n\n",
              num_jobs, wc.submit_interval);

  Table table({"scheme", "makespan(s)", "avgJCT(s)", "UEcpu%", "SEcpu%"});
  for (const auto& [name, config] :
       std::vector<std::pair<std::string, ExperimentConfig>>{
           {"Ursa (EJF)", UrsaEjfConfig()},
           {"Ursa (SRJF)", UrsaSrjfConfig()},
           {"YARN+Spark-like", SparkLikeConfig()},
       }) {
    const ExperimentResult result = RunExperiment(workload, config, name);
    table.Row()
        .Cell(name)
        .Cell(result.makespan(), 1)
        .Cell(result.avg_jct(), 1)
        .Cell(result.efficiency.ue_cpu, 1)
        .Cell(result.efficiency.se_cpu, 1);
  }
  table.Print("SQL analytics burst");

  std::printf(
      "\nUrsa keeps every allocated core busy (UE ~100%%): resources are\n"
      "acquired per monotask exactly when used and returned immediately,\n"
      "so one job's network phase overlaps another job's compute.\n");
  return 0;
}
