// Quickstart: word count with the typed dataset API, executed for real by
// the LocalRuntime (per-resource monotask queues on a thread pool).
//
//   $ ./examples/quickstart
//
// The same program structure the paper shows for ReduceByKey (section
// 4.1.2) is built under the hood: a serialize CPU op, a sync network
// shuffle, and a deserialize/combine CPU op.
#include <cstdio>
#include <string>
#include <vector>

#include "src/api/dataset.h"

int main() {
  ursa::UrsaContext ctx;

  std::vector<std::vector<std::string>> documents = {
      {"monotasks make scheduling decisions simple",
       "fine grained scheduling improves utilization"},
      {"the scheduler allocates resources to monotasks",
       "utilization improves when resources are released promptly"},
      {"scheduling is fine grained and timely"},
  };

  auto words = ctx.Parallelize<std::string>(documents, "documents")
                   .FlatMap([](const std::string& line) {
                     std::vector<std::string> out;
                     size_t start = 0;
                     while (start < line.size()) {
                       size_t end = line.find(' ', start);
                       if (end == std::string::npos) {
                         end = line.size();
                       }
                       if (end > start) {
                         out.push_back(line.substr(start, end - start));
                       }
                       start = end + 1;
                     }
                     return out;
                   });

  auto counts = words.Map([](const std::string& w) { return std::make_pair(w, 1); })
                    .ReduceByKey([](int a, int b) { return a + b; }, /*out_partitions=*/4);

  std::printf("word counts:\n");
  for (const auto& [word, count] : counts.Collect()) {
    std::printf("  %-12s %d\n", word.c_str(), count);
  }

  std::printf("\nexecution used %lld CPU, %lld network, %lld disk monotasks\n",
              static_cast<long long>(ctx.runtime().monotasks_executed(ursa::ResourceType::kCpu)),
              static_cast<long long>(
                  ctx.runtime().monotasks_executed(ursa::ResourceType::kNetwork)),
              static_cast<long long>(
                  ctx.runtime().monotasks_executed(ursa::ResourceType::kDisk)));
  return 0;
}
