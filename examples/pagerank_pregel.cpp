// Example: PageRank with the Pregel-style vertex-centric API, executed for
// real by the LocalRuntime, then the same workload class simulated as a
// cluster job under Ursa's scheduler.
//
//   $ ./examples/pagerank_pregel
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/api/pregel.h"
#include "src/common/rng.h"
#include "src/driver/experiment.h"
#include "src/workloads/graph.h"

int main() {
  using namespace ursa;

  // --- Part 1: real PageRank on a small synthetic power-law graph. ---
  const int n = 2000;
  const int partitions = 8;
  Rng rng(99);
  std::vector<std::vector<GraphVertex>> parts(partitions);
  for (int64_t v = 0; v < n; ++v) {
    GraphVertex gv;
    gv.id = v;
    const int degree = 1 + static_cast<int>(8.0 * rng.SkewFactor(4.0));
    for (int e = 0; e < degree; ++e) {
      // Preferential-attachment flavor: low ids are hubs.
      const int64_t dst = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(1 + rng.UniformInt(static_cast<uint64_t>(n)))));
      if (dst != v) {
        gv.neighbors.push_back(dst);
      }
    }
    if (gv.neighbors.empty()) {
      gv.neighbors.push_back((v + 1) % n);
    }
    parts[PregelPartitionOf(v, partitions)].push_back(std::move(gv));
  }

  auto ranks = RunPregel<double, double>(
      parts, /*supersteps=*/20, [](int64_t, int) { return 1.0 / n; },
      [](PregelVertex<double>& v, const std::vector<double>& inbox, int step,
         const MessageSender<double>& send) {
        if (step > 0) {
          double sum = 0.0;
          for (double m : inbox) {
            sum += m;
          }
          v.value = 0.15 / n + 0.85 * sum;
        }
        for (int64_t nb : v.neighbors) {
          send(nb, v.value / static_cast<double>(v.neighbors.size()));
        }
      });

  std::sort(ranks.begin(), ranks.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("top PageRank vertices (of %d):\n", n);
  for (int i = 0; i < 5; ++i) {
    std::printf("  vertex %-6lld rank %.5f\n", static_cast<long long>(ranks[i].first),
                ranks[i].second);
  }

  // --- Part 2: the same workload class at cluster scale, simulated. ---
  Workload workload;
  workload.name = "pagerank-cluster";
  WorkloadJob job;
  job.spec = BuildGraphJob(PagerankParams(), 5);
  workload.jobs.push_back(std::move(job));
  const ExperimentResult result = RunExperiment(workload, UrsaEjfConfig(), "ursa");
  std::printf(
      "\ncluster-scale PageRank (80 GB edges, 20 workers) simulated under "
      "Ursa:\n  JCT %.1f s, cluster CPU utilization %.1f%%\n",
      result.records[0].jct(), result.efficiency.se_cpu * result.efficiency.ue_cpu / 100.0);
  return 0;
}
