// Example: building a job directly from the paper's primitives (section
// 4.1.1) - CreateData / CreateOp / To(sync|async) - inspecting the compiled
// monotask plan (Figure 3's structure), and simulating its execution.
//
//   $ ./examples/custom_dataflow
#include <cstdio>

#include "src/common/units.h"
#include "src/driver/experiment.h"

int main() {
  using namespace ursa;

  // A two-stage dataflow: scan+filter 64 partitions, shuffle, aggregate -
  // the reduceByKey skeleton from section 4.1.2.
  JobSpec spec;
  spec.name = "custom";
  spec.klass = "example";
  spec.declared_memory_bytes = 64.0 * kGiB;
  OpGraph& dag = spec.graph;

  const DataId input =
      dag.CreateExternalData(std::vector<double>(64, 512.0 * kMiB), "events");
  const DataId msg = dag.CreateData(64, "msg");
  const DataId shuffled = dag.CreateData(16, "shuffled");
  const DataId result = dag.CreateData(16, "result");

  OpCostModel scan_cost;
  scan_cost.cpu_complexity = 2.0;
  scan_cost.output_selectivity = 0.4;
  OpHandle ser = dag.CreateOp(ResourceType::kCpu, "ser")
                     .Read(input)
                     .Create(msg)
                     .SetCost(scan_cost);

  OpHandle shuffle = dag.CreateOp(ResourceType::kNetwork, "shuffle")
                         .Read(msg)
                         .Create(shuffled);
  ser.To(shuffle, DepKind::kSync);

  OpCostModel agg_cost;
  agg_cost.cpu_complexity = 1.5;
  agg_cost.output_selectivity = 0.1;
  OpHandle deser = dag.CreateOp(ResourceType::kCpu, "deser")
                       .Read(shuffled)
                       .Create(result)
                       .SetCost(agg_cost);
  shuffle.To(deser, DepKind::kAsync);

  OpHandle write = dag.CreateOp(ResourceType::kDisk, "write").Read(result).SetParallelism(16);
  deser.To(write, DepKind::kAsync);

  // Compile and inspect the plan.
  const ExecutionPlan plan = ExecutionPlan::Build(dag, /*seed=*/1);
  std::printf("compiled plan: %zu ops -> %zu monotasks, %zu tasks, %zu stages\n",
              dag.ops().size(), plan.monotasks().size(), plan.tasks().size(),
              plan.stages().size());
  for (const StageSpec& stage : plan.stages()) {
    std::printf("  stage %d (%s): %d tasks, sync children: %zu\n", stage.id,
                stage.name.c_str(), stage.num_tasks, stage.sync_child_stages.size());
  }
  const auto work = plan.ExpectedWorkByResource();
  std::printf("expected work: cpu %.1f GB-equiv, network %.1f GB, disk %.1f GB\n",
              work[0] / kGiB, work[1] / kGiB, work[2] / kGiB);

  // Simulate three copies of the job arriving together under Ursa.
  Workload workload;
  workload.name = "custom";
  for (int i = 0; i < 3; ++i) {
    WorkloadJob job;
    job.spec = spec;
    job.spec.name += "-" + std::to_string(i);
    job.spec.seed = 100 + static_cast<uint64_t>(i);
    workload.jobs.push_back(std::move(job));
  }
  const ExperimentResult sim_result = RunExperiment(workload, UrsaEjfConfig(), "ursa");
  for (const JobRecord& record : sim_result.records) {
    std::printf("job %-10s JCT %.2f s\n", record.name.c_str(), record.jct());
  }
  std::printf("cluster CPU busy %.1f%% of capacity over the run\n",
              sim_result.efficiency.se_cpu * sim_result.efficiency.ue_cpu / 100.0);
  return 0;
}
