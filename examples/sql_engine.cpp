// Example: the SQL layer (section 4.1.2) - queries over in-memory tables,
// compiled to monotask OpGraphs and executed for real by LocalRuntime, then
// the same query compiled into a simulator job and scheduled under Ursa.
//
//   $ ./examples/sql_engine
#include <cstdio>

#include "src/common/rng.h"
#include "src/driver/experiment.h"
#include "src/sql/engine.h"

int main() {
  using namespace ursa;

  // Build a small star schema: sales facts + a product dimension.
  SqlCatalog catalog;
  {
    SqlSchema sales;
    sales.columns = {{"product", SqlType::kInt64},
                     {"units", SqlType::kInt64},
                     {"price", SqlType::kDouble}};
    std::vector<SqlRow> rows;
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
      const int64_t product = static_cast<int64_t>(rng.UniformInt(8u));
      const int64_t units = 1 + static_cast<int64_t>(rng.UniformInt(9u));
      rows.push_back(SqlRow{product, units, 5.0 + 2.0 * static_cast<double>(product)});
    }
    catalog.CreateTable("sales", sales, std::move(rows), /*partitions=*/8);

    SqlSchema products;
    products.columns = {{"pid", SqlType::kInt64}, {"pname", SqlType::kString}};
    std::vector<SqlRow> product_rows;
    const char* names[] = {"anvil", "rocket", "magnet", "spring",
                           "tunnel", "paint",  "fan",    "piano"};
    for (int64_t p = 0; p < 8; ++p) {
      product_rows.push_back(SqlRow{p, std::string(names[p])});
    }
    catalog.CreateTable("products", products, std::move(product_rows), /*partitions=*/2);
  }

  SqlEngine engine(&catalog, /*shuffle_partitions=*/4);
  const char* query =
      "SELECT pname, COUNT(*) AS orders, SUM(units) AS units "
      "FROM sales JOIN products ON product = pid "
      "WHERE price >= 9 GROUP BY pname ORDER BY units DESC LIMIT 5";
  std::printf("query:\n  %s\n\nresult:\n", query);
  const SqlResult result = engine.Execute(query);
  std::printf("%s", result.ToString().c_str());

  // The identical plan, scaled to warehouse volume, as a simulated cluster
  // job under Ursa's scheduler.
  Workload workload;
  workload.name = "sql";
  WorkloadJob job;
  job.spec = engine.CompileForSimulation(query, /*scale=*/2e5);  // ~hundreds of GB.
  workload.jobs.push_back(std::move(job));
  const ExperimentResult sim = RunExperiment(workload, UrsaEjfConfig(), "ursa");
  std::printf("\nsimulated at %.0f GB input on 20 workers: JCT %.2f s\n",
              workload.jobs[0].spec.graph.TotalExternalInputBytes() / 1e9,
              sim.records[0].jct());
  return 0;
}
