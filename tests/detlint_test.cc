// Unit tests for the determinism lint (tools/detlint): one golden case per
// banned pattern, comment/suppression/allowlist behavior, and the repo gate
// invariant that the checked-in allowlist has no stale entries.
#include "tools/detlint/detlint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ursa {
namespace detlint {
namespace {

std::vector<std::string> RulesHit(const std::string& path, const std::string& content) {
  std::vector<std::string> rules;
  for (const Finding& finding : LintContent(path, content)) {
    rules.push_back(finding.rule);
  }
  return rules;
}

bool Hit(const std::string& path, const std::string& content, const std::string& rule) {
  const auto rules = RulesHit(path, content);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

TEST(Detlint, FlagsWallClockReads) {
  EXPECT_TRUE(Hit("src/exec/worker.cc",
                  "auto t = std::chrono::steady_clock::now();\n", "wallclock"));
  EXPECT_TRUE(Hit("src/exec/worker.cc",
                  "auto t = std::chrono::system_clock::now();\n", "wallclock"));
  EXPECT_TRUE(Hit("src/exec/worker.cc",
                  "auto t = std::chrono::high_resolution_clock::now();\n", "wallclock"));
  EXPECT_TRUE(Hit("src/exec/worker.cc", "time_t t = time(nullptr);\n", "wallclock"));
  EXPECT_TRUE(Hit("src/exec/worker.cc", "gettimeofday(&tv, nullptr);\n", "wallclock"));
  EXPECT_TRUE(
      Hit("src/exec/worker.cc", "clock_gettime(CLOCK_MONOTONIC, &ts);\n", "wallclock"));
}

TEST(Detlint, WallClockIgnoresSimilarIdentifiers) {
  // Word-boundary safety: these contain "time("-like substrings but are
  // simulation-time accessors, not host-clock calls.
  EXPECT_FALSE(Hit("src/exec/worker.cc", "const double d = draw_time(rng);\n", "wallclock"));
  EXPECT_FALSE(Hit("src/exec/worker.cc", "rec.finish_time() - rec.submit_time();\n",
                   "wallclock"));
  EXPECT_FALSE(Hit("src/exec/worker.cc", "double queued_time = 0.0;\n", "wallclock"));
  EXPECT_FALSE(Hit("src/exec/worker.cc", "ApproxProcessingTime(r);\n", "wallclock"));
}

TEST(Detlint, FlagsRawRandomness) {
  EXPECT_TRUE(Hit("src/exec/worker.cc", "int x = rand();\n", "raw-random"));
  EXPECT_TRUE(Hit("src/exec/worker.cc", "srand(42);\n", "raw-random"));
  EXPECT_TRUE(Hit("src/exec/worker.cc", "std::random_device rd;\n", "raw-random"));
  EXPECT_TRUE(Hit("src/exec/worker.cc", "std::mt19937 gen(rd());\n", "raw-random"));
  EXPECT_TRUE(Hit("src/exec/worker.cc", "std::mt19937_64 gen;\n", "raw-random"));
  EXPECT_TRUE(
      Hit("src/exec/worker.cc", "std::default_random_engine e;\n", "raw-random"));
}

TEST(Detlint, RawRandomIgnoresSeededRngIdioms) {
  EXPECT_FALSE(Hit("src/exec/worker.cc", "Rng rng(seed);\n", "raw-random"));
  EXPECT_FALSE(Hit("src/exec/worker.cc", "transient_rng_.Bernoulli(p);\n", "raw-random"));
  // `rand` as a substring of an identifier must not fire.
  EXPECT_FALSE(Hit("src/exec/worker.cc", "int operand = 3;\n", "raw-random"));
}

TEST(Detlint, FlagsUnorderedContainersOnlyInCoreDirs) {
  const std::string decl = "std::unordered_map<JobId, int> by_job;\n";
  EXPECT_TRUE(Hit("src/scheduler/ursa_scheduler.cc", decl, "no-unordered-in-core"));
  EXPECT_TRUE(Hit("src/exec/job_manager.cc", decl, "no-unordered-in-core"));
  EXPECT_TRUE(Hit("src/net/flow_simulator.h", decl, "no-unordered-in-core"));
  EXPECT_TRUE(Hit("src/sim/simulator.cc", decl, "no-unordered-in-core"));
  // Outside the order-sensitive core the rule stays quiet.
  EXPECT_FALSE(Hit("src/sql/engine.cc", decl, "no-unordered-in-core"));
  EXPECT_FALSE(Hit("src/api/dataset.h", decl, "no-unordered-in-core"));
  EXPECT_TRUE(
      Hit("src/exec/worker.h", "std::unordered_set<EventId> s;\n", "no-unordered-in-core"));
}

TEST(Detlint, FlagsPointerKeyedOrderedContainers) {
  EXPECT_TRUE(Hit("src/exec/worker.cc", "std::map<Worker*, int> by_worker;\n",
                  "pointer-key-ordered"));
  EXPECT_TRUE(
      Hit("src/exec/worker.cc", "std::set<const Job*> jobs;\n", "pointer-key-ordered"));
  EXPECT_TRUE(Hit("src/exec/worker.cc", "std::map<ursa::Worker*, double> m;\n",
                  "pointer-key-ordered"));
  // Value-position pointers are fine: ordering is by the key.
  EXPECT_FALSE(Hit("src/exec/worker.cc", "std::map<JobId, Worker*> m;\n",
                   "pointer-key-ordered"));
  EXPECT_FALSE(
      Hit("src/exec/worker.cc", "std::map<JobId, int> m;\n", "pointer-key-ordered"));
}

TEST(Detlint, FlagsStyleViolations) {
  EXPECT_TRUE(Hit("src/exec/worker.cc", "\tint x = 0;\n", "style-tabs"));
  EXPECT_TRUE(Hit("src/exec/worker.cc", "int x = 0;  \n", "style-trailing-ws"));
  EXPECT_FALSE(Hit("src/exec/worker.cc", "int x = 0;\n", "style-tabs"));
  EXPECT_FALSE(Hit("src/exec/worker.cc", "int x = 0;\n", "style-trailing-ws"));
}

TEST(Detlint, CommentedPatternsAreNotFindings) {
  EXPECT_FALSE(Hit("src/exec/worker.cc",
                   "// never call rand() in simulation code\n", "raw-random"));
  EXPECT_FALSE(Hit("src/scheduler/p.cc",
                   "int x = 0;  // unlike std::unordered_map, this is ordered\n",
                   "no-unordered-in-core"));
  // Code before the comment still counts.
  EXPECT_TRUE(Hit("src/exec/worker.cc", "int x = rand();  // FIXME\n", "raw-random"));
}

TEST(Detlint, InlineSuppressionNamesTheRule) {
  EXPECT_FALSE(Hit("src/exec/worker.cc",
                   "int x = rand();  // detlint: allow(raw-random)\n", "raw-random"));
  // Suppressing one rule does not hide another on the same line.
  EXPECT_TRUE(Hit("src/exec/worker.cc",
                  "int x = rand();\t// detlint: allow(wallclock)\n", "raw-random"));
}

TEST(Detlint, GoldenReportFormat) {
  const std::string content = "int a = rand();\nint b = 0;\nint c = rand();\n";
  const std::vector<Finding> findings = LintContent("src/exec/x.cc", content);
  ASSERT_EQ(findings.size(), 2u);
  const std::string report = FormatFindings(findings);
  const std::string expected =
      "src/exec/x.cc:1: [raw-random] unseeded/global randomness; all simulation "
      "randomness must flow from the seeded Rng in src/common/rng.h\n"
      "src/exec/x.cc:3: [raw-random] unseeded/global randomness; all simulation "
      "randomness must flow from the seeded Rng in src/common/rng.h\n";
  EXPECT_EQ(report, expected);
}

TEST(Detlint, RuleNamesAreStable) {
  const std::vector<std::string> expected = {
      "wallclock",           "raw-random", "no-unordered-in-core",
      "pointer-key-ordered", "style-tabs", "style-trailing-ws"};
  EXPECT_EQ(RuleNames(), expected);
}

// End-to-end over the real tree: the checked-in allowlist must load, every
// entry must still be needed, and src/ must be clean. This is the same
// invocation CI gates on.
TEST(Detlint, RepoSourcesAreClean) {
  Options options;
  options.repo_root = URSA_SOURCE_DIR;
  options.roots = {"src"};
  options.allowlist_path = std::string(URSA_SOURCE_DIR) + "/.detlint-allowlist";
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(ursa::detlint::Run(options, &findings, &error)) << error;
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(Detlint, MalformedAllowlistIsAnError) {
  Options options;
  options.repo_root = URSA_SOURCE_DIR;
  options.roots = {"src"};
  options.allowlist_path = std::string(URSA_SOURCE_DIR) + "/ROADMAP.md";  // Not an allowlist.
  std::vector<Finding> findings;
  std::string error;
  EXPECT_FALSE(ursa::detlint::Run(options, &findings, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Detlint, MissingRootIsAnError) {
  Options options;
  options.repo_root = URSA_SOURCE_DIR;
  options.roots = {"no/such/dir"};
  std::vector<Finding> findings;
  std::string error;
  EXPECT_FALSE(ursa::detlint::Run(options, &findings, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace detlint
}  // namespace ursa
