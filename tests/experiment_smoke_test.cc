// End-to-end smoke tests: small workloads must run to completion under every
// scheme, with sane metrics.
#include <gtest/gtest.h>

#include "src/driver/experiment.h"
#include "src/workloads/ml.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

Workload SmallTpch(int jobs) {
  TpchWorkloadConfig config;
  config.num_jobs = jobs;
  config.submit_interval = 5.0;
  config.seed = 7;
  return MakeTpchWorkload(config);
}

TEST(ExperimentSmoke, UrsaEjfRunsSmallTpch) {
  const Workload workload = SmallTpch(6);
  const ExperimentResult result = RunExperiment(workload, UrsaEjfConfig(), "ursa-ejf");
  EXPECT_EQ(result.records.size(), 6u);
  for (const JobRecord& record : result.records) {
    EXPECT_GT(record.finish_time, record.submit_time) << record.name;
  }
  EXPECT_GT(result.makespan(), 0.0);
  EXPECT_GT(result.efficiency.ue_cpu, 50.0);
  EXPECT_LE(result.efficiency.ue_cpu, 100.0 + 1e-6);
}

TEST(ExperimentSmoke, UrsaSrjfRunsSmallTpch) {
  const Workload workload = SmallTpch(6);
  const ExperimentResult result = RunExperiment(workload, UrsaSrjfConfig(), "ursa-srjf");
  EXPECT_EQ(result.records.size(), 6u);
}

TEST(ExperimentSmoke, SparkLikeRunsSmallTpch) {
  const Workload workload = SmallTpch(4);
  const ExperimentResult result = RunExperiment(workload, SparkLikeConfig(), "y+s");
  EXPECT_EQ(result.records.size(), 4u);
  // Executor model wastes allocated cores: UE strictly below Ursa's.
  EXPECT_LT(result.efficiency.ue_cpu, 95.0);
}

TEST(ExperimentSmoke, TezLikeRunsSmallTpch) {
  const Workload workload = SmallTpch(3);
  const ExperimentResult result = RunExperiment(workload, TezLikeConfig(), "y+t");
  EXPECT_EQ(result.records.size(), 3u);
}

TEST(ExperimentSmoke, MonoSparkRunsSmallTpch) {
  const Workload workload = SmallTpch(3);
  const ExperimentResult result = RunExperiment(workload, MonoSparkConfig(), "y+u");
  EXPECT_EQ(result.records.size(), 3u);
}

TEST(ExperimentSmoke, MlJobRunsAlone) {
  Workload workload;
  workload.name = "ml";
  WorkloadJob job;
  MlJobParams params = LrParams();
  params.iterations = 3;
  job.spec = BuildMlJob(params, 5);
  workload.jobs.push_back(std::move(job));
  const ExperimentResult result = RunExperiment(workload, UrsaEjfConfig(), "ursa-ejf");
  EXPECT_EQ(result.records.size(), 1u);
}

TEST(ExperimentSmoke, SyntheticJobHasExpectedSingleJobShape) {
  Workload workload;
  workload.name = "synthetic";
  WorkloadJob job;
  SyntheticJobParams params;
  params.type = 1;
  job.spec = BuildSyntheticJob(params, 3);
  workload.jobs.push_back(std::move(job));
  ExperimentConfig config = UrsaEjfConfig();
  config.sample_step = 0.5;
  const ExperimentResult result = RunExperiment(workload, config, "ursa-ejf");
  // Single Type 1 job: ~40 s JCT, CPU utilization well below full (phases).
  EXPECT_GT(result.records[0].jct(), 15.0);
  EXPECT_LT(result.records[0].jct(), 90.0);
}

TEST(ExperimentSmoke, PackingSchedulersRun) {
  const Workload workload = SmallTpch(4);
  for (PlacementAlgorithm alg : {PlacementAlgorithm::kTetris, PlacementAlgorithm::kTetris2,
                                 PlacementAlgorithm::kCapacity}) {
    ExperimentConfig config = UrsaEjfConfig();
    config.ursa.placement = alg;
    const ExperimentResult result =
        RunExperiment(workload, config, PlacementAlgorithmName(alg));
    EXPECT_EQ(result.records.size(), 4u) << PlacementAlgorithmName(alg);
  }
}

}  // namespace
}  // namespace ursa
