// Tests for the real (non-simulated) execution runtime and the typed
// dataset / Pregel APIs built on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <string>

#include "src/api/dataset.h"
#include "src/api/pregel.h"
#include "src/runtime/local_runtime.h"

namespace ursa {
namespace {

TEST(LocalRuntime, RunsSingleCpuOp) {
  LocalRuntime runtime;
  OpGraph graph;
  const DataId input = graph.CreateExternalData({8.0, 8.0}, "in");
  runtime.SetInput(input, {std::any(std::vector<int>{1, 2}), std::any(std::vector<int>{3, 4})});
  const DataId output = graph.CreateData(2, "out");
  const int udf = runtime.RegisterUdf([](const UdfInputs& inputs) {
    const auto& in = *std::any_cast<std::vector<int>>(inputs[0]);
    std::vector<int> out;
    for (int x : in) {
      out.push_back(x * 10);
    }
    return std::vector<std::any>{std::any(out)};
  });
  graph.CreateOp(ResourceType::kCpu, "times10").Read(input).Create(output).SetUdf(udf);
  runtime.Run(graph);
  EXPECT_EQ(*std::any_cast<std::vector<int>>(&runtime.Partition(output, 0)),
            (std::vector<int>{10, 20}));
  EXPECT_EQ(*std::any_cast<std::vector<int>>(&runtime.Partition(output, 1)),
            (std::vector<int>{30, 40}));
  EXPECT_EQ(runtime.monotasks_executed(ResourceType::kCpu), 2);
}

TEST(DatasetApi, MapFilterCollect) {
  UrsaContext ctx;
  auto numbers = ctx.Parallelize<int>({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  auto result = numbers.Map([](const int& x) { return x * x; })
                    .Filter([](const int& x) { return x % 2 == 1; })
                    .Collect();
  std::sort(result.begin(), result.end());
  EXPECT_EQ(result, (std::vector<int>{1, 9, 25, 49, 81}));
}

TEST(DatasetApi, MapChainsCollapseToOneCpuOpPerPartition) {
  UrsaContext ctx;
  auto data = ctx.Parallelize<int>({{1}, {2}});
  auto result =
      data.Map([](const int& x) { return x + 1; }).Map([](const int& x) { return x * 2; });
  (void)result.Collect();
  // Two partitions, one collapsed CPU monotask each (chain fused).
  EXPECT_EQ(ctx.runtime().monotasks_executed(ResourceType::kCpu), 2);
}

TEST(DatasetApi, WordCountViaReduceByKey) {
  UrsaContext ctx;
  std::vector<std::vector<std::string>> lines = {
      {"the quick brown fox", "the lazy dog"},
      {"the fox jumps", "quick quick"},
  };
  auto words = ctx.Parallelize<std::string>(lines).FlatMap([](const std::string& line) {
    std::vector<std::string> out;
    size_t start = 0;
    while (start < line.size()) {
      size_t end = line.find(' ', start);
      if (end == std::string::npos) {
        end = line.size();
      }
      if (end > start) {
        out.push_back(line.substr(start, end - start));
      }
      start = end + 1;
    }
    return out;
  });
  auto counts =
      words.Map([](const std::string& w) { return std::make_pair(w, 1); })
          .ReduceByKey([](int a, int b) { return a + b; }, 3);
  std::map<std::string, int> result;
  for (const auto& [word, n] : counts.Collect()) {
    result[word] = n;
  }
  EXPECT_EQ(result["the"], 3);
  EXPECT_EQ(result["quick"], 3);
  EXPECT_EQ(result["fox"], 2);
  EXPECT_EQ(result["dog"], 1);
  // The shuffle ran as network monotasks.
  EXPECT_EQ(ctx.runtime().monotasks_executed(ResourceType::kNetwork), 3);
}

TEST(DatasetApi, ReduceByKeyMatchesSerialReference) {
  // Property: for random multisets, distributed ReduceByKey == serial fold.
  UrsaContext ctx;
  std::vector<std::vector<std::pair<int, int>>> parts(4);
  std::map<int, int> expected;
  uint64_t state = 12345;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const int key = static_cast<int>(state % 37);
    const int value = static_cast<int>((state >> 8) % 100);
    parts[i % 4].emplace_back(key, value);
    expected[key] += value;
  }
  auto result = ctx.Parallelize<std::pair<int, int>>(parts)
                    .ReduceByKey([](int a, int b) { return a + b; }, 5)
                    .Collect();
  std::map<int, int> actual(result.begin(), result.end());
  EXPECT_EQ(actual, expected);
}

TEST(Pregel, PagerankOnSmallGraph) {
  // Star graph: vertex 0 linked from 1..4; ranks must order 0 first.
  const int n = 5;
  std::vector<std::vector<GraphVertex>> parts(2);
  for (int64_t v = 0; v < n; ++v) {
    GraphVertex gv;
    gv.id = v;
    if (v != 0) {
      gv.neighbors = {0, (v % 4) + 1 == v ? 1 : (v % 4) + 1};
    } else {
      gv.neighbors = {1, 2, 3, 4};
    }
    parts[PregelPartitionOf(v, 2)].push_back(std::move(gv));
  }
  auto ranks = RunPregel<double, double>(
      parts, 15, [](int64_t, int) { return 1.0 / n; },
      [](PregelVertex<double>& v, const std::vector<double>& inbox, int step,
         const MessageSender<double>& send) {
        if (step > 0) {
          double sum = 0.0;
          for (double m : inbox) {
            sum += m;
          }
          v.value = 0.15 / n + 0.85 * sum;
        }
        for (int64_t nb : v.neighbors) {
          send(nb, v.value / static_cast<double>(v.neighbors.size()));
        }
      });
  ASSERT_EQ(ranks.size(), static_cast<size_t>(n));
  std::sort(ranks.begin(), ranks.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  EXPECT_EQ(ranks[0].first, 0);  // The hub collects the most rank.
  double total = 0.0;
  for (const auto& [id, rank] : ranks) {
    total += rank;
  }
  EXPECT_NEAR(total, 1.0, 0.05);  // Rank is (approximately) conserved.
}

TEST(Pregel, ConnectedComponentsConverges) {
  // Two components: {0,1,2} chain and {3,4} pair.
  std::vector<std::vector<GraphVertex>> parts(3);
  auto add = [&](int64_t id, std::vector<int64_t> nbrs) {
    GraphVertex gv;
    gv.id = id;
    gv.neighbors = std::move(nbrs);
    parts[PregelPartitionOf(id, 3)].push_back(std::move(gv));
  };
  add(0, {1});
  add(1, {0, 2});
  add(2, {1});
  add(3, {4});
  add(4, {3});
  auto labels = RunPregel<int64_t, int64_t>(
      parts, 8, [](int64_t id, int) { return id; },
      [](PregelVertex<int64_t>& v, const std::vector<int64_t>& inbox, int step,
         const MessageSender<int64_t>& send) {
        int64_t best = v.value;
        for (int64_t m : inbox) {
          best = std::min(best, m);
        }
        const bool changed = best != v.value || step == 0;
        v.value = best;
        if (changed) {
          for (int64_t nb : v.neighbors) {
            send(nb, v.value);
          }
        }
      });
  std::map<int64_t, int64_t> by_id(labels.begin(), labels.end());
  EXPECT_EQ(by_id[0], 0);
  EXPECT_EQ(by_id[1], 0);
  EXPECT_EQ(by_id[2], 0);
  EXPECT_EQ(by_id[3], 3);
  EXPECT_EQ(by_id[4], 3);
}

}  // namespace
}  // namespace ursa

// ---- Additional API coverage: GroupByKey and Join. ----
namespace ursa {
namespace {

TEST(DatasetApi, GroupByKeyCollectsAllValues) {
  UrsaContext ctx;
  std::vector<std::vector<std::pair<std::string, int>>> parts = {
      {{"a", 1}, {"b", 2}},
      {{"a", 3}, {"c", 4}},
      {{"a", 5}, {"b", 6}},
  };
  auto grouped = ctx.Parallelize<std::pair<std::string, int>>(parts).GroupByKey(2);
  std::map<std::string, std::vector<int>> result;
  for (auto& [k, values] : grouped.Collect()) {
    std::sort(values.begin(), values.end());
    result[k] = values;
  }
  EXPECT_EQ(result["a"], (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(result["b"], (std::vector<int>{2, 6}));
  EXPECT_EQ(result["c"], (std::vector<int>{4}));
}

TEST(DatasetApi, JoinMatchesKeysAcrossDatasets) {
  UrsaContext ctx;
  auto orders = ctx.Parallelize<std::pair<int, double>>(
      {{{1, 10.0}, {2, 20.0}}, {{1, 30.0}, {3, 99.0}}});
  auto names = ctx.Parallelize<std::pair<int, std::string>>(
      {{{1, std::string("ada")}}, {{2, std::string("bob")}}});
  auto joined = orders.Join(names, 2);
  std::multimap<int, std::pair<double, std::string>> result;
  for (const auto& [k, vw] : joined.Collect()) {
    result.emplace(k, vw);
  }
  EXPECT_EQ(result.size(), 3u);  // Key 3 has no match.
  EXPECT_EQ(result.count(1), 2u);
  auto it = result.find(2);
  ASSERT_NE(it, result.end());
  EXPECT_DOUBLE_EQ(it->second.first, 20.0);
  EXPECT_EQ(it->second.second, "bob");
}

}  // namespace
}  // namespace ursa
