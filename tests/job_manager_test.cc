// Tests for the job manager's runtime behaviour: ready-task tracking,
// barrier semantics, monotask streaming to workers, memory allocation and
// release, remaining-work accounting (sections 4.1.3, 4.2.1).
#include <gtest/gtest.h>

#include "src/exec/job_manager.h"

namespace ursa {
namespace {

class RecordingListener : public JobManagerListener {
 public:
  void OnTaskReady([[maybe_unused]] JobId job, TaskId task) override { ready.push_back(task); }
  void OnTaskCompleted([[maybe_unused]] JobId job, TaskId task) override {
    completed.push_back(task);
  }
  void OnJobFinished([[maybe_unused]] JobId job) override { finished = true; }
  void OnMonotaskCompleted([[maybe_unused]] JobId job, [[maybe_unused]] ResourceType type,
                           [[maybe_unused]] double bytes) override {
    ++monotasks;
  }

  std::vector<TaskId> ready;
  std::vector<TaskId> completed;
  int monotasks = 0;
  bool finished = false;
};

class JobManagerTest : public ::testing::Test {
 protected:
  JobManagerTest() {
    ClusterConfig config;
    config.num_workers = 4;
    config.worker.cores = 8;
    config.worker.cpu_byte_rate = 1000.0;
    config.worker.memory_bytes = 1e12;
    cluster_ = std::make_unique<Cluster>(&sim_, config);
  }

  std::unique_ptr<Job> MakeJob(int in_parts = 4, int out_parts = 2) {
    JobSpec spec;
    spec.name = "job";
    spec.declared_memory_bytes = 1e9;
    OpGraph& graph = spec.graph;
    const DataId input = graph.CreateExternalData(
        std::vector<double>(static_cast<size_t>(in_parts), 1000.0), "in");
    const DataId msg = graph.CreateData(in_parts, "msg");
    const DataId shuffled = graph.CreateData(out_parts, "shuffled");
    const DataId result = graph.CreateData(out_parts, "result");
    OpHandle ser = graph.CreateOp(ResourceType::kCpu, "ser").Read(input).Create(msg);
    OpHandle shuffle =
        graph.CreateOp(ResourceType::kNetwork, "shuffle").Read(msg).Create(shuffled);
    OpHandle deser =
        graph.CreateOp(ResourceType::kCpu, "deser").Read(shuffled).Create(result);
    ser.To(shuffle, DepKind::kSync);
    shuffle.To(deser, DepKind::kAsync);
    return Job::Create(0, std::move(spec));
  }

  Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
  RecordingListener listener_;
};

TEST_F(JobManagerTest, InitialReadyTasksAreSourceStage) {
  auto job = MakeJob();
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener_);
  jm.Start();
  EXPECT_EQ(listener_.ready.size(), 4u);  // The 4 scan tasks.
  EXPECT_EQ(jm.ready_tasks().size(), 4u);
}

TEST_F(JobManagerTest, BarrierHoldsUntilWholeStageCompletes) {
  auto job = MakeJob();
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener_);
  jm.Start();
  // Place 3 of 4 scans; the shuffle stage must stay blocked.
  const auto ready = jm.ready_tasks();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(jm.PlaceTask(ready[static_cast<size_t>(i)], i % cluster_->size()));
  }
  sim_.Run();
  EXPECT_EQ(listener_.completed.size(), 3u);
  EXPECT_EQ(jm.ready_tasks().size(), 1u);  // Only the unplaced scan.
  // Place the last scan: the downstream stage becomes ready.
  ASSERT_TRUE(jm.PlaceTask(jm.ready_tasks()[0], 3));
  sim_.Run();
  EXPECT_EQ(jm.ready_tasks().size(), 2u);
  for (TaskId t : jm.ready_tasks()) {
    EXPECT_EQ(job->plan.task(t).stage, 1);
  }
}

TEST_F(JobManagerTest, RunsToCompletionAndReportsFinish) {
  auto job = MakeJob();
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener_);
  jm.Start();
  // Greedy driver: place every ready task round-robin whenever idle.
  int next_worker = 0;
  while (!jm.finished()) {
    const auto ready = jm.ready_tasks();
    if (ready.empty()) {
      ASSERT_TRUE(sim_.Step()) << "deadlock: no ready tasks and no events";
      continue;
    }
    for (TaskId t : ready) {
      ASSERT_TRUE(jm.PlaceTask(t, next_worker++ % cluster_->size()));
    }
  }
  EXPECT_TRUE(listener_.finished);
  EXPECT_EQ(jm.completed_tasks(), jm.total_tasks());
  EXPECT_EQ(listener_.monotasks, 4 + 2 * 2);
  EXPECT_GT(jm.cpu_seconds_used(), 0.0);
  // All memory returned.
  for (int w = 0; w < cluster_->size(); ++w) {
    EXPECT_DOUBLE_EQ(cluster_->worker(w).free_memory(),
                     cluster_->worker(w).memory_capacity());
  }
}

TEST_F(JobManagerTest, RemainingWorkDecreasesMonotonically) {
  auto job = MakeJob();
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener_);
  jm.Start();
  const auto initial = jm.remaining_work();
  EXPECT_DOUBLE_EQ(initial[static_cast<size_t>(ResourceType::kCpu)], 8000.0);
  EXPECT_DOUBLE_EQ(initial[static_cast<size_t>(ResourceType::kNetwork)], 4000.0);
  int next_worker = 0;
  double prev_cpu = initial[0];
  while (!jm.finished()) {
    for (TaskId t : std::vector<TaskId>(jm.ready_tasks())) {
      ASSERT_TRUE(jm.PlaceTask(t, next_worker++ % cluster_->size()));
    }
    if (!sim_.Step()) {
      break;
    }
    EXPECT_LE(jm.remaining_work()[0], prev_cpu + 1e-9);
    prev_cpu = jm.remaining_work()[0];
  }
  EXPECT_NEAR(jm.remaining_work()[0], 0.0, 1e-6);
  EXPECT_NEAR(jm.remaining_work()[1], 0.0, 1e-6);
}

TEST_F(JobManagerTest, PlacementFailsWithoutMemory) {
  ClusterConfig tiny;
  tiny.num_workers = 1;
  tiny.worker.memory_bytes = 1.0;  // Nothing fits.
  Cluster small(&sim_, tiny);
  auto job = MakeJob();
  JobManager jm(&sim_, &small, job.get(), &listener_);
  jm.Start();
  EXPECT_FALSE(jm.PlaceTask(jm.ready_tasks()[0], 0));
  // Task stays ready for a later attempt.
  EXPECT_EQ(jm.ready_tasks().size(), 4u);
  EXPECT_EQ(jm.task_state(jm.ready_tasks()[0]), TaskState::kReady);
}

TEST_F(JobManagerTest, MonotasksOfTaskRunOnAssignedWorker) {
  auto job = MakeJob();
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener_);
  jm.Start();
  for (TaskId t : std::vector<TaskId>(jm.ready_tasks())) {
    ASSERT_TRUE(jm.PlaceTask(t, 2));
  }
  sim_.Run();
  EXPECT_EQ(cluster_->worker(2).completed(ResourceType::kCpu), 4);
  EXPECT_EQ(cluster_->worker(0).completed(ResourceType::kCpu), 0);
  // Outputs were recorded at worker 2.
  EXPECT_EQ(cluster_->metadata().Get(0, 1, 0).worker, 2);
}

}  // namespace
}  // namespace ursa
