// Tests for OpGraph construction/validation and the execution-plan compiler
// (monotask generation, CPU-chain collapsing, task/stage derivation) -
// the semantics of sections 4.1.1 and 4.1.3 / Figure 3.
#include <gtest/gtest.h>

#include "src/dag/job.h"
#include "src/dag/plan.h"

namespace ursa {
namespace {

// The paper's reduceByKey skeleton: ser(CPU) -sync-> shuffle(NET) -async->
// deser(CPU).
OpGraph ReduceByKeyGraph(int in_parts, int out_parts) {
  OpGraph graph;
  const DataId input =
      graph.CreateExternalData(std::vector<double>(static_cast<size_t>(in_parts), 100.0), "in");
  const DataId msg = graph.CreateData(in_parts, "msg");
  const DataId shuffled = graph.CreateData(out_parts, "shuffled");
  const DataId result = graph.CreateData(out_parts, "result");
  OpHandle ser = graph.CreateOp(ResourceType::kCpu, "ser").Read(input).Create(msg);
  OpHandle shuffle =
      graph.CreateOp(ResourceType::kNetwork, "shuffle").Read(msg).Create(shuffled);
  OpHandle deser = graph.CreateOp(ResourceType::kCpu, "deser").Read(shuffled).Create(result);
  ser.To(shuffle, DepKind::kSync);
  shuffle.To(deser, DepKind::kAsync);
  return graph;
}

TEST(OpGraph, ValidatesReduceByKeySkeleton) {
  OpGraph graph = ReduceByKeyGraph(4, 2);
  graph.Validate();
  EXPECT_EQ(graph.Depth(), 3);
  EXPECT_EQ(graph.OpParallelism(0), 4);  // ser
  EXPECT_EQ(graph.OpParallelism(1), 2);  // shuffle (creates 2 partitions)
  EXPECT_DOUBLE_EQ(graph.TotalExternalInputBytes(), 400.0);
}

TEST(OpGraphDeath, SyncIntoCpuOpRejected) {
  OpGraph graph;
  const DataId a = graph.CreateExternalData({1.0}, "a");
  const DataId b = graph.CreateData(1, "b");
  const DataId c = graph.CreateData(1, "c");
  OpHandle op1 = graph.CreateOp(ResourceType::kCpu, "op1").Read(a).Create(b);
  OpHandle op2 = graph.CreateOp(ResourceType::kCpu, "op2").Read(b).Create(c);
  op1.To(op2, DepKind::kSync);
  EXPECT_DEATH(graph.Validate(), "sync dependency into non-network op");
}

TEST(OpGraphDeath, AsyncParallelismMismatchRejected) {
  OpGraph graph;
  const DataId a = graph.CreateExternalData({1.0, 1.0}, "a");
  const DataId b = graph.CreateData(2, "b");
  const DataId c = graph.CreateData(3, "c");
  OpHandle op1 = graph.CreateOp(ResourceType::kCpu, "op1").Read(a).Create(b);
  OpHandle op2 = graph.CreateOp(ResourceType::kNetwork, "op2").Read(b).Create(c);
  // Async into network with mismatched parallelism (2 vs 3).
  op1.To(op2, DepKind::kAsync);
  EXPECT_DEATH(graph.Validate(), "mismatched parallelism");
}

TEST(OpGraphDeath, CycleRejected) {
  OpGraph graph;
  const DataId a = graph.CreateData(2, "a");
  const DataId b = graph.CreateData(2, "b");
  OpHandle op1 = graph.CreateOp(ResourceType::kNetwork, "op1").Read(b).Create(a);
  OpHandle op2 = graph.CreateOp(ResourceType::kNetwork, "op2").Read(a).Create(b);
  op1.To(op2, DepKind::kAsync);
  op2.To(op1, DepKind::kAsync);
  EXPECT_DEATH(graph.Validate(), "cycle");
}

TEST(Plan, ReduceByKeyStructureMatchesFigure3Semantics) {
  const ExecutionPlan plan = ExecutionPlan::Build(ReduceByKeyGraph(4, 2), 1);
  // Stage 0: ser x4 tasks; stage 1: shuffle+deser x2 tasks.
  ASSERT_EQ(plan.stages().size(), 2u);
  EXPECT_EQ(plan.stage(0).num_tasks, 4);
  EXPECT_EQ(plan.stage(1).num_tasks, 2);
  EXPECT_EQ(plan.tasks().size(), 6u);
  EXPECT_EQ(plan.monotasks().size(), 4u + 2u * 2u);
  // Stage 1 tasks sync-depend on stage 0 (barrier), with no async parents.
  for (TaskId t : plan.stage(1).tasks) {
    EXPECT_EQ(plan.task(t).sync_parent_stages, std::vector<StageId>{0});
    EXPECT_TRUE(plan.task(t).async_parents.empty());
    // Network monotask first, then the CPU monotask depending on it.
    ASSERT_EQ(plan.task(t).monotasks.size(), 2u);
    const MonotaskSpec& net = plan.monotask(plan.task(t).monotasks[0]);
    const MonotaskSpec& cpu = plan.monotask(plan.task(t).monotasks[1]);
    EXPECT_EQ(net.type, ResourceType::kNetwork);
    EXPECT_EQ(cpu.type, ResourceType::kCpu);
    EXPECT_EQ(cpu.intask_deps, std::vector<MonotaskId>{net.id});
  }
  // The shuffle gathers slices of the msg dataset.
  const CollapsedOp& shuffle_cop = plan.cop(plan.monotask(plan.task(plan.stage(1).tasks[0])
                                                              .monotasks[0])
                                                .cop);
  ASSERT_EQ(shuffle_cop.read_modes.size(), 1u);
  EXPECT_EQ(shuffle_cop.read_modes[0], ReadMode::kGatherSlices);
}

TEST(Plan, CpuChainsCollapse) {
  OpGraph graph;
  const DataId input = graph.CreateExternalData(std::vector<double>(3, 10.0), "in");
  const DataId a = graph.CreateData(3, "a");
  const DataId b = graph.CreateData(3, "b");
  const DataId c = graph.CreateData(3, "c");
  OpCostModel cost1;
  cost1.cpu_complexity = 2.0;
  cost1.output_selectivity = 0.5;
  OpCostModel cost2;
  cost2.cpu_complexity = 4.0;
  cost2.output_selectivity = 0.5;
  OpHandle op1 = graph.CreateOp(ResourceType::kCpu, "m1").Read(input).Create(a).SetCost(cost1);
  OpHandle op2 = graph.CreateOp(ResourceType::kCpu, "m2").Read(a).Create(b).SetCost(cost2);
  OpHandle op3 = graph.CreateOp(ResourceType::kCpu, "m3").Read(b).Create(c).SetCost(cost1);
  op1.To(op2, DepKind::kAsync);
  op2.To(op3, DepKind::kAsync);
  const ExecutionPlan plan = ExecutionPlan::Build(graph, 1);
  ASSERT_EQ(plan.cops().size(), 1u);
  const CollapsedOp& cop = plan.cop(0);
  EXPECT_EQ(cop.members.size(), 3u);
  // Composed complexity: c1 + s1*c2 + s1*s2*c3 = 2 + 0.5*4 + 0.25*2 = 4.5.
  EXPECT_DOUBLE_EQ(cop.cost.cpu_complexity, 4.5);
  // Composed selectivity: 0.5^3.
  EXPECT_DOUBLE_EQ(cop.cost.output_selectivity, 0.125);
  EXPECT_EQ(plan.monotasks().size(), 3u);  // One per partition.
  EXPECT_EQ(plan.stages().size(), 1u);
}

TEST(Plan, ChainWithSideReaderDoesNotCollapse) {
  OpGraph graph;
  const DataId input = graph.CreateExternalData(std::vector<double>(2, 10.0), "in");
  const DataId a = graph.CreateData(2, "a");
  const DataId b = graph.CreateData(2, "b");
  const DataId shuffled = graph.CreateData(2, "sh");
  OpHandle op1 = graph.CreateOp(ResourceType::kCpu, "p1").Read(input).Create(a);
  OpHandle op2 = graph.CreateOp(ResourceType::kCpu, "p2").Read(a).Create(b);
  OpHandle net = graph.CreateOp(ResourceType::kNetwork, "n").Read(a).Create(shuffled);
  op1.To(op2, DepKind::kAsync);
  op1.To(net, DepKind::kSync);
  const ExecutionPlan plan = ExecutionPlan::Build(graph, 1);
  // `a` has two readers, so p1/p2 must stay separate cops.
  EXPECT_EQ(plan.cops().size(), 3u);
}

TEST(Plan, JoinTaskContainsBothShuffles) {
  // Two upstream stages shuffle into one join stage: each join task holds
  // two network monotasks and one CPU monotask (Figure 3's pattern).
  OpGraph graph;
  const DataId left = graph.CreateExternalData(std::vector<double>(4, 10.0), "left");
  const DataId right = graph.CreateExternalData(std::vector<double>(4, 20.0), "right");
  const DataId lmsg = graph.CreateData(4, "lmsg");
  const DataId rmsg = graph.CreateData(4, "rmsg");
  const DataId lsh = graph.CreateData(2, "lsh");
  const DataId rsh = graph.CreateData(2, "rsh");
  const DataId out = graph.CreateData(2, "out");
  OpHandle lscan = graph.CreateOp(ResourceType::kCpu, "lscan").Read(left).Create(lmsg);
  OpHandle rscan = graph.CreateOp(ResourceType::kCpu, "rscan").Read(right).Create(rmsg);
  OpHandle lshuf = graph.CreateOp(ResourceType::kNetwork, "lshuf").Read(lmsg).Create(lsh);
  OpHandle rshuf = graph.CreateOp(ResourceType::kNetwork, "rshuf").Read(rmsg).Create(rsh);
  OpHandle join = graph.CreateOp(ResourceType::kCpu, "join").Read(lsh).Read(rsh).Create(out);
  lscan.To(lshuf, DepKind::kSync);
  rscan.To(rshuf, DepKind::kSync);
  lshuf.To(join, DepKind::kAsync);
  rshuf.To(join, DepKind::kAsync);
  const ExecutionPlan plan = ExecutionPlan::Build(graph, 1);
  ASSERT_EQ(plan.stages().size(), 3u);
  const StageSpec* join_stage = nullptr;
  for (const StageSpec& stage : plan.stages()) {
    if (stage.cops.size() == 3) {
      join_stage = &stage;
    }
  }
  ASSERT_NE(join_stage, nullptr);
  EXPECT_EQ(join_stage->num_tasks, 2);
  const TaskSpec& task = plan.task(join_stage->tasks[0]);
  ASSERT_EQ(task.monotasks.size(), 3u);
  EXPECT_EQ(task.sync_parent_stages.size(), 2u);
  // The CPU join monotask depends on both network monotasks.
  const MonotaskSpec& cpu = plan.monotask(task.monotasks[2]);
  EXPECT_EQ(cpu.type, ResourceType::kCpu);
  EXPECT_EQ(cpu.intask_deps.size(), 2u);
}

TEST(Plan, SliceWeightsNormalizedToMeanOne) {
  OpGraph graph = ReduceByKeyGraph(4, 8);
  OpDef& shuffle = graph.op(1);
  shuffle.cost.output_skew = 3.0;
  const ExecutionPlan plan = ExecutionPlan::Build(graph, 99);
  for (const CollapsedOp& cop : plan.cops()) {
    double total = 0.0;
    for (double w : cop.slice_weights) {
      total += w;
      EXPECT_GT(w, 0.0);
    }
    EXPECT_NEAR(total / cop.parallelism, 1.0, 1e-9);
  }
}

TEST(Plan, DeterministicForFixedSeed) {
  OpGraph graph1 = ReduceByKeyGraph(4, 8);
  graph1.op(1).cost.output_skew = 2.5;
  OpGraph graph2 = ReduceByKeyGraph(4, 8);
  graph2.op(1).cost.output_skew = 2.5;
  const ExecutionPlan a = ExecutionPlan::Build(graph1, 5);
  const ExecutionPlan b = ExecutionPlan::Build(graph2, 5);
  const ExecutionPlan c = ExecutionPlan::Build(graph2, 6);
  for (size_t i = 0; i < a.cops().size(); ++i) {
    EXPECT_EQ(a.cop(static_cast<int>(i)).slice_weights,
              b.cop(static_cast<int>(i)).slice_weights);
  }
  EXPECT_NE(a.cop(1).slice_weights, c.cop(1).slice_weights);
}

TEST(Plan, ExpectedWorkFollowsSelectivities) {
  OpGraph graph = ReduceByKeyGraph(4, 2);
  graph.op(0).cost.output_selectivity = 0.5;  // ser
  const auto work = ExecutionPlan::Build(graph, 1).ExpectedWorkByResource();
  // CPU: ser reads 400 + deser reads 200 (post-selectivity shuffle output).
  EXPECT_DOUBLE_EQ(work[static_cast<size_t>(ResourceType::kCpu)], 600.0);
  EXPECT_DOUBLE_EQ(work[static_cast<size_t>(ResourceType::kNetwork)], 200.0);
  EXPECT_DOUBLE_EQ(work[static_cast<size_t>(ResourceType::kDisk)], 0.0);
}

TEST(Job, CreateCompilesPlanAndChecksMemory) {
  JobSpec spec;
  spec.name = "j";
  spec.graph = ReduceByKeyGraph(2, 2);
  spec.declared_memory_bytes = 1e9;
  const auto job = Job::Create(7, std::move(spec));
  EXPECT_EQ(job->id, 7);
  EXPECT_EQ(job->plan.stages().size(), 2u);
}

}  // namespace
}  // namespace ursa
