// SLO-aware admission control (DESIGN.md section 11): shed policies over the
// bounded pending queue, the checkUvalue-style utilization gate, tier
// deferral under degradation, the backpressure ladder and the counters
// identity. Also covers the open-loop config parsers the CLI relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/scheduler/admission.h"
#include "src/workloads/openloop.h"

namespace ursa {
namespace {

AdmissionController::JobInfo MakeJob(JobId id, int tier, double expected_seconds,
                                     double slo = 0.0) {
  AdmissionController::JobInfo info;
  info.id = id;
  info.tier = tier;
  info.expected_seconds = expected_seconds;
  info.slo = slo;
  return info;
}

void ExpectIdentity(const AdmissionCounters& c) {
  EXPECT_EQ(c.submitted, c.admitted + c.shed + c.pending_now);
}

TEST(ShedPolicyTest, ParseAndName) {
  ShedPolicy policy = ShedPolicy::kRejectNewest;
  EXPECT_TRUE(ParseShedPolicy("newest", &policy));
  EXPECT_EQ(policy, ShedPolicy::kRejectNewest);
  EXPECT_TRUE(ParseShedPolicy("largest", &policy));
  EXPECT_EQ(policy, ShedPolicy::kRejectLargestWork);
  EXPECT_TRUE(ParseShedPolicy("tier", &policy));
  EXPECT_EQ(policy, ShedPolicy::kPriorityTier);
  EXPECT_FALSE(ParseShedPolicy("", &policy));
  EXPECT_FALSE(ParseShedPolicy("priority", &policy));
  EXPECT_STREQ(ShedPolicyName(ShedPolicy::kPriorityTier), "priority-tier");
  EXPECT_STREQ(BackpressureLevelName(BackpressureLevel::kDegrade), "degrade");
}

TEST(AdmissionControllerTest, SloUnattainableShedAtSubmit) {
  AdmissionConfig config;
  config.enabled = true;
  config.utilization_bound = 1.0;
  AdmissionController ac(config);
  // u = 20 / 10 = 2 > bound: even an empty cluster cannot meet the SLO.
  const auto decision = ac.OnSubmit(MakeJob(1, 0, 20.0, 10.0), 0.0);
  EXPECT_FALSE(decision.accepted);
  EXPECT_STREQ(decision.reason, "slo-unattainable");
  const AdmissionCounters c = ac.counters();
  EXPECT_EQ(c.slo_rejects, 1);
  EXPECT_EQ(c.shed, 1);
  EXPECT_EQ(c.pending_now, 0);
  ExpectIdentity(c);
}

TEST(AdmissionControllerTest, RejectNewestShedsIncomingWhenFull) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_pending = 2;
  config.shed_policy = ShedPolicy::kRejectNewest;
  AdmissionController ac(config);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(1, 0, 1.0), 0.0).accepted);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(2, 0, 1.0), 1.0).accepted);
  const auto decision = ac.OnSubmit(MakeJob(3, 0, 1.0), 2.0);
  EXPECT_FALSE(decision.accepted);
  EXPECT_EQ(decision.evicted, kInvalidId);
  EXPECT_STREQ(decision.reason, "queue-full");
  const AdmissionCounters c = ac.counters();
  EXPECT_EQ(c.submitted, 3);
  EXPECT_EQ(c.accepted, 2);
  EXPECT_EQ(c.shed, 1);
  EXPECT_EQ(c.evictions, 0);
  EXPECT_EQ(c.pending_now, 2);
  EXPECT_EQ(c.max_pending_depth, 2);
  ExpectIdentity(c);
}

TEST(AdmissionControllerTest, LargestWorkEvictsStrictlyLargestPending) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_pending = 2;
  config.shed_policy = ShedPolicy::kRejectLargestWork;
  AdmissionController ac(config);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(1, 0, 5.0), 0.0).accepted);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(2, 0, 10.0), 1.0).accepted);
  // Incoming 8s of work: job 2 (10s) is the largest and gets evicted.
  const auto evicting = ac.OnSubmit(MakeJob(3, 0, 8.0), 2.0);
  EXPECT_TRUE(evicting.accepted);
  EXPECT_EQ(evicting.evicted, 2);
  EXPECT_STREQ(evicting.reason, "evicted");
  // Incoming work ties the largest pending (8s): the incoming job loses the
  // tie and is shed, because evicting a queued job is strictly more
  // disruptive than rejecting a new one.
  const auto tie = ac.OnSubmit(MakeJob(4, 0, 8.0), 3.0);
  EXPECT_FALSE(tie.accepted);
  EXPECT_EQ(tie.evicted, kInvalidId);
  const AdmissionCounters c = ac.counters();
  EXPECT_EQ(c.evictions, 1);
  EXPECT_EQ(c.shed, 2);
  ExpectIdentity(c);
}

TEST(AdmissionControllerTest, PriorityTierShedsLowestTierNewestFirst) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_pending = 3;
  config.shed_policy = ShedPolicy::kPriorityTier;
  AdmissionController ac(config);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(1, 1, 1.0), 0.0).accepted);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(2, 2, 1.0), 1.0).accepted);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(3, 2, 1.0), 2.0).accepted);
  // High-priority incoming: the newest lowest-tier job (3) goes.
  const auto decision = ac.OnSubmit(MakeJob(4, 0, 1.0), 3.0);
  EXPECT_TRUE(decision.accepted);
  EXPECT_EQ(decision.evicted, 3);
  // Incoming lower-priority than everything pending: sheds itself.
  const auto low = ac.OnSubmit(MakeJob(5, 3, 1.0), 4.0);
  EXPECT_FALSE(low.accepted);
  EXPECT_EQ(low.evicted, kInvalidId);
  ExpectIdentity(ac.counters());
}

TEST(AdmissionControllerTest, StarvationGuardProtectsLongWaiters) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_pending = 1;
  config.shed_policy = ShedPolicy::kPriorityTier;
  config.starvation_guard = 2;
  AdmissionController ac(config);
  // A low-tier job waits while same-tier arrivals bounce off the full queue
  // (same tier + newer loses, so each incoming sheds itself).
  EXPECT_TRUE(ac.OnSubmit(MakeJob(1, 2, 1.0), 0.0).accepted);
  EXPECT_FALSE(ac.OnSubmit(MakeJob(2, 2, 1.0), 1.0).accepted);
  EXPECT_FALSE(ac.OnSubmit(MakeJob(3, 2, 1.0), 2.0).accepted);
  // Job 1 survived starvation_guard shed rounds and is now protected: even
  // a tier-0 arrival cannot evict it and is shed instead.
  const auto high = ac.OnSubmit(MakeJob(4, 0, 1.0), 3.0);
  EXPECT_FALSE(high.accepted);
  EXPECT_EQ(high.evicted, kInvalidId);
  EXPECT_STREQ(high.reason, "queue-full");
  const AdmissionCounters c = ac.counters();
  EXPECT_EQ(c.evictions, 0);
  EXPECT_EQ(c.pending_now, 1);
  ExpectIdentity(c);
}

TEST(AdmissionControllerTest, UtilizationGateBlocksUntilAShareFrees) {
  AdmissionConfig config;
  config.enabled = true;
  config.utilization_bound = 1.0;
  config.default_slo = 10.0;
  AdmissionController ac(config);
  // u = 6/10 = 0.6 each; two together exceed the bound of 1.0.
  EXPECT_TRUE(ac.OnSubmit(MakeJob(1, 0, 6.0), 0.0).accepted);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(2, 0, 6.0), 0.0).accepted);
  EXPECT_EQ(ac.GateActivation(1, 1.0, false), AdmissionController::Gate::kAdmit);
  ac.OnActivated(1, 1.0);
  EXPECT_EQ(ac.GateActivation(2, 1.0, false),
            AdmissionController::Gate::kBlockedUtilization);
  ac.OnJobFinished(1);
  EXPECT_EQ(ac.GateActivation(2, 7.0, false), AdmissionController::Gate::kAdmit);
  ac.OnActivated(2, 7.0);
  const AdmissionCounters c = ac.counters();
  EXPECT_EQ(c.admitted, 2);
  EXPECT_DOUBLE_EQ(c.total_admission_latency, 1.0 + 7.0);
  EXPECT_GT(c.admission_latency_ewma, 0.0);
  ExpectIdentity(c);
}

TEST(AdmissionControllerTest, TierDeferralNeedsDegradeAndCompetingWork) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_pending = 4;
  config.degrade_start = 0.75;
  config.defer_age_cap = 30.0;
  AdmissionController ac(config);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(1, 1, 1.0), 0.0).accepted);
  // Not degraded: a low-tier job activates normally.
  EXPECT_EQ(ac.GateActivation(1, 1.0, true), AdmissionController::Gate::kAdmit);
  // Fill to the degrade threshold and refresh the level.
  EXPECT_TRUE(ac.OnSubmit(MakeJob(2, 0, 1.0), 1.0).accepted);
  EXPECT_TRUE(ac.OnSubmit(MakeJob(3, 0, 1.0), 1.0).accepted);
  EXPECT_TRUE(ac.UpdateBackpressure(2.0, 1.0));
  ASSERT_EQ(ac.level(), BackpressureLevel::kDegrade);
  // Degraded + a higher-priority job waiting: the tier-1 job defers...
  EXPECT_EQ(ac.GateActivation(1, 2.0, true), AdmissionController::Gate::kDeferTier);
  // ...but without competing work deferral is suppressed (it would only
  // idle the cluster), and past the age cap it is admitted regardless.
  EXPECT_EQ(ac.GateActivation(1, 2.0, false), AdmissionController::Gate::kAdmit);
  EXPECT_EQ(ac.GateActivation(1, 40.0, true), AdmissionController::Gate::kAdmit);
  EXPECT_EQ(ac.counters().deferrals, 1);
}

TEST(AdmissionControllerTest, BackpressureLadderAndThrottleFactor) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_pending = 10;
  config.throttle_start = 0.5;
  config.degrade_start = 0.8;
  config.max_throttle_factor = 3.0;
  config.headroom_floor = 0.05;
  AdmissionController ac(config);
  EXPECT_EQ(ac.level(), BackpressureLevel::kNone);
  EXPECT_DOUBLE_EQ(ac.throttle_factor(), 1.0);

  JobId next = 1;
  const auto fill_to = [&](int depth) {
    while (ac.counters().pending_now < depth) {
      ASSERT_TRUE(ac.OnSubmit(MakeJob(next++, 0, 1.0), 0.0).accepted);
    }
  };
  // One pending job + a saturated cluster (no D_r headroom) escalates one
  // step even though the queue is nearly empty.
  fill_to(1);
  EXPECT_TRUE(ac.UpdateBackpressure(1.0, 0.01));
  EXPECT_EQ(ac.level(), BackpressureLevel::kThrottle);
  EXPECT_TRUE(ac.UpdateBackpressure(2.0, 1.0));
  EXPECT_EQ(ac.level(), BackpressureLevel::kNone);

  fill_to(5);  // Ratio 0.5: throttle band.
  EXPECT_TRUE(ac.UpdateBackpressure(3.0, 1.0));
  EXPECT_EQ(ac.level(), BackpressureLevel::kThrottle);
  const double factor = ac.throttle_factor();
  EXPECT_GE(factor, 1.0);
  EXPECT_LT(factor, 3.0);

  fill_to(8);  // Ratio 0.8: degrade, max backoff.
  EXPECT_TRUE(ac.UpdateBackpressure(4.0, 1.0));
  EXPECT_EQ(ac.level(), BackpressureLevel::kDegrade);
  EXPECT_DOUBLE_EQ(ac.throttle_factor(), 3.0);
  EXPECT_FALSE(ac.UpdateBackpressure(5.0, 1.0));  // No change, no transition.
  EXPECT_EQ(ac.counters().level_changes, 4);
  ExpectIdentity(ac.counters());
}

TEST(OpenLoopParsingTest, TenantSpecs) {
  std::vector<TenantSpec> tenants;
  std::string error;
  ASSERT_TRUE(ParseTenantSpecs("interactive:2:0:8,batch:1:1:20,scavenger", &tenants,
                               &error))
      << error;
  ASSERT_EQ(tenants.size(), 3u);
  EXPECT_EQ(tenants[0].name, "interactive");
  EXPECT_DOUBLE_EQ(tenants[0].weight, 2.0);
  EXPECT_EQ(tenants[1].tier, 1);
  EXPECT_DOUBLE_EQ(tenants[1].slo, 20.0);
  EXPECT_DOUBLE_EQ(tenants[2].weight, 1.0);  // Defaults.
  EXPECT_EQ(tenants[2].tier, 0);

  EXPECT_FALSE(ParseTenantSpecs("a:0", &tenants, &error));      // Zero weight.
  EXPECT_FALSE(ParseTenantSpecs("a:1:-1", &tenants, &error));   // Negative tier.
  EXPECT_FALSE(ParseTenantSpecs("a:x", &tenants, &error));      // Non-numeric.
  EXPECT_FALSE(ParseTenantSpecs(":1", &tenants, &error));       // Empty name.
}

TEST(OpenLoopParsingTest, InterarrivalTrace) {
  const std::string path = ::testing::TempDir() + "/ursa_gaps.txt";
  {
    std::ofstream out(path);
    out << "0.5 1.0\n2.5\n";
  }
  std::vector<double> gaps;
  std::string error;
  ASSERT_TRUE(LoadInterarrivalTrace(path, &gaps, &error)) << error;
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[2], 2.5);

  EXPECT_FALSE(LoadInterarrivalTrace(path + ".missing", &gaps, &error));
  {
    std::ofstream out(path);
    out << "0.5 -1.0\n";
  }
  EXPECT_FALSE(LoadInterarrivalTrace(path, &gaps, &error));  // Negative gap.
  std::remove(path.c_str());
}

TEST(OpenLoopSourceTest, DeterministicSequenceWithTenantsAndSlos) {
  OpenLoopConfig config;
  config.enabled = true;
  config.seed = 7;
  config.arrival_rate = 2.0;
  config.max_jobs = 20;
  std::string error;
  ASSERT_TRUE(ParseTenantSpecs("a:3:0:5,b:1:1:50", &config.tenants, &error));

  OpenLoopSource s1(config);
  OpenLoopSource s2(config);
  double clock = 0.0;
  while (!s1.Exhausted(clock)) {
    const double gap = s1.NextGap();
    EXPECT_DOUBLE_EQ(gap, s2.NextGap());
    EXPECT_GE(gap, 0.0);
    clock += gap;
    const JobSpec a = s1.NextJob();
    const JobSpec b = s2.NextJob();
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_TRUE(a.tenant == "a" || a.tenant == "b") << a.tenant;
    // Tenant metadata propagates into the spec the scheduler sees.
    if (a.tenant == "a") {
      EXPECT_EQ(a.priority_tier, 0);
      EXPECT_DOUBLE_EQ(a.slo_seconds, 5.0);
    } else {
      EXPECT_EQ(a.priority_tier, 1);
      EXPECT_DOUBLE_EQ(a.slo_seconds, 50.0);
    }
  }
  EXPECT_EQ(s1.generated(), config.max_jobs);
}

}  // namespace
}  // namespace ursa
