// Tests for the per-resource monotask queues and the simulated worker:
// ordering policies, concurrency control, APT load reporting, processing
// rate monitoring, memory accounting and the small-transfer bypass
// (sections 4.2.2 / 4.2.3).
#include <gtest/gtest.h>

#include "src/exec/cluster.h"

namespace ursa {
namespace {

RunnableMonotask MakeTask(JobId job, double priority, double intra, double bytes) {
  RunnableMonotask mt;
  mt.job = job;
  mt.job_priority = priority;
  mt.intra_key = intra;
  mt.input_bytes = bytes;
  mt.work = bytes;
  return mt;
}

TEST(MonotaskQueue, OrdersByJobPriorityThenIntraKey) {
  MonotaskQueue queue;
  queue.Push(MakeTask(2, 2.0, 0.0, 1.0));
  queue.Push(MakeTask(1, 1.0, 5.0, 2.0));
  queue.Push(MakeTask(1, 1.0, 3.0, 3.0));
  EXPECT_EQ(queue.Pop().input_bytes, 3.0);  // Job 1, smaller intra key.
  EXPECT_EQ(queue.Pop().input_bytes, 2.0);
  EXPECT_EQ(queue.Pop().input_bytes, 1.0);
  EXPECT_TRUE(queue.Empty());
}

TEST(MonotaskQueue, FifoAmongTies) {
  MonotaskQueue queue;
  for (int i = 0; i < 5; ++i) {
    queue.Push(MakeTask(1, 0.0, 0.0, static_cast<double>(i)));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(queue.Pop().input_bytes, static_cast<double>(i));
  }
}

TEST(MonotaskQueue, TracksQueuedBytes) {
  MonotaskQueue queue;
  queue.Push(MakeTask(1, 0.0, 0.0, 10.0));
  queue.Push(MakeTask(1, 0.0, 0.0, 30.0));
  EXPECT_DOUBLE_EQ(queue.queued_bytes(), 40.0);
  queue.Pop();
  EXPECT_DOUBLE_EQ(queue.queued_bytes(), 30.0);
}

TEST(MonotaskQueue, ReprioritizeResorts) {
  MonotaskQueue queue;
  queue.Push(MakeTask(1, 1.0, 0.0, 1.0));
  queue.Push(MakeTask(2, 2.0, 0.0, 2.0));
  // Invert priorities: job 2 becomes more urgent.
  queue.Reprioritize([](JobId job) { return job == 2 ? 0.0 : 1.0; });
  EXPECT_EQ(queue.Pop().job, 2);
  EXPECT_EQ(queue.Pop().job, 1);
}

class WorkerTest : public ::testing::Test {
 protected:
  WorkerTest() {
    ClusterConfig config;
    config.num_workers = 2;
    config.worker.cores = 4;
    config.worker.cpu_byte_rate = 100.0;  // 100 bytes/s per core.
    config.worker.network_concurrency = 2;
    config.worker.disk_bytes_per_sec = 50.0;
    config.worker.memory_bytes = 1000.0;
    cluster_ = std::make_unique<Cluster>(&sim_, config);
  }

  RunnableMonotask Cpu(double bytes, std::function<void()> done = nullptr) {
    RunnableMonotask mt = MakeTask(1, 0.0, 0.0, bytes);
    mt.type = ResourceType::kCpu;
    mt.on_complete = std::move(done);
    return mt;
  }

  Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(WorkerTest, CpuConcurrencyBoundedByCores) {
  Worker& worker = cluster_->worker(0);
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    worker.Submit(Cpu(100.0, [&] { ++completed; }));  // 1 s each.
  }
  sim_.Run(1.5);
  EXPECT_EQ(completed, 4);  // First wave only.
  sim_.Run();
  EXPECT_EQ(completed, 8);
  EXPECT_NEAR(sim_.Now(), 2.0, 1e-9);
  // Busy-core integral: 4 cores for 2 seconds.
  EXPECT_NEAR(worker.cpu_busy_tracker().Integral(0.0, 2.0), 8.0, 1e-9);
}

TEST_F(WorkerTest, AptCpuZeroWithIdleCores) {
  Worker& worker = cluster_->worker(0);
  worker.Submit(Cpu(100.0));
  EXPECT_DOUBLE_EQ(worker.ApproxProcessingTime(ResourceType::kCpu), 0.0);
  for (int i = 0; i < 8; ++i) {
    worker.Submit(Cpu(100.0));
  }
  // All cores busy: APT reflects pending work / overall rate.
  EXPECT_GT(worker.ApproxProcessingTime(ResourceType::kCpu), 0.0);
}

TEST_F(WorkerTest, DiskSerializedPerDisk) {
  Worker& worker = cluster_->worker(0);
  double last = 0.0;
  for (int i = 0; i < 2; ++i) {
    RunnableMonotask mt = MakeTask(1, 0.0, 0.0, 50.0);
    mt.type = ResourceType::kDisk;
    mt.work = 50.0;  // 1 s at 50 B/s.
    mt.on_complete = [&] { last = sim_.Now(); };
    worker.Submit(std::move(mt));
  }
  sim_.Run();
  EXPECT_NEAR(last, 2.0, 1e-9);  // Serialized on the single disk.
}

TEST_F(WorkerTest, NetworkConcurrencyLimit) {
  Worker& worker = cluster_->worker(0);
  int completed = 0;
  const double downlink = cluster_->config().downlink_bytes_per_sec;
  for (int i = 0; i < 3; ++i) {
    RunnableMonotask mt = MakeTask(1, 0.0, 0.0, downlink);  // 1 s at full rate.
    mt.type = ResourceType::kNetwork;
    mt.pulls.push_back(RunnableMonotask::Pull{1, downlink});
    mt.on_complete = [&] { ++completed; };
    worker.Submit(std::move(mt));
  }
  // Concurrency 2: two transfers share the downlink (2 s), the third queues.
  sim_.Run(1.0);
  EXPECT_EQ(completed, 0);
  sim_.Run(2.5);
  EXPECT_EQ(completed, 2);
  sim_.Run();
  EXPECT_EQ(completed, 3);
}

TEST_F(WorkerTest, SmallTransfersBypassQueue) {
  Worker& worker = cluster_->worker(0);
  const double downlink = cluster_->config().downlink_bytes_per_sec;
  // Fill both network lanes with big transfers.
  for (int i = 0; i < 2; ++i) {
    RunnableMonotask mt = MakeTask(1, 0.0, 0.0, downlink * 10);
    mt.type = ResourceType::kNetwork;
    mt.pulls.push_back(RunnableMonotask::Pull{1, downlink * 10});
    worker.Submit(std::move(mt));
  }
  bool small_done = false;
  RunnableMonotask small = MakeTask(1, 0.0, 0.0, 1024.0);  // < 16 KB.
  small.type = ResourceType::kNetwork;
  small.pulls.push_back(RunnableMonotask::Pull{1, 1024.0});
  small.on_complete = [&] { small_done = true; };
  worker.Submit(std::move(small));
  sim_.Run(1.0);
  EXPECT_TRUE(small_done);  // Did not wait for the 10+ second transfers.
}

TEST_F(WorkerTest, MemoryAccounting) {
  Worker& worker = cluster_->worker(0);
  EXPECT_TRUE(worker.TryAllocateMemory(600.0));
  EXPECT_FALSE(worker.TryAllocateMemory(600.0));
  EXPECT_DOUBLE_EQ(worker.free_memory(), 400.0);
  worker.ReleaseMemory(600.0);
  EXPECT_DOUBLE_EQ(worker.free_memory(), 1000.0);
}

TEST_F(WorkerTest, RateMonitorAdjustsForComplexity) {
  Worker& worker = cluster_->worker(0);
  // Monotasks whose CPU work is 4x their input: the observed per-core rate
  // should drop toward 25 bytes/s (the paper's footnote-3 adjustment).
  for (int i = 0; i < 30; ++i) {
    RunnableMonotask mt = MakeTask(1, 0.0, 0.0, 100.0);
    mt.type = ResourceType::kCpu;
    mt.work = 400.0;
    worker.Submit(std::move(mt));
  }
  sim_.Run();
  // Overall rate = per-core rate x cores.
  EXPECT_NEAR(worker.ProcessingRate(ResourceType::kCpu), 25.0 * 4, 1.0);
}

TEST_F(WorkerTest, SpeedFactorAffectsInFlightMonotasks) {
  Worker& worker = cluster_->worker(0);
  double done_at = -1.0;
  worker.Submit(Cpu(100.0, [&] { done_at = sim_.Now(); }));  // 1 s at full speed.
  // Halfway through, the worker degrades to half speed: 50 bytes remain and
  // now take 1 s, so completion slips from t=1.0 to t=1.5.
  sim_.Schedule(0.5, [&] { worker.set_speed_factor(0.5); });
  sim_.Run();
  EXPECT_NEAR(done_at, 1.5, 1e-9);
}

TEST_F(WorkerTest, SpeedFactorRestoreReschedulesRemainingWork) {
  Worker& worker = cluster_->worker(0);
  worker.set_speed_factor(0.25);
  double cpu_done = -1.0;
  double disk_done = -1.0;
  worker.Submit(Cpu(100.0, [&] { cpu_done = sim_.Now(); }));  // 4 s degraded.
  RunnableMonotask disk = MakeTask(1, 0.0, 0.0, 50.0);
  disk.type = ResourceType::kDisk;
  disk.work = 50.0;  // 1 s at 50 B/s, 4 s degraded.
  disk.on_complete = [&] { disk_done = sim_.Now(); };
  worker.Submit(std::move(disk));
  // Recover at t=2: both are half done, the remainder runs at full rate.
  sim_.Schedule(2.0, [&] { worker.set_speed_factor(1.0); });
  sim_.Run();
  EXPECT_NEAR(cpu_done, 2.5, 1e-9);   // 50 bytes left at 100 B/s.
  EXPECT_NEAR(disk_done, 2.5, 1e-9);  // 25 bytes left at 50 B/s.
}

TEST_F(WorkerTest, LocalPullsUseLocalCopyRate) {
  Worker& worker = cluster_->worker(0);
  bool done = false;
  RunnableMonotask mt = MakeTask(1, 0.0, 0.0, 1e9);
  mt.type = ResourceType::kNetwork;
  mt.pulls.push_back(RunnableMonotask::Pull{0, 1e9});  // Local partition.
  mt.on_complete = [&] { done = true; };
  worker.Submit(std::move(mt));
  sim_.Run(0.5);  // 1 GB at 8 GB/s local rate = 0.125 s.
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace ursa
