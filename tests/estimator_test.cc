// Tests for the JM-side resource usage estimation (section 4.2.1): per-read
// input resolution, network pull aggregation per source worker, and the
// min(r * M(j), m2i * I(t)) memory formula.
#include <gtest/gtest.h>

#include "src/exec/estimator.h"

namespace ursa {
namespace {

std::unique_ptr<Job> ReduceByKeyJob(int in_parts, int out_parts, double part_bytes,
                                    double m2i = 0.0, double declared = 1e9) {
  JobSpec spec;
  spec.name = "job";
  spec.declared_memory_bytes = declared;
  spec.default_m2i = 2.0;
  OpGraph& graph = spec.graph;
  const DataId input = graph.CreateExternalData(
      std::vector<double>(static_cast<size_t>(in_parts), part_bytes), "in");
  const DataId msg = graph.CreateData(in_parts, "msg");
  const DataId shuffled = graph.CreateData(out_parts, "shuffled");
  const DataId result = graph.CreateData(out_parts, "result");
  OpHandle ser = graph.CreateOp(ResourceType::kCpu, "ser").Read(input).Create(msg);
  if (m2i > 0.0) {
    ser.SetM2i(m2i);
  }
  OpHandle shuffle =
      graph.CreateOp(ResourceType::kNetwork, "shuffle").Read(msg).Create(shuffled);
  OpHandle deser = graph.CreateOp(ResourceType::kCpu, "deser").Read(shuffled).Create(result);
  ser.To(shuffle, DepKind::kSync);
  shuffle.To(deser, DepKind::kAsync);
  return Job::Create(0, std::move(spec));
}

TEST(Estimator, ExternalReadUsesDeclaredSizes) {
  const auto job = ReduceByKeyJob(4, 2, 100.0);
  MetadataStore meta;
  // Stage 0 task 0 = ser monotask on partition 0.
  const TaskId t = job->plan.stage(0).tasks[0];
  const MonotaskId m = job->plan.task(t).monotasks[0];
  EXPECT_DOUBLE_EQ(UsageEstimator::MonotaskInputBytes(*job, m, meta, nullptr), 100.0);
}

TEST(Estimator, GatherSumsSlicesAcrossPartitions) {
  const auto job = ReduceByKeyJob(4, 2, 100.0);
  MetadataStore meta;
  // The ser outputs are materialized: partitions of `msg` (DataId 1).
  for (int p = 0; p < 4; ++p) {
    meta.Put(job->id, 1, p, 50.0, /*worker=*/p % 2);
  }
  const TaskId t = job->plan.stage(1).tasks[0];
  const MonotaskId net = job->plan.task(t).monotasks[0];
  // Uniform weights: slice 0 of each of 4 partitions = 50 / 2 each = 100.
  EXPECT_NEAR(UsageEstimator::MonotaskInputBytes(*job, net, meta, nullptr), 100.0, 1e-9);
  // Pulls aggregate per source worker: two workers x 50 bytes.
  const auto pulls = UsageEstimator::ResolvePulls(*job, net, meta);
  ASSERT_EQ(pulls.size(), 2u);
  EXPECT_NEAR(pulls[0].bytes, 50.0, 1e-9);
  EXPECT_NEAR(pulls[1].bytes, 50.0, 1e-9);
}

TEST(Estimator, TaskUsagePropagatesThroughInTaskChain) {
  const auto job = ReduceByKeyJob(4, 2, 100.0);
  MetadataStore meta;
  for (int p = 0; p < 4; ++p) {
    meta.Put(job->id, 1, p, 60.0, 0);
  }
  const TaskId t = job->plan.stage(1).tasks[0];
  const TaskUsage usage = UsageEstimator::EstimateTask(*job, t, meta, 0.0);
  // Network monotask input: 240 / 2 = 120. The CPU monotask consumes the
  // projected shuffle output (selectivity 1) = 120.
  EXPECT_NEAR(usage.bytes[static_cast<size_t>(ResourceType::kNetwork)], 120.0, 1e-9);
  EXPECT_NEAR(usage.bytes[static_cast<size_t>(ResourceType::kCpu)], 120.0, 1e-9);
  // Task input = root monotask (network) bytes only.
  EXPECT_NEAR(usage.input_bytes, 120.0, 1e-9);
}

TEST(Estimator, MemoryUsesM2iCap) {
  // Big declared memory: the m2i * I(t) term must win.
  const auto job = ReduceByKeyJob(2, 2, 1e9, /*m2i=*/1.5, /*declared=*/1e10);
  MetadataStore meta;
  const TaskId t = job->plan.stage(0).tasks[0];
  const TaskUsage usage = UsageEstimator::EstimateTask(*job, t, meta, /*ready_total=*/2e9);
  EXPECT_NEAR(usage.memory, 1.5 * 1e9, 1.0);
}

TEST(Estimator, MemoryUsesShareOfDeclaredCap) {
  // Small declared memory: r * M(j) must win. r = 0.5 (this task is half
  // the ready input).
  const auto job = ReduceByKeyJob(2, 2, 1e9, /*m2i=*/3.0);
  MetadataStore meta;
  const TaskId t = job->plan.stage(0).tasks[0];
  const TaskUsage usage = UsageEstimator::EstimateTask(*job, t, meta, /*ready_total=*/2e9);
  EXPECT_NEAR(usage.memory, 0.5 * 1e9, 1.0);
}

TEST(Estimator, MemoryHasFloor) {
  const auto job = ReduceByKeyJob(2, 2, 8.0);
  MetadataStore meta;
  const TaskId t = job->plan.stage(0).tasks[0];
  const TaskUsage usage = UsageEstimator::EstimateTask(*job, t, meta, 16.0);
  EXPECT_GE(usage.memory, 16.0 * 1024 * 1024);
}

TEST(MetadataStore, PutGetDrop) {
  MetadataStore meta;
  meta.Put(1, 2, 3, 42.0, 4);
  EXPECT_TRUE(meta.Has(1, 2, 3));
  EXPECT_DOUBLE_EQ(meta.Get(1, 2, 3).bytes, 42.0);
  EXPECT_EQ(meta.Get(1, 2, 3).worker, 4);
  meta.Put(1, 2, 4, 8.0, 0);
  EXPECT_DOUBLE_EQ(meta.DatasetBytes(1, 2, 8), 50.0);
  meta.DropJob(1);
  EXPECT_FALSE(meta.Has(1, 2, 3));
  EXPECT_EQ(meta.size(), 0u);
}

}  // namespace
}  // namespace ursa
