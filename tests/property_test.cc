// Property-based tests over randomly generated (valid) job DAGs: plan
// compilation invariants, end-to-end execution invariants, and determinism
// of whole experiments.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/driver/experiment.h"
#include "src/scheduler/ursa_scheduler.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

// Generates a random layered dataflow: alternating CPU chains and shuffles,
// with occasional side tables joined in - always structurally valid.
JobSpec RandomJobSpec(uint64_t seed) {
  Rng rng(seed);
  JobSpec spec;
  spec.name = "random" + std::to_string(seed);
  spec.declared_memory_bytes = 8e9;
  spec.seed = seed;
  OpGraph& graph = spec.graph;

  int parallelism = static_cast<int>(rng.UniformInt(static_cast<int64_t>(2), 12));
  std::vector<double> sizes(static_cast<size_t>(parallelism),
                            rng.Uniform(1e6, 1e8));
  const DataId input = graph.CreateExternalData(std::move(sizes), "in");
  DataId current = graph.CreateData(parallelism, "d0");
  OpCostModel cost;
  cost.cpu_complexity = rng.Uniform(0.5, 3.0);
  cost.output_selectivity = rng.Uniform(0.3, 1.2);
  OpHandle prev = graph.CreateOp(ResourceType::kCpu, "scan")
                      .Read(input)
                      .Create(current)
                      .SetCost(cost);
  const int layers = static_cast<int>(rng.UniformInt(static_cast<int64_t>(1), 6));
  for (int layer = 0; layer < layers; ++layer) {
    // Optional extra CPU op in the same stage (chained async).
    if (rng.Bernoulli(0.4)) {
      const DataId mapped = graph.CreateData(parallelism, "m" + std::to_string(layer));
      OpHandle map_op = graph.CreateOp(ResourceType::kCpu, "map" + std::to_string(layer))
                            .Read(current)
                            .Create(mapped)
                            .SetCost(cost);
      prev.To(map_op, DepKind::kAsync);
      prev = map_op;
      current = mapped;
    }
    const int next_parallelism =
        static_cast<int>(rng.UniformInt(static_cast<int64_t>(2), 12));
    const DataId shuffled =
        graph.CreateData(next_parallelism, "s" + std::to_string(layer));
    OpCostModel shuffle_cost;
    shuffle_cost.output_skew = rng.Uniform(1.0, 3.0);
    OpHandle shuffle = graph.CreateOp(ResourceType::kNetwork, "sh" + std::to_string(layer))
                           .Read(current)
                           .Create(shuffled)
                           .SetCost(shuffle_cost);
    prev.To(shuffle, DepKind::kSync);
    const DataId reduced =
        graph.CreateData(next_parallelism, "r" + std::to_string(layer));
    OpHandle reduce = graph.CreateOp(ResourceType::kCpu, "red" + std::to_string(layer))
                          .Read(shuffled)
                          .Create(reduced)
                          .SetCost(cost);
    shuffle.To(reduce, DepKind::kAsync);
    prev = reduce;
    current = reduced;
    parallelism = next_parallelism;
  }
  if (rng.Bernoulli(0.5)) {
    OpHandle write = graph.CreateOp(ResourceType::kDisk, "write")
                         .Read(current)
                         .SetParallelism(parallelism);
    prev.To(write, DepKind::kAsync);
  }
  graph.Validate();
  return spec;
}

class PlanInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanInvariants, StructuralInvariantsHold) {
  const JobSpec spec = RandomJobSpec(GetParam());
  const ExecutionPlan plan = ExecutionPlan::Build(spec.graph, GetParam());

  // 1. Every monotask belongs to exactly one task; tasks partition them.
  std::set<MonotaskId> seen;
  for (const TaskSpec& task : plan.tasks()) {
    for (MonotaskId m : task.monotasks) {
      EXPECT_TRUE(seen.insert(m).second) << "monotask in two tasks";
      EXPECT_EQ(plan.monotask(m).task, task.id);
    }
  }
  EXPECT_EQ(seen.size(), plan.monotasks().size());

  // 2. Every task belongs to its stage's task list; indices are dense.
  for (const StageSpec& stage : plan.stages()) {
    EXPECT_EQ(static_cast<int>(stage.tasks.size()), stage.num_tasks);
    for (size_t i = 0; i < stage.tasks.size(); ++i) {
      const TaskSpec& task = plan.task(stage.tasks[i]);
      EXPECT_EQ(task.stage, stage.id);
      EXPECT_EQ(task.index, static_cast<int>(i));
    }
  }

  // 3. In-task dependencies stay within the task and point backwards in the
  // topological order of its monotask list.
  for (const TaskSpec& task : plan.tasks()) {
    std::set<MonotaskId> members(task.monotasks.begin(), task.monotasks.end());
    std::set<MonotaskId> before;
    for (MonotaskId m : task.monotasks) {
      for (MonotaskId dep : plan.monotask(m).intask_deps) {
        EXPECT_TRUE(members.count(dep)) << "in-task dep crosses tasks";
        EXPECT_TRUE(before.count(dep)) << "in-task dep not topologically ordered";
      }
      before.insert(m);
    }
  }

  // 4. Async parent tasks share the partition index; sync parents are whole
  // stages distinct from the task's own stage.
  for (const TaskSpec& task : plan.tasks()) {
    for (TaskId parent : task.async_parents) {
      EXPECT_EQ(plan.task(parent).index, task.index);
      EXPECT_NE(plan.task(parent).stage, task.stage);
    }
    for (StageId stage : task.sync_parent_stages) {
      EXPECT_NE(stage, task.stage);
    }
  }

  // 5. Slice weights stay positive with mean 1.
  for (const CollapsedOp& cop : plan.cops()) {
    double total = 0.0;
    for (double w : cop.slice_weights) {
      EXPECT_GT(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total / cop.parallelism, 1.0, 1e-9);
  }
}

TEST_P(PlanInvariants, ExecutesToCompletionUnderUrsa) {
  Workload workload;
  workload.name = "random";
  WorkloadJob job;
  job.spec = RandomJobSpec(GetParam());
  workload.jobs.push_back(std::move(job));
  const ExperimentResult result = RunExperiment(workload, UrsaEjfConfig(), "ursa");
  EXPECT_GT(result.records[0].jct(), 0.0);
  // UE is 100% by construction in Ursa (allocation == use).
  EXPECT_NEAR(result.efficiency.ue_cpu, 100.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanInvariants, ::testing::Range<uint64_t>(1, 21));

TEST(Determinism, IdenticalSeedsGiveIdenticalExperiments) {
  TpchWorkloadConfig wc;
  wc.num_jobs = 8;
  wc.seed = 99;
  const Workload workload = MakeTpchWorkload(wc);
  const ExperimentResult a = RunExperiment(workload, UrsaEjfConfig(), "a");
  const ExperimentResult b = RunExperiment(workload, UrsaEjfConfig(), "b");
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].finish_time, b.records[i].finish_time);
  }
  EXPECT_DOUBLE_EQ(a.efficiency.se_cpu, b.efficiency.se_cpu);
}

TEST(Determinism, DifferentSeedsDiffer) {
  TpchWorkloadConfig wc;
  wc.num_jobs = 8;
  wc.seed = 99;
  const Workload a_workload = MakeTpchWorkload(wc);
  wc.seed = 100;
  const Workload b_workload = MakeTpchWorkload(wc);
  const ExperimentResult a = RunExperiment(a_workload, UrsaEjfConfig(), "a");
  const ExperimentResult b = RunExperiment(b_workload, UrsaEjfConfig(), "b");
  EXPECT_NE(a.makespan(), b.makespan());
}

class AblationCompletes : public ::testing::TestWithParam<int> {};

TEST_P(AblationCompletes, EveryConfigurationFinishesTheWorkload) {
  TpchWorkloadConfig wc;
  wc.num_jobs = 5;
  wc.submit_interval = 2.0;
  wc.seed = 17;
  const Workload workload = MakeTpchWorkload(wc);
  ExperimentConfig config = UrsaEjfConfig();
  switch (GetParam()) {
    case 0:
      config.ursa.stage_aware = false;
      break;
    case 1:
      config.ursa.consider_network = false;
      break;
    case 2:
      config.ursa.enable_job_ordering = false;
      break;
    case 3:
      config.ursa.enable_monotask_ordering = false;
      break;
    case 4:
      config.ursa.scheduling_interval = 1.0;
      break;
    case 5:
      config.ursa.policy = OrderingPolicy::kSrjf;
      config.ursa.enable_job_ordering = false;
      break;
    case 6:
      config.cluster.worker.network_concurrency = 1;
      break;
    case 7:
      config.cluster.worker.network_concurrency = 4;
      break;
  }
  const ExperimentResult result = RunExperiment(workload, config, "ablation");
  EXPECT_EQ(result.records.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Configs, AblationCompletes, ::testing::Range(0, 8));

// Chaos fuzz over the worker resource counters: under a random mix of
// crashes, recoveries, transient monotask failures, speed-factor churn and
// speculative cancellations, busy_cores / busy_disks / active_network /
// running_bytes must never go negative or exceed capacity, and everything
// must return to zero once the workload drains.
class ChaosInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosInvariants, WorkerCountersNeverGoNegativeAndDrainToZero) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 1);
  Simulator sim;
  ClusterConfig cc;
  cc.num_workers = 5;
  cc.worker.cores = 8;
  cc.worker.cpu_byte_rate = 100e6;
  Cluster cluster(&sim, cc);
  UrsaSchedulerConfig sc;
  sc.spec.enabled = true;  // Speculative cancellations join the chaos mix.
  sc.spec.min_runtime = 0.5;
  sc.spec.min_stage_samples = 2;
  sc.spec.slowdown_threshold = 1.3;
  UrsaScheduler scheduler(&sim, &cluster, sc);

  TpchWorkloadConfig wc;
  wc.num_jobs = 6;
  wc.submit_interval = 2.0;
  wc.seed = seed;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }

  const auto check = [&] {
    for (int w = 0; w < cluster.size(); ++w) {
      const Worker& worker = cluster.worker(w);
      EXPECT_GE(worker.busy_cores(), 0) << "worker " << w;
      EXPECT_LE(worker.busy_cores(), cc.worker.cores) << "worker " << w;
      EXPECT_GE(worker.busy_disks(), 0) << "worker " << w;
      EXPECT_GE(worker.active_network(), 0) << "worker " << w;
      for (int r = 0; r < kNumMonotaskResources; ++r) {
        EXPECT_GE(worker.running_bytes(static_cast<ResourceType>(r)), -1e-3)
            << "worker " << w << " resource " << r;
      }
    }
  };

  // One guaranteed straggler so speculation reliably participates.
  sim.ScheduleAt(1.0, [&] { cluster.worker(1).set_speed_factor(0.1); });
  // Random chaos script. Actions pick their victim at fire time so the mix
  // adapts to the current cluster state (never kill a third worker, only
  // recover dead ones).
  for (int i = 0; i < 14; ++i) {
    sim.ScheduleAt(rng.Uniform(1.0, 30.0), [&] {
      const int w = static_cast<int>(
          rng.UniformInt(static_cast<int64_t>(0), cluster.size() - 1));
      Worker& worker = cluster.worker(w);
      int failed = 0;
      for (int j = 0; j < cluster.size(); ++j) {
        failed += cluster.worker(j).failed() ? 1 : 0;
      }
      switch (rng.UniformInt(static_cast<int64_t>(0), 3)) {
        case 0:
          if (!worker.failed() && failed < 2) {
            scheduler.FailWorker(w);
          }
          break;
        case 1:
          if (worker.failed()) {
            worker.Recover();  // The heartbeat detector rejoins it.
          }
          break;
        case 2:
          if (!worker.failed()) {
            worker.set_speed_factor(rng.Uniform(0.05, 1.0));
          }
          break;
        case 3:
          if (!worker.failed()) {
            worker.InjectTransientFailures(2);
          }
          break;
      }
      check();
    });
  }
  // Steady sampling of the invariants while the chaos plays out.
  for (int i = 1; i <= 40; ++i) {
    sim.ScheduleAt(static_cast<double>(i), check);
  }
  sim.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished()) << "seed " << seed;
  // Drained: every healthy worker is fully idle with clean memory books.
  for (int w = 0; w < cluster.size(); ++w) {
    const Worker& worker = cluster.worker(w);
    if (worker.failed()) {
      continue;
    }
    EXPECT_EQ(worker.busy_cores(), 0) << "worker " << w;
    EXPECT_EQ(worker.busy_disks(), 0) << "worker " << w;
    EXPECT_EQ(worker.active_network(), 0) << "worker " << w;
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      EXPECT_NEAR(worker.running_bytes(static_cast<ResourceType>(r)), 0.0, 1e-3);
    }
    EXPECT_NEAR(worker.free_memory(), worker.memory_capacity(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosInvariants, ::testing::Range<uint64_t>(1, 6));

// Control-plane chaos (DESIGN.md section 14): with the lossy message layer,
// mid-run scheduler crashes and a worker failure all active, execution must
// stay at-most-once per attempt. The observable: every job finishes, and
// every worker drains to zero with clean memory books — a duplicate dispatch
// that ran twice, or a restored placement that double-charged memory, would
// leak busy counters or allocation permanently.
class CtrlChaosInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CtrlChaosInvariants, ExactlyOnceObservablesHoldUnderMessageChaos) {
  const uint64_t seed = GetParam();
  Simulator sim;
  ClusterConfig cc;
  cc.num_workers = 5;
  cc.worker.cores = 8;
  cc.worker.cpu_byte_rate = 100e6;
  Cluster cluster(&sim, cc);
  UrsaSchedulerConfig sc;
  sc.ctrl.enabled = true;
  sc.ctrl.seed = seed;
  sc.ctrl.loss_prob = 0.1;
  sc.ctrl.dup_prob = 0.1;
  sc.ctrl.delay_prob = 0.1;
  // Odd seeds journal, even seeds exercise the full-restart fallback.
  sc.ctrl.checkpoint_interval = (seed % 2 == 1) ? 1.0 : 0.0;
  sc.spec.enabled = true;  // Speculative channels join the dedup surface.
  sc.spec.min_runtime = 0.5;
  sc.spec.min_stage_samples = 2;
  sc.spec.slowdown_threshold = 1.3;
  UrsaScheduler scheduler(&sim, &cluster, sc);

  TpchWorkloadConfig wc;
  wc.num_jobs = 6;
  wc.submit_interval = 2.0;
  wc.seed = seed;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  sim.ScheduleAt(4.0 + static_cast<double>(seed), [&] { scheduler.FailWorker(2); });
  sim.ScheduleAt(8.0 + static_cast<double>(seed),
                 [&] { scheduler.InjectSchedulerCrash(2.0); });
  sim.Run();

  EXPECT_TRUE(scheduler.AllJobsFinished()) << "seed " << seed;
  const FaultCounters c = scheduler.fault_stats();
  EXPECT_EQ(c.scheduler_crashes, 1);
  EXPECT_EQ(c.scheduler_recoveries, 1);
  EXPECT_GT(c.msgs_lost, 0);
  EXPECT_GT(c.msgs_duplicated, 0);
  // Every duplicated or retransmitted dispatch that landed twice was
  // suppressed by the worker-side dedup, never run twice.
  EXPECT_GE(c.dup_suppressed, 0);
  for (int w = 0; w < cluster.size(); ++w) {
    const Worker& worker = cluster.worker(w);
    if (worker.failed()) {
      continue;
    }
    EXPECT_EQ(worker.busy_cores(), 0) << "worker " << w;
    EXPECT_EQ(worker.busy_disks(), 0) << "worker " << w;
    EXPECT_EQ(worker.active_network(), 0) << "worker " << w;
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      EXPECT_NEAR(worker.running_bytes(static_cast<ResourceType>(r)), 0.0, 1e-3)
          << "worker " << w << " resource " << r;
    }
    EXPECT_NEAR(worker.free_memory(), worker.memory_capacity(), 1.0)
        << "worker " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtrlChaosInvariants, ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace ursa
