// Tests for the baseline subsystems: the YARN-like container manager, the
// executor-model runtime modes, the packing placement algorithms, and the
// BSP (Petuum/Gemini-like) runtime.
#include <gtest/gtest.h>

#include "src/baselines/bsp_runtime.h"
#include "src/baselines/container_manager.h"
#include "src/baselines/executor_runtime.h"
#include "src/baselines/packing_schedulers.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

class ContainerManagerTest : public ::testing::Test {
 protected:
  ContainerManagerTest() {
    config_.num_workers = 2;
    config_.worker.cores = 8;
    config_.worker.memory_bytes = 64.0 * 1024 * 1024 * 1024;
    cluster_ = std::make_unique<Cluster>(&sim_, config_);
  }

  Simulator sim_;
  ClusterConfig config_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ContainerManagerTest, GrantsAtHeartbeatGranularity) {
  ContainerManagerConfig cm_config;
  cm_config.heartbeat_interval = 1.0;
  ContainerManager cm(&sim_, cluster_.get(), cm_config);
  std::vector<double> grant_times;
  cm.RequestContainers(0, 4, 1e9, 2, [&](WorkerId) { grant_times.push_back(sim_.Now()); });
  sim_.Run(0.5);
  EXPECT_TRUE(grant_times.empty());  // Before the first heartbeat.
  sim_.Run();
  ASSERT_EQ(grant_times.size(), 2u);
  EXPECT_NEAR(grant_times[0], 1.0, 1e-9);
}

TEST_F(ContainerManagerTest, FifoHeadOfLineBlocks) {
  ContainerManager cm(&sim_, cluster_.get(), {});
  int job0_granted = 0;
  int job1_granted = 0;
  // Job 0 wants 5 containers of 6 cores (only 2 fit, leaving 2 free cores
  // per worker); job 1 wants a tiny one that would fit, but FIFO holds it
  // behind job 0's blocked request.
  cm.RequestContainers(0, 6, 1e9, 5, [&](WorkerId) { ++job0_granted; });
  cm.RequestContainers(1, 1, 1e9, 1, [&](WorkerId) { ++job1_granted; });
  sim_.Run(10.0);
  EXPECT_EQ(job0_granted, 2);
  EXPECT_EQ(job1_granted, 0);
  // Cancel job 0's backlog: job 1 gets through on the next heartbeat.
  cm.CancelPending(0);
  sim_.Run(12.0);
  EXPECT_EQ(job1_granted, 1);
}

TEST_F(ContainerManagerTest, ReleaseMakesRoom) {
  ContainerManager cm(&sim_, cluster_.get(), {});
  std::vector<WorkerId> granted;
  cm.RequestContainers(0, 8, 1e9, 2, [&](WorkerId w) { granted.push_back(w); });
  sim_.Run(5.0);
  ASSERT_EQ(granted.size(), 2u);
  int extra = 0;
  cm.RequestContainers(1, 8, 1e9, 1, [&](WorkerId) { ++extra; });
  sim_.Run(8.0);
  EXPECT_EQ(extra, 0);  // Cluster cores exhausted.
  cm.ReleaseContainer(0, granted[0], 8, 1e9);
  sim_.Run(11.0);
  EXPECT_EQ(extra, 1);
}

TEST_F(ContainerManagerTest, OversubscriptionExpandsLogicalCores) {
  ContainerManagerConfig cm_config;
  cm_config.cpu_subscription_ratio = 2.0;
  ContainerManager cm(&sim_, cluster_.get(), cm_config);
  int granted = 0;
  // 2 workers x 8 cores x ratio 2 = 32 logical cores -> 4 containers of 8.
  cm.RequestContainers(0, 8, 1e9, 5, [&](WorkerId) { ++granted; });
  sim_.Run(5.0);
  EXPECT_EQ(granted, 4);
}

TEST(PackingState, TetrisBlocksOnPhantomNetworkDemand) {
  Simulator sim;
  ClusterConfig config;
  config.num_workers = 1;
  config.worker.cores = 32;
  Cluster cluster(&sim, config);
  PackingState tetris(&cluster, PlacementAlgorithm::kTetris);
  PackingState tetris2(&cluster, PlacementAlgorithm::kTetris2);
  TaskUsage shuffle_task;
  shuffle_task.bytes[static_cast<size_t>(ResourceType::kNetwork)] = 1e9;
  shuffle_task.memory = 1e6;
  // Tetris reserves a downlink slice per task: only a few fit despite 32
  // cores; Tetris2 packs all of them.
  int tetris_fit = 0;
  int tetris2_fit = 0;
  for (int i = 0; i < 32; ++i) {
    if (tetris.SelectWorker(shuffle_task) != kInvalidId) {
      tetris.Reserve(0, i, 0, shuffle_task);
      ++tetris_fit;
    }
    if (tetris2.SelectWorker(shuffle_task) != kInvalidId) {
      tetris2.Reserve(0, i, 0, shuffle_task);
      ++tetris2_fit;
    }
  }
  EXPECT_LT(tetris_fit, 32);
  EXPECT_EQ(tetris2_fit, 32);
  // Releases restore capacity.
  for (int i = 0; i < tetris_fit; ++i) {
    tetris.Release(0, i);
  }
  EXPECT_DOUBLE_EQ(tetris.reserved_cores(0), 0.0);
}

TEST(PackingState, CapacityPrefersLeastLoadedWorker) {
  Simulator sim;
  ClusterConfig config;
  config.num_workers = 2;
  config.worker.cores = 4;
  Cluster cluster(&sim, config);
  PackingState capacity(&cluster, PlacementAlgorithm::kCapacity);
  TaskUsage task;
  task.bytes[static_cast<size_t>(ResourceType::kCpu)] = 1e6;
  task.memory = 1e6;
  const WorkerId first = capacity.SelectWorker(task);
  capacity.Reserve(0, 0, first, task);
  EXPECT_NE(capacity.SelectWorker(task), first);  // Balance to the other.
}

TEST(ExecutorRuntime, DynamicAllocationReleasesIdleExecutors) {
  Simulator sim;
  ClusterConfig config;
  Cluster cluster(&sim, config);
  ExecutorModelConfig exec_config;
  exec_config.mode = ExecutorMode::kTaskSlots;
  exec_config.dynamic_allocation = true;
  exec_config.idle_timeout = 2.0;
  ExecutorModelScheduler scheduler(&sim, &cluster, exec_config, {});
  auto job = Job::Create(0, MakeTpchQuery(6, 100.0 * 1024 * 1024 * 1024, 3));
  scheduler.SubmitJob(std::move(job));
  sim.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  // Allocation must drop back to zero after the job: everything released.
  const double t = sim.Now();
  for (int w = 0; w < cluster.size(); ++w) {
    EXPECT_DOUBLE_EQ(cluster.worker(w).cpu_alloc_tracker().current(), 0.0);
    EXPECT_DOUBLE_EQ(cluster.worker(w).free_memory(), cluster.worker(w).memory_capacity());
  }
  (void)t;
}

TEST(ExecutorRuntime, TaskSlotModeHoldsCoresDuringFetch) {
  // UE < 100%: allocated core-time strictly exceeds busy core-time for a
  // job with shuffles.
  Simulator sim;
  Cluster cluster(&sim, {});
  ExecutorModelConfig exec_config;  // Spark-like defaults.
  exec_config.executor_cores = 4;
  ExecutorModelScheduler scheduler(&sim, &cluster, exec_config, {});
  scheduler.SubmitJob(Job::Create(0, MakeTpchQuery(5, 200.0 * 1024 * 1024 * 1024, 5)));
  sim.Run();
  ASSERT_TRUE(scheduler.AllJobsFinished());
  double busy = 0.0;
  double alloc = 0.0;
  for (int w = 0; w < cluster.size(); ++w) {
    busy += cluster.worker(w).cpu_busy_tracker().Integral(0.0, sim.Now());
    alloc += cluster.worker(w).cpu_alloc_tracker().Integral(0.0, sim.Now());
  }
  EXPECT_GT(alloc, busy * 1.2);
}

TEST(BspRuntime, AlternatesComputeAndSync) {
  Simulator sim;
  Cluster cluster(&sim, {});
  BspJobConfig config;
  config.iterations = 3;
  config.compute_bytes_per_worker = 32 * 250e6;  // 1 s on 32 cores.
  config.sync_bytes_per_worker = 1.25e9 * 0.5;   // ~0.5 s at 10 Gbps.
  bool finished = false;
  BspRuntime bsp(&sim, &cluster, config, [&] { finished = true; });
  bsp.Run();
  sim.Run();
  EXPECT_TRUE(finished);
  EXPECT_GT(bsp.finish_time(), 3.0);  // At least 3 compute phases.
  // During compute phases CPU is ~fully busy; during sync it is zero:
  // the average must sit strictly between.
  const double avg =
      cluster.worker(0).cpu_busy_tracker().Average(0.0, bsp.finish_time()) / 32.0;
  EXPECT_GT(avg, 0.3);
  EXPECT_LT(avg, 0.95);
  // All resources returned at the end.
  EXPECT_DOUBLE_EQ(cluster.worker(0).cpu_alloc_tracker().current(), 0.0);
}

}  // namespace
}  // namespace ursa
