#!/usr/bin/env bash
# Exit-code contract of the detlint CLI (tools/detlint/main.cc):
#   0 — scanned clean (modulo allowlist)
#   1 — findings reported
#   2 — usage / IO error (bad flag, unreadable root, stale allowlist)
#
# Usage: detlint_cli_test.sh <path-to-detlint> <repo-root>
set -u

if [ "$#" -ne 2 ] || [ ! -x "$1" ]; then
  echo "usage: $0 <path-to-detlint> <repo-root>" >&2
  exit 2
fi
DETLINT="$1"
REPO_ROOT="$2"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

expect_exit() {
  local want="$1"
  shift
  local got=0
  "$@" >"${WORKDIR}/out.txt" 2>&1 || got=$?
  if [ "${got}" -ne "${want}" ]; then
    echo "--- output ---" >&2
    cat "${WORKDIR}/out.txt" >&2
    fail "expected exit ${want}, got ${got}: $*"
  fi
}

# 0: the real tree is clean against the checked-in allowlist.
expect_exit 0 "${DETLINT}" --repo-root "${REPO_ROOT}" \
  --allowlist "${REPO_ROOT}/.detlint-allowlist" src

# 1: a planted banned pattern is a finding.
mkdir -p "${WORKDIR}/tree/src/exec"
printf 'int x = rand();\n' >"${WORKDIR}/tree/src/exec/bad.cc"
expect_exit 1 "${DETLINT}" --repo-root "${WORKDIR}/tree" src
grep -q "raw-random" "${WORKDIR}/out.txt" || fail "finding not reported"

# 0: the same pattern under an inline suppression scans clean.
printf 'int x = rand();  // detlint: allow(raw-random)\n' \
  >"${WORKDIR}/tree/src/exec/bad.cc"
expect_exit 0 "${DETLINT}" --repo-root "${WORKDIR}/tree" src

# 2: stale allowlist entries are a hard error, not a pass.
printf 'src/exec/bad.cc:wallclock\n' >"${WORKDIR}/tree/allow"
expect_exit 2 "${DETLINT}" --repo-root "${WORKDIR}/tree" \
  --allowlist "${WORKDIR}/tree/allow" src

# 2: usage errors.
expect_exit 2 "${DETLINT}"
expect_exit 2 "${DETLINT}" --no-such-flag src
expect_exit 2 "${DETLINT}" --repo-root "${WORKDIR}/tree" no/such/root

echo "PASS: detlint exit codes 0/1/2 behave as documented"
exit 0
