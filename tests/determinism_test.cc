// Regression tests for run-to-run determinism (DESIGN.md section 10): for a
// fixed seed, two runs of the same experiment must make bit-identical
// decisions. The placement sequence is the sharpest probe — Algorithm-1
// scoring visits workers and candidates in container order, so any stray
// unordered iteration or uninitialized read upstream shows up as a placement
// divergence long before it moves aggregate metrics.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/driver/experiment.h"
#include "src/obs/trace.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

struct Placement {
  double t;
  JobId job;
  TaskId task;
  StageId stage;
  WorkerId worker;

  bool operator==(const Placement& other) const {
    return t == other.t && job == other.job && task == other.task && stage == other.stage &&
           worker == other.worker;
  }
};

std::vector<Placement> PlacementsOf(const ExperimentResult& result) {
  std::vector<Placement> placements;
  for (const TraceEvent& event : result.trace->Snapshot()) {
    if (event.kind == TraceEventKind::kTaskPlaced) {
      placements.push_back({event.t, event.job, event.task, event.stage, event.worker});
    }
  }
  return placements;
}

void ExpectIdenticalRuns(const Workload& workload, ExperimentConfig config,
                         const std::string& scheme) {
  config.trace = true;
  const ExperimentResult a = RunExperiment(workload, config, scheme);
  const ExperimentResult b = RunExperiment(workload, config, scheme);

  // Placement-by-placement: same tasks, same workers, same simulated times,
  // in the same order.
  const std::vector<Placement> pa = PlacementsOf(a);
  const std::vector<Placement> pb = PlacementsOf(b);
  ASSERT_FALSE(pa.empty());
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i] == pb[i]) << scheme << " placement #" << i << " diverged: job "
                                << pa[i].job << " task " << pa[i].task << " -> worker "
                                << pa[i].worker << " vs job " << pb[i].job << " task "
                                << pb[i].task << " -> worker " << pb[i].worker;
  }

  // Aggregate metrics must be bit-equal, not approximately equal: floating
  // point is deterministic when the operation sequence is.
  EXPECT_EQ(a.makespan(), b.makespan());
  EXPECT_EQ(a.avg_jct(), b.avg_jct());
  EXPECT_EQ(a.efficiency.ue_cpu, b.efficiency.ue_cpu);
  EXPECT_EQ(a.efficiency.se_cpu, b.efficiency.se_cpu);
  EXPECT_EQ(a.efficiency.ue_mem, b.efficiency.ue_mem);

  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].submit_time, b.records[i].submit_time);
    EXPECT_EQ(a.records[i].admit_time, b.records[i].admit_time);
    EXPECT_EQ(a.records[i].finish_time, b.records[i].finish_time);
  }
}

Workload SeededTpch(int jobs, uint64_t seed) {
  TpchWorkloadConfig config;
  config.num_jobs = jobs;
  config.submit_interval = 4.0;
  config.seed = seed;
  return MakeTpchWorkload(config);
}

TEST(Determinism, UrsaEjfPlacementIsSeedStable) {
  ExpectIdenticalRuns(SeededTpch(8, 11), UrsaEjfConfig(), "ursa-ejf");
}

TEST(Determinism, UrsaSrjfPlacementIsSeedStable) {
  // SRJF re-ranks job priorities as remaining work shrinks, exercising the
  // Reprioritize path and the ordered tie-breaking in the monotask queues.
  ExpectIdenticalRuns(SeededTpch(8, 23), UrsaSrjfConfig(), "ursa-srjf");
}

TEST(Determinism, PackingPlacementIsSeedStable) {
  ExperimentConfig config = UrsaEjfConfig();
  config.ursa.placement = PlacementAlgorithm::kTetris;
  ExpectIdenticalRuns(SeededTpch(6, 5), config, "tetris");
}

TEST(Determinism, SyntheticMixedWorkloadIsSeedStable) {
  // Synthetic jobs drive the network flow simulator hardest; its per-flow
  // rate shares are recomputed on every topology change, so float
  // accumulation order (ordered flow map) is what keeps this bit-stable.
  const Workload workload = MakeSyntheticMixedWorkload(4, /*seed=*/17);
  ExpectIdenticalRuns(workload, UrsaEjfConfig(), "ursa-ejf");
}

// --- Hot-path equivalence (DESIGN.md section 12). ---
// The incremental load cache, the bucketed pruning scan and the calendar
// queue are pure optimizations: every run below must make bit-identical
// decisions with them on and off.

// Returns `config` with every hot-path optimization forced to `fast` and the
// debug cross-check enabled, so the incremental cache is also validated
// against full rescans while the test runs.
ExperimentConfig HotPath(ExperimentConfig config, bool fast) {
  config.ursa.incremental_loads = fast;
  config.ursa.prune_placement = fast;
  config.ursa.verify_loads = fast;
  config.queue_kind = fast ? EventQueueKind::kCalendar : EventQueueKind::kBinaryHeap;
  return config;
}

void ExpectHotPathsEquivalent(const Workload& workload, ExperimentConfig config,
                              const std::string& scheme) {
  config.trace = true;
  const ExperimentResult fast = RunExperiment(workload, HotPath(config, true), scheme);
  const ExperimentResult seed = RunExperiment(workload, HotPath(config, false), scheme);

  const std::vector<Placement> pf = PlacementsOf(fast);
  const std::vector<Placement> ps = PlacementsOf(seed);
  ASSERT_FALSE(pf.empty());
  ASSERT_EQ(pf.size(), ps.size());
  for (size_t i = 0; i < pf.size(); ++i) {
    EXPECT_TRUE(pf[i] == ps[i])
        << scheme << " placement #" << i << " diverged between hot paths: job "
        << pf[i].job << " task " << pf[i].task << " -> worker " << pf[i].worker
        << " vs job " << ps[i].job << " task " << ps[i].task << " -> worker "
        << ps[i].worker;
  }
  EXPECT_EQ(fast.makespan(), seed.makespan());
  EXPECT_EQ(fast.avg_jct(), seed.avg_jct());
  EXPECT_EQ(fast.efficiency.ue_cpu, seed.efficiency.ue_cpu);
  EXPECT_EQ(fast.events_fired, seed.events_fired);
  // Same decision sequence: the pruned scan answers exactly the same
  // BestWorker queries. (Scan-entry counts are not compared — on small
  // heterogeneous clusters the bucketed path can examine more entries than
  // the flat scan; it wins when loads collapse, i.e. at scale.)
  EXPECT_EQ(fast.scheduler_counters.bestworker_calls,
            seed.scheduler_counters.bestworker_calls);
  ASSERT_EQ(fast.records.size(), seed.records.size());
  for (size_t i = 0; i < fast.records.size(); ++i) {
    EXPECT_EQ(fast.records[i].finish_time, seed.records[i].finish_time);
  }
}

TEST(Determinism, FastAndSeedHotPathsMatchOnTpch) {
  ExpectHotPathsEquivalent(SeededTpch(8, 11), UrsaEjfConfig(), "ursa-ejf");
}

TEST(Determinism, FastAndSeedHotPathsMatchOnSyntheticSrjf) {
  ExpectHotPathsEquivalent(MakeSyntheticMixedWorkload(4, /*seed=*/9), UrsaSrjfConfig(),
                           "ursa-srjf");
}

TEST(Determinism, FastAndSeedHotPathsMatchUnderChaos) {
  // Fault recovery rebuilds worker state behind the scheduler's back and
  // speculation places through the same overlay as primary placement — the
  // two paths most likely to miss a dirty mark or stale bucket.
  ExperimentConfig config = UrsaSrjfConfig();
  config.ursa.spec.enabled = true;
  config.ursa.spec.budget_fraction = 0.2;
  FaultPlanConfig pc;
  pc.seed = 7;
  pc.num_workers = config.cluster.num_workers;
  pc.horizon_end = 80.0;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.transients = 3;
  config.fault_plan = MakeRandomFaultPlan(pc);
  ExpectHotPathsEquivalent(SeededTpch(6, 31), config, "ursa-srjf");
}

TEST(Determinism, FastAndSeedHotPathsMatchOnOpenLoop) {
  ExperimentConfig config = UrsaEjfConfig();
  config.open_loop.enabled = true;
  config.open_loop.seed = 13;
  config.open_loop.arrival_rate = 2.0;
  config.open_loop.max_jobs = 30;
  config.ursa.admission.enabled = true;
  config.ursa.admission.max_pending = 6;
  ExpectHotPathsEquivalent(Workload{}, config, "ursa-ejf");
}

TEST(Determinism, CalendarAndHeapQueuesMatch) {
  // Queue kind alone, both schedulers on the fast path: pop order (and so
  // the whole run) must not depend on the queue implementation.
  ExperimentConfig heap = UrsaEjfConfig();
  heap.queue_kind = EventQueueKind::kBinaryHeap;
  ExperimentConfig calendar = heap;
  calendar.queue_kind = EventQueueKind::kCalendar;
  heap.trace = true;
  calendar.trace = true;
  const Workload workload = SeededTpch(8, 11);
  const ExperimentResult a = RunExperiment(workload, heap, "ursa-ejf");
  const ExperimentResult b = RunExperiment(workload, calendar, "ursa-ejf");
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.makespan(), b.makespan());
  const std::vector<Placement> pa = PlacementsOf(a);
  const std::vector<Placement> pb = PlacementsOf(b);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i] == pb[i]) << "placement #" << i << " diverged between queues";
  }
}

TEST(Determinism, TruncatedGatherRotatesAndFinishes) {
  // A candidate budget small enough to truncate every tick must still finish
  // the workload (the rotation cursor keeps deferred jobs from starving) and
  // must report the truncation it did.
  ExperimentConfig config = UrsaEjfConfig();
  config.ursa.max_scored_pairs_per_tick = 200;
  const Workload workload = SeededTpch(6, 11);
  const ExperimentResult result = RunExperiment(workload, config, "ursa-ejf");
  EXPECT_GT(result.scheduler_counters.scoring_truncated, 0);
  ASSERT_EQ(result.records.size(), workload.jobs.size());
  for (const JobRecord& record : result.records) {
    EXPECT_GE(record.finish_time, 0.0);
  }
  // And truncated runs are themselves seed-stable.
  const ExperimentResult again = RunExperiment(workload, config, "ursa-ejf");
  EXPECT_EQ(result.makespan(), again.makespan());
  EXPECT_EQ(result.scheduler_counters.scoring_truncated,
            again.scheduler_counters.scoring_truncated);
}

// --- Scheduling policies (DESIGN.md section 13). ---
// Every pluggable policy must satisfy the same determinism contract as the
// defaults: same-seed bit-identical placement, and fast/seed hot-path
// equivalence (which also flips the event-queue kind — the fast side runs
// the calendar queue, the seed side the binary heap).

TEST(Determinism, GraphenePlacementIsSeedStable) {
  // Graphene layers the troublesome-stage bonus on its SRJF base; the
  // criticality analysis is recomputed per admission and must be pure.
  ExpectIdenticalRuns(SeededTpch(8, 23), UrsaGrapheneConfig(), "ursa-graphene");
}

TEST(Determinism, TetrisScorePlacementIsSeedStable) {
  ExperimentConfig config = UrsaSrjfConfig();
  config.ursa.score = PlacementScoreKind::kTetrisDot;
  ExpectIdenticalRuns(SeededTpch(8, 23), config, "tetris-score");
}

TEST(Determinism, ColocationLearningIsSeedStable) {
  // The Hugo decorator folds the learned pair EMAs into every score, so a
  // single out-of-order observation would diverge placements immediately.
  ExperimentConfig config = UrsaSrjfConfig();
  config.ursa.colocation.enabled = true;
  ExpectIdenticalRuns(SeededTpch(8, 23), config, "hugo");
}

TEST(Determinism, FastAndSeedHotPathsMatchOnGraphene) {
  ExpectHotPathsEquivalent(SeededTpch(8, 11), UrsaGrapheneConfig(), "ursa-graphene");
}

TEST(Determinism, FastAndSeedHotPathsMatchOnTetrisScore) {
  // The Tetris score has its own UpperBound; this pins the bucketed scan's
  // cutoff to the linear scan's argmax under the alternative bound.
  ExperimentConfig config = UrsaSrjfConfig();
  config.ursa.score = PlacementScoreKind::kTetrisDot;
  ExpectHotPathsEquivalent(SeededTpch(8, 11), config, "tetris-score");
}

TEST(Determinism, FastAndSeedHotPathsMatchOnColocationUnderChaos) {
  // Co-location is not bucketable (both modes take the linear scan), but the
  // incremental load cache and queue kind still differ between the modes;
  // chaos + speculation exercises the residency snapshot across worker
  // crashes and spec copies.
  ExperimentConfig config = UrsaSrjfConfig();
  config.ursa.colocation.enabled = true;
  config.ursa.spec.enabled = true;
  config.ursa.spec.budget_fraction = 0.2;
  FaultPlanConfig pc;
  pc.seed = 7;
  pc.num_workers = config.cluster.num_workers;
  pc.horizon_end = 80.0;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.transients = 3;
  config.fault_plan = MakeRandomFaultPlan(pc);
  ExpectHotPathsEquivalent(SeededTpch(6, 31), config, "hugo");
}

TEST(Determinism, SpeculationAndFaultsAreSeedStable) {
  // Chaos path: seeded fault plan plus speculation. Recovery resets and
  // first-finisher-wins races all replay identically for a fixed seed.
  ExperimentConfig config = UrsaEjfConfig();
  config.ursa.spec.enabled = true;
  config.ursa.spec.budget_fraction = 0.2;
  FaultPlanConfig pc;
  pc.seed = 3;
  pc.num_workers = config.cluster.num_workers;
  pc.horizon_end = 60.0;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.transients = 4;
  config.fault_plan = MakeRandomFaultPlan(pc);

  const Workload workload = SeededTpch(6, 31);
  config.trace = true;
  const ExperimentResult a = RunExperiment(workload, config, "ursa-ejf");
  const ExperimentResult b = RunExperiment(workload, config, "ursa-ejf");
  EXPECT_EQ(PlacementsOf(a).size(), PlacementsOf(b).size());
  EXPECT_EQ(a.makespan(), b.makespan());
  const FaultCounters fa = a.faults;
  const FaultCounters fb = b.faults;
  EXPECT_EQ(fa.detections, fb.detections);
  EXPECT_EQ(fa.tasks_reset, fb.tasks_reset);
  EXPECT_EQ(fa.retries, fb.retries);
  EXPECT_EQ(fa.speculations_launched, fb.speculations_launched);
  EXPECT_EQ(fa.total_wasted_seconds(), fb.total_wasted_seconds());
}

}  // namespace
}  // namespace ursa
