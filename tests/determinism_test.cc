// Regression tests for run-to-run determinism (DESIGN.md section 10): for a
// fixed seed, two runs of the same experiment must make bit-identical
// decisions. The placement sequence is the sharpest probe — Algorithm-1
// scoring visits workers and candidates in container order, so any stray
// unordered iteration or uninitialized read upstream shows up as a placement
// divergence long before it moves aggregate metrics.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/driver/experiment.h"
#include "src/obs/trace.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

struct Placement {
  double t;
  JobId job;
  TaskId task;
  StageId stage;
  WorkerId worker;

  bool operator==(const Placement& other) const {
    return t == other.t && job == other.job && task == other.task && stage == other.stage &&
           worker == other.worker;
  }
};

std::vector<Placement> PlacementsOf(const ExperimentResult& result) {
  std::vector<Placement> placements;
  for (const TraceEvent& event : result.trace->Snapshot()) {
    if (event.kind == TraceEventKind::kTaskPlaced) {
      placements.push_back({event.t, event.job, event.task, event.stage, event.worker});
    }
  }
  return placements;
}

void ExpectIdenticalRuns(const Workload& workload, ExperimentConfig config,
                         const std::string& scheme) {
  config.trace = true;
  const ExperimentResult a = RunExperiment(workload, config, scheme);
  const ExperimentResult b = RunExperiment(workload, config, scheme);

  // Placement-by-placement: same tasks, same workers, same simulated times,
  // in the same order.
  const std::vector<Placement> pa = PlacementsOf(a);
  const std::vector<Placement> pb = PlacementsOf(b);
  ASSERT_FALSE(pa.empty());
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i] == pb[i]) << scheme << " placement #" << i << " diverged: job "
                                << pa[i].job << " task " << pa[i].task << " -> worker "
                                << pa[i].worker << " vs job " << pb[i].job << " task "
                                << pb[i].task << " -> worker " << pb[i].worker;
  }

  // Aggregate metrics must be bit-equal, not approximately equal: floating
  // point is deterministic when the operation sequence is.
  EXPECT_EQ(a.makespan(), b.makespan());
  EXPECT_EQ(a.avg_jct(), b.avg_jct());
  EXPECT_EQ(a.efficiency.ue_cpu, b.efficiency.ue_cpu);
  EXPECT_EQ(a.efficiency.se_cpu, b.efficiency.se_cpu);
  EXPECT_EQ(a.efficiency.ue_mem, b.efficiency.ue_mem);

  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].submit_time, b.records[i].submit_time);
    EXPECT_EQ(a.records[i].admit_time, b.records[i].admit_time);
    EXPECT_EQ(a.records[i].finish_time, b.records[i].finish_time);
  }
}

Workload SeededTpch(int jobs, uint64_t seed) {
  TpchWorkloadConfig config;
  config.num_jobs = jobs;
  config.submit_interval = 4.0;
  config.seed = seed;
  return MakeTpchWorkload(config);
}

TEST(Determinism, UrsaEjfPlacementIsSeedStable) {
  ExpectIdenticalRuns(SeededTpch(8, 11), UrsaEjfConfig(), "ursa-ejf");
}

TEST(Determinism, UrsaSrjfPlacementIsSeedStable) {
  // SRJF re-ranks job priorities as remaining work shrinks, exercising the
  // Reprioritize path and the ordered tie-breaking in the monotask queues.
  ExpectIdenticalRuns(SeededTpch(8, 23), UrsaSrjfConfig(), "ursa-srjf");
}

TEST(Determinism, PackingPlacementIsSeedStable) {
  ExperimentConfig config = UrsaEjfConfig();
  config.ursa.placement = PlacementAlgorithm::kTetris;
  ExpectIdenticalRuns(SeededTpch(6, 5), config, "tetris");
}

TEST(Determinism, SyntheticMixedWorkloadIsSeedStable) {
  // Synthetic jobs drive the network flow simulator hardest; its per-flow
  // rate shares are recomputed on every topology change, so float
  // accumulation order (ordered flow map) is what keeps this bit-stable.
  const Workload workload = MakeSyntheticMixedWorkload(4, /*seed=*/17);
  ExpectIdenticalRuns(workload, UrsaEjfConfig(), "ursa-ejf");
}

TEST(Determinism, SpeculationAndFaultsAreSeedStable) {
  // Chaos path: seeded fault plan plus speculation. Recovery resets and
  // first-finisher-wins races all replay identically for a fixed seed.
  ExperimentConfig config = UrsaEjfConfig();
  config.ursa.spec.enabled = true;
  config.ursa.spec.budget_fraction = 0.2;
  FaultPlanConfig pc;
  pc.seed = 3;
  pc.num_workers = config.cluster.num_workers;
  pc.horizon_end = 60.0;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.transients = 4;
  config.fault_plan = MakeRandomFaultPlan(pc);

  const Workload workload = SeededTpch(6, 31);
  config.trace = true;
  const ExperimentResult a = RunExperiment(workload, config, "ursa-ejf");
  const ExperimentResult b = RunExperiment(workload, config, "ursa-ejf");
  EXPECT_EQ(PlacementsOf(a).size(), PlacementsOf(b).size());
  EXPECT_EQ(a.makespan(), b.makespan());
  const FaultCounters fa = a.faults;
  const FaultCounters fb = b.faults;
  EXPECT_EQ(fa.detections, fb.detections);
  EXPECT_EQ(fa.tasks_reset, fb.tasks_reset);
  EXPECT_EQ(fa.retries, fb.retries);
  EXPECT_EQ(fa.speculations_launched, fb.speculations_launched);
  EXPECT_EQ(fa.total_wasted_seconds(), fb.total_wasted_seconds());
}

}  // namespace
}  // namespace ursa
