// Property tests for overload robustness (DESIGN.md section 11): open-loop
// arrivals through the admission controller under chaos. Invariants checked
// across seeds: the pending queue stays bounded, every arrival resolves to
// exactly one of completed/shed (conservation), the occupancy ledger never
// over-commits memory during overload with a worker fail/rejoin in flight,
// and whole runs are seed-deterministic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/driver/experiment.h"
#include "src/fault/fault_injector.h"
#include "src/scheduler/ursa_scheduler.h"
#include "src/workloads/openloop.h"

namespace ursa {
namespace {

constexpr int kMaxPending = 8;
constexpr int kArrivals = 40;

// A small cluster driven well past saturation: ~6x the arrival rate the
// cluster can serve, so shedding and backpressure genuinely engage.
ExperimentConfig MakeOverloadConfig(uint64_t seed) {
  ExperimentConfig config = UrsaEjfConfig();
  config.cluster.num_workers = 4;
  config.cluster.worker.cores = 8;
  config.cluster.worker.cpu_byte_rate = 100e6;

  config.ursa.admission.enabled = true;
  config.ursa.admission.max_pending = kMaxPending;
  config.ursa.admission.shed_policy = ShedPolicy::kPriorityTier;
  config.ursa.admission.default_slo = 15.0;
  config.ursa.admission.utilization_bound = 1.0;
  config.ursa.admission.max_throttle_factor = 2.0;

  config.open_loop.enabled = true;
  config.open_loop.seed = seed;
  config.open_loop.arrival_rate = 6.0;
  config.open_loop.max_jobs = kArrivals;
  // Each job needs ~2.5s of the whole cluster (u ~ 0.2-0.5 against its
  // SLO), so the tight utilization bound keeps only a few active at once
  // and the 6/s arrival stream overflows the pending queue.
  config.open_loop.job_template.stages = 2;
  config.open_loop.job_template.parallelism = 32;
  config.open_loop.job_template.type1_task_bytes = 32.0 * 1024 * 1024;
  config.open_loop.job_template.complexity = 8.0;
  std::string error;
  EXPECT_TRUE(ParseTenantSpecs("interactive:2:0:10,batch:1:1:30,scavenger:1:2:0",
                               &config.open_loop.tenants, &error))
      << error;

  // Chaos riding along: one crash + rejoin and one straggler window.
  FaultEvent crash;
  crash.kind = FaultKind::kCrashRecover;
  crash.time = 2.0;
  crash.worker = 1;
  crash.downtime = 4.0;
  config.fault_plan.events.push_back(crash);
  FaultEvent degrade;
  degrade.kind = FaultKind::kDegrade;
  degrade.time = 1.0;
  degrade.worker = 2;
  degrade.factor = 0.5;
  degrade.duration = 8.0;
  config.fault_plan.events.push_back(degrade);
  return config;
}

class OverloadInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverloadInvariants, BoundedQueueAndConservationUnderChaos) {
  const uint64_t seed = GetParam();
  const ExperimentResult result =
      RunExperiment(Workload{}, MakeOverloadConfig(seed), "overload");
  const AdmissionCounters& c = result.admission;

  // Every arrival was offered to the controller and resolved by the end of
  // the run: nothing is left pending, and submitted splits exactly into
  // admitted (ran) and shed (never ran).
  EXPECT_EQ(result.submitted, kArrivals) << "seed " << seed;
  EXPECT_EQ(static_cast<int>(result.records.size()), kArrivals);
  EXPECT_EQ(c.submitted, kArrivals);
  EXPECT_EQ(c.pending_now, 0);
  EXPECT_EQ(c.submitted, c.admitted + c.shed + c.pending_now) << "seed " << seed;
  // Accepted jobs leave the pending queue only by activation or eviction.
  EXPECT_EQ(c.accepted, c.admitted + c.evictions) << "seed " << seed;

  // The pending queue never outgrew its bound, and overload at 6x
  // saturation actually shed load instead of queueing without bound.
  EXPECT_LE(c.max_pending_depth, kMaxPending) << "seed " << seed;
  EXPECT_GT(c.shed, 0) << "seed " << seed;

  // Per-record conservation: completed XOR shed, and a coherent timeline.
  int completed = 0;
  int shed = 0;
  for (const JobRecord& record : result.records) {
    EXPECT_NE(record.completed(), record.shed) << record.name;
    if (record.completed()) {
      ++completed;
      EXPECT_GE(record.finish_time, record.submit_time) << record.name;
    } else {
      ++shed;
      EXPECT_GE(record.shed_time, record.submit_time) << record.name;
    }
  }
  EXPECT_EQ(completed + shed, kArrivals);
  EXPECT_EQ(static_cast<int64_t>(shed), c.shed);
  EXPECT_EQ(result.tenants.total_completed, completed);
  EXPECT_EQ(result.tenants.total_shed, shed);

  // Tenant accounting adds up and fairness stays a valid Jain index.
  int tenant_submitted = 0;
  for (const MetricsCollector::TenantStats& tenant : result.tenants.tenants) {
    EXPECT_EQ(tenant.submitted, tenant.completed + tenant.shed) << tenant.tenant;
    tenant_submitted += tenant.submitted;
  }
  EXPECT_EQ(tenant_submitted, kArrivals);
  EXPECT_GT(result.tenants.jain_fairness, 0.0);
  EXPECT_LE(result.tenants.jain_fairness, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadInvariants, ::testing::Range<uint64_t>(1, 4));

TEST(OverloadDeterminism, IdenticalSeedsProduceIdenticalRuns) {
  const ExperimentResult a = RunExperiment(Workload{}, MakeOverloadConfig(11), "a");
  const ExperimentResult b = RunExperiment(Workload{}, MakeOverloadConfig(11), "b");
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  EXPECT_EQ(a.admission.admitted, b.admission.admitted);
  EXPECT_EQ(a.admission.shed, b.admission.shed);
  EXPECT_EQ(a.admission.evictions, b.admission.evictions);
  EXPECT_EQ(a.admission.deferrals, b.admission.deferrals);
  EXPECT_EQ(a.admission.level_changes, b.admission.level_changes);
  EXPECT_EQ(a.admission.max_pending_depth, b.admission.max_pending_depth);
  EXPECT_DOUBLE_EQ(a.admission.total_admission_latency,
                   b.admission.total_admission_latency);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].name, b.records[i].name);
    EXPECT_EQ(a.records[i].tenant, b.records[i].tenant);
    EXPECT_EQ(a.records[i].shed, b.records[i].shed);
    EXPECT_DOUBLE_EQ(a.records[i].submit_time, b.records[i].submit_time);
    EXPECT_DOUBLE_EQ(a.records[i].finish_time, b.records[i].finish_time);
  }
  EXPECT_DOUBLE_EQ(a.tenants.jain_fairness, b.tenants.jain_fairness);
}

// Direct scheduler drive: an overloaded submission burst with a worker
// failing and rejoining mid-flight, sampling the occupancy ledger the whole
// time. The ledger must never over-commit a worker's memory (1-byte
// float slack, matching OccupancyLedger::TryAllocateMemory).
TEST(OverloadLedger, NeverOvercommitsDuringOverloadAndRejoin) {
  Simulator sim;
  ClusterConfig cc;
  cc.num_workers = 4;
  cc.worker.cores = 8;
  cc.worker.cpu_byte_rate = 100e6;
  Cluster cluster(&sim, cc);

  UrsaSchedulerConfig sc;
  sc.admission.enabled = true;
  sc.admission.max_pending = 6;
  sc.admission.default_slo = 15.0;
  sc.admission.utilization_bound = 1.5;
  UrsaScheduler scheduler(&sim, &cluster, sc);

  OpenLoopConfig oc;
  oc.seed = 5;
  oc.max_jobs = 24;
  oc.job_template.stages = 2;
  oc.job_template.parallelism = 16;
  oc.job_template.type1_task_bytes = 16.0 * 1024 * 1024;
  oc.job_template.complexity = 4.0;
  std::string error;
  ASSERT_TRUE(ParseTenantSpecs("interactive:2:0:10,batch:1:1:30", &oc.tenants, &error))
      << error;
  OpenLoopSource source(oc);
  for (int i = 0; i < oc.max_jobs; ++i) {
    const JobSpec spec = source.NextJob();
    // A burst far above what 4 workers serve, so admission stays saturated.
    sim.ScheduleAt(0.15 * (i + 1), [&scheduler, spec, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), spec));
    });
  }
  sim.ScheduleAt(1.5, [&] { EXPECT_GE(scheduler.FailWorker(1), 0); });
  sim.ScheduleAt(5.0, [&] { cluster.worker(1).Recover(); });

  const auto check_ledger = [&] {
    for (int w = 0; w < cluster.size(); ++w) {
      const Worker& worker = cluster.worker(w);
      EXPECT_GE(worker.free_memory(), -1.0)
          << "worker " << w << " over-committed at t=" << sim.Now();
    }
  };
  for (int i = 1; i <= 120; ++i) {
    sim.ScheduleAt(0.5 * i, check_ledger);
  }
  sim.Run();

  EXPECT_TRUE(scheduler.AllJobsFinished());
  EXPECT_EQ(scheduler.finished_jobs() + scheduler.shed_jobs(), oc.max_jobs);
  const AdmissionCounters c = scheduler.admission_counters();
  EXPECT_EQ(c.submitted, c.admitted + c.shed + c.pending_now);
  EXPECT_EQ(c.pending_now, 0);
  check_ledger();
  // Drained: healthy workers end with clean memory books.
  for (int w = 0; w < cluster.size(); ++w) {
    const Worker& worker = cluster.worker(w);
    if (!worker.failed()) {
      EXPECT_NEAR(worker.free_memory(), worker.memory_capacity(), 1.0) << "worker " << w;
    }
  }
}

}  // namespace
}  // namespace ursa
