// Property tests for the scheduling-policy framework (DESIGN.md section 13):
// invariants that must hold for every input, checked over seeded sweeps
// rather than hand-picked examples.
//
//   - Troublesome-subset structure: nonempty, contains a full critical-path
//     witness, and convex-closed (any stage between two members is a
//     member) across generated DAG shapes and thresholds.
//   - Score-policy contract: bucketable policies' UpperBound dominates every
//     feasible Score for the same load; the Tetris score never accepts a
//     worker without memory headroom; feasibility vetoes agree with
//     Algorithm 1's (same masks drive the bucketed scan for both).
//   - Co-location learner: contention EMAs stay finite and bounded in
//     [0, 1], complementarity is symmetric and bonuses stay in [0, 1], even
//     after a chaos + speculation run where residency churns through crashes
//     and spec copies.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dag/critical_path.h"
#include "src/dag/job.h"
#include "src/driver/experiment.h"
#include "src/scheduler/colocation.h"
#include "src/scheduler/placement_policy.h"
#include "src/scheduler/ursa_scheduler.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

// Deterministic generator for the sweeps (no std::random in tests of the
// deterministic core; same splitmix64 step the simulator uses).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double Uniform() {
    return static_cast<double>(Next() >> 11) / static_cast<double>(1ULL << 53);
  }
  int Range(int lo, int hi) {  // Inclusive bounds.
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

 private:
  uint64_t state_;
};

// --- Troublesome-subset structure. ---

// Random layered DAG: a chain of shuffle stages with per-stage random
// parallelism, byte sizes and CPU complexity — every plan the compiler
// accepts by construction.
ExecutionPlan RandomChainPlan(Lcg* rng) {
  OpGraph graph;
  const int depth = rng->Range(1, 5);
  const int parts0 = rng->Range(2, 6);
  DataId data = graph.CreateExternalData(
      std::vector<double>(static_cast<size_t>(parts0),
                          rng->Uniform(1.0, 64.0) * 1024 * 1024),
      "in");
  DataId mapped = graph.CreateData(parts0, "m0");
  OpCostModel cost;
  cost.cpu_complexity = rng->Uniform(0.5, 4.0);
  OpHandle prev =
      graph.CreateOp(ResourceType::kCpu, "map0").Read(data).Create(mapped).SetCost(cost);
  DataId cur = mapped;
  for (int d = 1; d < depth; ++d) {
    const int parts = rng->Range(2, 6);
    const DataId shuffled = graph.CreateData(parts, "s" + std::to_string(d));
    const DataId out = graph.CreateData(parts, "m" + std::to_string(d));
    OpHandle shuffle = graph.CreateOp(ResourceType::kNetwork, "sh" + std::to_string(d))
                           .Read(cur)
                           .Create(shuffled);
    OpCostModel c2;
    c2.cpu_complexity = rng->Uniform(0.5, 4.0);
    c2.output_selectivity = rng->Uniform(0.3, 1.0);
    OpHandle deser = graph.CreateOp(ResourceType::kCpu, "de" + std::to_string(d))
                         .Read(shuffled)
                         .Create(out)
                         .SetCost(c2);
    prev.To(shuffle, DepKind::kSync);
    shuffle.To(deser, DepKind::kAsync);
    prev = deser;
    cur = out;
  }
  return ExecutionPlan::Build(graph, rng->Next());
}

// Ancestor closure over the stage DAG (reflexive).
std::vector<std::vector<bool>> AncestorMatrix(const std::vector<std::vector<StageId>>& parents) {
  const size_t n = parents.size();
  std::vector<std::vector<bool>> anc(n, std::vector<bool>(n, false));
  for (size_t s = 0; s < n; ++s) {
    anc[s][s] = true;
  }
  // Iterate to a fixpoint instead of assuming stage ids are topologically
  // sorted — the invariant under test should not lean on plan internals.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < n; ++s) {
      for (const StageId p : parents[s]) {
        for (size_t a = 0; a < n; ++a) {
          if (anc[static_cast<size_t>(p)][a] && !anc[s][a]) {
            anc[s][a] = true;
            changed = true;
          }
        }
      }
    }
  }
  return anc;  // anc[s][a]: a is an ancestor of s (or s itself).
}

void CheckTroublesomeInvariants(const ExecutionPlan& plan, double threshold) {
  const StageCriticality crit = AnalyzeStages(plan, threshold);
  const size_t n = plan.stages().size();
  ASSERT_EQ(crit.troublesome.size(), n);

  // Nonempty, and some member realizes the critical path itself.
  bool any = false;
  bool witness = false;
  for (size_t s = 0; s < n; ++s) {
    const double through = crit.top_level[s] + crit.bottom_level[s] - crit.work[s];
    EXPECT_TRUE(std::isfinite(through));
    EXPECT_LE(through, crit.critical_path + 1e-9);
    if (crit.troublesome[s]) {
      any = true;
      if (through >= crit.critical_path - 1e-9) {
        witness = true;
      }
    }
  }
  EXPECT_TRUE(any) << "troublesome subset empty at threshold " << threshold;
  EXPECT_TRUE(witness) << "no critical-path stage in the subset";

  // Convexity: s between two members (troublesome ancestor a and descendant
  // d with a ~> s ~> d) must itself be a member.
  const auto anc = AncestorMatrix(StageParents(plan));
  for (size_t s = 0; s < n; ++s) {
    if (crit.troublesome[s]) {
      continue;
    }
    bool has_troublesome_ancestor = false;
    bool has_troublesome_descendant = false;
    for (size_t o = 0; o < n; ++o) {
      if (!crit.troublesome[o] || o == s) {
        continue;
      }
      if (anc[s][o]) {
        has_troublesome_ancestor = true;
      }
      if (anc[o][s]) {
        has_troublesome_descendant = true;
      }
    }
    EXPECT_FALSE(has_troublesome_ancestor && has_troublesome_descendant)
        << "stage " << s << " lies between troublesome stages but is not troublesome";
  }

  // BottomShare is a valid bonus input everywhere.
  for (size_t s = 0; s < n; ++s) {
    const double share = crit.BottomShare(static_cast<StageId>(s));
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0 + 1e-9);
    if (!crit.troublesome[s]) {
      EXPECT_EQ(share, 0.0);
    }
  }
}

TEST(TroublesomeSubset, InvariantsHoldAcrossRandomDagsAndThresholds) {
  Lcg rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const ExecutionPlan plan = RandomChainPlan(&rng);
    for (const double threshold : {0.5, 0.8, 0.9, 1.0}) {
      CheckTroublesomeInvariants(plan, threshold);
    }
  }
}

TEST(TroublesomeSubset, RealWorkloadPlansAreCovered) {
  // The TPC-H job shapes have real fan-in/fan-out; same invariants.
  TpchWorkloadConfig config;
  config.num_jobs = 8;
  config.seed = 5;
  const Workload workload = MakeTpchWorkload(config);
  for (const WorkloadJob& wj : workload.jobs) {
    const ExecutionPlan plan = ExecutionPlan::Build(wj.spec.graph, wj.spec.seed);
    CheckTroublesomeInvariants(plan, 0.9);
  }
}

// --- Score-policy contract. ---

WorkerLoad RandomLoad(Lcg* rng) {
  WorkerLoad load;
  for (int r = 0; r < static_cast<int>(kNumMonotaskResources); ++r) {
    load.d[r] = rng->Uniform();
    load.apt[r] = rng->Uniform(0.0, 10.0);
    load.rate[r] = rng->Uniform(1.0, 1e8);
  }
  load.d[static_cast<size_t>(ResourceDim::kMemory)] = rng->Uniform();
  load.memory_capacity = 8.0 * 1024 * 1024 * 1024;
  load.free_memory = rng->Uniform(0.0, load.memory_capacity);
  return load;
}

TaskUsage RandomUsage(Lcg* rng) {
  TaskUsage usage;
  for (size_t r = 0; r < kNumMonotaskResources; ++r) {
    usage.bytes[r] = rng->Next() % 3 == 0 ? 0.0 : rng->Uniform(0.0, 1e8);
  }
  usage.memory = rng->Uniform(0.0, 6.0 * 1024 * 1024 * 1024);
  return usage;
}

TEST(ScorePolicyContract, UpperBoundDominatesEveryFeasibleScore) {
  const int headroom[kNumMonotaskResources] = {1, 1, 1};
  const int no_headroom[kNumMonotaskResources] = {0, 0, 0};
  Lcg rng(77);
  const ScoreContext ctx;
  for (const ScorePolicyInfo& info : ScorePolicyRegistry()) {
    const auto policy = MakeScorePolicy(info.kind);
    ASSERT_TRUE(policy->bucketable()) << info.flag;
    int accepted = 0;
    for (int trial = 0; trial < 4000; ++trial) {
      const WorkerLoad load = RandomLoad(&rng);
      const TaskUsage usage = RandomUsage(&rng);
      const double ept = rng.Uniform(0.5, 10.0);
      const bool net = rng.Next() % 2 == 0;
      const int* masks = rng.Next() % 4 == 0 ? no_headroom : headroom;
      double score = 0.0;
      if (policy->Score(usage, load, /*worker=*/0, ept, masks, net, ctx, &score)) {
        ++accepted;
        EXPECT_TRUE(std::isfinite(score));
        EXPECT_LE(score, policy->UpperBound(load) + 1e-12)
            << info.flag << " returned a score above its own upper bound";
      }
    }
    EXPECT_GT(accepted, 0) << info.flag << " vetoed every random input";
  }
}

TEST(ScorePolicyContract, TetrisNeverAcceptsWithoutMemoryHeadroom) {
  const int headroom[kNumMonotaskResources] = {1, 1, 1};
  Lcg rng(99);
  TetrisDotScorePolicy tetris;
  Algorithm1ScorePolicy alg1;
  const ScoreContext ctx;
  for (int trial = 0; trial < 4000; ++trial) {
    WorkerLoad load = RandomLoad(&rng);
    TaskUsage usage = RandomUsage(&rng);
    // Forced overcommit: demand strictly exceeds the worker's free memory.
    usage.memory = load.free_memory + rng.Uniform(1.0, 1e9);
    double score = 0.0;
    EXPECT_FALSE(tetris.Score(usage, load, 0, 1.0, headroom, true, ctx, &score))
        << "Tetris placed a task past the worker's free memory";
    // And the two feasibility rules agree in general (shared scan masks).
    usage = RandomUsage(&rng);
    load = RandomLoad(&rng);
    double s1 = 0.0;
    double s2 = 0.0;
    EXPECT_EQ(alg1.Score(usage, load, 0, 1.0, headroom, true, ctx, &s1),
              tetris.Score(usage, load, 0, 1.0, headroom, true, ctx, &s2));
  }
}

TEST(ScorePolicyContract, RegistriesAreConsistent) {
  for (const ScorePolicyInfo& info : ScorePolicyRegistry()) {
    const auto policy = MakeScorePolicy(info.kind);
    EXPECT_STREQ(policy->name(), info.flag);
    EXPECT_STREQ(PlacementScoreKindName(info.kind), info.flag);
    PlacementScoreKind parsed;
    EXPECT_TRUE(ParsePlacementScoreKind(info.flag, &parsed));
    EXPECT_EQ(parsed, info.kind);
  }
  for (const OrderingPolicyInfo& info : OrderingPolicyRegistry()) {
    EXPECT_STREQ(OrderingPolicyName(info.policy), info.name);
    OrderingPolicy parsed;
    EXPECT_TRUE(ParseOrderingPolicy(info.flag, &parsed));
    EXPECT_EQ(parsed, info.policy);
  }
  PlacementScoreKind kind;
  EXPECT_FALSE(ParsePlacementScoreKind("bogus", &kind));
  OrderingPolicy policy;
  EXPECT_FALSE(ParseOrderingPolicy("bogus", &policy));
}

// --- Co-location learner. ---

void CheckLearnerInvariants(const ColocationLearner& learner) {
  for (const auto& [pair, ema] : learner.pair_contention()) {
    EXPECT_TRUE(std::isfinite(ema));
    EXPECT_GE(ema, 0.0);
    EXPECT_LE(ema, 1.0);
    EXPECT_LT(pair.first, pair.second) << "pair keys must be stored ordered";
    // Symmetry: lookup must not depend on argument order.
    EXPECT_EQ(learner.Complementarity(pair.first, pair.second),
              learner.Complementarity(pair.second, pair.first));
  }
  // Bonuses over arbitrary resident sets stay in [0, 1] (attraction-only).
  std::vector<int> everyone;
  for (size_t k = 0; k < learner.num_keys(); ++k) {
    everyone.push_back(static_cast<int>(k));
  }
  for (size_t k = 0; k < learner.num_keys(); ++k) {
    const double bonus = learner.PlacementBonus(static_cast<int>(k), everyone);
    EXPECT_GE(bonus, 0.0);
    EXPECT_LE(bonus, 1.0);
  }
  // Unknown keys and self-pairs are neutral.
  EXPECT_EQ(learner.Complementarity(-1, 0), 0.0);
  EXPECT_EQ(learner.Complementarity(0, 0), 0.0);
  EXPECT_EQ(learner.PlacementBonus(-1, everyone), 0.0);
}

TEST(ColocationLearner, SyntheticObservationsStayBounded) {
  ColocationConfig config;
  ColocationLearner learner(config);
  const int a = learner.InternKey("q1", "map");
  const int b = learner.InternKey("q1", "reduce");
  const int c = learner.InternKey("q2", "map");
  EXPECT_EQ(learner.InternKey("q1", "map"), a) << "interning must be stable";
  Lcg rng(123);
  for (int tick = 0; tick < 500; ++tick) {
    // Contention samples outside [0, 1] must be clamped, not propagated.
    const std::vector<std::vector<int>> residents = {{a, b}, {b, c}, {a}, {}};
    const std::vector<double> contention = {rng.Uniform(-0.5, 1.5), rng.Uniform(),
                                            rng.Uniform(), 0.0};
    learner.ObserveTick(residents, contention);
  }
  EXPECT_EQ(learner.num_keys(), 3u);
  EXPECT_EQ(learner.num_pairs(), 2u);  // (a,b) and (b,c); singletons carry none.
  EXPECT_GT(learner.observations(), 0);
  CheckLearnerInvariants(learner);
}

TEST(ColocationLearner, BoundedAfterChaosAndSpeculationRun) {
  // Full end-to-end churn: crashes, recoveries and speculative copies all
  // feed the per-tick residency snapshot; the learned state must still obey
  // every invariant, and the run must stay seed-stable (checked separately
  // in determinism_test.cc). Direct scheduler construction so the learner
  // outlives the run for inspection.
  Simulator sim;
  ClusterConfig cluster_config;
  cluster_config.num_workers = 8;
  Cluster cluster(&sim, cluster_config);
  UrsaSchedulerConfig sc;
  sc.policy = OrderingPolicy::kSrjf;
  sc.colocation.enabled = true;
  sc.spec.enabled = true;
  sc.spec.budget_fraction = 0.2;
  UrsaScheduler scheduler(&sim, &cluster, sc);

  FaultPlanConfig pc;
  pc.seed = 11;
  pc.num_workers = cluster_config.num_workers;
  pc.horizon_end = 60.0;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.transients = 2;
  FaultInjector injector(&sim, &cluster, MakeRandomFaultPlan(pc),
                         scheduler.mutable_fault_stats());
  injector.Arm();

  const Workload workload = MakeSyntheticMixedWorkload(4, /*seed=*/31);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    const WorkloadJob& wj = workload.jobs[i];
    sim.ScheduleAt(wj.submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  sim.Run(200000.0);
  ASSERT_TRUE(scheduler.AllJobsFinished());

  const ColocationLearner* learner = scheduler.colocation_learner();
  ASSERT_NE(learner, nullptr);
  EXPECT_GT(learner->num_keys(), 0u);
  EXPECT_GT(learner->observations(), 0);
  CheckLearnerInvariants(*learner);
}

}  // namespace
}  // namespace ursa
