// Fault tolerance (section 4.3): worker failure detection and job restart
// from the input checkpoint.
#include <gtest/gtest.h>

#include "src/scheduler/ursa_scheduler.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest() {
    config_.num_workers = 4;
    config_.worker.cores = 8;
    config_.worker.cpu_byte_rate = 100e6;
    cluster_ = std::make_unique<Cluster>(&sim_, config_);
  }

  Simulator sim_;
  ClusterConfig config_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(FaultToleranceTest, FailedWorkerDropsWorkAndRejectsSubmissions) {
  Worker& worker = cluster_->worker(0);
  int completed = 0;
  RunnableMonotask mt;
  mt.type = ResourceType::kCpu;
  mt.work = 100e6;  // 1 second.
  mt.input_bytes = 100e6;
  mt.on_complete = [&] { ++completed; };
  worker.Submit(std::move(mt));
  sim_.Schedule(0.5, [&] { worker.Fail(); });
  sim_.Run();
  EXPECT_EQ(completed, 0);  // In-flight completion suppressed.
  EXPECT_FALSE(worker.TryAllocateMemory(1.0));
  // Trackers stopped at the failure instant.
  EXPECT_DOUBLE_EQ(worker.cpu_busy_tracker().current(), 0.0);
}

TEST_F(FaultToleranceTest, JobsRestartAndFinishAfterWorkerFailure) {
  UrsaSchedulerConfig sc;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 4;
  wc.submit_interval = 1.0;
  wc.seed = 31;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  // Kill a worker mid-flight.
  sim_.Schedule(10.0, [&] { EXPECT_GT(scheduler.FailWorker(1), 0); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  EXPECT_GT(scheduler.total_restarts(), 0);
  // No monotask ever completed on the dead worker after the failure, and
  // the remaining workers carried the load.
  EXPECT_FALSE(cluster_->worker(0).failed());
  for (const JobRecord& record : scheduler.job_records()) {
    EXPECT_GE(record.finish_time, 0.0) << record.name;
  }
  // Healthy workers end with clean memory accounting (1-byte tolerance for
  // floating-point residue across the restart's allocate/release cycles).
  for (int w = 0; w < cluster_->size(); ++w) {
    if (!cluster_->worker(w).failed()) {
      EXPECT_NEAR(cluster_->worker(w).free_memory(),
                  cluster_->worker(w).memory_capacity(), 1.0);
    }
  }
}

TEST_F(FaultToleranceTest, UnaffectedJobsAreNotRestarted) {
  UrsaSchedulerConfig sc;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 2;
  wc.submit_interval = 0.5;
  wc.seed = 33;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  // Fail a worker after everything finished: nothing to restart.
  sim_.Run();
  ASSERT_TRUE(scheduler.AllJobsFinished());
  EXPECT_EQ(scheduler.FailWorker(2), 0);
  EXPECT_EQ(scheduler.total_restarts(), 0);
}

TEST_F(FaultToleranceTest, DoubleFailureIsIdempotent) {
  UrsaSchedulerConfig sc;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  scheduler.FailWorker(3);
  EXPECT_EQ(scheduler.FailWorker(3), 0);
  EXPECT_TRUE(cluster_->worker(3).failed());
}

}  // namespace
}  // namespace ursa
