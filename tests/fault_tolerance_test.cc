// Fault tolerance (section 4.3): heartbeat failure detection, stage-level
// lineage recovery, transient-failure retries with backoff, worker rejoin
// and full-restart fallback.
#include <gtest/gtest.h>

#include "src/driver/experiment.h"
#include "src/fault/fault_injector.h"
#include "src/scheduler/ursa_scheduler.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest() {
    config_.num_workers = 4;
    config_.worker.cores = 8;
    config_.worker.cpu_byte_rate = 100e6;
    cluster_ = std::make_unique<Cluster>(&sim_, config_);
  }

  Simulator sim_;
  ClusterConfig config_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(FaultToleranceTest, FailedWorkerDropsWorkAndRejectsSubmissions) {
  Worker& worker = cluster_->worker(0);
  int completed = 0;
  RunnableMonotask mt;
  mt.type = ResourceType::kCpu;
  mt.work = 100e6;  // 1 second.
  mt.input_bytes = 100e6;
  mt.on_complete = [&] { ++completed; };
  worker.Submit(std::move(mt));
  sim_.Schedule(0.5, [&] { worker.Fail(); });
  sim_.Run();
  EXPECT_EQ(completed, 0);  // In-flight completion suppressed.
  EXPECT_FALSE(worker.TryAllocateMemory(1.0));
  // Trackers stopped at the failure instant.
  EXPECT_DOUBLE_EQ(worker.cpu_busy_tracker().current(), 0.0);
}

TEST_F(FaultToleranceTest, JobsRestartAndFinishAfterWorkerFailure) {
  UrsaSchedulerConfig sc;
  // This test exercises the full-restart fallback path specifically.
  sc.fault.enable_lineage_recovery = false;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 4;
  wc.submit_interval = 1.0;
  wc.seed = 31;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  // Kill a worker mid-flight.
  sim_.Schedule(10.0, [&] { EXPECT_GT(scheduler.FailWorker(1), 0); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  EXPECT_GT(scheduler.total_restarts(), 0);
  // No monotask ever completed on the dead worker after the failure, and
  // the remaining workers carried the load.
  EXPECT_FALSE(cluster_->worker(0).failed());
  for (const JobRecord& record : scheduler.job_records()) {
    EXPECT_GE(record.finish_time, 0.0) << record.name;
  }
  // Healthy workers end with clean memory accounting (1-byte tolerance for
  // floating-point residue across the restart's allocate/release cycles).
  for (int w = 0; w < cluster_->size(); ++w) {
    if (!cluster_->worker(w).failed()) {
      EXPECT_NEAR(cluster_->worker(w).free_memory(),
                  cluster_->worker(w).memory_capacity(), 1.0);
    }
  }
}

TEST_F(FaultToleranceTest, UnaffectedJobsAreNotRestarted) {
  UrsaSchedulerConfig sc;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 2;
  wc.submit_interval = 0.5;
  wc.seed = 33;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  // Fail a worker after everything finished: nothing to restart.
  sim_.Run();
  ASSERT_TRUE(scheduler.AllJobsFinished());
  EXPECT_EQ(scheduler.FailWorker(2), 0);
  EXPECT_EQ(scheduler.total_restarts(), 0);
}

TEST_F(FaultToleranceTest, DoubleFailureIsIdempotent) {
  UrsaSchedulerConfig sc;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  scheduler.FailWorker(3);
  EXPECT_EQ(scheduler.FailWorker(3), 0);
  EXPECT_TRUE(cluster_->worker(3).failed());
}

TEST_F(FaultToleranceTest, WorkerFailIsIdempotentAndRecoverable) {
  Worker& worker = cluster_->worker(0);
  ASSERT_TRUE(worker.TryAllocateMemory(1e9));
  worker.Fail();
  EXPECT_EQ(worker.failure_epoch(), 1);
  EXPECT_DOUBLE_EQ(worker.free_memory(), worker.memory_capacity());
  // A second Fail() must not start a new failure episode.
  worker.Fail();
  EXPECT_EQ(worker.failure_epoch(), 1);
  EXPECT_TRUE(worker.failed());
  worker.Recover();
  EXPECT_FALSE(worker.failed());
  EXPECT_TRUE(worker.TryAllocateMemory(1e9));
  worker.Fail();
  EXPECT_EQ(worker.failure_epoch(), 2);
}

TEST_F(FaultToleranceTest, SubmitOnFailedWorkerFiresFailureCallback) {
  Worker& worker = cluster_->worker(0);
  worker.Fail();
  bool failed_cb = false;
  int completed = 0;
  RunnableMonotask mt;
  mt.type = ResourceType::kCpu;
  mt.work = 100e6;
  mt.input_bytes = 100e6;
  mt.on_complete = [&] { ++completed; };
  mt.on_failure = [&] { failed_cb = true; };
  worker.Submit(std::move(mt));
  sim_.Run();
  EXPECT_TRUE(failed_cb);
  EXPECT_EQ(completed, 0);
}

TEST_F(FaultToleranceTest, HeartbeatTimeoutDetectsFailureWithoutExplicitReport) {
  UrsaSchedulerConfig sc;
  sc.fault.detector.heartbeat_interval = 0.25;
  sc.fault.detector.detect_timeout = 1.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 4;
  wc.submit_interval = 1.0;
  wc.seed = 31;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  // The worker silently dies; nobody calls FailWorker().
  sim_.Schedule(10.0, [&] { cluster_->worker(1).Fail(); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  ASSERT_NE(scheduler.failure_detector(), nullptr);
  EXPECT_TRUE(scheduler.failure_detector()->declared_dead(1));
  EXPECT_EQ(scheduler.fault_stats().detections, 1);
  // Declared within detect_timeout plus one heartbeat and one sweep period.
  EXPECT_LE(scheduler.fault_stats().avg_detection_latency(),
            sc.fault.detector.detect_timeout + 2.0 * sc.fault.detector.heartbeat_interval);
}

TEST_F(FaultToleranceTest, LineageRecoveryReExecutesFewerTasksThanFullRestart) {
  UrsaSchedulerConfig sc;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 4;
  wc.submit_interval = 1.0;
  wc.seed = 31;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  sim_.Schedule(10.0, [&] { EXPECT_GT(scheduler.FailWorker(1), 0); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  // Stage-level recovery: no job restarted from scratch...
  EXPECT_EQ(scheduler.total_restarts(), 0);
  const FaultCounters stats = scheduler.fault_stats();
  // ...some tasks re-executed, but strictly fewer than a full restart of the
  // affected jobs would redo.
  EXPECT_GT(stats.tasks_reset, 0);
  EXPECT_LT(stats.tasks_reset, stats.full_restart_equivalent_tasks);
  EXPECT_GT(stats.recovery_latencies.size(), 0u);
  for (int w = 0; w < cluster_->size(); ++w) {
    if (!cluster_->worker(w).failed()) {
      EXPECT_NEAR(cluster_->worker(w).free_memory(),
                  cluster_->worker(w).memory_capacity(), 1.0);
    }
  }
}

TEST_F(FaultToleranceTest, TransientFailuresAreRetriedWithBackoff) {
  UrsaSchedulerConfig sc;
  sc.fault.max_monotask_attempts = 3;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 3;
  wc.submit_interval = 1.0;
  wc.seed = 47;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  sim_.Schedule(5.0, [&] { cluster_->worker(2).InjectTransientFailures(5); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  const FaultCounters stats = scheduler.fault_stats();
  EXPECT_GE(stats.transient_failures, 5);
  EXPECT_GE(stats.retries, 5);
  EXPECT_EQ(scheduler.total_restarts(), 0);
}

TEST_F(FaultToleranceTest, ExhaustedRetriesEscalateToReplacement) {
  UrsaSchedulerConfig sc;
  // A single attempt: the first transient failure already escalates.
  sc.fault.max_monotask_attempts = 1;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 3;
  wc.submit_interval = 1.0;
  wc.seed = 47;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  sim_.Schedule(5.0, [&] { cluster_->worker(2).InjectTransientFailures(3); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  const FaultCounters stats = scheduler.fault_stats();
  EXPECT_GE(stats.escalations, 3);
  EXPECT_EQ(stats.retries, 0);
}

TEST_F(FaultToleranceTest, RecoveredWorkerRejoinsAndReceivesPlacements) {
  UrsaSchedulerConfig sc;
  sc.fault.detector.heartbeat_interval = 0.25;
  sc.fault.detector.detect_timeout = 1.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 8;
  wc.submit_interval = 2.0;
  wc.seed = 31;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  int64_t completed_at_rejoin = -1;
  sim_.Schedule(8.0, [&] { cluster_->worker(1).Fail(); });
  sim_.Schedule(14.0, [&] {
    cluster_->worker(1).Recover();
    completed_at_rejoin = cluster_->worker(1).completed(ResourceType::kCpu);
  });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  const FaultCounters stats = scheduler.fault_stats();
  EXPECT_EQ(stats.detections, 1);
  EXPECT_EQ(stats.rejoins, 1);
  ASSERT_NE(scheduler.failure_detector(), nullptr);
  EXPECT_FALSE(scheduler.failure_detector()->declared_dead(1));
  // The rejoined worker went back to useful work.
  EXPECT_GT(cluster_->worker(1).completed(ResourceType::kCpu), completed_at_rejoin);
}

// Regression: a worker that fails and recovers before the completion events
// of its in-flight monotasks fire must discard those events. Before the
// failure-epoch guard, the stale events decremented occupancy counters that
// Fail() had already zeroed (driving busy_cores_/cpu_busy_now_/running_bytes_
// negative) and delivered completion callbacks for work that was lost.
TEST_F(FaultToleranceTest, StaleCompletionsAfterRejoinAreDiscarded) {
  Worker& worker = cluster_->worker(0);
  int stale_completed = 0;
  int stale_failed = 0;
  int fresh_completed = 0;

  // One in-flight monotask per resource, each longer than 0.5 s.
  RunnableMonotask cpu;
  cpu.type = ResourceType::kCpu;
  cpu.work = 100e6;  // 1 s at 100 MB/s.
  cpu.input_bytes = 100e6;
  cpu.on_complete = [&] { ++stale_completed; };
  cpu.on_failure = [&] { ++stale_failed; };
  worker.Submit(std::move(cpu));

  RunnableMonotask disk;
  disk.type = ResourceType::kDisk;
  disk.work = 150e6;  // 1 s at the default 150 MB/s disk rate.
  disk.input_bytes = 150e6;
  disk.on_complete = [&] { ++stale_completed; };
  disk.on_failure = [&] { ++stale_failed; };
  worker.Submit(std::move(disk));

  RunnableMonotask net;
  net.type = ResourceType::kNetwork;
  net.pulls = {{/*src=*/1, /*bytes=*/1.25e9}};  // ~1 s at the default downlink.
  net.input_bytes = 1.25e9;
  net.on_complete = [&] { ++stale_completed; };
  net.on_failure = [&] { ++stale_failed; };
  worker.Submit(std::move(net));

  // Fail and rejoin before any of the three events fire.
  sim_.Schedule(0.5, [&] {
    worker.Fail();
    worker.Recover();
    ASSERT_FALSE(worker.failed());
    // Fresh work on the rejoined worker must execute normally.
    RunnableMonotask fresh;
    fresh.type = ResourceType::kCpu;
    fresh.work = 100e6;
    fresh.input_bytes = 100e6;
    fresh.on_complete = [&] { ++fresh_completed; };
    worker.Submit(std::move(fresh));
  });
  sim_.Run();

  // No stale callback delivery: the lost monotasks are the scheduler's
  // problem (lineage recovery), not the rejoined worker's.
  EXPECT_EQ(stale_completed, 0);
  EXPECT_EQ(stale_failed, 0);
  EXPECT_EQ(fresh_completed, 1);
  EXPECT_EQ(worker.completed(ResourceType::kCpu), 1);
  EXPECT_EQ(worker.completed(ResourceType::kDisk), 0);
  EXPECT_EQ(worker.completed(ResourceType::kNetwork), 0);

  // Occupancy never went negative and is back to idle.
  EXPECT_EQ(worker.busy_cores(), 0);
  EXPECT_EQ(worker.busy_disks(), 0);
  EXPECT_EQ(worker.active_network(), 0);
  EXPECT_DOUBLE_EQ(worker.cpu_busy_now(), 0.0);
  EXPECT_DOUBLE_EQ(worker.disk_busy_now(), 0.0);
  for (ResourceType r :
       {ResourceType::kCpu, ResourceType::kNetwork, ResourceType::kDisk}) {
    EXPECT_GE(worker.running_bytes(r), 0.0) << ResourceTypeName(r);
    EXPECT_DOUBLE_EQ(worker.running_bytes(r), 0.0) << ResourceTypeName(r);
  }
  EXPECT_TRUE(worker.HasIdleCpu());
  EXPECT_EQ(worker.idle_cores(), config_.worker.cores);
}

// Queued (not yet running) monotasks drained by Fail() report failure
// through on_failure — asynchronously, never from inside Fail() itself.
TEST_F(FaultToleranceTest, DrainedQueuedMonotasksFailAsynchronously) {
  Worker& worker = cluster_->worker(0);
  int completions = 0;
  int failures = 0;
  // 8 cores: monotasks 9 and 10 wait in the CPU queue.
  for (int i = 0; i < 10; ++i) {
    RunnableMonotask mt;
    mt.type = ResourceType::kCpu;
    mt.work = 100e6;  // 1 s.
    mt.input_bytes = 100e6;
    mt.on_complete = [&] { ++completions; };
    mt.on_failure = [&] { ++failures; };
    worker.Submit(std::move(mt));
  }
  sim_.Schedule(0.5, [&] {
    worker.Fail();
    // Deferred via the simulator: nothing fired synchronously.
    EXPECT_EQ(failures, 0);
  });
  sim_.Run();
  // The 8 in-flight monotasks are suppressed (lineage recovery's job); the 2
  // drained queued ones fail explicitly so no job manager hangs on them.
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(completions, 0);
}

// End-to-end version of the drain guarantee with lineage recovery disabled:
// the failure is only noticed via heartbeat timeout, so without the drained
// on_failure notifications the affected job managers would wait forever on
// monotasks that no longer exist.
TEST_F(FaultToleranceTest, DrainedMonotasksUnblockJobsWithoutLineageRecovery) {
  UrsaSchedulerConfig sc;
  sc.fault.enable_lineage_recovery = false;
  sc.fault.detector.heartbeat_interval = 0.25;
  sc.fault.detector.detect_timeout = 1.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 4;
  wc.submit_interval = 1.0;
  wc.seed = 31;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  // Silent death: nobody calls FailWorker(), detection is heartbeat-only.
  sim_.Schedule(10.0, [&] { cluster_->worker(1).Fail(); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  EXPECT_EQ(scheduler.fault_stats().detections, 1);
  EXPECT_GT(scheduler.fault_stats().worker_loss_failures, 0);
}

// Full restarts park the aborted job manager until its in-flight callbacks
// drain; once the owning job finishes the parked JM must be reclaimed, not
// retained for the lifetime of the scheduler.
TEST_F(FaultToleranceTest, AbortedJobManagersAreReclaimedAfterJobsFinish) {
  UrsaSchedulerConfig sc;
  sc.fault.enable_lineage_recovery = false;  // Force the full-restart path.
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  TpchWorkloadConfig wc;
  wc.num_jobs = 4;
  wc.submit_interval = 1.0;
  wc.seed = 31;
  const Workload workload = MakeTpchWorkload(wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    sim_.ScheduleAt(workload.jobs[i].submit_time, [&, i] {
      scheduler.SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
    });
  }
  bool saw_parked_jm = false;
  sim_.Schedule(10.0, [&] {
    EXPECT_GT(scheduler.FailWorker(1), 0);
    saw_parked_jm = scheduler.aborted_jms_retained() > 0;
  });
  sim_.Schedule(14.0, [&] { cluster_->worker(1).Recover(); });
  sim_.Schedule(18.0, [&] { scheduler.FailWorker(2); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  EXPECT_GT(scheduler.total_restarts(), 0);
  EXPECT_TRUE(saw_parked_jm);  // The restart really parked an aborted JM...
  EXPECT_EQ(scheduler.aborted_jms_retained(), 0u);  // ...and it was reclaimed.
}

TEST_F(FaultToleranceTest, ChaosRunsAreDeterministicUnderFixedSeed) {
  FaultPlanConfig pc;
  pc.seed = 7;
  pc.num_workers = 4;
  pc.horizon_start = 5.0;
  pc.horizon_end = 40.0;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.transients = 3;
  const FaultPlan plan = MakeRandomFaultPlan(pc);
  ASSERT_EQ(plan.events.size(), 5u);

  TpchWorkloadConfig wc;
  wc.num_jobs = 4;
  wc.submit_interval = 1.0;
  wc.seed = 31;
  const Workload workload = MakeTpchWorkload(wc);

  auto run_once = [&] {
    ExperimentConfig config = UrsaEjfConfig();
    config.cluster.num_workers = 4;
    config.cluster.worker.cores = 8;
    config.cluster.worker.cpu_byte_rate = 100e6;
    config.fault_plan = plan;
    return RunExperiment(workload, config, "chaos");
  };
  const ExperimentResult a = run_once();
  const ExperimentResult b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  EXPECT_DOUBLE_EQ(a.avg_jct(), b.avg_jct());
  EXPECT_EQ(a.faults.detections, b.faults.detections);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.tasks_reset, b.faults.tasks_reset);
  EXPECT_EQ(a.faults.escalations, b.faults.escalations);
  EXPECT_TRUE(a.faults.any_faults());
}

}  // namespace
}  // namespace ursa
