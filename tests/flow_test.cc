#include "src/net/flow_simulator.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace ursa {
namespace {

constexpr double kGbps = 1e9 / 8.0;

TEST(FlowSimulator, SingleFlowUsesFullDownlink) {
  Simulator sim;
  FlowSimulator net(&sim, 2, 10 * kGbps, 10 * kGbps);
  double done_at = -1.0;
  net.StartFlow(0, 1, 10 * kGbps /*= 1 second of bytes*/, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 1.0, 1e-6);
}

TEST(FlowSimulator, TwoFlowsShareReceiverDownlink) {
  Simulator sim;
  FlowSimulator net(&sim, 3, 10 * kGbps, 10 * kGbps);
  double done0 = -1.0;
  double done1 = -1.0;
  net.StartFlow(0, 2, 10 * kGbps, [&] { done0 = sim.Now(); });
  net.StartFlow(1, 2, 10 * kGbps, [&] { done1 = sim.Now(); });
  sim.Run();
  // Each gets half the downlink: both complete at ~2 s.
  EXPECT_NEAR(done0, 2.0, 1e-6);
  EXPECT_NEAR(done1, 2.0, 1e-6);
}

TEST(FlowSimulator, UplinkBottleneckEnforced) {
  Simulator sim;
  FlowSimulator net(&sim, 3, 10 * kGbps, 10 * kGbps);
  net.set_enforce_uplinks(true);
  // One sender fanning out to two receivers: uplink is the bottleneck.
  double done0 = -1.0;
  double done1 = -1.0;
  net.StartFlow(0, 1, 10 * kGbps, [&] { done0 = sim.Now(); });
  net.StartFlow(0, 2, 10 * kGbps, [&] { done1 = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done0, 2.0, 1e-6);
  EXPECT_NEAR(done1, 2.0, 1e-6);
}

TEST(FlowSimulator, ReceiverOnlyModeIgnoresUplink) {
  Simulator sim;
  FlowSimulator net(&sim, 3, 10 * kGbps, 10 * kGbps);
  net.set_enforce_uplinks(false);
  double done0 = -1.0;
  double done1 = -1.0;
  net.StartFlow(0, 1, 10 * kGbps, [&] { done0 = sim.Now(); });
  net.StartFlow(0, 2, 10 * kGbps, [&] { done1 = sim.Now(); });
  sim.Run();
  // Different receivers, uplink unconstrained: both finish in 1 s.
  EXPECT_NEAR(done0, 1.0, 1e-6);
  EXPECT_NEAR(done1, 1.0, 1e-6);
}

TEST(FlowSimulator, MaxMinGivesBottleneckedFlowItsFairShare) {
  Simulator sim;
  FlowSimulator net(&sim, 4, 10 * kGbps, 10 * kGbps);
  net.set_enforce_uplinks(true);
  // Flows: A:0->2, B:1->2 (share downlink of 2), C:1->3.
  // Max-min: A and B get 5 Gbps each; C gets the remaining uplink of 1,
  // which is 5 Gbps (uplink 10 - B's 5).
  net.StartFlow(0, 2, 1e12, nullptr);
  const FlowId b = net.StartFlow(1, 2, 1e12, nullptr);
  const FlowId c = net.StartFlow(1, 3, 1e12, nullptr);
  net.RecomputeForTest();
  EXPECT_NEAR(net.FlowRateForTest(b), 5 * kGbps, 1e3);
  EXPECT_NEAR(net.FlowRateForTest(c), 5 * kGbps, 1e3);
  EXPECT_NEAR(net.NodeRxRate(2), 10 * kGbps, 1e3);
}

TEST(FlowSimulator, LocalFlowsBypassLinks) {
  Simulator sim;
  FlowSimulator net(&sim, 2, 10 * kGbps, 10 * kGbps);
  net.set_local_copy_rate(1e9);
  double done = -1.0;
  net.StartFlow(0, 0, 2e9, [&] { done = sim.Now(); });
  net.StartFlow(0, 1, 1e12, nullptr);  // Unrelated remote flow.
  sim.Run(3.0);
  EXPECT_NEAR(done, 2.0, 1e-6);
  EXPECT_DOUBLE_EQ(net.NodeRxRate(0), 0.0);  // Local copy not counted as rx.
}

TEST(FlowSimulator, CancelDropsCallback) {
  Simulator sim;
  FlowSimulator net(&sim, 2, 10 * kGbps, 10 * kGbps);
  bool fired = false;
  const FlowId id = net.StartFlow(0, 1, 10 * kGbps, [&] { fired = true; });
  sim.Run(0.5);
  net.CancelFlow(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(FlowSimulator, ZeroByteFlowCompletesImmediately) {
  Simulator sim;
  FlowSimulator net(&sim, 2, 10 * kGbps, 10 * kGbps);
  bool fired = false;
  net.StartFlow(0, 1, 0.0, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(FlowSimulator, RxTrackerRecordsReceiveRate) {
  Simulator sim;
  FlowSimulator net(&sim, 2, 10 * kGbps, 10 * kGbps);
  net.StartFlow(0, 1, 10 * kGbps, nullptr);  // 1 s at full rate.
  sim.Run();
  EXPECT_NEAR(net.rx_tracker(1).Integral(0.0, 2.0), 10 * kGbps, 1e3);
}

// Property: total delivered bytes equal the sum of all completed flow sizes,
// and no link's rate ever exceeds capacity.
class FlowConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowConservation, BytesConservedAndCapacitiesRespected) {
  Simulator sim;
  const int nodes = 6;
  FlowSimulator net(&sim, nodes, 10 * kGbps, 10 * kGbps);
  net.set_enforce_uplinks(true);
  Rng rng(GetParam());
  double total = 0.0;
  int completed = 0;
  const int kFlows = 40;
  for (int i = 0; i < kFlows; ++i) {
    const int src = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(nodes)));
    int dst = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(nodes)));
    if (dst == src) {
      dst = (dst + 1) % nodes;
    }
    const double bytes = rng.Uniform(1e6, 5e9);
    total += bytes;
    sim.Schedule(rng.Uniform(0.0, 5.0), [&net, &completed, src, dst, bytes] {
      net.StartFlow(src, dst, bytes, [&completed] { ++completed; });
    });
  }
  sim.Run();
  EXPECT_EQ(completed, kFlows);
  EXPECT_NEAR(net.total_bytes_delivered(), total, total * 1e-6 + kFlows);
  for (int n = 0; n < nodes; ++n) {
    EXPECT_LE(net.rx_tracker(n).Max(0.0, 1e9), 10 * kGbps * 1.0000001);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservation, ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace ursa
