// Edge cases across modules that the mainline tests don't reach.
#include <gtest/gtest.h>

#include "src/dag/plan.h"
#include "src/net/flow_simulator.h"
#include "src/sql/parser.h"

namespace ursa {
namespace {

TEST(PlanEdge, OpsWithUpdatesDoNotCollapse) {
  // Iterative in-place updates (Op::Update) must keep their op boundaries:
  // the fuse rule requires side-effect-free members.
  OpGraph graph;
  const DataId input = graph.CreateExternalData({10.0, 10.0}, "in");
  const DataId state = graph.CreateData(2, "state");
  const DataId out = graph.CreateData(2, "out");
  OpHandle init = graph.CreateOp(ResourceType::kCpu, "init").Read(input).Create(state);
  OpHandle step =
      graph.CreateOp(ResourceType::kCpu, "step").Read(state).Update(state).Create(out);
  init.To(step, DepKind::kAsync);
  const ExecutionPlan plan = ExecutionPlan::Build(graph, 1);
  EXPECT_EQ(plan.cops().size(), 2u);  // No fusion across the Update op.
  EXPECT_EQ(plan.stages().size(), 1u);  // Still the same co-located stage.
}

TEST(PlanEdge, SingleOpJob) {
  OpGraph graph;
  const DataId input = graph.CreateExternalData({5.0}, "in");
  graph.CreateOp(ResourceType::kCpu, "only").Read(input).SetParallelism(1);
  const ExecutionPlan plan = ExecutionPlan::Build(graph, 1);
  EXPECT_EQ(plan.monotasks().size(), 1u);
  EXPECT_EQ(plan.tasks().size(), 1u);
  EXPECT_EQ(plan.stages().size(), 1u);
  EXPECT_TRUE(plan.task(0).sync_parent_stages.empty());
}

TEST(FlowEdge, BandwidthChangeMidFlow) {
  Simulator sim;
  FlowSimulator net(&sim, 2, 1e9, 1e9);
  double done = -1.0;
  net.StartFlow(0, 1, 1e9, [&] { done = sim.Now(); });  // 1 s at 1 GB/s.
  sim.Schedule(0.5, [&] { net.SetNodeBandwidth(1, 1e9, 0.5e9); });
  sim.Run();
  // Half transferred in 0.5 s, the rest at half rate: 0.5 + 1.0 = 1.5 s.
  EXPECT_NEAR(done, 1.5, 1e-6);
}

TEST(FlowEdge, ManyConcurrentFlowsConverge) {
  Simulator sim;
  FlowSimulator net(&sim, 8, 1e9, 1e9);
  net.set_enforce_uplinks(true);
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    net.StartFlow(i % 8, (i + 3) % 8, 1e7 * (1 + i % 5), [&] { ++completed; });
  }
  sim.Run();
  EXPECT_EQ(completed, 200);
}

TEST(SqlParserEdge, QualifiedAggregateAndAliases) {
  const SelectStatement s =
      ParseSql("SELECT MAX(t.price) AS top, t.region FROM t GROUP BY t.region");
  EXPECT_EQ(s.items[0].agg, AggFn::kMax);
  EXPECT_EQ(s.items[0].column, "t.price");
  EXPECT_EQ(s.items[0].alias, "top");
  EXPECT_EQ(s.items[1].column, "t.region");
}

TEST(SqlParserEdge, NegativeAndFloatLiterals) {
  const SelectStatement s = ParseSql("SELECT a FROM t WHERE a >= -3 AND b < 2.5");
  ASSERT_EQ(s.where.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(s.where[0].literal), -3);
  EXPECT_DOUBLE_EQ(std::get<double>(s.where[1].literal), 2.5);
}

TEST(SqlParserEdge, CaseInsensitiveKeywords) {
  const SelectStatement s = ParseSql("select count(*) from t where x = 1 limit 3");
  EXPECT_EQ(s.items[0].agg, AggFn::kCount);
  EXPECT_EQ(*s.limit, 3);
}

TEST(SqlValueEdge, CompareAndHash) {
  EXPECT_LT(CompareValues(int64_t{2}, 2.5), 0);
  EXPECT_EQ(CompareValues(int64_t{2}, 2.0), 0);
  EXPECT_GT(CompareValues(std::string("b"), std::string("a")), 0);
  EXPECT_EQ(HashValue(std::string("x")), HashValue(std::string("x")));
}

}  // namespace
}  // namespace ursa
