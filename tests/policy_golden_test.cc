// Golden policy-conformance suite (DESIGN.md section 13): ten small,
// hand-analyzable job DAGs are run through (a) the stage-criticality
// analysis behind Graphene ordering and (b) a full placement run under every
// registered ordering policy plus the Tetris score and Hugo co-location
// contenders, on a fixed 4-worker cluster. The exact analysis numbers and
// the exact placement sequence (time, job, task, stage, worker — every
// decision, in order) are compared against the committed golden file:
//
//   tests/golden/policy_conformance.golden
//
// Any change to ordering, scoring, criticality or tie-breaking shows up as
// a diff here, reviewable line by line. To regenerate after an intentional
// change:
//
//   URSA_REGEN_GOLDEN=1 ./tests/policy_golden_test
//
// which rewrites the golden in the source tree (the path is compiled in via
// URSA_SOURCE_DIR); rerun without the variable to confirm, then commit the
// new golden alongside the change that moved it.
#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dag/critical_path.h"
#include "src/dag/job.h"
#include "src/driver/experiment.h"
#include "src/obs/trace.h"

namespace ursa {
namespace {

constexpr char kGoldenPath[] = URSA_SOURCE_DIR "/tests/golden/policy_conformance.golden";

// --- The DAG zoo: small graphs with hand-checkable critical paths. ---

struct GoldenCase {
  std::string name;
  JobSpec spec;
};

JobSpec BaseSpec(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.klass = name;  // One class per shape: co-location learns per shape.
  spec.declared_memory_bytes = 64.0 * 1024 * 1024;
  spec.seed = 7;
  return spec;
}

// Single CPU stage, `parts` tasks of `bytes` each. Trivial baseline: one
// stage, trivially troublesome (it is the whole critical path).
GoldenCase MapOnly(const std::string& name, int parts, double bytes) {
  GoldenCase c{name, BaseSpec(name)};
  OpGraph& g = c.spec.graph;
  const DataId in = g.CreateExternalData(
      std::vector<double>(static_cast<size_t>(parts), bytes), "in");
  const DataId out = g.CreateData(parts, "out");
  g.CreateOp(ResourceType::kCpu, "map").Read(in).Create(out);
  return c;
}

// The paper's reduceByKey skeleton: ser(CPU) -sync-> shuffle(NET) -async->
// deser(CPU). Two stages; both lie on the single root-to-sink path, so both
// are troublesome at any threshold.
GoldenCase TwoStage(const std::string& name, int in_parts, int out_parts, double bytes) {
  GoldenCase c{name, BaseSpec(name)};
  OpGraph& g = c.spec.graph;
  const DataId in = g.CreateExternalData(
      std::vector<double>(static_cast<size_t>(in_parts), bytes), "in");
  const DataId msg = g.CreateData(in_parts, "msg");
  const DataId shuffled = g.CreateData(out_parts, "shuffled");
  const DataId out = g.CreateData(out_parts, "out");
  OpHandle ser = g.CreateOp(ResourceType::kCpu, "ser").Read(in).Create(msg);
  OpHandle shuffle = g.CreateOp(ResourceType::kNetwork, "shuffle").Read(msg).Create(shuffled);
  OpHandle deser = g.CreateOp(ResourceType::kCpu, "deser").Read(shuffled).Create(out);
  ser.To(shuffle, DepKind::kSync);
  shuffle.To(deser, DepKind::kAsync);
  return c;
}

// Three stages in a chain: ser -> shuffle -> mid -> shuffle2 -> tail, with
// `mid_complexity` scaling the middle stage's CPU work.
GoldenCase Chain3(const std::string& name, int parts, double bytes, double mid_complexity) {
  GoldenCase c{name, BaseSpec(name)};
  OpGraph& g = c.spec.graph;
  const DataId in = g.CreateExternalData(
      std::vector<double>(static_cast<size_t>(parts), bytes), "in");
  const DataId msg = g.CreateData(parts, "msg");
  const DataId s1 = g.CreateData(parts, "s1");
  const DataId mid = g.CreateData(parts, "mid");
  const DataId s2 = g.CreateData(parts, "s2");
  const DataId out = g.CreateData(parts, "out");
  OpCostModel heavy;
  heavy.cpu_complexity = mid_complexity;
  OpHandle ser = g.CreateOp(ResourceType::kCpu, "ser").Read(in).Create(msg);
  OpHandle sh1 = g.CreateOp(ResourceType::kNetwork, "sh1").Read(msg).Create(s1);
  OpHandle m = g.CreateOp(ResourceType::kCpu, "mid").Read(s1).Create(mid).SetCost(heavy);
  OpHandle sh2 = g.CreateOp(ResourceType::kNetwork, "sh2").Read(mid).Create(s2);
  OpHandle tail = g.CreateOp(ResourceType::kCpu, "tail").Read(s2).Create(out);
  ser.To(sh1, DepKind::kSync);
  sh1.To(m, DepKind::kAsync);
  m.To(sh2, DepKind::kSync);
  sh2.To(tail, DepKind::kAsync);
  return c;
}

// Diamond: one source stage fans out into two parallel shuffle+deser
// branches that join in a final shuffle. `heavy_scale` raises branch A's
// CPU complexity — which stretches its *runtime* but not its byte volume,
// so the byte-based criticality analysis keeps both branches troublesome
// (visible in the golden: the skewed and balanced diamonds analyze
// identically while their placement sequences differ).
GoldenCase Diamond(const std::string& name, int parts, double bytes, double heavy_scale) {
  GoldenCase c{name, BaseSpec(name)};
  OpGraph& g = c.spec.graph;
  const DataId in = g.CreateExternalData(
      std::vector<double>(static_cast<size_t>(parts), bytes), "in");
  const DataId msg = g.CreateData(parts, "msg");
  const DataId sa = g.CreateData(parts, "sa");
  const DataId ra = g.CreateData(parts, "ra");
  const DataId sb = g.CreateData(parts, "sb");
  const DataId rb = g.CreateData(parts, "rb");
  const DataId sj = g.CreateData(parts, "sj");
  const DataId out = g.CreateData(parts, "out");
  OpCostModel heavy;
  heavy.cpu_complexity = heavy_scale;
  OpHandle ser = g.CreateOp(ResourceType::kCpu, "ser").Read(in).Create(msg);
  OpHandle shA = g.CreateOp(ResourceType::kNetwork, "shA").Read(msg).Create(sa);
  OpHandle deA = g.CreateOp(ResourceType::kCpu, "deA").Read(sa).Create(ra).SetCost(heavy);
  OpHandle shB = g.CreateOp(ResourceType::kNetwork, "shB").Read(msg).Create(sb);
  OpHandle deB = g.CreateOp(ResourceType::kCpu, "deB").Read(sb).Create(rb);
  OpHandle shJ = g.CreateOp(ResourceType::kNetwork, "shJ").Read(ra).Read(rb).Create(sj);
  OpHandle deJ = g.CreateOp(ResourceType::kCpu, "deJ").Read(sj).Create(out);
  ser.To(shA, DepKind::kSync);
  shA.To(deA, DepKind::kAsync);
  ser.To(shB, DepKind::kSync);
  shB.To(deB, DepKind::kAsync);
  deA.To(shJ, DepKind::kSync);
  deB.To(shJ, DepKind::kSync);
  shJ.To(deJ, DepKind::kAsync);
  return c;
}

// Two independent sources joining in one shuffle: the heavier source is the
// long pole; the lighter source stage is a non-troublesome sibling.
GoldenCase Join(const std::string& name, int parts, double left_bytes, double right_bytes) {
  GoldenCase c{name, BaseSpec(name)};
  OpGraph& g = c.spec.graph;
  const DataId lin = g.CreateExternalData(
      std::vector<double>(static_cast<size_t>(parts), left_bytes), "lin");
  const DataId rin = g.CreateExternalData(
      std::vector<double>(static_cast<size_t>(parts), right_bytes), "rin");
  const DataId lm = g.CreateData(parts, "lm");
  const DataId rm = g.CreateData(parts, "rm");
  const DataId sj = g.CreateData(parts, "sj");
  const DataId out = g.CreateData(parts, "out");
  OpHandle lser = g.CreateOp(ResourceType::kCpu, "lser").Read(lin).Create(lm);
  OpHandle rser = g.CreateOp(ResourceType::kCpu, "rser").Read(rin).Create(rm);
  OpHandle shJ = g.CreateOp(ResourceType::kNetwork, "join").Read(lm).Read(rm).Create(sj);
  OpHandle deJ = g.CreateOp(ResourceType::kCpu, "deser").Read(sj).Create(out);
  lser.To(shJ, DepKind::kSync);
  rser.To(shJ, DepKind::kSync);
  shJ.To(deJ, DepKind::kAsync);
  return c;
}

std::vector<GoldenCase> MakeCases() {
  std::vector<GoldenCase> cases;
  cases.push_back(MapOnly("map-small", 4, 50.0 * 1024 * 1024));
  cases.push_back(MapOnly("map-wide", 8, 20.0 * 1024 * 1024));
  cases.push_back(TwoStage("rbk-narrowing", 4, 2, 40.0 * 1024 * 1024));
  cases.push_back(TwoStage("rbk-wide", 6, 6, 25.0 * 1024 * 1024));
  cases.push_back(Chain3("chain-heavy-mid", 4, 30.0 * 1024 * 1024, 4.0));
  cases.push_back(Chain3("chain-flat", 4, 30.0 * 1024 * 1024, 1.0));
  cases.push_back(Diamond("diamond-skewed", 3, 20.0 * 1024 * 1024, 6.0));
  cases.push_back(Diamond("diamond-balanced", 3, 20.0 * 1024 * 1024, 1.0));
  cases.push_back(Join("join-skewed", 4, 60.0 * 1024 * 1024, 6.0 * 1024 * 1024));
  cases.push_back(Join("join-balanced", 4, 30.0 * 1024 * 1024, 30.0 * 1024 * 1024));
  return cases;
}

// --- Golden text generation. ---

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

// Section 1: per-case criticality analysis at the default Graphene
// threshold. %.4f on megabyte-scaled values keeps the text readable while
// still exact for these hand-sized inputs.
std::string CriticalitySection(const std::vector<GoldenCase>& cases) {
  const GrapheneConfig defaults;
  std::string out = "== criticality (threshold " + std::to_string(defaults.threshold) + ") ==\n";
  for (const GoldenCase& c : cases) {
    const ExecutionPlan plan = ExecutionPlan::Build(c.spec.graph, c.spec.seed);
    const StageCriticality crit = AnalyzeStages(plan, defaults.threshold);
    AppendF(&out, "case %s: stages=%zu critical_path_mb=%.4f\n", c.name.c_str(),
            plan.stages().size(), crit.critical_path / (1024.0 * 1024.0));
    for (const StageSpec& stage : plan.stages()) {
      const size_t s = static_cast<size_t>(stage.id);
      AppendF(&out,
              "  stage %d (%s): tasks=%d work_mb=%.4f top_mb=%.4f bottom_mb=%.4f "
              "troublesome=%d bottom_share=%.4f\n",
              stage.id, stage.name.c_str(), stage.num_tasks,
              crit.work[s] / (1024.0 * 1024.0), crit.top_level[s] / (1024.0 * 1024.0),
              crit.bottom_level[s] / (1024.0 * 1024.0), crit.IsTroublesome(stage.id) ? 1 : 0,
              crit.BottomShare(stage.id));
    }
  }
  return out;
}

// Section 2: the full placement sequence of the whole zoo, submitted two
// seconds apart on a 4-worker cluster, per policy contender.
struct Contender {
  std::string name;
  ExperimentConfig config;
};

std::vector<Contender> MakeContenders() {
  std::vector<Contender> out;
  for (const OrderingPolicyInfo& info : OrderingPolicyRegistry()) {
    out.push_back({info.name, UrsaOrderingConfig(info.policy)});
  }
  Contender tetris{"TETRIS-SCORE", UrsaSrjfConfig()};
  tetris.config.ursa.score = PlacementScoreKind::kTetrisDot;
  out.push_back(std::move(tetris));
  Contender hugo{"HUGO", UrsaSrjfConfig()};
  hugo.config.ursa.colocation.enabled = true;
  out.push_back(std::move(hugo));
  return out;
}

std::string PlacementSection(const std::vector<GoldenCase>& cases) {
  Workload workload;
  workload.name = "golden-zoo";
  for (size_t i = 0; i < cases.size(); ++i) {
    WorkloadJob wj;
    wj.spec = cases[i].spec;
    wj.submit_time = 2.0 * static_cast<double>(i);
    workload.jobs.push_back(std::move(wj));
  }

  std::string out;
  for (Contender& contender : MakeContenders()) {
    contender.config.cluster.num_workers = 4;
    contender.config.trace = true;
    const ExperimentResult result =
        RunExperiment(workload, contender.config, contender.name);
    out += "== placements " + contender.name + " ==\n";
    for (const TraceEvent& event : result.trace->Snapshot()) {
      if (event.kind == TraceEventKind::kTaskPlaced) {
        AppendF(&out, "t=%.4f job=%d task=%d stage=%d worker=%d\n", event.t, event.job,
                event.task, event.stage, event.worker);
      }
    }
  }
  return out;
}

std::string ReadFileOrEmpty(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    return "";
  }
  std::string text;
  char chunk[4096];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, n);
  }
  std::fclose(f);
  return text;
}

// Pinpoints the first diverging line so a golden diff reads like a review
// comment instead of a 500-line blob.
void ExpectGoldenEq(const std::string& expected, const std::string& actual) {
  if (expected == actual) {
    SUCCEED();
    return;
  }
  size_t line = 1;
  size_t i = 0;
  const size_t n = std::min(expected.size(), actual.size());
  while (i < n && expected[i] == actual[i]) {
    if (expected[i] == '\n') {
      ++line;
    }
    ++i;
  }
  const auto line_at = [](const std::string& s, size_t pos) {
    const size_t begin = s.rfind('\n', pos == 0 ? 0 : pos - 1) + 1;
    const size_t end = s.find('\n', pos);
    return s.substr(begin, (end == std::string::npos ? s.size() : end) - begin);
  };
  FAIL() << "golden mismatch at line " << line << ":\n  golden: '"
         << line_at(expected, i) << "'\n  actual: '" << line_at(actual, i)
         << "'\nIf the change is intentional, regenerate with "
            "URSA_REGEN_GOLDEN=1 and commit the diff.";
}

TEST(PolicyGolden, ConformanceMatchesCommittedGolden) {
  const std::vector<GoldenCase> cases = MakeCases();
  std::string actual = "# Policy-conformance golden. Regenerate with URSA_REGEN_GOLDEN=1\n";
  actual += "# ./tests/policy_golden_test (see tests/policy_golden_test.cc).\n";
  actual += CriticalitySection(cases);
  actual += PlacementSection(cases);

  if (std::getenv("URSA_REGEN_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(kGoldenPath, "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << kGoldenPath;
    std::fwrite(actual.data(), 1, actual.size(), f);
    std::fclose(f);
    std::printf("regenerated %s (%zu bytes)\n", kGoldenPath, actual.size());
    return;
  }
  const std::string expected = ReadFileOrEmpty(kGoldenPath);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << kGoldenPath
                                 << " — generate it with URSA_REGEN_GOLDEN=1";
  ExpectGoldenEq(expected, actual);
}

// The golden zoo is only a conformance probe if its text is reproducible:
// generating the placement section twice must be byte-identical.
TEST(PolicyGolden, GoldenTextIsDeterministic) {
  const std::vector<GoldenCase> cases = MakeCases();
  EXPECT_EQ(CriticalitySection(cases), CriticalitySection(cases));
  EXPECT_EQ(PlacementSection(cases), PlacementSection(cases));
}

}  // namespace
}  // namespace ursa
