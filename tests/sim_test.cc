#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"

namespace ursa {
namespace {

// Every EventQueue implementation must satisfy the same contract; the suite
// runs once per kind.
class EventQueueTest : public ::testing::TestWithParam<EventQueueKind> {
 protected:
  EventQueueTest() : queue_ptr_(MakeEventQueue(GetParam())), queue(*queue_ptr_) {}
  std::unique_ptr<EventQueue> queue_ptr_;
  EventQueue& queue;
};

INSTANTIATE_TEST_SUITE_P(AllKinds, EventQueueTest,
                         ::testing::Values(EventQueueKind::kBinaryHeap,
                                           EventQueueKind::kCalendar),
                         [](const ::testing::TestParamInfo<EventQueueKind>& info) {
                           return EventQueueKindName(info.param);
                         });

TEST_P(EventQueueTest, FiresInTimeOrder) {
  std::vector<int> fired;
  queue.Push(3.0, [&] { fired.push_back(3); });
  queue.Push(1.0, [&] { fired.push_back(1); });
  queue.Push(2.0, [&] { fired.push_back(2); });
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, SameTimeFifo) {
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.Push(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  }
}

TEST_P(EventQueueTest, CancelPreventsFiring) {
  bool fired = false;
  const EventId id = queue.Push(1.0, [&] { fired = true; });
  queue.Push(2.0, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));  // Second cancel is a no-op.
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  EXPECT_FALSE(fired);
}

TEST_P(EventQueueTest, CancelHeadUpdatesNextTime) {
  const EventId id = queue.Push(1.0, [] {});
  queue.Push(5.0, [] {});
  EXPECT_DOUBLE_EQ(queue.NextTime(), 1.0);
  queue.Cancel(id);
  EXPECT_DOUBLE_EQ(queue.NextTime(), 5.0);
  EXPECT_EQ(queue.PendingCount(), 1u);
}

TEST_P(EventQueueTest, EagerCompactionBoundsTombstones) {
  // Cancel-heavy usage (speculation + chaos) must not grow storage without
  // bound: tombstones are compacted once they outnumber live events.
  std::vector<EventId> ids;
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(queue.Push(1.0 + 0.001 * i, [] {}));
  }
  for (size_t i = 0; i < ids.size(); i += 2) {
    queue.Cancel(ids[i]);
    EXPECT_LE(queue.StoredCount(), 2 * queue.PendingCount() + 1);
  }
  EXPECT_EQ(queue.PendingCount(), ids.size() / 2);
}

TEST_P(EventQueueTest, InterleavedPushPopCancelMatchesShadowModel) {
  // Every Pop must return the minimum (when, id) among the events pending at
  // that instant; a shadow ordered set is the reference model.
  std::set<std::pair<double, EventId>> shadow;
  std::vector<EventId> ids;
  std::vector<double> whens;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      const double when = static_cast<double>((i * 37 + round) % 13);
      const EventId id = queue.Push(when, [] {});
      ids.push_back(id);
      whens.push_back(when);
      shadow.emplace(when, id);
    }
    for (size_t i = 0; i < ids.size(); i += 3) {
      if (queue.Cancel(ids[i])) {
        shadow.erase({whens[i], ids[i]});
      }
    }
    for (int i = 0; i < 10 && !queue.Empty(); ++i) {
      const auto fired = queue.Pop();
      ASSERT_FALSE(shadow.empty());
      EXPECT_EQ(std::make_pair(fired.when, fired.id), *shadow.begin());
      shadow.erase(shadow.begin());
    }
  }
  while (!queue.Empty()) {
    const auto fired = queue.Pop();
    ASSERT_FALSE(shadow.empty());
    EXPECT_EQ(std::make_pair(fired.when, fired.id), *shadow.begin());
    shadow.erase(shadow.begin());
  }
  EXPECT_TRUE(shadow.empty());
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> times;
  sim.Schedule(2.0, [&] { times.push_back(sim.Now()); });
  sim.Schedule(1.0, [&] {
    times.push_back(sim.Now());
    sim.Schedule(0.5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0}));
  EXPECT_TRUE(sim.Idle());
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(10.0, [&] { ++fired; });
  sim.Run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Idle());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  double when = -1.0;
  sim.Schedule(3.0, [&] {
    sim.Schedule(0.0, [&] { when = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(when, 3.0);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, DeterministicInterleaving) {
  // Two identical runs produce the identical firing sequence.
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.Schedule(static_cast<double>((i * 37) % 11), [&order, i] { order.push_back(i); });
    }
    sim.Run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ursa
