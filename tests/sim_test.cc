#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace ursa {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Push(3.0, [&] { fired.push_back(3); });
  queue.Push(1.0, [&] { fired.push_back(1); });
  queue.Push(2.0, [&] { fired.push_back(2); });
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFifo) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.Push(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Push(1.0, [&] { fired = true; });
  queue.Push(2.0, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));  // Second cancel is a no-op.
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelHeadUpdatesNextTime) {
  EventQueue queue;
  const EventId id = queue.Push(1.0, [] {});
  queue.Push(5.0, [] {});
  EXPECT_DOUBLE_EQ(queue.NextTime(), 1.0);
  queue.Cancel(id);
  EXPECT_DOUBLE_EQ(queue.NextTime(), 5.0);
  EXPECT_EQ(queue.PendingCount(), 1u);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> times;
  sim.Schedule(2.0, [&] { times.push_back(sim.Now()); });
  sim.Schedule(1.0, [&] {
    times.push_back(sim.Now());
    sim.Schedule(0.5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0}));
  EXPECT_TRUE(sim.Idle());
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(10.0, [&] { ++fired; });
  sim.Run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Idle());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  double when = -1.0;
  sim.Schedule(3.0, [&] {
    sim.Schedule(0.0, [&] { when = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(when, 3.0);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, DeterministicInterleaving) {
  // Two identical runs produce the identical firing sequence.
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.Schedule(static_cast<double>((i * 37) % 11), [&order, i] { order.push_back(i); });
    }
    sim.Run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ursa
