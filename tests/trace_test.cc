// Trace-schema validation (DESIGN.md section 8): the exported Chrome trace
// must be parseable, every dispatch span must close exactly once, timestamps
// must be monotonic, and trace-derived busy time must agree with the
// StepTracker integrals the metrics pipeline reports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "src/driver/experiment.h"
#include "src/obs/trace.h"
#include "src/obs/trace_reader.h"
#include "src/scheduler/ursa_scheduler.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

Workload SmallTpch(int jobs) {
  TpchWorkloadConfig wc;
  wc.num_jobs = jobs;
  wc.submit_interval = 1.0;
  wc.seed = 31;
  return MakeTpchWorkload(wc);
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    config_.num_workers = 4;
    config_.worker.cores = 8;
    config_.worker.cpu_byte_rate = 100e6;
    cluster_ = std::make_unique<Cluster>(&sim_, config_);
  }

  // Runs a small TPC-H mix with tracing and returns the simulated end time.
  double RunTraced(Tracer* tracer, int jobs = 4) {
    cluster_->set_tracer(tracer);
    UrsaSchedulerConfig sc;
    scheduler_ = std::make_unique<UrsaScheduler>(&sim_, cluster_.get(), sc);
    scheduler_->set_tracer(tracer);
    const Workload workload = SmallTpch(jobs);
    for (size_t i = 0; i < workload.jobs.size(); ++i) {
      sim_.ScheduleAt(workload.jobs[i].submit_time, [this, &workload, i] {
        scheduler_->SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
      });
    }
    sim_.Run();
    EXPECT_TRUE(scheduler_->AllJobsFinished());
    return sim_.Now();
  }

  Simulator sim_;
  ClusterConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<UrsaScheduler> scheduler_;
};

TEST_F(TraceTest, ChromeTraceParsesPairsAndIsMonotonic) {
  Tracer tracer;
  RunTraced(&tracer);
  ASSERT_GT(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);

  std::ostringstream oss;
  tracer.WriteChromeTrace(oss);
  ChromeTrace trace;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(oss.str(), &trace, &error)) << error;
  ASSERT_GT(trace.events.size(), 0u);

  // Every dispatch ("b") closes exactly once ("e"), and vice versa.
  std::set<uint64_t> open;
  std::map<std::string, int64_t> ends_by_status;
  double last_ts = -1.0;
  for (const ChromeTraceEvent& e : trace.events) {
    if (e.ph == "M") {
      continue;
    }
    EXPECT_GE(e.ts, last_ts) << "timestamps must be non-decreasing";
    last_ts = e.ts;
    if (e.ph == "b") {
      EXPECT_TRUE(open.insert(e.id).second) << "duplicate dispatch id " << e.id;
    } else if (e.ph == "e") {
      EXPECT_EQ(open.erase(e.id), 1u) << "end without dispatch, id " << e.id;
      ++ends_by_status[e.string_args.at("status")];
    }
  }
  EXPECT_TRUE(open.empty()) << open.size() << " dispatches never closed";
  EXPECT_GT(ends_by_status["complete"], 0);
  EXPECT_EQ(ends_by_status["lost"], 0);  // No faults in this run.

  // The scheduler ticked and placed every task it scored at least once.
  const Tracer::TickSummary& ticks = tracer.tick_summary();
  EXPECT_GT(ticks.ticks, 0);
  EXPECT_GT(ticks.placed, 0);
  EXPECT_GE(ticks.candidates, ticks.placed);
}

TEST_F(TraceTest, BusyTimeMatchesStepTrackerIntegrals) {
  Tracer tracer;
  const double end = RunTraced(&tracer);
  ASSERT_EQ(tracer.dropped(), 0u);

  // Reference: the metrics pipeline's occupancy integrals. cpu_busy_ is +1
  // per counted CPU monotask for its whole service time, so the integral is
  // the total CPU busy seconds; same for disk.
  double cpu_integral = 0.0;
  double disk_integral = 0.0;
  for (int w = 0; w < cluster_->size(); ++w) {
    cpu_integral += cluster_->worker(w).cpu_busy_tracker().Integral(0.0, end);
    disk_integral += cluster_->worker(w).disk_busy_tracker().Integral(0.0, end);
  }
  ASSERT_GT(cpu_integral, 0.0);

  const auto summaries = tracer.SummarizeMonotasks();
  const auto& cpu = summaries[static_cast<size_t>(ResourceType::kCpu)];
  const auto& disk = summaries[static_cast<size_t>(ResourceType::kDisk)];
  EXPECT_NEAR(cpu.busy_time, cpu_integral, 0.01 * cpu_integral);
  if (disk_integral > 0.0) {
    EXPECT_NEAR(disk.busy_time, disk_integral, 0.01 * disk_integral);
  }

  // The exported JSON carries the same totals (reader round-trip).
  std::ostringstream oss;
  tracer.WriteChromeTrace(oss);
  ChromeTrace trace;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(oss.str(), &trace, &error)) << error;
  double json_cpu_busy = 0.0;
  for (const ChromeTraceEvent& e : trace.events) {
    if (e.ph == "e" && e.string_args.at("resource") == std::string("cpu") &&
        e.args.at("counted") != 0.0) {
      json_cpu_busy += e.args.at("service_s");
    }
  }
  EXPECT_NEAR(json_cpu_busy, cpu_integral, 0.01 * cpu_integral);
}

TEST_F(TraceTest, SamplingIsStickyPerMonotask) {
  TracerConfig tc;
  tc.sample = 3;
  Tracer tracer(tc);
  RunTraced(&tracer);
  ASSERT_EQ(tracer.dropped(), 0u);

  // Sampled-out monotasks emit nothing; sampled ones emit their full
  // lifecycle, so dispatches still pair with finishes.
  const auto summaries = tracer.SummarizeMonotasks();
  int64_t dispatches = 0;
  int64_t finishes = 0;
  for (const auto& rs : summaries) {
    EXPECT_EQ(rs.queued, rs.dispatches);
    dispatches += rs.dispatches;
    finishes += rs.completes + rs.fails + rs.lost;
  }
  EXPECT_GT(dispatches, 0);
  EXPECT_EQ(dispatches, finishes);
}

TEST_F(TraceTest, ExperimentConfigWiresTracingAndWritesFile) {
  const std::string path = ::testing::TempDir() + "/ursa_trace_test.json";
  ExperimentConfig config = UrsaEjfConfig();
  config.cluster.num_workers = 4;
  config.cluster.worker.cores = 8;
  config.cluster.worker.cpu_byte_rate = 100e6;
  config.trace_out = path;
  config.trace_sample = 1;
  const ExperimentResult result = RunExperiment(SmallTpch(2), config, "traced");
  ASSERT_NE(result.trace, nullptr);
  EXPECT_GT(result.trace->size(), 0u);

  ChromeTrace trace;
  std::string error;
  ASSERT_TRUE(ReadChromeTraceFile(path, &trace, &error)) << error;
  EXPECT_GT(trace.events.size(), 0u);
  std::remove(path.c_str());
}

TEST(TracerRingTest, OldestEventsDropWhenCapacityExceeded) {
  TracerConfig tc;
  tc.capacity = 4;
  Tracer tracer(tc);
  for (int i = 0; i < 10; ++i) {
    tracer.WorkerEvent(static_cast<double>(i), TraceEventKind::kWorkerFail, i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].t, events[i - 1].t) << "snapshot must be oldest-first";
  }
  EXPECT_DOUBLE_EQ(events.back().t, 9.0);
}

TEST(TraceReaderTest, RejectsMalformedJson) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\": }", &value, &error));
  EXPECT_FALSE(ParseJson("[1, 2", &value, &error));
  EXPECT_FALSE(ParseJson("{} trailing", &value, &error));
  EXPECT_TRUE(ParseJson("{\"a\": [1, 2.5, true, null, \"s\\n\"]}", &value, &error)) << error;
  const JsonValue* a = value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 5u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);

  ChromeTrace trace;
  EXPECT_FALSE(ParseChromeTrace("{\"noTraceEvents\": []}", &trace, &error));
  EXPECT_TRUE(ParseChromeTrace("[{\"name\":\"x\",\"ph\":\"i\",\"ts\":1.0}]", &trace, &error));
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].name, "x");
}

}  // namespace
}  // namespace ursa
