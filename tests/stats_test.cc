#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace ursa {
namespace {

TEST(Percentile, EmptyAndSingleton) {
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(Percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 1.75);
}

TEST(Percentile, OrderInvariant) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 50.0), Percentile({1.0, 2.0, 3.0}, 50.0));
}

TEST(Summarize, BasicMoments) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(OutlierThreshold, MatchesQ3Plus15Iqr) {
  // 1..8: Q1 = 2.75, Q3 = 6.25, IQR = 3.5 -> threshold 11.5.
  std::vector<double> v;
  for (int i = 1; i <= 8; ++i) {
    v.push_back(i);
  }
  EXPECT_NEAR(OutlierThreshold(v), 11.5, 1e-9);
}

TEST(OutlierThreshold, FlagsStraggler) {
  std::vector<double> v(20, 10.0);
  v.push_back(100.0);
  EXPECT_LT(OutlierThreshold(v), 100.0);
}

TEST(MeanAbsoluteDeviation, UniformIsZero) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteDeviation({5.0, 5.0, 5.0}), 0.0);
}

TEST(MeanAbsoluteDeviation, Basic) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteDeviation({0.0, 10.0}), 5.0);
}

TEST(RunningStat, MatchesBatchComputation) {
  Rng rng(3);
  std::vector<double> values;
  RunningStat rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    values.push_back(x);
    rs.Add(x);
  }
  const Summary s = Summarize(values);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-9);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-9);
}

// Property sweep: percentiles are monotone in p and bounded by min/max.
class PercentileProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PercentileProperty, MonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<double> v;
  const int n = 1 + static_cast<int>(rng.UniformInt(200u));
  for (int i = 0; i < n; ++i) {
    v.push_back(rng.Uniform(-100.0, 100.0));
  }
  double prev = Percentile(v, 0.0);
  const Summary s = Summarize(v);
  EXPECT_DOUBLE_EQ(prev, s.min);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = Percentile(v, p);
    EXPECT_GE(cur, prev);
    EXPECT_LE(cur, s.max);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, s.max);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty, ::testing::Range<uint64_t>(1, 16));

// Property: the skew factor is bounded and mean-ish around 1.
class SkewProperty : public ::testing::TestWithParam<double> {};

TEST_P(SkewProperty, BoundedByskew) {
  Rng rng(77);
  const double skew = GetParam();
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double f = rng.SkewFactor(skew);
    EXPECT_GE(f, 1.0 / skew - 1e-9);
    EXPECT_LE(f, skew + 1e-9);
    total += f;
  }
  EXPECT_GT(total / 2000.0, 0.5);
  EXPECT_LT(total / 2000.0, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Skews, SkewProperty, ::testing::Values(1.0, 1.5, 2.0, 4.0));

}  // namespace
}  // namespace ursa
