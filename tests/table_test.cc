// Tests for console table rendering and the RNG helpers.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace ursa {
namespace {

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.Row().Cell("a").Cell(1.5, 1);
  table.Row().Cell("long-name").Cell(int64_t{42});
  const std::string out = table.ToString("title");
  EXPECT_NE(out.find("== title =="), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Right-aligned numeric column: "1.5" is padded to the width of "value".
  EXPECT_NE(out.find("  1.5"), std::string::npos);
}

TEST(Table, PrecisionControl) {
  Table table({"x"});
  table.Row().Cell(3.14159, 3);
  EXPECT_NE(table.ToString().find("3.142"), std::string::npos);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(GbpsToBytesPerSec(10.0), 1.25e9);
  EXPECT_DOUBLE_EQ(MBps(250.0), 2.5e8);
  EXPECT_DOUBLE_EQ(kGiB, 1024.0 * 1024.0 * 1024.0);
}

TEST(Rng, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  Rng c(43);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) {
      all_equal_c = false;
    }
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
    const int64_t n = rng.UniformInt(static_cast<int64_t>(-3), 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(0.5);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

}  // namespace
}  // namespace ursa
