#include "src/common/time_series.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace ursa {
namespace {

TEST(StepTracker, EmptyIntegralIsZero) {
  StepTracker t;
  EXPECT_DOUBLE_EQ(t.Integral(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(t.Average(0.0, 100.0), 0.0);
}

TEST(StepTracker, ConstantLevel) {
  StepTracker t;
  t.Set(0.0, 4.0);
  EXPECT_DOUBLE_EQ(t.Integral(0.0, 10.0), 40.0);
  EXPECT_DOUBLE_EQ(t.Average(2.0, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(t.Max(0.0, 10.0), 4.0);
}

TEST(StepTracker, StepChangeSplitsIntegral) {
  StepTracker t;
  t.Set(0.0, 2.0);
  t.Set(5.0, 6.0);
  EXPECT_DOUBLE_EQ(t.Integral(0.0, 10.0), 2.0 * 5 + 6.0 * 5);
  EXPECT_DOUBLE_EQ(t.Integral(4.0, 6.0), 2.0 + 6.0);
  EXPECT_DOUBLE_EQ(t.Max(0.0, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(t.Max(0.0, 6.0), 6.0);
}

TEST(StepTracker, ValueBeforeFirstChangeIsZero) {
  StepTracker t;
  t.Set(10.0, 5.0);
  EXPECT_DOUBLE_EQ(t.Integral(0.0, 20.0), 50.0);
}

TEST(StepTracker, AddAccumulates) {
  StepTracker t;
  t.Add(0.0, 1.0);
  t.Add(1.0, 1.0);
  t.Add(2.0, -2.0);
  EXPECT_DOUBLE_EQ(t.current(), 0.0);
  EXPECT_DOUBLE_EQ(t.Integral(0.0, 3.0), 1.0 + 2.0 + 0.0);
}

TEST(StepTracker, SameTimeOverrides) {
  StepTracker t;
  t.Set(1.0, 3.0);
  t.Set(1.0, 7.0);
  EXPECT_DOUBLE_EQ(t.Integral(1.0, 2.0), 7.0);
}

TEST(StepTracker, ResampleAveragesWithinBuckets) {
  StepTracker t;
  t.Set(0.0, 0.0);
  t.Set(0.5, 10.0);  // Half the first bucket at 10.
  t.Set(1.0, 2.0);
  const std::vector<double> r = t.Resample(0.0, 2.0, 1.0);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
}

// Property: integral is additive over adjacent windows, and resampled means
// integrate back to the exact integral.
class StepTrackerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StepTrackerProperty, IntegralAdditivityAndResampleConsistency) {
  Rng rng(GetParam());
  StepTracker t;
  double now = 0.0;
  for (int i = 0; i < 100; ++i) {
    now += rng.Uniform(0.0, 2.0);
    t.Set(now, rng.Uniform(0.0, 32.0));
  }
  const double end = now + 1.0;
  const double mid = rng.Uniform(0.0, end);
  EXPECT_NEAR(t.Integral(0.0, end), t.Integral(0.0, mid) + t.Integral(mid, end), 1e-6);

  const double step = 0.25;
  const auto samples = t.Resample(0.0, end, step);
  double resampled_integral = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double lo = static_cast<double>(i) * step;
    const double hi = std::min(lo + step, end);
    resampled_integral += samples[i] * (hi - lo);
  }
  EXPECT_NEAR(resampled_integral, t.Integral(0.0, end), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepTrackerProperty, ::testing::Range<uint64_t>(1, 12));

}  // namespace
}  // namespace ursa
