// ThreadSanitizer canary (DESIGN.md section 10).
//
// Default mode (no env var): two threads increment a counter through the
// repo's Mutex. This must be clean under TSan — it runs in the regular test
// suite and proves the canary binary itself carries no false positives.
//
// Negative mode (URSA_TSAN_NEGATIVE=1): the same increments race on a plain
// int with no synchronization. The CI TSan job runs this mode expecting a
// nonzero exit (TSAN_OPTIONS=halt_on_error=1), which proves the sanitizer is
// actually armed — a TSan job that cannot see a seeded race would pass
// vacuously forever.
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/common/mutex.h"

namespace {

constexpr int kIters = 100000;

int RunGuarded() {
  ursa::Mutex mu;
  int counter = 0;
  auto body = [&mu, &counter] {
    for (int i = 0; i < kIters; ++i) {
      ursa::MutexLock lock(mu);
      ++counter;
    }
  };
  std::thread a(body);
  std::thread b(body);
  a.join();
  b.join();
  if (counter != 2 * kIters) {
    std::fprintf(stderr, "guarded counter lost updates: %d\n", counter);
    return 1;
  }
  std::printf("guarded: %d increments, no race\n", counter);
  return 0;
}

int RunRacy() {
  int counter = 0;
  auto body = [&counter] {
    for (int i = 0; i < kIters; ++i) {
      ++counter;  // Intentional data race: TSan must flag this.
    }
  };
  std::thread a(body);
  std::thread b(body);
  a.join();
  b.join();
  std::printf("racy: counter=%d (expected TSan to abort before this line)\n", counter);
  return 0;
}

}  // namespace

int main() {
  const char* negative = std::getenv("URSA_TSAN_NEGATIVE");
  if (negative != nullptr && negative[0] == '1') {
    return RunRacy();
  }
  return RunGuarded();
}
