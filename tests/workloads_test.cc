// Calibration and structure tests for the workload generators: DAG shapes
// and single-job JCT bands must match the statistics section 5 reports.
#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/workloads/graph.h"
#include "src/workloads/mixed.h"
#include "src/workloads/ml.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/tpcds.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

double SoloJct(JobSpec spec) {
  Workload workload;
  workload.name = "solo";
  WorkloadJob job;
  job.spec = std::move(spec);
  workload.jobs.push_back(std::move(job));
  return RunExperiment(workload, UrsaEjfConfig(), "solo").records[0].jct();
}

TEST(TpchWorkload, DagDepthsInPaperRange) {
  for (int q = 1; q <= 22; ++q) {
    const JobSpec spec = MakeTpchQuery(q, 200.0 * kGiB, 1);
    const int depth = spec.graph.Depth();
    EXPECT_GE(depth, 2) << "q" << q;
    EXPECT_LE(depth, 16) << "q" << q;  // Paper: op-tree depth 2-10 + write.
  }
}

TEST(TpchWorkload, SoloJctsInPaperBand) {
  // Paper: 3-297 s, mean ~38 s. Allow a generous band around it.
  std::vector<double> jcts;
  for (int i = 0; i < 16; ++i) {
    const int q = 1 + (i * 5) % 22;
    jcts.push_back(SoloJct(MakeTpchQuery(q, 200.0 * kGiB, 100 + i)));
  }
  const Summary s = Summarize(jcts);
  EXPECT_GT(s.min, 2.0);
  EXPECT_LT(s.max, 400.0);
  EXPECT_GT(s.mean, 10.0);
  EXPECT_LT(s.mean, 120.0);
}

TEST(TpchWorkload, WorkloadCompositionFollowsConfig) {
  TpchWorkloadConfig config;
  config.num_jobs = 50;
  config.submit_interval = 5.0;
  config.seed = 3;
  const Workload workload = MakeTpchWorkload(config);
  ASSERT_EQ(workload.jobs.size(), 50u);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(workload.jobs[i].submit_time, 5.0 * static_cast<double>(i));
    EXPECT_EQ(workload.jobs[i].spec.klass, "tpch");
  }
}

TEST(TpchWorkload, DeterministicForSeed) {
  TpchWorkloadConfig config;
  config.num_jobs = 10;
  config.seed = 9;
  const Workload a = MakeTpchWorkload(config);
  const Workload b = MakeTpchWorkload(config);
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].spec.name, b.jobs[i].spec.name);
    EXPECT_DOUBLE_EQ(a.jobs[i].spec.graph.TotalExternalInputBytes(),
                     b.jobs[i].spec.graph.TotalExternalInputBytes());
  }
}

TEST(TpcdsWorkload, DeepDagsExist) {
  // Paper: depth 5-43, mean ~9. Check the generator's depth distribution.
  int deep = 0;
  double total = 0.0;
  const int n = 60;
  for (int q = 1; q <= n; ++q) {
    const JobSpec spec = MakeTpcdsQuery(q, 200.0 * kGiB, 5);
    const int depth = spec.graph.Depth();
    total += depth;
    if (depth > 20) {
      ++deep;
    }
    EXPECT_LE(depth, 90);
  }
  EXPECT_GT(deep, 0) << "no deep queries generated";
  EXPECT_GT(total / n, 7.0);
  EXPECT_LT(total / n, 30.0);
}

TEST(MlWorkload, IterationStructure) {
  MlJobParams params = LrParams();
  params.iterations = 4;
  const JobSpec spec = BuildMlJob(params, 1);
  // 2 stages per iteration (broadcast+grad, agg+update) + init; the final
  // disk write joins the last update stage (async dep, co-located).
  const ExecutionPlan plan = ExecutionPlan::Build(spec.graph, 1);
  EXPECT_EQ(plan.stages().size(), 2u * 4u + 1u);
  // Alternating wide/narrow parallelism.
  EXPECT_EQ(plan.stage(1).num_tasks, params.parallelism);
  EXPECT_EQ(plan.stage(2).num_tasks, 32);
}

TEST(GraphWorkload, CcFrontierShrinks) {
  GraphJobParams params = CcParams();
  params.iterations = 6;
  const JobSpec spec = BuildGraphJob(params, 1);
  const ExecutionPlan plan = ExecutionPlan::Build(spec.graph, 1);
  const auto work = plan.ExpectedWorkByResource();
  // Network work is bounded: decaying message volume keeps the shuffle sum
  // well below iterations x first-round volume.
  const double first_round = params.edge_bytes * params.message_fraction;
  EXPECT_LT(work[static_cast<size_t>(ResourceType::kNetwork)],
            0.8 * params.iterations * first_round);
}

TEST(SyntheticWorkload, SoloProfilesMatchSection53) {
  SyntheticJobParams t1;
  t1.type = 1;
  SyntheticJobParams t2;
  t2.type = 2;
  const double jct1 = SoloJct(BuildSyntheticJob(t1, 7));
  const double jct2 = SoloJct(BuildSyntheticJob(t2, 8));
  // Paper: ~40 s and ~22 s; Type 1 handles twice the data.
  EXPECT_NEAR(jct1, 40.0, 8.0);
  EXPECT_NEAR(jct2, 21.0, 6.0);
  EXPECT_NEAR(jct1 / jct2, 2.0, 0.4);
}

TEST(SyntheticWorkload, ExpectedJctFormulaMatchesPaperExample) {
  // Paper: j1 = 40, j2 = 48, j3 = 80, j4 = 88 ...
  const auto expected = ExpectedJctsType1Only(4, 40.0, 8.0);
  EXPECT_DOUBLE_EQ(expected[0], 40.0);
  EXPECT_DOUBLE_EQ(expected[1], 48.0);
  EXPECT_DOUBLE_EQ(expected[2], 80.0);
  EXPECT_DOUBLE_EQ(expected[3], 88.0);
}

TEST(SyntheticWorkload, IdealAlternatingModelSaneForUniformJobs) {
  // With identical jobs, the ideal model reduces to the pairing formula.
  std::vector<AlternatingJobModel> jobs(4);
  for (auto& j : jobs) {
    j.stages = 5;
    j.cpu_phase = 8.0;
    j.net_phase = 0.0;  // Pure CPU: strictly serial execution.
  }
  const auto expected = ExpectedJctsIdealAlternating(jobs, /*srjf=*/false);
  EXPECT_DOUBLE_EQ(expected[0], 40.0);
  EXPECT_DOUBLE_EQ(expected[3], 160.0);
}

TEST(SyntheticWorkload, IdealModelSrjfReordersSmallJobsFirst) {
  std::vector<AlternatingJobModel> jobs(2);
  jobs[0].stages = 5;
  jobs[0].cpu_phase = 8.0;
  jobs[0].net_phase = 0.0;
  jobs[1].stages = 5;
  jobs[1].cpu_phase = 2.0;
  jobs[1].net_phase = 0.0;
  const auto ejf = ExpectedJctsIdealAlternating(jobs, false);
  const auto srjf = ExpectedJctsIdealAlternating(jobs, true);
  EXPECT_LT(srjf[1], ejf[1]);  // The small job jumps ahead under SRJF.
}

TEST(MixedWorkload, CompositionMatchesPaper) {
  const Workload workload = MakeMixedWorkload({});
  int tpch = 0;
  int ml = 0;
  int graph = 0;
  for (const WorkloadJob& job : workload.jobs) {
    if (job.spec.klass == "tpch") {
      ++tpch;
    } else if (job.spec.klass == "ml") {
      ++ml;
    } else if (job.spec.klass == "graph") {
      ++graph;
    }
  }
  EXPECT_EQ(tpch, 32);
  EXPECT_EQ(ml, 4);
  EXPECT_EQ(graph, 2);
}

}  // namespace
}  // namespace ursa
