// Behavioural contrasts between the executor-model baselines - the very
// mechanisms section 5.1 blames for low utilization.
#include <gtest/gtest.h>

#include "src/driver/experiment.h"
#include "src/workloads/ml.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

Workload OneJob(JobSpec spec) {
  Workload workload;
  workload.name = "one";
  WorkloadJob job;
  job.spec = std::move(spec);
  workload.jobs.push_back(std::move(job));
  return workload;
}

TEST(ExecutorModes, TezHoldsAllocationAcrossStagesSparkReleases) {
  // An iterative ML job alternates wide and narrow stages. With dynamic
  // allocation (Spark-like) idle executors are released between phases;
  // with container reuse (Tez-like) allocation stays flat until job end, so
  // Tez's allocated core-time is much larger for the same work.
  MlJobParams params = LrParams();
  params.iterations = 4;
  auto run = [&](const ExperimentConfig& config) {
    return RunExperiment(OneJob(BuildMlJob(params, 9)), config, "x");
  };
  const ExperimentResult spark = run(SparkLikeConfig());
  const ExperimentResult tez = run(TezLikeConfig());
  // Allocated core-time ~ SEcpu * makespan; compare via UE: Tez wastes more.
  EXPECT_LT(tez.efficiency.ue_cpu, spark.efficiency.ue_cpu);
}

TEST(ExecutorModes, MonotaskModeComparableToTaskSlotsPerJob) {
  // The paper's point (section 5.1.2): Y+U is *not* meaningfully better than
  // Y+S - fine-grained sharing within one job does not fix container-level
  // allocation. Both modes must land in the same ballpark for a single job
  // (the workload-level comparison is Table 4 / bench_table4_mixed).
  MlJobParams params = LrParams();
  params.iterations = 4;
  const ExperimentResult yu =
      RunExperiment(OneJob(BuildMlJob(params, 9)), MonoSparkConfig(), "y+u");
  const ExperimentResult ys =
      RunExperiment(OneJob(BuildMlJob(params, 9)), SparkLikeConfig(), "y+s");
  EXPECT_LE(yu.records[0].jct(), ys.records[0].jct() * 2.0);
  EXPECT_LE(ys.records[0].jct(), yu.records[0].jct() * 2.0);
  // Neither comes close to Ursa's full-utilization execution.
  EXPECT_LT(yu.efficiency.ue_cpu, 90.0);
  EXPECT_LT(ys.efficiency.ue_cpu, 90.0);
}

TEST(ExecutorModes, UrsaBeatsExecutorModelOnContendedWorkload) {
  TpchWorkloadConfig wc;
  wc.num_jobs = 12;
  wc.submit_interval = 3.0;
  wc.seed = 55;
  const Workload workload = MakeTpchWorkload(wc);
  const ExperimentResult ursa = RunExperiment(workload, UrsaEjfConfig(), "ursa");
  const ExperimentResult spark = RunExperiment(workload, SparkLikeConfig(), "y+s");
  EXPECT_LT(ursa.makespan(), spark.makespan());
  EXPECT_LT(ursa.avg_jct(), spark.avg_jct());
  EXPECT_GT(ursa.efficiency.ue_cpu, spark.efficiency.ue_cpu + 20.0);
}

TEST(ExecutorModes, OversubscriptionImprovesExecutorModelThenSaturates) {
  TpchWorkloadConfig wc;
  wc.num_jobs = 10;
  wc.submit_interval = 2.0;
  wc.seed = 66;
  const Workload workload = MakeTpchWorkload(wc);
  double makespans[3];
  int i = 0;
  for (double ratio : {1.0, 2.0, 4.0}) {
    ExperimentConfig config = SparkLikeConfig();
    config.cm.cpu_subscription_ratio = ratio;
    config.executor.executor_memory_bytes = 4.0 * 1024 * 1024 * 1024;
    makespans[i++] = RunExperiment(workload, config, "x").makespan();
  }
  // Ratio 2 beats ratio 1 (overlap); ratio 4 gains much less on top.
  EXPECT_LT(makespans[1], makespans[0]);
  const double gain_2 = makespans[0] - makespans[1];
  const double gain_4 = makespans[1] - makespans[2];
  EXPECT_LT(gain_4, gain_2);
}

TEST(ExecutorModes, StragglerDataCollected) {
  TpchWorkloadConfig wc;
  wc.num_jobs = 4;
  wc.submit_interval = 2.0;
  wc.seed = 77;
  const Workload workload = MakeTpchWorkload(wc);
  ExperimentConfig config = SparkLikeConfig();
  config.cm.cpu_subscription_ratio = 4.0;
  const ExperimentResult result = RunExperiment(workload, config, "x");
  EXPECT_GE(result.straggler_ratio, 0.0);
  EXPECT_LT(result.straggler_ratio, 100.0);
}

}  // namespace
}  // namespace ursa
