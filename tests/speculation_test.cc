// Straggler mitigation (DESIGN.md section 9): robust detection statistics,
// the wasted-work budget, cooperative cancellation, and the deterministic
// first-finisher-wins races between a primary task and its speculative copy
// - including every interleaving with worker failures (primary's worker
// dies, copy's worker dies after winning, both die and lineage recovery
// re-runs the task exactly once).
#include <gtest/gtest.h>

#include "src/exec/job_manager.h"
#include "src/scheduler/ursa_scheduler.h"
#include "src/spec/robust_stats.h"
#include "src/spec/speculation.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

// --- Detection statistics. ---

TEST(RobustStats, MedianAndMadIgnoreOutliers) {
  RobustSample s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 100.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  // Deviations {2, 1, 0, 1, 97} -> sorted {0, 1, 1, 2, 97}, median 1.
  EXPECT_DOUBLE_EQ(s.Mad(), 1.0);
  // The outlier barely moves either statistic: with 1000 instead of 100 the
  // answers are identical.
  RobustSample t;
  for (double v : {1.0, 2.0, 3.0, 4.0, 1000.0}) {
    t.Add(v);
  }
  EXPECT_DOUBLE_EQ(t.Median(), s.Median());
  EXPECT_DOUBLE_EQ(t.Mad(), s.Mad());
}

TEST(RobustStats, MadIsZeroBelowTwoSamples) {
  RobustSample s;
  EXPECT_DOUBLE_EQ(s.Median(), 0.0);
  EXPECT_DOUBLE_EQ(s.Mad(), 0.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 5.0);
  EXPECT_DOUBLE_EQ(s.Mad(), 0.0);
}

TEST(Detection, RequiresMinimumStageSamples) {
  SpeculationConfig config;
  config.min_stage_samples = 3;
  config.min_runtime = 0.0;
  RobustSample durations;
  durations.Add(1.0);
  durations.Add(1.0);
  // Two completions: never a straggler, however slow.
  EXPECT_FALSE(IsStraggler(config, durations, 1000.0));
  durations.Add(1.0);
  EXPECT_TRUE(IsStraggler(config, durations, 1000.0));
}

TEST(Detection, ThresholdIsMedianPlusMadScaled) {
  SpeculationConfig config;
  config.min_stage_samples = 3;
  config.min_runtime = 0.0;
  config.slowdown_threshold = 1.75;
  config.mad_multiplier = 3.0;
  RobustSample durations;
  for (double v : {2.0, 2.0, 2.0, 4.0}) {
    durations.Add(v);
  }
  // Median 2, MAD 0 -> limit 3.5.
  EXPECT_FALSE(IsStraggler(config, durations, 3.5));
  EXPECT_TRUE(IsStraggler(config, durations, 3.51));
}

TEST(Detection, MinRuntimeFloorsTheThreshold) {
  SpeculationConfig config;
  config.min_stage_samples = 1;
  config.min_runtime = 5.0;
  RobustSample durations;
  durations.Add(0.01);  // Tiny tasks: threshold alone would be ~0.02 s.
  EXPECT_FALSE(IsStraggler(config, durations, 4.9));
  EXPECT_TRUE(IsStraggler(config, durations, 5.1));
}

TEST(Detection, EttfRanksNoProgressHighest) {
  // LATE ranking: same elapsed time, less progress -> longer to finish.
  EXPECT_DOUBLE_EQ(EstimatedTimeToFinish(10.0, 0.5), 10.0);
  EXPECT_GT(EstimatedTimeToFinish(10.0, 0.1), EstimatedTimeToFinish(10.0, 0.5));
  EXPECT_GT(EstimatedTimeToFinish(10.0, 0.0), EstimatedTimeToFinish(10.0, 0.01));
}

// --- Wasted-work budget. ---

TEST(Budget, CapsLiveCopiesAtFractionOfRunningTasks) {
  SpeculationConfig config;
  config.enabled = true;
  config.budget_fraction = 0.1;
  FaultStats stats;
  SpeculationManager manager(config, &stats);
  // 25 running primaries -> cap floor(2.5) = 2 live copies.
  EXPECT_TRUE(manager.CanLaunch(25));
  manager.OnLaunched();
  EXPECT_TRUE(manager.CanLaunch(25));
  manager.OnLaunched();
  EXPECT_FALSE(manager.CanLaunch(25));
  // A decided race frees budget.
  manager.OnWon();
  EXPECT_TRUE(manager.CanLaunch(25));
  manager.OnLost();
  EXPECT_EQ(manager.active(), 0);
  EXPECT_EQ(stats.Snapshot().speculations_launched, 2);
  EXPECT_EQ(stats.Snapshot().speculations_won, 1);
  EXPECT_EQ(stats.Snapshot().speculations_lost, 1);
}

TEST(Budget, AlwaysAdmitsOneCopyWhenAnythingRuns) {
  SpeculationConfig config;
  config.enabled = true;
  config.budget_fraction = 0.1;
  FaultStats stats;
  SpeculationManager manager(config, &stats);
  // floor(0.1 * 3) = 0, but the budget never starves mitigation entirely.
  EXPECT_TRUE(manager.CanLaunch(3));
  manager.OnLaunched();
  EXPECT_FALSE(manager.CanLaunch(3));
  EXPECT_FALSE(manager.CanLaunch(0));
  SpeculationConfig off = config;
  off.enabled = false;
  SpeculationManager disabled(off, &stats);
  EXPECT_FALSE(disabled.CanLaunch(100));
}

// --- Cooperative cancellation at the queue / worker level. ---

TEST(Cancellation, QueueDropsCancelledEntriesWithoutCallbacks) {
  MonotaskQueue queue;
  auto token = std::make_shared<CancelToken>();
  bool cancelled_cb = false;
  bool kept_cb = false;
  RunnableMonotask doomed;
  doomed.job = 1;
  doomed.input_bytes = 30.0;
  doomed.cancel = token;
  doomed.on_complete = [&] { cancelled_cb = true; };
  RunnableMonotask kept;
  kept.job = 1;
  kept.input_bytes = 12.0;
  kept.on_complete = [&] { kept_cb = true; };
  queue.Push(std::move(doomed));
  queue.Push(std::move(kept));
  token->cancelled = true;
  EXPECT_EQ(queue.RemoveCancelled(), 1u);
  EXPECT_DOUBLE_EQ(queue.queued_bytes(), 12.0);
  ASSERT_EQ(queue.Size(), 1u);
  RunnableMonotask survivor = queue.Pop();
  survivor.on_complete();
  EXPECT_TRUE(kept_cb);
  EXPECT_FALSE(cancelled_cb);  // The cancelled callback was dropped, not fired.
}

class CancellationWorkerTest : public ::testing::Test {
 protected:
  CancellationWorkerTest() {
    ClusterConfig config;
    config.num_workers = 1;
    config.worker.cores = 2;
    config.worker.cpu_byte_rate = 100.0;
    cluster_ = std::make_unique<Cluster>(&sim_, config);
  }

  RunnableMonotask Cpu(double bytes, std::shared_ptr<CancelToken> token,
                       std::function<void()> done = nullptr) {
    RunnableMonotask mt;
    mt.job = 1;
    mt.type = ResourceType::kCpu;
    mt.work = bytes;
    mt.input_bytes = bytes;
    mt.cancel = std::move(token);
    mt.on_complete = std::move(done);
    return mt;
  }

  Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(CancellationWorkerTest, SweepDisarmsInFlightAndReportsElapsedAsWaste) {
  Worker& worker = cluster_->worker(0);
  double wasted_bytes = 0.0;
  double wasted_seconds = 0.0;
  worker.set_waste_sink([&](ResourceType r, double bytes, double seconds) {
    EXPECT_EQ(r, ResourceType::kCpu);
    wasted_bytes += bytes;
    wasted_seconds += seconds;
  });
  auto token = std::make_shared<CancelToken>();
  bool completed = false;
  worker.Submit(Cpu(100.0, token, [&] { completed = true; }));  // 1 s.
  double follower_done = -1.0;
  sim_.Schedule(0.5, [&] {
    token->cancelled = true;
    worker.SweepCancelled();
    // The freed core picks up new work immediately.
    worker.Submit(Cpu(50.0, nullptr, [&] { follower_done = sim_.Now(); }));
  });
  sim_.Run();
  EXPECT_FALSE(completed);
  EXPECT_NEAR(wasted_bytes, 50.0, 1e-9);    // Half the input was processed.
  EXPECT_NEAR(wasted_seconds, 0.5, 1e-9);   // For half a second.
  EXPECT_NEAR(follower_done, 1.0, 1e-9);    // 0.5 s start + 0.5 s of work.
  EXPECT_EQ(worker.busy_cores(), 0);
}

TEST_F(CancellationWorkerTest, QueuedCancelledMonotasksAreNeverCharged) {
  Worker& worker = cluster_->worker(0);
  double wasted_seconds = 0.0;
  worker.set_waste_sink(
      [&](ResourceType, double, double seconds) { wasted_seconds += seconds; });
  // Fill both cores, then queue a cancellable monotask behind them.
  for (int i = 0; i < 2; ++i) {
    worker.Submit(Cpu(100.0, nullptr));
  }
  auto token = std::make_shared<CancelToken>();
  bool completed = false;
  worker.Submit(Cpu(100.0, token, [&] { completed = true; }));
  sim_.Schedule(0.5, [&] {
    token->cancelled = true;
    worker.SweepCancelled();
  });
  sim_.Run();
  EXPECT_FALSE(completed);
  EXPECT_DOUBLE_EQ(wasted_seconds, 0.0);  // Dequeued before any resource use.
  EXPECT_NEAR(sim_.Now(), 1.0, 1e-9);     // Only the two blockers ran.
}

// --- First-finisher-wins races, driven deterministically through the JM. ---

class SpecListener : public JobManagerListener {
 public:
  void OnTaskCompleted([[maybe_unused]] JobId job, TaskId task) override {
    completed.push_back(task);
  }
  void OnMonotaskCompleted([[maybe_unused]] JobId job, [[maybe_unused]] ResourceType type,
                           [[maybe_unused]] double bytes) override {
    ++monotasks;
  }
  void OnJobFinished([[maybe_unused]] JobId job) override { finished = true; }

  std::vector<TaskId> completed;
  int monotasks = 0;
  bool finished = false;
};

class SpeculationRaceTest : public ::testing::Test {
 protected:
  SpeculationRaceTest() {
    ClusterConfig config;
    config.num_workers = 4;
    config.worker.cores = 8;
    config.worker.cpu_byte_rate = 1000.0;
    config.worker.memory_bytes = 1e12;
    cluster_ = std::make_unique<Cluster>(&sim_, config);
    spec_config_.enabled = true;
    manager_ = std::make_unique<SpeculationManager>(spec_config_, &stats_);
    // Mirror the scheduler's wiring: every worker reports discarded
    // duplicate work into the shared speculation accounting.
    for (int w = 0; w < cluster_->size(); ++w) {
      cluster_->worker(w).set_waste_sink(
          [this](ResourceType r, double bytes, double seconds) {
            manager_->RecordWaste(sim_.Now(), r, bytes, seconds);
          });
    }
  }

  // Same shape as the job manager tests: 4 scan tasks (1 CPU monotask each,
  // 1 s at full speed), then a 2-way shuffle + reduce (8 monotasks total).
  std::unique_ptr<Job> MakeJob() {
    JobSpec spec;
    spec.name = "race";
    spec.declared_memory_bytes = 1e9;
    OpGraph& graph = spec.graph;
    const DataId input =
        graph.CreateExternalData(std::vector<double>(4, 1000.0), "in");
    const DataId msg = graph.CreateData(4, "msg");
    const DataId shuffled = graph.CreateData(2, "shuffled");
    const DataId result = graph.CreateData(2, "result");
    OpHandle ser = graph.CreateOp(ResourceType::kCpu, "ser").Read(input).Create(msg);
    OpHandle shuffle =
        graph.CreateOp(ResourceType::kNetwork, "shuffle").Read(msg).Create(shuffled);
    OpHandle deser =
        graph.CreateOp(ResourceType::kCpu, "deser").Read(shuffled).Create(result);
    ser.To(shuffle, DepKind::kSync);
    shuffle.To(deser, DepKind::kAsync);
    return Job::Create(0, std::move(spec));
  }

  // Places the four scans with the target task on worker 0 and everything
  // else away from workers 0 and 3, leaving 3 free for the copy.
  TaskId PlaceScans(JobManager& jm) {
    const std::vector<TaskId> ready = jm.ready_tasks();
    EXPECT_EQ(ready.size(), 4u);
    const TaskId target = ready[0];
    EXPECT_TRUE(jm.PlaceTask(target, 0));
    EXPECT_TRUE(jm.PlaceTask(ready[1], 1));
    EXPECT_TRUE(jm.PlaceTask(ready[2], 2));
    EXPECT_TRUE(jm.PlaceTask(ready[3], 1));
    return target;
  }

  // Greedy completion driver restricted to `workers` (to keep the tail of a
  // test off slowed or failed machines).
  void Drive(JobManager& jm, const std::vector<WorkerId>& workers) {
    size_t next = 0;
    while (!jm.finished()) {
      const std::vector<TaskId> ready = jm.ready_tasks();
      if (ready.empty()) {
        ASSERT_TRUE(sim_.Step()) << "deadlock: no ready tasks and no events";
        continue;
      }
      for (TaskId t : ready) {
        ASSERT_TRUE(jm.PlaceTask(t, workers[next++ % workers.size()]));
      }
    }
  }

  void ExpectMemoryDrained() {
    for (int w = 0; w < cluster_->size(); ++w) {
      if (!cluster_->worker(w).failed()) {
        EXPECT_NEAR(cluster_->worker(w).free_memory(),
                    cluster_->worker(w).memory_capacity(), 1.0)
            << "worker " << w;
      }
    }
  }

  Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
  SpeculationConfig spec_config_;
  FaultStats stats_;
  std::unique_ptr<SpeculationManager> manager_;
};

TEST_F(SpeculationRaceTest, OriginalWinsWhileCopyIsInFlight) {
  auto job = MakeJob();
  SpecListener listener;
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener);
  jm.ConfigureSpeculation(manager_.get());
  jm.Start();
  const TaskId target = PlaceScans(jm);
  sim_.ScheduleAt(0.1, [&] {
    cluster_->worker(3).set_speed_factor(0.05);  // The copy will lag badly.
    ASSERT_TRUE(jm.PlaceSpeculative(target, 3));
    EXPECT_TRUE(jm.has_speculative_copy(target));
    EXPECT_EQ(jm.speculative_worker(target), 3);
  });
  sim_.ScheduleAt(1.5, [&] {
    // The primary finished at t=1 and cancelled the in-flight copy.
    EXPECT_EQ(jm.task_state(target), TaskState::kCompleted);
    EXPECT_EQ(jm.task_worker(target), 0);
    EXPECT_FALSE(jm.has_speculative_copy(target));
    cluster_->worker(3).set_speed_factor(1.0);
  });
  Drive(jm, {0, 1, 2});
  sim_.Run();
  EXPECT_TRUE(listener.finished);
  EXPECT_EQ(stats_.Snapshot().speculations_launched, 1);
  EXPECT_EQ(stats_.Snapshot().speculations_lost, 1);
  EXPECT_EQ(stats_.Snapshot().speculations_won, 0);
  EXPECT_EQ(manager_->active(), 0);
  // The losing copy burned real (wall-clock) time on worker 3's core.
  EXPECT_GT(stats_.Snapshot().total_wasted_seconds(), 0.0);
  // Every monotask completion was delivered exactly once despite the race.
  EXPECT_EQ(listener.monotasks, 8);
  ExpectMemoryDrained();
}

TEST_F(SpeculationRaceTest, OriginalWinsWhileCopyIsStillQueued) {
  auto job = MakeJob();
  SpecListener listener;
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener);
  jm.ConfigureSpeculation(manager_.get());
  jm.Start();
  const TaskId target = PlaceScans(jm);
  // Saturate worker 3's cores so the copy's monotask can only queue.
  for (int i = 0; i < 8; ++i) {
    RunnableMonotask blocker;
    blocker.job = 99;
    blocker.type = ResourceType::kCpu;
    blocker.work = 100000.0;  // 100 s.
    blocker.input_bytes = 100000.0;
    cluster_->worker(3).Submit(std::move(blocker));
  }
  sim_.ScheduleAt(0.1, [&] { ASSERT_TRUE(jm.PlaceSpeculative(target, 3)); });
  Drive(jm, {0, 1, 2});
  EXPECT_TRUE(listener.finished);
  EXPECT_EQ(stats_.Snapshot().speculations_lost, 1);
  // The copy never left the queue: its cancellation charged nothing.
  EXPECT_DOUBLE_EQ(stats_.Snapshot().total_wasted_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(stats_.Snapshot().total_wasted_bytes(), 0.0);
  EXPECT_EQ(listener.monotasks, 8);
}

TEST_F(SpeculationRaceTest, CopyWinsWhenPrimaryStraggles) {
  auto job = MakeJob();
  SpecListener listener;
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener);
  jm.ConfigureSpeculation(manager_.get());
  jm.Start();
  const TaskId target = PlaceScans(jm);
  sim_.ScheduleAt(0.1, [&] {
    // The primary's worker becomes a straggler mid-monotask; the copy on
    // worker 3 runs at full speed and must finish first (t ~= 1.1 vs ~18).
    cluster_->worker(0).set_speed_factor(0.05);
    ASSERT_TRUE(jm.PlaceSpeculative(target, 3));
  });
  sim_.ScheduleAt(2.0, [&] {
    EXPECT_EQ(jm.task_state(target), TaskState::kCompleted);
    EXPECT_EQ(jm.task_worker(target), 3);  // The task now lives on the copy.
    EXPECT_FALSE(jm.has_speculative_copy(target));
    cluster_->worker(0).set_speed_factor(1.0);
  });
  Drive(jm, {1, 2, 3});
  sim_.Run();
  EXPECT_TRUE(listener.finished);
  EXPECT_EQ(stats_.Snapshot().speculations_launched, 1);
  EXPECT_EQ(stats_.Snapshot().speculations_won, 1);
  EXPECT_EQ(stats_.Snapshot().speculations_lost, 0);
  EXPECT_EQ(manager_->active(), 0);
  // The cancelled primary's partial work is the wasted side this time.
  EXPECT_GT(stats_.Snapshot().total_wasted_seconds(), 0.0);
  EXPECT_EQ(listener.monotasks, 8);
  ExpectMemoryDrained();
}

TEST_F(SpeculationRaceTest, PlaceSpeculativeRejectsInvalidTargets) {
  auto job = MakeJob();
  SpecListener listener;
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener);
  jm.ConfigureSpeculation(manager_.get());
  jm.Start();
  const std::vector<TaskId> ready = jm.ready_tasks();
  const TaskId target = ready[0];
  const TaskId unplaced = ready[1];
  ASSERT_TRUE(jm.PlaceTask(target, 0));
  EXPECT_FALSE(jm.PlaceSpeculative(unplaced, 1));  // Not placed yet.
  EXPECT_FALSE(jm.PlaceSpeculative(target, 0));    // Same worker as primary.
  cluster_->worker(2).Fail();
  EXPECT_FALSE(jm.PlaceSpeculative(target, 2));  // Failed worker.
  ASSERT_TRUE(jm.PlaceSpeculative(target, 1));
  EXPECT_FALSE(jm.PlaceSpeculative(target, 3));  // Already has a copy.
  EXPECT_EQ(stats_.Snapshot().speculations_launched, 1);
}

TEST_F(SpeculationRaceTest, AbortCancelsTheLiveCopy) {
  auto job = MakeJob();
  SpecListener listener;
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener);
  jm.ConfigureSpeculation(manager_.get());
  jm.Start();
  const TaskId target = jm.ready_tasks()[0];
  ASSERT_TRUE(jm.PlaceTask(target, 0));
  sim_.ScheduleAt(0.1, [&] { ASSERT_TRUE(jm.PlaceSpeculative(target, 3)); });
  sim_.ScheduleAt(0.5, [&] { jm.Abort(); });
  sim_.Run();
  EXPECT_TRUE(jm.aborted());
  EXPECT_EQ(stats_.Snapshot().speculations_cancelled, 1);
  EXPECT_EQ(manager_->active(), 0);
  ExpectMemoryDrained();
}

TEST_F(SpeculationRaceTest, PrimaryWorkerFailureHandsTaskToCopy) {
  auto job = MakeJob();
  SpecListener listener;
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener);
  jm.ConfigureSpeculation(manager_.get());
  jm.Start();
  const TaskId target = PlaceScans(jm);
  sim_.ScheduleAt(0.3, [&] { ASSERT_TRUE(jm.PlaceSpeculative(target, 3)); });
  sim_.ScheduleAt(0.5, [&] {
    // The primary's worker dies mid-monotask. The copy keeps running and
    // the task is handed over instead of being reset.
    cluster_->worker(0).Fail();
    jm.HandleWorkerFailureForSpeculation(0);
    EXPECT_TRUE(jm.primary_lost(target));
    EXPECT_TRUE(jm.has_speculative_copy(target));
  });
  Drive(jm, {1, 2, 3});
  sim_.Run();
  EXPECT_TRUE(listener.finished);
  EXPECT_EQ(stats_.Snapshot().speculations_won, 1);
  EXPECT_EQ(jm.task_worker(target), 3);
  EXPECT_FALSE(jm.primary_lost(target));
  EXPECT_EQ(manager_->active(), 0);
  ExpectMemoryDrained();
}

TEST_F(SpeculationRaceTest, BothWorkersFailingRerunsTheTaskExactlyOnce) {
  auto job = MakeJob();
  SpecListener listener;
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener);
  jm.ConfigureSpeculation(manager_.get());
  jm.Start();
  const TaskId target = PlaceScans(jm);
  sim_.ScheduleAt(0.3, [&] { ASSERT_TRUE(jm.PlaceSpeculative(target, 3)); });
  sim_.ScheduleAt(0.5, [&] {
    // First the primary's worker dies (the copy takes over)...
    cluster_->worker(0).Fail();
    jm.HandleWorkerFailureForSpeculation(0);
    const JobManager::RecoveryResult first = jm.RecoverFromWorkerFailure(0);
    EXPECT_EQ(first.tasks_reset, 0);  // The copy shields the task.
    EXPECT_TRUE(jm.primary_lost(target));
  });
  sim_.ScheduleAt(0.7, [&] {
    // ...then the copy's worker dies too. Lineage recovery must re-seed the
    // task - exactly once, from scratch.
    cluster_->worker(3).Fail();
    jm.HandleWorkerFailureForSpeculation(3);
    EXPECT_FALSE(jm.has_speculative_copy(target));
    const JobManager::RecoveryResult second = jm.RecoverFromWorkerFailure(3);
    EXPECT_EQ(second.tasks_reset, 1);
    EXPECT_EQ(jm.task_state(target), TaskState::kReady);
  });
  Drive(jm, {1, 2});
  sim_.Run();
  EXPECT_TRUE(listener.finished);
  EXPECT_EQ(stats_.Snapshot().speculations_cancelled, 1);
  EXPECT_EQ(stats_.Snapshot().speculations_won, 0);
  EXPECT_EQ(manager_->active(), 0);
  // The dropped primary never delivered its completion; the re-run did,
  // exactly once - so the total is still the plan's 8 monotasks.
  EXPECT_EQ(listener.monotasks, 8);
  ExpectMemoryDrained();
}

TEST_F(SpeculationRaceTest, CopyWinsThenItsWorkerFails) {
  auto job = MakeJob();
  SpecListener listener;
  JobManager jm(&sim_, cluster_.get(), job.get(), &listener);
  jm.ConfigureSpeculation(manager_.get());
  jm.Start();
  const TaskId target = PlaceScans(jm);
  sim_.ScheduleAt(0.1, [&] {
    cluster_->worker(0).set_speed_factor(0.05);
    ASSERT_TRUE(jm.PlaceSpeculative(target, 3));
  });
  // Let the copy win (t ~= 1.1) but do not place the next stage yet; then
  // kill the copy's worker. Its committed outputs die with it, so lineage
  // recovery must re-run the task even though it "completed".
  sim_.Run(2.0);
  ASSERT_EQ(stats_.Snapshot().speculations_won, 1);
  ASSERT_EQ(jm.task_worker(target), 3);
  cluster_->worker(0).set_speed_factor(1.0);
  cluster_->worker(3).Fail();
  jm.HandleWorkerFailureForSpeculation(3);  // No live copies: a no-op.
  const JobManager::RecoveryResult recovery = jm.RecoverFromWorkerFailure(3);
  EXPECT_GE(recovery.tasks_reset, 1);
  EXPECT_EQ(jm.task_state(target), TaskState::kReady);
  Drive(jm, {0, 1, 2});
  sim_.Run();
  EXPECT_TRUE(listener.finished);
  ExpectMemoryDrained();
}

// --- End-to-end: the scheduler's detection -> placement loop. ---

class SpeculationSchedulerTest : public ::testing::Test {
 protected:
  SpeculationSchedulerTest() {
    config_.num_workers = 4;
    config_.worker.cores = 8;
    config_.worker.cpu_byte_rate = 100e6;
    cluster_ = std::make_unique<Cluster>(&sim_, config_);
  }

  void SubmitTpch(UrsaScheduler& scheduler, int num_jobs, uint64_t seed) {
    TpchWorkloadConfig wc;
    wc.num_jobs = num_jobs;
    wc.submit_interval = 2.0;
    wc.seed = seed;
    workload_ = MakeTpchWorkload(wc);
    for (size_t i = 0; i < workload_.jobs.size(); ++i) {
      sim_.ScheduleAt(workload_.jobs[i].submit_time, [this, &scheduler, i] {
        scheduler.SubmitJob(
            Job::Create(static_cast<JobId>(i), workload_.jobs[i].spec));
      });
    }
  }

  Simulator sim_;
  ClusterConfig config_;
  std::unique_ptr<Cluster> cluster_;
  Workload workload_;
};

TEST_F(SpeculationSchedulerTest, SpeculatesAgainstDegradedWorkerAndFinishes) {
  UrsaSchedulerConfig sc;
  sc.spec.enabled = true;
  sc.spec.min_runtime = 0.5;
  sc.spec.min_stage_samples = 2;
  sc.spec.slowdown_threshold = 1.3;
  sc.spec.mad_multiplier = 2.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  SubmitTpch(scheduler, 6, 7);
  // A severe straggler appears early and never recovers.
  sim_.Schedule(1.0, [&] { cluster_->worker(0).set_speed_factor(0.05); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  const FaultCounters f = scheduler.fault_stats();
  EXPECT_GT(f.speculations_launched, 0);
  // Every launched copy was resolved: won, lost or cancelled.
  EXPECT_EQ(f.speculations_launched,
            f.speculations_won + f.speculations_lost + f.speculations_cancelled);
  ASSERT_NE(scheduler.speculation_manager(), nullptr);
  EXPECT_EQ(scheduler.speculation_manager()->active(), 0);
  if (f.speculations_won + f.speculations_lost > 0) {
    EXPECT_GT(f.total_wasted_seconds(), 0.0);
  }
  for (int w = 0; w < cluster_->size(); ++w) {
    EXPECT_NEAR(cluster_->worker(w).free_memory(),
                cluster_->worker(w).memory_capacity(), 1.0)
        << "worker " << w;
  }
}

TEST_F(SpeculationSchedulerTest, DisabledByDefaultLaunchesNothing) {
  UrsaSchedulerConfig sc;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  SubmitTpch(scheduler, 3, 11);
  sim_.Schedule(1.0, [&] { cluster_->worker(0).set_speed_factor(0.05); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  EXPECT_EQ(scheduler.speculation_manager(), nullptr);
  EXPECT_EQ(scheduler.fault_stats().speculations_launched, 0);
}

TEST_F(SpeculationSchedulerTest, SpeculationSurvivesWorkerFailureMidRace) {
  UrsaSchedulerConfig sc;
  sc.spec.enabled = true;
  sc.spec.min_runtime = 0.5;
  sc.spec.min_stage_samples = 2;
  sc.spec.slowdown_threshold = 1.3;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  SubmitTpch(scheduler, 4, 13);
  sim_.Schedule(1.0, [&] { cluster_->worker(0).set_speed_factor(0.05); });
  // Kill a healthy worker while copies may be racing on it.
  sim_.Schedule(8.0, [&] { scheduler.FailWorker(2); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  const FaultCounters f = scheduler.fault_stats();
  EXPECT_EQ(f.speculations_launched,
            f.speculations_won + f.speculations_lost + f.speculations_cancelled);
  EXPECT_EQ(scheduler.speculation_manager()->active(), 0);
  for (int w = 0; w < cluster_->size(); ++w) {
    if (!cluster_->worker(w).failed()) {
      EXPECT_NEAR(cluster_->worker(w).free_memory(),
                  cluster_->worker(w).memory_capacity(), 1.0)
          << "worker " << w;
    }
  }
}

}  // namespace
}  // namespace ursa
