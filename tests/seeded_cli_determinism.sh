#!/usr/bin/env bash
# Seeded byte-identical determinism gate (DESIGN.md section 10): two runs of
# ursa_sim with the same flags must produce byte-for-byte identical reports.
# Everything ursa_sim prints in this mode is derived from simulated time and
# the seeded Rng; any host wall-clock or iteration-order leak shows up here
# as a diff. Registered in ctest as `seeded_cli_determinism`.
#
# Usage: seeded_cli_determinism.sh <path-to-ursa_sim>
set -u

if [ "$#" -ne 1 ] || [ ! -x "$1" ]; then
  echo "usage: $0 <path-to-ursa_sim>" >&2
  exit 2
fi
URSA_SIM="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

FLAGS="--workload=tpch --scheduler=ursa-srjf --jobs=8 --interval=4 --seed=97 \
  --workers=8 --series=5 --fault-crashes=1 --fault-recovers=1 \
  --fault-transients=3 --fault-seed=7 --spec"

status=0
# shellcheck disable=SC2086
"${URSA_SIM}" ${FLAGS} >"${WORKDIR}/run1.txt" 2>&1 || status=$?
if [ "${status}" -ne 0 ]; then
  echo "FAIL: first ursa_sim run exited ${status}" >&2
  cat "${WORKDIR}/run1.txt" >&2
  exit 1
fi
# shellcheck disable=SC2086
"${URSA_SIM}" ${FLAGS} >"${WORKDIR}/run2.txt" 2>&1 || status=$?
if [ "${status}" -ne 0 ]; then
  echo "FAIL: second ursa_sim run exited ${status}" >&2
  cat "${WORKDIR}/run2.txt" >&2
  exit 1
fi

if ! cmp -s "${WORKDIR}/run1.txt" "${WORKDIR}/run2.txt"; then
  echo "FAIL: same-seed ursa_sim runs are not byte-identical" >&2
  diff -u "${WORKDIR}/run1.txt" "${WORKDIR}/run2.txt" >&2 || true
  exit 1
fi

echo "PASS: $(wc -c <"${WORKDIR}/run1.txt") bytes, byte-identical across runs"
exit 0
