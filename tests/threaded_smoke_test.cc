// First real-thread exercise of the internally synchronized components
// (DESIGN.md section 10). The simulator itself is single-threaded today;
// these tests hammer each synchronized class from many std::threads so the
// locking added for concurrency readiness is validated by more than the
// annotations — run under TSan (cmake -DURSA_TSAN=ON) this is the data-race
// gate for OccupancyLedger, MonotaskQueue, EventQueue, FaultStats, and
// SpeculationManager.
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/monotask_queue.h"
#include "src/exec/occupancy.h"
#include "src/fault/fault_stats.h"
#include "src/sim/event_queue.h"
#include "src/spec/speculation.h"

namespace ursa {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 2000;

void RunThreads(const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(body, t);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
}

TEST(ThreadedSmoke, OccupancyLedgerSlotsNeverExceedLimit) {
  OccupancyLedger ledger;
  constexpr int kLimit = 3;
  std::atomic<bool> over_limit{false};
  std::atomic<int64_t> acquired{0};
  RunThreads([&](int) {
    for (int i = 0; i < kIters; ++i) {
      if (ledger.TryAcquireSlot(ResourceType::kCpu, kLimit)) {
        acquired.fetch_add(1, std::memory_order_relaxed);
        if (ledger.slots_in_use(ResourceType::kCpu) > kLimit) {
          over_limit.store(true, std::memory_order_relaxed);
        }
        ledger.IncrementCompleted(ResourceType::kCpu);
        ledger.ReleaseSlot(ResourceType::kCpu);
      }
    }
  });
  EXPECT_FALSE(over_limit.load());
  EXPECT_EQ(ledger.slots_in_use(ResourceType::kCpu), 0);
  EXPECT_EQ(ledger.completed(ResourceType::kCpu), acquired.load());
}

TEST(ThreadedSmoke, OccupancyLedgerBytesAndMemoryBalance) {
  OccupancyLedger ledger;
  constexpr double kCapacity = 1e18;  // Never rejects; exercises the counters.
  RunThreads([&](int) {
    for (int i = 0; i < kIters; ++i) {
      ledger.AddRunningBytes(ResourceType::kNetwork, 64.0);
      double allocated = 0.0;
      ASSERT_TRUE(ledger.TryAllocateMemory(128.0, kCapacity, &allocated));
      ledger.AddActualMemoryUse(32.0);
      ledger.AddOccupancy(OccupancyKind::kCpuBusy, 1.0);
      ledger.AddOccupancy(OccupancyKind::kCpuBusy, -1.0);
      ledger.AddActualMemoryUse(-32.0);
      ledger.ReleaseMemory(128.0);
      ledger.AddRunningBytes(ResourceType::kNetwork, -64.0);
    }
  });
  EXPECT_DOUBLE_EQ(ledger.running_bytes(ResourceType::kNetwork), 0.0);
  EXPECT_DOUBLE_EQ(ledger.mem_allocated(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.occupancy(OccupancyKind::kCpuBusy), 0.0);
}

TEST(ThreadedSmoke, OccupancyLedgerMemoryAdmissionIsAtomic) {
  OccupancyLedger ledger;
  // Capacity admits exactly 4 concurrent 1-byte reservations; a racy
  // check-then-act would overshoot.
  constexpr double kCapacity = 3.5;  // +1.0 slack in the ledger => 4 fit.
  std::atomic<int64_t> admitted{0};
  std::atomic<bool> overshoot{false};
  RunThreads([&](int) {
    for (int i = 0; i < kIters; ++i) {
      double allocated = 0.0;
      if (ledger.TryAllocateMemory(1.0, kCapacity, &allocated)) {
        admitted.fetch_add(1, std::memory_order_relaxed);
        if (allocated > kCapacity + 1.0) {
          overshoot.store(true, std::memory_order_relaxed);
        }
        ledger.ReleaseMemory(1.0);
      }
    }
  });
  EXPECT_FALSE(overshoot.load());
  EXPECT_GT(admitted.load(), 0);
  EXPECT_DOUBLE_EQ(ledger.mem_allocated(), 0.0);
}

TEST(ThreadedSmoke, MonotaskQueueConcurrentPushPop) {
  MonotaskQueue queue;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = kIters;
  std::atomic<int64_t> popped{0};
  std::atomic<double> popped_bytes{0.0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        RunnableMonotask mt;
        mt.job = static_cast<JobId>(p);
        mt.id = static_cast<MonotaskId>(i);
        mt.type = ResourceType::kCpu;
        mt.input_bytes = 8.0;
        mt.job_priority = static_cast<double>(p);
        mt.intra_key = static_cast<double>(i % 16);
        queue.Push(std::move(mt));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (popped.load(std::memory_order_relaxed) <
             static_cast<int64_t>(kProducers) * kPerProducer) {
        if (queue.Empty()) {
          std::this_thread::yield();
          continue;
        }
        // Empty() then Pop() races with other consumers; MonotaskQueue must
        // stay internally consistent, so a consumer only pops after winning
        // a claim on the counter.
        const int64_t claim = popped.fetch_add(1, std::memory_order_relaxed);
        if (claim >= static_cast<int64_t>(kProducers) * kPerProducer) {
          popped.fetch_sub(1, std::memory_order_relaxed);
          break;
        }
        while (queue.Empty()) {
          std::this_thread::yield();
        }
        const RunnableMonotask mt = queue.Pop();
        double expected = popped_bytes.load(std::memory_order_relaxed);
        while (!popped_bytes.compare_exchange_weak(expected, expected + mt.input_bytes)) {
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(queue.Empty());
  EXPECT_DOUBLE_EQ(queue.queued_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(popped_bytes.load(),
                   8.0 * static_cast<double>(kProducers) * kPerProducer);
}

TEST(ThreadedSmoke, MonotaskQueueReprioritizeUnderContention) {
  MonotaskQueue queue;
  for (int i = 0; i < 256; ++i) {
    RunnableMonotask mt;
    mt.job = static_cast<JobId>(i % 8);
    mt.input_bytes = 1.0;
    mt.job_priority = static_cast<double>(i % 8);
    queue.Push(std::move(mt));
  }
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      queue.Reprioritize([](JobId job) { return -static_cast<double>(job); });
      queue.Reprioritize([](JobId job) { return static_cast<double>(job); });
    }
  });
  for (int i = 0; i < 256; ++i) {
    while (queue.Empty()) {
      std::this_thread::yield();
    }
    (void)queue.Pop();
  }
  stop.store(true);
  churn.join();
  EXPECT_TRUE(queue.Empty());
  EXPECT_DOUBLE_EQ(queue.queued_bytes(), 0.0);
}

void EventQueuePushCancelPopImpl(EventQueue& queue) {
  std::atomic<int64_t> fired{0};
  std::atomic<int64_t> pushed{0};
  std::atomic<int64_t> cancelled{0};
  RunThreads([&](int t) {
    for (int i = 0; i < kIters; ++i) {
      const EventId id = queue.Push(static_cast<double>(t * kIters + i),
                                    [&fired] { fired.fetch_add(1, std::memory_order_relaxed); });
      pushed.fetch_add(1, std::memory_order_relaxed);
      if (i % 3 == 0) {
        if (queue.Cancel(id)) {
          cancelled.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  // Single-threaded drain (as the simulator loop does), firing callbacks
  // with the queue lock released.
  double last = -1.0;
  while (!queue.Empty()) {
    EventQueue::Fired event = queue.Pop();
    EXPECT_GE(event.when, last);
    last = event.when;
    event.cb();
  }
  EXPECT_EQ(fired.load(), pushed.load() - cancelled.load());
  EXPECT_EQ(queue.PendingCount(), 0u);
}

TEST(ThreadedSmoke, EventQueuePushCancelPop) {
  for (const auto kind : {EventQueueKind::kBinaryHeap, EventQueueKind::kCalendar}) {
    SCOPED_TRACE(EventQueueKindName(kind));
    auto queue = MakeEventQueue(kind);
    EventQueuePushCancelPopImpl(*queue);
  }
}

void EventQueueConcurrentCancelImpl(EventQueue& queue) {
  std::vector<EventId> ids;
  ids.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    ids.push_back(queue.Push(static_cast<double>(i), [] {}));
  }
  std::atomic<int64_t> wins{0};
  RunThreads([&](int) {
    for (const EventId id : ids) {
      if (queue.Cancel(id)) {
        wins.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Each event is cancelled by exactly one winner.
  EXPECT_EQ(wins.load(), 1024);
  while (!queue.Empty()) {
    (void)queue.Pop();
  }
  EXPECT_EQ(queue.PendingCount(), 0u);
}

TEST(ThreadedSmoke, EventQueueConcurrentCancelOfSameEvents) {
  for (const auto kind : {EventQueueKind::kBinaryHeap, EventQueueKind::kCalendar}) {
    SCOPED_TRACE(EventQueueKindName(kind));
    auto queue = MakeEventQueue(kind);
    EventQueueConcurrentCancelImpl(*queue);
  }
}

TEST(ThreadedSmoke, FaultStatsConcurrentRecording) {
  FaultStats stats;
  // All records carry the same timestamp: StepTracker requires non-decreasing
  // times, and under real concurrency the simulated clock is a single shared
  // value, not a per-thread counter.
  constexpr double kNow = 1.0;
  RunThreads([&](int t) {
    for (int i = 0; i < kIters; ++i) {
      stats.RecordTransientFailure();
      stats.RecordRetry(kNow);
      stats.RecordDetection(kNow, 0.5);
      stats.RecordWastedWork(kNow, ResourceType::kCpu, 10.0, 0.25);
      if (t == 0 && i == 0) {
        stats.RecordFullRestart();
      }
    }
  });
  const FaultCounters c = stats.Snapshot();
  EXPECT_EQ(c.transient_failures, kThreads * kIters);
  EXPECT_EQ(c.retries, kThreads * kIters);
  EXPECT_EQ(c.detections, kThreads * kIters);
  EXPECT_EQ(c.full_restarts, 1);
  EXPECT_DOUBLE_EQ(c.avg_detection_latency(), 0.5);
  EXPECT_DOUBLE_EQ(c.total_wasted_seconds(), 0.25 * kThreads * kIters);
  EXPECT_DOUBLE_EQ(c.total_wasted_bytes(), 10.0 * kThreads * kIters);
}

TEST(ThreadedSmoke, SpeculationManagerBudgetUnderContention) {
  SpeculationConfig config;
  config.enabled = true;
  config.budget_fraction = 0.1;
  FaultStats stats;
  SpeculationManager manager(config, &stats);
  constexpr int kRunning = 40;  // Budget: at most 4 live copies.
  std::atomic<bool> over_budget{false};
  RunThreads([&](int) {
    for (int i = 0; i < kIters; ++i) {
      if (manager.CanLaunch(kRunning)) {
        manager.OnLaunched();
        // CanLaunch/OnLaunched is check-then-act across two locks, so brief
        // overshoot past the budget is tolerated under contention — but it
        // must stay bounded by the thread count and always drain back.
        if (manager.active() > 4 + kThreads) {
          over_budget.store(true, std::memory_order_relaxed);
        }
        if (i % 2 == 0) {
          manager.OnWon();
        } else {
          manager.OnLost();
        }
      }
    }
  });
  EXPECT_FALSE(over_budget.load());
  EXPECT_EQ(manager.active(), 0);
  const FaultCounters c = stats.Snapshot();
  EXPECT_EQ(c.speculations_launched, c.speculations_won + c.speculations_lost);
  EXPECT_EQ(c.speculations_active(), 0);
}

}  // namespace
}  // namespace ursa
