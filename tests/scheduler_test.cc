// Tests for the Ursa scheduler: memory-gated admission, Algorithm 1
// placement behaviour (load balancing, blocked-resource avoidance, stage
// bonus), job ordering policies, and the packing-placement variants.
#include <gtest/gtest.h>

#include "src/scheduler/ursa_scheduler.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

std::unique_ptr<Job> SimpleJob(JobId id, int tasks, double part_bytes, double memory,
                               uint64_t seed = 1) {
  JobSpec spec;
  spec.name = "job" + std::to_string(id);
  spec.declared_memory_bytes = memory;
  spec.seed = seed;
  OpGraph& graph = spec.graph;
  const DataId input = graph.CreateExternalData(
      std::vector<double>(static_cast<size_t>(tasks), part_bytes), "in");
  const DataId out = graph.CreateData(tasks, "out");
  graph.CreateOp(ResourceType::kCpu, "work").Read(input).Create(out);
  return Job::Create(id, std::move(spec));
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() {
    config_.num_workers = 4;
    config_.worker.cores = 4;
    config_.worker.cpu_byte_rate = 1000.0;
    config_.worker.memory_bytes = 1000.0 * 1024 * 1024;
    cluster_ = std::make_unique<Cluster>(&sim_, config_);
  }

  Simulator sim_;
  ClusterConfig config_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(SchedulerTest, AdmissionGatedByClusterMemory) {
  UrsaSchedulerConfig sc;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  const double total = cluster_->total_memory();
  // First job reserves 80% of memory; second (60%) must wait.
  scheduler.SubmitJob(SimpleJob(0, 4, 1000.0, total * 0.8));
  scheduler.SubmitJob(SimpleJob(1, 4, 1000.0, total * 0.6));
  sim_.Run(1.0);
  EXPECT_GE(scheduler.job_records()[0].admit_time, 0.0);
  EXPECT_LT(scheduler.job_records()[1].admit_time, 0.0);  // Still queued.
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  // Job 1 admitted only after job 0 finished and released its reservation.
  EXPECT_GE(scheduler.job_records()[1].admit_time,
            scheduler.job_records()[0].finish_time);
}

TEST_F(SchedulerTest, SpreadsTasksAcrossWorkers) {
  UrsaSchedulerConfig sc;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  // 16 equal tasks on 4 workers x 4 cores: every worker should get work.
  scheduler.SubmitJob(SimpleJob(0, 16, 2000.0, 1e9));
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  for (int w = 0; w < cluster_->size(); ++w) {
    EXPECT_GT(cluster_->worker(w).completed(ResourceType::kCpu), 0)
        << "worker " << w << " got no monotasks";
  }
}

TEST_F(SchedulerTest, EjfPrioritizesEarlierJob) {
  UrsaSchedulerConfig sc;
  sc.policy = OrderingPolicy::kEjf;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  // Saturating first job, then a later identical one: EJF must finish the
  // earlier job first.
  scheduler.SubmitJob(SimpleJob(0, 64, 4000.0, 1e9, 11));
  sim_.ScheduleAt(0.1, [&] { scheduler.SubmitJob(SimpleJob(1, 64, 4000.0, 1e9, 12)); });
  sim_.Run();
  EXPECT_LT(scheduler.job_records()[0].finish_time, scheduler.job_records()[1].finish_time);
}

TEST_F(SchedulerTest, SrjfPrioritizesSmallJob) {
  UrsaSchedulerConfig sc;
  sc.policy = OrderingPolicy::kSrjf;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  // A big job submitted first, a tiny one submitted just after: SRJF should
  // complete the tiny job well before the big one.
  scheduler.SubmitJob(SimpleJob(0, 64, 50000.0, 1e9, 21));
  sim_.ScheduleAt(0.1, [&] { scheduler.SubmitJob(SimpleJob(1, 4, 1000.0, 1e9, 22)); });
  sim_.Run();
  EXPECT_LT(scheduler.job_records()[1].finish_time,
            scheduler.job_records()[0].finish_time * 0.8);
}

TEST_F(SchedulerTest, PackingReservationsReleaseOnTaskCompletion) {
  UrsaSchedulerConfig sc;
  sc.placement = PlacementAlgorithm::kTetris;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  scheduler.SubmitJob(SimpleJob(0, 8, 2000.0, 1e9));
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  // All memory and reservations returned.
  for (int w = 0; w < cluster_->size(); ++w) {
    EXPECT_DOUBLE_EQ(cluster_->worker(w).free_memory(),
                     cluster_->worker(w).memory_capacity());
  }
}

TEST(SrjfRank, SmallerRemainingRanksFirst) {
  std::array<double, kNumMonotaskResources> big = {100.0, 50.0, 0.0};
  std::array<double, kNumMonotaskResources> small = {10.0, 5.0, 0.0};
  std::array<double, kNumMonotaskResources> load = {110.0, 55.0, 0.0};
  EXPECT_LT(SrjfRank(small, load), SrjfRank(big, load));
}

TEST(SrjfRank, ZeroLoadResourceIgnored) {
  std::array<double, kNumMonotaskResources> r = {10.0, 10.0, 10.0};
  std::array<double, kNumMonotaskResources> load = {100.0, 0.0, 0.0};
  // Only the CPU dimension contributes: (2 - 0.1) * 0.1.
  EXPECT_NEAR(SrjfRank(r, load), 0.19, 1e-9);
}

TEST(SrjfRank, HeavilyDemandedResourceWeighsMore) {
  // Two jobs with equal total remaining work; the one whose work sits on the
  // contended resource ranks later (more remaining relative weight).
  std::array<double, kNumMonotaskResources> on_hot = {50.0, 0.0, 0.0};
  std::array<double, kNumMonotaskResources> on_cold = {0.0, 50.0, 0.0};
  std::array<double, kNumMonotaskResources> load = {1000.0, 60.0, 0.0};
  // on_cold dominates its (small) resource pool -> higher rank value.
  EXPECT_GT(SrjfRank(on_cold, load), SrjfRank(on_hot, load));
}

TEST(PlacementPriorityBonus, EjfGrowsWithWaitTime) {
  EXPECT_GT(PlacementPriorityBonus(OrderingPolicy::kEjf, 1.0, 100.0, 0.0),
            PlacementPriorityBonus(OrderingPolicy::kEjf, 1.0, 10.0, 0.0));
}

TEST(PlacementPriorityBonus, SrjfInverseInRank) {
  EXPECT_GT(PlacementPriorityBonus(OrderingPolicy::kSrjf, 1.0, 0.0, 0.1),
            PlacementPriorityBonus(OrderingPolicy::kSrjf, 1.0, 0.0, 1.0));
}

}  // namespace
}  // namespace ursa
