// Control-plane message layer (DESIGN.md section 14): exactly-once dispatch
// under loss and duplication, epoch fencing, reliable completion reports
// across scheduler downtime, best-effort heartbeats and journal bookkeeping.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/ctrl/control_plane.h"
#include "src/ctrl/journal.h"
#include "src/dag/plan.h"
#include "src/exec/cluster.h"
#include "src/fault/fault_stats.h"
#include "src/sim/simulator.h"

namespace ursa {
namespace {

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest() {
    config_.num_workers = 2;
    config_.worker.cores = 4;
    config_.worker.cpu_byte_rate = 100e6;
    cluster_ = std::make_unique<Cluster>(&sim_, config_);
  }

  std::unique_ptr<ControlPlane> MakePlane(const ControlPlaneConfig& cc) {
    return std::make_unique<ControlPlane>(&sim_, cluster_.get(), cc, &stats_);
  }

  static RunnableMonotask CountingMonotask(int* completions) {
    RunnableMonotask run;
    run.type = ResourceType::kCpu;
    run.work = 1e6;  // 10 ms at 100 MB/s.
    run.input_bytes = 1e6;
    run.on_complete = [completions] { ++*completions; };
    return run;
  }

  static MsgKey Key(MonotaskId m, int attempt = 0, int channel = 0) {
    MsgKey key;
    key.job = 0;
    key.monotask = m;
    key.attempt = attempt;
    key.channel = channel;
    return key;
  }

  Simulator sim_;
  ClusterConfig config_;
  std::unique_ptr<Cluster> cluster_;
  FaultStats stats_;
};

TEST_F(ControlPlaneTest, DisabledIsSynchronousPassThrough) {
  ControlPlaneConfig cc;  // enabled = false.
  auto plane = MakePlane(cc);
  int completions = 0;
  plane->Dispatch(0, Key(0), CountingMonotask(&completions));
  int notified = 0;
  plane->NotifyScheduler(0, [&] { ++notified; });
  int beats = 0;
  plane->Heartbeat(0, [&] { ++beats; });
  // The pass-through path schedules no messages and draws no randomness.
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(beats, 1);
  sim_.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(stats_.Snapshot().msgs_sent, 0);
}

TEST_F(ControlPlaneTest, DispatchSurvivesHeavyLossExactlyOnce) {
  ControlPlaneConfig cc;
  cc.enabled = true;
  cc.loss_prob = 0.7;
  auto plane = MakePlane(cc);
  int completions = 0;
  plane->Dispatch(0, Key(0), CountingMonotask(&completions));
  sim_.Run();
  // Retransmission pushes the dispatch through; dedup keeps it single.
  EXPECT_EQ(completions, 1);
  const FaultCounters c = stats_.Snapshot();
  EXPECT_GT(c.msgs_sent, 0);
  EXPECT_TRUE(plane->Delivered(0, Key(0)));
  EXPECT_FALSE(plane->Delivered(1, Key(0)));
  EXPECT_FALSE(plane->Delivered(0, Key(1)));
}

TEST_F(ControlPlaneTest, DuplicatedDispatchRunsOnce) {
  ControlPlaneConfig cc;
  cc.enabled = true;
  cc.dup_prob = 1.0;  // Every send is duplicated.
  auto plane = MakePlane(cc);
  int completions = 0;
  plane->Dispatch(0, Key(0), CountingMonotask(&completions));
  sim_.Run();
  EXPECT_EQ(completions, 1);
  const FaultCounters c = stats_.Snapshot();
  EXPECT_GT(c.msgs_duplicated, 0);
  EXPECT_GT(c.dup_suppressed, 0);
}

TEST_F(ControlPlaneTest, EpochFencingDiscardsStaleDispatch) {
  ControlPlaneConfig cc;
  cc.enabled = true;
  auto plane = MakePlane(cc);
  int completions = 0;
  plane->Dispatch(0, Key(0), CountingMonotask(&completions));
  plane->BumpEpoch();  // Crash before the message lands.
  sim_.Run();
  EXPECT_EQ(completions, 0);
  EXPECT_FALSE(plane->Delivered(0, Key(0)));
  EXPECT_GT(stats_.Snapshot().msgs_fenced, 0);
}

TEST_F(ControlPlaneTest, CompletionRetriesAcrossSchedulerDowntime) {
  ControlPlaneConfig cc;
  cc.enabled = true;
  auto plane = MakePlane(cc);
  bool down = true;
  plane->set_down_check([&down] { return down; });
  int delivered = 0;
  plane->set_completion_handler(
      [&](const ControlPlane::CompletionMsg&) { ++delivered; });
  ControlPlane::CompletionMsg msg;
  msg.job = 0;
  msg.monotask = 3;
  msg.worker = 1;
  plane->CompletionToScheduler(msg);
  sim_.Schedule(1.0, [&] { down = false; });
  sim_.Run();
  // The report was refused while down and retried until accepted.
  EXPECT_EQ(delivered, 1);
  EXPECT_GT(stats_.Snapshot().retransmits, 0);
  EXPECT_GT(sim_.Now(), 1.0);
}

TEST_F(ControlPlaneTest, HeartbeatsAreBestEffort) {
  ControlPlaneConfig cc;
  cc.enabled = true;
  cc.loss_prob = 0.5;
  auto plane = MakePlane(cc);
  int beats = 0;
  for (int i = 0; i < 200; ++i) {
    plane->Heartbeat(0, [&] { ++beats; });
  }
  sim_.Run();
  // Lost heartbeats stay lost: no retransmission on the unreliable channel.
  EXPECT_GT(beats, 0);
  EXPECT_LT(beats, 200);
  EXPECT_EQ(stats_.Snapshot().retransmits, 0);
}

TEST_F(ControlPlaneTest, ForgetJobDropsDedupState) {
  ControlPlaneConfig cc;
  cc.enabled = true;
  auto plane = MakePlane(cc);
  int completions = 0;
  plane->Dispatch(0, Key(0), CountingMonotask(&completions));
  sim_.Run();
  ASSERT_TRUE(plane->Delivered(0, Key(0)));
  plane->ForgetJob(0);
  EXPECT_FALSE(plane->Delivered(0, Key(0)));
}

TEST_F(ControlPlaneTest, MsgKeyOrdersByFullIdentity) {
  MsgKey a = Key(0);
  MsgKey b = Key(0);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
  b.incarnation = 1;  // A full restart mints distinct keys.
  EXPECT_TRUE(a < b);
  b = Key(0);
  b.generation = 1;
  EXPECT_TRUE(a < b);
  b = Key(0, /*attempt=*/1);
  EXPECT_TRUE(a < b);
  b = Key(0, 0, /*channel=*/1);
  EXPECT_TRUE(a < b);
}

TEST(ControlPlaneConfigTest, RejectsMalformedProbabilities) {
  Simulator sim;
  ClusterConfig cluster_config;
  cluster_config.num_workers = 1;
  Cluster cluster(&sim, cluster_config);
  FaultStats stats;
  ControlPlaneConfig cc;
  cc.enabled = true;
  cc.loss_prob = 1.0;  // A message that is always lost never delivers.
  EXPECT_DEATH(ControlPlane(&sim, &cluster, cc, &stats), "loss_prob");
}

// A one-task, one-monotask plan: enough structure to fold placement and
// completion records into an image.
ExecutionPlan TinyPlan() {
  OpGraph graph;
  const DataId input = graph.CreateExternalData({5.0}, "in");
  graph.CreateOp(ResourceType::kCpu, "only").Read(input).SetParallelism(1);
  return ExecutionPlan::Build(graph, 1);
}

TEST(JournalTest, CheckpointFoldsPrefixIntoImages) {
  Journal journal;
  const ExecutionPlan plan = TinyPlan();
  const Journal::PlanResolver plan_of = [&plan](JobId) -> const ExecutionPlan& {
    return plan;
  };
  EXPECT_EQ(journal.appended(), 0u);
  EXPECT_EQ(journal.suffix_length(), 0u);
  journal.Append({JournalKind::kAdmit, 0});
  journal.Append({JournalKind::kStartJm, 0, kInvalidId, kInvalidId, 0});
  journal.Append({JournalKind::kPlace, 0, /*id=*/0, /*worker=*/1, /*gen=*/0,
                  /*x=*/2.0, /*y=*/1.5, /*time=*/3.0});
  EXPECT_EQ(journal.appended(), 3u);
  EXPECT_EQ(journal.suffix_length(), 3u);
  journal.Checkpoint(10.0, plan_of);
  EXPECT_EQ(journal.checkpoints(), 1);
  EXPECT_DOUBLE_EQ(journal.last_checkpoint_time(), 10.0);
  // The checkpoint folds the prefix into per-job images and truncates the
  // records: memory and replay latency track only the post-checkpoint
  // suffix, while appended() keeps counting total write volume.
  EXPECT_EQ(journal.suffix_length(), 0u);
  EXPECT_EQ(journal.live_jobs(), 1u);
  journal.Append({JournalKind::kTaskDone, 0, /*id=*/0, /*worker=*/1, /*gen=*/0,
                  0.0, 0.0, /*time=*/12.0});
  EXPECT_EQ(journal.appended(), 4u);
  EXPECT_EQ(journal.suffix_length(), 1u);
  // Restore = folded image + suffix replay, identical to full-history replay.
  std::map<JobId, JobImage> images = journal.Restore(plan_of);
  ASSERT_EQ(images.size(), 1u);
  const JobImage& image = images.at(0);
  EXPECT_TRUE(image.admitted);
  ASSERT_EQ(image.tasks.size(), 1u);
  EXPECT_EQ(image.tasks[0].worker, 1);
  EXPECT_DOUBLE_EQ(image.tasks[0].allocated_memory, 2.0);
  EXPECT_TRUE(image.tasks[0].done);
  EXPECT_DOUBLE_EQ(image.tasks[0].finish_time, 12.0);
}

TEST(JournalTest, JobFinishDropsImageAndSuffixRecords) {
  Journal journal;
  const ExecutionPlan plan = TinyPlan();
  const Journal::PlanResolver plan_of = [&plan](JobId) -> const ExecutionPlan& {
    return plan;
  };
  journal.Append({JournalKind::kAdmit, 0});
  journal.Append({JournalKind::kAdmit, 1});
  journal.Checkpoint(5.0, plan_of);
  EXPECT_EQ(journal.live_jobs(), 2u);
  journal.Append({JournalKind::kPlace, 0, /*id=*/0, /*worker=*/0, /*gen=*/0,
                  1.0, 1.0, /*time=*/6.0});
  journal.Append({JournalKind::kPlace, 1, /*id=*/0, /*worker=*/1, /*gen=*/0,
                  1.0, 1.0, /*time=*/6.0});
  // Finishing job 0 retires all its journal state — the checkpoint image and
  // the not-yet-folded suffix record — so replay work stays O(live jobs).
  journal.Append({JournalKind::kJobFinish, 0});
  EXPECT_EQ(journal.live_jobs(), 1u);
  EXPECT_EQ(journal.suffix_length(), 1u);
  EXPECT_EQ(journal.appended(), 5u);  // Write volume still counts everything.
  std::map<JobId, JobImage> images = journal.Restore(plan_of);
  EXPECT_EQ(images.count(0), 0u);
  ASSERT_EQ(images.count(1), 1u);
  EXPECT_EQ(images.at(1).tasks[0].worker, 1);
}

}  // namespace
}  // namespace ursa
