// Tests for the SQL layer: lexer/parser, plan compilation, and end-to-end
// execution on LocalRuntime (scans, filters, joins, aggregation, ordering).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/sql/engine.h"

namespace ursa {
namespace {

SqlCatalog MakeSalesCatalog() {
  SqlCatalog catalog;
  // orders(id, customer, amount, region)
  SqlSchema orders;
  orders.columns = {{"id", SqlType::kInt64},
                    {"customer", SqlType::kInt64},
                    {"amount", SqlType::kDouble},
                    {"region", SqlType::kString}};
  std::vector<SqlRow> order_rows = {
      {int64_t{1}, int64_t{100}, 25.0, std::string("east")},
      {int64_t{2}, int64_t{100}, 75.0, std::string("east")},
      {int64_t{3}, int64_t{101}, 10.0, std::string("west")},
      {int64_t{4}, int64_t{102}, 50.0, std::string("west")},
      {int64_t{5}, int64_t{103}, 99.0, std::string("north")},
      {int64_t{6}, int64_t{101}, 30.0, std::string("east")},
  };
  catalog.CreateTable("orders", orders, order_rows, /*partitions=*/3);
  // customers(cid, name)
  SqlSchema customers;
  customers.columns = {{"cid", SqlType::kInt64}, {"name", SqlType::kString}};
  std::vector<SqlRow> customer_rows = {
      {int64_t{100}, std::string("ada")},
      {int64_t{101}, std::string("bob")},
      {int64_t{102}, std::string("cyd")},
      {int64_t{103}, std::string("dee")},
  };
  catalog.CreateTable("customers", customers, customer_rows, /*partitions=*/2);
  return catalog;
}

TEST(SqlParser, ParsesFullStatement) {
  const SelectStatement s = ParseSql(
      "SELECT region, SUM(amount) AS total FROM orders JOIN customers ON "
      "customer = cid WHERE amount > 20 GROUP BY region ORDER BY region DESC LIMIT 2");
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].column, "region");
  EXPECT_EQ(s.items[1].agg, AggFn::kSum);
  EXPECT_EQ(s.items[1].alias, "total");
  EXPECT_EQ(s.from_table, "orders");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].table, "customers");
  ASSERT_EQ(s.where.size(), 1u);
  EXPECT_EQ(s.where[0].op, CompareOp::kGt);
  EXPECT_EQ(s.group_by, std::vector<std::string>{"region"});
  ASSERT_TRUE(s.order_by.has_value());
  EXPECT_TRUE(s.order_by->descending);
  EXPECT_EQ(*s.limit, 2);
}

TEST(SqlParser, SelectStarAndQualifiedNames) {
  const SelectStatement s = ParseSql("SELECT * FROM t WHERE t.x = 'abc'");
  EXPECT_TRUE(s.items.empty());
  EXPECT_EQ(s.where[0].column, "t.x");
  EXPECT_EQ(std::get<std::string>(s.where[0].literal), "abc");
}

TEST(SqlParser, ReportsSyntaxErrors) {
  SelectStatement s;
  std::string error;
  EXPECT_FALSE(TryParseSql("SELECT FROM t", &s, &error));
  EXPECT_FALSE(TryParseSql("SELECT a FRAM t", &s, &error));
  EXPECT_FALSE(TryParseSql("SELECT a FROM t WHERE a ~ 3", &s, &error));
  EXPECT_FALSE(TryParseSql("SELECT a FROM t LIMIT xyz", &s, &error));
  EXPECT_FALSE(TryParseSql("SELECT a FROM t WHERE s = 'unterminated", &s, &error));
}

class SqlEngineTest : public ::testing::Test {
 protected:
  SqlEngineTest() : catalog_(MakeSalesCatalog()), engine_(&catalog_, 3) {}
  SqlCatalog catalog_;
  SqlEngine engine_;
};

TEST_F(SqlEngineTest, SelectStarScan) {
  const SqlResult result = engine_.Execute("SELECT * FROM orders");
  EXPECT_EQ(result.rows.size(), 6u);
  EXPECT_EQ(result.schema.columns.size(), 4u);
  EXPECT_EQ(result.schema.columns[0].name, "orders.id");
}

TEST_F(SqlEngineTest, FilterPushdown) {
  const SqlResult result =
      engine_.Execute("SELECT id FROM orders WHERE amount >= 50 AND region = 'west'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result.rows[0][0]), 4);
}

TEST_F(SqlEngineTest, Projection) {
  const SqlResult result = engine_.Execute("SELECT region, amount FROM orders");
  EXPECT_EQ(result.rows.size(), 6u);
  EXPECT_EQ(result.schema.columns[0].name, "region");
  for (const SqlRow& row : result.rows) {
    EXPECT_EQ(row.size(), 2u);
    EXPECT_TRUE(std::holds_alternative<std::string>(row[0]));
  }
}

TEST_F(SqlEngineTest, GlobalAggregates) {
  const SqlResult result = engine_.Execute(
      "SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) FROM orders");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result.rows[0][0]), 6);
  EXPECT_DOUBLE_EQ(std::get<double>(result.rows[0][1]), 289.0);
  EXPECT_DOUBLE_EQ(std::get<double>(result.rows[0][2]), 10.0);
  EXPECT_DOUBLE_EQ(std::get<double>(result.rows[0][3]), 99.0);
  EXPECT_NEAR(std::get<double>(result.rows[0][4]), 289.0 / 6.0, 1e-9);
}

TEST_F(SqlEngineTest, GroupByWithOrderBy) {
  const SqlResult result = engine_.Execute(
      "SELECT region, SUM(amount) AS total, COUNT(*) AS n FROM orders "
      "GROUP BY region ORDER BY total DESC");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(std::get<std::string>(result.rows[0][0]), "east");
  EXPECT_DOUBLE_EQ(std::get<double>(result.rows[0][1]), 130.0);
  EXPECT_EQ(std::get<int64_t>(result.rows[0][2]), 3);
  EXPECT_EQ(std::get<std::string>(result.rows[1][0]), "north");
  EXPECT_EQ(std::get<std::string>(result.rows[2][0]), "west");
  EXPECT_DOUBLE_EQ(std::get<double>(result.rows[2][1]), 60.0);
}

TEST_F(SqlEngineTest, HashJoin) {
  const SqlResult result = engine_.Execute(
      "SELECT name, amount FROM orders JOIN customers ON customer = cid "
      "WHERE amount > 40 ORDER BY amount");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(std::get<std::string>(result.rows[0][0]), "cyd");   // 50
  EXPECT_EQ(std::get<std::string>(result.rows[1][0]), "ada");   // 75
  EXPECT_EQ(std::get<std::string>(result.rows[2][0]), "dee");   // 99
}

TEST_F(SqlEngineTest, JoinWithGroupBy) {
  const SqlResult result = engine_.Execute(
      "SELECT name, SUM(amount) AS total FROM orders JOIN customers ON "
      "customer = cid GROUP BY name ORDER BY total DESC LIMIT 2");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(result.rows[0][0]), "ada");  // 100.
  EXPECT_DOUBLE_EQ(std::get<double>(result.rows[0][1]), 100.0);
  EXPECT_EQ(std::get<std::string>(result.rows[1][0]), "dee");  // 99.
}

TEST_F(SqlEngineTest, LimitWithoutOrder) {
  const SqlResult result = engine_.Execute("SELECT id FROM orders LIMIT 4");
  EXPECT_EQ(result.rows.size(), 4u);
}

TEST_F(SqlEngineTest, EmptyResultFromSelectiveFilter) {
  const SqlResult result = engine_.Execute("SELECT id FROM orders WHERE amount > 1000");
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(SqlEngineTest, CountOnEmptyTableIsZero) {
  SqlSchema schema;
  schema.columns = {{"x", SqlType::kInt64}};
  catalog_.CreateTable("empty", schema, {}, 2);
  const SqlResult result = engine_.Execute("SELECT COUNT(*) FROM empty");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result.rows[0][0]), 0);
}

TEST_F(SqlEngineTest, GroupByDistinctWithoutAggregates) {
  const SqlResult result = engine_.Execute("SELECT region FROM orders GROUP BY region");
  EXPECT_EQ(result.rows.size(), 3u);
}

TEST_F(SqlEngineTest, CompileForSimulationProducesValidJob) {
  const JobSpec spec = engine_.CompileForSimulation(
      "SELECT region, SUM(amount) FROM orders JOIN customers ON customer = cid "
      "GROUP BY region",
      /*scale=*/1e6);
  EXPECT_GT(spec.graph.TotalExternalInputBytes(), 1e6);
  const ExecutionPlan plan = ExecutionPlan::Build(spec.graph, 1);
  // Scans, two join shuffles, join, partial agg, agg shuffle, final agg.
  EXPECT_GE(plan.stages().size(), 4u);
  EXPECT_GT(plan.monotasks().size(), 6u);
}

TEST_F(SqlEngineTest, ResultToStringRenders) {
  const SqlResult result = engine_.Execute("SELECT COUNT(*) FROM orders");
  const std::string text = result.ToString();
  EXPECT_NE(text.find("COUNT"), std::string::npos);
  EXPECT_NE(text.find("6"), std::string::npos);
}

}  // namespace
}  // namespace ursa
