// Tests for the SE/UE/makespan/straggler metrics (section 5 definitions).
#include <gtest/gtest.h>

#include <cmath>

#include "src/metrics/metrics.h"

namespace ursa {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() {
    config_.num_workers = 2;
    config_.worker.cores = 10;
    config_.worker.memory_bytes = 100.0;
    cluster_ = std::make_unique<Cluster>(&sim_, config_);
  }

  Simulator sim_;
  ClusterConfig config_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(MetricsTest, SeUeFromTrackerIntegrals) {
  // Worker 0: 5 cores allocated and busy for the whole 10 s window.
  // Worker 1: 10 cores allocated, 2 busy.
  Worker& w0 = cluster_->worker(0);
  Worker& w1 = cluster_->worker(1);
  w0.AddCpuAllocated(5.0);
  w0.AddCpuBusy(5.0);
  w1.AddCpuAllocated(10.0);
  w1.AddCpuBusy(2.0);
  sim_.Schedule(10.0, [] {});
  sim_.Run();

  std::vector<JobRecord> jobs(2);
  jobs[0].submit_time = 0.0;
  jobs[0].finish_time = 4.0;
  jobs[1].submit_time = 2.0;
  jobs[1].finish_time = 10.0;
  const EfficiencyReport report = MetricsCollector::Compute(*cluster_, jobs, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(report.makespan, 10.0);
  EXPECT_DOUBLE_EQ(report.avg_jct, (4.0 + 8.0) / 2.0);
  // SE = allocated / total = 15/20; UE = busy / allocated = 7/15.
  EXPECT_NEAR(report.se_cpu, 100.0 * 15.0 / 20.0, 1e-9);
  EXPECT_NEAR(report.ue_cpu, 100.0 * 7.0 / 15.0, 1e-9);
  // Worker CPU utilizations 50% and 20%: mean absolute deviation 15.
  EXPECT_NEAR(report.cpu_imbalance, 15.0, 1e-9);
}

TEST_F(MetricsTest, SampleNormalizesByCapacity) {
  cluster_->worker(0).AddCpuBusy(10.0);  // Full.
  sim_.Schedule(4.0, [] {});
  sim_.Run();
  const auto series = MetricsCollector::Sample(*cluster_, 0.0, 4.0, 1.0);
  ASSERT_EQ(series.cpu.size(), 4u);
  // 10 of 20 cluster cores busy = 50%.
  EXPECT_NEAR(series.cpu[0], 50.0, 1e-9);
}

TEST_F(MetricsTest, SampleGuardsDegenerateCapacity) {
  // A cluster whose network capacity has been overridden to zero (e.g. a
  // heterogeneous-cluster experiment that disables some links) must sample to
  // 0% utilization, not divide by zero into NaNs.
  for (int w = 0; w < cluster_->size(); ++w) {
    cluster_->net().SetNodeBandwidth(w, /*uplink_bytes_per_sec=*/1e9,
                                     /*downlink_bytes_per_sec=*/0.0);
  }
  cluster_->worker(0).AddCpuBusy(10.0);
  sim_.Schedule(4.0, [] {});
  sim_.Run();
  const auto series = MetricsCollector::Sample(*cluster_, 0.0, 4.0, 1.0);
  ASSERT_EQ(series.net.size(), 4u);
  for (size_t i = 0; i < series.net.size(); ++i) {
    EXPECT_TRUE(std::isfinite(series.net[i])) << "net[" << i << "]";
    EXPECT_DOUBLE_EQ(series.net[i], 0.0);
    EXPECT_TRUE(std::isfinite(series.cpu[i]));
    EXPECT_TRUE(std::isfinite(series.mem[i]));
  }
  EXPECT_NEAR(series.cpu[0], 50.0, 1e-9);  // CPU sampling unaffected.

  // The degenerate t1 <= t0 window returns empty series, not a crash.
  const auto empty = MetricsCollector::Sample(*cluster_, 4.0, 4.0, 1.0);
  EXPECT_TRUE(empty.cpu.empty());
}

TEST(StragglerRatio, ZeroWithoutOutliers) {
  std::vector<std::vector<std::vector<double>>> jobs = {
      {{1.0, 1.1, 0.9, 1.0, 1.05, 0.95}}};
  EXPECT_DOUBLE_EQ(MetricsCollector::StragglerTimeRatio(jobs, {10.0}), 0.0);
}

TEST(StragglerRatio, DetectsLateTask) {
  // One stage where the last task finishes way past Q3 + 1.5 IQR.
  std::vector<double> stage;
  for (int i = 0; i < 20; ++i) {
    stage.push_back(10.0 + 0.1 * i);
  }
  stage.push_back(30.0);
  std::vector<std::vector<std::vector<double>>> jobs = {{stage}};
  const double ratio = MetricsCollector::StragglerTimeRatio(jobs, {100.0});
  EXPECT_GT(ratio, 10.0);  // (30 - ~13) / 100 ~= 17%.
  EXPECT_LT(ratio, 25.0);
}

TEST(StragglerRatio, TinyStagesIgnored) {
  std::vector<std::vector<std::vector<double>>> jobs = {{{1.0, 100.0}}};
  EXPECT_DOUBLE_EQ(MetricsCollector::StragglerTimeRatio(jobs, {10.0}), 0.0);
}

}  // namespace
}  // namespace ursa
