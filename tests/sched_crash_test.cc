// Scheduler crash-recovery (DESIGN.md section 14): journaled restore from
// checkpoint + decision journal, the journal-less full-restart fallback,
// orphan re-attachment, post-recovery worker reconciliation, parked
// submissions, chaos determinism and fault-plan validation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/driver/experiment.h"
#include "src/fault/fault_injector.h"
#include "src/scheduler/ursa_scheduler.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

Workload SmallTpch(int jobs, double interval = 3.0, uint64_t seed = 11) {
  TpchWorkloadConfig config;
  config.num_jobs = jobs;
  config.submit_interval = interval;
  config.seed = seed;
  return MakeTpchWorkload(config);
}

class SchedCrashTest : public ::testing::Test {
 protected:
  SchedCrashTest() {
    cluster_config_.num_workers = 4;
    cluster_config_.worker.cores = 8;
    cluster_config_.worker.cpu_byte_rate = 100e6;
    cluster_ = std::make_unique<Cluster>(&sim_, cluster_config_);
  }

  void SubmitAll(UrsaScheduler* scheduler, const Workload& workload) {
    for (size_t i = 0; i < workload.jobs.size(); ++i) {
      sim_.ScheduleAt(workload.jobs[i].submit_time, [this, scheduler, &workload, i] {
        scheduler->SubmitJob(Job::Create(static_cast<JobId>(i), workload.jobs[i].spec));
      });
    }
  }

  Simulator sim_;
  ClusterConfig cluster_config_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(SchedCrashTest, JournaledCrashRecoversWithoutRestartingJobs) {
  UrsaSchedulerConfig sc;
  sc.ctrl.enabled = true;
  sc.ctrl.checkpoint_interval = 1.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  const Workload workload = SmallTpch(6);
  SubmitAll(&scheduler, workload);
  sim_.Schedule(10.0, [&] { scheduler.InjectSchedulerCrash(3.0); });
  sim_.Schedule(11.0, [&] { EXPECT_TRUE(scheduler.scheduler_down()); });
  sim_.Run();
  EXPECT_FALSE(scheduler.scheduler_down());
  EXPECT_TRUE(scheduler.AllJobsFinished());
  // Journaled recovery restores progress; no job restarted from scratch.
  EXPECT_EQ(scheduler.total_restarts(), 0);
  const FaultCounters c = scheduler.fault_stats();
  EXPECT_EQ(c.scheduler_crashes, 1);
  EXPECT_EQ(c.scheduler_recoveries, 1);
  EXPECT_GE(c.avg_scheduler_recovery_latency(), 3.0);
  EXPECT_GT(c.checkpoints, 0);
  EXPECT_GT(c.journal_records, 0);
  // Healthy workers end with clean memory accounting: restore re-attached
  // charges instead of double-charging them.
  for (int w = 0; w < cluster_->size(); ++w) {
    EXPECT_NEAR(cluster_->worker(w).free_memory(),
                cluster_->worker(w).memory_capacity(), 1.0);
  }
}

TEST_F(SchedCrashTest, JournallessCrashFallsBackToFullRestarts) {
  UrsaSchedulerConfig sc;
  sc.ctrl.enabled = true;  // checkpoint_interval stays 0: no journal.
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  const Workload workload = SmallTpch(6);
  SubmitAll(&scheduler, workload);
  sim_.Schedule(10.0, [&] { scheduler.InjectSchedulerCrash(2.0); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  // Progress was unrecoverable: every live job restarted from its input.
  EXPECT_GT(scheduler.total_restarts(), 0);
  const FaultCounters c = scheduler.fault_stats();
  EXPECT_EQ(c.scheduler_crashes, 1);
  EXPECT_EQ(c.scheduler_recoveries, 1);
  EXPECT_EQ(c.checkpoints, 0);
  // Orphan reports from the dead incarnation were fenced, not re-applied.
  EXPECT_GT(c.msgs_fenced, 0);
}

TEST_F(SchedCrashTest, SubmissionDuringDowntimeParksAndCompletes) {
  UrsaSchedulerConfig sc;
  sc.ctrl.enabled = true;
  sc.ctrl.checkpoint_interval = 1.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  const Workload workload = SmallTpch(4, /*interval=*/2.0);
  SubmitAll(&scheduler, workload);
  sim_.Schedule(8.0, [&] { scheduler.InjectSchedulerCrash(4.0); });
  // This job arrives while the scheduler is down and must be parked.
  const Workload late = SmallTpch(5, /*interval=*/2.0);
  sim_.ScheduleAt(10.0, [&] {
    scheduler.SubmitJob(Job::Create(4, late.jobs[4].spec));
    EXPECT_TRUE(scheduler.scheduler_down());
  });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  EXPECT_EQ(static_cast<size_t>(scheduler.job_records().size()), 5u);
  for (const JobRecord& record : scheduler.job_records()) {
    EXPECT_GE(record.finish_time, 0.0) << record.name;
  }
}

TEST_F(SchedCrashTest, CrashAfterWorkerFailureStillDrainsEverything) {
  UrsaSchedulerConfig sc;
  sc.ctrl.enabled = true;
  sc.ctrl.checkpoint_interval = 1.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  const Workload workload = SmallTpch(6);
  SubmitAll(&scheduler, workload);
  // A worker dies, the scheduler handles it, then the scheduler itself
  // crashes. Recovery must re-handle the dead worker from the restored
  // images (handled-epoch state died with the scheduler).
  sim_.Schedule(8.0, [&] { scheduler.FailWorker(1); });
  sim_.Schedule(10.0, [&] { scheduler.InjectSchedulerCrash(3.0); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  EXPECT_TRUE(cluster_->worker(1).failed());
  for (int w = 0; w < cluster_->size(); ++w) {
    if (!cluster_->worker(w).failed()) {
      EXPECT_NEAR(cluster_->worker(w).free_memory(),
                  cluster_->worker(w).memory_capacity(), 1.0);
    }
  }
}

TEST_F(SchedCrashTest, WorkerFailureEntirelyWithinDowntimeIsReconciled) {
  UrsaSchedulerConfig sc;
  sc.ctrl.enabled = true;
  sc.ctrl.checkpoint_interval = 1.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  const Workload workload = SmallTpch(6);
  SubmitAll(&scheduler, workload);
  // The worker fails AND rejoins while the scheduler is down (the fault
  // injector drives workers directly, so this interleaving is reachable from
  // any chaos plan): no heartbeat-detector episode ever fires for it. The
  // recovered scheduler must notice the advanced failure epoch, drop the
  // worker's lost metadata/queue state, and re-send dispatches the dead
  // worker process had acked — otherwise the affected jobs hang forever.
  sim_.Schedule(8.0, [&] { scheduler.InjectSchedulerCrash(6.0); });
  sim_.Schedule(9.0, [&] {
    EXPECT_TRUE(scheduler.scheduler_down());
    cluster_->worker(1).Fail();
  });
  sim_.Schedule(11.0, [&] { cluster_->worker(1).Recover(); });
  sim_.Run();
  EXPECT_FALSE(scheduler.scheduler_down());
  EXPECT_FALSE(cluster_->worker(1).failed());
  EXPECT_TRUE(scheduler.AllJobsFinished());
  // No job restarted from scratch: journaled recovery plus reconciliation
  // repaired the lost placements surgically.
  EXPECT_EQ(scheduler.total_restarts(), 0);
  for (int w = 0; w < cluster_->size(); ++w) {
    EXPECT_NEAR(cluster_->worker(w).free_memory(),
                cluster_->worker(w).memory_capacity(), 1.0)
        << "worker " << w;
  }
}

TEST_F(SchedCrashTest, ParkedSubmissionChargesDowntimeToJct) {
  UrsaSchedulerConfig sc;
  sc.ctrl.enabled = true;
  sc.ctrl.checkpoint_interval = 1.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  const Workload workload = SmallTpch(2, /*interval=*/1.0);
  SubmitAll(&scheduler, workload);
  sim_.Schedule(6.0, [&] { scheduler.InjectSchedulerCrash(5.0); });
  const Workload late = SmallTpch(3, /*interval=*/1.0);
  sim_.ScheduleAt(7.5, [&] {
    EXPECT_TRUE(scheduler.scheduler_down());
    scheduler.SubmitJob(Job::Create(2, late.jobs[2].spec));
  });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  ASSERT_EQ(scheduler.job_records().size(), 3u);
  // The parked job keeps its client-side arrival time: the downtime it spent
  // queued counts toward its JCT instead of flattering the crash runs.
  const JobRecord& parked = scheduler.job_records()[2];
  EXPECT_DOUBLE_EQ(parked.submit_time, 7.5);
  EXPECT_GT(parked.finish_time, 11.0);  // Could not start before recovery.
}

TEST_F(SchedCrashTest, RepeatedCrashesConverge) {
  UrsaSchedulerConfig sc;
  sc.ctrl.enabled = true;
  sc.ctrl.checkpoint_interval = 0.5;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  const Workload workload = SmallTpch(5);
  SubmitAll(&scheduler, workload);
  sim_.Schedule(6.0, [&] { scheduler.InjectSchedulerCrash(2.0); });
  sim_.Schedule(14.0, [&] { scheduler.InjectSchedulerCrash(1.0); });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  const FaultCounters c = scheduler.fault_stats();
  EXPECT_EQ(c.scheduler_crashes, 2);
  EXPECT_EQ(c.scheduler_recoveries, 2);
}

TEST_F(SchedCrashTest, CrashWhileDownIsANoOp) {
  UrsaSchedulerConfig sc;
  sc.ctrl.enabled = true;
  sc.ctrl.checkpoint_interval = 1.0;
  UrsaScheduler scheduler(&sim_, cluster_.get(), sc);
  const Workload workload = SmallTpch(3);
  SubmitAll(&scheduler, workload);
  sim_.Schedule(5.0, [&] {
    scheduler.InjectSchedulerCrash(5.0);
    scheduler.InjectSchedulerCrash(5.0);  // Absorbed by the pending recovery.
  });
  sim_.Run();
  EXPECT_TRUE(scheduler.AllJobsFinished());
  EXPECT_EQ(scheduler.fault_stats().scheduler_crashes, 1);
}

// Same seed, same chaos plan, byte-identical outcome: the whole fault model
// draws from seeded streams only.
TEST(SchedCrashDeterminism, ChaosRunsAreReproducible) {
  const Workload workload = SmallTpch(8, /*interval=*/2.0, /*seed=*/13);
  ExperimentConfig config = UrsaSrjfConfig();
  config.cluster.num_workers = 4;
  config.ursa.ctrl.enabled = true;
  config.ursa.ctrl.loss_prob = 0.05;
  config.ursa.ctrl.dup_prob = 0.05;
  config.ursa.ctrl.delay_prob = 0.1;
  config.ursa.ctrl.checkpoint_interval = 2.0;
  FaultPlanConfig pc;
  pc.seed = 5;
  pc.num_workers = 4;
  pc.horizon_start = 5.0;
  pc.horizon_end = 30.0;
  pc.sched_crash_recovers = 1;
  pc.crash_recovers = 1;
  config.fault_plan = MakeRandomFaultPlan(pc);
  const ExperimentResult a = RunExperiment(workload, config, "chaos-a");
  const ExperimentResult b = RunExperiment(workload, config, "chaos-b");
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].finish_time, b.records[i].finish_time)
        << a.records[i].name;
    EXPECT_DOUBLE_EQ(a.records[i].cpu_seconds, b.records[i].cpu_seconds);
  }
  const FaultCounters ca = a.faults;
  const FaultCounters cb = b.faults;
  EXPECT_EQ(ca.msgs_sent, cb.msgs_sent);
  EXPECT_EQ(ca.msgs_lost, cb.msgs_lost);
  EXPECT_EQ(ca.msgs_duplicated, cb.msgs_duplicated);
  EXPECT_EQ(ca.msgs_fenced, cb.msgs_fenced);
  EXPECT_EQ(ca.retransmits, cb.retransmits);
  EXPECT_EQ(ca.scheduler_crashes, 1);
}

// Satellite: MakeRandomFaultPlan rejects malformed configs loudly.
TEST(FaultPlanValidationDeathTest, RejectsEmptyOrInvertedHorizon) {
  FaultPlanConfig pc;
  pc.horizon_start = 50.0;
  pc.horizon_end = 50.0;
  EXPECT_DEATH(MakeRandomFaultPlan(pc), "horizon");
  pc.horizon_end = 10.0;
  EXPECT_DEATH(MakeRandomFaultPlan(pc), "horizon");
}

TEST(FaultPlanValidationDeathTest, RejectsNegativeCounts) {
  FaultPlanConfig pc;
  pc.crashes = -1;
  EXPECT_DEATH(MakeRandomFaultPlan(pc), "crashes");
  pc.crashes = 0;
  pc.sched_crash_recovers = -2;
  EXPECT_DEATH(MakeRandomFaultPlan(pc), "sched_crash_recovers");
  pc.sched_crash_recovers = 0;
  pc.transient_count = -1;
  EXPECT_DEATH(MakeRandomFaultPlan(pc), "transient_count");
}

TEST(FaultPlanValidationDeathTest, RejectsOutOfRangeDegradeFactor) {
  FaultPlanConfig pc;
  pc.degrade_factor = 0.0;
  EXPECT_DEATH(MakeRandomFaultPlan(pc), "degrade_factor");
  pc.degrade_factor = 1.5;
  EXPECT_DEATH(MakeRandomFaultPlan(pc), "degrade_factor");
}

TEST(FaultPlanValidationDeathTest, RejectsInvertedDowntimes) {
  FaultPlanConfig pc;
  pc.min_downtime = 10.0;
  pc.max_downtime = 5.0;
  EXPECT_DEATH(MakeRandomFaultPlan(pc), "downtime");
}

}  // namespace
}  // namespace ursa
