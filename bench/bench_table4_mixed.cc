// Reproduces Table 4: the Mixed workload (32 TPC-H + 4 ML + 2 graph jobs)
// under Ursa-EJF/SRJF, Y+U (MonoSpark simulation: Ursa's execution layer in
// YARN containers), Y+S, and Ursa with the Capacity / Tetris / Tetris2
// placement algorithms replacing Algorithm 1.
//
// Paper's shape: (1) Y+U is no better than Y+S - monotasks *within* a job
// are not enough, cross-job fine-grained sharing is what matters; (2)
// Capacity/Tetris inside Ursa come close but lose SE_cpu to Algorithm 1
// because peak-demand reservations block placements; (3) Tetris2 (ignoring
// network) beats Tetris, since Tetris blocks on phantom network demand.
#include "bench/bench_util.h"
#include "src/workloads/mixed.h"

int main() {
  using namespace ursa;
  MixedWorkloadConfig wc;
  wc.seed = 2020;
  const Workload workload = MakeMixedWorkload(wc);

  auto with_placement = [](PlacementAlgorithm alg) {
    ExperimentConfig config = UrsaEjfConfig();
    config.ursa.placement = alg;
    return config;
  };

  std::vector<SchemeRun> schemes = {
      {"Ursa-EJF", UrsaEjfConfig()},
      {"Ursa-SRJF", UrsaSrjfConfig()},
      {"Y+U", MonoSparkConfig()},
      {"Y+S", SparkLikeConfig()},
      {"Capacity", with_placement(PlacementAlgorithm::kCapacity)},
      {"Tetris", with_placement(PlacementAlgorithm::kTetris)},
      {"Tetris2", with_placement(PlacementAlgorithm::kTetris2)},
  };
  RunSchemes(workload, std::move(schemes), "Table 4: Mixed (makespan/avgJCT s, rest %)");
  return 0;
}
