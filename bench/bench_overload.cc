// Overload benchmark (DESIGN.md section 11): open-loop serving swept from
// well under to well past cluster saturation.
//
// A closed calibration batch first measures the cluster's job throughput;
// its rate defines 1x saturation. The sweep then runs the open-loop driver
// at configurable multiples (default 0.5x 1x 1.5x 2x 3x) of that rate with
// SLO-aware admission control, three tenants (interactive/batch/scavenger
// with distinct tiers and SLOs), and backpressure-driven arrival throttling.
//
// Reported per point: offered/served jobs, shed counts, goodput, JCT
// percentiles of the served jobs, SLO attainment, Jain fairness, the
// pending-queue high-water mark and backpressure activity. A machine-
// readable summary is written to --json-out (default BENCH_overload.json).
//
// Hard assertions (exit 1 on violation):
//   * conservation: submitted == completed + shed at every point;
//   * bounded queue: pending high-water <= --max-pending at every point;
//   * graceful overload: goodput at the top multiple >= 90% of the peak
//     goodput across the sweep (no collapse past saturation);
//   * determinism: re-running the top multiple with the same seed produces
//     a byte-identical JSON point.
//
//   bench_overload [--seed=N] [--jobs=N] [--workers=N] [--mults=CSV]
//                  [--max-pending=N] [--shed-policy=newest|largest|tier]
//                  [--json-out=FILE] [--trace-out=FILE] [--chaos]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/fault/fault_injector.h"
#include "src/workloads/openloop.h"
#include "src/workloads/synthetic.h"

namespace {

using namespace ursa;

struct Options {
  uint64_t seed = 42;
  int jobs = 120;      // Arrivals per sweep point.
  int workers = 8;
  int max_pending = 32;
  std::string shed_policy = "tier";
  std::vector<double> mults = {0.5, 1.0, 1.5, 2.0, 3.0};
  std::string json_out = "BENCH_overload.json";
  std::string trace_out;
  bool chaos = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed=N] [--jobs=N] [--workers=N] [--mults=CSV]\n"
               "       [--max-pending=N] [--shed-policy=newest|largest|tier]\n"
               "       [--json-out=FILE] [--trace-out=FILE] [--chaos]\n",
               argv0);
  return 2;
}

bool ParseMults(const std::string& csv, std::vector<double>* out) {
  out->clear();
  const char* p = csv.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p || v <= 0.0) {
      return false;
    }
    out->push_back(v);
    p = *end == ',' ? end + 1 : end;
    if (*end != '\0' && *end != ',') {
      return false;
    }
  }
  return !out->empty();
}

// The shape every job in this bench has: small enough that a sweep point
// finishes quickly, large enough to exercise multi-stage placement.
SyntheticJobParams JobTemplate(int workers) {
  SyntheticJobParams params;
  params.stages = 3;
  params.parallelism = workers * 4;
  params.type1_task_bytes = 48.0 * 1024 * 1024;
  params.complexity = 8.0;
  return params;
}

// One sweep point serialized as a stable JSON object; byte-compared between
// repeated runs for the determinism assertion.
struct Point {
  double mult = 0.0;
  double arrival_rate = 0.0;
  std::string json;
  int submitted = 0;
  int completed = 0;
  int64_t shed = 0;
  int max_pending_depth = 0;
  int64_t level_changes = 0;
  double goodput = 0.0;
  double p95_jct = 0.0;
};

Point RunPoint(const Options& opt, double mult, double rate) {
  ExperimentConfig config = UrsaEjfConfig();
  config.cluster.num_workers = opt.workers;
  config.ursa.spec.enabled = true;  // Degradation must have something to shed.
  config.ursa.admission.enabled = true;
  config.ursa.admission.max_pending = opt.max_pending;
  // Serving-style SLOs a small factor above the unloaded JCT, and a
  // utilization bound near 1: the checkUvalue gate then caps concurrency at
  // what the cluster can actually finish in time, queueing the rest.
  config.ursa.admission.default_slo = 15.0;
  config.ursa.admission.utilization_bound = 1.2;
  // Backoff must not push the offered load below saturation at the top
  // multiple, or goodput dips for lack of work instead of overload.
  config.ursa.admission.max_throttle_factor = 2.0;
  CHECK(ParseShedPolicy(opt.shed_policy, &config.ursa.admission.shed_policy));
  config.open_loop.enabled = true;
  config.open_loop.seed = opt.seed;
  config.open_loop.arrival_rate = rate;
  config.open_loop.max_jobs = opt.jobs;
  config.open_loop.job_template = JobTemplate(opt.workers);
  std::string error;
  CHECK(ParseTenantSpecs("interactive:2:0:8,batch:1:1:20,scavenger:1:2:0",
                         &config.open_loop.tenants, &error))
      << error;
  if (opt.chaos) {
    FaultEvent crash;
    crash.kind = FaultKind::kCrashRecover;
    crash.time = 30.0;
    crash.worker = 1;
    crash.downtime = 20.0;
    config.fault_plan.events.push_back(crash);
    FaultEvent degrade;
    degrade.kind = FaultKind::kDegrade;
    degrade.time = 10.0;
    degrade.worker = 2;
    degrade.factor = 0.4;
    degrade.duration = 60.0;
    config.fault_plan.events.push_back(degrade);
  }
  if (!opt.trace_out.empty()) {
    char slug[32];
    std::snprintf(slug, sizeof(slug), "%gx", mult);
    config.trace_out = TraceFileForScheme(opt.trace_out, slug);
  }

  char name[32];
  std::snprintf(name, sizeof(name), "%.2gx", mult);
  const Workload empty;  // Open-loop mode generates its own arrivals.
  const ExperimentResult result = RunExperiment(empty, config, name);

  Point point;
  point.mult = mult;
  point.arrival_rate = rate;
  point.submitted = result.submitted;
  point.completed = result.tenants.total_completed;
  point.shed = result.admission.shed;
  point.max_pending_depth = result.admission.max_pending_depth;
  point.level_changes = result.admission.level_changes;
  point.goodput = result.tenants.goodput;
  std::vector<double> jcts;
  double slo_weighted = 0.0;
  for (const JobRecord& r : result.records) {
    if (r.completed()) {
      jcts.push_back(r.jct());
    }
  }
  for (const auto& t : result.tenants.tenants) {
    slo_weighted += t.slo_attainment * t.completed;
  }
  const Summary jct = Summarize(jcts);
  point.p95_jct = jct.p95;
  const double slo_attainment =
      point.completed > 0 ? slo_weighted / point.completed : 1.0;

  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"mult\": %.6g, \"arrival_rate\": %.6g, \"submitted\": %d, "
      "\"completed\": %d, \"shed\": %lld, \"slo_rejects\": %lld, "
      "\"evictions\": %lld, \"deferrals\": %lld, \"goodput\": %.6g, "
      "\"p50_jct\": %.6g, \"p95_jct\": %.6g, \"p99_jct\": %.6g, "
      "\"slo_attainment\": %.6g, \"jain_fairness\": %.6g, "
      "\"max_pending_depth\": %d, \"level_changes\": %lld, "
      "\"avg_admission_latency\": %.6g, \"makespan\": %.6g}",
      mult, rate, point.submitted, point.completed,
      static_cast<long long>(point.shed),
      static_cast<long long>(result.admission.slo_rejects),
      static_cast<long long>(result.admission.evictions),
      static_cast<long long>(result.admission.deferrals), point.goodput, jct.p50,
      jct.p95, jct.p99, slo_attainment, result.tenants.jain_fairness,
      point.max_pending_depth, static_cast<long long>(result.admission.level_changes),
      result.admission.avg_admission_latency(), result.makespan());
  point.json = buf;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opt.jobs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      opt.workers = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--max-pending=", 14) == 0) {
      opt.max_pending = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--shed-policy=", 14) == 0) {
      opt.shed_policy = arg + 14;
    } else if (std::strncmp(arg, "--mults=", 8) == 0) {
      if (!ParseMults(arg + 8, &opt.mults)) {
        std::fprintf(stderr, "bad --mults value '%s'\n", arg + 8);
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
      opt.json_out = arg + 11;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      opt.trace_out = arg + 12;
    } else if (std::strcmp(arg, "--chaos") == 0) {
      opt.chaos = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    }
  }
  ShedPolicy policy;
  if (opt.jobs < 1 || opt.workers < 1 || opt.max_pending < 1 ||
      !ParseShedPolicy(opt.shed_policy, &policy)) {
    std::fprintf(stderr, "flag out of range\n");
    return Usage(argv[0]);
  }

  // Calibration: a closed batch of the same jobs, all submitted at t = 0;
  // its completion rate defines 1x saturation for the sweep.
  const int calibration_jobs = 24;
  Workload batch;
  batch.name = "overload-calibration";
  const SyntheticJobParams job_template = JobTemplate(opt.workers);
  for (int i = 0; i < calibration_jobs; ++i) {
    SyntheticJobParams params = job_template;
    params.type = i % 2 == 0 ? 1 : 2;
    WorkloadJob wj;
    wj.spec = BuildSyntheticJob(params, opt.seed + static_cast<uint64_t>(i) * 7919);
    wj.spec.klass = "openloop";
    wj.submit_time = 0.0;
    batch.jobs.push_back(std::move(wj));
  }
  ExperimentConfig cal_config = UrsaEjfConfig();
  cal_config.cluster.num_workers = opt.workers;
  const ExperimentResult cal = RunExperiment(batch, cal_config, "calibration");
  const double sat_rate = static_cast<double>(calibration_jobs) / cal.makespan();
  std::printf("calibration: %d jobs in %.1f s -> saturation %.3f jobs/s\n",
              calibration_jobs, cal.makespan(), sat_rate);

  std::vector<Point> points;
  Table table({"mult", "rate/s", "submitted", "completed", "shed", "goodput/s",
               "p95JCT", "maxPending", "levelChanges"});
  for (const double mult : opt.mults) {
    points.push_back(RunPoint(opt, mult, mult * sat_rate));
    const Point& p = points.back();
    table.Row()
        .Cell(mult, 2)
        .Cell(p.arrival_rate, 3)
        .Cell(static_cast<int64_t>(p.submitted))
        .Cell(static_cast<int64_t>(p.completed))
        .Cell(p.shed)
        .Cell(p.goodput, 3)
        .Cell(p.p95_jct, 2)
        .Cell(static_cast<int64_t>(p.max_pending_depth))
        .Cell(p.level_changes);
  }
  table.Print("overload sweep (" + std::to_string(opt.workers) + " workers, " +
              std::to_string(opt.jobs) + " arrivals/point" +
              (opt.chaos ? ", chaos on" : "") + ")");

  bool ok = true;
  // Conservation + bounded queue at every point.
  for (const Point& p : points) {
    if (p.completed + static_cast<int>(p.shed) != p.submitted) {
      std::fprintf(stderr, "FAIL: %.2gx: %d submitted != %d completed + %lld shed\n",
                   p.mult, p.submitted, p.completed, static_cast<long long>(p.shed));
      ok = false;
    }
    if (p.max_pending_depth > opt.max_pending) {
      std::fprintf(stderr, "FAIL: %.2gx: pending high-water %d exceeds bound %d\n",
                   p.mult, p.max_pending_depth, opt.max_pending);
      ok = false;
    }
  }
  // Graceful overload: the top multiple keeps >= 90% of the peak goodput.
  double peak = 0.0;
  for (const Point& p : points) {
    peak = std::max(peak, p.goodput);
  }
  const Point& top = points.back();
  if (peak > 0.0 && top.goodput < 0.9 * peak) {
    std::fprintf(stderr,
                 "FAIL: goodput collapsed past saturation: %.3f/s at %.2gx vs "
                 "peak %.3f/s (retention %.1f%% < 90%%)\n",
                 top.goodput, top.mult, peak, 100.0 * top.goodput / peak);
    ok = false;
  } else if (peak > 0.0) {
    std::printf("goodput retention at %.2gx: %.1f%% of peak\n", top.mult,
                100.0 * top.goodput / peak);
  }
  // Determinism: the top multiple re-run with the same seed must serialize
  // identically (JCTs, shed counts, backpressure activity — everything).
  const Point replay = RunPoint(opt, top.mult, top.arrival_rate);
  if (replay.json != top.json) {
    std::fprintf(stderr, "FAIL: re-run of %.2gx diverged from the first run\n", top.mult);
    std::fprintf(stderr, "  first:  %s\n  replay: %s\n", top.json.c_str(),
                 replay.json.c_str());
    ok = false;
  }

  std::FILE* json = std::fopen(opt.json_out.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_out.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"overload\",\n  \"seed\": %llu,\n"
               "  \"workers\": %d,\n  \"jobs_per_point\": %d,\n"
               "  \"max_pending\": %d,\n  \"shed_policy\": \"%s\",\n"
               "  \"chaos\": %s,\n  \"saturation_rate\": %.6g,\n  \"points\": [\n",
               static_cast<unsigned long long>(opt.seed), opt.workers, opt.jobs,
               opt.max_pending, opt.shed_policy.c_str(), opt.chaos ? "true" : "false",
               sat_rate);
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(json, "%s%s\n", points[i].json.c_str(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"goodput_retention\": %.6g,\n  \"deterministic\": %s,\n"
               "  \"pass\": %s\n}\n",
               peak > 0.0 ? top.goodput / peak : 1.0,
               replay.json == top.json ? "true" : "false", ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", opt.json_out.c_str());
  return ok ? 0 : 1;
}
