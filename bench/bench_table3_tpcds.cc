// Reproduces Table 3 and Figure 5: the 200-job TPC-DS workload (deep DAGs,
// many small tasks) under Ursa-EJF, Ursa-SRJF and Y+S.
//
// Paper's shape: Ursa's utilization stays as high as on TPC-H while Y+S
// degrades further (48.6% CPU UE vs 69% on TPC-H) because deep DAGs with
// alternating parallelism leave executors idle within the dynamic-allocation
// timeout, and small partitions amplify per-task overheads; makespan and
// average JCT gaps widen accordingly.
#include "bench/bench_util.h"
#include "src/workloads/tpcds.h"

int main() {
  using namespace ursa;
  TpcdsWorkloadConfig wc;
  wc.num_jobs = 200;
  wc.submit_interval = 5.0;
  wc.seed = 77;
  const Workload workload = MakeTpcdsWorkload(wc);

  std::vector<SchemeRun> schemes = {
      {"Ursa-EJF", UrsaEjfConfig()},
      {"Ursa-SRJF", UrsaSrjfConfig()},
      {"Y+S", SparkLikeConfig()},
  };
  const auto results = RunSchemes(workload, std::move(schemes),
                                  "Table 3: TPC-DS (makespan/avgJCT s, rest %)",
                                  /*sample_step=*/5.0);

  std::printf("\nFigure 5: cluster utilization over the full run\n");
  for (const ExperimentResult& result : results) {
    PrintWindow(result, 0.0, 1600.0);
  }
  return 0;
}
