// Micro-benchmarks (google-benchmark) for the core infrastructure: event
// queue throughput, max-min flow rate recomputation, plan compilation,
// monotask queue operations, and scheduler placement throughput. These bound
// the scheduling latency Ursa can sustain (Obj-4: low-latency scheduling).
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/dag/plan.h"
#include "src/driver/experiment.h"
#include "src/exec/monotask_queue.h"
#include "src/net/flow_simulator.h"
#include "src/sim/simulator.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

void EventQueuePushPop(benchmark::State& state, EventQueueKind kind) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto queue = MakeEventQueue(kind);
    for (int i = 0; i < n; ++i) {
      queue->Push(static_cast<double>((i * 7919) % n), [] {});
    }
    while (!queue->Empty()) {
      benchmark::DoNotOptimize(queue->Pop().when);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueuePushPop(state, EventQueueKind::kBinaryHeap);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);
void BM_CalendarQueuePushPop(benchmark::State& state) {
  EventQueuePushPop(state, EventQueueKind::kCalendar);
}
BENCHMARK(BM_CalendarQueuePushPop)->Arg(1024)->Arg(16384);

void BM_FlowRateRecompute(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  Simulator sim;
  FlowSimulator net(&sim, 20, GbpsToBytesPerSec(10), GbpsToBytesPerSec(10));
  Rng rng(7);
  for (int i = 0; i < flows; ++i) {
    net.StartFlow(static_cast<int>(rng.UniformInt(20u)),
                  static_cast<int>(rng.UniformInt(20u)), 1e12, nullptr);
  }
  for (auto _ : state) {
    net.RecomputeForTest();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowRateRecompute)->Arg(64)->Arg(512);

void BM_PlanCompile(benchmark::State& state) {
  const JobSpec spec = MakeTpchQuery(8, 500.0 * kGiB, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecutionPlan::Build(spec.graph, 3).monotasks().size());
  }
}
BENCHMARK(BM_PlanCompile);

void BM_MonotaskQueueOrdered(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    MonotaskQueue queue;
    for (int i = 0; i < n; ++i) {
      RunnableMonotask mt;
      mt.job = static_cast<JobId>(rng.UniformInt(16u));
      mt.job_priority = static_cast<double>(mt.job);
      mt.intra_key = rng.Uniform(0.0, 1e9);
      mt.input_bytes = 1.0;
      queue.Push(std::move(mt));
    }
    while (!queue.Empty()) {
      benchmark::DoNotOptimize(queue.Pop().input_bytes);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MonotaskQueueOrdered)->Arg(1024)->Arg(8192);

void BM_SchedulerTickTpch(benchmark::State& state) {
  // Wall-clock cost of simulating a 10-job TPC-H burst end to end: bounds
  // the scheduler-side overhead per placement decision.
  TpchWorkloadConfig wc;
  wc.num_jobs = 10;
  wc.submit_interval = 1.0;
  wc.seed = 5;
  const Workload workload = MakeTpchWorkload(wc);
  for (auto _ : state) {
    const ExperimentResult result = RunExperiment(workload, UrsaEjfConfig(), "micro");
    benchmark::DoNotOptimize(result.makespan());
  }
}
BENCHMARK(BM_SchedulerTickTpch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ursa

BENCHMARK_MAIN();
