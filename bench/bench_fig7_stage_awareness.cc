// Reproduces Figure 7 and the stage-awareness ablation of section 5.2:
// stage-aware placement (Algorithm 1's stage bonus) vs picking the single
// highest-scoring task each time, on TPC-H2 under EJF and SRJF.
//
// Paper's shape: per-task placement leaves each stage with a few unplaced
// low-score tasks (stragglers) that block the dependent stages, dropping
// CPU utilization (visible as a dip in the non-stage-aware series) and
// adding ~6-16% to makespan and average JCT.
#include "bench/bench_util.h"
#include "src/workloads/tpch.h"

int main() {
  using namespace ursa;
  const Workload workload = MakeTpch2Workload(1234);

  Table table({"policy", "placement", "makespan", "avgJCT", "delta-ms%", "delta-jct%"});
  std::vector<ExperimentResult> series_results;
  for (OrderingPolicy policy : {OrderingPolicy::kEjf, OrderingPolicy::kSrjf}) {
    double base_makespan = 0.0;
    double base_jct = 0.0;
    for (bool stage_aware : {true, false}) {
      ExperimentConfig config = UrsaEjfConfig();
      config.ursa.policy = policy;
      config.ursa.stage_aware = stage_aware;
      config.sample_step = 2.0;
      const ExperimentResult result =
          RunExperiment(workload, config,
                        std::string(OrderingPolicyName(policy)) +
                            (stage_aware ? "-stage-aware" : "-per-task"));
      if (stage_aware) {
        base_makespan = result.makespan();
        base_jct = result.avg_jct();
      }
      table.Row()
          .Cell(OrderingPolicyName(policy))
          .Cell(stage_aware ? "stage-aware" : "per-task")
          .Cell(result.makespan(), 2)
          .Cell(result.avg_jct(), 2)
          .Cell(stage_aware ? 0.0 : 100.0 * (result.makespan() - base_makespan) / base_makespan,
                2)
          .Cell(stage_aware ? 0.0 : 100.0 * (result.avg_jct() - base_jct) / base_jct, 2);
      if (policy == OrderingPolicy::kEjf) {
        series_results.push_back(result);
      }
    }
  }
  table.Print("Figure 7 / section 5.2: stage-aware vs per-task placement (TPC-H2)");
  std::printf("\nFigure 7 series (EJF): stage-aware then per-task\n");
  for (const ExperimentResult& result : series_results) {
    PrintWindow(result, 0.0, 400.0);
  }
  return 0;
}
