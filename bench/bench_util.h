// Shared helpers for the experiment benches: run a workload under several
// schemes and print the paper-style table plus (optionally) utilization
// series in CSV form.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/table.h"
#include "src/driver/experiment.h"

namespace ursa {

struct SchemeRun {
  std::string name;
  ExperimentConfig config;
};

// Runs every scheme over the workload and prints the Table 2/3/4-style
// summary. Returns the results in scheme order.
inline std::vector<ExperimentResult> RunSchemes(const Workload& workload,
                                                std::vector<SchemeRun> schemes,
                                                const std::string& title,
                                                double sample_step = 0.0) {
  std::vector<ExperimentResult> results;
  Table table({"scheme", "makespan", "avgJCT", "UEcpu", "SEcpu", "UEmem", "SEmem"});
  for (SchemeRun& scheme : schemes) {
    scheme.config.sample_step = sample_step;
    ExperimentResult result = RunExperiment(workload, scheme.config, scheme.name);
    table.Row()
        .Cell(scheme.name)
        .Cell(result.makespan(), 0)
        .Cell(result.avg_jct(), 2)
        .Cell(result.efficiency.ue_cpu)
        .Cell(result.efficiency.se_cpu)
        .Cell(result.efficiency.ue_mem)
        .Cell(result.efficiency.se_mem);
    results.push_back(std::move(result));
  }
  table.Print(title);
  return results;
}

// Prints a utilization window of a result as CSV series rows.
inline void PrintWindow(const ExperimentResult& result, double t0, double t1) {
  const auto& s = result.series;
  if (s.step <= 0.0) {
    return;
  }
  const size_t lo =
      static_cast<size_t>(std::max(0.0, (t0 - s.t0) / s.step));
  const size_t hi = std::min(
      s.cpu.size(), static_cast<size_t>(std::max(0.0, (t1 - s.t0) / s.step)));
  std::printf("series,%s,t,cpu,mem,net\n", result.scheme.c_str());
  for (size_t i = lo; i < hi; ++i) {
    std::printf("%s,%.1f,%.1f,%.1f,%.1f\n", result.scheme.c_str(),
                s.t0 + static_cast<double>(i) * s.step, s.cpu[i], s.mem[i], s.net[i]);
  }
}

}  // namespace ursa

#endif  // BENCH_BENCH_UTIL_H_
