// Shared helpers for the experiment benches: run a workload under several
// schemes and print the paper-style table plus (optionally) utilization
// series in CSV form.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/table.h"
#include "src/driver/experiment.h"
#include "src/obs/trace.h"

namespace ursa {

struct SchemeRun {
  std::string name;
  ExperimentConfig config;
};

// Tracing options shared by the bench binaries; filled from the standard
// --trace-out=FILE / --trace-sample=N / --trace-capacity=EVENTS flags.
struct BenchTraceOptions {
  std::string out;  // Chrome trace JSON path ("" = tracing off).
  int sample = 1;
  size_t capacity = size_t{1} << 20;
  bool enabled() const { return !out.empty(); }
};

// Parses the trace flags out of a bench's argv. Returns false (after
// printing usage) on any unrecognized argument.
inline bool ParseBenchTraceFlags(int argc, char** argv, BenchTraceOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      opts->out = arg + 12;
    } else if (std::strncmp(arg, "--trace-sample=", 15) == 0) {
      opts->sample = std::atoi(arg + 15);
    } else if (std::strncmp(arg, "--trace-capacity=", 17) == 0) {
      opts->capacity = std::strtoull(arg + 17, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out=FILE] [--trace-sample=N] "
                   "[--trace-capacity=EVENTS]\n",
                   argv[0]);
      return false;
    }
  }
  return true;
}

// Per-scheme trace file name: inserts "-<scheme>" before the extension so a
// multi-scheme bench writes one loadable trace per scheme.
inline std::string TraceFileForScheme(const std::string& out, const std::string& scheme) {
  const size_t dot = out.rfind('.');
  if (dot == std::string::npos || out.find('/', dot) != std::string::npos) {
    return out + "-" + scheme;
  }
  return out.substr(0, dot) + "-" + scheme + out.substr(dot);
}

// Runs every scheme over the workload and prints the Table 2/3/4-style
// summary. Returns the results in scheme order. With tracing enabled, each
// scheme writes its own Chrome trace file and prints the tracer summary.
inline std::vector<ExperimentResult> RunSchemes(const Workload& workload,
                                                std::vector<SchemeRun> schemes,
                                                const std::string& title,
                                                double sample_step = 0.0,
                                                const BenchTraceOptions* trace = nullptr) {
  std::vector<ExperimentResult> results;
  Table table({"scheme", "makespan", "avgJCT", "UEcpu", "SEcpu", "UEmem", "SEmem"});
  for (SchemeRun& scheme : schemes) {
    scheme.config.sample_step = sample_step;
    if (trace != nullptr && trace->enabled()) {
      scheme.config.trace_out = TraceFileForScheme(trace->out, scheme.name);
      scheme.config.trace_sample = trace->sample;
      scheme.config.trace_capacity = trace->capacity;
    }
    ExperimentResult result = RunExperiment(workload, scheme.config, scheme.name);
    table.Row()
        .Cell(scheme.name)
        .Cell(result.makespan(), 0)
        .Cell(result.avg_jct(), 2)
        .Cell(result.efficiency.ue_cpu)
        .Cell(result.efficiency.se_cpu)
        .Cell(result.efficiency.ue_mem)
        .Cell(result.efficiency.se_mem);
    results.push_back(std::move(result));
  }
  table.Print(title);
  for (const ExperimentResult& result : results) {
    // No-op for fault-free runs; otherwise includes recovery work and the
    // speculation outcome/wasted-work tables.
    MetricsCollector::PrintFaultReport(result.faults, result.scheme);
  }
  for (const ExperimentResult& result : results) {
    if (result.trace != nullptr) {
      result.trace->PrintSummary(result.scheme);
    }
  }
  return results;
}

// Prints a utilization window of a result as CSV series rows.
inline void PrintWindow(const ExperimentResult& result, double t0, double t1) {
  const auto& s = result.series;
  if (s.step <= 0.0) {
    return;
  }
  const size_t lo =
      static_cast<size_t>(std::max(0.0, (t0 - s.t0) / s.step));
  const size_t hi = std::min(
      s.cpu.size(), static_cast<size_t>(std::max(0.0, (t1 - s.t0) / s.step)));
  std::printf("series,%s,t,cpu,mem,net\n", result.scheme.c_str());
  for (size_t i = lo; i < hi; ++i) {
    std::printf("%s,%.1f,%.1f,%.1f,%.1f\n", result.scheme.c_str(),
                s.t0 + static_cast<double>(i) * s.step, s.cpu[i], s.mem[i], s.net[i]);
  }
}

}  // namespace ursa

#endif  // BENCH_BENCH_UTIL_H_
