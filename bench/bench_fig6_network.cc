// Reproduces Figure 6 and the network-awareness ablation of section 5.2, on
// the TPC-H2 workload.
//
// Part 1 (ablation): ignoring network demands in task placement collocates
// large network monotasks, whose contention blocks dependent CPU monotasks -
// makespan and average JCT degrade (paper: 650/383 s -> 613/339 s when
// network demands are considered). The per-worker network/CPU utilization
// spread stays small when network is considered (paper: ~3%).
//
// Part 2 (Figure 6): with 1 Gbps links the network becomes the bottleneck -
// Ursa drives network utilization high while CPU starves; at 4 Gbps the
// bottleneck switches back to CPU. Ursa maximizes whichever resource is the
// bottleneck.
#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/workloads/tpch.h"

int main() {
  using namespace ursa;
  const Workload workload = MakeTpch2Workload(1234);

  {
    Table table({"placement", "makespan", "avgJCT", "cpu-imb", "net-imb"});
    for (bool consider : {false, true}) {
      ExperimentConfig config = UrsaEjfConfig();
      config.ursa.consider_network = consider;
      const ExperimentResult result = RunExperiment(
          workload, config, consider ? "network-aware" : "network-ignored");
      table.Row()
          .Cell(result.scheme)
          .Cell(result.makespan(), 2)
          .Cell(result.avg_jct(), 2)
          .Cell(result.efficiency.cpu_imbalance, 2)
          .Cell(result.efficiency.net_imbalance, 2);
    }
    table.Print("Section 5.2: effect of considering network demands (TPC-H2)");
  }

  std::printf("\nFigure 6: bottleneck switching with link bandwidth\n");
  Table table({"bandwidth", "makespan", "avg-cpu%", "avg-net%"});
  std::vector<ExperimentResult> series_results;
  for (double gbps : {1.0, 4.0, 10.0}) {
    ExperimentConfig config = UrsaEjfConfig();
    config.cluster.uplink_bytes_per_sec = GbpsToBytesPerSec(gbps);
    config.cluster.downlink_bytes_per_sec = GbpsToBytesPerSec(gbps);
    config.sample_step = 2.0;
    const ExperimentResult result = RunExperiment(
        workload, config, std::to_string(static_cast<int>(gbps)) + "Gbps");
    double cpu = 0.0;
    double net = 0.0;
    for (size_t i = 0; i < result.series.cpu.size(); ++i) {
      cpu += result.series.cpu[i];
      net += result.series.net[i];
    }
    const double n = std::max<size_t>(result.series.cpu.size(), 1);
    table.Row()
        .Cell(result.scheme)
        .Cell(result.makespan(), 2)
        .Cell(cpu / n, 1)
        .Cell(net / n, 1);
    series_results.push_back(result);
  }
  table.Print("");
  for (const ExperimentResult& result : series_results) {
    PrintWindow(result, 0.0, 600.0);
  }
  return 0;
}
