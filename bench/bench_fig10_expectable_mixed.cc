// Reproduces Figure 10 (section 5.3, setting 2): 20 Type 1 and 20 Type 2
// synthetic jobs submitted alternately, under both EJF and SRJF, comparing
// actual JCTs against the expected JCTs of an ideal fine-grained schedule
// (one job's CPU phase at a time, network phases overlapping freely).
//
// Paper's shape: actual JCTs track the expected curve closely for both
// policies; under SRJF the small Type 2 jobs complete much earlier and
// Type 1 jobs later, reshaping the curve without losing throughput.
#include "bench/bench_util.h"
#include "src/workloads/synthetic.h"

int main() {
  using namespace ursa;
  const int kEach = 20;
  const Workload workload = MakeSyntheticMixedWorkload(kEach, 901);

  // Per-type single-job phase profile for the expected-JCT model.
  double jct[2];
  for (int type : {1, 2}) {
    Workload single;
    single.name = "probe";
    WorkloadJob job;
    SyntheticJobParams params;
    params.type = type;
    job.spec = BuildSyntheticJob(params, 901);
    single.jobs.push_back(std::move(job));
    jct[type - 1] = RunExperiment(single, UrsaEjfConfig(), "probe").records[0].jct();
  }

  std::vector<AlternatingJobModel> models;
  for (int i = 0; i < 2 * kEach; ++i) {
    AlternatingJobModel model;
    const int type = (i % 2 == 0) ? 1 : 2;
    // Stage CPU phase dominates; the single-job JCT splits 5 stages into
    // ~62% CPU and ~38% network for both types (see bench_fig8).
    model.stages = 5;
    model.cpu_phase = jct[type - 1] / 5.0 * 0.62;
    model.net_phase = jct[type - 1] / 5.0 * 0.38;
    models.push_back(model);
  }

  for (OrderingPolicy policy : {OrderingPolicy::kEjf, OrderingPolicy::kSrjf}) {
    ExperimentConfig config =
        policy == OrderingPolicy::kEjf ? UrsaEjfConfig() : UrsaSrjfConfig();
    const ExperimentResult result =
        RunExperiment(workload, config, OrderingPolicyName(policy));
    const std::vector<double> expected =
        ExpectedJctsIdealAlternating(models, policy == OrderingPolicy::kSrjf);
    std::printf("Figure 10 (%s): job,type,actual,expected\n", OrderingPolicyName(policy));
    double err = 0.0;
    for (int i = 0; i < 2 * kEach; ++i) {
      const double actual = result.records[static_cast<size_t>(i)].jct();
      std::printf("%d,%d,%.1f,%.1f\n", i, (i % 2 == 0) ? 1 : 2, actual,
                  expected[static_cast<size_t>(i)]);
      err += std::abs(actual - expected[static_cast<size_t>(i)]) /
             std::max(expected[static_cast<size_t>(i)], 1.0);
    }
    std::printf("%s mean |actual-expected|/expected: %.3f\n\n", OrderingPolicyName(policy),
                err / (2 * kEach));
  }
  return 0;
}
