// Reproduces Figure 1: per-machine resource utilization patterns of single
// jobs on different systems.
//
//   1a LR on Petuum   (BSP runtime)   1b LR on Spark   (Y+S, single job)
//   1c CC on Gemini   (BSP runtime)   1d CC on Spark
//   1e Q14 on Spark                   1f Q14 on Tez
//   1g Q8 on Spark                    1h Q8 on Tez
//
// Paper's shape: ML/graph jobs alternate regularly between near-full CPU and
// network phases (1a-1d); OLAP queries fluctuate irregularly with skewed
// intermediates (1e-1h). Either way, containers sized at peak demand leave
// resources idle in the troughs - the motivation for monotask scheduling.
#include "bench/bench_util.h"
#include "src/baselines/bsp_runtime.h"
#include "src/common/units.h"
#include "src/workloads/graph.h"
#include "src/workloads/ml.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

void RunBsp(const std::string& label, const BspJobConfig& config) {
  Simulator sim;
  Cluster cluster(&sim, ClusterConfig{});
  BspRuntime bsp(&sim, &cluster, config, nullptr);
  bsp.Run();
  sim.Run();
  const double end = bsp.finish_time();
  const auto series = MetricsCollector::Sample(cluster, 0.0, end, 0.25);
  PrintSeriesCsv(label, 0.0, 0.25, series.cpu, series.mem, series.net);
}

void RunSingleJob(const std::string& label, JobSpec spec, const ExperimentConfig& base) {
  Workload workload;
  workload.name = label;
  WorkloadJob job;
  job.spec = std::move(spec);
  workload.jobs.push_back(std::move(job));
  ExperimentConfig config = base;
  config.sample_step = 0.5;
  const ExperimentResult result = RunExperiment(workload, config, label);
  PrintWindow(result, 0.0, result.records[0].finish_time);
}

}  // namespace
}  // namespace ursa

int main() {
  using namespace ursa;

  // 1a: LR on Petuum - regular BSP alternation, ~2.5 s compute + sync.
  BspJobConfig petuum;
  petuum.iterations = 12;
  petuum.compute_bytes_per_worker = 2.5 * 32 * 250e6;  // ~2.5 s on 32 cores.
  petuum.sync_bytes_per_worker = 0.6 * GbpsToBytesPerSec(10.0);
  petuum.compute_core_fraction = 0.95;
  petuum.resident_memory_per_worker = 24.0 * kGiB;
  RunBsp("fig1a-lr-petuum", petuum);

  // 1c: CC on Gemini - shorter, slightly lower CPU peaks.
  BspJobConfig gemini;
  gemini.iterations = 10;
  gemini.compute_bytes_per_worker = 1.2 * 32 * 250e6;
  gemini.sync_bytes_per_worker = 0.45 * GbpsToBytesPerSec(10.0);
  gemini.compute_core_fraction = 0.85;
  gemini.resident_memory_per_worker = 16.0 * kGiB;
  RunBsp("fig1c-cc-gemini", gemini);

  // 1b/1d: LR and CC on the Spark-like executor model.
  RunSingleJob("fig1b-lr-spark", BuildMlJob(LrParams(), 11), SparkLikeConfig());
  RunSingleJob("fig1d-cc-spark", BuildGraphJob(CcParams(), 13), SparkLikeConfig());

  // 1e-1h: Q14 and Q8 on Spark-like and Tez-like runtimes.
  RunSingleJob("fig1e-q14-spark", MakeTpchQuery(14, 200.0 * kGiB, 15), SparkLikeConfig());
  RunSingleJob("fig1f-q14-tez", MakeTpchQuery(14, 200.0 * kGiB, 15), TezLikeConfig());
  RunSingleJob("fig1g-q8-spark", MakeTpchQuery(8, 200.0 * kGiB, 17), SparkLikeConfig());
  RunSingleJob("fig1h-q8-tez", MakeTpchQuery(8, 200.0 * kGiB, 17), TezLikeConfig());
  return 0;
}
