// Reproduces Table 1: the best achievable CPU utilization efficiency of the
// executor model for single jobs, with containers tuned to peak demands.
// UE = (total CPU time used by the job) / (allocated cores x JCT).
//
// Paper's shape: even with ideal container sizing, Spark reaches only
// 14-62% CPU UE (LR worst: long container lifetimes vs short compute
// bursts), Tez lower still on the queries it runs (N/A for LR/CC, matching
// the paper).
#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/workloads/graph.h"
#include "src/workloads/ml.h"
#include "src/workloads/tpch.h"

namespace ursa {
namespace {

double SingleJobUe(JobSpec spec, const ExperimentConfig& base) {
  Workload workload;
  workload.name = "single";
  WorkloadJob job;
  job.spec = std::move(spec);
  workload.jobs.push_back(std::move(job));
  const ExperimentResult result = RunExperiment(workload, base, "single");
  return result.efficiency.ue_cpu;
}

}  // namespace
}  // namespace ursa

int main() {
  using namespace ursa;
  Table table({"system", "LR", "CC", "TPC-H Q14", "TPC-H Q8"});
  table.Row()
      .Cell("Spark")
      .Cell(SingleJobUe(BuildMlJob(LrParams(), 21), SparkLikeConfig()), 2)
      .Cell(SingleJobUe(BuildGraphJob(CcParams(), 23), SparkLikeConfig()), 2)
      .Cell(SingleJobUe(MakeTpchQuery(14, 200.0 * kGiB, 25), SparkLikeConfig()), 2)
      .Cell(SingleJobUe(MakeTpchQuery(8, 200.0 * kGiB, 27), SparkLikeConfig()), 2);
  table.Row()
      .Cell("Tez")
      .Cell("N/A")
      .Cell("N/A")
      .Cell(SingleJobUe(MakeTpchQuery(14, 200.0 * kGiB, 25), TezLikeConfig()), 2)
      .Cell(SingleJobUe(MakeTpchQuery(8, 200.0 * kGiB, 27), TezLikeConfig()), 2);
  table.Print("Table 1: single-job CPU utilization efficiency (%)");
  return 0;
}
