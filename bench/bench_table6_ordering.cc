// Reproduces Table 6: the contribution of job ordering (JO) and monotask
// ordering (MO) to enforcing EJF and SRJF, on the TPC-H2 workload.
//
// Paper's shape: MO alone is more effective than JO alone (queue ordering
// directly controls both resource allocation and monotask execution), and
// JO+MO is best; SRJF gives worse makespan than EJF in exchange for better
// average JCT.
#include "bench/bench_util.h"
#include "src/workloads/tpch.h"

int main() {
  using namespace ursa;
  const Workload workload = MakeTpch2Workload(1234);

  Table table({"setting", "makespan(EJF)", "avgJCT(EJF)", "makespan(SRJF)", "avgJCT(SRJF)"});
  struct Setting {
    const char* name;
    bool jo;
    bool mo;
  };
  for (const Setting& setting :
       {Setting{"JO", true, false}, Setting{"MO", false, true}, Setting{"JO+MO", true, true}}) {
    double makespan[2];
    double jct[2];
    int i = 0;
    for (OrderingPolicy policy : {OrderingPolicy::kEjf, OrderingPolicy::kSrjf}) {
      ExperimentConfig config = UrsaEjfConfig();
      config.ursa.policy = policy;
      config.ursa.enable_job_ordering = setting.jo;
      config.ursa.enable_monotask_ordering = setting.mo;
      const ExperimentResult result = RunExperiment(
          workload, config,
          std::string(setting.name) + "-" + OrderingPolicyName(policy));
      makespan[i] = result.makespan();
      jct[i] = result.avg_jct();
      ++i;
    }
    table.Row()
        .Cell(setting.name)
        .Cell(makespan[0], 2)
        .Cell(jct[0], 2)
        .Cell(makespan[1], 2)
        .Cell(jct[1], 2);
  }
  table.Print("Table 6: job/task ordering on TPC-H2 (sec)");
  return 0;
}
