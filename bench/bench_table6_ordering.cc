// Reproduces Table 6: the contribution of job ordering (JO) and monotask
// ordering (MO) to enforcing the registered ordering policies, on the
// TPC-H2 workload.
//
// Paper's shape: MO alone is more effective than JO alone (queue ordering
// directly controls both resource allocation and monotask execution), and
// JO+MO is best; SRJF gives worse makespan than EJF in exchange for better
// average JCT.
//
// The policy columns come from OrderingPolicyRegistry() (DESIGN.md section
// 13), so a newly registered ordering policy shows up in the table without
// touching this bench.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/tpch.h"

int main() {
  using namespace ursa;
  const Workload workload = MakeTpch2Workload(1234);
  const std::vector<OrderingPolicyInfo>& policies = OrderingPolicyRegistry();

  std::vector<std::string> headers = {"setting"};
  for (const OrderingPolicyInfo& info : policies) {
    headers.push_back(std::string("makespan(") + info.name + ")");
    headers.push_back(std::string("avgJCT(") + info.name + ")");
  }
  Table table(headers);

  struct Setting {
    const char* name;
    bool jo;
    bool mo;
  };
  for (const Setting& setting :
       {Setting{"JO", true, false}, Setting{"MO", false, true}, Setting{"JO+MO", true, true}}) {
    Table& row = table.Row().Cell(setting.name);
    for (const OrderingPolicyInfo& info : policies) {
      ExperimentConfig config = UrsaOrderingConfig(info.policy);
      config.ursa.enable_job_ordering = setting.jo;
      config.ursa.enable_monotask_ordering = setting.mo;
      const ExperimentResult result =
          RunExperiment(workload, config, std::string(setting.name) + "-" + info.name);
      row.Cell(result.makespan(), 2).Cell(result.avg_jct(), 2);
    }
  }
  table.Print("Table 6: job/task ordering on TPC-H2 (sec)");
  return 0;
}
