// Reproduces Table 2 and Figure 4: the 200-job TPC-H workload (one job
// every 5 s) under Ursa-EJF, Ursa-SRJF, Y+S (Spark-like executor model on a
// YARN-like RM) and Y+T (Tez-like).
//
// Paper's result shape to compare against (Table 2): Ursa achieves ~99% CPU
// UE vs 69%/59% for Y+S/Y+T; makespan Ursa < Y+S < Y+T; SRJF trades a bit of
// makespan for much better average JCT; Ursa's memory UE roughly doubles
// Y+S's. Figure 4: Ursa's cluster CPU utilization is consistently high,
// Y+S/Y+T fluctuate heavily (printed as CSV series over a 10-minute window).
#include "bench/bench_util.h"
#include "src/workloads/tpch.h"

int main(int argc, char** argv) {
  using namespace ursa;
  BenchTraceOptions trace;
  if (!ParseBenchTraceFlags(argc, argv, &trace)) {
    return 2;
  }
  TpchWorkloadConfig wc;
  wc.num_jobs = 200;
  wc.submit_interval = 5.0;
  wc.seed = 42;
  const Workload workload = MakeTpchWorkload(wc);

  std::vector<SchemeRun> schemes = {
      {"Ursa-EJF", UrsaEjfConfig()},
      {"Ursa-SRJF", UrsaSrjfConfig()},
      {"Y+S", SparkLikeConfig()},
      {"Y+T", TezLikeConfig()},
  };
  const auto results =
      RunSchemes(workload, std::move(schemes), "Table 2: TPC-H (makespan/avgJCT s, rest %)",
                 /*sample_step=*/5.0, &trace);

  std::printf("\nFigure 4: cluster utilization, 10-minute window [1000s, 1600s]\n");
  for (const ExperimentResult& result : results) {
    PrintWindow(result, 1000.0, 1600.0);
  }
  return 0;
}
