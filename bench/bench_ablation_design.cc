// Ablations of Ursa's design knobs that the paper fixes by construction
// (no paper table corresponds to this bench; it exercises the trade-offs
// sections 4.2.2 / 4.2.3 discuss):
//
//  * scheduling interval (and with it EPT): shorter intervals give lower
//    scheduling latency (Obj-4) at more scheduler work; overly long
//    intervals leave resources idle between batches;
//  * per-worker network monotask concurrency (paper: "a small concurrency
//    of 1 to 4"): 1 underuses the downlink when senders are slow, large
//    values recreate the contention the limit exists to avoid;
//  * the 16 KB small-transfer bypass: without it, latency-sensitive tiny
//    transfers queue behind bulk shuffles.
#include "bench/bench_util.h"
#include "src/workloads/tpch.h"

int main() {
  using namespace ursa;
  const Workload workload = MakeTpch2Workload(1234);

  {
    Table table({"interval(s)", "makespan", "avgJCT", "SEcpu"});
    for (double interval : {0.1, 0.25, 0.5, 1.0, 2.0}) {
      ExperimentConfig config = UrsaEjfConfig();
      config.ursa.scheduling_interval = interval;
      const ExperimentResult result = RunExperiment(workload, config, "interval");
      table.Row()
          .Cell(interval, 2)
          .Cell(result.makespan(), 2)
          .Cell(result.avg_jct(), 2)
          .Cell(result.efficiency.se_cpu, 2);
    }
    table.Print("Ablation: scheduling interval / EPT (TPC-H2, EJF)");
  }
  {
    Table table({"net-concurrency", "makespan", "avgJCT"});
    for (int concurrency : {1, 2, 4, 8}) {
      ExperimentConfig config = UrsaEjfConfig();
      config.cluster.worker.network_concurrency = concurrency;
      const ExperimentResult result = RunExperiment(workload, config, "conc");
      table.Row()
          .Cell(static_cast<int64_t>(concurrency))
          .Cell(result.makespan(), 2)
          .Cell(result.avg_jct(), 2);
    }
    table.Print("Ablation: network monotask concurrency (section 4.2.3)");
  }
  {
    Table table({"small-bypass", "makespan", "avgJCT"});
    for (bool bypass : {true, false}) {
      ExperimentConfig config = UrsaEjfConfig();
      config.cluster.worker.small_transfer_bypass_bytes = bypass ? 16.0 * 1024 : 0.0;
      const ExperimentResult result = RunExperiment(workload, config, "bypass");
      table.Row()
          .Cell(bypass ? "16KB" : "off")
          .Cell(result.makespan(), 2)
          .Cell(result.avg_jct(), 2);
    }
    table.Print("Ablation: latency-sensitive small-transfer bypass");
  }
  return 0;
}
