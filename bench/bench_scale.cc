// Scheduler-core scaling benchmark (DESIGN.md section 12): a worker-count
// sweep measuring simulator throughput (events/sec), placement throughput
// (placements/sec), and p99/max per-tick wall latency under the two hot-path
// configurations:
//
//   fast — incremental load maintenance + bucketed placement scan + calendar
//          event queue (the defaults);
//   seed — per-tick full load rebuild + linear BestWorker scan + binary-heap
//          queue (the original implementation, kept as the reference).
//
// The workload is placement-stress by design: many single-stage CPU-only
// jobs with wide fan-out, so the scheduler's per-task worker scan — O(W) per
// task in the seed — dominates, rather than the shuffle/flow machinery the
// two configurations share. Both modes run the same seeded workload and must
// produce identical schedules (asserted on the shared 300-worker point).
//
// Default (CI smoke): fast@{100,300} + seed@300. --full extends the sweep to
// fast@{1000,3000,10000} + seed@1000 — the 10k-worker point runs >= 1M
// monotasks. A machine-readable summary is written to --json-out (default
// BENCH_scale.json) including `speedup_smoke` (fast/seed events-per-sec at
// 300 workers — the regression-gated figure, machine-independent because
// both sides run on the same host) and, with --full, `speedup_1k` and
// `speedup_10k_vs_seed_1k` (the acceptance figure: the 10k fast run's
// events/sec over the 1k seed run's).
//
//   bench_scale [--seed=N] [--full] [--json-out=FILE] [--baseline=FILE]
//
// With --baseline, the run fails (exit 1) when its speedup_smoke drops more
// than 20% below the baseline file's value.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/synthetic.h"

namespace {

using namespace ursa;

struct Options {
  uint64_t seed = 42;
  bool full = false;
  std::string json_out = "BENCH_scale.json";
  std::string baseline;
};

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--seed=N] [--full] [--json-out=FILE] [--baseline=FILE]\n",
               argv0);
  return 2;
}

struct Row {
  std::string mode;  // "fast" | "seed"
  int workers = 0;
  int jobs = 0;
  int64_t monotasks = 0;
  uint64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  int64_t placed = 0;
  double placements_per_sec = 0.0;
  double p99_tick_ms = 0.0;
  double max_tick_ms = 0.0;
  int64_t ticks = 0;
  int64_t full_rebuilds = 0;
  int64_t load_refreshes = 0;
  int64_t bestworker_calls = 0;
  int64_t workers_scanned = 0;
  int64_t scoring_truncated = 0;
  double makespan = 0.0;
  double avg_jct = 0.0;
};

// Placement-stress workload: `workers`/4 single-stage CPU jobs of 512 tasks
// each, closely staggered. Task count scales linearly with the cluster so
// per-worker load stays constant across sweep points.
Workload MakeScaleWorkload(int workers, uint64_t seed, int* out_jobs) {
  const int jobs = std::max(4, workers / 4);
  *out_jobs = jobs;
  Workload workload;
  workload.name = "scale-" + std::to_string(workers);
  for (int i = 0; i < jobs; ++i) {
    SyntheticJobParams params;
    params.type = i % 2 == 0 ? 1 : 2;
    params.stages = 1;  // CPU-only: no shuffle, placement dominates.
    params.parallelism = 512;
    params.type1_task_bytes = 24.0 * 1024 * 1024;
    params.complexity = 4.0;
    WorkloadJob wj;
    wj.spec = BuildSyntheticJob(params, seed + static_cast<uint64_t>(i) * 7919);
    wj.spec.name += "-" + std::to_string(i);
    wj.submit_time = 0.25 * i;
    workload.jobs.push_back(std::move(wj));
  }
  return workload;
}

Row RunRow(const Options& opt, const std::string& mode, int workers) {
  Row row;
  row.mode = mode;
  row.workers = workers;
  const Workload workload = MakeScaleWorkload(workers, opt.seed, &row.jobs);
  // Every synthetic job here has the same structure, so one compiled plan
  // gives the per-job monotask count.
  row.monotasks = static_cast<int64_t>(
                      Job::Create(0, workload.jobs.front().spec)->plan.monotasks().size()) *
                  row.jobs;

  ExperimentConfig config = UrsaEjfConfig();
  config.cluster.num_workers = workers;
  const bool fast = mode == "fast";
  config.ursa.incremental_loads = fast;
  config.ursa.prune_placement = fast;
  config.queue_kind = fast ? EventQueueKind::kCalendar : EventQueueKind::kBinaryHeap;
  // The candidate budget is a liveness safety valve, not part of the
  // algorithm; lift it so both modes score every candidate and the sweep
  // measures the scan itself.
  config.ursa.max_scored_pairs_per_tick = size_t{1} << 40;
  config.time_limit = 5e6;
  // Tracing captures per-tick wall latency; monotask events are sampled out
  // so the ring retains every tick even on the million-monotask points.
  config.trace = true;
  config.trace_sample = 1 << 20;
  config.trace_capacity = size_t{1} << 22;

  const ExperimentResult result = RunExperiment(workload, config, mode);
  row.events = result.events_fired;
  row.wall_seconds = result.wall_seconds;
  row.events_per_sec =
      row.wall_seconds > 0.0 ? static_cast<double>(row.events) / row.wall_seconds : 0.0;
  row.makespan = result.makespan();
  row.avg_jct = result.avg_jct();
  const UrsaScheduler::SchedulerCounters& sc = result.scheduler_counters;
  row.ticks = sc.ticks;
  row.full_rebuilds = sc.full_rebuilds;
  row.load_refreshes = sc.load_refreshes;
  row.bestworker_calls = sc.bestworker_calls;
  row.workers_scanned = sc.workers_scanned;
  row.scoring_truncated = sc.scoring_truncated;
  const Tracer::TickSummary& ticks = result.trace->tick_summary();
  row.placed = ticks.placed;
  row.placements_per_sec =
      row.wall_seconds > 0.0 ? static_cast<double>(row.placed) / row.wall_seconds : 0.0;
  row.max_tick_ms = ticks.max_wall_us / 1e3;
  std::vector<double> tick_us;
  for (const TraceEvent& event : result.trace->Snapshot()) {
    if (event.kind == TraceEventKind::kTick) {
      tick_us.push_back(event.wall_us);
    }
  }
  if (!tick_us.empty()) {
    std::sort(tick_us.begin(), tick_us.end());
    const size_t idx =
        std::min(tick_us.size() - 1,
                 static_cast<size_t>(0.99 * static_cast<double>(tick_us.size())));
    row.p99_tick_ms = tick_us[idx] / 1e3;
  }
  return row;
}

void AppendRowJson(std::string* out, const Row& r) {
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "    {\"mode\": \"%s\", \"workers\": %d, \"jobs\": %d, "
                "\"monotasks\": %lld, \"events\": %llu, \"wall_seconds\": %.3f, "
                "\"events_per_sec\": %.1f, \"placed\": %lld, "
                "\"placements_per_sec\": %.1f, \"p99_tick_ms\": %.3f, "
                "\"max_tick_ms\": %.3f, \"ticks\": %lld, \"full_rebuilds\": %lld, "
                "\"load_refreshes\": %lld, \"bestworker_calls\": %lld, "
                "\"workers_scanned\": %lld, \"scoring_truncated\": %lld, "
                "\"makespan\": %.3f, \"avg_jct\": %.3f}",
                r.mode.c_str(), r.workers, r.jobs, static_cast<long long>(r.monotasks),
                static_cast<unsigned long long>(r.events), r.wall_seconds,
                r.events_per_sec, static_cast<long long>(r.placed), r.placements_per_sec,
                r.p99_tick_ms, r.max_tick_ms, static_cast<long long>(r.ticks),
                static_cast<long long>(r.full_rebuilds),
                static_cast<long long>(r.load_refreshes),
                static_cast<long long>(r.bestworker_calls),
                static_cast<long long>(r.workers_scanned),
                static_cast<long long>(r.scoring_truncated), r.makespan, r.avg_jct);
  *out += buf;
}

// Pulls `"key": <number>` out of a flat JSON file without a JSON library.
bool ReadJsonNumber(const std::string& path, const char* key, double* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  std::string text;
  char chunk[4096];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, n);
  }
  std::fclose(f);
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

const Row* FindRow(const std::vector<Row>& rows, const char* mode, int workers) {
  for (const Row& r : rows) {
    if (r.mode == mode && r.workers == workers) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--full") == 0) {
      opt.full = true;
    } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
      opt.json_out = arg + 11;
    } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
      opt.baseline = arg + 11;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    }
  }

  struct Point {
    const char* mode;
    int workers;
  };
  std::vector<Point> sweep = {{"fast", 100}, {"fast", 300}, {"seed", 300}};
  if (opt.full) {
    sweep.push_back({"fast", 1000});
    sweep.push_back({"fast", 3000});
    sweep.push_back({"fast", 10000});
    sweep.push_back({"seed", 1000});
  }

  std::vector<Row> rows;
  Table table({"mode", "workers", "monotasks", "events", "wall s", "events/s",
               "placements/s", "p99 tick ms", "scanned"});
  for (const Point& point : sweep) {
    std::printf("running %s @ %d workers...\n", point.mode, point.workers);
    std::fflush(stdout);
    rows.push_back(RunRow(opt, point.mode, point.workers));
    const Row& r = rows.back();
    table.Row()
        .Cell(r.mode)
        .Cell(static_cast<int64_t>(r.workers))
        .Cell(r.monotasks)
        .Cell(static_cast<int64_t>(r.events))
        .Cell(r.wall_seconds, 2)
        .Cell(r.events_per_sec, 0)
        .Cell(r.placements_per_sec, 0)
        .Cell(r.p99_tick_ms, 3)
        .Cell(r.workers_scanned);
  }
  table.Print("scheduler-core scaling sweep (seed " + std::to_string(opt.seed) + ")");

  bool ok = true;
  // Mode equivalence: fast and seed at 300 workers ran the same workload and
  // must produce the same schedule — same placements, same simulated
  // timeline — or one of the hot-path layers changed behavior.
  const Row* fast300 = FindRow(rows, "fast", 300);
  const Row* seed300 = FindRow(rows, "seed", 300);
  if (fast300 != nullptr && seed300 != nullptr) {
    if (fast300->placed != seed300->placed || fast300->events != seed300->events ||
        fast300->makespan != seed300->makespan || fast300->avg_jct != seed300->avg_jct ||
        fast300->bestworker_calls != seed300->bestworker_calls) {
      std::fprintf(stderr,
                   "FAIL: fast and seed diverged at 300 workers "
                   "(placed %lld/%lld, events %llu/%llu, makespan %.6f/%.6f)\n",
                   static_cast<long long>(fast300->placed),
                   static_cast<long long>(seed300->placed),
                   static_cast<unsigned long long>(fast300->events),
                   static_cast<unsigned long long>(seed300->events), fast300->makespan,
                   seed300->makespan);
      ok = false;
    }
  }
  const double speedup_smoke =
      (fast300 != nullptr && seed300 != nullptr && seed300->events_per_sec > 0.0)
          ? fast300->events_per_sec / seed300->events_per_sec
          : 0.0;
  std::printf("speedup_smoke (fast/seed events-per-sec @300): %.2fx\n", speedup_smoke);

  double speedup_1k = 0.0;
  double speedup_10k = 0.0;
  if (opt.full) {
    const Row* fast1k = FindRow(rows, "fast", 1000);
    const Row* fast10k = FindRow(rows, "fast", 10000);
    const Row* seed1k = FindRow(rows, "seed", 1000);
    if (fast1k != nullptr && seed1k != nullptr && seed1k->events_per_sec > 0.0) {
      speedup_1k = fast1k->events_per_sec / seed1k->events_per_sec;
      std::printf("speedup_1k (fast/seed events-per-sec @1000): %.2fx\n", speedup_1k);
    }
    if (fast10k != nullptr && seed1k != nullptr && seed1k->events_per_sec > 0.0) {
      speedup_10k = fast10k->events_per_sec / seed1k->events_per_sec;
      std::printf("speedup_10k_vs_seed_1k: %.2fx (10k run: %lld monotasks)\n", speedup_10k,
                  static_cast<long long>(fast10k->monotasks));
      if (fast10k->monotasks < 1000000) {
        std::fprintf(stderr, "FAIL: 10k-worker point ran %lld monotasks (< 1M)\n",
                     static_cast<long long>(fast10k->monotasks));
        ok = false;
      }
      if (speedup_10k < 10.0) {
        std::fprintf(stderr,
                     "FAIL: 10k fast events/sec is %.2fx the 1k seed run (< 10x)\n",
                     speedup_10k);
        ok = false;
      }
    }
  }

  // Regression gate: the fast/seed ratio is within-host, so it transfers
  // across machines in a way raw events/sec does not.
  if (!opt.baseline.empty()) {
    double base = 0.0;
    if (!ReadJsonNumber(opt.baseline, "speedup_smoke", &base)) {
      std::fprintf(stderr, "FAIL: cannot read speedup_smoke from %s\n",
                   opt.baseline.c_str());
      ok = false;
    } else if (speedup_smoke < 0.8 * base) {
      std::fprintf(stderr,
                   "FAIL: speedup_smoke %.2fx regressed more than 20%% vs baseline %.2fx\n",
                   speedup_smoke, base);
      ok = false;
    } else {
      std::printf("baseline gate: %.2fx vs baseline %.2fx (ok)\n", speedup_smoke, base);
    }
  }

  std::string json = "{\n  \"bench\": \"scale\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"seed\": %llu,\n  \"full\": %s,\n  \"speedup_smoke\": %.3f,\n",
                static_cast<unsigned long long>(opt.seed), opt.full ? "true" : "false",
                speedup_smoke);
  json += buf;
  if (opt.full) {
    std::snprintf(buf, sizeof(buf),
                  "  \"speedup_1k\": %.3f,\n  \"speedup_10k_vs_seed_1k\": %.3f,\n",
                  speedup_1k, speedup_10k);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf), "  \"pass\": %s,\n  \"rows\": [\n", ok ? "true" : "false");
  json += buf;
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendRowJson(&json, rows[i]);
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(opt.json_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s written (%s)\n", opt.json_out.c_str(), ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
