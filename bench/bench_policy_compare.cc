// Policy-framework comparison bench (DESIGN.md section 13): sweeps every
// registered job-ordering policy (EJF, SRJF, Graphene) plus the alternative
// worker-score policy (Tetris dot-product) and the Hugo-style co-location
// learner over the TPC-H, TPC-DS and mixed workloads, and writes a
// machine-readable summary to --json-out (default BENCH_policy.json).
//
// The ordering contenders come from OrderingPolicyRegistry(), so a policy
// registered in src/scheduler/job_ordering.cc is swept here (and appears in
// the committed BENCH_policy.json) without touching this file.
//
// Assertions (exit 1 on failure):
//   - Graphene must beat both EJF and SRJF on mean JCT on the mixed
//     workload (the DAG-aware ordering earns its keep where DAG shapes are
//     heterogeneous).
//   - Re-running Graphene, Tetris-score and Hugo on the mixed workload with
//     the same seed must reproduce the identical schedule (events, makespan,
//     avg JCT) — the policies stay inside the determinism envelope.
//
//   bench_policy_compare [--seed=N] [--jobs=N] [--json-out=FILE]
//                        [--baseline=FILE]
//
// With --baseline, the run fails when its graphene_gain_mixed (the better
// base policy's mean JCT over Graphene's — > 1 means Graphene wins) drops
// more than 20% below the committed baseline's value.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/mixed.h"
#include "src/workloads/tpcds.h"
#include "src/workloads/tpch.h"

namespace {

using namespace ursa;

struct Options {
  uint64_t seed = 42;
  int jobs = 30;
  std::string json_out = "BENCH_policy.json";
  std::string baseline;
};

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--seed=N] [--jobs=N] [--json-out=FILE] [--baseline=FILE]\n",
               argv0);
  return 2;
}

struct Contender {
  std::string name;
  ExperimentConfig config;
};

// The swept policy set: every registered ordering policy under the default
// Algorithm-1 score, plus the score-policy and co-location contenders on top
// of SRJF ordering (so their delta isolates the placement change).
std::vector<Contender> MakeContenders() {
  std::vector<Contender> out;
  for (const OrderingPolicyInfo& info : OrderingPolicyRegistry()) {
    out.push_back({info.name, UrsaOrderingConfig(info.policy)});
  }
  Contender tetris{"TETRIS-SCORE", UrsaSrjfConfig()};
  tetris.config.ursa.score = PlacementScoreKind::kTetrisDot;
  out.push_back(std::move(tetris));
  Contender hugo{"HUGO", UrsaSrjfConfig()};
  hugo.config.ursa.colocation.enabled = true;
  out.push_back(std::move(hugo));
  return out;
}

struct Row {
  std::string workload;
  std::string policy;
  double makespan = 0.0;
  double avg_jct = 0.0;
  double ue_cpu = 0.0;
  double se_cpu = 0.0;
  uint64_t events = 0;
  double wall_seconds = 0.0;
};

Row RunRow(const Workload& workload, const Contender& contender) {
  const ExperimentResult result = RunExperiment(workload, contender.config, contender.name);
  Row row;
  row.workload = workload.name;
  row.policy = contender.name;
  row.makespan = result.makespan();
  row.avg_jct = result.avg_jct();
  row.ue_cpu = result.efficiency.ue_cpu;
  row.se_cpu = result.efficiency.se_cpu;
  row.events = result.events_fired;
  row.wall_seconds = result.wall_seconds;
  return row;
}

void AppendRowJson(std::string* out, const Row& r) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "    {\"workload\": \"%s\", \"policy\": \"%s\", \"makespan\": %.3f, "
                "\"avg_jct\": %.3f, \"ue_cpu\": %.2f, \"se_cpu\": %.2f, "
                "\"events\": %llu, \"wall_seconds\": %.3f}",
                r.workload.c_str(), r.policy.c_str(), r.makespan, r.avg_jct, r.ue_cpu,
                r.se_cpu, static_cast<unsigned long long>(r.events), r.wall_seconds);
  *out += buf;
}

// Pulls `"key": <number>` out of a flat JSON file without a JSON library.
bool ReadJsonNumber(const std::string& path, const char* key, double* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  std::string text;
  char chunk[4096];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, n);
  }
  std::fclose(f);
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

const Row* FindRow(const std::vector<Row>& rows, const std::string& workload,
                   const std::string& policy) {
  for (const Row& r : rows) {
    if (r.workload == workload && r.policy == policy) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opt.jobs = std::atoi(arg + 7);
      if (opt.jobs < 1) {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
      opt.json_out = arg + 11;
    } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
      opt.baseline = arg + 11;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    }
  }

  TpchWorkloadConfig tpch_config;
  tpch_config.num_jobs = opt.jobs;
  tpch_config.seed = opt.seed;
  TpcdsWorkloadConfig tpcds_config;
  tpcds_config.num_jobs = opt.jobs;
  tpcds_config.seed = opt.seed;
  MixedWorkloadConfig mixed_config;
  mixed_config.seed = opt.seed;
  const std::vector<Workload> workloads = {MakeTpchWorkload(tpch_config),
                                           MakeTpcdsWorkload(tpcds_config),
                                           MakeMixedWorkload(mixed_config)};
  const std::string mixed_name = workloads.back().name;

  const std::vector<Contender> contenders = MakeContenders();
  std::vector<Row> rows;
  Table table({"workload", "policy", "makespan", "avgJCT", "UEcpu", "SEcpu"});
  for (const Workload& workload : workloads) {
    for (const Contender& contender : contenders) {
      std::printf("running %s on %s...\n", contender.name.c_str(), workload.name.c_str());
      std::fflush(stdout);
      rows.push_back(RunRow(workload, contender));
      const Row& r = rows.back();
      table.Row()
          .Cell(r.workload)
          .Cell(r.policy)
          .Cell(r.makespan, 1)
          .Cell(r.avg_jct, 2)
          .Cell(r.ue_cpu)
          .Cell(r.se_cpu);
    }
  }
  table.Print("policy comparison (seed " + std::to_string(opt.seed) + ")");

  bool ok = true;

  // The DAG-aware ordering must earn its keep: on the mixed workload (the
  // heterogeneous-DAG case) Graphene beats both base policies on mean JCT.
  const Row* graphene = FindRow(rows, mixed_name, "GRAPHENE");
  const Row* ejf = FindRow(rows, mixed_name, "EJF");
  const Row* srjf = FindRow(rows, mixed_name, "SRJF");
  double gain = 0.0;
  if (graphene == nullptr || ejf == nullptr || srjf == nullptr) {
    std::fprintf(stderr, "FAIL: missing GRAPHENE/EJF/SRJF rows for %s\n", mixed_name.c_str());
    ok = false;
  } else {
    const double best_base = std::min(ejf->avg_jct, srjf->avg_jct);
    gain = graphene->avg_jct > 0.0 ? best_base / graphene->avg_jct : 0.0;
    std::printf("graphene_gain_mixed (best base JCT / graphene JCT): %.3fx\n", gain);
    if (graphene->avg_jct >= ejf->avg_jct || graphene->avg_jct >= srjf->avg_jct) {
      std::fprintf(stderr,
                   "FAIL: Graphene avg JCT %.2f does not beat EJF %.2f and SRJF %.2f "
                   "on %s\n",
                   graphene->avg_jct, ejf->avg_jct, srjf->avg_jct, mixed_name.c_str());
      ok = false;
    }
  }

  // Determinism: the non-default policies re-run on the mixed workload with
  // the same seed must reproduce the identical schedule.
  for (const Contender& contender : contenders) {
    if (contender.name == "EJF" || contender.name == "SRJF") {
      continue;  // Covered by tests/determinism_test.cc since the seed repo.
    }
    const Row* first = FindRow(rows, mixed_name, contender.name);
    const Row rerun = RunRow(workloads.back(), contender);
    if (first == nullptr || first->events != rerun.events ||
        first->makespan != rerun.makespan || first->avg_jct != rerun.avg_jct) {
      std::fprintf(stderr, "FAIL: %s is not deterministic on %s across same-seed reruns\n",
                   contender.name.c_str(), mixed_name.c_str());
      ok = false;
    }
  }
  if (ok) {
    std::printf("determinism recheck: all non-default policies reproduced exactly\n");
  }

  // Regression gate against the committed baseline: Graphene's mixed-bench
  // win must not silently erode.
  if (!opt.baseline.empty()) {
    double base = 0.0;
    if (!ReadJsonNumber(opt.baseline, "graphene_gain_mixed", &base)) {
      std::fprintf(stderr, "FAIL: cannot read graphene_gain_mixed from %s\n",
                   opt.baseline.c_str());
      ok = false;
    } else if (gain < 0.8 * base) {
      std::fprintf(stderr,
                   "FAIL: graphene_gain_mixed %.3fx regressed more than 20%% vs "
                   "baseline %.3fx\n",
                   gain, base);
      ok = false;
    } else {
      std::printf("baseline gate: %.3fx vs baseline %.3fx (ok)\n", gain, base);
    }
  }

  std::string json = "{\n  \"bench\": \"policy\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"seed\": %llu,\n  \"jobs\": %d,\n  \"graphene_gain_mixed\": %.3f,\n"
                "  \"pass\": %s,\n  \"rows\": [\n",
                static_cast<unsigned long long>(opt.seed), opt.jobs, gain,
                ok ? "true" : "false");
  json += buf;
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendRowJson(&json, rows[i]);
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(opt.json_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s written (%s)\n", opt.json_out.c_str(), ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
