// Reproduces Figure 8: CPU and network utilization of a single Type 1 and a
// single Type 2 synthetic job (section 5.3) running alone under Ursa.
//
// Paper's shape: 5 regular cycles of a ~5 s (Type 1) / ~2.5 s (Type 2)
// full-CPU phase followed by a network phase; single-job average CPU
// utilization ~57% (Type 1) and ~50% (Type 2); JCTs ~40 s and ~22 s.
#include "bench/bench_util.h"
#include "src/workloads/synthetic.h"

namespace ursa {
namespace {

void RunType(int type) {
  Workload workload;
  workload.name = "synthetic";
  WorkloadJob job;
  SyntheticJobParams params;
  params.type = type;
  job.spec = BuildSyntheticJob(params, 100 + type);
  workload.jobs.push_back(std::move(job));
  ExperimentConfig config = UrsaEjfConfig();
  config.sample_step = 0.25;
  const std::string label = "fig8-type" + std::to_string(type);
  const ExperimentResult result = RunExperiment(workload, config, label);
  double cpu = 0.0;
  for (double c : result.series.cpu) {
    cpu += c;
  }
  std::printf("%s: JCT %.2f s, avg CPU %.1f%%\n", label.c_str(), result.records[0].jct(),
              cpu / std::max<size_t>(result.series.cpu.size(), 1));
  PrintWindow(result, 0.0, result.records[0].finish_time);
}

}  // namespace
}  // namespace ursa

int main() {
  ursa::RunType(1);
  ursa::RunType(2);
  return 0;
}
