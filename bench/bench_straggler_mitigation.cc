// Straggler-mitigation benchmark (DESIGN.md section 9).
//
// Sweeps degraded-rate severity x fraction of slowed workers on a TPC-H
// workload and compares speculation off vs on for each scenario:
//
//   none          - no degraded workers (control: speculation must be ~free);
//   10% @ 0.2     - 10% of workers at speed factor 0.2 for the whole run;
//   10% @ 0.5, 25% @ 0.2, 25% @ 0.5 - milder / broader variants.
//
// Reported per scenario: makespan, mean/p95 JCT, the speculation counters
// and the wasted duplicate work. The headline numbers: with 10% of workers
// degraded to 0.2 speculation should cut p95 JCT by >= 20%, while the clean
// control should move mean JCT by < 2%.
//
// Exit status 1 if an enabled run under injected stragglers launched zero
// speculative copies (the detection -> mitigation loop is broken).
//
//   bench_straggler_mitigation [--seed=N] [--jobs=N] [--trace-out=FILE]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/fault/fault_injector.h"
#include "src/workloads/tpch.h"

namespace {

struct Scenario {
  std::string name;
  std::string slug;              // Filesystem-safe name for trace files.
  double worker_fraction = 0.0;  // Fraction of workers degraded.
  double factor = 1.0;           // Speed factor of the degraded workers.
};

// Degrades the first `fraction` of the cluster for the whole run. Explicit
// (not MakeRandomFaultPlan) so severity and victim count are exact.
ursa::FaultPlan DegradePlan(int num_workers, double fraction, double factor,
                            double duration) {
  ursa::FaultPlan plan;
  const int victims = static_cast<int>(num_workers * fraction + 0.5);
  for (int w = 0; w < victims; ++w) {
    ursa::FaultEvent e;
    e.kind = ursa::FaultKind::kDegrade;
    e.time = 1.0;
    e.worker = w;
    e.factor = factor;
    e.duration = duration;
    plan.events.push_back(e);
  }
  return plan;
}

std::vector<double> Jcts(const ursa::ExperimentResult& result) {
  std::vector<double> jcts;
  for (const ursa::JobRecord& r : result.records) {
    jcts.push_back(r.jct());
  }
  return jcts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ursa;
  uint64_t seed = 42;
  int jobs = 40;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      std::fprintf(stderr,
                   "usage: bench_straggler_mitigation [--seed=N] [--jobs=N] "
                   "[--trace-out=FILE]\n");
      return 2;
    }
  }

  TpchWorkloadConfig wc;
  wc.num_jobs = jobs;
  wc.submit_interval = 5.0;
  wc.seed = seed;
  const Workload workload = MakeTpchWorkload(wc);
  constexpr int kWorkers = 20;
  constexpr double kDegradeDuration = 1e6;  // Effectively the whole run.

  const std::vector<Scenario> scenarios = {
      {"none", "none", 0.0, 1.0},
      {"10% @ 0.2", "10p-0.2", 0.10, 0.2},
      {"10% @ 0.5", "10p-0.5", 0.10, 0.5},
      {"25% @ 0.2", "25p-0.2", 0.25, 0.2},
      {"25% @ 0.5", "25p-0.5", 0.25, 0.5},
  };

  Table table({"scenario", "spec", "makespan", "meanJCT", "p95JCT", "launched", "won",
               "lost", "cancelled", "wasted(s)"});
  bool counters_ok = true;
  double clean_mean_off = 0.0, clean_mean_on = 0.0;
  double headline_p95_off = 0.0, headline_p95_on = 0.0;
  for (const Scenario& sc : scenarios) {
    const FaultPlan plan =
        DegradePlan(kWorkers, sc.worker_fraction, sc.factor, kDegradeDuration);
    Summary off_summary, on_summary;
    for (const bool spec_on : {false, true}) {
      ExperimentConfig config = UrsaEjfConfig();
      config.cluster.num_workers = kWorkers;
      config.fault_plan = plan;
      config.ursa.spec.enabled = spec_on;
      // Tuned for severe degradation: flag stragglers earlier and allow a
      // deeper duplicate pool than the conservative defaults.
      config.ursa.spec.slowdown_threshold = 1.5;
      config.ursa.spec.budget_fraction = 0.25;
      if (spec_on && !trace_out.empty()) {
        config.trace_out = TraceFileForScheme(trace_out, sc.slug);
      }
      const ExperimentResult result =
          RunExperiment(workload, config, sc.name + (spec_on ? "/spec" : "/base"));
      const Summary jct = Summarize(Jcts(result));
      (spec_on ? on_summary : off_summary) = jct;
      const FaultCounters& f = result.faults;
      table.Row()
          .Cell(sc.name)
          .Cell(spec_on ? "on" : "off")
          .Cell(result.makespan(), 1)
          .Cell(jct.mean, 2)
          .Cell(jct.p95, 2)
          .Cell(static_cast<int64_t>(f.speculations_launched))
          .Cell(static_cast<int64_t>(f.speculations_won))
          .Cell(static_cast<int64_t>(f.speculations_lost))
          .Cell(static_cast<int64_t>(f.speculations_cancelled))
          .Cell(f.total_wasted_seconds(), 2);
      if (spec_on && sc.worker_fraction > 0.0 && f.speculations_launched == 0) {
        std::fprintf(stderr,
                     "FAIL: scenario '%s' injected stragglers but speculation "
                     "launched no copies\n",
                     sc.name.c_str());
        counters_ok = false;
      }
    }
    if (sc.worker_fraction == 0.0) {
      clean_mean_off = off_summary.mean;
      clean_mean_on = on_summary.mean;
    }
    if (sc.name == "10% @ 0.2") {
      headline_p95_off = off_summary.p95;
      headline_p95_on = on_summary.p95;
    }
  }
  table.Print("Straggler mitigation: TPC-H " + std::to_string(jobs) +
              " jobs, degraded workers");

  if (headline_p95_off > 0.0) {
    std::printf("\n10%% @ 0.2: p95 JCT %.2f -> %.2f (%.1f%% lower with speculation)\n",
                headline_p95_off, headline_p95_on,
                100.0 * (headline_p95_off - headline_p95_on) / headline_p95_off);
  }
  if (clean_mean_off > 0.0) {
    std::printf("no stragglers: mean JCT %.2f -> %.2f (%.2f%% delta)\n", clean_mean_off,
                clean_mean_on,
                100.0 * (clean_mean_on - clean_mean_off) / clean_mean_off);
  }
  return counters_ok ? 0 : 1;
}
