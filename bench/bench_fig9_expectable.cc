// Reproduces Figure 9 (section 5.3, setting 1): 40 Type 1 synthetic jobs
// under Ursa-EJF, comparing actual JCTs against the closed-form expected
// JCTs of the ideal fine-grained schedule (jobs pair up; while one job's
// stage computes on all cores, the other's shuffles; j1 finishes at 40 s,
// j2 at 48 s, j3 at 80 s, ...), plus the cluster utilization series showing
// stable, nearly-full CPU use.
#include "bench/bench_util.h"
#include "src/workloads/synthetic.h"

int main() {
  using namespace ursa;
  const int kJobs = 40;
  const Workload workload = MakeSyntheticType1Workload(kJobs, 900);

  // Measure the single-job profile first (defines jct1 / stage1).
  double jct1 = 0.0;
  {
    Workload single;
    single.name = "one";
    WorkloadJob job;
    SyntheticJobParams params;
    params.type = 1;
    job.spec = BuildSyntheticJob(params, 900);
    single.jobs.push_back(std::move(job));
    jct1 = RunExperiment(single, UrsaEjfConfig(), "probe").records[0].jct();
  }
  const double stage1 = jct1 / 5.0;

  ExperimentConfig config = UrsaEjfConfig();
  config.sample_step = 1.0;
  const ExperimentResult result = RunExperiment(workload, config, "ursa-ejf");
  const std::vector<double> expected = ExpectedJctsType1Only(kJobs, jct1, stage1);

  std::printf("Figure 9a: actual vs expected JCT (jct1=%.1f stage1=%.1f)\n", jct1, stage1);
  std::printf("job,actual,expected,ratio\n");
  double worst = 0.0;
  for (int i = 0; i < kJobs; ++i) {
    const double actual = result.records[static_cast<size_t>(i)].jct();
    const double ratio = actual / expected[static_cast<size_t>(i)];
    worst = std::max(worst, ratio);
    std::printf("%d,%.1f,%.1f,%.3f\n", i, actual, expected[static_cast<size_t>(i)], ratio);
  }
  std::printf("worst actual/expected ratio: %.3f (1.0 = ideal)\n", worst);
  std::printf("average CPU SE x UE: %.1f%%\n",
              result.efficiency.se_cpu * result.efficiency.ue_cpu / 100.0);
  std::printf("\nFigure 9b: utilization (first 600 s)\n");
  PrintWindow(result, 0.0, 600.0);
  return 0;
}
