// Chaos benchmark for the fault-tolerance subsystem (section 4.3 and
// DESIGN.md section 14): worker chaos plus control-plane chaos.
//
// A seed-swept summary: for each fault seed the same TPC-H workload runs
// under
//   journal - lossy message layer + a mid-run scheduler crash, recovered
//             from the periodic checkpoint + decision journal;
//   restart - the same plan with journaling off, so the scheduler crash
//             degrades to full restarts of every live job;
// against one clean baseline run (no faults, message layer off). Every run
// also carries worker chaos (a crash+recover cycle and transient failures),
// so recovery paths compose.
//
// The interesting numbers per seed: scheduler recovery time, how many
// monotasks the post-recovery resync re-dispatched, and the JCT overhead of
// each mode against the clean baseline. The gated figure is
// `jct_ratio_journal` — the mean avg-JCT ratio of the journaled chaos runs
// over clean. It is simulated time, so it is machine-independent and only
// moves when scheduling or recovery behavior changes.
//
//   bench_fault_recovery [--seed=N] [--full] [--json-out=FILE]
//                        [--baseline=FILE]
//
// Default (CI smoke): 3 fault seeds on 40 jobs. --full: 5 seeds on 60 jobs.
// With --baseline, the run fails (exit 1) when jct_ratio_journal rises more
// than 20% above the baseline file's value (higher ratio = worse recovery).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/fault_injector.h"
#include "src/workloads/tpch.h"

namespace {

using namespace ursa;

struct Options {
  uint64_t seed = 9;
  bool full = false;
  std::string json_out = "BENCH_fault.json";
  std::string baseline;
};

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--seed=N] [--full] [--json-out=FILE] [--baseline=FILE]\n",
               argv0);
  return 2;
}

struct Row {
  uint64_t fault_seed = 0;
  std::string mode;  // "journal" | "restart"
  double makespan = 0.0;
  double avg_jct = 0.0;
  double jct_ratio = 0.0;  // avg_jct / clean avg_jct.
  int sched_crashes = 0;
  int sched_recoveries = 0;
  double recovery_latency = 0.0;
  int checkpoints = 0;
  long long journal_records = 0;
  int redispatched = 0;
  int fenced = 0;
  int retransmits = 0;
  int full_restarts = 0;
  int tasks_reset = 0;
};

Workload MakeFaultWorkload(const Options& opt) {
  TpchWorkloadConfig wc;
  wc.num_jobs = opt.full ? 60 : 40;
  wc.submit_interval = 5.0;
  wc.seed = 42;
  return MakeTpchWorkload(wc);
}

FaultPlan MakePlan(uint64_t fault_seed, bool with_sched_crash) {
  FaultPlanConfig pc;
  pc.seed = fault_seed;
  pc.num_workers = 20;
  pc.horizon_start = 10.0;
  pc.horizon_end = 200.0;
  pc.crash_recovers = 1;
  pc.transients = 4;
  pc.sched_crash_recovers = with_sched_crash ? 1 : 0;
  pc.min_sched_downtime = 2.0;
  pc.max_sched_downtime = 8.0;
  return MakeRandomFaultPlan(pc);
}

ExperimentConfig ChaosConfig(uint64_t fault_seed, bool journaled) {
  ExperimentConfig config = UrsaEjfConfig();
  config.fault_plan = MakePlan(fault_seed, /*with_sched_crash=*/true);
  config.ursa.ctrl.enabled = true;
  config.ursa.ctrl.seed = fault_seed;
  config.ursa.ctrl.loss_prob = 0.02;
  config.ursa.ctrl.dup_prob = 0.02;
  config.ursa.ctrl.delay_prob = 0.05;
  config.ursa.ctrl.checkpoint_interval = journaled ? 5.0 : 0.0;
  return config;
}

Row RunRow(const Workload& workload, uint64_t fault_seed, bool journaled,
           double clean_avg_jct) {
  Row row;
  row.fault_seed = fault_seed;
  row.mode = journaled ? "journal" : "restart";
  const ExperimentResult result =
      RunExperiment(workload, ChaosConfig(fault_seed, journaled), row.mode);
  row.makespan = result.makespan();
  row.avg_jct = result.avg_jct();
  row.jct_ratio = clean_avg_jct > 0.0 ? row.avg_jct / clean_avg_jct : 0.0;
  const FaultCounters& f = result.faults;
  row.sched_crashes = f.scheduler_crashes;
  row.sched_recoveries = f.scheduler_recoveries;
  row.recovery_latency = f.avg_scheduler_recovery_latency();
  row.checkpoints = f.checkpoints;
  row.journal_records = f.journal_records;
  row.redispatched = f.redispatched_monotasks;
  row.fenced = f.msgs_fenced;
  row.retransmits = f.retransmits;
  row.full_restarts = f.full_restarts;
  row.tasks_reset = f.tasks_reset;
  return row;
}

void AppendRowJson(std::string* out, const Row& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"fault_seed\": %llu, \"mode\": \"%s\", \"makespan\": %.3f, "
                "\"avg_jct\": %.3f, \"jct_ratio\": %.4f, \"sched_crashes\": %d, "
                "\"sched_recoveries\": %d, \"recovery_latency\": %.3f, "
                "\"checkpoints\": %d, \"journal_records\": %lld, "
                "\"redispatched\": %d, \"fenced\": %d, \"retransmits\": %d, "
                "\"full_restarts\": %d, \"tasks_reset\": %d}",
                static_cast<unsigned long long>(r.fault_seed), r.mode.c_str(), r.makespan,
                r.avg_jct, r.jct_ratio, r.sched_crashes, r.sched_recoveries,
                r.recovery_latency, r.checkpoints, r.journal_records, r.redispatched,
                r.fenced, r.retransmits, r.full_restarts, r.tasks_reset);
  *out += buf;
}

// Pulls `"key": <number>` out of a flat JSON file without a JSON library.
bool ReadJsonNumber(const std::string& path, const char* key, double* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  std::string text;
  char chunk[4096];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, n);
  }
  std::fclose(f);
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--full") == 0) {
      opt.full = true;
    } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
      opt.json_out = arg + 11;
    } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
      opt.baseline = arg + 11;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    }
  }

  const Workload workload = MakeFaultWorkload(opt);
  std::printf("running clean baseline (%zu jobs)...\n", workload.jobs.size());
  std::fflush(stdout);
  const ExperimentResult clean = RunExperiment(workload, UrsaEjfConfig(), "clean");
  const double clean_jct = clean.avg_jct();

  const int num_seeds = opt.full ? 5 : 3;
  std::vector<Row> rows;
  Table table({"faultSeed", "mode", "makespan", "avgJCT", "JCTx", "recoveryLat",
               "checkpoints", "redispatched", "fenced", "fullRestarts"});
  bool ok = true;
  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t fault_seed = opt.seed + static_cast<uint64_t>(s);
    for (const bool journaled : {true, false}) {
      std::printf("running %s @ fault seed %llu...\n", journaled ? "journal" : "restart",
                  static_cast<unsigned long long>(fault_seed));
      std::fflush(stdout);
      rows.push_back(RunRow(workload, fault_seed, journaled, clean_jct));
      const Row& r = rows.back();
      table.Row()
          .Cell(static_cast<int64_t>(r.fault_seed))
          .Cell(r.mode)
          .Cell(r.makespan, 1)
          .Cell(r.avg_jct, 2)
          .Cell(r.jct_ratio, 3)
          .Cell(r.recovery_latency, 3)
          .Cell(static_cast<int64_t>(r.checkpoints))
          .Cell(static_cast<int64_t>(r.redispatched))
          .Cell(static_cast<int64_t>(r.fenced))
          .Cell(static_cast<int64_t>(r.full_restarts));
      // Structural checks: every injected scheduler crash recovered, and the
      // journaled mode never fell back to restarting a job from its input.
      if (r.sched_crashes != 1 || r.sched_recoveries != 1) {
        std::fprintf(stderr, "FAIL: seed %llu %s saw %d crashes / %d recoveries\n",
                     static_cast<unsigned long long>(r.fault_seed), r.mode.c_str(),
                     r.sched_crashes, r.sched_recoveries);
        ok = false;
      }
      if (journaled && r.full_restarts > 0) {
        std::fprintf(stderr,
                     "FAIL: journaled recovery at seed %llu full-restarted %d jobs\n",
                     static_cast<unsigned long long>(r.fault_seed), r.full_restarts);
        ok = false;
      }
    }
  }
  table.Print("scheduler crash-recovery sweep (clean avgJCT " +
              std::to_string(clean_jct) + "s)");

  double ratio_journal = 0.0;
  double ratio_restart = 0.0;
  double mean_recovery = 0.0;
  double mean_redispatched = 0.0;
  int journal_rows = 0;
  int restart_rows = 0;
  for (const Row& r : rows) {
    if (r.mode == "journal") {
      ratio_journal += r.jct_ratio;
      mean_recovery += r.recovery_latency;
      mean_redispatched += r.redispatched;
      ++journal_rows;
    } else {
      ratio_restart += r.jct_ratio;
      ++restart_rows;
    }
  }
  if (journal_rows > 0) {
    ratio_journal /= journal_rows;
    mean_recovery /= journal_rows;
    mean_redispatched /= journal_rows;
  }
  if (restart_rows > 0) {
    ratio_restart /= restart_rows;
  }
  std::printf("jct_ratio_journal: %.4fx  jct_ratio_restart: %.4fx  "
              "mean recovery %.3fs  mean redispatched %.1f\n",
              ratio_journal, ratio_restart, mean_recovery, mean_redispatched);
  // Journaled recovery exists to beat the restart fallback; if it ever costs
  // more JCT than restarting everything, the journal path regressed.
  if (journal_rows > 0 && restart_rows > 0 && ratio_journal > ratio_restart) {
    std::fprintf(stderr, "FAIL: journaled recovery (%.4fx) is worse than restarts (%.4fx)\n",
                 ratio_journal, ratio_restart);
    ok = false;
  }

  // Regression gate: jct_ratio_journal is simulated time over simulated
  // time, so it transfers across machines exactly.
  if (!opt.baseline.empty()) {
    double base = 0.0;
    if (!ReadJsonNumber(opt.baseline, "jct_ratio_journal", &base)) {
      std::fprintf(stderr, "FAIL: cannot read jct_ratio_journal from %s\n",
                   opt.baseline.c_str());
      ok = false;
    } else if (ratio_journal > 1.2 * base) {
      std::fprintf(stderr,
                   "FAIL: jct_ratio_journal %.4fx regressed more than 20%% vs "
                   "baseline %.4fx\n",
                   ratio_journal, base);
      ok = false;
    } else {
      std::printf("baseline gate: %.4fx vs baseline %.4fx (ok)\n", ratio_journal, base);
    }
  }

  std::string json = "{\n  \"bench\": \"fault\",\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  \"seed\": %llu,\n  \"full\": %s,\n  \"clean_avg_jct\": %.3f,\n"
                "  \"jct_ratio_journal\": %.4f,\n  \"jct_ratio_restart\": %.4f,\n"
                "  \"mean_recovery_latency\": %.3f,\n  \"mean_redispatched\": %.1f,\n",
                static_cast<unsigned long long>(opt.seed), opt.full ? "true" : "false",
                clean_jct, ratio_journal, ratio_restart, mean_recovery, mean_redispatched);
  json += buf;
  std::snprintf(buf, sizeof(buf), "  \"pass\": %s,\n  \"rows\": [\n", ok ? "true" : "false");
  json += buf;
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendRowJson(&json, rows[i]);
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(opt.json_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s written (%s)\n", opt.json_out.c_str(), ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
