// Chaos benchmark for the fault-tolerance subsystem (section 4.3).
//
// Runs the same TPC-H workload three times on the Ursa scheduler:
//   clean         - no faults (baseline makespan);
//   chaos+lineage - seeded fault plan (crashes, a crash+recover cycle,
//                   transient monotask failures, a degraded-rate window)
//                   with stage-level lineage recovery;
//   chaos+restart - same plan with lineage recovery disabled, so every
//                   affected job restarts from its input checkpoint.
//
// The interesting numbers: the makespan overhead of chaos under each
// recovery mode, and how many tasks lineage recovery re-executed compared
// with the full restarts it avoided (expected well under 50%).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "src/fault/fault_injector.h"
#include "src/workloads/tpch.h"

int main(int argc, char** argv) {
  using namespace ursa;
  uint64_t fault_seed = 9;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      fault_seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: bench_fault_recovery [--seed=N]\n");
      return 2;
    }
  }
  TpchWorkloadConfig wc;
  wc.num_jobs = 60;
  wc.submit_interval = 5.0;
  wc.seed = 42;
  const Workload workload = MakeTpchWorkload(wc);

  FaultPlanConfig pc;
  pc.seed = fault_seed;
  pc.num_workers = 20;
  pc.horizon_start = 10.0;
  pc.horizon_end = 250.0;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.transients = 6;
  pc.degrades = 1;
  const FaultPlan plan = MakeRandomFaultPlan(pc);

  ExperimentConfig clean = UrsaEjfConfig();
  ExperimentConfig chaos_lineage = UrsaEjfConfig();
  chaos_lineage.fault_plan = plan;
  ExperimentConfig chaos_restart = UrsaEjfConfig();
  chaos_restart.fault_plan = plan;
  chaos_restart.ursa.fault.enable_lineage_recovery = false;

  std::vector<SchemeRun> schemes = {
      {"clean", clean},
      {"chaos+lineage", chaos_lineage},
      {"chaos+restart", chaos_restart},
  };
  const auto results = RunSchemes(workload, std::move(schemes),
                                  "Fault recovery: TPC-H 60 jobs, seeded chaos plan");

  const double base = results[0].makespan();
  Table overhead({"scheme", "makespan", "overhead%", "detections", "rejoins", "retries",
                  "escalations", "tasksReset", "fullRestartEquiv", "fullRestarts"});
  for (const ExperimentResult& result : results) {
    const FaultCounters& f = result.faults;
    overhead.Row()
        .Cell(result.scheme)
        .Cell(result.makespan(), 1)
        .Cell(base > 0.0 ? 100.0 * (result.makespan() - base) / base : 0.0, 2)
        .Cell(static_cast<int64_t>(f.detections))
        .Cell(static_cast<int64_t>(f.rejoins))
        .Cell(static_cast<int64_t>(f.retries))
        .Cell(static_cast<int64_t>(f.escalations))
        .Cell(static_cast<int64_t>(f.tasks_reset))
        .Cell(static_cast<int64_t>(f.full_restart_equivalent_tasks))
        .Cell(static_cast<int64_t>(f.full_restarts));
  }
  overhead.Print("Chaos overhead and recovery work");

  const FaultCounters& lineage = results[1].faults;
  std::printf("\navg detection latency: %.3f s, avg recovery latency: %.3f s\n",
              lineage.avg_detection_latency(), lineage.avg_recovery_latency());
  if (lineage.full_restart_equivalent_tasks > 0) {
    std::printf("lineage re-executed %.1f%% of the tasks a full restart would redo\n",
                100.0 * lineage.tasks_reset / lineage.full_restart_equivalent_tasks);
  }
  return 0;
}
