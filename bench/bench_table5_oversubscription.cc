// Reproduces Table 5 (and the straggler analysis around it): CPU
// over-subscription ratios 1 / 2 / 4 for Y+U and Y+S on the Mixed workload.
//
// Paper's shape: ratio 2 improves makespan and average JCT for both systems
// (more containers overlap the fluctuating usage), but ratio 4 brings
// diminishing or negative returns as load imbalance and contention grow; the
// straggler-time-to-JCT ratio increases with the subscription ratio (paper:
// 2.91% -> 6.78% -> 10.69% for Y+U), while the per-worker CPU utilization
// spread stays far above Ursa's ~2%.
#include "bench/bench_util.h"
#include "src/workloads/mixed.h"

int main() {
  using namespace ursa;
  MixedWorkloadConfig wc;
  wc.seed = 2020;
  const Workload workload = MakeMixedWorkload(wc);

  Table table({"scheme", "ratio", "makespan", "avgJCT", "straggler%", "cpu-imb"});
  for (double ratio : {1.0, 2.0, 4.0}) {
    for (const auto& [name, base] :
         std::vector<std::pair<std::string, ExperimentConfig>>{
             {"Y+U", MonoSparkConfig()}, {"Y+S", SparkLikeConfig()}}) {
      ExperimentConfig config = base;
      config.cm.cpu_subscription_ratio = ratio;
      // Smaller containers so up to 4x more fit in memory (paper sets 4 GB
      // for SQL jobs in this experiment).
      config.executor.executor_memory_bytes = 4.0 * 1024 * 1024 * 1024;
      const ExperimentResult result =
          RunExperiment(workload, config, name + "-x" + std::to_string(int(ratio)));
      table.Row()
          .Cell(name)
          .Cell(ratio, 0)
          .Cell(result.makespan(), 0)
          .Cell(result.avg_jct(), 2)
          .Cell(result.straggler_ratio, 2)
          .Cell(result.efficiency.cpu_imbalance, 2);
    }
  }
  // Ursa reference row (ratio column marked "-").
  const ExperimentResult ursa_result = RunExperiment(workload, UrsaEjfConfig(), "Ursa-EJF");
  table.Row()
      .Cell("Ursa-EJF")
      .Cell("-")
      .Cell(ursa_result.makespan(), 0)
      .Cell(ursa_result.avg_jct(), 2)
      .Cell(ursa_result.straggler_ratio, 2)
      .Cell(ursa_result.efficiency.cpu_imbalance, 2);
  table.Print("Table 5: CPU over-subscription on Mixed (sec / %)");
  return 0;
}
