#include <cstdio>
#include "src/common/table.h"
#include "src/driver/experiment.h"
#include "src/workloads/tpch.h"

using namespace ursa;

int main(int argc, char** argv) {
  int jobs = argc > 1 ? atoi(argv[1]) : 60;
  TpchWorkloadConfig wc; wc.num_jobs = jobs; wc.seed = 42;
  Workload w = MakeTpchWorkload(wc);
  Table t({"scheme", "makespan", "avgJCT", "UEcpu", "SEcpu", "UEmem", "SEmem", "imb"});
  for (auto& [name, cfg] : std::vector<std::pair<std::string, ExperimentConfig>>{
        {"Ursa-EJF", UrsaEjfConfig()}, {"Ursa-SRJF", UrsaSrjfConfig()},
        {"Y+S", SparkLikeConfig()}, {"Y+T", TezLikeConfig()}, {"Y+U", MonoSparkConfig()}}) {
    auto r = RunExperiment(w, cfg, name);
    t.Row().Cell(name).Cell(r.makespan(), 0).Cell(r.avg_jct(), 1)
     .Cell(r.efficiency.ue_cpu).Cell(r.efficiency.se_cpu)
     .Cell(r.efficiency.ue_mem).Cell(r.efficiency.se_mem)
     .Cell(r.efficiency.cpu_imbalance);
    fflush(stdout);
  }
  t.Print("TPC-H comparison");
  return 0;
}
