// CLI driver for the determinism lint (tools/detlint/detlint.h).
//
//   detlint [--repo-root DIR] [--allowlist FILE] PATH...
//
// Exit codes: 0 = clean, 1 = findings reported, 2 = usage or IO error.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/detlint/detlint.h"

int main(int argc, char** argv) {
  ursa::detlint::Options options;
  options.repo_root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root" && i + 1 < argc) {
      options.repo_root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      options.allowlist_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: detlint [--repo-root DIR] [--allowlist FILE] PATH...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) {
    std::fprintf(stderr, "detlint: no paths to scan\n");
    return 2;
  }
  std::vector<ursa::detlint::Finding> findings;
  std::string error;
  if (!ursa::detlint::Run(options, &findings, &error)) {
    std::fprintf(stderr, "detlint: %s\n", error.c_str());
    return 2;
  }
  if (!findings.empty()) {
    std::fputs(ursa::detlint::FormatFindings(findings).c_str(), stdout);
    std::fprintf(stderr, "detlint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
