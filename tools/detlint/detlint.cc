#include "tools/detlint/detlint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace ursa {
namespace detlint {

namespace {

namespace fs = std::filesystem;

struct Rule {
  std::string name;
  std::regex pattern;
  std::string message;
  // Empty = applies everywhere; otherwise the relative path must start with
  // one of these prefixes.
  std::vector<std::string> dir_prefixes;
  // True = match the raw line (style rules); false = match with the
  // line-comment tail stripped, so prose about a banned pattern is not a
  // finding.
  bool raw = false;
};

const std::vector<Rule>& Rules() {
  static const std::vector<Rule>* rules = new std::vector<Rule>{
      {"wallclock",
       std::regex(R"((system_clock|steady_clock|high_resolution_clock)\s*::|)"
                  R"(\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(nullptr|NULL|0)?\s*\))"),
       "host clock read; simulated time comes from Simulator::Now(), wall time "
       "only via src/common/wallclock.h",
       {},
       false},
      {"raw-random",
       std::regex(R"(\brand\s*\(\s*\)|\bsrand\s*\(|\brandom_device\b|)"
                  R"(\bmt19937(_64)?\b|\bdefault_random_engine\b|\bminstd_rand0?\b)"),
       "unseeded/global randomness; all simulation randomness must flow from "
       "the seeded Rng in src/common/rng.h",
       {},
       false},
      {"no-unordered-in-core",
       std::regex(R"(\bunordered_(map|set|multimap|multiset)\b)"),
       "hash container in order-sensitive core code; iteration order is not "
       "deterministic across platforms — use std::map/std::set, or allowlist "
       "a pure lookup table",
       {"src/scheduler/", "src/exec/", "src/net/", "src/sim/"},
       false},
      {"pointer-key-ordered",
       std::regex(R"(\b(?:std\s*::\s*)?(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?[A-Za-z_][A-Za-z0-9_:]*\s*\*\s*[,>])"),
       "ordered container keyed by raw pointer; address order differs between "
       "runs — key by a stable id instead",
       {},
       false},
      {"style-tabs", std::regex("\t"), "tab character; indent with spaces", {}, true},
      {"style-trailing-ws", std::regex(R"([ \t]+$)"), "trailing whitespace", {}, true},
  };
  return *rules;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

// Strips a // comment tail. Token-level: a "//" inside a string literal is
// treated as a comment start; acceptable for this codebase, and an allowlist
// entry covers any false positive.
std::string StripLineComment(const std::string& line) {
  const size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

bool LineSuppresses(const std::string& line, const std::string& rule) {
  const std::string marker = "detlint: allow(" + rule + ")";
  return line.find(marker) != std::string::npos;
}

std::string NormalizeSlashes(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

struct Allowlist {
  // path -> rules allowed there.
  std::vector<std::pair<std::string, std::string>> entries;
  bool Allows(const std::string& file, const std::string& rule) const {
    for (const auto& [path, allowed_rule] : entries) {
      if (path == file && allowed_rule == rule) {
        return true;
      }
    }
    return false;
  }
};

bool LoadAllowlist(const std::string& path, Allowlist* allowlist, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read allowlist: " + path;
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    // Trim.
    const size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) {
      continue;
    }
    const size_t end = line.find_last_not_of(" \t");
    line = line.substr(begin, end - begin + 1);
    const size_t colon = line.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= line.size()) {
      *error = path + ":" + std::to_string(line_no) +
               ": malformed allowlist entry (want path:rule): " + line;
      return false;
    }
    const std::string rule = line.substr(colon + 1);
    const auto& names = RuleNames();
    if (std::find(names.begin(), names.end(), rule) == names.end()) {
      *error = path + ":" + std::to_string(line_no) + ": unknown rule: " + rule;
      return false;
    }
    allowlist->entries.emplace_back(NormalizeSlashes(line.substr(0, colon)), rule);
  }
  return true;
}

void LintLines(const std::string& relative_path, const std::string& content,
               std::vector<Finding>* findings) {
  std::istringstream stream(content);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::string code = StripLineComment(line);
    for (const Rule& rule : Rules()) {
      if (!rule.dir_prefixes.empty()) {
        bool in_scope = false;
        for (const std::string& prefix : rule.dir_prefixes) {
          in_scope = in_scope || StartsWith(relative_path, prefix);
        }
        if (!in_scope) {
          continue;
        }
      }
      const std::string& haystack = rule.raw ? line : code;
      if (!std::regex_search(haystack, rule.pattern)) {
        continue;
      }
      if (LineSuppresses(line, rule.name)) {
        continue;
      }
      findings->push_back(Finding{relative_path, line_no, rule.name, rule.message});
    }
  }
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const Rule& rule : Rules()) {
      v->push_back(rule.name);
    }
    return v;
  }();
  return *names;
}

std::vector<Finding> LintContent(const std::string& relative_path,
                                 const std::string& content) {
  std::vector<Finding> findings;
  LintLines(NormalizeSlashes(relative_path), content, &findings);
  return findings;
}

bool Run(const Options& options, std::vector<Finding>* findings, std::string* error) {
  findings->clear();
  Allowlist allowlist;
  if (!options.allowlist_path.empty() &&
      !LoadAllowlist(options.allowlist_path, &allowlist, error)) {
    return false;
  }

  const fs::path root = options.repo_root.empty() ? fs::path(".") : fs::path(options.repo_root);
  // Collect files deterministically: gather, then sort.
  std::set<fs::path> files;
  for (const std::string& spec : options.roots) {
    fs::path p(spec);
    if (p.is_relative()) {
      p = root / p;
    }
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), last; it != last; it.increment(ec)) {
        if (ec) {
          *error = "cannot walk " + p.string() + ": " + ec.message();
          return false;
        }
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files.insert(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.insert(p);
    } else {
      *error = "no such file or directory: " + spec;
      return false;
    }
  }

  std::vector<std::pair<std::string, std::string>> used_allowlist;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      *error = "cannot read " + file.string();
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    const std::string rel_path = NormalizeSlashes((ec ? file : rel).generic_string());
    std::vector<Finding> file_findings;
    LintLines(rel_path, buffer.str(), &file_findings);
    for (Finding& finding : file_findings) {
      if (allowlist.Allows(finding.file, finding.rule)) {
        used_allowlist.emplace_back(finding.file, finding.rule);
        continue;
      }
      findings->push_back(std::move(finding));
    }
  }

  // A stale allowlist entry hides future regressions; flag it as an error so
  // the list shrinks when the code gets fixed.
  for (const auto& entry : allowlist.entries) {
    if (std::find(used_allowlist.begin(), used_allowlist.end(), entry) ==
        used_allowlist.end()) {
      *error = "stale allowlist entry (no matching finding): " + entry.first + ":" +
               entry.second;
      return false;
    }
  }

  std::sort(findings->begin(), findings->end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.rule < b.rule;
  });
  return true;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& finding : findings) {
    out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
        << finding.message << "\n";
  }
  return out.str();
}

}  // namespace detlint
}  // namespace ursa
