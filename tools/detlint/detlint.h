// Determinism lint for the simulator sources (DESIGN.md section 10).
//
// The simulator's headline guarantee is that a fixed seed reproduces the
// exact event sequence. That guarantee dies quietly: one wall-clock read in
// placement logic, one iteration over an unordered container in a
// tie-breaking path, one pointer-keyed ordered map, and two same-seed runs
// diverge on another machine (or another libstdc++) with no failing assert.
// detlint scans the sources for those banned patterns at the token level —
// no libclang dependency — so the gate runs anywhere the tests run.
//
// Rules (see RuleNames() for the canonical list):
//   wallclock          host-clock reads (std::chrono::*_clock, time(),
//                      gettimeofday, clock_gettime) anywhere under src/.
//                      The only sanctioned access point is
//                      src/common/wallclock.h (allowlisted).
//   raw-random         rand()/srand()/std::random_device/std::mt19937 etc.
//                      outside src/common/rng.h. All simulation randomness
//                      must flow from the seeded Rng.
//   no-unordered-in-core  unordered_{map,set,multimap,multiset} mentioned in
//                      the order-sensitive core (src/scheduler, src/exec,
//                      src/net, src/sim). Hash containers are fine for pure
//                      lookups (allowlist those), fatal when iterated.
//   pointer-key-ordered  std::map/std::set keyed by a raw pointer: ordered
//                      by address, i.e. by the allocator's mood.
//   style-tabs         tab characters (the codebase is space-indented).
//   style-trailing-ws  trailing whitespace.
//
// Escapes, both of which name the rule so grepping for suppressions works:
//   * an allowlist file of `path:rule` lines with a justification comment;
//   * an inline `detlint: allow(rule)` marker on the flagged line.
#ifndef TOOLS_DETLINT_DETLINT_H_
#define TOOLS_DETLINT_DETLINT_H_

#include <string>
#include <vector>

namespace ursa {
namespace detlint {

struct Finding {
  std::string file;  // Relative to repo_root, forward slashes.
  int line = 0;      // 1-based.
  std::string rule;
  std::string message;
};

struct Options {
  // Directory that findings (and allowlist entries) are relative to.
  std::string repo_root;
  // Files or directories (relative to repo_root or absolute) to scan.
  // Directories are walked recursively for *.h / *.cc files.
  std::vector<std::string> roots;
  // Optional allowlist file; empty = no allowlist.
  std::string allowlist_path;
};

// Canonical rule names, in report order.
const std::vector<std::string>& RuleNames();

// Scans per Options. Findings are sorted by (file, line, rule). Returns
// false and sets *error on IO/usage problems (unreadable root, malformed
// allowlist line, allowlist entry that matched nothing).
bool Run(const Options& options, std::vector<Finding>* findings, std::string* error);

// One "file:line: [rule] message" line per finding.
std::string FormatFindings(const std::vector<Finding>& findings);

// Exposed for tests: lints a single in-memory file.
std::vector<Finding> LintContent(const std::string& relative_path, const std::string& content);

}  // namespace detlint
}  // namespace ursa

#endif  // TOOLS_DETLINT_DETLINT_H_
