// trace_summary: reads a Chrome trace JSON produced by --trace-out and
// prints per-resource monotask statistics, scheduler-tick aggregates and
// fault events, plus schema diagnostics (unpaired dispatch/finish events).
//
//   trace_summary trace.json
//
// Exit status: 0 on a well-formed trace, 1 on parse errors or schema
// violations (unpaired events), 2 on usage errors.
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/obs/trace_reader.h"

namespace {

struct ResourceStats {
  int64_t queued = 0;
  int64_t dispatches = 0;
  int64_t completes = 0;
  int64_t fails = 0;
  int64_t lost = 0;
  int64_t cancelled = 0;
  double busy_time = 0.0;    // Counted service seconds.
  double wasted_time = 0.0;  // Counted service seconds of cancelled copies.
  std::vector<double> queue_waits;
  std::vector<double> services;
};

double Arg(const ursa::ChromeTraceEvent& e, const char* key) {
  const auto it = e.args.find(key);
  return it != e.args.end() ? it->second : 0.0;
}

std::string StringArg(const ursa::ChromeTraceEvent& e, const char* key) {
  const auto it = e.string_args.find(key);
  return it != e.string_args.end() ? it->second : std::string();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ursa;
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_summary <trace.json>\n");
    return 2;
  }
  const std::string path = argv[1];
  ChromeTrace trace;
  std::string error;
  if (!ReadChromeTraceFile(path, &trace, &error)) {
    std::fprintf(stderr, "trace_summary: %s\n", error.c_str());
    return 1;
  }

  std::map<std::string, ResourceStats> by_resource;
  std::map<uint64_t, const ChromeTraceEvent*> open;  // Dispatches awaiting an end.
  std::map<std::string, int64_t> faults;
  std::map<std::string, int64_t> spec_events;
  std::map<std::string, int64_t> admission_events;
  double admit_latency_sum = 0.0;
  int64_t admits = 0;
  int64_t ticks = 0;
  int64_t candidates = 0;
  int64_t placed = 0;
  double total_wall_us = 0.0;
  double max_wall_us = 0.0;
  int64_t orphan_ends = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;
  bool any_ts = false;

  for (const ChromeTraceEvent& e : trace.events) {
    if (e.ph == "M") {
      continue;
    }
    if (!any_ts) {
      first_ts = e.ts;
      any_ts = true;
    }
    last_ts = e.ts > last_ts ? e.ts : last_ts;
    if (e.cat == "monotask") {
      const std::string resource = StringArg(e, "resource");
      ResourceStats& rs = by_resource[resource];
      if (e.ph == "i") {
        ++rs.queued;
      } else if (e.ph == "b") {
        ++rs.dispatches;
        rs.queue_waits.push_back(Arg(e, "queue_wait_s"));
        open[e.id] = &e;
      } else if (e.ph == "e") {
        const auto it = open.find(e.id);
        if (it == open.end()) {
          ++orphan_ends;
        } else {
          open.erase(it);
        }
        const std::string status = StringArg(e, "status");
        if (status == "complete") {
          ++rs.completes;
        } else if (status == "fail") {
          ++rs.fails;
        } else if (status == "cancelled") {
          ++rs.cancelled;
        } else {
          ++rs.lost;
        }
        rs.services.push_back(Arg(e, "service_s"));
        if (Arg(e, "counted") != 0.0) {
          rs.busy_time += Arg(e, "service_s");
          if (status == "cancelled") {
            rs.wasted_time += Arg(e, "service_s");
          }
        }
      }
    } else if (e.cat == "scheduler" && e.name == "tick") {
      ++ticks;
      candidates += static_cast<int64_t>(Arg(e, "candidates"));
      placed += static_cast<int64_t>(Arg(e, "placed"));
      const double wall = Arg(e, "wall_us");
      total_wall_us += wall;
      max_wall_us = wall > max_wall_us ? wall : max_wall_us;
    } else if (e.cat == "fault") {
      ++faults[e.name];
    } else if (e.cat == "spec") {
      ++spec_events[e.name];
    } else if (e.cat == "admission") {
      ++admission_events[e.name];
      if (e.name == "admit") {
        admit_latency_sum += Arg(e, "a");
        ++admits;
      }
    }
  }

  std::printf("%s: %zu events, [%.3f s, %.3f s]\n", path.c_str(), trace.events.size(),
              first_ts / 1e6, last_ts / 1e6);

  Table counts({"resource", "queued", "dispatched", "completed", "failed", "lost",
                "cancelled", "busy(s)", "wasted(s)"});
  Table latencies({"resource", "qwait-mean(ms)", "qwait-p50", "qwait-p95", "qwait-p99",
                   "svc-mean(ms)", "svc-p50", "svc-p95", "svc-p99"});
  for (auto& [resource, rs] : by_resource) {
    const Summary wait = Summarize(rs.queue_waits);
    const Summary service = Summarize(rs.services);
    counts.Row()
        .Cell(resource)
        .Cell(rs.queued)
        .Cell(rs.dispatches)
        .Cell(rs.completes)
        .Cell(rs.fails)
        .Cell(rs.lost)
        .Cell(rs.cancelled)
        .Cell(rs.busy_time, 2)
        .Cell(rs.wasted_time, 2);
    latencies.Row()
        .Cell(resource)
        .Cell(wait.mean * 1e3, 3)
        .Cell(wait.p50 * 1e3, 3)
        .Cell(wait.p95 * 1e3, 3)
        .Cell(wait.p99 * 1e3, 3)
        .Cell(service.mean * 1e3, 3)
        .Cell(service.p50 * 1e3, 3)
        .Cell(service.p95 * 1e3, 3)
        .Cell(service.p99 * 1e3, 3);
  }
  counts.Print("monotask counts");
  latencies.Print("monotask latencies");

  if (ticks > 0) {
    Table tick_table({"ticks", "candidates", "placed", "avgWall(us)", "maxWall(us)"});
    tick_table.Row()
        .Cell(ticks)
        .Cell(candidates)
        .Cell(placed)
        .Cell(total_wall_us / static_cast<double>(ticks), 1)
        .Cell(max_wall_us, 1);
    tick_table.Print("scheduler ticks");
  }
  if (!faults.empty()) {
    Table fault_table({"fault event", "count"});
    for (const auto& [name, count] : faults) {
      fault_table.Row().Cell(name).Cell(count);
    }
    fault_table.Print("fault events");
  }
  if (!spec_events.empty()) {
    Table spec_table({"speculation event", "count"});
    for (const auto& [name, count] : spec_events) {
      spec_table.Row().Cell(name).Cell(count);
    }
    spec_table.Print("speculation events");
  }
  if (!admission_events.empty()) {
    Table admission_table({"admission event", "count"});
    for (const auto& [name, count] : admission_events) {
      admission_table.Row().Cell(name).Cell(count);
    }
    admission_table.Print("admission events");
    if (admits > 0) {
      std::printf("avg admission latency: %.3f s over %" PRId64 " admits\n",
                  admit_latency_sum / static_cast<double>(admits), admits);
    }
  }

  // Schema diagnostics. Unpaired dispatches are expected only when the ring
  // wrapped (the matching end was emitted after the snapshot) - never in a
  // complete trace.
  if (!open.empty() || orphan_ends > 0) {
    std::fprintf(stderr,
                 "trace_summary: %zu dispatch events without a matching end, "
                 "%" PRId64 " end events without a matching dispatch\n",
                 open.size(), orphan_ends);
    return 1;
  }
  return 0;
}
