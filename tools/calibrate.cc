#include <cstdio>
#include "src/common/stats.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/workloads/tpch.h"
#include "src/workloads/tpcds.h"
#include "src/workloads/ml.h"
#include "src/workloads/graph.h"
#include "src/workloads/synthetic.h"

using namespace ursa;

static double SingleJct(JobSpec spec) {
  Workload w; w.name = "single";
  WorkloadJob j; j.spec = std::move(spec); w.jobs.push_back(std::move(j));
  auto r = RunExperiment(w, UrsaEjfConfig(), "ursa");
  return r.records[0].jct();
}

int main() {
  // TPC-H single-job JCTs across queries/sizes
  std::vector<double> jcts;
  Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    int q = 1 + (i % 22);
    double db = (i % 10 < 6) ? 200.0*kGiB : (i % 10 < 9 ? 500.0*kGiB : 1024.0*kGiB);
    jcts.push_back(SingleJct(MakeTpchQuery(q, db, 1000+i)));
  }
  Summary s = Summarize(jcts);
  std::printf("TPCH single: min %.1f p50 %.1f mean %.1f p95 %.1f max %.1f\n", s.min, s.p50, s.mean, s.p95, s.max);

  std::vector<double> ds;
  for (int i = 0; i < 30; ++i) {
    int q = 1 + (i*7 % 99);
    ds.push_back(SingleJct(MakeTpcdsQuery(q, 200.0*kGiB, 2000+i)));
  }
  s = Summarize(ds);
  std::printf("TPCDS single: min %.1f p50 %.1f mean %.1f p95 %.1f max %.1f\n", s.min, s.p50, s.mean, s.p95, s.max);

  std::printf("LR: %.1f  KMeans: %.1f  PR: %.1f  CC: %.1f\n",
      SingleJct(BuildMlJob(LrParams(), 1)), SingleJct(BuildMlJob(KmeansParams(), 2)),
      SingleJct(BuildGraphJob(PagerankParams(), 3)), SingleJct(BuildGraphJob(CcParams(), 4)));

  SyntheticJobParams t1; t1.type = 1; SyntheticJobParams t2; t2.type = 2;
  std::printf("Type1: %.1f  Type2: %.1f\n", SingleJct(BuildSyntheticJob(t1, 5)), SingleJct(BuildSyntheticJob(t2, 6)));
  return 0;
}
