// ursa_sim: command-line driver for the cluster simulator.
//
//   ursa_sim --workload=tpch --scheduler=ursa-ejf --jobs=50 [options]
//
// Workloads:   tpch | tpcds | tpch2 | mixed | synthetic | openloop
// Schedulers:  ursa-ejf | ursa-srjf | ursa-graphene | y+s | y+t | y+u |
//              tetris | tetris2 | capacity
// Options:     --jobs=N --interval=SEC --seed=N --workers=N --gbps=G
//              --subscription=R (executor schemes) --series=STEP
// Policies:    --score=alg1|tetris (worker-score policy inside Algorithm-1
//              placement) --colocate (Hugo-style co-location learning)
//              --colocate-weight=W --graphene-threshold=X
//              --graphene-weight=W --graphene-base=ejf|srjf
//              (DESIGN.md section 13)
// Tracing:     --trace (record + summary only) --trace-out=FILE (Chrome
//              trace JSON) --trace-sample=N --trace-capacity=EVENTS
// Chaos:       --fault-crashes=N --fault-recovers=N --fault-transients=N
//              --fault-degrades=N --fault-seed=N --fault-horizon=SEC
//              --detect-timeout=SEC --heartbeat=SEC --no-lineage
//              --retry-attempts=N
// Control:     --ctrl (scheduler<->worker message layer) --msg-loss=P
//              --msg-dup=P --msg-delay=P --msg-delay-extra=SEC
//              --msg-latency=SEC --sched-crash=N --sched-downtime=SEC
//              --checkpoint-interval=SEC (enables the decision journal;
//              0 = crash degrades to full job restarts). Any of these
//              implies --ctrl. DESIGN.md section 14.
// Speculation: --spec --spec-threshold=X --spec-budget=FRAC
//              --spec-min-runtime=SEC
// Open loop:   --open-loop (or --workload=openloop) --arrival-rate=JOBS/S
//              --arrival-trace=FILE --tenants=name:weight:tier:slo,...
//              (--jobs bounds the arrival count)
// Admission:   --admission --max-pending=N --shed-policy=newest|largest|tier
//              --slo=SEC --u-bound=X (ursa schemes only)
// Hot path:    --event-queue=heap|calendar (simulator event queue backend)
//              --hotpath=fast|seed (fast = incremental loads + pruned
//              placement scan; seed = the original full-rescan loops; both
//              produce byte-identical results, see DESIGN.md section 12)
//              --max-scored-pairs=N --sched-counters
//
// Unknown flags and out-of-range values are errors: the offending flag is
// named on stderr and the process exits 2 (the usage exit code), so typos
// never silently fall back to defaults.
//
// Prints the paper-style summary (makespan, avg JCT, SE/UE), a fault report
// when chaos was injected, the per-tenant/admission report for open-loop
// runs, and optionally a sampled cluster-utilization series.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/obs/trace.h"
#include "src/workloads/mixed.h"
#include "src/workloads/openloop.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/tpcds.h"
#include "src/workloads/tpch.h"

namespace {

struct Flags {
  std::string workload = "tpch";
  std::string scheduler = "ursa-ejf";
  int jobs = 50;
  double interval = 5.0;
  uint64_t seed = 42;
  int workers = 20;
  double gbps = 10.0;
  double subscription = 1.0;
  double series = 0.0;
  bool trace = false;  // Record without exporting (summary only).
  std::string trace_out;
  int trace_sample = 1;
  size_t trace_capacity = size_t{1} << 20;
  // Chaos fault injection (Ursa schemes only).
  int fault_crashes = 0;
  int fault_recovers = 0;
  int fault_transients = 0;
  int fault_degrades = 0;
  uint64_t fault_seed = 1;
  double fault_horizon = 100.0;
  double detect_timeout = 2.0;
  double heartbeat = 0.5;
  bool no_lineage = false;
  int retry_attempts = 3;
  // Control-plane chaos (DESIGN.md section 14; Ursa schemes only). Any of
  // these flags turns on the scheduler<->worker message layer.
  bool ctrl = false;
  double msg_loss = 0.0;
  double msg_dup = 0.0;
  double msg_delay = 0.0;
  double msg_delay_extra = 0.05;
  double msg_latency = 0.0005;
  int sched_crashes = 0;
  double sched_downtime = 5.0;
  double checkpoint_interval = 0.0;
  // Straggler mitigation (DESIGN.md section 9; Ursa schemes only).
  bool spec = false;
  double spec_threshold = 1.75;
  double spec_budget = 0.1;
  double spec_min_runtime = 1.0;
  // Open-loop serving + admission control (DESIGN.md section 11).
  bool open_loop = false;
  double arrival_rate = 0.5;
  std::string arrival_trace;
  std::string tenants;
  bool admission = false;
  int max_pending = 64;
  std::string shed_policy = "tier";
  double slo = 300.0;
  double u_bound = 4.0;
  // Hot-path switches (DESIGN.md section 12).
  std::string event_queue = "heap";
  std::string hotpath = "fast";
  int max_scored_pairs = 0;  // 0 = library default.
  bool sched_counters = false;
  // Policy framework (DESIGN.md section 13).
  std::string score = "alg1";
  bool colocate = false;
  double colocate_weight = -1.0;      // < 0 = library default.
  double graphene_threshold = -1.0;   // < 0 = library default.
  double graphene_weight = -1.0;      // < 0 = library default.
  std::string graphene_base = "srjf";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

// Strict numeric parsers: the whole value must parse and land in
// [min_v, max_v], otherwise the flag is rejected by name.
bool ToInt(const std::string& s, long min_v, long max_v, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v < min_v || v > max_v) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ToUint64(const std::string& s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || s[0] == '-') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ToDouble(const std::string& s, double min_v, double max_v, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || !(v >= min_v) || !(v <= max_v)) {
    return false;
  }
  *out = v;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ursa_sim [--workload=tpch|tpcds|tpch2|mixed|synthetic|openloop]\n"
               "                [--scheduler=ursa-ejf|ursa-srjf|ursa-graphene|y+s|y+t|y+u|"
               "tetris|tetris2|capacity]\n"
               "                [--jobs=N] [--interval=SEC] [--seed=N] [--workers=N]\n"
               "                [--gbps=G] [--subscription=R] [--series=STEP]\n"
               "                [--trace] [--trace-out=FILE] [--trace-sample=N]\n"
               "                [--trace-capacity=EVENTS]\n"
               "                [--fault-crashes=N] [--fault-recovers=N]\n"
               "                [--fault-transients=N] [--fault-degrades=N]\n"
               "                [--fault-seed=N] [--fault-horizon=SEC]\n"
               "                [--detect-timeout=SEC] [--heartbeat=SEC]\n"
               "                [--no-lineage] [--retry-attempts=N]\n"
               "                [--ctrl] [--msg-loss=P] [--msg-dup=P] [--msg-delay=P]\n"
               "                [--msg-delay-extra=SEC] [--msg-latency=SEC]\n"
               "                [--sched-crash=N] [--sched-downtime=SEC]\n"
               "                [--checkpoint-interval=SEC]\n"
               "                [--spec] [--spec-threshold=X] [--spec-budget=FRAC]\n"
               "                [--spec-min-runtime=SEC]\n"
               "                [--open-loop] [--arrival-rate=JOBS/S] [--arrival-trace=FILE]\n"
               "                [--tenants=name:weight:tier:slo,...]\n"
               "                [--admission] [--max-pending=N]\n"
               "                [--shed-policy=newest|largest|tier] [--slo=SEC] [--u-bound=X]\n"
               "                [--event-queue=heap|calendar] [--hotpath=fast|seed]\n"
               "                [--max-scored-pairs=N] [--sched-counters]\n"
               "                [--score=alg1|tetris] [--colocate] [--colocate-weight=W]\n"
               "                [--graphene-threshold=X] [--graphene-weight=W]\n"
               "                [--graphene-base=ejf|srjf]\n");
  return 2;
}

int BadFlagValue(const char* name, const std::string& value) {
  std::fprintf(stderr, "ursa_sim: flag --%s rejects '%s' (not a number or out of range)\n",
               name, value.c_str());
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ursa;
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "workload", &value)) {
      flags.workload = value;
    } else if (ParseFlag(argv[i], "scheduler", &value)) {
      flags.scheduler = value;
    } else if (ParseFlag(argv[i], "jobs", &value)) {
      if (!ToInt(value, 1, 10000000, &flags.jobs)) return BadFlagValue("jobs", value);
    } else if (ParseFlag(argv[i], "interval", &value)) {
      if (!ToDouble(value, 0.0, 1e9, &flags.interval)) return BadFlagValue("interval", value);
    } else if (ParseFlag(argv[i], "seed", &value)) {
      if (!ToUint64(value, &flags.seed)) return BadFlagValue("seed", value);
    } else if (ParseFlag(argv[i], "workers", &value)) {
      if (!ToInt(value, 1, 100000, &flags.workers)) return BadFlagValue("workers", value);
    } else if (ParseFlag(argv[i], "gbps", &value)) {
      if (!ToDouble(value, 1e-3, 1e6, &flags.gbps)) return BadFlagValue("gbps", value);
    } else if (ParseFlag(argv[i], "subscription", &value)) {
      if (!ToDouble(value, 1e-3, 100.0, &flags.subscription)) {
        return BadFlagValue("subscription", value);
      }
    } else if (ParseFlag(argv[i], "series", &value)) {
      if (!ToDouble(value, 0.0, 1e9, &flags.series)) return BadFlagValue("series", value);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      flags.trace = true;
    } else if (ParseFlag(argv[i], "trace-out", &value)) {
      flags.trace_out = value;
    } else if (ParseFlag(argv[i], "trace-sample", &value)) {
      if (!ToInt(value, 1, 1000000, &flags.trace_sample)) {
        return BadFlagValue("trace-sample", value);
      }
    } else if (ParseFlag(argv[i], "trace-capacity", &value)) {
      uint64_t capacity = 0;
      if (!ToUint64(value, &capacity) || capacity == 0) {
        return BadFlagValue("trace-capacity", value);
      }
      flags.trace_capacity = static_cast<size_t>(capacity);
    } else if (ParseFlag(argv[i], "fault-crashes", &value)) {
      if (!ToInt(value, 0, 100000, &flags.fault_crashes)) {
        return BadFlagValue("fault-crashes", value);
      }
    } else if (ParseFlag(argv[i], "fault-recovers", &value)) {
      if (!ToInt(value, 0, 100000, &flags.fault_recovers)) {
        return BadFlagValue("fault-recovers", value);
      }
    } else if (ParseFlag(argv[i], "fault-transients", &value)) {
      if (!ToInt(value, 0, 100000, &flags.fault_transients)) {
        return BadFlagValue("fault-transients", value);
      }
    } else if (ParseFlag(argv[i], "fault-degrades", &value)) {
      if (!ToInt(value, 0, 100000, &flags.fault_degrades)) {
        return BadFlagValue("fault-degrades", value);
      }
    } else if (ParseFlag(argv[i], "fault-seed", &value)) {
      if (!ToUint64(value, &flags.fault_seed)) return BadFlagValue("fault-seed", value);
    } else if (ParseFlag(argv[i], "fault-horizon", &value)) {
      if (!ToDouble(value, 1e-9, 1e9, &flags.fault_horizon)) {
        return BadFlagValue("fault-horizon", value);
      }
    } else if (ParseFlag(argv[i], "detect-timeout", &value)) {
      if (!ToDouble(value, 1e-9, 1e9, &flags.detect_timeout)) {
        return BadFlagValue("detect-timeout", value);
      }
    } else if (ParseFlag(argv[i], "heartbeat", &value)) {
      if (!ToDouble(value, 1e-9, 1e9, &flags.heartbeat)) {
        return BadFlagValue("heartbeat", value);
      }
    } else if (std::strcmp(argv[i], "--no-lineage") == 0) {
      flags.no_lineage = true;
    } else if (ParseFlag(argv[i], "retry-attempts", &value)) {
      if (!ToInt(value, 1, 1000, &flags.retry_attempts)) {
        return BadFlagValue("retry-attempts", value);
      }
    } else if (std::strcmp(argv[i], "--ctrl") == 0) {
      flags.ctrl = true;
    } else if (ParseFlag(argv[i], "msg-loss", &value)) {
      if (!ToDouble(value, 0.0, 0.999, &flags.msg_loss)) {
        return BadFlagValue("msg-loss", value);
      }
    } else if (ParseFlag(argv[i], "msg-dup", &value)) {
      if (!ToDouble(value, 0.0, 0.999, &flags.msg_dup)) {
        return BadFlagValue("msg-dup", value);
      }
    } else if (ParseFlag(argv[i], "msg-delay", &value)) {
      if (!ToDouble(value, 0.0, 0.999, &flags.msg_delay)) {
        return BadFlagValue("msg-delay", value);
      }
    } else if (ParseFlag(argv[i], "msg-delay-extra", &value)) {
      if (!ToDouble(value, 0.0, 1e6, &flags.msg_delay_extra)) {
        return BadFlagValue("msg-delay-extra", value);
      }
    } else if (ParseFlag(argv[i], "msg-latency", &value)) {
      if (!ToDouble(value, 0.0, 1e6, &flags.msg_latency)) {
        return BadFlagValue("msg-latency", value);
      }
    } else if (ParseFlag(argv[i], "sched-crash", &value)) {
      if (!ToInt(value, 0, 100000, &flags.sched_crashes)) {
        return BadFlagValue("sched-crash", value);
      }
    } else if (ParseFlag(argv[i], "sched-downtime", &value)) {
      if (!ToDouble(value, 0.0, 1e9, &flags.sched_downtime)) {
        return BadFlagValue("sched-downtime", value);
      }
    } else if (ParseFlag(argv[i], "checkpoint-interval", &value)) {
      if (!ToDouble(value, 0.0, 1e9, &flags.checkpoint_interval)) {
        return BadFlagValue("checkpoint-interval", value);
      }
    } else if (std::strcmp(argv[i], "--spec") == 0) {
      flags.spec = true;
    } else if (ParseFlag(argv[i], "spec-threshold", &value)) {
      if (!ToDouble(value, 1.0, 1e3, &flags.spec_threshold)) {
        return BadFlagValue("spec-threshold", value);
      }
    } else if (ParseFlag(argv[i], "spec-budget", &value)) {
      if (!ToDouble(value, 0.0, 1.0, &flags.spec_budget)) {
        return BadFlagValue("spec-budget", value);
      }
    } else if (ParseFlag(argv[i], "spec-min-runtime", &value)) {
      if (!ToDouble(value, 0.0, 1e9, &flags.spec_min_runtime)) {
        return BadFlagValue("spec-min-runtime", value);
      }
    } else if (std::strcmp(argv[i], "--open-loop") == 0) {
      flags.open_loop = true;
    } else if (ParseFlag(argv[i], "arrival-rate", &value)) {
      if (!ToDouble(value, 1e-9, 1e9, &flags.arrival_rate)) {
        return BadFlagValue("arrival-rate", value);
      }
    } else if (ParseFlag(argv[i], "arrival-trace", &value)) {
      flags.arrival_trace = value;
    } else if (ParseFlag(argv[i], "tenants", &value)) {
      flags.tenants = value;
    } else if (std::strcmp(argv[i], "--admission") == 0) {
      flags.admission = true;
    } else if (ParseFlag(argv[i], "max-pending", &value)) {
      if (!ToInt(value, 1, 10000000, &flags.max_pending)) {
        return BadFlagValue("max-pending", value);
      }
    } else if (ParseFlag(argv[i], "shed-policy", &value)) {
      flags.shed_policy = value;
    } else if (ParseFlag(argv[i], "slo", &value)) {
      if (!ToDouble(value, 1e-9, 1e9, &flags.slo)) return BadFlagValue("slo", value);
    } else if (ParseFlag(argv[i], "u-bound", &value)) {
      if (!ToDouble(value, 1e-9, 1e9, &flags.u_bound)) return BadFlagValue("u-bound", value);
    } else if (ParseFlag(argv[i], "event-queue", &value)) {
      flags.event_queue = value;
    } else if (ParseFlag(argv[i], "hotpath", &value)) {
      flags.hotpath = value;
    } else if (ParseFlag(argv[i], "max-scored-pairs", &value)) {
      if (!ToInt(value, 1, 2000000000, &flags.max_scored_pairs)) {
        return BadFlagValue("max-scored-pairs", value);
      }
    } else if (std::strcmp(argv[i], "--sched-counters") == 0) {
      flags.sched_counters = true;
    } else if (ParseFlag(argv[i], "score", &value)) {
      flags.score = value;
    } else if (std::strcmp(argv[i], "--colocate") == 0) {
      flags.colocate = true;
    } else if (ParseFlag(argv[i], "colocate-weight", &value)) {
      if (!ToDouble(value, 0.0, 1e6, &flags.colocate_weight)) {
        return BadFlagValue("colocate-weight", value);
      }
    } else if (ParseFlag(argv[i], "graphene-threshold", &value)) {
      if (!ToDouble(value, 0.0, 1.0, &flags.graphene_threshold)) {
        return BadFlagValue("graphene-threshold", value);
      }
    } else if (ParseFlag(argv[i], "graphene-weight", &value)) {
      if (!ToDouble(value, 0.0, 1e9, &flags.graphene_weight)) {
        return BadFlagValue("graphene-weight", value);
      }
    } else if (ParseFlag(argv[i], "graphene-base", &value)) {
      flags.graphene_base = value;
    } else {
      std::fprintf(stderr, "ursa_sim: unknown flag '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (flags.workload == "openloop") {
    flags.open_loop = true;
  }

  // Workload (ignored by open-loop runs: arrivals come from the source).
  Workload workload;
  if (flags.open_loop) {
    workload.name = "openloop";
  } else if (flags.workload == "tpch") {
    TpchWorkloadConfig config;
    config.num_jobs = flags.jobs;
    config.submit_interval = flags.interval;
    config.seed = flags.seed;
    workload = MakeTpchWorkload(config);
  } else if (flags.workload == "tpcds") {
    TpcdsWorkloadConfig config;
    config.num_jobs = flags.jobs;
    config.submit_interval = flags.interval;
    config.seed = flags.seed;
    workload = MakeTpcdsWorkload(config);
  } else if (flags.workload == "tpch2") {
    workload = MakeTpch2Workload(flags.seed);
  } else if (flags.workload == "mixed") {
    MixedWorkloadConfig config;
    config.seed = flags.seed;
    workload = MakeMixedWorkload(config);
  } else if (flags.workload == "synthetic") {
    workload = MakeSyntheticMixedWorkload(std::max(1, flags.jobs / 2), flags.seed);
  } else {
    std::fprintf(stderr, "ursa_sim: unknown workload '%s'\n", flags.workload.c_str());
    return Usage();
  }

  // Scheduler. The ursa-* job-ordering variants are driven by the policy
  // registry (DESIGN.md section 13) so new ordering policies show up here
  // without touching this dispatch.
  ExperimentConfig config;
  bool matched = false;
  for (const OrderingPolicyInfo& info : OrderingPolicyRegistry()) {
    if (flags.scheduler == std::string("ursa-") + info.flag) {
      config = UrsaOrderingConfig(info.policy);
      matched = true;
      break;
    }
  }
  if (matched) {
    // Handled above.
  } else if (flags.scheduler == "y+s") {
    config = SparkLikeConfig();
  } else if (flags.scheduler == "y+t") {
    config = TezLikeConfig();
  } else if (flags.scheduler == "y+u") {
    config = MonoSparkConfig();
  } else if (PlacementAlgorithm packing = PlacementAlgorithm::kAlgorithm1;
             ParsePlacementAlgorithm(flags.scheduler, &packing) &&
             packing != PlacementAlgorithm::kAlgorithm1) {
    // Whole-task packing baselines from the registry (tetris|tetris2|capacity).
    config = UrsaEjfConfig();
    config.ursa.placement = packing;
  } else {
    std::fprintf(stderr, "ursa_sim: unknown scheduler '%s'\n", flags.scheduler.c_str());
    return Usage();
  }
  config.cluster.num_workers = flags.workers;
  config.cluster.uplink_bytes_per_sec = GbpsToBytesPerSec(flags.gbps);
  config.cluster.downlink_bytes_per_sec = GbpsToBytesPerSec(flags.gbps);
  config.cm.cpu_subscription_ratio = flags.subscription;
  config.sample_step = flags.series;
  config.trace = flags.trace;
  config.trace_out = flags.trace_out;
  config.trace_sample = flags.trace_sample;
  config.trace_capacity = flags.trace_capacity;

  // Open-loop serving and admission control (DESIGN.md section 11).
  if (flags.open_loop) {
    config.open_loop.enabled = true;
    config.open_loop.seed = flags.seed;
    config.open_loop.arrival_rate = flags.arrival_rate;
    config.open_loop.trace_file = flags.arrival_trace;
    config.open_loop.max_jobs = flags.jobs;
    if (!flags.arrival_trace.empty()) {
      std::vector<double> gaps;
      std::string error;
      if (!LoadInterarrivalTrace(flags.arrival_trace, &gaps, &error)) {
        std::fprintf(stderr, "ursa_sim: --arrival-trace: %s\n", error.c_str());
        return 2;
      }
    }
    if (!flags.tenants.empty()) {
      std::string error;
      if (!ParseTenantSpecs(flags.tenants, &config.open_loop.tenants, &error)) {
        std::fprintf(stderr, "ursa_sim: --tenants: %s\n", error.c_str());
        return 2;
      }
    }
  }
  config.ursa.admission.enabled = flags.admission;
  config.ursa.admission.max_pending = flags.max_pending;
  if (!ParseShedPolicy(flags.shed_policy, &config.ursa.admission.shed_policy)) {
    std::fprintf(stderr, "ursa_sim: --shed-policy rejects '%s' (want newest|largest|tier)\n",
                 flags.shed_policy.c_str());
    return 2;
  }
  config.ursa.admission.default_slo = flags.slo;
  config.ursa.admission.utilization_bound = flags.u_bound;

  // Hot-path switches (DESIGN.md section 12). Neither changes results —
  // only wall-clock cost — which the determinism tests pin down.
  if (flags.event_queue == "heap") {
    config.queue_kind = EventQueueKind::kBinaryHeap;
  } else if (flags.event_queue == "calendar") {
    config.queue_kind = EventQueueKind::kCalendar;
  } else {
    std::fprintf(stderr, "ursa_sim: --event-queue rejects '%s' (want heap|calendar)\n",
                 flags.event_queue.c_str());
    return 2;
  }
  if (flags.hotpath == "fast") {
    config.ursa.incremental_loads = true;
    config.ursa.prune_placement = true;
  } else if (flags.hotpath == "seed") {
    config.ursa.incremental_loads = false;
    config.ursa.prune_placement = false;
  } else {
    std::fprintf(stderr, "ursa_sim: --hotpath rejects '%s' (want fast|seed)\n",
                 flags.hotpath.c_str());
    return 2;
  }
  if (flags.max_scored_pairs > 0) {
    config.ursa.max_scored_pairs_per_tick = static_cast<size_t>(flags.max_scored_pairs);
  }

  // Policy framework (DESIGN.md section 13). The worker-score policy and the
  // co-location learner compose with every ursa-* ordering variant.
  if (!ParsePlacementScoreKind(flags.score, &config.ursa.score)) {
    std::fprintf(stderr, "ursa_sim: --score rejects '%s' (want alg1|tetris)\n",
                 flags.score.c_str());
    return 2;
  }
  config.ursa.colocation.enabled = flags.colocate;
  if (flags.colocate_weight >= 0.0) {
    config.ursa.colocation.weight = flags.colocate_weight;
  }
  if (flags.graphene_threshold >= 0.0) {
    config.ursa.graphene.threshold = flags.graphene_threshold;
  }
  if (flags.graphene_weight >= 0.0) {
    config.ursa.graphene.stage_weight = flags.graphene_weight;
  }
  OrderingPolicy graphene_base = OrderingPolicy::kSrjf;
  if (!ParseOrderingPolicy(flags.graphene_base, &graphene_base) ||
      graphene_base == OrderingPolicy::kGraphene) {
    std::fprintf(stderr, "ursa_sim: --graphene-base rejects '%s' (want ejf|srjf)\n",
                 flags.graphene_base.c_str());
    return 2;
  }
  config.ursa.graphene.base = graphene_base;

  // Fault-tolerance knobs and the chaos plan.
  config.ursa.fault.detector.heartbeat_interval = flags.heartbeat;
  config.ursa.fault.detector.detect_timeout = flags.detect_timeout;
  config.ursa.fault.enable_lineage_recovery = !flags.no_lineage;
  config.ursa.fault.max_monotask_attempts = flags.retry_attempts;
  config.ursa.spec.enabled = flags.spec;
  config.ursa.spec.slowdown_threshold = flags.spec_threshold;
  config.ursa.spec.budget_fraction = flags.spec_budget;
  config.ursa.spec.min_runtime = flags.spec_min_runtime;
  // Control-plane message layer + chaos (DESIGN.md section 14). Any chaos
  // knob implies the message layer; with none of them the layer stays off and
  // seeded runs are byte-identical to the direct-call path.
  config.ursa.ctrl.enabled = flags.ctrl || flags.msg_loss > 0.0 || flags.msg_dup > 0.0 ||
                             flags.msg_delay > 0.0 || flags.sched_crashes > 0 ||
                             flags.checkpoint_interval > 0.0;
  config.ursa.ctrl.seed = flags.fault_seed;
  config.ursa.ctrl.base_latency = flags.msg_latency;
  config.ursa.ctrl.loss_prob = flags.msg_loss;
  config.ursa.ctrl.dup_prob = flags.msg_dup;
  config.ursa.ctrl.delay_prob = flags.msg_delay;
  config.ursa.ctrl.delay_extra = flags.msg_delay_extra;
  config.ursa.ctrl.checkpoint_interval = flags.checkpoint_interval;
  if (flags.fault_crashes + flags.fault_recovers + flags.fault_transients +
          flags.fault_degrades + flags.sched_crashes >
      0) {
    FaultPlanConfig pc;
    pc.seed = flags.fault_seed;
    pc.num_workers = flags.workers;
    pc.horizon_end = flags.fault_horizon;
    pc.crashes = flags.fault_crashes;
    pc.crash_recovers = flags.fault_recovers;
    pc.transients = flags.fault_transients;
    pc.degrades = flags.fault_degrades;
    pc.sched_crash_recovers = flags.sched_crashes;
    pc.min_sched_downtime = flags.sched_downtime;
    pc.max_sched_downtime = flags.sched_downtime;
    config.fault_plan = MakeRandomFaultPlan(pc);
  }

  const ExperimentResult result = RunExperiment(workload, config, flags.scheduler);

  Table table({"scheme", "jobs", "makespan", "avgJCT", "UEcpu", "SEcpu", "UEmem", "SEmem",
               "straggler%"});
  table.Row()
      .Cell(flags.scheduler)
      .Cell(static_cast<int64_t>(result.records.size()))
      .Cell(result.makespan(), 1)
      .Cell(result.avg_jct(), 2)
      .Cell(result.efficiency.ue_cpu)
      .Cell(result.efficiency.se_cpu)
      .Cell(result.efficiency.ue_mem)
      .Cell(result.efficiency.se_mem)
      .Cell(result.straggler_ratio, 2);
  table.Print(flags.workload + " on " + std::to_string(flags.workers) + " workers");
  MetricsCollector::PrintFaultReport(result.faults, flags.scheduler);
  if (flags.open_loop) {
    MetricsCollector::PrintTenantReport(result.tenants, flags.scheduler + " tenants");
  }
  if (flags.admission) {
    const AdmissionCounters& c = result.admission;
    std::printf(
        "admission: submitted=%lld admitted=%lld shed=%lld (slo=%lld evicted=%lld) "
        "deferrals=%lld maxPending=%d avgLatency=%.3fs level=%s\n",
        static_cast<long long>(c.submitted), static_cast<long long>(c.admitted),
        static_cast<long long>(c.shed), static_cast<long long>(c.slo_rejects),
        static_cast<long long>(c.evictions), static_cast<long long>(c.deferrals),
        c.max_pending_depth, c.avg_admission_latency(), BackpressureLevelName(c.level));
  }
  if (flags.sched_counters) {
    const UrsaScheduler::SchedulerCounters& sc = result.scheduler_counters;
    std::printf(
        "sched: ticks=%lld loadRefreshes=%lld fullRebuilds=%lld bestWorker=%lld "
        "workersScanned=%lld truncated=%lld events=%llu wall=%.3fs\n",
        static_cast<long long>(sc.ticks), static_cast<long long>(sc.load_refreshes),
        static_cast<long long>(sc.full_rebuilds), static_cast<long long>(sc.bestworker_calls),
        static_cast<long long>(sc.workers_scanned),
        static_cast<long long>(sc.scoring_truncated),
        static_cast<unsigned long long>(result.events_fired), result.wall_seconds);
  }
  if (result.trace != nullptr) {
    result.trace->PrintSummary(flags.scheduler);
    if (!flags.trace_out.empty()) {
      std::printf("trace written to %s\n", flags.trace_out.c_str());
    }
  }

  if (flags.series > 0.0) {
    PrintSeriesCsv(flags.scheduler, result.series.t0, result.series.step, result.series.cpu,
                   result.series.mem, result.series.net);
  }
  return 0;
}
