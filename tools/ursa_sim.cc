// ursa_sim: command-line driver for the cluster simulator.
//
//   ursa_sim --workload=tpch --scheduler=ursa-ejf --jobs=50 [options]
//
// Workloads:   tpch | tpcds | tpch2 | mixed | synthetic
// Schedulers:  ursa-ejf | ursa-srjf | y+s | y+t | y+u |
//              tetris | tetris2 | capacity
// Options:     --jobs=N --interval=SEC --seed=N --workers=N --gbps=G
//              --subscription=R (executor schemes) --series=STEP
//
// Prints the paper-style summary (makespan, avg JCT, SE/UE) and optionally
// a sampled cluster-utilization series.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/workloads/mixed.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/tpcds.h"
#include "src/workloads/tpch.h"

namespace {

struct Flags {
  std::string workload = "tpch";
  std::string scheduler = "ursa-ejf";
  int jobs = 50;
  double interval = 5.0;
  uint64_t seed = 42;
  int workers = 20;
  double gbps = 10.0;
  double subscription = 1.0;
  double series = 0.0;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ursa_sim [--workload=tpch|tpcds|tpch2|mixed|synthetic]\n"
               "                [--scheduler=ursa-ejf|ursa-srjf|y+s|y+t|y+u|tetris|tetris2|"
               "capacity]\n"
               "                [--jobs=N] [--interval=SEC] [--seed=N] [--workers=N]\n"
               "                [--gbps=G] [--subscription=R] [--series=STEP]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ursa;
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "workload", &value)) {
      flags.workload = value;
    } else if (ParseFlag(argv[i], "scheduler", &value)) {
      flags.scheduler = value;
    } else if (ParseFlag(argv[i], "jobs", &value)) {
      flags.jobs = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "interval", &value)) {
      flags.interval = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "workers", &value)) {
      flags.workers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "gbps", &value)) {
      flags.gbps = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "subscription", &value)) {
      flags.subscription = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "series", &value)) {
      flags.series = std::atof(value.c_str());
    } else {
      return Usage();
    }
  }

  // Workload.
  Workload workload;
  if (flags.workload == "tpch") {
    TpchWorkloadConfig config;
    config.num_jobs = flags.jobs;
    config.submit_interval = flags.interval;
    config.seed = flags.seed;
    workload = MakeTpchWorkload(config);
  } else if (flags.workload == "tpcds") {
    TpcdsWorkloadConfig config;
    config.num_jobs = flags.jobs;
    config.submit_interval = flags.interval;
    config.seed = flags.seed;
    workload = MakeTpcdsWorkload(config);
  } else if (flags.workload == "tpch2") {
    workload = MakeTpch2Workload(flags.seed);
  } else if (flags.workload == "mixed") {
    MixedWorkloadConfig config;
    config.seed = flags.seed;
    workload = MakeMixedWorkload(config);
  } else if (flags.workload == "synthetic") {
    workload = MakeSyntheticMixedWorkload(std::max(1, flags.jobs / 2), flags.seed);
  } else {
    return Usage();
  }

  // Scheduler.
  ExperimentConfig config;
  if (flags.scheduler == "ursa-ejf") {
    config = UrsaEjfConfig();
  } else if (flags.scheduler == "ursa-srjf") {
    config = UrsaSrjfConfig();
  } else if (flags.scheduler == "y+s") {
    config = SparkLikeConfig();
  } else if (flags.scheduler == "y+t") {
    config = TezLikeConfig();
  } else if (flags.scheduler == "y+u") {
    config = MonoSparkConfig();
  } else if (flags.scheduler == "tetris" || flags.scheduler == "tetris2" ||
             flags.scheduler == "capacity") {
    config = UrsaEjfConfig();
    config.ursa.placement = flags.scheduler == "tetris"
                                ? PlacementAlgorithm::kTetris
                                : (flags.scheduler == "tetris2" ? PlacementAlgorithm::kTetris2
                                                                : PlacementAlgorithm::kCapacity);
  } else {
    return Usage();
  }
  config.cluster.num_workers = flags.workers;
  config.cluster.uplink_bytes_per_sec = GbpsToBytesPerSec(flags.gbps);
  config.cluster.downlink_bytes_per_sec = GbpsToBytesPerSec(flags.gbps);
  config.cm.cpu_subscription_ratio = flags.subscription;
  config.sample_step = flags.series;

  const ExperimentResult result = RunExperiment(workload, config, flags.scheduler);

  Table table({"scheme", "jobs", "makespan", "avgJCT", "UEcpu", "SEcpu", "UEmem", "SEmem",
               "straggler%"});
  table.Row()
      .Cell(flags.scheduler)
      .Cell(static_cast<int64_t>(result.records.size()))
      .Cell(result.makespan(), 1)
      .Cell(result.avg_jct(), 2)
      .Cell(result.efficiency.ue_cpu)
      .Cell(result.efficiency.se_cpu)
      .Cell(result.efficiency.ue_mem)
      .Cell(result.efficiency.se_mem)
      .Cell(result.straggler_ratio, 2);
  table.Print(flags.workload + " on " + std::to_string(flags.workers) + " workers");

  if (flags.series > 0.0) {
    PrintSeriesCsv(flags.scheduler, result.series.t0, result.series.step, result.series.cpu,
                   result.series.mem, result.series.net);
  }
  return 0;
}
