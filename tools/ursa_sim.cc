// ursa_sim: command-line driver for the cluster simulator.
//
//   ursa_sim --workload=tpch --scheduler=ursa-ejf --jobs=50 [options]
//
// Workloads:   tpch | tpcds | tpch2 | mixed | synthetic
// Schedulers:  ursa-ejf | ursa-srjf | y+s | y+t | y+u |
//              tetris | tetris2 | capacity
// Options:     --jobs=N --interval=SEC --seed=N --workers=N --gbps=G
//              --subscription=R (executor schemes) --series=STEP
// Tracing:     --trace (record + summary only) --trace-out=FILE (Chrome
//              trace JSON) --trace-sample=N --trace-capacity=EVENTS
// Chaos:       --fault-crashes=N --fault-recovers=N --fault-transients=N
//              --fault-degrades=N --fault-seed=N --fault-horizon=SEC
//              --detect-timeout=SEC --heartbeat=SEC --no-lineage
//              --retry-attempts=N
// Speculation: --spec --spec-threshold=X --spec-budget=FRAC
//              --spec-min-runtime=SEC
//
// Prints the paper-style summary (makespan, avg JCT, SE/UE), a fault report
// when chaos was injected, and optionally a sampled cluster-utilization
// series.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/obs/trace.h"
#include "src/workloads/mixed.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/tpcds.h"
#include "src/workloads/tpch.h"

namespace {

struct Flags {
  std::string workload = "tpch";
  std::string scheduler = "ursa-ejf";
  int jobs = 50;
  double interval = 5.0;
  uint64_t seed = 42;
  int workers = 20;
  double gbps = 10.0;
  double subscription = 1.0;
  double series = 0.0;
  bool trace = false;  // Record without exporting (summary only).
  std::string trace_out;
  int trace_sample = 1;
  size_t trace_capacity = size_t{1} << 20;
  // Chaos fault injection (Ursa schemes only).
  int fault_crashes = 0;
  int fault_recovers = 0;
  int fault_transients = 0;
  int fault_degrades = 0;
  uint64_t fault_seed = 1;
  double fault_horizon = 100.0;
  double detect_timeout = 2.0;
  double heartbeat = 0.5;
  bool no_lineage = false;
  int retry_attempts = 3;
  // Straggler mitigation (DESIGN.md section 9; Ursa schemes only).
  bool spec = false;
  double spec_threshold = 1.75;
  double spec_budget = 0.1;
  double spec_min_runtime = 1.0;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ursa_sim [--workload=tpch|tpcds|tpch2|mixed|synthetic]\n"
               "                [--scheduler=ursa-ejf|ursa-srjf|y+s|y+t|y+u|tetris|tetris2|"
               "capacity]\n"
               "                [--jobs=N] [--interval=SEC] [--seed=N] [--workers=N]\n"
               "                [--gbps=G] [--subscription=R] [--series=STEP]\n"
               "                [--trace] [--trace-out=FILE] [--trace-sample=N]\n"
               "                [--trace-capacity=EVENTS]\n"
               "                [--fault-crashes=N] [--fault-recovers=N]\n"
               "                [--fault-transients=N] [--fault-degrades=N]\n"
               "                [--fault-seed=N] [--fault-horizon=SEC]\n"
               "                [--detect-timeout=SEC] [--heartbeat=SEC]\n"
               "                [--no-lineage] [--retry-attempts=N]\n"
               "                [--spec] [--spec-threshold=X] [--spec-budget=FRAC]\n"
               "                [--spec-min-runtime=SEC]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ursa;
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "workload", &value)) {
      flags.workload = value;
    } else if (ParseFlag(argv[i], "scheduler", &value)) {
      flags.scheduler = value;
    } else if (ParseFlag(argv[i], "jobs", &value)) {
      flags.jobs = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "interval", &value)) {
      flags.interval = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "workers", &value)) {
      flags.workers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "gbps", &value)) {
      flags.gbps = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "subscription", &value)) {
      flags.subscription = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "series", &value)) {
      flags.series = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      flags.trace = true;
    } else if (ParseFlag(argv[i], "trace-out", &value)) {
      flags.trace_out = value;
    } else if (ParseFlag(argv[i], "trace-sample", &value)) {
      flags.trace_sample = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "trace-capacity", &value)) {
      flags.trace_capacity = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "fault-crashes", &value)) {
      flags.fault_crashes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "fault-recovers", &value)) {
      flags.fault_recovers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "fault-transients", &value)) {
      flags.fault_transients = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "fault-degrades", &value)) {
      flags.fault_degrades = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "fault-seed", &value)) {
      flags.fault_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "fault-horizon", &value)) {
      flags.fault_horizon = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "detect-timeout", &value)) {
      flags.detect_timeout = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "heartbeat", &value)) {
      flags.heartbeat = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--no-lineage") == 0) {
      flags.no_lineage = true;
    } else if (ParseFlag(argv[i], "retry-attempts", &value)) {
      flags.retry_attempts = std::atoi(value.c_str());
    } else if (std::strcmp(argv[i], "--spec") == 0) {
      flags.spec = true;
    } else if (ParseFlag(argv[i], "spec-threshold", &value)) {
      flags.spec_threshold = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "spec-budget", &value)) {
      flags.spec_budget = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "spec-min-runtime", &value)) {
      flags.spec_min_runtime = std::atof(value.c_str());
    } else {
      return Usage();
    }
  }

  // Workload.
  Workload workload;
  if (flags.workload == "tpch") {
    TpchWorkloadConfig config;
    config.num_jobs = flags.jobs;
    config.submit_interval = flags.interval;
    config.seed = flags.seed;
    workload = MakeTpchWorkload(config);
  } else if (flags.workload == "tpcds") {
    TpcdsWorkloadConfig config;
    config.num_jobs = flags.jobs;
    config.submit_interval = flags.interval;
    config.seed = flags.seed;
    workload = MakeTpcdsWorkload(config);
  } else if (flags.workload == "tpch2") {
    workload = MakeTpch2Workload(flags.seed);
  } else if (flags.workload == "mixed") {
    MixedWorkloadConfig config;
    config.seed = flags.seed;
    workload = MakeMixedWorkload(config);
  } else if (flags.workload == "synthetic") {
    workload = MakeSyntheticMixedWorkload(std::max(1, flags.jobs / 2), flags.seed);
  } else {
    return Usage();
  }

  // Scheduler.
  ExperimentConfig config;
  if (flags.scheduler == "ursa-ejf") {
    config = UrsaEjfConfig();
  } else if (flags.scheduler == "ursa-srjf") {
    config = UrsaSrjfConfig();
  } else if (flags.scheduler == "y+s") {
    config = SparkLikeConfig();
  } else if (flags.scheduler == "y+t") {
    config = TezLikeConfig();
  } else if (flags.scheduler == "y+u") {
    config = MonoSparkConfig();
  } else if (flags.scheduler == "tetris" || flags.scheduler == "tetris2" ||
             flags.scheduler == "capacity") {
    config = UrsaEjfConfig();
    config.ursa.placement = flags.scheduler == "tetris"
                                ? PlacementAlgorithm::kTetris
                                : (flags.scheduler == "tetris2" ? PlacementAlgorithm::kTetris2
                                                                : PlacementAlgorithm::kCapacity);
  } else {
    return Usage();
  }
  config.cluster.num_workers = flags.workers;
  config.cluster.uplink_bytes_per_sec = GbpsToBytesPerSec(flags.gbps);
  config.cluster.downlink_bytes_per_sec = GbpsToBytesPerSec(flags.gbps);
  config.cm.cpu_subscription_ratio = flags.subscription;
  config.sample_step = flags.series;
  config.trace = flags.trace;
  config.trace_out = flags.trace_out;
  config.trace_sample = flags.trace_sample;
  config.trace_capacity = flags.trace_capacity;

  // Fault-tolerance knobs and the chaos plan.
  config.ursa.fault.detector.heartbeat_interval = flags.heartbeat;
  config.ursa.fault.detector.detect_timeout = flags.detect_timeout;
  config.ursa.fault.enable_lineage_recovery = !flags.no_lineage;
  config.ursa.fault.max_monotask_attempts = flags.retry_attempts;
  config.ursa.spec.enabled = flags.spec;
  config.ursa.spec.slowdown_threshold = flags.spec_threshold;
  config.ursa.spec.budget_fraction = flags.spec_budget;
  config.ursa.spec.min_runtime = flags.spec_min_runtime;
  if (flags.fault_crashes + flags.fault_recovers + flags.fault_transients +
          flags.fault_degrades >
      0) {
    FaultPlanConfig pc;
    pc.seed = flags.fault_seed;
    pc.num_workers = flags.workers;
    pc.horizon_end = flags.fault_horizon;
    pc.crashes = flags.fault_crashes;
    pc.crash_recovers = flags.fault_recovers;
    pc.transients = flags.fault_transients;
    pc.degrades = flags.fault_degrades;
    config.fault_plan = MakeRandomFaultPlan(pc);
  }

  const ExperimentResult result = RunExperiment(workload, config, flags.scheduler);

  Table table({"scheme", "jobs", "makespan", "avgJCT", "UEcpu", "SEcpu", "UEmem", "SEmem",
               "straggler%"});
  table.Row()
      .Cell(flags.scheduler)
      .Cell(static_cast<int64_t>(result.records.size()))
      .Cell(result.makespan(), 1)
      .Cell(result.avg_jct(), 2)
      .Cell(result.efficiency.ue_cpu)
      .Cell(result.efficiency.se_cpu)
      .Cell(result.efficiency.ue_mem)
      .Cell(result.efficiency.se_mem)
      .Cell(result.straggler_ratio, 2);
  table.Print(flags.workload + " on " + std::to_string(flags.workers) + " workers");
  MetricsCollector::PrintFaultReport(result.faults, flags.scheduler);
  if (result.trace != nullptr) {
    result.trace->PrintSummary(flags.scheduler);
    if (!flags.trace_out.empty()) {
      std::printf("trace written to %s\n", flags.trace_out.c_str());
    }
  }

  if (flags.series > 0.0) {
    PrintSeriesCsv(flags.scheduler, result.series.t0, result.series.step, result.series.cpu,
                   result.series.mem, result.series.net);
  }
  return 0;
}
