file(REMOVE_RECURSE
  "CMakeFiles/compare.dir/compare.cc.o"
  "CMakeFiles/compare.dir/compare.cc.o.d"
  "compare"
  "compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
