# Empty compiler generated dependencies file for compare.
# This may be replaced when dependencies are built.
