file(REMOVE_RECURSE
  "CMakeFiles/ursa_sim.dir/ursa_sim.cc.o"
  "CMakeFiles/ursa_sim.dir/ursa_sim.cc.o.d"
  "ursa_sim"
  "ursa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
