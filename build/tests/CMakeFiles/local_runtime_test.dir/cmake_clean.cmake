file(REMOVE_RECURSE
  "CMakeFiles/local_runtime_test.dir/local_runtime_test.cc.o"
  "CMakeFiles/local_runtime_test.dir/local_runtime_test.cc.o.d"
  "local_runtime_test"
  "local_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
