# Empty dependencies file for local_runtime_test.
# This may be replaced when dependencies are built.
