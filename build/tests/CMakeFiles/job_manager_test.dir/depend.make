# Empty dependencies file for job_manager_test.
# This may be replaced when dependencies are built.
