file(REMOVE_RECURSE
  "CMakeFiles/job_manager_test.dir/job_manager_test.cc.o"
  "CMakeFiles/job_manager_test.dir/job_manager_test.cc.o.d"
  "job_manager_test"
  "job_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
