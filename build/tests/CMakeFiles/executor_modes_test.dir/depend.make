# Empty dependencies file for executor_modes_test.
# This may be replaced when dependencies are built.
