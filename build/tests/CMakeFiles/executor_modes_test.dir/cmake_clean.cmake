file(REMOVE_RECURSE
  "CMakeFiles/executor_modes_test.dir/executor_modes_test.cc.o"
  "CMakeFiles/executor_modes_test.dir/executor_modes_test.cc.o.d"
  "executor_modes_test"
  "executor_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
