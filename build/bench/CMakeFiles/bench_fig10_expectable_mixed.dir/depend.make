# Empty dependencies file for bench_fig10_expectable_mixed.
# This may be replaced when dependencies are built.
