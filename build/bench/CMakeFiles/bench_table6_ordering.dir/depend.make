# Empty dependencies file for bench_table6_ordering.
# This may be replaced when dependencies are built.
