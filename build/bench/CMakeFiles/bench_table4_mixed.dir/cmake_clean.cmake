file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_mixed.dir/bench_table4_mixed.cc.o"
  "CMakeFiles/bench_table4_mixed.dir/bench_table4_mixed.cc.o.d"
  "bench_table4_mixed"
  "bench_table4_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
