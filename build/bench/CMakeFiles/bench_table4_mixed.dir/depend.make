# Empty dependencies file for bench_table4_mixed.
# This may be replaced when dependencies are built.
