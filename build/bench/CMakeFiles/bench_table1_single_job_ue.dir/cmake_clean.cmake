file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_single_job_ue.dir/bench_table1_single_job_ue.cc.o"
  "CMakeFiles/bench_table1_single_job_ue.dir/bench_table1_single_job_ue.cc.o.d"
  "bench_table1_single_job_ue"
  "bench_table1_single_job_ue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_single_job_ue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
