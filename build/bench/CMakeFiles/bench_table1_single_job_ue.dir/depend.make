# Empty dependencies file for bench_table1_single_job_ue.
# This may be replaced when dependencies are built.
