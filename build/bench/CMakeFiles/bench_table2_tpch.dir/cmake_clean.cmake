file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tpch.dir/bench_table2_tpch.cc.o"
  "CMakeFiles/bench_table2_tpch.dir/bench_table2_tpch.cc.o.d"
  "bench_table2_tpch"
  "bench_table2_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
