file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_tpcds.dir/bench_table3_tpcds.cc.o"
  "CMakeFiles/bench_table3_tpcds.dir/bench_table3_tpcds.cc.o.d"
  "bench_table3_tpcds"
  "bench_table3_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
