# Empty dependencies file for bench_fig8_synthetic_single.
# This may be replaced when dependencies are built.
