# Empty compiler generated dependencies file for bench_fig9_expectable.
# This may be replaced when dependencies are built.
