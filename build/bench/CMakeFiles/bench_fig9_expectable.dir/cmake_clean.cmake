file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_expectable.dir/bench_fig9_expectable.cc.o"
  "CMakeFiles/bench_fig9_expectable.dir/bench_fig9_expectable.cc.o.d"
  "bench_fig9_expectable"
  "bench_fig9_expectable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_expectable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
