file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_oversubscription.dir/bench_table5_oversubscription.cc.o"
  "CMakeFiles/bench_table5_oversubscription.dir/bench_table5_oversubscription.cc.o.d"
  "bench_table5_oversubscription"
  "bench_table5_oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
