file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_stage_awareness.dir/bench_fig7_stage_awareness.cc.o"
  "CMakeFiles/bench_fig7_stage_awareness.dir/bench_fig7_stage_awareness.cc.o.d"
  "bench_fig7_stage_awareness"
  "bench_fig7_stage_awareness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_stage_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
