# Empty dependencies file for bench_fig6_network.
# This may be replaced when dependencies are built.
