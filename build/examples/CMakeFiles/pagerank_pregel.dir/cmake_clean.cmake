file(REMOVE_RECURSE
  "CMakeFiles/pagerank_pregel.dir/pagerank_pregel.cpp.o"
  "CMakeFiles/pagerank_pregel.dir/pagerank_pregel.cpp.o.d"
  "pagerank_pregel"
  "pagerank_pregel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_pregel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
