# Empty compiler generated dependencies file for pagerank_pregel.
# This may be replaced when dependencies are built.
