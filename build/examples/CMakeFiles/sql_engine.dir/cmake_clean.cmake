file(REMOVE_RECURSE
  "CMakeFiles/sql_engine.dir/sql_engine.cpp.o"
  "CMakeFiles/sql_engine.dir/sql_engine.cpp.o.d"
  "sql_engine"
  "sql_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
