# Empty dependencies file for sql_engine.
# This may be replaced when dependencies are built.
