# Empty compiler generated dependencies file for custom_dataflow.
# This may be replaced when dependencies are built.
