file(REMOVE_RECURSE
  "libursa.a"
)
