# Empty dependencies file for ursa.
# This may be replaced when dependencies are built.
