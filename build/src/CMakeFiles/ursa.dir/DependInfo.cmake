
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bsp_runtime.cc" "src/CMakeFiles/ursa.dir/baselines/bsp_runtime.cc.o" "gcc" "src/CMakeFiles/ursa.dir/baselines/bsp_runtime.cc.o.d"
  "/root/repo/src/baselines/container_manager.cc" "src/CMakeFiles/ursa.dir/baselines/container_manager.cc.o" "gcc" "src/CMakeFiles/ursa.dir/baselines/container_manager.cc.o.d"
  "/root/repo/src/baselines/executor_runtime.cc" "src/CMakeFiles/ursa.dir/baselines/executor_runtime.cc.o" "gcc" "src/CMakeFiles/ursa.dir/baselines/executor_runtime.cc.o.d"
  "/root/repo/src/baselines/packing_schedulers.cc" "src/CMakeFiles/ursa.dir/baselines/packing_schedulers.cc.o" "gcc" "src/CMakeFiles/ursa.dir/baselines/packing_schedulers.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ursa.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ursa.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/ursa.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/ursa.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/ursa.dir/common/table.cc.o" "gcc" "src/CMakeFiles/ursa.dir/common/table.cc.o.d"
  "/root/repo/src/common/time_series.cc" "src/CMakeFiles/ursa.dir/common/time_series.cc.o" "gcc" "src/CMakeFiles/ursa.dir/common/time_series.cc.o.d"
  "/root/repo/src/dag/job.cc" "src/CMakeFiles/ursa.dir/dag/job.cc.o" "gcc" "src/CMakeFiles/ursa.dir/dag/job.cc.o.d"
  "/root/repo/src/dag/opgraph.cc" "src/CMakeFiles/ursa.dir/dag/opgraph.cc.o" "gcc" "src/CMakeFiles/ursa.dir/dag/opgraph.cc.o.d"
  "/root/repo/src/dag/plan.cc" "src/CMakeFiles/ursa.dir/dag/plan.cc.o" "gcc" "src/CMakeFiles/ursa.dir/dag/plan.cc.o.d"
  "/root/repo/src/driver/experiment.cc" "src/CMakeFiles/ursa.dir/driver/experiment.cc.o" "gcc" "src/CMakeFiles/ursa.dir/driver/experiment.cc.o.d"
  "/root/repo/src/exec/cluster.cc" "src/CMakeFiles/ursa.dir/exec/cluster.cc.o" "gcc" "src/CMakeFiles/ursa.dir/exec/cluster.cc.o.d"
  "/root/repo/src/exec/estimator.cc" "src/CMakeFiles/ursa.dir/exec/estimator.cc.o" "gcc" "src/CMakeFiles/ursa.dir/exec/estimator.cc.o.d"
  "/root/repo/src/exec/job_manager.cc" "src/CMakeFiles/ursa.dir/exec/job_manager.cc.o" "gcc" "src/CMakeFiles/ursa.dir/exec/job_manager.cc.o.d"
  "/root/repo/src/exec/metadata_store.cc" "src/CMakeFiles/ursa.dir/exec/metadata_store.cc.o" "gcc" "src/CMakeFiles/ursa.dir/exec/metadata_store.cc.o.d"
  "/root/repo/src/exec/monotask_queue.cc" "src/CMakeFiles/ursa.dir/exec/monotask_queue.cc.o" "gcc" "src/CMakeFiles/ursa.dir/exec/monotask_queue.cc.o.d"
  "/root/repo/src/exec/worker.cc" "src/CMakeFiles/ursa.dir/exec/worker.cc.o" "gcc" "src/CMakeFiles/ursa.dir/exec/worker.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/ursa.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/ursa.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/net/flow_simulator.cc" "src/CMakeFiles/ursa.dir/net/flow_simulator.cc.o" "gcc" "src/CMakeFiles/ursa.dir/net/flow_simulator.cc.o.d"
  "/root/repo/src/runtime/local_runtime.cc" "src/CMakeFiles/ursa.dir/runtime/local_runtime.cc.o" "gcc" "src/CMakeFiles/ursa.dir/runtime/local_runtime.cc.o.d"
  "/root/repo/src/scheduler/job_ordering.cc" "src/CMakeFiles/ursa.dir/scheduler/job_ordering.cc.o" "gcc" "src/CMakeFiles/ursa.dir/scheduler/job_ordering.cc.o.d"
  "/root/repo/src/scheduler/ursa_scheduler.cc" "src/CMakeFiles/ursa.dir/scheduler/ursa_scheduler.cc.o" "gcc" "src/CMakeFiles/ursa.dir/scheduler/ursa_scheduler.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/ursa.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/ursa.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/ursa.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/ursa.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sql/catalog.cc" "src/CMakeFiles/ursa.dir/sql/catalog.cc.o" "gcc" "src/CMakeFiles/ursa.dir/sql/catalog.cc.o.d"
  "/root/repo/src/sql/engine.cc" "src/CMakeFiles/ursa.dir/sql/engine.cc.o" "gcc" "src/CMakeFiles/ursa.dir/sql/engine.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/ursa.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/ursa.dir/sql/parser.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/ursa.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/ursa.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/mixed.cc" "src/CMakeFiles/ursa.dir/workloads/mixed.cc.o" "gcc" "src/CMakeFiles/ursa.dir/workloads/mixed.cc.o.d"
  "/root/repo/src/workloads/ml.cc" "src/CMakeFiles/ursa.dir/workloads/ml.cc.o" "gcc" "src/CMakeFiles/ursa.dir/workloads/ml.cc.o.d"
  "/root/repo/src/workloads/sql_builder.cc" "src/CMakeFiles/ursa.dir/workloads/sql_builder.cc.o" "gcc" "src/CMakeFiles/ursa.dir/workloads/sql_builder.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/ursa.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/ursa.dir/workloads/synthetic.cc.o.d"
  "/root/repo/src/workloads/tpcds.cc" "src/CMakeFiles/ursa.dir/workloads/tpcds.cc.o" "gcc" "src/CMakeFiles/ursa.dir/workloads/tpcds.cc.o.d"
  "/root/repo/src/workloads/tpch.cc" "src/CMakeFiles/ursa.dir/workloads/tpch.cc.o" "gcc" "src/CMakeFiles/ursa.dir/workloads/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
