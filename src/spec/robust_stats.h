// Robust running statistics for straggler detection (DESIGN.md section 9).
//
// A RobustSample keeps a sorted multiset of observed durations and answers
// median and MAD (median absolute deviation) queries. Median + MAD are the
// LATE-style robust alternative to mean + stddev: a handful of genuinely
// slow tasks shifts neither, so the detection threshold tracks the healthy
// population instead of chasing the outliers it is trying to flag.
#ifndef SRC_SPEC_ROBUST_STATS_H_
#define SRC_SPEC_ROBUST_STATS_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace ursa {

class RobustSample {
 public:
  void Add(double value) {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), value);
    sorted_.insert(it, value);
  }

  size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  double Median() const { return MedianOf(sorted_); }

  // Median of |x - median(x)|. Zero until there are at least two samples.
  double Mad() const {
    if (sorted_.size() < 2) {
      return 0.0;
    }
    const double median = Median();
    std::vector<double> deviations;
    deviations.reserve(sorted_.size());
    for (double v : sorted_) {
      deviations.push_back(v >= median ? v - median : median - v);
    }
    std::sort(deviations.begin(), deviations.end());
    return MedianOf(deviations);
  }

 private:
  static double MedianOf(const std::vector<double>& sorted) {
    if (sorted.empty()) {
      return 0.0;
    }
    const size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }

  std::vector<double> sorted_;
};

}  // namespace ursa

#endif  // SRC_SPEC_ROBUST_STATS_H_
