// Straggler mitigation by speculative task execution (DESIGN.md section 9).
//
// Detection lives in the job managers (per-stage RobustSample of completed
// task durations; a placed task whose elapsed time exceeds
// max(min_runtime, slowdown_threshold * median + mad_multiplier * MAD) is a
// straggler candidate). Mitigation lives in the scheduler (a speculative
// copy of the task is placed on a different worker via the same Algorithm-1
// score used for primary placement). This header holds the pieces shared by
// both sides: the configuration knobs, the candidate record the job manager
// hands to the scheduler, and the SpeculationManager that enforces the
// global wasted-work budget and funnels all speculation accounting into
// FaultStats.
#ifndef SRC_SPEC_SPECULATION_H_
#define SRC_SPEC_SPECULATION_H_

#include "src/common/mutex.h"
#include "src/dag/types.h"
#include "src/fault/fault_stats.h"
#include "src/spec/robust_stats.h"

namespace ursa {

struct SpeculationConfig {
  bool enabled = false;
  // A placed task is a straggler candidate once its elapsed time exceeds
  // slowdown_threshold * stage_median + mad_multiplier * stage_MAD.
  double slowdown_threshold = 1.75;
  double mad_multiplier = 3.0;
  // Never speculate on a task younger than this (seconds); short tasks
  // finish before the copy could help.
  double min_runtime = 1.0;
  // Require this many completed tasks in the stage before trusting the
  // stage statistics.
  int min_stage_samples = 3;
  // At most floor(budget_fraction * running placed tasks) speculative copies
  // may be live at once (but at least one whenever the fraction is positive
  // and anything is running). This caps the duplicate work the cluster can
  // carry regardless of how many tasks look slow.
  double budget_fraction = 0.1;
};

// One straggler the job manager wants a copy of, ranked by the LATE-style
// estimated time to finish (larger = more worth duplicating).
struct StragglerCandidate {
  JobId job = kInvalidId;
  TaskId task = kInvalidId;
  StageId stage = kInvalidId;
  WorkerId worker = kInvalidId;  // Where the primary copy runs; avoid it.
  double elapsed = 0.0;
  double estimated_time_to_finish = 0.0;
  // Resource demand for Algorithm-1 scoring of the copy's placement
  // (bytes per monotask resource + the primary's memory allocation).
  double bytes[kNumMonotaskResources] = {};
  double memory = 0.0;
};

// Tracks live speculative copies against the global budget and records all
// speculation outcomes and wasted work into FaultStats. One instance per
// scheduler, shared by every job manager.
class SpeculationManager {
 public:
  SpeculationManager(const SpeculationConfig& config, FaultStats* stats)
      : config_(config), stats_(stats) {}

  SpeculationManager(const SpeculationManager&) = delete;
  SpeculationManager& operator=(const SpeculationManager&) = delete;

  const SpeculationConfig& config() const { return config_; }
  int active() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return active_;
  }

  // True when the budget admits one more live copy given `running_tasks`
  // currently placed primaries.
  bool CanLaunch(int running_tasks) const EXCLUDES(mu_) {
    if (!config_.enabled || config_.budget_fraction <= 0.0 || running_tasks <= 0) {
      return false;
    }
    const int cap = static_cast<int>(config_.budget_fraction * running_tasks);
    MutexLock lock(mu_);
    return active_ < (cap > 0 ? cap : 1);
  }

  void OnLaunched() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      ++active_;
    }
    stats_->RecordSpeculationLaunched();
  }
  void OnWon() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      --active_;
    }
    stats_->RecordSpeculationWon();
  }
  void OnLost() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      --active_;
    }
    stats_->RecordSpeculationLost();
  }
  void OnCancelled() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      --active_;
    }
    stats_->RecordSpeculationCancelled();
  }

  // Duplicate work discarded by a cancellation: `bytes` processed by the
  // losing side and the `seconds` it occupied the resource.
  void RecordWaste(double now, ResourceType r, double bytes, double seconds) {
    stats_->RecordWastedWork(now, r, bytes, seconds);
  }

 private:
  SpeculationConfig config_;
  FaultStats* stats_;
  mutable Mutex mu_;
  int active_ GUARDED_BY(mu_) = 0;  // Live speculative copies across all jobs.
};

// Detection predicate: is a task that has been running for `elapsed` seconds
// a straggler given its stage's completed-duration statistics? False until
// the stage has config.min_stage_samples completions.
bool IsStraggler(const SpeculationConfig& config, const RobustSample& stage_durations,
                 double elapsed);

// LATE-style estimated time to finish from elapsed runtime and progress in
// [0, 1] (fraction of the task's input bytes already processed). Tasks with
// no measurable progress rank above everything with the same elapsed time.
double EstimatedTimeToFinish(double elapsed, double progress);

}  // namespace ursa

#endif  // SRC_SPEC_SPECULATION_H_
