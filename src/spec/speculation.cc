#include "src/spec/speculation.h"

#include <algorithm>

namespace ursa {

bool IsStraggler(const SpeculationConfig& config, const RobustSample& stage_durations,
                 double elapsed) {
  if (static_cast<int>(stage_durations.size()) < config.min_stage_samples) {
    return false;
  }
  const double median = stage_durations.Median();
  if (median <= 0.0) {
    return false;
  }
  const double limit = std::max(
      config.min_runtime,
      config.slowdown_threshold * median + config.mad_multiplier * stage_durations.Mad());
  return elapsed > limit;
}

double EstimatedTimeToFinish(double elapsed, double progress) {
  progress = std::clamp(progress, 0.0, 1.0);
  if (progress <= 0.0) {
    // No progress signal yet: rank by elapsed time alone, above any task
    // that has made progress for the same elapsed time.
    return elapsed * 1e6;
  }
  return elapsed * (1.0 - progress) / progress;
}

}  // namespace ursa
