#include "src/scheduler/job_ordering.h"

#include <algorithm>

namespace ursa {

double SrjfRank(const std::array<double, kNumMonotaskResources>& remaining,
                const std::array<double, kNumMonotaskResources>& cluster_load) {
  double rank = 0.0;
  for (size_t r = 0; r < remaining.size(); ++r) {
    if (cluster_load[r] <= 0.0) {
      continue;
    }
    const double rho = std::clamp(remaining[r] / cluster_load[r], 0.0, 1.0);
    rank += (2.0 - rho) * rho;
  }
  return rank;
}

double PlacementPriorityBonus(OrderingPolicy policy, double weight, double elapsed,
                              double srjf_rank) {
  if (policy == OrderingPolicy::kGraphene) {
    // The stage-level troublesome term is added by the scheduler; the job
    // term defers to the configured base policy (resolved by the caller via
    // EffectiveJobPolicy, which never yields kGraphene).
    policy = OrderingPolicy::kSrjf;
  }
  if (policy == OrderingPolicy::kEjf) {
    return weight * elapsed;
  }
  return weight / (srjf_rank + 1e-3);
}

double GrapheneStageBonus(double stage_weight, bool troublesome, double bottom_share) {
  if (!troublesome) {
    return 0.0;
  }
  return stage_weight * (1.0 + std::clamp(bottom_share, 0.0, 1.0));
}

const std::vector<OrderingPolicyInfo>& OrderingPolicyRegistry() {
  static const std::vector<OrderingPolicyInfo> kRegistry = {
      {OrderingPolicy::kEjf, "EJF", "ejf", "Earliest Job First (section 4.2.2)"},
      {OrderingPolicy::kSrjf, "SRJF", "srjf",
       "Smallest Remaining Job First (section 4.2.2)"},
      {OrderingPolicy::kGraphene, "GRAPHENE", "graphene",
       "Troublesome-subset-first DAG ordering (DESIGN.md section 13)"},
  };
  return kRegistry;
}

bool ParseOrderingPolicy(const std::string& flag, OrderingPolicy* out) {
  for (const OrderingPolicyInfo& info : OrderingPolicyRegistry()) {
    if (flag == info.flag || flag == info.name) {
      *out = info.policy;
      return true;
    }
  }
  return false;
}

}  // namespace ursa
