#include "src/scheduler/job_ordering.h"

#include <algorithm>

namespace ursa {

double SrjfRank(const std::array<double, kNumMonotaskResources>& remaining,
                const std::array<double, kNumMonotaskResources>& cluster_load) {
  double rank = 0.0;
  for (size_t r = 0; r < remaining.size(); ++r) {
    if (cluster_load[r] <= 0.0) {
      continue;
    }
    const double rho = std::clamp(remaining[r] / cluster_load[r], 0.0, 1.0);
    rank += (2.0 - rho) * rho;
  }
  return rank;
}

double PlacementPriorityBonus(OrderingPolicy policy, double weight, double elapsed,
                              double srjf_rank) {
  if (policy == OrderingPolicy::kEjf) {
    return weight * elapsed;
  }
  return weight / (srjf_rank + 1e-3);
}

}  // namespace ursa
