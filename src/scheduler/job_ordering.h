// Job ordering policies (section 4.2.2, "Job ordering").
//
// Ursa supports Earliest Job First (EJF) and Smallest Remaining Job First
// (SRJF). Both are enforced in three places: job admission order, a weighted
// term added to the placement score of each stage, and the ordering of
// monotasks in worker queues. This header provides the rank computations;
// the scheduler wires them into those three mechanisms.
#ifndef SRC_SCHEDULER_JOB_ORDERING_H_
#define SRC_SCHEDULER_JOB_ORDERING_H_

#include <array>

#include "src/dag/types.h"

namespace ursa {

enum class OrderingPolicy : int {
  kEjf = 0,
  kSrjf = 1,
};

inline const char* OrderingPolicyName(OrderingPolicy p) {
  return p == OrderingPolicy::kEjf ? "EJF" : "SRJF";
}

// SRJF rank of a job: the dot product of (2L - R) and R with both sides
// normalized by the cluster load L, i.e. sum_r (2 - R[r]/L[r]) * (R[r]/L[r]).
// R is the job's remaining per-resource work, L the total remaining work of
// all admitted jobs. Smaller rank = less remaining work relative to the
// contended resources = scheduled first. When a resource r is heavily
// demanded (large L[r] share), it receives more weight, matching the paper's
// intuition. Resources with L[r] == 0 contribute nothing.
double SrjfRank(const std::array<double, kNumMonotaskResources>& remaining,
                const std::array<double, kNumMonotaskResources>& cluster_load);

// Priority *bonus* added to a stage's placement score for this job.
// EJF: W * elapsed-since-submission. SRJF: W / (rank + epsilon).
double PlacementPriorityBonus(OrderingPolicy policy, double weight, double elapsed,
                              double srjf_rank);

}  // namespace ursa

#endif  // SRC_SCHEDULER_JOB_ORDERING_H_
