// Job ordering policies (section 4.2.2, "Job ordering"; DESIGN.md
// section 13).
//
// Ursa supports Earliest Job First (EJF) and Smallest Remaining Job First
// (SRJF). Both are enforced in three places: job admission order, a weighted
// term added to the placement score of each stage, and the ordering of
// monotasks in worker queues. Graphene-style troublesome-first ordering
// (DAGPS, PAPERS.md) layers a DAG-aware stage term on top of a base job
// policy: each job's long-pole stage subset (src/dag/critical_path.h) gets a
// placement-score boost so the hard stuff schedules first, while admission
// and queue order follow the base policy. This header provides the rank
// computations and the policy registry; the scheduler wires them into the
// enforcement mechanisms.
#ifndef SRC_SCHEDULER_JOB_ORDERING_H_
#define SRC_SCHEDULER_JOB_ORDERING_H_

#include <array>
#include <string>
#include <vector>

#include "src/dag/types.h"

namespace ursa {

enum class OrderingPolicy : int {
  kEjf = 0,
  kSrjf = 1,
  kGraphene = 2,  // Troublesome-subset-first on top of a base policy.
};

inline const char* OrderingPolicyName(OrderingPolicy p) {
  switch (p) {
    case OrderingPolicy::kEjf:
      return "EJF";
    case OrderingPolicy::kSrjf:
      return "SRJF";
    case OrderingPolicy::kGraphene:
      return "GRAPHENE";
  }
  return "?";
}

// Graphene-style ordering knobs (used when the policy is kGraphene).
struct GrapheneConfig {
  // Long-pole membership bar: a stage is troublesome when its heaviest
  // through-path reaches this fraction of the job's critical path. The
  // default keeps the subset tight (true long poles only); lowering it
  // drags in near-critical stages, which dilutes the boost
  // (bench_policy_compare sweeps this).
  double threshold = 0.9;
  // Weight of the troublesome-stage placement bonus. Sized against
  // priority_weight so it reorders stages *within* a job (where the job
  // term is constant) and between closely ranked jobs, without overriding
  // large base-policy gaps.
  double stage_weight = 150.0;
  // Job-level policy beneath the stage term (admission order, queue
  // priorities, job placement term). Must be kEjf or kSrjf.
  OrderingPolicy base = OrderingPolicy::kSrjf;
};

// The job-level policy actually enforced at admission / queue granularity:
// the policy itself, or its configured base for kGraphene.
inline OrderingPolicy EffectiveJobPolicy(OrderingPolicy policy,
                                         const GrapheneConfig& graphene) {
  if (policy != OrderingPolicy::kGraphene) {
    return policy;
  }
  return graphene.base == OrderingPolicy::kGraphene ? OrderingPolicy::kSrjf
                                                    : graphene.base;
}

// SRJF rank of a job: the dot product of (2L - R) and R with both sides
// normalized by the cluster load L, i.e. sum_r (2 - R[r]/L[r]) * (R[r]/L[r]).
// R is the job's remaining per-resource work, L the total remaining work of
// all admitted jobs. Smaller rank = less remaining work relative to the
// contended resources = scheduled first. When a resource r is heavily
// demanded (large L[r] share), it receives more weight, matching the paper's
// intuition. Resources with L[r] == 0 contribute nothing.
double SrjfRank(const std::array<double, kNumMonotaskResources>& remaining,
                const std::array<double, kNumMonotaskResources>& cluster_load);

// Priority *bonus* added to a stage's placement score for this job.
// EJF: W * elapsed-since-submission. SRJF: W / (rank + epsilon).
// kGraphene resolves to its base policy's job term here; the troublesome
// stage term is added separately by the scheduler.
double PlacementPriorityBonus(OrderingPolicy policy, double weight, double elapsed,
                              double srjf_rank);

// Graphene's DAG-aware stage term: stage_weight * (1 + bottom_share) for a
// troublesome stage (bottom_share in [0, 1]: how much of the critical path
// still hangs below it, so deeper long-pole stages outrank shallower ones),
// 0 for the rest.
double GrapheneStageBonus(double stage_weight, bool troublesome, double bottom_share);

struct OrderingPolicyInfo {
  OrderingPolicy policy;
  const char* name;  // Table/report spelling (EJF, SRJF, GRAPHENE).
  const char* flag;  // CLI spelling (ursa-<flag>).
  const char* description;
};

// All registered ordering policies in enum order. Drives CLI parsing,
// bench_table6_ordering's columns and bench_policy_compare's sweep, so a
// new policy lands in every surface by registering here.
const std::vector<OrderingPolicyInfo>& OrderingPolicyRegistry();
bool ParseOrderingPolicy(const std::string& flag, OrderingPolicy* out);

}  // namespace ursa

#endif  // SRC_SCHEDULER_JOB_ORDERING_H_
