#include "src/scheduler/colocation.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa {

int ColocationLearner::InternKey(const std::string& klass, const std::string& stage_name) {
  const auto ident = std::make_pair(klass, stage_name);
  const auto it = key_index_.find(ident);
  if (it != key_index_.end()) {
    return it->second;
  }
  const int key = static_cast<int>(key_index_.size());
  key_index_.emplace(ident, key);
  return key;
}

int ColocationLearner::FindKey(const std::string& klass,
                               const std::string& stage_name) const {
  const auto it = key_index_.find(std::make_pair(klass, stage_name));
  return it != key_index_.end() ? it->second : -1;
}

void ColocationLearner::ObserveTick(const std::vector<std::vector<int>>& residents,
                                    const std::vector<double>& contention) {
  CHECK_EQ(residents.size(), contention.size());
  for (size_t w = 0; w < residents.size(); ++w) {
    const std::vector<int>& keys = residents[w];
    if (keys.size() < 2) {
      continue;  // Interference needs at least two co-residents.
    }
    const double sample = std::clamp(contention[w], 0.0, 1.0);
    for (size_t i = 0; i < keys.size(); ++i) {
      for (size_t j = i + 1; j < keys.size(); ++j) {
        if (keys[i] == keys[j]) {
          continue;  // Two tasks of the same stage carry no pair signal.
        }
        const auto pair = std::minmax(keys[i], keys[j]);
        auto [it, inserted] = pair_contention_.emplace(pair, sample);
        if (!inserted) {
          it->second += config_.ema_alpha * (sample - it->second);
        }
        ++observations_;
      }
    }
  }
}

double ColocationLearner::Complementarity(int a, int b) const {
  if (a < 0 || b < 0 || a == b) {
    return 0.0;
  }
  const auto it = pair_contention_.find(std::minmax(a, b));
  if (it == pair_contention_.end()) {
    return 0.0;  // Never co-resided: neutral.
  }
  // Contention EMA in [0, 1] -> complementarity in [-1, 1].
  return 1.0 - 2.0 * std::clamp(it->second, 0.0, 1.0);
}

double ColocationLearner::PlacementBonus(int key,
                                         const std::vector<int>& residents_on_worker) const {
  if (key < 0 || residents_on_worker.empty()) {
    return 0.0;
  }
  // Attraction-only: reward workers whose residents the candidate stage has
  // historically co-run with at low contention, but never penalize below the
  // base score — a negative bonus would systematically repel tasks from busy
  // workers, undoing Algorithm 1's preference for filling partially loaded
  // machines.
  double sum = 0.0;
  for (const int resident : residents_on_worker) {
    sum += std::max(0.0, Complementarity(key, resident));
  }
  return sum / static_cast<double>(residents_on_worker.size());
}

bool HugoScorePolicy::Score(const TaskUsage& usage, const WorkerLoad& load,
                            WorkerId worker, double ept,
                            const int headroom[kNumMonotaskResources],
                            bool consider_network, const ScoreContext& ctx,
                            double* out_score) const {
  if (!base_->Score(usage, load, worker, ept, headroom, consider_network, ctx,
                    out_score)) {
    return false;
  }
  if (ctx.stage_key >= 0 && ctx.residents != nullptr &&
      static_cast<size_t>(worker) < ctx.residents->size()) {
    *out_score += weight_ * learner_->PlacementBonus(
                                ctx.stage_key, (*ctx.residents)[static_cast<size_t>(worker)]);
  }
  return true;
}

}  // namespace ursa
