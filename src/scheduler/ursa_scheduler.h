// Ursa's centralized scheduler (section 4.2.2): memory-based job admission
// and the stage-aware, load-balanced task placement of Algorithm 1.
//
// The scheduler runs in batches at a configurable scheduling interval. At
// each tick it:
//   1. admits queued jobs in policy order while the cluster-wide memory
//      reservation fits (preventing memory deadlock);
//   2. refreshes SRJF priorities (job ranks from remaining work R against
//      cluster load L) and re-sorts worker queues if they changed;
//   3. runs Algorithm 1: for every stage with ready tasks it computes a
//      placement plan and a score from the per-worker load headroom
//      D_r(w) = max(0, (EPT - APT_r(w)) / EPT) and the load increase
//      Inc_r(t, w), places the best-scoring stage, and repeats until no
//      stage can place any task.
//
// Ablation switches reproduce section 5.2: `consider_network` drops the
// network dimension from scoring, `stage_aware` switches to per-task
// placement, and `enable_job_ordering` / `enable_monotask_ordering` gate the
// two enforcement mechanisms of Table 6.
#ifndef SRC_SCHEDULER_URSA_SCHEDULER_H_
#define SRC_SCHEDULER_URSA_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/packing_schedulers.h"
#include "src/common/mutex.h"
#include "src/exec/cluster.h"
#include "src/exec/job_manager.h"
#include "src/fault/failure_detector.h"
#include "src/fault/fault_stats.h"
#include "src/metrics/metrics.h"
#include "src/scheduler/admission.h"
#include "src/scheduler/job_ordering.h"
#include "src/spec/speculation.h"

namespace ursa {

struct UrsaSchedulerConfig {
  // Task placement batching interval (seconds).
  double scheduling_interval = 0.25;
  // EPT = scheduling_interval * ept_slack (slightly larger than the interval
  // to absorb scheduler/JM/worker communication delay; section 4.2.2).
  double ept_slack = 1.3;
  OrderingPolicy policy = OrderingPolicy::kEjf;
  // Weight W of the job-priority term added to stage placement scores
  // ("how much EJF should be enforced", section 4.2.2). Large enough that
  // job order dominates the O(1) load-match score once submissions are
  // fractions of a second apart.
  double priority_weight = 25.0;
  // Large bonus for plans that place a whole stage (stage-awareness).
  double stage_bonus = 1e9;
  // Placement algorithm: Algorithm 1, or one of the section 5.1.2
  // comparison algorithms (Tetris / Tetris2 / Capacity).
  PlacementAlgorithm placement = PlacementAlgorithm::kAlgorithm1;
  // --- Ablations (section 5.2 / Table 6). ---
  bool consider_network = true;
  bool stage_aware = true;
  bool enable_job_ordering = true;
  bool enable_monotask_ordering = true;
  // Fraction of cluster memory usable for admission reservations.
  double admission_memory_fraction = 1.0;
  // Fault tolerance (section 4.3): heartbeat detection, lineage recovery
  // and the transient-failure retry policy.
  FaultToleranceConfig fault;
  // Straggler mitigation by speculative execution (DESIGN.md section 9).
  SpeculationConfig spec;
  // SLO-aware admission control, backpressure and load shedding for
  // open-loop serving (DESIGN.md section 11).
  AdmissionConfig admission;
};

class UrsaScheduler : public JobManagerListener {
 public:
  UrsaScheduler(Simulator* sim, Cluster* cluster, const UrsaSchedulerConfig& config);
  ~UrsaScheduler() override;

  // Submits a job at the current simulation time. The scheduler owns the job
  // and its job manager.
  void SubmitJob(std::unique_ptr<Job> job);

  // External fault injection (section 4.3): kills the worker and handles the
  // failure immediately (without waiting for the heartbeat detector).
  // Recovery is stage-level lineage recovery by default, or a full restart
  // from the input checkpoint when `fault.enable_lineage_recovery` is off.
  // Returns the number of jobs affected; idempotent — a second call on an
  // already-failed worker returns 0 and changes nothing.
  int FailWorker(WorkerId worker);
  int total_restarts() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return total_restarts_;
  }

  // Snapshot of the recovery/retry/detection counters for this run (also
  // written to by the failure detector, the job managers and the
  // FaultInjector).
  FaultCounters fault_stats() const { return fault_stats_.Snapshot(); }
  FaultStats* mutable_fault_stats() { return &fault_stats_; }
  // Null when heartbeat detection is disabled.
  const FailureDetector* failure_detector() const { return detector_.get(); }
  // Null when speculation is disabled.
  const SpeculationManager* speculation_manager() const { return spec_manager_.get(); }
  // Null when admission control is disabled.
  const AdmissionController* admission_controller() const { return admission_.get(); }
  AdmissionCounters admission_counters() const {
    return admission_ != nullptr ? admission_->counters() : AdmissionCounters{};
  }
  // Backoff multiplier the open-loop driver applies to inter-arrival gaps;
  // 1.0 with admission control disabled or no backpressure.
  double admission_throttle_factor() const {
    return admission_ != nullptr ? admission_->throttle_factor() : 1.0;
  }

  // JobManagerListener:
  void OnTaskReady(JobId job, TaskId task) override;
  void OnTaskCompleted(JobId job, TaskId task) override;
  void OnMonotaskCompleted(JobId job, ResourceType type, double input_bytes) override;
  void OnJobFinished(JobId job) override;

  // Every submitted job is resolved: it either completed or was shed by
  // admission control.
  bool AllJobsFinished() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return finished_jobs_ + shed_jobs_ == total_jobs_;
  }
  int finished_jobs() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return finished_jobs_;
  }
  int shed_jobs() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return shed_jobs_;
  }
  int total_jobs() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return total_jobs_;
  }

  const std::vector<JobRecord>& job_records() const { return records_; }
  const JobManager* job_manager(JobId id) const;

  // Attaches an event tracer (src/obs) recording tick spans and fault
  // events; propagated to every job manager started afterwards. Not owned.
  // Call before submitting jobs.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Aborted job managers still held for in-flight callbacks; they are
  // reclaimed when their job finishes, so this is bounded by active jobs.
  size_t aborted_jms_retained() const { return aborted_jms_.size(); }

 private:
  struct JobEntry {
    std::unique_ptr<Job> job;
    std::unique_ptr<JobManager> jm;
    bool admitted = false;
    bool finished = false;
    bool shed = false;  // Rejected or evicted by admission control; never ran.
    double srjf_rank = 0.0;
  };

  void EnsureTickScheduled();
  void Tick();
  void TryAdmitJobs();
  void RefreshPriorities();
  // Placement volume of one tick, for the tick trace events.
  struct PlacementStats {
    int64_t candidates = 0;  // Ready tasks scored against the cluster.
    int64_t placed = 0;      // Tasks committed to workers.
  };
  PlacementStats RunPlacement();
  PlacementStats RunPackingPlacement();
  // Straggler pass of one tick: collect candidates from every admitted job,
  // rank by estimated time to finish and, within the budget, place copies on
  // workers chosen by the same Algorithm-1 score as primary placement.
  void RunSpeculation();

  // Busiest-resource service seconds of `job` against the aggregate rates of
  // the live cluster; the u_j numerator of the admission utilization gate.
  double EstimateExpectedSeconds(const Job& job) const;
  // Mean D_r headroom across live workers — the backpressure saturation
  // signal fed to the admission controller every tick.
  double AvgHeadroom() const;
  // Sheds an unadmitted job: removes it from the waiting list, stamps its
  // record and trace event, and counts it resolved.
  void ShedJob(JobId id) EXCLUDES(state_mu_);

  // Recovery entry point shared by FailWorker() and the heartbeat detector.
  // Handles each worker-failure epoch exactly once; returns affected jobs.
  int HandleWorkerFailure(WorkerId worker);
  void OnWorkerRejoined(WorkerId worker);
  // Restarts one job from its input checkpoint with a fresh job manager.
  void FullRestart(JobEntry& entry);
  // Creates and starts a job manager for an admitted or restarted job.
  void StartJobManager(JobEntry& entry);

  // One candidate placement for a stage of ready tasks.
  struct StagePlan {
    JobId job = kInvalidId;
    StageId stage = kInvalidId;
    double score = 0.0;
    std::vector<std::pair<TaskId, WorkerId>> assignments;
    bool complete = false;  // All ready tasks of the stage placed.
  };
  struct WorkerLoad {
    double d[kNumResourceDims] = {0.0, 0.0, 0.0, 0.0};
    // Raw APT_r values; used to break ties when every D_r is exhausted
    // (placements then go to the least-loaded worker instead of piling up).
    double apt[kNumMonotaskResources] = {0.0, 0.0, 0.0};
    double free_memory = 0.0;
    double memory_capacity = 0.0;
    double rate[kNumMonotaskResources] = {0.0, 0.0, 0.0};
  };

  std::vector<WorkerLoad> SnapshotLoads() const;
  // Evaluates Algorithm 1's StageScore for the ready tasks of (job, stage)
  // against `loads` (mutating its own copy); returns the plan.
  StagePlan ScoreStage(const JobEntry& entry, StageId stage,
                       const std::vector<TaskId>& tasks, std::vector<WorkerLoad> loads,
                       double ept) const;
  // Best worker for one task; returns false if no worker qualifies.
  // `avoid` (from retry-exhaustion escalation) is skipped if any other
  // worker qualifies, so a re-placed task lands elsewhere whenever possible.
  bool BestWorker(const TaskUsage& usage, const std::vector<WorkerLoad>& loads, double ept,
                  WorkerId* out_worker, double* out_score,
                  WorkerId avoid = kInvalidId) const;
  static void ApplyToLoad(const TaskUsage& usage, double ept, WorkerLoad* load);

  Simulator* sim_;
  Cluster* cluster_;
  UrsaSchedulerConfig config_;
  Tracer* tracer_ = nullptr;

  std::vector<std::unique_ptr<JobEntry>> jobs_;  // Indexed by JobId.
  // Job managers aborted by full restarts: in-flight monotasks on healthy
  // workers still hold callbacks into them (all no-ops thanks to their
  // liveness tokens). Reclaimed when the owning job finishes.
  std::vector<std::unique_ptr<JobManager>> aborted_jms_;
  std::vector<JobRecord> records_;

  std::unique_ptr<PackingState> packing_;  // Non-null for packing placements.
  // Non-null when heartbeat detection is enabled.
  std::unique_ptr<FailureDetector> detector_;
  // Non-null when speculative execution is enabled; shared by all job
  // managers for budget enforcement and waste accounting.
  std::unique_ptr<SpeculationManager> spec_manager_;
  // Non-null when admission control is enabled. Internally synchronized;
  // its mutex sits directly below state_mu_ in the lock hierarchy.
  std::unique_ptr<AdmissionController> admission_;
  FaultStats fault_stats_;
  // Last Worker::failure_epoch() handled per worker, so an explicit
  // FailWorker() call and a later detector declaration of the same crash
  // trigger recovery exactly once.
  std::vector<int> handled_epoch_;

  // Guards the admission queue and tick/progress counters — the scheduler
  // state concurrent completion callbacks will race on once the simulator
  // core goes parallel. Top of the lock hierarchy (src/common/mutex.h):
  // never held while calling into job managers, workers, the detector or
  // the simulator.
  mutable Mutex state_mu_;
  std::vector<JobId> waiting_admission_ GUARDED_BY(state_mu_);  // Policy-ordered on use.
  double reserved_memory_ GUARDED_BY(state_mu_) = 0.0;
  int total_jobs_ GUARDED_BY(state_mu_) = 0;
  int total_restarts_ GUARDED_BY(state_mu_) = 0;
  int finished_jobs_ GUARDED_BY(state_mu_) = 0;
  int shed_jobs_ GUARDED_BY(state_mu_) = 0;
  int active_jobs_ GUARDED_BY(state_mu_) = 0;
  bool tick_scheduled_ GUARDED_BY(state_mu_) = false;
  bool placement_dirty_ GUARDED_BY(state_mu_) = false;
};

}  // namespace ursa

#endif  // SRC_SCHEDULER_URSA_SCHEDULER_H_
