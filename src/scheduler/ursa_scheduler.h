// Ursa's centralized scheduler (section 4.2.2): memory-based job admission
// and the stage-aware, load-balanced task placement of Algorithm 1.
//
// The scheduler runs in batches at a configurable scheduling interval. At
// each tick it:
//   1. admits queued jobs in policy order while the cluster-wide memory
//      reservation fits (preventing memory deadlock);
//   2. refreshes SRJF priorities (job ranks from remaining work R against
//      cluster load L) and re-sorts worker queues if they changed;
//   3. runs Algorithm 1: for every stage with ready tasks it computes a
//      placement plan and a score from the per-worker load headroom
//      D_r(w) = max(0, (EPT - APT_r(w)) / EPT) and the load increase
//      Inc_r(t, w), places the best-scoring stage, and repeats until no
//      stage can place any task.
//
// Ablation switches reproduce section 5.2: `consider_network` drops the
// network dimension from scoring, `stage_aware` switches to per-task
// placement, and `enable_job_ordering` / `enable_monotask_ordering` gate the
// two enforcement mechanisms of Table 6.
#ifndef SRC_SCHEDULER_URSA_SCHEDULER_H_
#define SRC_SCHEDULER_URSA_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/baselines/packing_schedulers.h"
#include "src/common/mutex.h"
#include "src/ctrl/control_plane.h"
#include "src/ctrl/journal.h"
#include "src/dag/critical_path.h"
#include "src/exec/cluster.h"
#include "src/exec/job_manager.h"
#include "src/fault/failure_detector.h"
#include "src/fault/fault_stats.h"
#include "src/metrics/metrics.h"
#include "src/scheduler/admission.h"
#include "src/scheduler/colocation.h"
#include "src/scheduler/job_ordering.h"
#include "src/scheduler/placement_policy.h"
#include "src/spec/speculation.h"

namespace ursa {

struct UrsaSchedulerConfig {
  // Task placement batching interval (seconds).
  double scheduling_interval = 0.25;
  // EPT = scheduling_interval * ept_slack (slightly larger than the interval
  // to absorb scheduler/JM/worker communication delay; section 4.2.2).
  double ept_slack = 1.3;
  OrderingPolicy policy = OrderingPolicy::kEjf;
  // Graphene-style ordering knobs (policy == kGraphene only): long-pole
  // threshold, stage-bonus weight and the base job-level policy.
  GrapheneConfig graphene;
  // Weight W of the job-priority term added to stage placement scores
  // ("how much EJF should be enforced", section 4.2.2). Large enough that
  // job order dominates the O(1) load-match score once submissions are
  // fractions of a second apart.
  double priority_weight = 25.0;
  // Large bonus for plans that place a whole stage (stage-awareness).
  double stage_bonus = 1e9;
  // Placement algorithm: Algorithm 1, or one of the section 5.1.2
  // comparison algorithms (Tetris / Tetris2 / Capacity).
  PlacementAlgorithm placement = PlacementAlgorithm::kAlgorithm1;
  // Worker-score policy inside monotask placement (placement == kAlgorithm1
  // only; DESIGN.md section 13): Ursa's Algorithm-1 score, or the
  // Tetris-style dot-product packing score. Both compose with the bucketed
  // scan; adding colocation forces the linear scan.
  PlacementScoreKind score = PlacementScoreKind::kAlgorithm1;
  // Hugo-style co-location learning (DESIGN.md section 13): when enabled,
  // the score policy is decorated with a learned stage-pair
  // complementarity bonus fed by per-tick residency/contention snapshots.
  ColocationConfig colocation;
  // --- Ablations (section 5.2 / Table 6). ---
  bool consider_network = true;
  bool stage_aware = true;
  bool enable_job_ordering = true;
  bool enable_monotask_ordering = true;
  // Fraction of cluster memory usable for admission reservations.
  double admission_memory_fraction = 1.0;
  // Fault tolerance (section 4.3): heartbeat detection, lineage recovery
  // and the transient-failure retry policy.
  FaultToleranceConfig fault;
  // Straggler mitigation by speculative execution (DESIGN.md section 9).
  SpeculationConfig spec;
  // SLO-aware admission control, backpressure and load shedding for
  // open-loop serving (DESIGN.md section 11).
  AdmissionConfig admission;
  // Scheduler<->worker message layer + scheduler crash-recovery (DESIGN.md
  // section 14). Disabled by default: every send stays a synchronous direct
  // call and seeded runs are byte-identical to the pre-message-layer paths.
  ControlPlaneConfig ctrl;
  // --- Hot-path scaling (DESIGN.md section 12). ---
  // Maintain the per-worker load snapshot incrementally from worker dirty
  // notifications instead of rebuilding every worker at every refresh point.
  // Placement results are bit-identical either way; only the cost changes.
  bool incremental_loads = true;
  // Scan BestWorker candidates in score-upper-bound order with an early
  // cutoff and per-resource headroom masks instead of the full linear scan.
  // Exact: the chosen worker and score match the linear scan bit for bit.
  bool prune_placement = true;
  // Cross-check every incremental refresh against a full rescan (CHECK on a
  // mismatch). Costs one full snapshot per refresh; defaults on in debug
  // builds only.
#ifndef NDEBUG
  bool verify_loads = true;
#else
  bool verify_loads = false;
#endif
  // Guard against pathological candidate explosions in a single tick: at
  // most this many (task, worker) pairs are scored per placement pass. Jobs
  // past the budget are deferred to the next tick, the tick is counted in
  // scheduler_counters().scoring_truncated, and the gather start rotates so
  // deferred jobs are not starved.
  size_t max_scored_pairs_per_tick = 2'000'000;
};

class UrsaScheduler : public JobManagerListener {
 public:
  UrsaScheduler(Simulator* sim, Cluster* cluster, const UrsaSchedulerConfig& config);
  ~UrsaScheduler() override;

  // Submits a job at the current simulation time. The scheduler owns the job
  // and its job manager.
  void SubmitJob(std::unique_ptr<Job> job);

  // External fault injection (section 4.3): kills the worker and handles the
  // failure immediately (without waiting for the heartbeat detector).
  // Recovery is stage-level lineage recovery by default, or a full restart
  // from the input checkpoint when `fault.enable_lineage_recovery` is off.
  // Returns the number of jobs affected; idempotent — a second call on an
  // already-failed worker returns 0 and changes nothing.
  int FailWorker(WorkerId worker);
  int total_restarts() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return total_restarts_;
  }

  // --- Scheduler crash injection (DESIGN.md section 14). ---
  // Crashes the scheduler control plane for `downtime` seconds: live
  // job-manager state is wiped, the message-layer epoch is bumped (fencing
  // every in-flight dispatch), ticks and failure handling are suspended, and
  // submissions arriving while down are parked. Recovery restores job state
  // from the checkpoint+journal when journaling is on (checkpoint_interval >
  // 0) — orphaned monotasks keep running on their workers and re-attach —
  // or falls back to full restarts of every live job when it is off.
  // Requires config.ctrl.enabled; a crash while already down is ignored.
  void InjectSchedulerCrash(double downtime);
  bool scheduler_down() const { return down_; }
  const ControlPlane* control_plane() const { return ctrl_.get(); }
  // Null when journaling is disabled.
  const Journal* journal() const { return journal_.get(); }

  // Snapshot of the recovery/retry/detection counters for this run (also
  // written to by the failure detector, the job managers and the
  // FaultInjector).
  FaultCounters fault_stats() const { return fault_stats_.Snapshot(); }
  FaultStats* mutable_fault_stats() { return &fault_stats_; }
  // Null when heartbeat detection is disabled.
  const FailureDetector* failure_detector() const { return detector_.get(); }
  // Null when speculation is disabled.
  const SpeculationManager* speculation_manager() const { return spec_manager_.get(); }
  // Null when admission control is disabled.
  const AdmissionController* admission_controller() const { return admission_.get(); }
  AdmissionCounters admission_counters() const {
    return admission_ != nullptr ? admission_->counters() : AdmissionCounters{};
  }
  // Backoff multiplier the open-loop driver applies to inter-arrival gaps;
  // 1.0 with admission control disabled or no backpressure.
  double admission_throttle_factor() const {
    return admission_ != nullptr ? admission_->throttle_factor() : 1.0;
  }

  // JobManagerListener:
  void OnTaskReady(JobId job, TaskId task) override;
  void OnTaskCompleted(JobId job, TaskId task) override;
  void OnMonotaskCompleted(JobId job, ResourceType type, double input_bytes) override;
  void OnJobFinished(JobId job) override;

  // Every submitted job is resolved: it either completed or was shed by
  // admission control.
  bool AllJobsFinished() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return finished_jobs_ + shed_jobs_ == total_jobs_;
  }
  int finished_jobs() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return finished_jobs_;
  }
  int shed_jobs() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return shed_jobs_;
  }
  int total_jobs() const EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return total_jobs_;
  }

  const std::vector<JobRecord>& job_records() const { return records_; }
  const JobManager* job_manager(JobId id) const;

  // Attaches an event tracer (src/obs) recording tick spans and fault
  // events; propagated to every job manager started afterwards and to the
  // message layer. Not owned. Call before submitting jobs.
  void set_tracer(Tracer* tracer);

  // Aborted job managers still held for in-flight callbacks; they are
  // reclaimed when their job finishes, so this is bounded by active jobs.
  size_t aborted_jms_retained() const { return aborted_jms_.size(); }

  // Hot-path instrumentation (DESIGN.md section 12), cumulative over the
  // run. Sim-thread state: read after the run (or from sim callbacks).
  struct SchedulerCounters {
    int64_t ticks = 0;
    int64_t load_refreshes = 0;     // Dirty workers recomputed incrementally.
    int64_t full_rebuilds = 0;      // Whole-cluster load snapshot rebuilds.
    int64_t bestworker_calls = 0;
    int64_t workers_scanned = 0;    // Scan entries examined across all calls.
    int64_t scoring_truncated = 0;  // Ticks that hit max_scored_pairs_per_tick.
  };
  SchedulerCounters scheduler_counters() const { return counters_; }

  // Policy-framework inspection (DESIGN.md section 13).
  const PlacementScorePolicy* score_policy() const { return score_policy_.get(); }
  // Null unless co-location learning is enabled.
  const ColocationLearner* colocation_learner() const { return colocation_.get(); }
  // Null unless the ordering policy is kGraphene (analysis is computed at
  // job start) or the job was never started.
  const StageCriticality* stage_criticality(JobId id) const {
    const JobEntry& entry = *jobs_[static_cast<size_t>(id)];
    return entry.crit.work.empty() ? nullptr : &entry.crit;
  }

 private:
  struct JobEntry {
    std::unique_ptr<Job> job;
    std::unique_ptr<JobManager> jm;
    bool admitted = false;
    bool finished = false;
    bool shed = false;  // Rejected or evicted by admission control; never ran.
    // Bumped on every full restart (and on journal-less crash recovery);
    // wire reports from an older incarnation's executions are fenced.
    int incarnation = 0;
    double srjf_rank = 0.0;
    // Graphene: per-stage critical-path analysis (empty unless computed).
    StageCriticality crit;
    // Colocation: interned (class, stage name) key per stage (empty unless
    // learning is on).
    std::vector<int> stage_keys;
  };

  void EnsureTickScheduled();
  void Tick();
  void TryAdmitJobs();
  void RefreshPriorities();
  // Placement volume of one tick, for the tick trace events.
  struct PlacementStats {
    int64_t candidates = 0;  // Ready tasks scored against the cluster.
    int64_t placed = 0;      // Tasks committed to workers.
  };
  PlacementStats RunPlacement();
  PlacementStats RunPackingPlacement();
  // Straggler pass of one tick: collect candidates from every admitted job,
  // rank by estimated time to finish and, within the budget, place copies on
  // workers chosen by the same placement score as primary placement.
  void RunSpeculation();
  // Co-location learning step of one tick (no-op when disabled): rebuilds
  // the per-worker resident stage-key snapshot from the job managers and
  // feeds it, with the workers' normalized APT contention, to the learner.
  // The snapshot then serves the tick's placement scoring.
  void ObserveColocation();

  // Busiest-resource service seconds of `job` against the aggregate rates of
  // the live cluster; the u_j numerator of the admission utilization gate.
  double EstimateExpectedSeconds(const Job& job) const;
  // Mean D_r headroom across live workers — the backpressure saturation
  // signal fed to the admission controller every tick.
  double AvgHeadroom();
  // Sheds an unadmitted job: removes it from the waiting list, stamps its
  // record and trace event, and counts it resolved.
  void ShedJob(JobId id) EXCLUDES(state_mu_);

  // Recovery entry point shared by FailWorker() and the heartbeat detector.
  // Handles each worker-failure epoch exactly once; returns affected jobs.
  int HandleWorkerFailure(WorkerId worker);
  // The reconciliation body: drops the worker's metadata, resets dependent
  // tasks and stamps handled_epoch_. Unlike HandleWorkerFailure it does not
  // require the worker to still be failed() — the post-crash recovery pass
  // uses it for workers that crashed AND rejoined while the scheduler was
  // down. Returns affected jobs.
  int ReconcileWorkerFailure(WorkerId worker);
  void OnWorkerRejoined(WorkerId worker);
  // Restarts one job from its input checkpoint with a fresh job manager.
  void FullRestart(JobEntry& entry);
  // Creates and configures (but does not start) a job manager for `entry`.
  void ConfigureJobManager(JobEntry& entry);
  // Creates and starts a job manager for an admitted or restarted job.
  void StartJobManager(JobEntry& entry);
  // Creates a job manager and rebuilds its runtime state from a journal
  // image (scheduler crash-recovery) instead of starting fresh.
  void RestoreJobManager(JobEntry& entry, const JobImage& image);
  // Routes an identity-addressed wire completion/failure report to the
  // incarnation that owns the job, or fences it.
  void DeliverCompletion(const ControlPlane::CompletionMsg& msg);
  // Brings the scheduler back up after InjectSchedulerCrash: restores or
  // restarts every live job, reconciles currently-failed workers, re-sends
  // unacked dispatches and resubmits parked jobs.
  void RecoverScheduler();
  // Periodic checkpoint chain (journaling only), mirroring the tick chain.
  void EnsureCheckpointScheduled();
  void CheckpointTick();

  // One candidate placement for a stage of ready tasks.
  struct StagePlan {
    JobId job = kInvalidId;
    StageId stage = kInvalidId;
    double score = 0.0;
    std::vector<std::pair<TaskId, WorkerId>> assignments;
    bool complete = false;  // All ready tasks of the stage placed.
  };
  // Per-worker load snapshot: ursa::WorkerLoad (src/scheduler/
  // placement_policy.h), shared with the pluggable score policies.

  // Workers whose loads diverged from the tick-start base during the current
  // placement pass, grouped by bit-identical current load exactly like the
  // base scan buckets: wide placement rounds touch most of the cluster, but
  // with uniform tasks the modified loads collapse into a handful of
  // distinct values, each scored once per BestWorker call. `ub` and `mask`
  // are exact for the bucket's current load (workers move buckets on every
  // placement).
  struct OverlayBucket {
    double ub = 0.0;
    uint32_t mask = 0;  // Same encoding as ScanBucket::mask, always current.
    WorkerLoad load;
    std::vector<WorkerId> members;  // Ascending ids; empty = tombstone.
  };

  // Read-only view over the per-tick load state (DESIGN.md section 12):
  // either the master vector directly, or the master plus a small overlay of
  // modified workers (candidate scoring and the commit pass avoid copying
  // all W loads). `headroom` counts workers with d_r > 0 in the view — the
  // incrementally maintained form of the any_headroom rule (section 4.2.2).
  struct LoadView {
    const std::vector<WorkerLoad>* base = nullptr;
    const std::vector<int32_t>* slot = nullptr;  // Worker -> bucket index; -1.
    const std::vector<OverlayBucket>* mods = nullptr;
    const int* headroom = nullptr;  // [kNumMonotaskResources]
    const WorkerLoad& at(size_t w) const {
      if (slot != nullptr) {
        const int32_t s = (*slot)[w];
        if (s >= 0) {
          return (*mods)[static_cast<size_t>(s)].load;
        }
      }
      return (*base)[w];
    }
  };

  // Full-rescan load snapshot: the reference implementation, the
  // incremental path's cross-check, and the incremental_loads=false
  // fallback.
  std::vector<WorkerLoad> SnapshotLoads() const;
  // The per-worker body of SnapshotLoads; `load` must be zero-initialized.
  void ComputeWorkerLoad(const Worker& worker, double ept, WorkerLoad* load) const;
  // Worker load-listener target: marks one cached worker load stale.
  void MarkLoadDirty(WorkerId w);
  // Brings the cached loads up to date — drains the dirty set, or rebuilds
  // everything when incremental maintenance is off or the cache is cold —
  // and rebuilds the pruning scan order when anything changed.
  const std::vector<WorkerLoad>& CurrentLoads();
  // Rebuilds scan_order_ (upper bound desc, min worker asc) from cached
  // loads, grouping bit-identical loads into one bucket each.
  void RebuildScanOrder();
  static void CountHeadroom(const std::vector<WorkerLoad>& loads,
                            int out[kNumMonotaskResources]);
  // Headroom signature: bits 0..2 set for d_r > 0, bit
  // kNumMonotaskResources for d_mem > 0 (shared by ScanBucket and
  // OverlayBucket).
  static uint32_t LoadMask(const WorkerLoad& load);
  // FNV-1a over the load's raw bytes; keys the overlay bucket index.
  static uint64_t HashLoad(const WorkerLoad& load);
  // Moves `w` (fresh, or already in an overlay bucket) to the overlay
  // bucket matching its load after applying one placement of `usage`.
  void OverlayApply(WorkerId w, const TaskUsage& usage, double ept,
                    const std::vector<WorkerLoad>& base,
                    int headroom[kNumMonotaskResources]) const;
  // Clears the overlay (slots, buckets, index) after a placement pass.
  void OverlayReset() const;
  // Evaluates Algorithm 1's StageScore for the ready tasks of (job, stage)
  // against `base` (mutating only a private overlay); returns the plan.
  StagePlan ScoreStage(const JobEntry& entry, StageId stage,
                       const std::vector<TaskId>& tasks,
                       const std::vector<WorkerLoad>& base,
                       const int base_headroom[kNumMonotaskResources], double ept) const;
  // The co-location key for one stage of a job (-1 when learning is off).
  int StageKey(const JobEntry& entry, StageId stage) const;
  // Best worker for one task; returns false if no worker qualifies.
  // Scoring is delegated to the active PlacementScorePolicy; `stage_key`
  // identifies the placed stage for the co-location bonus (-1 = none).
  // `avoid` (from retry-exhaustion escalation) is a preference, not a ban:
  // its best qualifying score is tracked in the same pass and used only when
  // no other worker qualifies, so a re-placed task lands elsewhere whenever
  // possible without a second scan.
  bool BestWorker(const TaskUsage& usage, const LoadView& view, double ept,
                  WorkerId* out_worker, double* out_score, int stage_key = -1,
                  WorkerId avoid = kInvalidId) const;
  // Applies one placement to a worker's load and maintains the headroom
  // counters across d_r > 0 -> == 0 transitions.
  static void ApplyToLoad(const TaskUsage& usage, double ept, WorkerLoad* load,
                          int headroom[kNumMonotaskResources]);

  Simulator* sim_;
  Cluster* cluster_;
  UrsaSchedulerConfig config_;
  Tracer* tracer_ = nullptr;

  std::vector<std::unique_ptr<JobEntry>> jobs_;  // Indexed by JobId.
  // Job managers aborted by full restarts: in-flight monotasks on healthy
  // workers still hold callbacks into them (all no-ops thanks to their
  // liveness tokens). Reclaimed when the owning job finishes.
  std::vector<std::unique_ptr<JobManager>> aborted_jms_;
  std::vector<JobRecord> records_;

  std::unique_ptr<PackingState> packing_;  // Non-null for packing placements.
  // Active worker-score policy (never null): Algorithm 1, Tetris dot
  // product, or either wrapped in the Hugo co-location decorator.
  std::unique_ptr<PlacementScorePolicy> score_policy_;
  // Non-null when co-location learning is enabled; owned here, referenced
  // by the Hugo decorator.
  std::unique_ptr<ColocationLearner> colocation_;
  // Per-worker resident stage keys, rebuilt by ObserveColocation every tick
  // (empty when learning is off). Sim-thread only.
  std::vector<std::vector<int>> residents_;
  // prune_placement is only sound for bucketable score policies; resolved
  // once at construction.
  bool prune_effective_ = false;
  // Non-null when heartbeat detection is enabled.
  std::unique_ptr<FailureDetector> detector_;
  // Non-null when speculative execution is enabled; shared by all job
  // managers for budget enforcement and waste accounting.
  std::unique_ptr<SpeculationManager> spec_manager_;
  // Non-null when admission control is enabled. Internally synchronized;
  // its mutex sits directly below state_mu_ in the lock hierarchy.
  std::unique_ptr<AdmissionController> admission_;
  FaultStats fault_stats_;
  // Last Worker::failure_epoch() handled per worker, so an explicit
  // FailWorker() call and a later detector declaration of the same crash
  // trigger recovery exactly once. Preserved across a scheduler crash as a
  // snapshot of the episodes handled before it: recovery reconciles every
  // worker whose epoch advanced past the snapshot — even one that failed
  // AND rejoined entirely within the downtime — plus, idempotently, every
  // still-failed worker.
  std::vector<int> handled_epoch_;

  // --- Control plane & crash-recovery (DESIGN.md section 14). ---
  // Always constructed; pass-through (zero events, zero RNG draws) unless
  // config_.ctrl.enabled.
  std::unique_ptr<ControlPlane> ctrl_;
  // Non-null when config_.ctrl.checkpoint_interval > 0.
  std::unique_ptr<Journal> journal_;
  // Scheduler control plane down (between InjectSchedulerCrash and
  // RecoverScheduler): ticks, failure handling and deliveries are suspended.
  bool down_ = false;
  double crash_time_ = 0.0;
  // Jobs submitted while down, resubmitted in arrival order at recovery.
  // Each carries the submit_time stamped when it parked, so the downtime it
  // waited counts toward its JCT; replaying_parked_ keeps SubmitJob from
  // re-stamping it at replay time.
  std::vector<std::unique_ptr<Job>> parked_submits_;
  bool replaying_parked_ = false;

  // --- Hot-path state (DESIGN.md section 12); sim-thread only. ---
  struct LoadCache {
    std::vector<WorkerLoad> loads;
    std::vector<uint8_t> dirty;  // Bitmap mirror of dirty_list.
    std::vector<WorkerId> dirty_list;
    bool primed = false;
  };
  LoadCache load_cache_;
  // BestWorker candidate order: workers with bit-identical cached loads are
  // grouped into one bucket carrying the shared score upper bound (valid for
  // the whole tick — loads only worsen between refreshes) and a headroom
  // signature mask for O(1) skipping of saturated and failed workers. The
  // common homogeneous case collapses thousands of workers into a handful
  // of buckets, each scored once per call.
  struct ScanBucket {
    double ub = 0.0;
    uint32_t mask = 0;  // Bits 0..2: d_r > 0 at build time; bit 3: d_mem > 0.
    std::vector<WorkerId> members;  // Ascending ids, identical loads.
  };
  std::vector<ScanBucket> scan_order_;
  bool scan_stale_ = true;
  // First job index of the next candidate gather: rotated after a truncated
  // tick so deferred jobs are not starved, 0 (submission order) otherwise.
  size_t placement_scan_start_ = 0;
  mutable SchedulerCounters counters_;
  // Placement overlay scratch: worker -> overlay_buckets_ index (-1 when the
  // worker is unmodified), the load-grouped buckets, the load-hash -> bucket
  // index map, and the touched-worker list for O(touched) reset. ScoreStage
  // resets the overlay after every candidate; the commit and speculation
  // passes reset it when they finish.
  mutable std::vector<int32_t> overlay_slot_;
  mutable std::vector<OverlayBucket> overlay_buckets_;
  mutable std::unordered_map<uint64_t, std::vector<int32_t>> overlay_index_;
  mutable std::vector<WorkerId> overlay_touched_;

  // Guards the admission queue and tick/progress counters — the scheduler
  // state concurrent completion callbacks will race on once the simulator
  // core goes parallel. Top of the lock hierarchy (src/common/mutex.h):
  // never held while calling into job managers, workers, the detector or
  // the simulator.
  mutable Mutex state_mu_;
  std::vector<JobId> waiting_admission_ GUARDED_BY(state_mu_);  // Policy-ordered on use.
  double reserved_memory_ GUARDED_BY(state_mu_) = 0.0;
  int total_jobs_ GUARDED_BY(state_mu_) = 0;
  int total_restarts_ GUARDED_BY(state_mu_) = 0;
  int finished_jobs_ GUARDED_BY(state_mu_) = 0;
  int shed_jobs_ GUARDED_BY(state_mu_) = 0;
  int active_jobs_ GUARDED_BY(state_mu_) = 0;
  bool tick_scheduled_ GUARDED_BY(state_mu_) = false;
  bool checkpoint_scheduled_ GUARDED_BY(state_mu_) = false;
  bool placement_dirty_ GUARDED_BY(state_mu_) = false;
};

}  // namespace ursa

#endif  // SRC_SCHEDULER_URSA_SCHEDULER_H_
