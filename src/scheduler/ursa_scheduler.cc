#include "src/scheduler/ursa_scheduler.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>

#include "src/common/logging.h"
#include "src/common/wallclock.h"
#include "src/obs/trace.h"

namespace ursa {

UrsaScheduler::UrsaScheduler(Simulator* sim, Cluster* cluster,
                             const UrsaSchedulerConfig& config)
    : sim_(sim), cluster_(cluster), config_(config) {
  CHECK_GT(config_.scheduling_interval, 0.0);
  CHECK_GE(config_.ept_slack, 1.0);
  CHECK_GT(config_.max_scored_pairs_per_tick, 0u);
  CHECK(config_.graphene.base != OrderingPolicy::kGraphene)
      << "graphene's base job policy must be EJF or SRJF";
  // Assemble the worker-score policy stack (DESIGN.md section 13): the
  // configured base score, optionally decorated with the Hugo co-location
  // bonus. The bucketed scan is only sound for bucketable policies.
  std::unique_ptr<PlacementScorePolicy> base_score = MakeScorePolicy(config_.score);
  if (config_.colocation.enabled) {
    colocation_ = std::make_unique<ColocationLearner>(config_.colocation);
    score_policy_ = std::make_unique<HugoScorePolicy>(
        std::move(base_score), colocation_.get(), config_.colocation.weight);
  } else {
    score_policy_ = std::move(base_score);
  }
  prune_effective_ = config_.prune_placement && score_policy_->bucketable();
  if (config_.incremental_loads) {
    for (int w = 0; w < cluster_->size(); ++w) {
      cluster_->worker(w).set_load_listener([this](WorkerId id) { MarkLoadDirty(id); });
    }
  }
  if (config_.placement != PlacementAlgorithm::kAlgorithm1) {
    packing_ = std::make_unique<PackingState>(cluster, config_.placement);
  }
  handled_epoch_.resize(static_cast<size_t>(cluster_->size()), 0);
  // Message layer (DESIGN.md section 14): always constructed; pure
  // pass-through unless enabled, so the default costs no events or RNG.
  ctrl_ = std::make_unique<ControlPlane>(sim_, cluster_, config_.ctrl, &fault_stats_);
  ctrl_->set_down_check([this] { return down_; });
  ctrl_->set_completion_handler(
      [this](const ControlPlane::CompletionMsg& msg) { DeliverCompletion(msg); });
  if (config_.ctrl.enabled) {
    // A failing worker loses its delivered-dispatch dedup set with the rest
    // of its state, whether the failure is injected directly, via FailWorker
    // or while the scheduler itself is down.
    for (int w = 0; w < cluster_->size(); ++w) {
      cluster_->worker(w).set_fail_listener(
          [this](WorkerId id) { ctrl_->ForgetWorker(id); });
    }
  }
  if (config_.ctrl.checkpoint_interval > 0.0) {
    CHECK(config_.ctrl.enabled)
        << "journaling requires the control plane (checkpoints pace the "
           "message layer's crash-recovery model)";
    journal_ = std::make_unique<Journal>();
  }
  if (config_.fault.enable_heartbeat_detection) {
    detector_ = std::make_unique<FailureDetector>(sim_, cluster_, config_.fault.detector);
    detector_->set_on_death(
        [this](WorkerId w, [[maybe_unused]] double silence) { HandleWorkerFailure(w); });
    detector_->set_on_rejoin([this](WorkerId w) { OnWorkerRejoined(w); });
    if (config_.ctrl.enabled) {
      // Heartbeats ride the lossy best-effort channel: lost or late beats
      // are exactly the silence the detector consumes.
      detector_->set_transport([this](WorkerId w, std::function<void()> deliver) {
        ctrl_->Heartbeat(w, std::move(deliver));
      });
    }
  }
  if (config_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(config_.admission);
  }
  if (config_.spec.enabled) {
    spec_manager_ = std::make_unique<SpeculationManager>(config_.spec, &fault_stats_);
    // Cancelled monotasks report their elapsed busy time (the wasted work of
    // the race's losing side) straight from the workers.
    for (int w = 0; w < cluster_->size(); ++w) {
      cluster_->worker(w).set_waste_sink(
          [this](ResourceType r, double bytes, double seconds) {
            spec_manager_->RecordWaste(sim_->Now(), r, bytes, seconds);
          });
    }
  }
}

UrsaScheduler::~UrsaScheduler() {
  // The cluster outlives this scheduler inside RunExperiment; detach the
  // load and fail listeners so a later worker mutation cannot call a dead
  // object.
  for (int w = 0; w < cluster_->size(); ++w) {
    cluster_->worker(w).set_load_listener(nullptr);
    cluster_->worker(w).set_fail_listener(nullptr);
  }
}

void UrsaScheduler::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  ctrl_->set_tracer(tracer);
}

void UrsaScheduler::SubmitJob(std::unique_ptr<Job> job) {
  if (down_) {
    // The scheduler front-end is down: the client's submission parks and is
    // replayed, in arrival order, the moment the scheduler recovers (before
    // any post-recovery arrival, so job ids stay dense). The JCT clock
    // starts now, at client arrival — the downtime a parked job waits is
    // queueing delay the crash caused and must count against it.
    job->submit_time = sim_->Now();
    parked_submits_.push_back(std::move(job));
    return;
  }
  CHECK_EQ(job->id, static_cast<JobId>(jobs_.size()))
      << "jobs must be submitted with dense sequential ids";
  if (!replaying_parked_) {
    job->submit_time = sim_->Now();
  }
  JobRecord record;
  record.id = job->id;
  record.name = job->spec.name;
  record.klass = job->spec.klass;
  record.tenant = job->spec.tenant;
  record.tier = job->spec.priority_tier;
  record.slo = job->spec.slo_seconds;
  record.submit_time = job->submit_time;
  records_.push_back(std::move(record));

  auto entry = std::make_unique<JobEntry>();
  entry->job = std::move(job);
  const JobId id = entry->job->id;
  jobs_.push_back(std::move(entry));
  {
    MutexLock lock(state_mu_);
    ++total_jobs_;
  }
  if (admission_ != nullptr) {
    const Job& submitted = *jobs_[static_cast<size_t>(id)]->job;
    AdmissionController::JobInfo info;
    info.id = id;
    info.tier = submitted.spec.priority_tier;
    info.expected_seconds = EstimateExpectedSeconds(submitted);
    info.slo = submitted.spec.slo_seconds;
    const AdmissionController::Decision decision = admission_->OnSubmit(info, sim_->Now());
    if (decision.evicted != kInvalidId) {
      ShedJob(decision.evicted);
    }
    if (!decision.accepted) {
      ShedJob(id);
      return;
    }
  }
  {
    MutexLock lock(state_mu_);
    waiting_admission_.push_back(id);
  }
  TryAdmitJobs();
  EnsureTickScheduled();
}

void UrsaScheduler::ShedJob(JobId id) {
  JobEntry& entry = *jobs_[static_cast<size_t>(id)];
  CHECK(!entry.admitted && !entry.finished && !entry.shed)
      << "only unadmitted jobs can be shed";
  entry.shed = true;
  const double now = sim_->Now();
  JobRecord& record = records_[static_cast<size_t>(id)];
  record.shed = true;
  record.shed_time = now;
  {
    MutexLock lock(state_mu_);
    waiting_admission_.erase(
        std::remove(waiting_admission_.begin(), waiting_admission_.end(), id),
        waiting_admission_.end());
    ++shed_jobs_;
  }
  if (tracer_ != nullptr) {
    const double slo = entry.job->spec.slo_seconds > 0.0
                           ? entry.job->spec.slo_seconds
                           : config_.admission.default_slo;
    tracer_->AdmissionEvent(now, TraceEventKind::kShed, id, entry.job->spec.priority_tier,
                            EstimateExpectedSeconds(*entry.job) / slo, 0.0);
  }
}

double UrsaScheduler::EstimateExpectedSeconds(const Job& job) const {
  const auto work = job.plan.ExpectedWorkByResource();
  double rate[kNumMonotaskResources] = {0.0, 0.0, 0.0};
  for (int w = 0; w < cluster_->size(); ++w) {
    const Worker& worker = cluster_->worker(w);
    if (worker.failed()) {
      continue;
    }
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      rate[r] += worker.ProcessingRate(static_cast<ResourceType>(r));
    }
  }
  double worst = 0.0;
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    if (work[static_cast<size_t>(r)] > 0.0) {
      worst = std::max(worst, work[static_cast<size_t>(r)] / std::max(rate[r], 1.0));
    }
  }
  return worst;
}

double UrsaScheduler::AvgHeadroom() {
  const std::vector<WorkerLoad>& loads = CurrentLoads();
  double sum = 0.0;
  int live = 0;
  for (int w = 0; w < cluster_->size(); ++w) {
    if (cluster_->worker(w).failed()) {
      continue;
    }
    const WorkerLoad& load = loads[static_cast<size_t>(w)];
    double headroom = 0.0;
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      headroom += load.d[r];
    }
    sum += headroom / kNumMonotaskResources;
    ++live;
  }
  return live > 0 ? sum / static_cast<double>(live) : 0.0;
}

const JobManager* UrsaScheduler::job_manager(JobId id) const {
  const JobEntry& entry = *jobs_[static_cast<size_t>(id)];
  return entry.jm.get();
}

int UrsaScheduler::FailWorker(WorkerId worker_id) {
  Worker& worker = cluster_->worker(worker_id);
  if (worker.failed()) {
    return 0;  // Idempotent: this failure episode is already in progress.
  }
  worker.Fail();
  return HandleWorkerFailure(worker_id);
}

int UrsaScheduler::HandleWorkerFailure(WorkerId worker_id) {
  if (down_) {
    // A dead scheduler handles nothing. handled_epoch_ is deliberately not
    // stamped: recovery reconciles every failure episode it missed.
    return 0;
  }
  Worker& worker = cluster_->worker(worker_id);
  if (!worker.failed()) {
    // The detector declared a worker that is actually alive (e.g. degraded
    // but heartbeating slowly in a future model); nothing to recover.
    return 0;
  }
  // An explicit FailWorker() call and a later heartbeat-timeout declaration
  // of the same crash must recover exactly once.
  if (handled_epoch_[static_cast<size_t>(worker_id)] == worker.failure_epoch()) {
    return 0;
  }
  return ReconcileWorkerFailure(worker_id);
}

int UrsaScheduler::ReconcileWorkerFailure(WorkerId worker_id) {
  // Failure-episode reconciliation, shared by live failure handling and the
  // post-crash recovery pass. Unlike HandleWorkerFailure it does not require
  // the worker to still be failed(): a worker that crashed AND rejoined
  // entirely within scheduler downtime is alive again, but its queued and
  // in-flight monotasks and its metadata outputs died with the old process
  // and must be reconciled all the same.
  Worker& worker = cluster_->worker(worker_id);
  handled_epoch_[static_cast<size_t>(worker_id)] = worker.failure_epoch();
  const double now = sim_->Now();
  fault_stats_.RecordDetection(now, std::max(0.0, now - worker.failed_since()));
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(now, TraceEventKind::kDetection, worker_id,
                         std::max(0.0, now - worker.failed_since()));
  }
  // Drop the worker's metadata before recovery so the lineage pass sees
  // exactly which outputs are gone. Safe: any task that could read a dropped
  // partition is reset by the lineage fixpoint and only becomes ready again
  // after its producers have re-Put their outputs.
  cluster_->metadata().DropWorker(worker_id);

  int affected = 0;
  for (auto& entry : jobs_) {
    if (!entry->admitted || entry->finished) {
      continue;
    }
    // Tear down speculative copies on the dead worker (and mark primaries
    // lost there as handed over to their surviving copy) before any recovery
    // decision; RecoverFromWorkerFailure repeats this idempotently.
    entry->jm->HandleWorkerFailureForSpeculation(worker_id);
    if (config_.fault.enable_lineage_recovery) {
      JobManager::RecoveryResult r = entry->jm->RecoverFromWorkerFailure(worker_id);
      if (r.inputs_lost) {
        FullRestart(*entry);
        ++affected;
        continue;
      }
      if (r.tasks_reset > 0) {
        fault_stats_.RecordTasksReset(now, r.tasks_reset);
        fault_stats_.RecordFullRestartEquivalentTasks(r.tasks_started_before);
        ++affected;
      }
    } else if (entry->jm->DependsOnWorker(worker_id)) {
      FullRestart(*entry);
      ++affected;
    }
  }
  EnsureTickScheduled();
  return affected;
}

void UrsaScheduler::OnWorkerRejoined(WorkerId worker_id) {
  fault_stats_.RecordRejoin(sim_->Now());
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kRejoin, worker_id);
  }
  {
    // The worker re-registered empty; the next tick may place tasks on it.
    MutexLock lock(state_mu_);
    placement_dirty_ = true;
  }
  EnsureTickScheduled();
}

void UrsaScheduler::ConfigureJobManager(JobEntry& entry) {
  entry.jm = std::make_unique<JobManager>(sim_, cluster_, entry.job.get(), this);
  entry.jm->set_tracer(tracer_);
  if (config_.ctrl.enabled) {
    entry.jm->set_control_plane(ctrl_.get());
  }
  entry.jm->set_journal(journal_.get());
  entry.jm->set_incarnation(entry.incarnation);
  entry.jm->set_use_intra_ordering(config_.enable_monotask_ordering);
  // EJF queue priority: admission (submission) order. SRJF ranks are
  // refreshed every tick.
  entry.jm->set_priority(config_.enable_monotask_ordering ? entry.job->submit_time : 0.0);
  // Graphene: the per-stage critical-path analysis is a pure function of the
  // plan, so one computation per job survives restarts.
  if (config_.policy == OrderingPolicy::kGraphene && entry.crit.work.empty()) {
    entry.crit = AnalyzeStages(entry.job->plan, config_.graphene.threshold);
  }
  // Colocation: intern each stage's (job class, stage name) identity once so
  // the per-tick residency snapshot is an integer-only pass.
  if (colocation_ != nullptr && entry.stage_keys.empty()) {
    entry.stage_keys.reserve(entry.job->plan.stages().size());
    for (const StageSpec& stage : entry.job->plan.stages()) {
      const std::string& name =
          !stage.name.empty() ? stage.name : "stage" + std::to_string(stage.id);
      entry.stage_keys.push_back(colocation_->InternKey(entry.job->spec.klass, name));
    }
  }
  entry.jm->ConfigureFaultPolicy(config_.fault.max_monotask_attempts,
                                 config_.fault.retry_backoff_base,
                                 config_.fault.retry_backoff_cap, &fault_stats_);
  if (spec_manager_ != nullptr) {
    entry.jm->ConfigureSpeculation(spec_manager_.get());
  }
}

void UrsaScheduler::StartJobManager(JobEntry& entry) {
  ConfigureJobManager(entry);
  if (journal_ != nullptr) {
    journal_->Append({JournalKind::kStartJm, entry.job->id, kInvalidId, kInvalidId,
                      entry.incarnation, 0.0, 0.0, sim_->Now()});
  }
  entry.jm->Start();
}

void UrsaScheduler::RestoreJobManager(JobEntry& entry, const JobImage& image) {
  CHECK_EQ(image.incarnation, entry.incarnation)
      << "journal image replays a different incarnation than the entry";
  ConfigureJobManager(entry);
  entry.jm->RestoreFromImage(image);
}

void UrsaScheduler::FullRestart(JobEntry& entry) {
  // Restart from the input checkpoint with a fresh job manager; the
  // admission reservation carries over. The incarnation bump fences any
  // still-in-flight wire report of the aborted execution.
  entry.jm->Abort();
  aborted_jms_.push_back(std::move(entry.jm));
  ++entry.incarnation;
  StartJobManager(entry);
  {
    MutexLock lock(state_mu_);
    ++total_restarts_;
  }
  fault_stats_.RecordFullRestart();
}

void UrsaScheduler::DeliverCompletion(const ControlPlane::CompletionMsg& msg) {
  JobEntry& entry = *jobs_[static_cast<size_t>(msg.job)];
  JobManager* jm = entry.jm.get();
  if (jm == nullptr || entry.finished || jm->incarnation() != msg.incarnation) {
    // The execution this report describes belongs to a dead incarnation
    // (full restart or journal-less crash recovery) or a finished job.
    fault_stats_.RecordMsgFenced();
    if (tracer_ != nullptr) {
      tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kMsgFenced, msg.worker);
    }
    return;
  }
  if (msg.failed) {
    jm->OnMonotaskFailedWire(msg.monotask, msg.generation, msg.attempt);
  } else {
    jm->OnMonotaskCompleteWire(msg.monotask, msg.generation, msg.attempt);
  }
}

void UrsaScheduler::InjectSchedulerCrash(double downtime) {
  CHECK(config_.ctrl.enabled)
      << "scheduler crash injection requires the control-plane message layer "
         "(config.ctrl.enabled)";
  CHECK_GE(downtime, 0.0);
  if (down_) {
    return;  // Already crashed; the pending recovery owns the control plane.
  }
  const double now = sim_->Now();
  down_ = true;
  crash_time_ = now;
  fault_stats_.RecordSchedulerCrash();
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(now, TraceEventKind::kSchedCrash, kInvalidId);
  }
  // Epoch fencing: every dispatch minted by the dead incarnation is
  // discarded at delivery (or at its retransmit timer), so a stale message
  // can never double-charge a worker or resurrect a cancelled copy.
  ctrl_->BumpEpoch();
  // handled_epoch_ is left as a snapshot of the failure episodes handled
  // before the crash: recovery reconciles every worker whose failure epoch
  // advanced past it (including workers that crashed AND rejoined entirely
  // within the downtime) plus, idempotently, every still-failed worker.
  const bool journaled = journal_ != nullptr;
  for (auto& entry : jobs_) {
    if (!entry->admitted || entry->finished || entry->jm == nullptr) {
      continue;
    }
    // Speculative copies are forfeited either way: their cancel/liveness
    // tokens are live scheduler state and die with the job manager.
    entry->jm->ForfeitSpeculation();
    if (journaled) {
      // Wipe the live state; the journal owns the truth now. Orphaned
      // monotasks keep running on their workers — their memory charges and
      // metadata Puts are worker-side state — and re-attach after restore.
      entry->jm.reset();
    } else {
      // No journal: the job's progress is unrecoverable. Degrade to a full
      // restart from the input checkpoint at recovery.
      entry->jm->Abort();
      aborted_jms_.push_back(std::move(entry->jm));
    }
  }
  double delay = downtime + config_.ctrl.recovery_base_cost;
  if (journaled) {
    // Replay cost is charged only for the journal suffix written since the
    // last checkpoint; the checkpoint image covers the prefix.
    delay += config_.ctrl.replay_cost_per_record *
             static_cast<double>(journal_->suffix_length());
    fault_stats_.RecordJournalSize(static_cast<int64_t>(journal_->appended()));
  }
  sim_->Schedule(delay, [this] { RecoverScheduler(); });
}

void UrsaScheduler::RecoverScheduler() {
  const double now = sim_->Now();
  CHECK(down_);
  down_ = false;
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(now, TraceEventKind::kSchedRecover, kInvalidId,
                         now - crash_time_);
  }
  const bool journaled = journal_ != nullptr;
  if (journaled) {
    // Restore per-job images — the checkpointed prefix plus a replay of the
    // post-checkpoint suffix (the part charged as recovery latency) — and
    // rebuild every live job's manager from its image.
    std::map<JobId, JobImage> images = journal_->Restore(
        [this](JobId job) -> const ExecutionPlan& {
          return jobs_[static_cast<size_t>(job)]->job->plan;
        });
    for (auto& entry : jobs_) {
      if (!entry->admitted || entry->finished) {
        continue;
      }
      auto it = images.find(entry->job->id);
      CHECK(it != images.end()) << "admitted job missing from the journal";
      RestoreJobManager(*entry, it->second);
    }
  } else {
    for (auto& entry : jobs_) {
      if (!entry->admitted || entry->finished) {
        continue;
      }
      ++entry->incarnation;
      StartJobManager(*entry);
      {
        MutexLock lock(state_mu_);
        ++total_restarts_;
      }
      fault_stats_.RecordFullRestart();
    }
  }
  // The detector's liveness state is scheduler-side: re-seed it so silence
  // is measured from recovery, then reconcile every failure episode this
  // scheduler cannot prove it handled. Any worker whose failure epoch
  // advanced past the crash-time snapshot lost queued/in-flight monotasks
  // and metadata outputs — even if it already rejoined and is alive again —
  // and every still-failed worker is re-handled idempotently, which also
  // resets restored placements stranded on dead workers (including
  // pre-crash primary_lost tasks whose forfeited copy left them without a
  // runner).
  if (detector_ != nullptr) {
    detector_->Reset(now);
  }
  for (int w = 0; w < cluster_->size(); ++w) {
    const Worker& worker = cluster_->worker(w);
    if (worker.failed() ||
        worker.failure_epoch() != handled_epoch_[static_cast<size_t>(w)]) {
      ReconcileWorkerFailure(w);
    }
  }
  // Resync: re-send every dispatch of a restored placement that no worker
  // acked (the send died with the old epoch, or a pending retry-backoff
  // event was lost in the crash). Acked dispatches are skipped — their
  // orphans are still queued or running and will re-attach.
  int redispatched = 0;
  if (journaled) {
    for (auto& entry : jobs_) {
      if (!entry->admitted || entry->finished || entry->jm == nullptr) {
        continue;
      }
      redispatched += entry->jm->ResyncDispatches();
    }
  }
  fault_stats_.RecordRedispatched(redispatched);
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(now, TraceEventKind::kResync, kInvalidId,
                         static_cast<double>(redispatched));
  }
  fault_stats_.RecordSchedulerRecovery(now - crash_time_);
  // Submissions that arrived while down replay in arrival order, before any
  // post-recovery arrival can interleave, so job ids stay dense. They keep
  // the submit_time stamped when they parked, so downtime queueing counts
  // toward their JCT.
  std::vector<std::unique_ptr<Job>> parked;
  parked.swap(parked_submits_);
  replaying_parked_ = true;
  for (auto& job : parked) {
    SubmitJob(std::move(job));
  }
  replaying_parked_ = false;
  {
    MutexLock lock(state_mu_);
    placement_dirty_ = true;
  }
  TryAdmitJobs();
  EnsureTickScheduled();
}

void UrsaScheduler::EnsureCheckpointScheduled() {
  if (journal_ == nullptr) {
    return;
  }
  {
    MutexLock lock(state_mu_);
    if (checkpoint_scheduled_) {
      return;
    }
    checkpoint_scheduled_ = true;
  }
  sim_->Schedule(config_.ctrl.checkpoint_interval, [this] { CheckpointTick(); });
}

void UrsaScheduler::CheckpointTick() {
  {
    MutexLock lock(state_mu_);
    checkpoint_scheduled_ = false;
  }
  if (down_) {
    return;  // Recovery re-arms the chain through EnsureTickScheduled.
  }
  // Folding the suffix into the per-job images truncates the journal:
  // memory and replay work track live state, not the full decision history.
  journal_->Checkpoint(sim_->Now(), [this](JobId job) -> const ExecutionPlan& {
    return jobs_[static_cast<size_t>(job)]->job->plan;
  });
  fault_stats_.RecordCheckpoint(static_cast<int64_t>(journal_->appended()));
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kCheckpoint, kInvalidId,
                         static_cast<double>(journal_->appended()));
  }
  bool more = false;
  {
    MutexLock lock(state_mu_);
    more = active_jobs_ > 0 || !waiting_admission_.empty();
  }
  if (more) {
    EnsureCheckpointScheduled();
  }
}

void UrsaScheduler::OnTaskReady([[maybe_unused]] JobId job, [[maybe_unused]] TaskId task) {
  {
    MutexLock lock(state_mu_);
    placement_dirty_ = true;
  }
  EnsureTickScheduled();
}

void UrsaScheduler::OnTaskCompleted(JobId job, TaskId task) {
  if (packing_ != nullptr) {
    packing_->Release(job, task);
  }
}

void UrsaScheduler::OnMonotaskCompleted([[maybe_unused]] JobId job,
                                        [[maybe_unused]] ResourceType type,
                                        [[maybe_unused]] double input_bytes) {}

void UrsaScheduler::OnJobFinished(JobId job_id) {
  JobEntry& entry = *jobs_[static_cast<size_t>(job_id)];
  CHECK(entry.admitted && !entry.finished);
  entry.finished = true;
  if (journal_ != nullptr) {
    journal_->Append(
        {JournalKind::kJobFinish, job_id, kInvalidId, kInvalidId, 0, 0.0, 0.0, sim_->Now()});
  }
  // The job's wire identities are dead; drop the per-worker dedup state.
  ctrl_->ForgetJob(job_id);
  if (admission_ != nullptr) {
    admission_->OnJobFinished(job_id);
  }
  {
    MutexLock lock(state_mu_);
    reserved_memory_ -= entry.job->spec.declared_memory_bytes;
    reserved_memory_ = std::max(reserved_memory_, 0.0);
    --active_jobs_;
    ++finished_jobs_;
  }
  JobRecord& record = records_[static_cast<size_t>(job_id)];
  record.finish_time = sim_->Now();
  record.cpu_seconds = entry.jm->cpu_seconds_used();
  // Reclaim job managers aborted by earlier restarts of this job: the job is
  // done, so nothing resubmits through them, and any still-deferred callbacks
  // they handed out are disarmed by their liveness tokens.
  aborted_jms_.erase(std::remove_if(aborted_jms_.begin(), aborted_jms_.end(),
                                    [job_id](const std::unique_ptr<JobManager>& jm) {
                                      return jm->job_id() == job_id;
                                    }),
                     aborted_jms_.end());
  TryAdmitJobs();
}

void UrsaScheduler::EnsureTickScheduled() {
  {
    MutexLock lock(state_mu_);
    if (tick_scheduled_) {
      return;
    }
    tick_scheduled_ = true;
  }
  sim_->Schedule(config_.scheduling_interval, [this] { Tick(); });
  EnsureCheckpointScheduled();
  if (detector_ != nullptr) {
    // (Re)start heartbeats and sweeps; both stop when the cluster goes idle
    // so the event queue can drain.
    detector_->Activate([this] {
      MutexLock lock(state_mu_);
      return active_jobs_ > 0 || !waiting_admission_.empty();
    });
  }
}

void UrsaScheduler::Tick() {
  {
    MutexLock lock(state_mu_);
    tick_scheduled_ = false;
  }
  if (down_) {
    return;  // Crashed: recovery re-arms the tick chain.
  }
  ++counters_.ticks;
  const WallTimer wall;
  if (admission_ != nullptr &&
      admission_->UpdateBackpressure(sim_->Now(), AvgHeadroom())) {
    if (tracer_ != nullptr) {
      tracer_->AdmissionEvent(sim_->Now(), TraceEventKind::kBackpressure, kInvalidId, 0,
                              static_cast<double>(static_cast<int>(admission_->level())),
                              admission_->throttle_factor());
    }
  }
  TryAdmitJobs();
  RefreshPriorities();
  ObserveColocation();
  const PlacementStats stats = RunPlacement();
  // Graceful degradation: under kDegrade backpressure the speculation pass is
  // suspended — duplicate copies are pure overhead when the cluster is
  // saturated with primary work.
  if (admission_ == nullptr || admission_->level() < BackpressureLevel::kDegrade) {
    RunSpeculation();
  }
  if (tracer_ != nullptr) {
    tracer_->SchedulerTick(sim_->Now(), stats.candidates, stats.placed,
                           wall.ElapsedMicros());
  }
  bool more = false;
  {
    MutexLock lock(state_mu_);
    more = active_jobs_ > 0 || !waiting_admission_.empty();
  }
  if (more) {
    EnsureTickScheduled();
  }
}

void UrsaScheduler::TryAdmitJobs() {
  if (down_) {
    return;
  }
  {
    MutexLock lock(state_mu_);
    if (waiting_admission_.empty()) {
      return;
    }
    // Admission order follows the job-ordering policy when JO is enabled,
    // otherwise plain submission order. Graphene defers to its base job
    // policy here — its DAG-awareness acts at stage-placement granularity.
    if (config_.enable_job_ordering &&
        EffectiveJobPolicy(config_.policy, config_.graphene) == OrderingPolicy::kSrjf) {
      // Rank by expected remaining work against the total load of admitted +
      // waiting jobs.
      std::array<double, kNumMonotaskResources> total_load = {0.0, 0.0, 0.0};
      for (const auto& entry : jobs_) {
        if (entry->finished || entry->shed) {
          continue;  // Shed jobs never run; they must not contribute load.
        }
        const auto work = entry->admitted ? entry->jm->remaining_work()
                                          : entry->job->plan.ExpectedWorkByResource();
        for (size_t r = 0; r < work.size(); ++r) {
          total_load[r] += work[r];
        }
      }
      std::stable_sort(waiting_admission_.begin(), waiting_admission_.end(),
                       [&](JobId a, JobId b) {
                         const auto ra = jobs_[static_cast<size_t>(a)]
                                             ->job->plan.ExpectedWorkByResource();
                         const auto rb = jobs_[static_cast<size_t>(b)]
                                             ->job->plan.ExpectedWorkByResource();
                         return SrjfRank(ra, total_load) < SrjfRank(rb, total_load);
                       });
    } else {
      std::stable_sort(waiting_admission_.begin(), waiting_admission_.end(),
                       [&](JobId a, JobId b) {
                         return jobs_[static_cast<size_t>(a)]->job->submit_time <
                                jobs_[static_cast<size_t>(b)]->job->submit_time;
                       });
    }
  }
  const double memory_budget =
      cluster_->total_memory() * config_.admission_memory_fraction;
  // Strict head-of-line admission prevents starvation of large jobs; the
  // utilization gate (admission control) is a second head-of-line condition,
  // while tier deferral under kDegrade backpressure skips an entry so
  // higher-priority waiters behind it can still be considered. Each
  // admission commits under the lock, but StartJobManager runs with it
  // released: starting a job re-enters the scheduler (ready-task callbacks),
  // which must be able to take state_mu_ itself.
  size_t cursor = 0;
  while (true) {
    JobEntry* admitted = nullptr;
    JobId admitted_id = kInvalidId;
    bool deferred = false;
    JobId deferred_id = kInvalidId;
    int deferred_tier = 0;
    double deferred_age = 0.0;
    const double now = sim_->Now();
    {
      MutexLock lock(state_mu_);
      if (cursor >= waiting_admission_.size()) {
        break;
      }
      const JobId id = waiting_admission_[cursor];
      JobEntry& entry = *jobs_[static_cast<size_t>(id)];
      if (admission_ != nullptr) {
        // Deferring this job only helps if a higher-priority (numerically
        // smaller tier) job is actually waiting to take its place; otherwise
        // deferral would idle the cluster (or, on a queue of only low-tier
        // jobs, deadlock it), so it is suppressed.
        bool has_competing_work = false;
        for (size_t i = 0; !has_competing_work && i < waiting_admission_.size(); ++i) {
          has_competing_work =
              i != cursor &&
              jobs_[static_cast<size_t>(waiting_admission_[i])]->job->spec.priority_tier <
                  entry.job->spec.priority_tier;
        }
        const AdmissionController::Gate gate =
            admission_->GateActivation(id, now, has_competing_work);
        if (gate == AdmissionController::Gate::kDeferTier) {
          deferred = true;
          deferred_id = id;
          deferred_tier = entry.job->spec.priority_tier;
          deferred_age = now - entry.job->submit_time;
          ++cursor;
        } else if (gate == AdmissionController::Gate::kBlockedUtilization) {
          break;  // Head-of-line: the utilization bound must free up first.
        }
      }
      if (!deferred) {
        if (reserved_memory_ + entry.job->spec.declared_memory_bytes > memory_budget) {
          break;
        }
        waiting_admission_.erase(waiting_admission_.begin() +
                                 static_cast<ptrdiff_t>(cursor));
        reserved_memory_ += entry.job->spec.declared_memory_bytes;
        entry.admitted = true;
        ++active_jobs_;
        records_[static_cast<size_t>(id)].admit_time = now;
        if (admission_ != nullptr) {
          admission_->OnActivated(id, now);
        }
        admitted = &entry;
        admitted_id = id;
      }
    }
    if (deferred) {
      if (tracer_ != nullptr) {
        tracer_->AdmissionEvent(now, TraceEventKind::kDefer, deferred_id, deferred_tier,
                                deferred_age, 0.0);
      }
      continue;
    }
    if (tracer_ != nullptr && admission_ != nullptr) {
      tracer_->AdmissionEvent(now, TraceEventKind::kAdmit, admitted_id,
                              admitted->job->spec.priority_tier,
                              now - admitted->job->submit_time,
                              static_cast<double>(admission_->counters().pending_now));
    }
    if (journal_ != nullptr) {
      journal_->Append({JournalKind::kAdmit, admitted_id, kInvalidId, kInvalidId, 0,
                        admitted->job->spec.declared_memory_bytes, 0.0, now});
    }
    StartJobManager(*admitted);
  }
}

void UrsaScheduler::RefreshPriorities() {
  if (EffectiveJobPolicy(config_.policy, config_.graphene) != OrderingPolicy::kSrjf) {
    return;
  }
  std::array<double, kNumMonotaskResources> load = {0.0, 0.0, 0.0};
  for (const auto& entry : jobs_) {
    if (entry->admitted && !entry->finished) {
      const auto& r = entry->jm->remaining_work();
      for (size_t i = 0; i < r.size(); ++i) {
        load[i] += r[i];
      }
    }
  }
  bool changed = false;
  for (const auto& entry : jobs_) {
    if (!entry->admitted || entry->finished) {
      continue;
    }
    const double rank = SrjfRank(entry->jm->remaining_work(), load);
    if (std::abs(rank - entry->srjf_rank) > 1e-6) {
      changed = true;
    }
    entry->srjf_rank = rank;
    if (config_.enable_monotask_ordering) {
      entry->jm->set_priority(rank);
    }
  }
  if (changed && config_.enable_monotask_ordering) {
    auto priority_of = [this](JobId id) {
      return jobs_[static_cast<size_t>(id)]->srjf_rank;
    };
    for (int w = 0; w < cluster_->size(); ++w) {
      cluster_->worker(w).Reprioritize(priority_of);
    }
  }
}

void UrsaScheduler::ComputeWorkerLoad(const Worker& worker, double ept,
                                      WorkerLoad* out) const {
  WorkerLoad& load = *out;
  if (worker.failed()) {
    load.memory_capacity = worker.memory_capacity();
    return;  // All-zero headroom: never selected.
  }
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    const auto type = static_cast<ResourceType>(r);
    const double apt = worker.ApproxProcessingTime(type);
    load.apt[r] = apt;
    load.d[r] = std::max(0.0, (ept - apt) / ept);
    load.rate[r] = worker.ProcessingRate(type);
  }
  load.free_memory = worker.free_memory();
  load.memory_capacity = worker.memory_capacity();
  load.d[static_cast<size_t>(ResourceDim::kMemory)] =
      worker.free_memory() / worker.memory_capacity();
}

std::vector<WorkerLoad> UrsaScheduler::SnapshotLoads() const {
  const double ept = config_.scheduling_interval * config_.ept_slack;
  std::vector<WorkerLoad> loads(static_cast<size_t>(cluster_->size()));
  for (int w = 0; w < cluster_->size(); ++w) {
    ComputeWorkerLoad(cluster_->worker(w), ept, &loads[static_cast<size_t>(w)]);
  }
  return loads;
}

void UrsaScheduler::MarkLoadDirty(WorkerId w) {
  if (!load_cache_.primed || load_cache_.dirty[static_cast<size_t>(w)] != 0) {
    return;  // Unprimed caches are rebuilt in full; duplicates are dropped.
  }
  load_cache_.dirty[static_cast<size_t>(w)] = 1;
  load_cache_.dirty_list.push_back(w);
}

const std::vector<WorkerLoad>& UrsaScheduler::CurrentLoads() {
  const double ept = config_.scheduling_interval * config_.ept_slack;
  bool changed = false;
  if (!config_.incremental_loads || !load_cache_.primed) {
    load_cache_.loads.assign(static_cast<size_t>(cluster_->size()), WorkerLoad{});
    for (int w = 0; w < cluster_->size(); ++w) {
      ComputeWorkerLoad(cluster_->worker(w), ept,
                        &load_cache_.loads[static_cast<size_t>(w)]);
    }
    load_cache_.dirty.assign(load_cache_.loads.size(), 0);
    load_cache_.dirty_list.clear();
    load_cache_.primed = true;
    ++counters_.full_rebuilds;
    changed = true;
  } else if (!load_cache_.dirty_list.empty()) {
    for (const WorkerId w : load_cache_.dirty_list) {
      WorkerLoad load;
      ComputeWorkerLoad(cluster_->worker(w), ept, &load);
      load_cache_.loads[static_cast<size_t>(w)] = load;
      load_cache_.dirty[static_cast<size_t>(w)] = 0;
      ++counters_.load_refreshes;
    }
    load_cache_.dirty_list.clear();
    changed = true;
    if (config_.verify_loads) {
      // Debug cross-check: the incremental snapshot must be bit-identical to
      // a from-scratch rebuild; a divergence means a worker mutation path is
      // missing its MarkLoadChanged() notification.
      const std::vector<WorkerLoad> reference = SnapshotLoads();
      CHECK_EQ(reference.size(), load_cache_.loads.size());
      for (size_t w = 0; w < reference.size(); ++w) {
        const WorkerLoad& a = reference[w];
        const WorkerLoad& b = load_cache_.loads[w];
        bool same =
            a.free_memory == b.free_memory && a.memory_capacity == b.memory_capacity;
        for (int r = 0; r < kNumResourceDims; ++r) {
          same = same && a.d[r] == b.d[r];
        }
        for (int r = 0; r < kNumMonotaskResources; ++r) {
          same = same && a.apt[r] == b.apt[r] && a.rate[r] == b.rate[r];
        }
        CHECK(same) << "incremental load for worker " << w
                    << " diverged from the full rescan (missing dirty mark?)";
      }
    }
  }
  if (changed) {
    scan_stale_ = true;
  }
  if (scan_stale_ && prune_effective_) {
    RebuildScanOrder();
  }
  return load_cache_.loads;
}

uint32_t UrsaScheduler::LoadMask(const WorkerLoad& load) {
  uint32_t mask = 0;
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    if (load.d[r] > 0.0) {
      mask |= 1u << r;
    }
  }
  if (load.d[static_cast<size_t>(ResourceDim::kMemory)] > 0.0) {
    mask |= 1u << kNumMonotaskResources;
  }
  return mask;
}

uint64_t UrsaScheduler::HashLoad(const WorkerLoad& load) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(&load);
  uint64_t h = 14695981039346656037ull;  // FNV-1a.
  for (size_t i = 0; i < sizeof(WorkerLoad); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

void UrsaScheduler::OverlayApply(WorkerId w, const TaskUsage& usage, double ept,
                                 const std::vector<WorkerLoad>& base,
                                 int headroom[kNumMonotaskResources]) const {
  WorkerLoad load;
  const int32_t old_slot = overlay_slot_[static_cast<size_t>(w)];
  if (old_slot >= 0) {
    OverlayBucket& old_bucket = overlay_buckets_[static_cast<size_t>(old_slot)];
    load = old_bucket.load;
    old_bucket.members.erase(
        std::lower_bound(old_bucket.members.begin(), old_bucket.members.end(), w));
  } else {
    load = base[static_cast<size_t>(w)];
    overlay_touched_.push_back(w);
  }
  ApplyToLoad(usage, ept, &load, headroom);
  // Find or create the bucket holding this exact load. Emptied buckets stay
  // in the index as tombstones and get reused when the load recurs.
  int32_t target = -1;
  std::vector<int32_t>& hits = overlay_index_[HashLoad(load)];
  for (const int32_t idx : hits) {
    if (std::memcmp(&overlay_buckets_[static_cast<size_t>(idx)].load, &load,
                    sizeof(WorkerLoad)) == 0) {
      target = idx;
      break;
    }
  }
  if (target < 0) {
    target = static_cast<int32_t>(overlay_buckets_.size());
    OverlayBucket bucket;
    bucket.load = load;
    bucket.ub = score_policy_->UpperBound(load);
    bucket.mask = LoadMask(load);
    overlay_buckets_.push_back(std::move(bucket));
    hits.push_back(target);
  }
  OverlayBucket& bucket = overlay_buckets_[static_cast<size_t>(target)];
  bucket.members.insert(
      std::lower_bound(bucket.members.begin(), bucket.members.end(), w), w);
  overlay_slot_[static_cast<size_t>(w)] = target;
}

void UrsaScheduler::OverlayReset() const {
  for (const WorkerId w : overlay_touched_) {
    overlay_slot_[static_cast<size_t>(w)] = -1;
  }
  overlay_touched_.clear();
  overlay_buckets_.clear();
  overlay_index_.clear();
}

void UrsaScheduler::RebuildScanOrder() {
  const std::vector<WorkerLoad>& loads = load_cache_.loads;
  // Group workers with bit-identical loads: sort by the raw load bytes
  // (WorkerLoad is all doubles, so memcmp is a total order with no padding
  // hazards), then cut runs of equal loads into buckets. The index
  // tie-break keeps each bucket's member list ascending.
  std::vector<WorkerId> order(loads.size());
  for (size_t w = 0; w < loads.size(); ++w) {
    order[w] = static_cast<WorkerId>(w);
  }
  std::sort(order.begin(), order.end(), [&loads](WorkerId a, WorkerId b) {
    const int c = std::memcmp(&loads[static_cast<size_t>(a)],
                              &loads[static_cast<size_t>(b)], sizeof(WorkerLoad));
    return c != 0 ? c < 0 : a < b;
  });
  scan_order_.clear();
  for (size_t i = 0; i < order.size();) {
    const WorkerLoad& load = loads[static_cast<size_t>(order[i])];
    ScanBucket bucket;
    // The bucket's upper bound is valid for the whole tick: every d only
    // decreases as placements are applied (the policy contract requires UB
    // monotone in the load), and modified workers leave the bucket's fresh
    // set via the overlay.
    bucket.ub = score_policy_->UpperBound(load);
    bucket.mask = LoadMask(load);
    size_t j = i;
    while (j < order.size() &&
           std::memcmp(&loads[static_cast<size_t>(order[j])], &load,
                       sizeof(WorkerLoad)) == 0) {
      bucket.members.push_back(order[j]);
      ++j;
    }
    scan_order_.push_back(std::move(bucket));
    i = j;
  }
  std::sort(scan_order_.begin(), scan_order_.end(),
            [](const ScanBucket& a, const ScanBucket& b) {
              if (a.ub != b.ub) {
                return a.ub > b.ub;
              }
              return a.members.front() < b.members.front();
            });
  scan_stale_ = false;
}

void UrsaScheduler::CountHeadroom(const std::vector<WorkerLoad>& loads,
                                  int out[kNumMonotaskResources]) {
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    out[r] = 0;
  }
  for (const WorkerLoad& load : loads) {
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      if (load.d[r] > 0.0) {
        ++out[r];
      }
    }
  }
}

bool UrsaScheduler::BestWorker(const TaskUsage& usage, const LoadView& view, double ept,
                               WorkerId* out_worker, double* out_score, int stage_key,
                               WorkerId avoid) const {
  ++counters_.bestworker_calls;
  // Scoring context for the active policy: the placed stage's co-location
  // key and the per-worker residency snapshot (null when learning is off).
  ScoreContext ctx;
  ctx.stage_key = stage_key;
  ctx.residents = colocation_ != nullptr ? &residents_ : nullptr;
  const PlacementScorePolicy& policy = *score_policy_;
  double best_score = -1.0;
  WorkerId best = kInvalidId;
  // The avoided worker's own best score, tracked in the same pass; consulted
  // only when no other worker qualifies.
  double avoid_score = -1.0;
  bool avoid_ok = false;
  if (prune_effective_ && !scan_order_.empty()) {
    // Pruned scan, pass 1: buckets in (upper bound desc, min worker asc)
    // order. Fresh members of a bucket share one bit-identical load, so one
    // ScoreWorker call scores them all and min-index-wins picks the smallest
    // fresh id — exactly what the seed's ascending linear scan would do. A
    // dimension the task needs with headroom somewhere now had headroom at
    // scan-build time too (loads only worsen within a tick), so a zero mask
    // bit proves the seed loop would skip every member as blocked; the same
    // argument covers d_mem (failed workers prune here in O(1)).
    uint32_t required = 1u << kNumMonotaskResources;  // d_mem > 0, always.
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      if (!config_.consider_network &&
          static_cast<ResourceType>(r) == ResourceType::kNetwork) {
        continue;
      }
      if (usage.bytes[r] > 0.0 && view.headroom[r] > 0) {
        required |= 1u << r;
      }
    }
    for (const ScanBucket& bucket : scan_order_) {
      if (best != kInvalidId && bucket.ub < best_score) {
        break;  // No later bucket can beat or tie the current best.
      }
      ++counters_.workers_scanned;
      if ((bucket.mask & required) != required) {
        continue;
      }
      // Smallest member still on its tick-start load; overlay-modified
      // members are scored individually in pass 2.
      WorkerId fresh = kInvalidId;
      bool avoid_fresh = false;
      for (const WorkerId id : bucket.members) {
        if (view.slot != nullptr && (*view.slot)[static_cast<size_t>(id)] >= 0) {
          continue;
        }
        if (id == avoid) {
          avoid_fresh = true;
          continue;
        }
        fresh = id;
        break;
      }
      if (fresh == kInvalidId && !avoid_fresh) {
        continue;
      }
      const WorkerId probe = fresh != kInvalidId ? fresh : avoid;
      double score = 0.0;
      if (!policy.Score(usage, (*view.base)[static_cast<size_t>(probe)], probe, ept,
                        view.headroom, config_.consider_network, ctx, &score)) {
        continue;
      }
      if (avoid_fresh) {
        avoid_ok = true;
        avoid_score = score;
      }
      if (fresh != kInvalidId &&
          (score > best_score || (score == best_score && fresh < best))) {
        best_score = score;
        best = fresh;
      }
    }
    // Pass 2: overlay-modified workers, grouped by identical current load
    // just like pass 1 — one ScoreWorker per distinct modified load, however
    // many workers this tick's placements have already touched. Bucket ubs
    // and masks are exact (workers change buckets on every placement), so
    // the same skip arguments apply. The avoided worker only needs explicit
    // tracking when it is the bucket minimum: any other member qualifies
    // with the identical score, so the avoid fallback would never fire.
    if (view.mods != nullptr) {
      for (const OverlayBucket& bucket : *view.mods) {
        if (bucket.members.empty()) {
          continue;  // Tombstone: every member moved to another load.
        }
        if (best != kInvalidId && bucket.ub < best_score) {
          continue;
        }
        ++counters_.workers_scanned;
        if ((bucket.mask & required) != required) {
          continue;
        }
        WorkerId cand = bucket.members.front();
        bool avoid_here = false;
        if (cand == avoid) {
          avoid_here = true;
          cand = bucket.members.size() > 1 ? bucket.members[1] : kInvalidId;
        }
        double score = 0.0;
        if (!policy.Score(usage, bucket.load, cand != kInvalidId ? cand : avoid, ept,
                          view.headroom, config_.consider_network, ctx, &score)) {
          continue;
        }
        if (avoid_here) {
          avoid_ok = true;
          avoid_score = score;
        }
        if (cand != kInvalidId &&
            (score > best_score || (score == best_score && cand < best))) {
          best_score = score;
          best = cand;
        }
      }
    }
  } else {
    const size_t n = view.base->size();
    for (size_t w = 0; w < n; ++w) {
      ++counters_.workers_scanned;
      double score = 0.0;
      if (!policy.Score(usage, view.at(w), static_cast<WorkerId>(w), ept, view.headroom,
                        config_.consider_network, ctx, &score)) {
        continue;
      }
      if (static_cast<WorkerId>(w) == avoid) {
        avoid_ok = true;
        avoid_score = score;
        continue;
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<WorkerId>(w);
      }
    }
  }
  if (best == kInvalidId) {
    if (avoid_ok) {
      // Preference only: if the avoided worker is the sole candidate (e.g. a
      // one-worker cluster), place there rather than livelock.
      *out_worker = avoid;
      *out_score = avoid_score;
      return true;
    }
    return false;
  }
  *out_worker = best;
  *out_score = best_score;
  return true;
}

void UrsaScheduler::ApplyToLoad(const TaskUsage& usage, double ept, WorkerLoad* load,
                                int headroom[kNumMonotaskResources]) {
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    const double inc = usage.bytes[r] / std::max(load->rate[r], 1.0) / ept;
    const bool had = load->d[r] > 0.0;
    load->d[r] = std::max(0.0, load->d[r] - inc);
    if (had && load->d[r] <= 0.0) {
      --headroom[r];
    }
    load->apt[r] += inc * ept;
  }
  load->free_memory = std::max(0.0, load->free_memory - usage.memory);
  const size_t mem = static_cast<size_t>(ResourceDim::kMemory);
  load->d[mem] = load->free_memory / load->memory_capacity;
}

UrsaScheduler::StagePlan UrsaScheduler::ScoreStage(
    const JobEntry& entry, StageId stage, const std::vector<TaskId>& tasks,
    const std::vector<WorkerLoad>& base,
    const int base_headroom[kNumMonotaskResources], double ept) const {
  StagePlan plan;
  plan.job = entry.job->id;
  plan.stage = stage;
  plan.complete = true;
  // Overlay view: candidate scoring mutates only the workers it touches
  // instead of copying all W loads per candidate.
  if (overlay_slot_.size() < base.size()) {
    overlay_slot_.assign(base.size(), -1);
  }
  int headroom[kNumMonotaskResources];
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    headroom[r] = base_headroom[r];
  }
  LoadView view;
  view.base = &base;
  view.slot = &overlay_slot_;
  view.mods = &overlay_buckets_;
  view.headroom = headroom;
  const int stage_key = StageKey(entry, stage);
  double score_sum = 0.0;
  for (TaskId t : tasks) {
    const TaskUsage usage = entry.jm->GetUsage(t);
    WorkerId w = kInvalidId;
    double f = 0.0;
    if (!BestWorker(usage, view, ept, &w, &f, stage_key, entry.jm->avoided_worker(t))) {
      plan.complete = false;  // stage_bonus <- 0 in Algorithm 1.
      continue;
    }
    plan.assignments.emplace_back(t, w);
    score_sum += f;
    OverlayApply(w, usage, ept, base, headroom);
  }
  OverlayReset();
  if (plan.assignments.empty()) {
    plan.score = -std::numeric_limits<double>::infinity();
    return plan;
  }
  plan.score = score_sum / static_cast<double>(plan.assignments.size());
  if (config_.stage_aware && plan.complete) {
    plan.score += config_.stage_bonus;
  }
  if (config_.enable_job_ordering) {
    plan.score += PlacementPriorityBonus(
        EffectiveJobPolicy(config_.policy, config_.graphene), config_.priority_weight,
        sim_->Now() - entry.job->submit_time, entry.srjf_rank);
    if (config_.policy == OrderingPolicy::kGraphene) {
      // "Do the hard stuff first": troublesome stages outrank the rest of
      // their job (the job term above is constant within a job), deeper
      // long-pole stages first.
      plan.score += GrapheneStageBonus(config_.graphene.stage_weight,
                                       entry.crit.IsTroublesome(stage),
                                       entry.crit.BottomShare(stage));
    }
  }
  return plan;
}

int UrsaScheduler::StageKey(const JobEntry& entry, StageId stage) const {
  if (colocation_ == nullptr || entry.stage_keys.empty() || stage < 0 ||
      static_cast<size_t>(stage) >= entry.stage_keys.size()) {
    return -1;
  }
  return entry.stage_keys[static_cast<size_t>(stage)];
}

void UrsaScheduler::ObserveColocation() {
  if (colocation_ == nullptr) {
    return;
  }
  // Residency snapshot, rebuilt from scratch every tick so failures,
  // restarts and races never leave stale keys behind. Jobs are walked in id
  // order and each worker's key list is sorted, so the learner sees a
  // deterministic observation stream.
  residents_.assign(static_cast<size_t>(cluster_->size()), {});
  std::vector<std::pair<WorkerId, StageId>> placed;
  for (const auto& entry : jobs_) {
    if (!entry->admitted || entry->finished) {
      continue;
    }
    placed.clear();
    entry->jm->CollectPlacedStages(&placed);
    for (const auto& [w, s] : placed) {
      residents_[static_cast<size_t>(w)].push_back(StageKey(*entry, s));
    }
  }
  for (std::vector<int>& keys : residents_) {
    std::sort(keys.begin(), keys.end());
  }
  // Contention signal: the worker's APT backlog normalized by EPT, averaged
  // over the monotask resources — 0 when idle, 1 when every queue is at
  // least one scheduling interval deep.
  const double ept = config_.scheduling_interval * config_.ept_slack;
  const std::vector<WorkerLoad>& loads = CurrentLoads();
  std::vector<double> contention(loads.size(), 0.0);
  for (size_t w = 0; w < loads.size(); ++w) {
    double backlog = 0.0;
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      backlog += std::min(1.0, loads[w].apt[r] / ept);
    }
    contention[w] = backlog / static_cast<double>(kNumMonotaskResources);
  }
  colocation_->ObserveTick(residents_, contention);
}

UrsaScheduler::PlacementStats UrsaScheduler::RunPackingPlacement() {
  // Tetris / Tetris2 / Capacity (section 5.1.2): jobs in policy order,
  // stages FIFO, each task reserved at its peak demand until completion.
  PlacementStats stats;
  bool placed_any = true;
  while (placed_any) {
    placed_any = false;
    for (const auto& entry : jobs_) {
      if (!entry->admitted || entry->finished) {
        continue;
      }
      // Copy: PlaceTask mutates the ready list.
      const std::vector<TaskId> ready = entry->jm->ready_tasks();
      stats.candidates += static_cast<int64_t>(ready.size());
      for (TaskId t : ready) {
        const TaskUsage usage = entry->jm->GetUsage(t);
        const WorkerId w = packing_->SelectWorker(usage);
        if (w == kInvalidId) {
          continue;
        }
        if (entry->jm->PlaceTask(t, w)) {
          packing_->Reserve(entry->job->id, t, w, usage);
          ++stats.placed;
          placed_any = true;
        }
      }
    }
  }
  return stats;
}

void UrsaScheduler::RunSpeculation() {
  if (spec_manager_ == nullptr) {
    return;
  }
  const double now = sim_->Now();
  int running = 0;
  std::vector<StragglerCandidate> candidates;
  for (const auto& entry : jobs_) {
    if (!entry->admitted || entry->finished) {
      continue;
    }
    running += entry->jm->CountPlacedTasks();
    entry->jm->CollectStragglerCandidates(now, &candidates);
  }
  if (candidates.empty() || !spec_manager_->CanLaunch(running)) {
    return;
  }
  // Most-behind first: the LATE heuristic duplicates the task expected to
  // hold the stage back the longest.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const StragglerCandidate& a, const StragglerCandidate& b) {
                     return a.estimated_time_to_finish > b.estimated_time_to_finish;
                   });
  const double ept = config_.scheduling_interval * config_.ept_slack;
  const std::vector<WorkerLoad> loads = CurrentLoads();
  int headroom[kNumMonotaskResources];
  CountHeadroom(loads, headroom);
  // Mutations go through the overlay so the bucket scan's fresh/modified
  // split stays exact against the refreshed base (see RunPlacement).
  if (overlay_slot_.size() < loads.size()) {
    overlay_slot_.assign(loads.size(), -1);
  }
  LoadView view;
  view.base = &loads;
  view.slot = &overlay_slot_;
  view.mods = &overlay_buckets_;
  view.headroom = headroom;
  for (const StragglerCandidate& cand : candidates) {
    if (!spec_manager_->CanLaunch(running)) {
      break;  // Wasted-work budget exhausted for this tick.
    }
    TaskUsage usage;
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      usage.bytes[r] = cand.bytes[r];
    }
    usage.memory = cand.memory;
    JobEntry& entry = *jobs_[static_cast<size_t>(cand.job)];
    const int stage_key = StageKey(entry, entry.job->plan.task(cand.task).stage);
    WorkerId w = kInvalidId;
    double f = 0.0;
    if (!BestWorker(usage, view, ept, &w, &f, stage_key, cand.worker) ||
        w == cand.worker) {
      continue;  // No eligible worker besides the straggling one.
    }
    if (!entry.jm->PlaceSpeculative(cand.task, w)) {
      continue;
    }
    OverlayApply(w, usage, ept, loads, headroom);
  }
  OverlayReset();
}

UrsaScheduler::PlacementStats UrsaScheduler::RunPlacement() {
  if (packing_ != nullptr) {
    return RunPackingPlacement();
  }
  PlacementStats stats;
  const double ept = config_.scheduling_interval * config_.ept_slack;
  std::vector<WorkerLoad> master = CurrentLoads();
  int headroom[kNumMonotaskResources];
  CountHeadroom(master, headroom);

  // Gather candidate (job, stage, ready tasks) groups. The scan starts at the
  // rotation cursor so that when the pair budget truncates a tick, the jobs
  // deferred this tick are examined first on the next one instead of being
  // starved behind the same low-index jobs forever. The cursor stays at 0
  // across untruncated ticks, so runs that never hit the budget see the exact
  // submission-order scan.
  struct Candidate {
    JobEntry* entry;
    StageId stage;
    std::vector<TaskId> tasks;
  };
  std::vector<Candidate> candidates;
  size_t scored_pairs = 0;
  const size_t num_jobs = jobs_.size();
  const size_t start = num_jobs > 0 ? placement_scan_start_ % num_jobs : 0;
  size_t next_start = 0;
  bool truncated = false;
  for (size_t i = 0; i < num_jobs && !truncated; ++i) {
    const size_t j = (start + i) % num_jobs;
    const auto& entry = jobs_[j];
    if (!entry->admitted || entry->finished) {
      continue;
    }
    std::map<StageId, std::vector<TaskId>> by_stage;
    for (TaskId t : entry->jm->ready_tasks()) {
      by_stage[entry->job->plan.task(t).stage].push_back(t);
    }
    for (auto& [stage, tasks] : by_stage) {
      if (config_.stage_aware) {
        scored_pairs += tasks.size() * master.size();
        candidates.push_back(Candidate{entry.get(), stage, std::move(tasks)});
      } else {
        // Per-task placement ablation: each task is its own candidate.
        for (TaskId t : tasks) {
          scored_pairs += master.size();
          candidates.push_back(Candidate{entry.get(), stage, {t}});
        }
      }
      if (scored_pairs > config_.max_scored_pairs_per_tick) {
        break;
      }
    }
    if (scored_pairs > config_.max_scored_pairs_per_tick) {
      truncated = true;
      next_start = (j + 1) % num_jobs;
      const size_t skipped = num_jobs - 1 - i;
      LOG(Warning) << "placement candidate budget exhausted (" << scored_pairs
                   << " pairs); deferring " << skipped << " job(s) to next tick";
      ++counters_.scoring_truncated;
      if (tracer_ != nullptr) {
        tracer_->AdmissionEvent(sim_->Now(), TraceEventKind::kScoringTruncated,
                                kInvalidId, 0, static_cast<double>(scored_pairs),
                                static_cast<double>(skipped));
      }
    }
  }
  placement_scan_start_ = truncated ? next_start : 0;
  for (const Candidate& c : candidates) {
    stats.candidates += static_cast<int64_t>(c.tasks.size());
  }
  if (candidates.empty()) {
    return stats;
  }

  // Score all candidates against the tick-start snapshot, then commit in
  // descending score order, re-resolving workers against the evolving master
  // load (an O(2 S T W) approximation of Algorithm 1's repeated rescoring).
  std::vector<std::pair<double, size_t>> order;
  order.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    StagePlan plan = ScoreStage(*c.entry, c.stage, c.tasks, master, headroom, ept);
    order.emplace_back(plan.score, i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });

  // Commit pass: re-resolve against the evolving loads. Mutations go
  // through the overlay (ScoreStage left it clean) so the bucket scan keeps
  // an exact fresh/modified split against the tick-start master.
  if (overlay_slot_.size() < master.size()) {
    overlay_slot_.assign(master.size(), -1);
  }
  LoadView view;
  view.base = &master;
  view.slot = &overlay_slot_;
  view.mods = &overlay_buckets_;
  view.headroom = headroom;
  for (const auto& [score, idx] : order) {
    if (score == -std::numeric_limits<double>::infinity()) {
      continue;
    }
    const Candidate& c = candidates[idx];
    for (TaskId t : c.tasks) {
      if (c.entry->jm->task_state(t) != TaskState::kReady) {
        continue;
      }
      const TaskUsage usage = c.entry->jm->GetUsage(t);
      WorkerId w = kInvalidId;
      double f = 0.0;
      if (!BestWorker(usage, view, ept, &w, &f, StageKey(*c.entry, c.stage),
                      c.entry->jm->avoided_worker(t))) {
        continue;
      }
      if (c.entry->jm->PlaceTask(t, w)) {
        OverlayApply(w, usage, ept, master, headroom);
        ++stats.placed;
      }
    }
  }
  OverlayReset();
  return stats;
}

}  // namespace ursa
