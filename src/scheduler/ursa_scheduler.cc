#include "src/scheduler/ursa_scheduler.h"

#include <algorithm>
#include <limits>
#include <map>

#include "src/common/logging.h"
#include "src/common/wallclock.h"
#include "src/obs/trace.h"

namespace ursa {

namespace {
// Guard against pathological candidate explosions in a single tick.
constexpr size_t kMaxScoredPairsPerTick = 2'000'000;
}  // namespace

UrsaScheduler::UrsaScheduler(Simulator* sim, Cluster* cluster,
                             const UrsaSchedulerConfig& config)
    : sim_(sim), cluster_(cluster), config_(config) {
  CHECK_GT(config_.scheduling_interval, 0.0);
  CHECK_GE(config_.ept_slack, 1.0);
  if (config_.placement != PlacementAlgorithm::kAlgorithm1) {
    packing_ = std::make_unique<PackingState>(cluster, config_.placement);
  }
  handled_epoch_.resize(static_cast<size_t>(cluster_->size()), 0);
  if (config_.fault.enable_heartbeat_detection) {
    detector_ = std::make_unique<FailureDetector>(sim_, cluster_, config_.fault.detector);
    detector_->set_on_death(
        [this](WorkerId w, [[maybe_unused]] double silence) { HandleWorkerFailure(w); });
    detector_->set_on_rejoin([this](WorkerId w) { OnWorkerRejoined(w); });
  }
  if (config_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(config_.admission);
  }
  if (config_.spec.enabled) {
    spec_manager_ = std::make_unique<SpeculationManager>(config_.spec, &fault_stats_);
    // Cancelled monotasks report their elapsed busy time (the wasted work of
    // the race's losing side) straight from the workers.
    for (int w = 0; w < cluster_->size(); ++w) {
      cluster_->worker(w).set_waste_sink(
          [this](ResourceType r, double bytes, double seconds) {
            spec_manager_->RecordWaste(sim_->Now(), r, bytes, seconds);
          });
    }
  }
}

UrsaScheduler::~UrsaScheduler() = default;

void UrsaScheduler::SubmitJob(std::unique_ptr<Job> job) {
  CHECK_EQ(job->id, static_cast<JobId>(jobs_.size()))
      << "jobs must be submitted with dense sequential ids";
  job->submit_time = sim_->Now();
  JobRecord record;
  record.id = job->id;
  record.name = job->spec.name;
  record.klass = job->spec.klass;
  record.tenant = job->spec.tenant;
  record.tier = job->spec.priority_tier;
  record.slo = job->spec.slo_seconds;
  record.submit_time = sim_->Now();
  records_.push_back(std::move(record));

  auto entry = std::make_unique<JobEntry>();
  entry->job = std::move(job);
  const JobId id = entry->job->id;
  jobs_.push_back(std::move(entry));
  {
    MutexLock lock(state_mu_);
    ++total_jobs_;
  }
  if (admission_ != nullptr) {
    const Job& submitted = *jobs_[static_cast<size_t>(id)]->job;
    AdmissionController::JobInfo info;
    info.id = id;
    info.tier = submitted.spec.priority_tier;
    info.expected_seconds = EstimateExpectedSeconds(submitted);
    info.slo = submitted.spec.slo_seconds;
    const AdmissionController::Decision decision = admission_->OnSubmit(info, sim_->Now());
    if (decision.evicted != kInvalidId) {
      ShedJob(decision.evicted);
    }
    if (!decision.accepted) {
      ShedJob(id);
      return;
    }
  }
  {
    MutexLock lock(state_mu_);
    waiting_admission_.push_back(id);
  }
  TryAdmitJobs();
  EnsureTickScheduled();
}

void UrsaScheduler::ShedJob(JobId id) {
  JobEntry& entry = *jobs_[static_cast<size_t>(id)];
  CHECK(!entry.admitted && !entry.finished && !entry.shed)
      << "only unadmitted jobs can be shed";
  entry.shed = true;
  const double now = sim_->Now();
  JobRecord& record = records_[static_cast<size_t>(id)];
  record.shed = true;
  record.shed_time = now;
  {
    MutexLock lock(state_mu_);
    waiting_admission_.erase(
        std::remove(waiting_admission_.begin(), waiting_admission_.end(), id),
        waiting_admission_.end());
    ++shed_jobs_;
  }
  if (tracer_ != nullptr) {
    const double slo = entry.job->spec.slo_seconds > 0.0
                           ? entry.job->spec.slo_seconds
                           : config_.admission.default_slo;
    tracer_->AdmissionEvent(now, TraceEventKind::kShed, id, entry.job->spec.priority_tier,
                            EstimateExpectedSeconds(*entry.job) / slo, 0.0);
  }
}

double UrsaScheduler::EstimateExpectedSeconds(const Job& job) const {
  const auto work = job.plan.ExpectedWorkByResource();
  double rate[kNumMonotaskResources] = {0.0, 0.0, 0.0};
  for (int w = 0; w < cluster_->size(); ++w) {
    const Worker& worker = cluster_->worker(w);
    if (worker.failed()) {
      continue;
    }
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      rate[r] += worker.ProcessingRate(static_cast<ResourceType>(r));
    }
  }
  double worst = 0.0;
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    if (work[static_cast<size_t>(r)] > 0.0) {
      worst = std::max(worst, work[static_cast<size_t>(r)] / std::max(rate[r], 1.0));
    }
  }
  return worst;
}

double UrsaScheduler::AvgHeadroom() const {
  const std::vector<WorkerLoad> loads = SnapshotLoads();
  double sum = 0.0;
  int live = 0;
  for (int w = 0; w < cluster_->size(); ++w) {
    if (cluster_->worker(w).failed()) {
      continue;
    }
    const WorkerLoad& load = loads[static_cast<size_t>(w)];
    double headroom = 0.0;
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      headroom += load.d[r];
    }
    sum += headroom / kNumMonotaskResources;
    ++live;
  }
  return live > 0 ? sum / static_cast<double>(live) : 0.0;
}

const JobManager* UrsaScheduler::job_manager(JobId id) const {
  const JobEntry& entry = *jobs_[static_cast<size_t>(id)];
  return entry.jm.get();
}

int UrsaScheduler::FailWorker(WorkerId worker_id) {
  Worker& worker = cluster_->worker(worker_id);
  if (worker.failed()) {
    return 0;  // Idempotent: this failure episode is already in progress.
  }
  worker.Fail();
  return HandleWorkerFailure(worker_id);
}

int UrsaScheduler::HandleWorkerFailure(WorkerId worker_id) {
  Worker& worker = cluster_->worker(worker_id);
  if (!worker.failed()) {
    // The detector declared a worker that is actually alive (e.g. degraded
    // but heartbeating slowly in a future model); nothing to recover.
    return 0;
  }
  // An explicit FailWorker() call and a later heartbeat-timeout declaration
  // of the same crash must recover exactly once.
  if (handled_epoch_[static_cast<size_t>(worker_id)] == worker.failure_epoch()) {
    return 0;
  }
  handled_epoch_[static_cast<size_t>(worker_id)] = worker.failure_epoch();
  const double now = sim_->Now();
  fault_stats_.RecordDetection(now, std::max(0.0, now - worker.failed_since()));
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(now, TraceEventKind::kDetection, worker_id,
                         std::max(0.0, now - worker.failed_since()));
  }
  // Drop the worker's metadata before recovery so the lineage pass sees
  // exactly which outputs are gone. Safe: any task that could read a dropped
  // partition is reset by the lineage fixpoint and only becomes ready again
  // after its producers have re-Put their outputs.
  cluster_->metadata().DropWorker(worker_id);

  int affected = 0;
  for (auto& entry : jobs_) {
    if (!entry->admitted || entry->finished) {
      continue;
    }
    // Tear down speculative copies on the dead worker (and mark primaries
    // lost there as handed over to their surviving copy) before any recovery
    // decision; RecoverFromWorkerFailure repeats this idempotently.
    entry->jm->HandleWorkerFailureForSpeculation(worker_id);
    if (config_.fault.enable_lineage_recovery) {
      JobManager::RecoveryResult r = entry->jm->RecoverFromWorkerFailure(worker_id);
      if (r.inputs_lost) {
        FullRestart(*entry);
        ++affected;
        continue;
      }
      if (r.tasks_reset > 0) {
        fault_stats_.RecordTasksReset(now, r.tasks_reset);
        fault_stats_.RecordFullRestartEquivalentTasks(r.tasks_started_before);
        ++affected;
      }
    } else if (entry->jm->DependsOnWorker(worker_id)) {
      FullRestart(*entry);
      ++affected;
    }
  }
  EnsureTickScheduled();
  return affected;
}

void UrsaScheduler::OnWorkerRejoined(WorkerId worker_id) {
  fault_stats_.RecordRejoin(sim_->Now());
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kRejoin, worker_id);
  }
  {
    // The worker re-registered empty; the next tick may place tasks on it.
    MutexLock lock(state_mu_);
    placement_dirty_ = true;
  }
  EnsureTickScheduled();
}

void UrsaScheduler::StartJobManager(JobEntry& entry) {
  entry.jm = std::make_unique<JobManager>(sim_, cluster_, entry.job.get(), this);
  entry.jm->set_tracer(tracer_);
  entry.jm->set_use_intra_ordering(config_.enable_monotask_ordering);
  // EJF queue priority: admission (submission) order. SRJF ranks are
  // refreshed every tick.
  entry.jm->set_priority(config_.enable_monotask_ordering ? entry.job->submit_time : 0.0);
  entry.jm->ConfigureFaultPolicy(config_.fault.max_monotask_attempts,
                                 config_.fault.retry_backoff_base,
                                 config_.fault.retry_backoff_cap, &fault_stats_);
  if (spec_manager_ != nullptr) {
    entry.jm->ConfigureSpeculation(spec_manager_.get());
  }
  entry.jm->Start();
}

void UrsaScheduler::FullRestart(JobEntry& entry) {
  // Restart from the input checkpoint with a fresh job manager; the
  // admission reservation carries over.
  entry.jm->Abort();
  aborted_jms_.push_back(std::move(entry.jm));
  StartJobManager(entry);
  {
    MutexLock lock(state_mu_);
    ++total_restarts_;
  }
  fault_stats_.RecordFullRestart();
}

void UrsaScheduler::OnTaskReady([[maybe_unused]] JobId job, [[maybe_unused]] TaskId task) {
  {
    MutexLock lock(state_mu_);
    placement_dirty_ = true;
  }
  EnsureTickScheduled();
}

void UrsaScheduler::OnTaskCompleted(JobId job, TaskId task) {
  if (packing_ != nullptr) {
    packing_->Release(job, task);
  }
}

void UrsaScheduler::OnMonotaskCompleted([[maybe_unused]] JobId job,
                                        [[maybe_unused]] ResourceType type,
                                        [[maybe_unused]] double input_bytes) {}

void UrsaScheduler::OnJobFinished(JobId job_id) {
  JobEntry& entry = *jobs_[static_cast<size_t>(job_id)];
  CHECK(entry.admitted && !entry.finished);
  entry.finished = true;
  if (admission_ != nullptr) {
    admission_->OnJobFinished(job_id);
  }
  {
    MutexLock lock(state_mu_);
    reserved_memory_ -= entry.job->spec.declared_memory_bytes;
    reserved_memory_ = std::max(reserved_memory_, 0.0);
    --active_jobs_;
    ++finished_jobs_;
  }
  JobRecord& record = records_[static_cast<size_t>(job_id)];
  record.finish_time = sim_->Now();
  record.cpu_seconds = entry.jm->cpu_seconds_used();
  // Reclaim job managers aborted by earlier restarts of this job: the job is
  // done, so nothing resubmits through them, and any still-deferred callbacks
  // they handed out are disarmed by their liveness tokens.
  aborted_jms_.erase(std::remove_if(aborted_jms_.begin(), aborted_jms_.end(),
                                    [job_id](const std::unique_ptr<JobManager>& jm) {
                                      return jm->job_id() == job_id;
                                    }),
                     aborted_jms_.end());
  TryAdmitJobs();
}

void UrsaScheduler::EnsureTickScheduled() {
  {
    MutexLock lock(state_mu_);
    if (tick_scheduled_) {
      return;
    }
    tick_scheduled_ = true;
  }
  sim_->Schedule(config_.scheduling_interval, [this] { Tick(); });
  if (detector_ != nullptr) {
    // (Re)start heartbeats and sweeps; both stop when the cluster goes idle
    // so the event queue can drain.
    detector_->Activate([this] {
      MutexLock lock(state_mu_);
      return active_jobs_ > 0 || !waiting_admission_.empty();
    });
  }
}

void UrsaScheduler::Tick() {
  {
    MutexLock lock(state_mu_);
    tick_scheduled_ = false;
  }
  const WallTimer wall;
  if (admission_ != nullptr &&
      admission_->UpdateBackpressure(sim_->Now(), AvgHeadroom())) {
    if (tracer_ != nullptr) {
      tracer_->AdmissionEvent(sim_->Now(), TraceEventKind::kBackpressure, kInvalidId, 0,
                              static_cast<double>(static_cast<int>(admission_->level())),
                              admission_->throttle_factor());
    }
  }
  TryAdmitJobs();
  RefreshPriorities();
  const PlacementStats stats = RunPlacement();
  // Graceful degradation: under kDegrade backpressure the speculation pass is
  // suspended — duplicate copies are pure overhead when the cluster is
  // saturated with primary work.
  if (admission_ == nullptr || admission_->level() < BackpressureLevel::kDegrade) {
    RunSpeculation();
  }
  if (tracer_ != nullptr) {
    tracer_->SchedulerTick(sim_->Now(), stats.candidates, stats.placed,
                           wall.ElapsedMicros());
  }
  bool more = false;
  {
    MutexLock lock(state_mu_);
    more = active_jobs_ > 0 || !waiting_admission_.empty();
  }
  if (more) {
    EnsureTickScheduled();
  }
}

void UrsaScheduler::TryAdmitJobs() {
  {
    MutexLock lock(state_mu_);
    if (waiting_admission_.empty()) {
      return;
    }
    // Admission order follows the job-ordering policy when JO is enabled,
    // otherwise plain submission order.
    if (config_.enable_job_ordering && config_.policy == OrderingPolicy::kSrjf) {
      // Rank by expected remaining work against the total load of admitted +
      // waiting jobs.
      std::array<double, kNumMonotaskResources> total_load = {0.0, 0.0, 0.0};
      for (const auto& entry : jobs_) {
        if (entry->finished || entry->shed) {
          continue;  // Shed jobs never run; they must not contribute load.
        }
        const auto work = entry->admitted ? entry->jm->remaining_work()
                                          : entry->job->plan.ExpectedWorkByResource();
        for (size_t r = 0; r < work.size(); ++r) {
          total_load[r] += work[r];
        }
      }
      std::stable_sort(waiting_admission_.begin(), waiting_admission_.end(),
                       [&](JobId a, JobId b) {
                         const auto ra = jobs_[static_cast<size_t>(a)]
                                             ->job->plan.ExpectedWorkByResource();
                         const auto rb = jobs_[static_cast<size_t>(b)]
                                             ->job->plan.ExpectedWorkByResource();
                         return SrjfRank(ra, total_load) < SrjfRank(rb, total_load);
                       });
    } else {
      std::stable_sort(waiting_admission_.begin(), waiting_admission_.end(),
                       [&](JobId a, JobId b) {
                         return jobs_[static_cast<size_t>(a)]->job->submit_time <
                                jobs_[static_cast<size_t>(b)]->job->submit_time;
                       });
    }
  }
  const double memory_budget =
      cluster_->total_memory() * config_.admission_memory_fraction;
  // Strict head-of-line admission prevents starvation of large jobs; the
  // utilization gate (admission control) is a second head-of-line condition,
  // while tier deferral under kDegrade backpressure skips an entry so
  // higher-priority waiters behind it can still be considered. Each
  // admission commits under the lock, but StartJobManager runs with it
  // released: starting a job re-enters the scheduler (ready-task callbacks),
  // which must be able to take state_mu_ itself.
  size_t cursor = 0;
  while (true) {
    JobEntry* admitted = nullptr;
    JobId admitted_id = kInvalidId;
    bool deferred = false;
    JobId deferred_id = kInvalidId;
    int deferred_tier = 0;
    double deferred_age = 0.0;
    const double now = sim_->Now();
    {
      MutexLock lock(state_mu_);
      if (cursor >= waiting_admission_.size()) {
        break;
      }
      const JobId id = waiting_admission_[cursor];
      JobEntry& entry = *jobs_[static_cast<size_t>(id)];
      if (admission_ != nullptr) {
        // Deferring this job only helps if a higher-priority (numerically
        // smaller tier) job is actually waiting to take its place; otherwise
        // deferral would idle the cluster (or, on a queue of only low-tier
        // jobs, deadlock it), so it is suppressed.
        bool has_competing_work = false;
        for (size_t i = 0; !has_competing_work && i < waiting_admission_.size(); ++i) {
          has_competing_work =
              i != cursor &&
              jobs_[static_cast<size_t>(waiting_admission_[i])]->job->spec.priority_tier <
                  entry.job->spec.priority_tier;
        }
        const AdmissionController::Gate gate =
            admission_->GateActivation(id, now, has_competing_work);
        if (gate == AdmissionController::Gate::kDeferTier) {
          deferred = true;
          deferred_id = id;
          deferred_tier = entry.job->spec.priority_tier;
          deferred_age = now - entry.job->submit_time;
          ++cursor;
        } else if (gate == AdmissionController::Gate::kBlockedUtilization) {
          break;  // Head-of-line: the utilization bound must free up first.
        }
      }
      if (!deferred) {
        if (reserved_memory_ + entry.job->spec.declared_memory_bytes > memory_budget) {
          break;
        }
        waiting_admission_.erase(waiting_admission_.begin() +
                                 static_cast<ptrdiff_t>(cursor));
        reserved_memory_ += entry.job->spec.declared_memory_bytes;
        entry.admitted = true;
        ++active_jobs_;
        records_[static_cast<size_t>(id)].admit_time = now;
        if (admission_ != nullptr) {
          admission_->OnActivated(id, now);
        }
        admitted = &entry;
        admitted_id = id;
      }
    }
    if (deferred) {
      if (tracer_ != nullptr) {
        tracer_->AdmissionEvent(now, TraceEventKind::kDefer, deferred_id, deferred_tier,
                                deferred_age, 0.0);
      }
      continue;
    }
    if (tracer_ != nullptr && admission_ != nullptr) {
      tracer_->AdmissionEvent(now, TraceEventKind::kAdmit, admitted_id,
                              admitted->job->spec.priority_tier,
                              now - admitted->job->submit_time,
                              static_cast<double>(admission_->counters().pending_now));
    }
    StartJobManager(*admitted);
  }
}

void UrsaScheduler::RefreshPriorities() {
  if (config_.policy != OrderingPolicy::kSrjf) {
    return;
  }
  std::array<double, kNumMonotaskResources> load = {0.0, 0.0, 0.0};
  for (const auto& entry : jobs_) {
    if (entry->admitted && !entry->finished) {
      const auto& r = entry->jm->remaining_work();
      for (size_t i = 0; i < r.size(); ++i) {
        load[i] += r[i];
      }
    }
  }
  bool changed = false;
  for (const auto& entry : jobs_) {
    if (!entry->admitted || entry->finished) {
      continue;
    }
    const double rank = SrjfRank(entry->jm->remaining_work(), load);
    if (std::abs(rank - entry->srjf_rank) > 1e-6) {
      changed = true;
    }
    entry->srjf_rank = rank;
    if (config_.enable_monotask_ordering) {
      entry->jm->set_priority(rank);
    }
  }
  if (changed && config_.enable_monotask_ordering) {
    auto priority_of = [this](JobId id) {
      return jobs_[static_cast<size_t>(id)]->srjf_rank;
    };
    for (int w = 0; w < cluster_->size(); ++w) {
      cluster_->worker(w).Reprioritize(priority_of);
    }
  }
}

std::vector<UrsaScheduler::WorkerLoad> UrsaScheduler::SnapshotLoads() const {
  const double ept = config_.scheduling_interval * config_.ept_slack;
  std::vector<WorkerLoad> loads(static_cast<size_t>(cluster_->size()));
  for (int w = 0; w < cluster_->size(); ++w) {
    const Worker& worker = cluster_->worker(w);
    WorkerLoad& load = loads[static_cast<size_t>(w)];
    if (worker.failed()) {
      load.memory_capacity = worker.memory_capacity();
      continue;  // All-zero headroom: never selected.
    }
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      const auto type = static_cast<ResourceType>(r);
      const double apt = worker.ApproxProcessingTime(type);
      load.apt[r] = apt;
      load.d[r] = std::max(0.0, (ept - apt) / ept);
      load.rate[r] = worker.ProcessingRate(type);
    }
    load.free_memory = worker.free_memory();
    load.memory_capacity = worker.memory_capacity();
    load.d[static_cast<size_t>(ResourceDim::kMemory)] =
        worker.free_memory() / worker.memory_capacity();
  }
  return loads;
}

bool UrsaScheduler::BestWorker(const TaskUsage& usage, const std::vector<WorkerLoad>& loads,
                               double ept, WorkerId* out_worker, double* out_score,
                               WorkerId avoid) const {
  // The D_r == 0 skip rule (section 4.2.2) only helps while some worker
  // still has headroom in r to steer toward; when the whole cluster is
  // backlogged on r, refusing every worker would merely idle the other
  // resources, so the rule is suspended for that dimension.
  bool any_headroom[kNumMonotaskResources] = {false, false, false};
  for (const WorkerLoad& load : loads) {
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      any_headroom[r] = any_headroom[r] || load.d[r] > 0.0;
    }
  }
  double best_score = -1.0;
  WorkerId best = kInvalidId;
  for (size_t w = 0; w < loads.size(); ++w) {
    if (static_cast<WorkerId>(w) == avoid) {
      continue;
    }
    const WorkerLoad& load = loads[w];
    if (usage.memory > load.free_memory) {
      continue;
    }
    bool blocked = false;
    double score = 0.0;
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      if (!config_.consider_network && static_cast<ResourceType>(r) == ResourceType::kNetwork) {
        continue;
      }
      if (usage.bytes[r] <= 0.0) {
        continue;
      }
      double inc = usage.bytes[r] / std::max(load.rate[r], 1.0) / ept;
      if (load.d[r] <= 0.0 && any_headroom[r]) {
        // Assigning t here would block on resource r (section 4.2.2).
        blocked = true;
        break;
      }
      inc = std::min(inc, load.d[r]);
      score += load.d[r] * inc;
    }
    if (blocked) {
      continue;
    }
    // Memory dimension, normalized by capacity so all dims are O(1).
    const double d_mem = load.d[static_cast<size_t>(ResourceDim::kMemory)];
    if (d_mem <= 0.0) {
      continue;
    }
    const double inc_mem = std::min(usage.memory / load.memory_capacity, d_mem);
    score += d_mem * inc_mem;
    // Saturation tie-breaker: among equally (un)attractive workers, prefer
    // the one whose queues for the task's resources are shortest.
    double backlog = 0.0;
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      if (usage.bytes[r] > 0.0) {
        backlog += load.apt[r];
      }
    }
    score += 1e-4 / (1.0 + backlog);
    if (score > best_score) {
      best_score = score;
      best = static_cast<WorkerId>(w);
    }
  }
  if (best == kInvalidId) {
    if (avoid != kInvalidId) {
      // Preference only: if the avoided worker is the sole candidate (e.g. a
      // one-worker cluster), place there rather than livelock.
      return BestWorker(usage, loads, ept, out_worker, out_score, kInvalidId);
    }
    return false;
  }
  *out_worker = best;
  *out_score = best_score;
  return true;
}

void UrsaScheduler::ApplyToLoad(const TaskUsage& usage, double ept, WorkerLoad* load) {
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    const double inc = usage.bytes[r] / std::max(load->rate[r], 1.0) / ept;
    load->d[r] = std::max(0.0, load->d[r] - inc);
    load->apt[r] += inc * ept;
  }
  load->free_memory = std::max(0.0, load->free_memory - usage.memory);
  const size_t mem = static_cast<size_t>(ResourceDim::kMemory);
  load->d[mem] = load->free_memory / load->memory_capacity;
}

UrsaScheduler::StagePlan UrsaScheduler::ScoreStage(const JobEntry& entry, StageId stage,
                                                   const std::vector<TaskId>& tasks,
                                                   std::vector<WorkerLoad> loads,
                                                   double ept) const {
  StagePlan plan;
  plan.job = entry.job->id;
  plan.stage = stage;
  plan.complete = true;
  double score_sum = 0.0;
  for (TaskId t : tasks) {
    const TaskUsage usage = entry.jm->GetUsage(t);
    WorkerId w = kInvalidId;
    double f = 0.0;
    if (!BestWorker(usage, loads, ept, &w, &f, entry.jm->avoided_worker(t))) {
      plan.complete = false;  // stage_bonus <- 0 in Algorithm 1.
      continue;
    }
    plan.assignments.emplace_back(t, w);
    score_sum += f;
    ApplyToLoad(usage, ept, &loads[static_cast<size_t>(w)]);
  }
  if (plan.assignments.empty()) {
    plan.score = -std::numeric_limits<double>::infinity();
    return plan;
  }
  plan.score = score_sum / static_cast<double>(plan.assignments.size());
  if (config_.stage_aware && plan.complete) {
    plan.score += config_.stage_bonus;
  }
  if (config_.enable_job_ordering) {
    plan.score += PlacementPriorityBonus(config_.policy, config_.priority_weight,
                                         sim_->Now() - entry.job->submit_time,
                                         entry.srjf_rank);
  }
  return plan;
}

UrsaScheduler::PlacementStats UrsaScheduler::RunPackingPlacement() {
  // Tetris / Tetris2 / Capacity (section 5.1.2): jobs in policy order,
  // stages FIFO, each task reserved at its peak demand until completion.
  PlacementStats stats;
  bool placed_any = true;
  while (placed_any) {
    placed_any = false;
    for (const auto& entry : jobs_) {
      if (!entry->admitted || entry->finished) {
        continue;
      }
      // Copy: PlaceTask mutates the ready list.
      const std::vector<TaskId> ready = entry->jm->ready_tasks();
      stats.candidates += static_cast<int64_t>(ready.size());
      for (TaskId t : ready) {
        const TaskUsage usage = entry->jm->GetUsage(t);
        const WorkerId w = packing_->SelectWorker(usage);
        if (w == kInvalidId) {
          continue;
        }
        if (entry->jm->PlaceTask(t, w)) {
          packing_->Reserve(entry->job->id, t, w, usage);
          ++stats.placed;
          placed_any = true;
        }
      }
    }
  }
  return stats;
}

void UrsaScheduler::RunSpeculation() {
  if (spec_manager_ == nullptr) {
    return;
  }
  const double now = sim_->Now();
  int running = 0;
  std::vector<StragglerCandidate> candidates;
  for (const auto& entry : jobs_) {
    if (!entry->admitted || entry->finished) {
      continue;
    }
    running += entry->jm->CountPlacedTasks();
    entry->jm->CollectStragglerCandidates(now, &candidates);
  }
  if (candidates.empty() || !spec_manager_->CanLaunch(running)) {
    return;
  }
  // Most-behind first: the LATE heuristic duplicates the task expected to
  // hold the stage back the longest.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const StragglerCandidate& a, const StragglerCandidate& b) {
                     return a.estimated_time_to_finish > b.estimated_time_to_finish;
                   });
  const double ept = config_.scheduling_interval * config_.ept_slack;
  std::vector<WorkerLoad> loads = SnapshotLoads();
  for (const StragglerCandidate& cand : candidates) {
    if (!spec_manager_->CanLaunch(running)) {
      break;  // Wasted-work budget exhausted for this tick.
    }
    TaskUsage usage;
    for (int r = 0; r < kNumMonotaskResources; ++r) {
      usage.bytes[r] = cand.bytes[r];
    }
    usage.memory = cand.memory;
    WorkerId w = kInvalidId;
    double f = 0.0;
    if (!BestWorker(usage, loads, ept, &w, &f, cand.worker) || w == cand.worker) {
      continue;  // No eligible worker besides the straggling one.
    }
    JobEntry& entry = *jobs_[static_cast<size_t>(cand.job)];
    if (!entry.jm->PlaceSpeculative(cand.task, w)) {
      continue;
    }
    ApplyToLoad(usage, ept, &loads[static_cast<size_t>(w)]);
  }
}

UrsaScheduler::PlacementStats UrsaScheduler::RunPlacement() {
  if (packing_ != nullptr) {
    return RunPackingPlacement();
  }
  PlacementStats stats;
  const double ept = config_.scheduling_interval * config_.ept_slack;
  std::vector<WorkerLoad> master = SnapshotLoads();

  // Gather candidate (job, stage, ready tasks) groups.
  struct Candidate {
    JobEntry* entry;
    StageId stage;
    std::vector<TaskId> tasks;
  };
  std::vector<Candidate> candidates;
  size_t scored_pairs = 0;
  for (const auto& entry : jobs_) {
    if (!entry->admitted || entry->finished) {
      continue;
    }
    std::map<StageId, std::vector<TaskId>> by_stage;
    for (TaskId t : entry->jm->ready_tasks()) {
      by_stage[entry->job->plan.task(t).stage].push_back(t);
    }
    for (auto& [stage, tasks] : by_stage) {
      if (config_.stage_aware) {
        scored_pairs += tasks.size() * master.size();
        candidates.push_back(Candidate{entry.get(), stage, std::move(tasks)});
      } else {
        // Per-task placement ablation: each task is its own candidate.
        for (TaskId t : tasks) {
          scored_pairs += master.size();
          candidates.push_back(Candidate{entry.get(), stage, {t}});
        }
      }
      if (scored_pairs > kMaxScoredPairsPerTick) {
        break;
      }
    }
    if (scored_pairs > kMaxScoredPairsPerTick) {
      LOG(Warning) << "placement candidate budget exhausted; deferring to next tick";
      break;
    }
  }
  for (const Candidate& c : candidates) {
    stats.candidates += static_cast<int64_t>(c.tasks.size());
  }
  if (candidates.empty()) {
    return stats;
  }

  // Score all candidates against the tick-start snapshot, then commit in
  // descending score order, re-resolving workers against the evolving master
  // load (an O(2 S T W) approximation of Algorithm 1's repeated rescoring).
  std::vector<std::pair<double, size_t>> order;
  order.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    StagePlan plan = ScoreStage(*c.entry, c.stage, c.tasks, master, ept);
    order.emplace_back(plan.score, i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [score, idx] : order) {
    if (score == -std::numeric_limits<double>::infinity()) {
      continue;
    }
    const Candidate& c = candidates[idx];
    // Re-resolve against current master loads and commit.
    for (TaskId t : c.tasks) {
      if (c.entry->jm->task_state(t) != TaskState::kReady) {
        continue;
      }
      const TaskUsage usage = c.entry->jm->GetUsage(t);
      WorkerId w = kInvalidId;
      double f = 0.0;
      if (!BestWorker(usage, master, ept, &w, &f, c.entry->jm->avoided_worker(t))) {
        continue;
      }
      if (c.entry->jm->PlaceTask(t, w)) {
        ApplyToLoad(usage, ept, &master[static_cast<size_t>(w)]);
        ++stats.placed;
      }
    }
  }
  return stats;
}

}  // namespace ursa
