#include "src/scheduler/admission.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa {

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRejectNewest:
      return "reject-newest";
    case ShedPolicy::kRejectLargestWork:
      return "reject-largest-work";
    case ShedPolicy::kPriorityTier:
      return "priority-tier";
  }
  return "?";
}

bool ParseShedPolicy(const std::string& name, ShedPolicy* out) {
  if (name == "newest") {
    *out = ShedPolicy::kRejectNewest;
  } else if (name == "largest") {
    *out = ShedPolicy::kRejectLargestWork;
  } else if (name == "tier") {
    *out = ShedPolicy::kPriorityTier;
  } else {
    return false;
  }
  return true;
}

const char* BackpressureLevelName(BackpressureLevel level) {
  switch (level) {
    case BackpressureLevel::kNone:
      return "none";
    case BackpressureLevel::kThrottle:
      return "throttle";
    case BackpressureLevel::kDegrade:
      return "degrade";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionConfig& config) : config_(config) {
  CHECK_GE(config_.max_pending, 1);
  CHECK_GT(config_.utilization_bound, 0.0);
  CHECK_GT(config_.default_slo, 0.0);
  CHECK_GE(config_.starvation_guard, 0);
  CHECK_GT(config_.max_throttle_factor, 0.0);
  CHECK_LE(config_.throttle_start, config_.degrade_start);
}

int AdmissionController::FindPending(JobId id) const {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].id == id) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int AdmissionController::PickVictim(const PendingEntry& incoming) const {
  switch (config_.shed_policy) {
    case ShedPolicy::kRejectNewest:
      return -1;
    case ShedPolicy::kRejectLargestWork: {
      // Shed the largest expected work among pending and incoming; the
      // incoming job loses ties (evicting is strictly more disruptive).
      int victim = -1;
      double largest = incoming.expected_seconds;
      for (size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].expected_seconds > largest) {
          largest = pending_[i].expected_seconds;
          victim = static_cast<int>(i);
        }
      }
      return victim;
    }
    case ShedPolicy::kPriorityTier: {
      // Shed the lowest tier (largest tier number), newest first. Pending
      // jobs that survived `starvation_guard` shed rounds are protected, so
      // a steady high-tier stream cannot starve the low tiers forever.
      int victim = -1;
      int victim_tier = incoming.tier;
      double victim_submit = incoming.submit_time;
      for (size_t i = 0; i < pending_.size(); ++i) {
        const PendingEntry& e = pending_[i];
        if (e.shed_rounds_survived >= config_.starvation_guard) {
          continue;  // Protected.
        }
        if (e.tier > victim_tier ||
            (e.tier == victim_tier && e.submit_time > victim_submit)) {
          victim = static_cast<int>(i);
          victim_tier = e.tier;
          victim_submit = e.submit_time;
        }
      }
      return victim;
    }
  }
  return -1;
}

AdmissionController::Decision AdmissionController::OnSubmit(const JobInfo& info,
                                                            double now) {
  MutexLock lock(mu_);
  ++c_.submitted;
  PendingEntry entry;
  entry.id = info.id;
  entry.tier = info.tier;
  entry.expected_seconds = info.expected_seconds;
  const double slo = info.slo > 0.0 ? info.slo : config_.default_slo;
  entry.u = info.expected_seconds / slo;
  entry.submit_time = now;

  Decision decision;
  if (entry.u > config_.utilization_bound) {
    // Even an otherwise-empty cluster could not meet this job's SLO; reject
    // immediately rather than wasting queue space on it.
    ++c_.shed;
    ++c_.slo_rejects;
    decision.reason = "slo-unattainable";
    return decision;
  }
  if (static_cast<int>(pending_.size()) < config_.max_pending) {
    pending_.push_back(entry);
    ++c_.accepted;
    c_.pending_now = static_cast<int>(pending_.size());
    c_.max_pending_depth = std::max(c_.max_pending_depth, c_.pending_now);
    decision.accepted = true;
    return decision;
  }

  // Queue full: one job — chosen by the shed policy — must go.
  const int victim = PickVictim(entry);
  for (PendingEntry& e : pending_) {
    ++e.shed_rounds_survived;
  }
  if (victim < 0) {
    ++c_.shed;
    decision.reason = "queue-full";
    return decision;
  }
  decision.evicted = pending_[static_cast<size_t>(victim)].id;
  pending_.erase(pending_.begin() + victim);
  entry.shed_rounds_survived = 0;
  pending_.push_back(entry);
  ++c_.accepted;
  ++c_.shed;
  ++c_.evictions;
  c_.pending_now = static_cast<int>(pending_.size());
  decision.accepted = true;
  decision.reason = "evicted";
  return decision;
}

AdmissionController::Gate AdmissionController::GateActivation(JobId id, double now,
                                                              bool has_competing_work) {
  MutexLock lock(mu_);
  const int idx = FindPending(id);
  CHECK_GE(idx, 0) << "activation gate queried for a job not pending admission";
  const PendingEntry& entry = pending_[static_cast<size_t>(idx)];
  if (level_ >= BackpressureLevel::kDegrade && entry.tier > 0 && has_competing_work &&
      now - entry.submit_time < config_.defer_age_cap) {
    ++c_.deferrals;
    return Gate::kDeferTier;
  }
  if (active_u_ + entry.u > config_.utilization_bound) {
    return Gate::kBlockedUtilization;
  }
  return Gate::kAdmit;
}

void AdmissionController::OnActivated(JobId id, double now) {
  MutexLock lock(mu_);
  const int idx = FindPending(id);
  CHECK_GE(idx, 0) << "activated a job not pending admission";
  const PendingEntry entry = pending_[static_cast<size_t>(idx)];
  pending_.erase(pending_.begin() + idx);
  active_.push_back(ActiveEntry{entry.id, entry.u});
  active_u_ += entry.u;
  ++c_.admitted;
  c_.pending_now = static_cast<int>(pending_.size());
  const double latency = std::max(0.0, now - entry.submit_time);
  c_.total_admission_latency += latency;
  c_.admission_latency_ewma = 0.8 * c_.admission_latency_ewma + 0.2 * latency;
}

void AdmissionController::OnJobFinished(JobId id) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].id == id) {
      active_u_ = std::max(0.0, active_u_ - active_[i].u);
      active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

bool AdmissionController::UpdateBackpressure([[maybe_unused]] double now,
                                             double avg_headroom) {
  MutexLock lock(mu_);
  last_headroom_ = avg_headroom;
  const double ratio = pending_ratio();
  int level = static_cast<int>(BackpressureLevel::kNone);
  if (ratio >= config_.degrade_start) {
    level = static_cast<int>(BackpressureLevel::kDegrade);
  } else if (ratio >= config_.throttle_start) {
    level = static_cast<int>(BackpressureLevel::kThrottle);
  }
  // A saturated cluster (no D_r headroom) or an admission latency that eats
  // into the SLO budget escalates one step even before the queue fills.
  const bool saturated = avg_headroom < config_.headroom_floor && !pending_.empty();
  const bool latency_high =
      c_.admission_latency_ewma > config_.latency_fraction * config_.default_slo;
  if ((saturated || latency_high) && level < static_cast<int>(BackpressureLevel::kDegrade)) {
    ++level;
  }
  const auto new_level = static_cast<BackpressureLevel>(level);
  if (new_level == level_) {
    return false;
  }
  level_ = new_level;
  c_.level = new_level;
  ++c_.level_changes;
  return true;
}

double AdmissionController::throttle_factor() const {
  MutexLock lock(mu_);
  if (level_ == BackpressureLevel::kNone) {
    return 1.0;
  }
  if (level_ >= BackpressureLevel::kDegrade) {
    return config_.max_throttle_factor;
  }
  // Interpolate between 1 and the max over the throttle band of the fill
  // ratio, so backoff strengthens smoothly as the queue fills.
  const double span = std::max(1e-9, config_.degrade_start - config_.throttle_start);
  const double x =
      std::clamp((pending_ratio() - config_.throttle_start) / span, 0.0, 1.0);
  return 1.0 + (config_.max_throttle_factor - 1.0) * x;
}

}  // namespace ursa
