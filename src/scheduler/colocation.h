// Hugo-style interference-aware co-location (DESIGN.md section 13).
//
// Hugo (PAPERS.md) groups jobs by how well they share machines and learns
// the grouping online from observed interference. This module is the
// monotask-granularity analogue: the scheduler reports, every tick, which
// stages are resident on each worker together with the worker's observed
// contention (its StepTracker-backed APT backlog normalized by EPT), and
// the learner maintains an exponential moving average of that contention
// per unordered stage pair. Stage identity is the (job class, stage name)
// string pair interned to a dense integer key, so the signal transfers
// across recurring jobs of the same class — the paper's recurring-workload
// assumption.
//
// Complementarity(a, b) maps the learned contention EMA into [-1, 1]
// (+1 = the pair co-ran only on idle workers, -1 = only on saturated ones).
// HugoScorePolicy decorates a base placement score with
// weight * mean positive complementarity between the placed stage and the
// worker's residents, steering tasks toward workers running stages they
// have co-run with at low contention. The bonus is attraction-only (never
// negative) so it cannot repel tasks from busy workers and undo Algorithm
// 1's packing. The decorated score depends on worker identity, so the
// policy is not bucketable and takes the linear scan.
//
// Determinism: all state lives in ordered std::map keyed by interned
// integers; updates arrive in the scheduler's deterministic tick order, so
// same-seed runs learn bit-identical scores (the policy determinism tests
// pin this down).
#ifndef SRC_SCHEDULER_COLOCATION_H_
#define SRC_SCHEDULER_COLOCATION_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/scheduler/placement_policy.h"

namespace ursa {

struct ColocationConfig {
  bool enabled = false;
  // Scale of the complementarity bonus added to the base placement score.
  // The bonus lands in [0, weight] (attraction-only, see PlacementBonus);
  // the default matches Algorithm 1's own 1e-4 tie-break term, so
  // co-location decides between workers Algorithm 1 scores (near-)equal
  // instead of overriding its demand matching — larger weights herd tasks
  // onto learned-complementary workers and measurably hurt JCT
  // (bench_policy_compare sweeps this).
  double weight = 1e-4;
  // EMA step for contention samples; higher adapts faster, lower smooths.
  double ema_alpha = 0.2;
  // Long-pole/packing threshold reused when colocation composes with other
  // policies is configured there; this struct stays purely about learning.
};

class ColocationLearner {
 public:
  explicit ColocationLearner(const ColocationConfig& config) : config_(config) {}

  // Interns the (job class, stage name) identity to a dense key. Classes
  // and stage names recur across jobs of the same workload, which is what
  // lets the online signal accumulate.
  int InternKey(const std::string& klass, const std::string& stage_name);
  // Key for an already-interned identity, -1 if never seen (const lookups
  // for tests).
  int FindKey(const std::string& klass, const std::string& stage_name) const;

  // One scheduler tick's observation: residents[w] holds the interned stage
  // keys resident on worker w (sorted ascending by the caller) and
  // contention[w] the worker's normalized backlog in [0, 1]. Every unordered
  // pair of distinct co-resident keys absorbs the worker's contention sample
  // into its EMA; workers with fewer than two residents carry no pair signal.
  void ObserveTick(const std::vector<std::vector<int>>& residents,
                   const std::vector<double>& contention);

  // Learned complementarity of a stage pair in [-1, 1]; 0 when the pair has
  // never co-resided. Symmetric by construction (pairs are keyed ordered).
  double Complementarity(int a, int b) const;

  // Mean *positive* complementarity between `key` and the resident keys of
  // one worker, in [0, 1]; 0 when the worker is empty. This is the bonus
  // HugoScorePolicy applies (attraction-only, see the .cc rationale).
  double PlacementBonus(int key, const std::vector<int>& residents_on_worker) const;

  size_t num_keys() const { return key_index_.size(); }
  size_t num_pairs() const { return pair_contention_.size(); }
  int64_t observations() const { return observations_; }
  const std::map<std::pair<int, int>, double>& pair_contention() const {
    return pair_contention_;
  }

 private:
  ColocationConfig config_;
  std::map<std::pair<std::string, std::string>, int> key_index_;
  // EMA of worker contention observed while the (ordered) pair co-resided.
  std::map<std::pair<int, int>, double> pair_contention_;
  int64_t observations_ = 0;
};

// Decorates a base placement score with the learned co-location bonus.
class HugoScorePolicy : public PlacementScorePolicy {
 public:
  HugoScorePolicy(std::unique_ptr<PlacementScorePolicy> base,
                  const ColocationLearner* learner, double weight)
      : base_(std::move(base)), learner_(learner), weight_(weight) {}

  const char* name() const override { return "hugo"; }
  // The bonus depends on which worker is scored, so one bucket-wide score
  // is invalid: force the linear scan.
  bool bucketable() const override { return false; }
  double UpperBound(const WorkerLoad& load) const override {
    return base_->UpperBound(load) + weight_;  // Bonus is in [0, +w].
  }
  bool Score(const TaskUsage& usage, const WorkerLoad& load, WorkerId worker, double ept,
             const int headroom[kNumMonotaskResources], bool consider_network,
             const ScoreContext& ctx, double* out_score) const override;

  const PlacementScorePolicy* base() const { return base_.get(); }

 private:
  std::unique_ptr<PlacementScorePolicy> base_;
  const ColocationLearner* learner_;
  double weight_;
};

}  // namespace ursa

#endif  // SRC_SCHEDULER_COLOCATION_H_
