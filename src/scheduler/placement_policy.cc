#include "src/scheduler/placement_policy.h"

#include <algorithm>

namespace ursa {

double Algorithm1ScorePolicy::UpperBound(const WorkerLoad& load) const {
  // Each resource term is d_r * inc <= d_r^2, the memory term is
  // d_mem * inc_mem <= d_mem^2, and the tie term is <= 1e-4.
  double ub = 1e-4;
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    ub += load.d[r] * load.d[r];
  }
  const double d_mem = load.d[static_cast<size_t>(ResourceDim::kMemory)];
  ub += d_mem * d_mem;
  return ub;
}

bool Algorithm1ScorePolicy::Score(const TaskUsage& usage, const WorkerLoad& load,
                                  [[maybe_unused]] WorkerId worker, double ept,
                                  const int headroom[kNumMonotaskResources],
                                  bool consider_network,
                                  [[maybe_unused]] const ScoreContext& ctx,
                                  double* out_score) const {
  if (usage.memory > load.free_memory) {
    return false;
  }
  double score = 0.0;
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    if (!consider_network && static_cast<ResourceType>(r) == ResourceType::kNetwork) {
      continue;
    }
    if (usage.bytes[r] <= 0.0) {
      continue;
    }
    double inc = usage.bytes[r] / std::max(load.rate[r], 1.0) / ept;
    // The D_r == 0 skip rule (section 4.2.2) only helps while some worker
    // still has headroom in r to steer toward; when the whole cluster is
    // backlogged on r, refusing every worker would merely idle the other
    // resources, so the rule is suspended for that dimension.
    if (load.d[r] <= 0.0 && headroom[r] > 0) {
      return false;  // Assigning t here would block on resource r.
    }
    inc = std::min(inc, load.d[r]);
    score += load.d[r] * inc;
  }
  // Memory dimension, normalized by capacity so all dims are O(1).
  const double d_mem = load.d[static_cast<size_t>(ResourceDim::kMemory)];
  if (d_mem <= 0.0) {
    return false;
  }
  const double inc_mem = std::min(usage.memory / load.memory_capacity, d_mem);
  score += d_mem * inc_mem;
  // Saturation tie-breaker: among equally (un)attractive workers, prefer
  // the one whose queues for the task's resources are shortest.
  double backlog = 0.0;
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    if (usage.bytes[r] > 0.0) {
      backlog += load.apt[r];
    }
  }
  score += 1e-4 / (1.0 + backlog);
  *out_score = score;
  return true;
}

double TetrisDotScorePolicy::UpperBound(const WorkerLoad& load) const {
  // Every demand factor is clamped to [0, 1], so each term is <= d_r and
  // the tie term is <= 1e-4.
  double ub = 1e-4;
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    ub += load.d[r];
  }
  ub += load.d[static_cast<size_t>(ResourceDim::kMemory)];
  return ub;
}

bool TetrisDotScorePolicy::Score(const TaskUsage& usage, const WorkerLoad& load,
                                 [[maybe_unused]] WorkerId worker, double ept,
                                 const int headroom[kNumMonotaskResources],
                                 bool consider_network,
                                 [[maybe_unused]] const ScoreContext& ctx,
                                 double* out_score) const {
  if (usage.memory > load.free_memory) {
    return false;
  }
  double score = 0.0;
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    if (!consider_network && static_cast<ResourceType>(r) == ResourceType::kNetwork) {
      continue;
    }
    if (usage.bytes[r] <= 0.0) {
      continue;
    }
    // Same liveness suspension as Algorithm 1: veto a drained dimension only
    // while some worker still has headroom in it.
    if (load.d[r] <= 0.0 && headroom[r] > 0) {
      return false;
    }
    // Tetris alignment: demand is the EPT-normalized service share, not
    // clamped to the worker's remaining headroom — a big task keeps pulling
    // toward big-headroom workers instead of flattening out at d_r.
    const double demand = std::min(1.0, usage.bytes[r] / std::max(load.rate[r], 1.0) / ept);
    score += load.d[r] * demand;
  }
  const double d_mem = load.d[static_cast<size_t>(ResourceDim::kMemory)];
  if (d_mem <= 0.0) {
    return false;
  }
  score += d_mem * std::min(1.0, usage.memory / load.memory_capacity);
  double backlog = 0.0;
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    if (usage.bytes[r] > 0.0) {
      backlog += load.apt[r];
    }
  }
  score += 1e-4 / (1.0 + backlog);
  *out_score = score;
  return true;
}

const std::vector<ScorePolicyInfo>& ScorePolicyRegistry() {
  static const std::vector<ScorePolicyInfo> kRegistry = {
      {PlacementScoreKind::kAlgorithm1, "alg1",
       "Ursa Algorithm-1 load matching (section 4.2.2)"},
      {PlacementScoreKind::kTetrisDot, "tetris",
       "Tetris-style headroom/demand dot-product packing"},
  };
  return kRegistry;
}

bool ParsePlacementScoreKind(const std::string& flag, PlacementScoreKind* out) {
  for (const ScorePolicyInfo& info : ScorePolicyRegistry()) {
    if (flag == info.flag) {
      *out = info.kind;
      return true;
    }
  }
  return false;
}

std::unique_ptr<PlacementScorePolicy> MakeScorePolicy(PlacementScoreKind kind) {
  switch (kind) {
    case PlacementScoreKind::kAlgorithm1:
      return std::make_unique<Algorithm1ScorePolicy>();
    case PlacementScoreKind::kTetrisDot:
      return std::make_unique<TetrisDotScorePolicy>();
  }
  return std::make_unique<Algorithm1ScorePolicy>();
}

}  // namespace ursa
