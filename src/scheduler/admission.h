// SLO-aware admission control, backpressure and graceful load shedding for
// open-loop serving (DESIGN.md section 11).
//
// The controller sits in front of UrsaScheduler's memory-based admission: a
// submitted job first passes through a *bounded* pending queue. When the
// queue is full, one job — the incoming one or a queued one, chosen by the
// configured shed policy — is shed instead of letting the admitted-job set
// grow without bound. Jobs move from pending to active through a
// utilization-bound gate in the spirit of `checkUvalue` from the real-time
// containers literature: with u_j = (expected busiest-resource service
// seconds of job j) / SLO_j, the sum of u_j over active jobs plus the
// candidate must stay below `utilization_bound`, so every admitted job still
// has a schedulable path to its deadline.
//
// Backpressure is derived from three signals — pending-queue fill ratio,
// cluster-wide D_r headroom, and the admission-latency EWMA — and drives a
// graceful-degradation ladder instead of collapse:
//   kNone     -> normal operation;
//   kThrottle -> the open-loop driver stretches inter-arrival gaps by
//                throttle_factor() (client backoff);
//   kDegrade  -> additionally, speculation is suspended and low-tier
//                admissions are deferred (with a starvation-age override).
//
// Thread safety: internally synchronized. AdmissionController::mu_ sits
// directly below UrsaScheduler::state_mu_ in the lock hierarchy
// (src/common/mutex.h); no method calls foreign code while holding it.
// AdmissionCounters is the plain copyable snapshot readers get.
#ifndef SRC_SCHEDULER_ADMISSION_H_
#define SRC_SCHEDULER_ADMISSION_H_

#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/dag/types.h"

namespace ursa {

// What gets shed when the bounded pending queue overflows.
enum class ShedPolicy : int {
  kRejectNewest = 0,        // Shed the incoming job.
  kRejectLargestWork = 1,   // Shed the largest-expected-work job (pending or incoming).
  kPriorityTier = 2,        // Shed the lowest tier, newest first, with a starvation guard.
};
const char* ShedPolicyName(ShedPolicy policy);
// Returns false when `name` is not one of newest|largest|tier.
bool ParseShedPolicy(const std::string& name, ShedPolicy* out);

enum class BackpressureLevel : int {
  kNone = 0,
  kThrottle = 1,  // Arrival throttling only.
  kDegrade = 2,   // + suspend speculation, defer low-tier admissions.
};
const char* BackpressureLevelName(BackpressureLevel level);

struct AdmissionConfig {
  bool enabled = false;
  // Bound on the pending (accepted-but-not-active) queue depth.
  int max_pending = 64;
  ShedPolicy shed_policy = ShedPolicy::kPriorityTier;
  // checkUvalue-style bound on the sum of u_j = service_seconds / SLO over
  // active jobs; a candidate whose admission would exceed it stays pending.
  double utilization_bound = 4.0;
  // SLO applied to jobs that declare none (JobSpec::slo_seconds == 0).
  double default_slo = 300.0;
  // A pending job that survived this many shed rounds becomes protected
  // from eviction (priority-tier policy's starvation guard).
  int starvation_guard = 4;
  // A deferred low-tier job older than this is admitted despite degradation
  // (the deferral side of the starvation guard).
  double defer_age_cap = 60.0;
  // Backpressure thresholds on the pending-queue fill ratio.
  double throttle_start = 0.5;
  double degrade_start = 0.75;
  // Arrival gaps are stretched up to this factor under backpressure.
  double max_throttle_factor = 4.0;
  // Mean per-resource D_r headroom below which the cluster counts as
  // saturated (bumps the backpressure level by one).
  double headroom_floor = 0.05;
  // Admission-latency EWMA above this fraction of default_slo also bumps
  // the level (jobs are waiting too long to start to meet their SLOs).
  double latency_fraction = 0.5;
};

// Copyable snapshot of the controller's counters. Identity maintained:
//   submitted == admitted + shed + pending_now.
struct AdmissionCounters {
  int64_t submitted = 0;       // Jobs offered to the controller.
  int64_t accepted = 0;        // Entered the pending queue.
  int64_t admitted = 0;        // Moved pending -> active.
  int64_t shed = 0;            // Rejected at submit or evicted from pending.
  int64_t slo_rejects = 0;     // Shed because u_j alone exceeds the bound.
  int64_t evictions = 0;       // Shed from the pending queue (subset of shed).
  int64_t deferrals = 0;       // Low-tier activation deferrals while degraded.
  int64_t level_changes = 0;   // Backpressure level transitions.
  int pending_now = 0;
  int max_pending_depth = 0;   // High-water mark of the pending queue.
  double total_admission_latency = 0.0;  // Sum over admitted jobs (seconds).
  double admission_latency_ewma = 0.0;
  BackpressureLevel level = BackpressureLevel::kNone;
  double avg_admission_latency() const {
    return admitted > 0 ? total_admission_latency / static_cast<double>(admitted) : 0.0;
  }
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  struct JobInfo {
    JobId id = kInvalidId;
    int tier = 0;                   // 0 = highest priority.
    double expected_seconds = 0.0;  // Busiest-resource service seconds.
    double slo = 0.0;               // 0 = use config default.
  };

  struct Decision {
    bool accepted = false;        // Entered the pending queue.
    JobId evicted = kInvalidId;   // Pending job shed to make room.
    const char* reason = "";      // "", "queue-full", "slo-unattainable", "evicted".
  };

  // Submission gate: hopeless-SLO rejection and the bounded-queue shed
  // policies. On eviction the caller must also shed `evicted` on its side
  // (record, waiting list, trace).
  Decision OnSubmit(const JobInfo& info, double now) EXCLUDES(mu_);

  // Activation gate for one pending job. `has_competing_work`: a
  // higher-priority (numerically smaller tier) job is also waiting, so
  // deferring this one frees its slot for that job; without it the tier
  // deferral is suppressed so deferral never idles or deadlocks the cluster.
  enum class Gate : int { kAdmit = 0, kDeferTier = 1, kBlockedUtilization = 2 };
  Gate GateActivation(JobId id, double now, bool has_competing_work) EXCLUDES(mu_);

  // The scheduler committed the pending job to the active set.
  void OnActivated(JobId id, double now) EXCLUDES(mu_);

  // An active job finished; its utilization share is released.
  void OnJobFinished(JobId id) EXCLUDES(mu_);

  // Tick-time refresh of the backpressure level from the queue fill ratio,
  // the cluster-wide mean D_r headroom and the admission-latency EWMA.
  // Returns true when the level changed.
  bool UpdateBackpressure(double now, double avg_headroom) EXCLUDES(mu_);

  BackpressureLevel level() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return level_;
  }
  // >= 1; the open-loop driver multiplies inter-arrival gaps by this.
  double throttle_factor() const EXCLUDES(mu_);

  AdmissionCounters counters() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return c_;
  }

  const AdmissionConfig& config() const { return config_; }

 private:
  struct PendingEntry {
    JobId id = kInvalidId;
    int tier = 0;
    double u = 0.0;              // expected_seconds / slo.
    double expected_seconds = 0.0;
    double submit_time = 0.0;
    int shed_rounds_survived = 0;
  };
  struct ActiveEntry {
    JobId id = kInvalidId;
    double u = 0.0;
  };

  // Index into pending_, or -1.
  int FindPending(JobId id) const REQUIRES(mu_);
  // Victim among pending + incoming for the configured policy; returns -1
  // to shed the incoming job.
  int PickVictim(const PendingEntry& incoming) const REQUIRES(mu_);
  double pending_ratio() const REQUIRES(mu_) {
    return config_.max_pending > 0
               ? static_cast<double>(pending_.size()) / config_.max_pending
               : 0.0;
  }

  const AdmissionConfig config_;

  mutable Mutex mu_;
  // Arrival order; bounded by config_.max_pending.
  std::vector<PendingEntry> pending_ GUARDED_BY(mu_);
  // Active jobs' utilization shares (vector: active sets are small and
  // ordered iteration keeps the controller deterministic).
  std::vector<ActiveEntry> active_ GUARDED_BY(mu_);
  double active_u_ GUARDED_BY(mu_) = 0.0;
  BackpressureLevel level_ GUARDED_BY(mu_) = BackpressureLevel::kNone;
  double last_headroom_ GUARDED_BY(mu_) = 1.0;
  AdmissionCounters c_ GUARDED_BY(mu_);
};

}  // namespace ursa

#endif  // SRC_SCHEDULER_ADMISSION_H_
