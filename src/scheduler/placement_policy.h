// Pluggable worker-scoring policies for monotask placement (DESIGN.md
// section 13).
//
// UrsaScheduler's BestWorker loop is policy-agnostic: given a task's usage
// estimate and a worker's load snapshot it asks the active
// PlacementScorePolicy for a score (or a veto), and — when the policy is
// bucketable — for an exact per-load score upper bound that drives the
// PR-8 bucketed scan. Policies shipped here:
//
//   Algorithm1   Ursa's load-matching score (section 4.2.2): the paper's
//                D_r(w) * Inc_r(t, w) dot product with the memory dimension
//                and the saturation tie-breaker. Bit-identical to the
//                pre-framework hardcoded scorer.
//   TetrisDot    Tetris-style alignment packing [17] as a *score* inside
//                Ursa's fine-grained placement: the dot product of the
//                worker's remaining headroom D_r and the task's normalized
//                demand, without Algorithm 1's Inc clamp. Unlike the
//                src/baselines PackingState contenders it reserves nothing
//                at peak — monotask-level release still applies — so it
//                isolates the scoring rule from the reservation model.
//
// The Hugo-style co-location policy lives in src/scheduler/colocation.h; it
// decorates a base policy with a learned stage-pair complementarity bonus
// and is not bucketable (its score depends on worker identity).
//
// Contract (enforced by the policy property/determinism tests):
//   - Score() must be a pure function of its arguments — no clocks, no
//     randomness, no mutable state — so same-seed runs stay bit-identical.
//   - UpperBound(load) must bound every Score() the policy can return for
//     that exact load, and must be monotone under ApplyToLoad (loads only
//     worsen within a tick), or the bucketed scan's early cutoff would skip
//     the true argmax. Non-bucketable policies fall back to the linear scan.
//   - A false return must imply the worker is infeasible for the task
//     (memory, or a needed dimension exhausted while headroom exists
//     elsewhere); the scan's headroom masks assume it.
#ifndef SRC_SCHEDULER_PLACEMENT_POLICY_H_
#define SRC_SCHEDULER_PLACEMENT_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dag/types.h"
#include "src/exec/estimator.h"

namespace ursa {

class ColocationLearner;

// Per-worker load snapshot scored by the policies (built by the scheduler
// from EPT and the worker's StepTracker-backed APT_r; DESIGN.md section 12).
struct WorkerLoad {
  double d[kNumResourceDims] = {0.0, 0.0, 0.0, 0.0};
  // Raw APT_r values; used to break ties when every D_r is exhausted
  // (placements then go to the least-loaded worker instead of piling up).
  double apt[kNumMonotaskResources] = {0.0, 0.0, 0.0};
  double free_memory = 0.0;
  double memory_capacity = 0.0;
  double rate[kNumMonotaskResources] = {0.0, 0.0, 0.0};
};

enum class PlacementScoreKind : int {
  kAlgorithm1 = 0,  // Ursa's Algorithm-1 load-matching score (default).
  kTetrisDot = 1,   // Tetris-style headroom/demand dot product.
};

// Side information for one Score() call that is not part of the load: the
// placed stage's interned co-location key and the per-worker resident-key
// snapshot (null unless co-location learning is on).
struct ScoreContext {
  int stage_key = -1;  // ColocationLearner key of the stage being placed.
  const std::vector<std::vector<int>>* residents = nullptr;  // Per worker.
};

class PlacementScorePolicy {
 public:
  virtual ~PlacementScorePolicy() = default;
  virtual const char* name() const = 0;
  // Whether one Score() call is valid for every worker sharing a
  // bit-identical load (the bucketed-scan requirement). Policies whose score
  // depends on worker identity (co-location) must return false and take the
  // linear scan.
  virtual bool bucketable() const { return true; }
  // Exact upper bound on any score this policy can assign a worker with
  // this load (see contract above). Only consulted for bucketable policies.
  virtual double UpperBound(const WorkerLoad& load) const = 0;
  // Scores placing a task with `usage` on `worker` carrying `load`.
  // `headroom[r]` counts workers in the current view with d_r > 0 (the
  // cluster-wide liveness suspension of the D_r == 0 skip rule). Returns
  // false when the worker must not receive the task.
  virtual bool Score(const TaskUsage& usage, const WorkerLoad& load, WorkerId worker,
                     double ept, const int headroom[kNumMonotaskResources],
                     bool consider_network, const ScoreContext& ctx,
                     double* out_score) const = 0;
};

// Ursa's Algorithm-1 score (section 4.2.2). Bit-identical to the scorer
// previously hardcoded in UrsaScheduler::ScoreWorker/LoadUb.
class Algorithm1ScorePolicy : public PlacementScorePolicy {
 public:
  const char* name() const override { return "alg1"; }
  double UpperBound(const WorkerLoad& load) const override;
  bool Score(const TaskUsage& usage, const WorkerLoad& load, WorkerId worker, double ept,
             const int headroom[kNumMonotaskResources], bool consider_network,
             const ScoreContext& ctx, double* out_score) const override;
};

// Tetris-style dot-product packing score: sum_r D_r(w) * demand_r(t) over
// the monotask resources plus the memory dimension, demand normalized to
// [0, 1] per dimension. Keeps Algorithm 1's feasibility rules (memory hard
// check, D_r == 0 veto while headroom exists elsewhere) and tie-breaker so
// it composes with the bucketed scan and never strands a saturated cluster.
class TetrisDotScorePolicy : public PlacementScorePolicy {
 public:
  const char* name() const override { return "tetris"; }
  double UpperBound(const WorkerLoad& load) const override;
  bool Score(const TaskUsage& usage, const WorkerLoad& load, WorkerId worker, double ept,
             const int headroom[kNumMonotaskResources], bool consider_network,
             const ScoreContext& ctx, double* out_score) const override;
};

inline const char* PlacementScoreKindName(PlacementScoreKind kind) {
  return kind == PlacementScoreKind::kAlgorithm1 ? "alg1" : "tetris";
}

struct ScorePolicyInfo {
  PlacementScoreKind kind;
  const char* flag;  // CLI spelling (--score=<flag>).
  const char* description;
};

// All registered worker-score policies, in enum order; drives CLI parsing
// and the bench sweeps so new policies appear everywhere automatically.
const std::vector<ScorePolicyInfo>& ScorePolicyRegistry();
bool ParsePlacementScoreKind(const std::string& flag, PlacementScoreKind* out);

std::unique_ptr<PlacementScorePolicy> MakeScorePolicy(PlacementScoreKind kind);

}  // namespace ursa

#endif  // SRC_SCHEDULER_PLACEMENT_POLICY_H_
