#include "src/baselines/bsp_runtime.h"

#include <memory>

#include "src/common/logging.h"

namespace ursa {

BspRuntime::BspRuntime(Simulator* sim, Cluster* cluster, const BspJobConfig& config,
                       std::function<void()> on_finish)
    : sim_(sim), cluster_(cluster), config_(config), on_finish_(std::move(on_finish)) {
  CHECK_GT(config_.iterations, 0);
  CHECK_GT(config_.compute_bytes_per_worker, 0.0);
}

void BspRuntime::Run() {
  // The job owns the machines for its lifetime: all cores allocated, the
  // resident dataset pinned in memory.
  for (int w = 0; w < cluster_->size(); ++w) {
    Worker& worker = cluster_->worker(w);
    worker.AddCpuAllocated(worker.config().cores);
    CHECK(worker.TryAllocateMemory(config_.resident_memory_per_worker));
    worker.AddActualMemoryUse(config_.resident_memory_per_worker);
  }
  StartIteration(0);
}

void BspRuntime::StartIteration(int iteration) {
  if (iteration >= config_.iterations) {
    finish_time_ = sim_->Now();
    for (int w = 0; w < cluster_->size(); ++w) {
      Worker& worker = cluster_->worker(w);
      worker.AddCpuAllocated(-worker.config().cores);
      worker.ReleaseMemory(config_.resident_memory_per_worker);
      worker.AddActualMemoryUse(-config_.resident_memory_per_worker);
    }
    if (on_finish_) {
      on_finish_();
    }
    return;
  }
  // Compute phase: every worker crunches with compute_core_fraction of its
  // cores; BSP semantics mean all finish simultaneously.
  const WorkerConfig& wc = cluster_->config().worker;
  const double cores_used = wc.cores * config_.compute_core_fraction;
  const double duration =
      config_.compute_bytes_per_worker / (wc.cpu_byte_rate * cores_used);
  for (int w = 0; w < cluster_->size(); ++w) {
    cluster_->worker(w).AddCpuBusy(cores_used);
  }
  sim_->Schedule(duration, [this, iteration, cores_used] {
    for (int w = 0; w < cluster_->size(); ++w) {
      cluster_->worker(w).AddCpuBusy(-cores_used);
    }
    StartSync(iteration);
  });
}

void BspRuntime::StartSync(int iteration) {
  if (config_.sync_bytes_per_worker <= 0.0 || cluster_->size() < 2) {
    StartIteration(iteration + 1);
    return;
  }
  const int n = cluster_->size();
  const double per_peer = config_.sync_bytes_per_worker / (n - 1);
  auto remaining = std::make_shared<int>(n * (n - 1));
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) {
        continue;
      }
      cluster_->net().StartFlow(src, dst, per_peer, [this, iteration, remaining] {
        if (--*remaining == 0) {
          StartIteration(iteration + 1);
        }
      });
    }
  }
}

}  // namespace ursa
