// YARN-like centralized resource manager used by the executor-model
// baselines (Y+S, Y+T, Y+U in section 5).
//
// Jobs request fixed-size containers (cores + memory); the RM grants them at
// heartbeat granularity (default 1 s, matching the paper's configuration) in
// strict FIFO order across jobs. Containers hold their cores and memory
// until explicitly released, which is precisely the coarse-grained
// allocation the paper contrasts with Ursa. A CPU subscription ratio > 1
// lets the RM hand out more logical cores than physically exist (the
// over-subscription experiment of Table 5).
#ifndef SRC_BASELINES_CONTAINER_MANAGER_H_
#define SRC_BASELINES_CONTAINER_MANAGER_H_

#include <deque>
#include <functional>
#include <vector>

#include "src/exec/cluster.h"

namespace ursa {

struct ContainerManagerConfig {
  double heartbeat_interval = 1.0;
  double cpu_subscription_ratio = 1.0;
};

class ContainerManager {
 public:
  ContainerManager(Simulator* sim, Cluster* cluster, const ContainerManagerConfig& config);

  // Queues a FIFO request for `count` containers of (cores, memory_bytes).
  // `on_grant` fires once per granted container, at heartbeat boundaries.
  void RequestContainers(JobId job, int cores, double memory_bytes, int count,
                         std::function<void(WorkerId)> on_grant);

  // Drops any not-yet-granted containers of this job (dynamic allocation
  // downscale, or job completion).
  void CancelPending(JobId job);

  // Returns a container's resources to the pool.
  void ReleaseContainer(JobId job, WorkerId worker, int cores, double memory_bytes);

  double available_cores(WorkerId w) const {
    return core_capacity_ - used_cores_[static_cast<size_t>(w)];
  }
  int pending_requests() const;

 private:
  void EnsureHeartbeat();
  void Heartbeat();
  // Tries to grant one container; returns the worker or kInvalidId.
  WorkerId TryPlace(int cores, double memory_bytes);

  struct Pending {
    JobId job;
    int cores;
    double memory;
    int remaining;
    std::function<void(WorkerId)> on_grant;
  };

  Simulator* sim_;
  Cluster* cluster_;
  ContainerManagerConfig config_;
  double core_capacity_ = 0.0;  // Logical cores per worker (after ratio).
  std::vector<double> used_cores_;
  std::deque<Pending> queue_;
  bool heartbeat_scheduled_ = false;
};

}  // namespace ursa

#endif  // SRC_BASELINES_CONTAINER_MANAGER_H_
