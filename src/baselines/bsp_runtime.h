// Domain-specific BSP runtime modeling Petuum (ML) and Gemini (graph)
// executions for Figure 1a / 1c: the job owns the whole cluster and runs
// bulk-synchronous iterations - a compute phase using (nearly) all cores,
// then an all-to-all synchronization phase on the network - producing the
// regular alternation of high CPU and high network utilization that
// motivates Ursa's design.
#ifndef SRC_BASELINES_BSP_RUNTIME_H_
#define SRC_BASELINES_BSP_RUNTIME_H_

#include <functional>

#include "src/exec/cluster.h"

namespace ursa {

struct BspJobConfig {
  int iterations = 20;
  // CPU byte-equivalents each worker processes per iteration.
  double compute_bytes_per_worker = 0.0;
  // Bytes each worker sends (spread across all peers) per iteration.
  double sync_bytes_per_worker = 0.0;
  // Fraction of cores the compute phase keeps busy.
  double compute_core_fraction = 1.0;
  // Resident dataset size per worker (memory accounting).
  double resident_memory_per_worker = 0.0;
};

class BspRuntime {
 public:
  BspRuntime(Simulator* sim, Cluster* cluster, const BspJobConfig& config,
             std::function<void()> on_finish);

  // Starts the BSP execution; completion is signaled via on_finish.
  void Run();

  double finish_time() const { return finish_time_; }

 private:
  void StartIteration(int iteration);
  void StartSync(int iteration);

  Simulator* sim_;
  Cluster* cluster_;
  BspJobConfig config_;
  std::function<void()> on_finish_;
  double finish_time_ = -1.0;
};

}  // namespace ursa

#endif  // SRC_BASELINES_BSP_RUNTIME_H_
