#include "src/baselines/container_manager.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa {

ContainerManager::ContainerManager(Simulator* sim, Cluster* cluster,
                                   const ContainerManagerConfig& config)
    : sim_(sim), cluster_(cluster), config_(config) {
  CHECK_GT(config_.heartbeat_interval, 0.0);
  CHECK_GE(config_.cpu_subscription_ratio, 1.0);
  core_capacity_ =
      cluster->config().worker.cores * config_.cpu_subscription_ratio;
  used_cores_.assign(static_cast<size_t>(cluster->size()), 0.0);
}

void ContainerManager::RequestContainers(JobId job, int cores, double memory_bytes, int count,
                                         std::function<void(WorkerId)> on_grant) {
  CHECK_GT(cores, 0);
  CHECK_GT(memory_bytes, 0.0);
  if (count <= 0) {
    return;
  }
  queue_.push_back(Pending{job, cores, memory_bytes, count, std::move(on_grant)});
  EnsureHeartbeat();
}

void ContainerManager::CancelPending(JobId job) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->job == job) {
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void ContainerManager::ReleaseContainer([[maybe_unused]] JobId job, WorkerId worker, int cores,
                                        double memory_bytes) {
  used_cores_[static_cast<size_t>(worker)] -= cores;
  CHECK_GE(used_cores_[static_cast<size_t>(worker)], -1e-9);
  used_cores_[static_cast<size_t>(worker)] =
      std::max(0.0, used_cores_[static_cast<size_t>(worker)]);
  Worker& w = cluster_->worker(worker);
  w.ReleaseMemory(memory_bytes);
  w.AddCpuAllocated(-cores);
  EnsureHeartbeat();
}

int ContainerManager::pending_requests() const {
  int total = 0;
  for (const Pending& p : queue_) {
    total += p.remaining;
  }
  return total;
}

void ContainerManager::EnsureHeartbeat() {
  if (heartbeat_scheduled_ || queue_.empty()) {
    return;
  }
  heartbeat_scheduled_ = true;
  sim_->Schedule(config_.heartbeat_interval, [this] { Heartbeat(); });
}

WorkerId ContainerManager::TryPlace(int cores, double memory_bytes) {
  // Capacity-style: the worker with the most free logical cores that also
  // has the memory.
  WorkerId best = kInvalidId;
  double best_free = -1.0;
  for (int w = 0; w < cluster_->size(); ++w) {
    if (cluster_->worker(w).failed()) {
      continue;
    }
    const double free_cores = core_capacity_ - used_cores_[static_cast<size_t>(w)];
    if (free_cores + 1e-9 < cores) {
      continue;
    }
    if (cluster_->worker(w).free_memory() < memory_bytes) {
      continue;
    }
    if (free_cores > best_free) {
      best_free = free_cores;
      best = static_cast<WorkerId>(w);
    }
  }
  return best;
}

void ContainerManager::Heartbeat() {
  heartbeat_scheduled_ = false;
  // Strict FIFO: grant the head request's containers while they fit; stop at
  // the first container that cannot be placed (YARN FIFO policy).
  while (!queue_.empty()) {
    Pending& head = queue_.front();
    bool granted_one = false;
    while (head.remaining > 0) {
      const WorkerId w = TryPlace(head.cores, head.memory);
      if (w == kInvalidId) {
        break;
      }
      used_cores_[static_cast<size_t>(w)] += head.cores;
      Worker& worker = cluster_->worker(w);
      CHECK(worker.TryAllocateMemory(head.memory));
      worker.AddCpuAllocated(head.cores);
      --head.remaining;
      granted_one = true;
      head.on_grant(w);
    }
    if (head.remaining == 0) {
      queue_.pop_front();
      continue;
    }
    if (!granted_one) {
      break;  // Head blocked; wait for releases.
    }
    break;  // Head partially granted; keep FIFO position.
  }
  EnsureHeartbeat();
}

}  // namespace ursa
