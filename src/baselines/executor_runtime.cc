#include "src/baselines/executor_runtime.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "src/common/logging.h"
#include "src/exec/estimator.h"

namespace ursa {

// Per-job driver: the Spark/Tez "application" or the Y+U job instance.
class ExecutorModelScheduler::ExecutorJob {
 public:
  ExecutorJob(Simulator* sim, Cluster* cluster, ContainerManager* cm,
              const ExecutorModelConfig& config, Job* job, std::function<void()> on_finish)
      : sim_(sim),
        cluster_(cluster),
        cm_(cm),
        config_(config),
        job_(job),
        on_finish_(std::move(on_finish)) {
    tasks_.resize(plan().tasks().size());
    monotasks_.resize(plan().monotasks().size());
    stage_remaining_.resize(plan().stages().size());
    stage_times_.resize(plan().stages().size());
  }

  void Start() {
    sim_->Schedule(config_.job_startup_delay, [this] { Bootstrap(); });
  }

  double cpu_seconds() const { return cpu_seconds_; }
  const std::vector<std::vector<double>>& stage_times() const { return stage_times_; }
  bool finished() const { return finished_; }

 private:
  struct TaskRuntime {
    int remaining_async = 0;
    int remaining_sync = 0;
    int remaining_monotasks = 0;
    int executor = -1;  // Index into executors_.
    bool ready = false;
    bool done = false;
    double actual_memory = 0.0;
    TaskUsage usage;
  };
  struct MonotaskRuntime {
    int remaining_deps = 0;
    double input_bytes = 0.0;
  };
  struct Executor {
    WorkerId worker = kInvalidId;
    bool released = false;
    int running_tasks = 0;
    int busy_slots = 0;  // kTaskSlots.
    // kMonotaskQueues per-executor queues and occupancy.
    int busy_cores = 0;
    int active_net = 0;
    int active_disk = 0;
    std::multimap<double, MonotaskId> cpu_q;
    std::multimap<double, MonotaskId> net_q;
    std::multimap<double, MonotaskId> disk_q;
    EventId idle_event = kInvalidEventId;
  };

  const ExecutionPlan& plan() const { return job_->plan; }

  void Bootstrap() {
    for (const StageSpec& stage : plan().stages()) {
      stage_remaining_[static_cast<size_t>(stage.id)] = stage.num_tasks;
    }
    for (const MonotaskSpec& mt : plan().monotasks()) {
      monotasks_[static_cast<size_t>(mt.id)].remaining_deps =
          static_cast<int>(mt.intask_deps.size());
    }
    for (const TaskSpec& task : plan().tasks()) {
      TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
      rt.remaining_async = static_cast<int>(task.async_parents.size());
      rt.remaining_sync = static_cast<int>(task.sync_parent_stages.size());
      rt.remaining_monotasks = static_cast<int>(task.monotasks.size());
    }
    for (const TaskSpec& task : plan().tasks()) {
      const TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
      if (rt.remaining_async == 0 && rt.remaining_sync == 0) {
        MarkReady(task.id);
      }
    }
    UpdateExecutorTarget();
    AssignWork();
  }

  void MarkReady(TaskId t) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
    rt.ready = true;
    rt.usage = UsageEstimator::EstimateTask(*job_, t, cluster_->metadata(), 0.0);
    ready_.push_back(t);
  }

  int MaxStageWidth() const {
    int width = 1;
    for (const StageSpec& stage : plan().stages()) {
      width = std::max(width, stage.num_tasks);
    }
    return width;
  }

  void UpdateExecutorTarget() {
    if (finished_) {
      return;
    }
    int desired;
    if (config_.dynamic_allocation) {
      const int outstanding = static_cast<int>(ready_.size()) + running_tasks_;
      desired = static_cast<int>(
          std::ceil(static_cast<double>(outstanding) / config_.executor_cores));
    } else {
      // Container reuse (Tez-like): size the pool once for the widest stage.
      desired = static_cast<int>(std::ceil(static_cast<double>(MaxStageWidth()) /
                                           config_.executor_cores));
    }
    desired = std::min(desired, config_.max_executors_per_job);
    const int have = held_executors_ + pending_grants_;
    if (desired > have) {
      const int want = desired - have;
      pending_grants_ += want;
      cm_->RequestContainers(job_->id, config_.executor_cores,
                             config_.executor_memory_bytes, want,
                             [this](WorkerId w) { OnContainerGranted(w); });
    }
  }

  void OnContainerGranted(WorkerId worker) {
    --pending_grants_;
    if (finished_) {
      cm_->ReleaseContainer(job_->id, worker, config_.executor_cores,
                            config_.executor_memory_bytes);
      return;
    }
    ++held_executors_;
    Executor exec;
    exec.worker = worker;
    executors_.push_back(std::move(exec));
    AssignWork();
  }

  // Least-loaded live executor with capacity (mode-dependent); -1 if none.
  int PickExecutor() {
    int best = -1;
    double best_load = 0.0;
    for (size_t e = 0; e < executors_.size(); ++e) {
      Executor& exec = executors_[e];
      if (exec.released) {
        continue;
      }
      if (config_.mode == ExecutorMode::kTaskSlots &&
          exec.busy_slots >= config_.executor_cores) {
        continue;
      }
      // Monotask mode has no slot limit, but binding unbounded work to one
      // executor defeats dynamic allocation; keep a bounded local queue.
      if (config_.mode == ExecutorMode::kMonotaskQueues &&
          exec.running_tasks >= 2 * config_.executor_cores) {
        continue;
      }
      const double load = config_.mode == ExecutorMode::kTaskSlots
                              ? exec.busy_slots
                              : exec.running_tasks;
      if (best == -1 || load < best_load) {
        best = static_cast<int>(e);
        best_load = load;
      }
    }
    return best;
  }

  void AssignWork() {
    while (!ready_.empty()) {
      const int e = PickExecutor();
      if (e == -1) {
        break;
      }
      const TaskId t = ready_.front();
      ready_.pop_front();
      StartTask(t, e);
    }
    UpdateExecutorTarget();
    CheckIdleExecutors();
  }

  void StartTask(TaskId t, int exec_index) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
    Executor& exec = executors_[static_cast<size_t>(exec_index)];
    rt.executor = exec_index;
    rt.ready = false;
    ++exec.running_tasks;
    ++running_tasks_;
    CancelIdle(exec);
    rt.actual_memory =
        std::min(job_->spec.true_m2i * rt.usage.input_bytes, config_.executor_memory_bytes);
    cluster_->worker(exec.worker).AddActualMemoryUse(rt.actual_memory);
    if (config_.mode == ExecutorMode::kTaskSlots) {
      ++exec.busy_slots;
      // Launch overhead, then the task thread runs its monotasks
      // sequentially (plan order is topological).
      sim_->Schedule(config_.task_launch_overhead,
                     [this, t] { RunNextMonotaskInSlot(t, 0); });
    } else {
      // Y+U: stream root monotasks into the executor's per-resource queues.
      for (MonotaskId m : plan().task(t).monotasks) {
        if (monotasks_[static_cast<size_t>(m)].remaining_deps == 0) {
          EnqueueMonotask(m, exec_index);
        }
      }
    }
  }

  // ---- kTaskSlots path: sequential in-slot execution. ----
  void RunNextMonotaskInSlot(TaskId t, size_t mono_pos) {
    const TaskSpec& spec = plan().task(t);
    if (mono_pos >= spec.monotasks.size()) {
      FinishTask(t);
      return;
    }
    const MonotaskId m = spec.monotasks[mono_pos];
    ExecuteMonotask(m, tasks_[static_cast<size_t>(t)].executor,
                    [this, t, mono_pos] { RunNextMonotaskInSlot(t, mono_pos + 1); },
                    /*own_core=*/true);
  }

  // ---- kMonotaskQueues path. ----
  void EnqueueMonotask(MonotaskId m, int exec_index) {
    Executor& exec = executors_[static_cast<size_t>(exec_index)];
    MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
    mrt.input_bytes =
        UsageEstimator::MonotaskInputBytes(*job_, m, cluster_->metadata(), nullptr);
    const MonotaskSpec& mt = plan().monotask(m);
    switch (mt.type) {
      case ResourceType::kCpu:
        exec.cpu_q.emplace(-mrt.input_bytes, m);  // Largest first.
        break;
      case ResourceType::kNetwork:
        exec.net_q.emplace(mrt.input_bytes, m);  // Smallest first.
        break;
      case ResourceType::kDisk:
        exec.disk_q.emplace(mrt.input_bytes, m);
        break;
    }
    PumpExecutor(exec_index);
  }

  void PumpExecutor(int exec_index) {
    Executor& exec = executors_[static_cast<size_t>(exec_index)];
    while (exec.busy_cores < config_.executor_cores && !exec.cpu_q.empty()) {
      const MonotaskId m = exec.cpu_q.begin()->second;
      exec.cpu_q.erase(exec.cpu_q.begin());
      ++exec.busy_cores;
      ExecuteMonotask(m, exec_index,
                      [this, exec_index] {
                        --executors_[static_cast<size_t>(exec_index)].busy_cores;
                        PumpExecutor(exec_index);
                      },
                      /*own_core=*/false);
    }
    while (exec.active_net < config_.network_concurrency && !exec.net_q.empty()) {
      const MonotaskId m = exec.net_q.begin()->second;
      exec.net_q.erase(exec.net_q.begin());
      ++exec.active_net;
      ExecuteMonotask(m, exec_index,
                      [this, exec_index] {
                        --executors_[static_cast<size_t>(exec_index)].active_net;
                        PumpExecutor(exec_index);
                      },
                      /*own_core=*/false);
    }
    while (exec.active_disk < 1 && !exec.disk_q.empty()) {
      const MonotaskId m = exec.disk_q.begin()->second;
      exec.disk_q.erase(exec.disk_q.begin());
      ++exec.active_disk;
      ExecuteMonotask(m, exec_index,
                      [this, exec_index] {
                        --executors_[static_cast<size_t>(exec_index)].active_disk;
                        PumpExecutor(exec_index);
                      },
                      /*own_core=*/false);
    }
  }

  // ---- Shared monotask execution. ----
  // `own_core` marks the kTaskSlots mode where the slot's core is held for
  // the whole task; the core is *busy* only during CPU compute either way.
  void ExecuteMonotask(MonotaskId m, int exec_index, std::function<void()> done,
                       [[maybe_unused]] bool own_core) {
    MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
    const MonotaskSpec& mt = plan().monotask(m);
    const CollapsedOp& cop = plan().cop(mt.cop);
    Executor& exec = executors_[static_cast<size_t>(exec_index)];
    Worker& worker = cluster_->worker(exec.worker);
    if (mrt.input_bytes == 0.0) {
      mrt.input_bytes =
          UsageEstimator::MonotaskInputBytes(*job_, m, cluster_->metadata(), nullptr);
    }
    auto complete = [this, m, done = std::move(done)] {
      OnMonotaskComplete(m);
      done();
    };
    switch (mt.type) {
      case ResourceType::kCpu: {
        const double work = cop.cost.fixed_cpu_work + mrt.input_bytes * cop.cost.cpu_complexity;
        const double duration = work / worker.config().cpu_byte_rate;
        cpu_seconds_ += duration;
        worker.AddCpuBusy(1.0);
        sim_->Schedule(duration, [&worker, complete] {
          worker.AddCpuBusy(-1.0);
          complete();
        });
        break;
      }
      case ResourceType::kDisk: {
        const double duration = mrt.input_bytes / worker.config().disk_bytes_per_sec;
        worker.AddDiskBusy(1.0);
        sim_->Schedule(duration, [&worker, complete] {
          worker.AddDiskBusy(-1.0);
          complete();
        });
        break;
      }
      case ResourceType::kNetwork: {
        // Same receiver-side aggregation as Worker::Execute.
        const auto pulls = UsageEstimator::ResolvePulls(*job_, m, cluster_->metadata());
        double remote_bytes = 0.0;
        double local_bytes = 0.0;
        WorkerId biggest_src = exec.worker;
        double biggest = -1.0;
        for (const auto& pull : pulls) {
          if (pull.src == exec.worker) {
            local_bytes += pull.bytes;
          } else {
            remote_bytes += pull.bytes;
            if (pull.bytes > biggest) {
              biggest = pull.bytes;
              biggest_src = pull.src;
            }
          }
        }
        if (remote_bytes > 0.0) {
          cluster_->net().StartFlow(biggest_src, exec.worker, remote_bytes + local_bytes,
                                    complete);
        } else if (local_bytes > 0.0) {
          cluster_->net().StartFlow(exec.worker, exec.worker, local_bytes, complete);
        } else {
          sim_->Schedule(0.0, complete);
        }
        break;
      }
    }
  }

  void OnMonotaskComplete(MonotaskId m) {
    MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
    const MonotaskSpec& mt = plan().monotask(m);
    TaskRuntime& trt = tasks_[static_cast<size_t>(mt.task)];
    const Executor& exec = executors_[static_cast<size_t>(trt.executor)];
    for (const OutputRecord& rec :
         UsageEstimator::ComputeOutputs(*job_, m, mrt.input_bytes)) {
      cluster_->metadata().Put(job_->id, rec.data, rec.partition, rec.bytes, exec.worker);
    }
    if (config_.mode == ExecutorMode::kMonotaskQueues) {
      for (MonotaskId dep : mt.intask_dependents) {
        MonotaskRuntime& drt = monotasks_[static_cast<size_t>(dep)];
        if (--drt.remaining_deps == 0) {
          EnqueueMonotask(dep, trt.executor);
        }
      }
      if (--trt.remaining_monotasks == 0) {
        FinishTask(mt.task);
      }
    }
    // kTaskSlots: sequencing handled by RunNextMonotaskInSlot.
  }

  void FinishTask(TaskId t) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
    Executor& exec = executors_[static_cast<size_t>(rt.executor)];
    rt.done = true;
    --exec.running_tasks;
    --running_tasks_;
    if (config_.mode == ExecutorMode::kTaskSlots) {
      --exec.busy_slots;
    }
    cluster_->worker(exec.worker).AddActualMemoryUse(-rt.actual_memory);
    const TaskSpec& spec = plan().task(t);
    stage_times_[static_cast<size_t>(spec.stage)].push_back(sim_->Now());
    ++completed_tasks_;
    // Dependency propagation (mirrors the job manager).
    for (TaskId child : spec.async_children) {
      TaskRuntime& crt = tasks_[static_cast<size_t>(child)];
      if (--crt.remaining_async == 0 && crt.remaining_sync == 0) {
        MarkReady(child);
      }
    }
    if (--stage_remaining_[static_cast<size_t>(spec.stage)] == 0) {
      for (StageId cs : plan().stage(spec.stage).sync_child_stages) {
        for (TaskId child : plan().stage(cs).tasks) {
          TaskRuntime& crt = tasks_[static_cast<size_t>(child)];
          if (--crt.remaining_sync == 0 && crt.remaining_async == 0) {
            MarkReady(child);
          }
        }
      }
    }
    if (completed_tasks_ == static_cast<int>(plan().tasks().size())) {
      FinishJob();
      return;
    }
    AssignWork();
  }

  void CancelIdle(Executor& exec) {
    if (exec.idle_event != kInvalidEventId) {
      sim_->Cancel(exec.idle_event);
      exec.idle_event = kInvalidEventId;
    }
  }

  void CheckIdleExecutors() {
    if (!config_.dynamic_allocation || finished_) {
      return;
    }
    for (size_t e = 0; e < executors_.size(); ++e) {
      Executor& exec = executors_[e];
      if (exec.released || exec.running_tasks > 0 || exec.idle_event != kInvalidEventId) {
        continue;
      }
      if (!ready_.empty()) {
        continue;  // Will be assigned work right away.
      }
      exec.idle_event = sim_->Schedule(config_.idle_timeout, [this, e] {
        Executor& ex = executors_[e];
        ex.idle_event = kInvalidEventId;
        if (!ex.released && ex.running_tasks == 0 && ready_.empty()) {
          ReleaseExecutor(ex);
        }
      });
    }
  }

  void ReleaseExecutor(Executor& exec) {
    CHECK(!exec.released);
    exec.released = true;
    --held_executors_;
    cm_->ReleaseContainer(job_->id, exec.worker, config_.executor_cores,
                          config_.executor_memory_bytes);
  }

  void FinishJob() {
    finished_ = true;
    cm_->CancelPending(job_->id);
    pending_grants_ = 0;
    for (Executor& exec : executors_) {
      CancelIdle(exec);
      if (!exec.released) {
        ReleaseExecutor(exec);
      }
    }
    cluster_->metadata().DropJob(job_->id);
    on_finish_();
  }

  Simulator* sim_;
  Cluster* cluster_;
  ContainerManager* cm_;
  ExecutorModelConfig config_;
  Job* job_;
  std::function<void()> on_finish_;

  std::vector<TaskRuntime> tasks_;
  std::vector<MonotaskRuntime> monotasks_;
  std::vector<int> stage_remaining_;
  std::vector<std::vector<double>> stage_times_;
  std::deque<TaskId> ready_;
  std::vector<Executor> executors_;
  int held_executors_ = 0;
  int pending_grants_ = 0;
  int running_tasks_ = 0;
  int completed_tasks_ = 0;
  double cpu_seconds_ = 0.0;
  bool finished_ = false;
};

ExecutorModelScheduler::ExecutorModelScheduler(Simulator* sim, Cluster* cluster,
                                               const ExecutorModelConfig& config,
                                               const ContainerManagerConfig& cm_config)
    : sim_(sim), cluster_(cluster), config_(config), cm_(sim, cluster, cm_config) {}

ExecutorModelScheduler::~ExecutorModelScheduler() = default;

void ExecutorModelScheduler::SubmitJob(std::unique_ptr<Job> job) {
  job->submit_time = sim_->Now();
  JobRecord record;
  record.id = job->id;
  record.name = job->spec.name;
  record.klass = job->spec.klass;
  record.submit_time = sim_->Now();
  record.admit_time = sim_->Now();
  records_.push_back(std::move(record));
  const size_t index = jobs_.size();
  owned_jobs_.push_back(std::move(job));
  jobs_.push_back(std::make_unique<ExecutorJob>(sim_, cluster_, &cm_, config_,
                                                owned_jobs_.back().get(),
                                                [this, index] { OnJobFinished(index); }));
  ++total_jobs_;
  jobs_.back()->Start();
}

void ExecutorModelScheduler::OnJobFinished(size_t index) {
  ++finished_jobs_;
  JobRecord& record = records_[index];
  record.finish_time = sim_->Now();
  record.cpu_seconds = jobs_[index]->cpu_seconds();
  if (stage_task_times_.size() <= index) {
    stage_task_times_.resize(index + 1);
  }
  stage_task_times_[index] = jobs_[index]->stage_times();
}

}  // namespace ursa
