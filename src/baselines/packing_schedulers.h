// Alternative task-placement algorithms evaluated in section 5.1.2:
// Tetris [17] (multi-dimensional peak-demand packing), Tetris2 (Tetris
// ignoring the network dimension) and YARN's Capacity scheduler (greedy
// most-available-resources). The paper swaps these in for Algorithm 1 while
// keeping Ursa's execution layer; PackingState does the same behind
// UrsaScheduler.
//
// The defining difference from Algorithm 1: these algorithms reserve a
// task's *peak* demand on the chosen worker for the task's entire lifetime
// (they learn nothing from monotask completions), so resources freed by
// fine-grained fluctuations cannot be reused. A task with any shuffle input
// reserves a large slice of the downlink (its observed peak pull rate),
// which reproduces the paper's finding that Tetris blocks placements on
// phantom network demand while the link is mostly idle.
#ifndef SRC_BASELINES_PACKING_SCHEDULERS_H_
#define SRC_BASELINES_PACKING_SCHEDULERS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/cluster.h"
#include "src/exec/estimator.h"

namespace ursa {

enum class PlacementAlgorithm : int {
  kAlgorithm1 = 0,  // Ursa's Algorithm 1 (default).
  kTetris = 1,
  kTetris2 = 2,  // Tetris without the network dimension.
  kCapacity = 3,
};

inline const char* PlacementAlgorithmName(PlacementAlgorithm algorithm) {
  switch (algorithm) {
    case PlacementAlgorithm::kAlgorithm1:
      return "Algorithm1";
    case PlacementAlgorithm::kTetris:
      return "Tetris";
    case PlacementAlgorithm::kTetris2:
      return "Tetris2";
    case PlacementAlgorithm::kCapacity:
      return "Capacity";
  }
  return "?";
}

// Registry entry for a whole-task placement algorithm. CLI tools and benches
// iterate the registry instead of hardcoding the contender list, so a new
// algorithm added here is swept everywhere (DESIGN.md section 13).
struct PackingAlgorithmInfo {
  PlacementAlgorithm algorithm;
  const char* name;         // Display name (PlacementAlgorithmName).
  const char* flag;         // CLI token, e.g. "tetris2".
  const char* description;  // One-line summary for --help output.
};

// All registered algorithms in fixed enum order (deterministic iteration).
const std::vector<PackingAlgorithmInfo>& PackingAlgorithmRegistry();

// Matches `text` against registry flags and names (exact). Returns false and
// leaves `*out` untouched when nothing matches.
bool ParsePlacementAlgorithm(const std::string& text, PlacementAlgorithm* out);

class PackingState {
 public:
  PackingState(const Cluster* cluster, PlacementAlgorithm algorithm);

  // Chooses a worker for a task with the given usage estimate. Returns
  // kInvalidId when no worker can fit the peak demand. Does not commit.
  WorkerId SelectWorker(const TaskUsage& usage) const;

  // Commits / releases a placed task's reservation.
  void Reserve(JobId job, TaskId task, WorkerId worker, const TaskUsage& usage);
  void Release(JobId job, TaskId task);

  // Reserved cores on a worker (for tests).
  double reserved_cores(WorkerId w) const { return used_[static_cast<size_t>(w)].cores; }

 private:
  struct Demand {
    double cores = 0.0;
    double memory = 0.0;
    double net = 0.0;   // bytes/s
    double disk = 0.0;  // bytes/s
  };
  Demand PeakDemand(const TaskUsage& usage) const;
  static uint64_t Key(JobId job, TaskId task) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(job)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(task));
  }

  const Cluster* cluster_;
  PlacementAlgorithm algorithm_;
  Demand capacity_;
  std::vector<Demand> used_;
  std::unordered_map<uint64_t, std::pair<WorkerId, Demand>> reservations_;
};

}  // namespace ursa

#endif  // SRC_BASELINES_PACKING_SCHEDULERS_H_
