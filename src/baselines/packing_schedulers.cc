#include "src/baselines/packing_schedulers.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa {

const std::vector<PackingAlgorithmInfo>& PackingAlgorithmRegistry() {
  static const std::vector<PackingAlgorithmInfo> kRegistry = {
      {PlacementAlgorithm::kAlgorithm1, "Algorithm1", "alg1",
       "Ursa's fine-grained placement (Algorithm 1, the default)"},
      {PlacementAlgorithm::kTetris, "Tetris", "tetris",
       "multi-dimensional peak-demand packing (whole-task reservations)"},
      {PlacementAlgorithm::kTetris2, "Tetris2", "tetris2",
       "Tetris ignoring the network dimension"},
      {PlacementAlgorithm::kCapacity, "Capacity", "capacity",
       "YARN Capacity-style greedy most-available-resources"},
  };
  return kRegistry;
}

bool ParsePlacementAlgorithm(const std::string& text, PlacementAlgorithm* out) {
  for (const PackingAlgorithmInfo& info : PackingAlgorithmRegistry()) {
    if (text == info.flag || text == info.name) {
      *out = info.algorithm;
      return true;
    }
  }
  return false;
}

PackingState::PackingState(const Cluster* cluster, PlacementAlgorithm algorithm)
    : cluster_(cluster), algorithm_(algorithm) {
  CHECK(algorithm != PlacementAlgorithm::kAlgorithm1);
  const WorkerConfig& wc = cluster->config().worker;
  capacity_.cores = wc.cores;
  capacity_.memory = wc.memory_bytes;
  capacity_.net = cluster->config().downlink_bytes_per_sec;
  capacity_.disk = wc.disk_bytes_per_sec * wc.disks;
  used_.resize(static_cast<size_t>(cluster->size()));
}

PackingState::Demand PackingState::PeakDemand(const TaskUsage& usage) const {
  Demand d;
  d.cores = 1.0;
  d.memory = usage.memory;
  if (algorithm_ == PlacementAlgorithm::kCapacity) {
    // Capacity scheduling only reasons about cores and memory.
    return d;
  }
  if (usage.bytes[static_cast<size_t>(ResourceType::kNetwork)] > 0.0 &&
      algorithm_ != PlacementAlgorithm::kTetris2) {
    // Peak pull rate observed in previous runs: the paper's Tetris packs the
    // reported peak bandwidth of the task's shuffle bursts (a sixteenth of the
    // downlink is a typical observed peak across concurrent pulls).
    d.net = capacity_.net / 16.0;
  }
  if (usage.bytes[static_cast<size_t>(ResourceType::kDisk)] > 0.0) {
    d.disk = cluster_->config().worker.disk_bytes_per_sec;
  }
  return d;
}

WorkerId PackingState::SelectWorker(const TaskUsage& usage) const {
  const Demand demand = PeakDemand(usage);
  WorkerId best = kInvalidId;
  double best_score = -1.0;
  for (int w = 0; w < cluster_->size(); ++w) {
    if (cluster_->worker(w).failed()) {
      continue;
    }
    const Demand& used = used_[static_cast<size_t>(w)];
    const Demand avail{capacity_.cores - used.cores, capacity_.memory - used.memory,
                       capacity_.net - used.net, capacity_.disk - used.disk};
    if (demand.cores > avail.cores || demand.memory > avail.memory ||
        demand.net > avail.net || demand.disk > avail.disk) {
      continue;
    }
    double score = 0.0;
    if (algorithm_ == PlacementAlgorithm::kCapacity) {
      // Greedy: the worker with the most available resources.
      score = avail.cores + avail.memory / capacity_.memory;
    } else {
      // Tetris alignment: dot product of normalized demand and availability.
      score = (demand.cores / capacity_.cores) * (avail.cores / capacity_.cores) +
              (demand.memory / capacity_.memory) * (avail.memory / capacity_.memory);
      if (capacity_.net > 0.0) {
        score += (demand.net / capacity_.net) * (avail.net / capacity_.net);
      }
      if (capacity_.disk > 0.0) {
        score += (demand.disk / capacity_.disk) * (avail.disk / capacity_.disk);
      }
    }
    if (score > best_score) {
      best_score = score;
      best = static_cast<WorkerId>(w);
    }
  }
  return best;
}

void PackingState::Reserve(JobId job, TaskId task, WorkerId worker, const TaskUsage& usage) {
  const Demand demand = PeakDemand(usage);
  Demand& used = used_[static_cast<size_t>(worker)];
  used.cores += demand.cores;
  used.memory += demand.memory;
  used.net += demand.net;
  used.disk += demand.disk;
  const bool inserted = reservations_.emplace(Key(job, task), std::make_pair(worker, demand)).second;
  CHECK(inserted) << "duplicate reservation";
}

void PackingState::Release(JobId job, TaskId task) {
  auto it = reservations_.find(Key(job, task));
  if (it == reservations_.end()) {
    return;
  }
  const auto& [worker, demand] = it->second;
  Demand& used = used_[static_cast<size_t>(worker)];
  used.cores = std::max(0.0, used.cores - demand.cores);
  used.memory = std::max(0.0, used.memory - demand.memory);
  used.net = std::max(0.0, used.net - demand.net);
  used.disk = std::max(0.0, used.disk - demand.disk);
  reservations_.erase(it);
}

}  // namespace ursa
