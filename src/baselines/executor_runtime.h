// Executor-model execution baselines (sections 2, 5.1).
//
// ExecutorModelScheduler simulates running the same jobs (same OpGraphs and
// execution plans) under a YARN-style container scheduler plus an
// executor-based runtime, in two modes:
//
//  * kTaskSlots ("Y+S" Spark-like, "Y+T" Tez-like): each executor has
//    `executor_cores` task slots. A task occupies one slot from launch to
//    completion and runs its monotasks *sequentially inside the slot* - in
//    particular the core is held (allocated, idle) while the task fetches
//    shuffle data. Dynamic allocation can grow/shrink the executor pool with
//    an idle timeout (Spark); disabling it holds containers until the job
//    ends (Tez-style container reuse).
//
//  * kMonotaskQueues ("Y+U", the MonoSpark simulation of section 5.1.2):
//    the job's executors run per-resource monotask queues, so cores are only
//    busy while CPU monotasks run - fine-grained sharing *within* the job -
//    but the containers' cores stay allocated to the job regardless, so
//    there is no sharing *across* jobs.
//
// Both modes account allocation at container granularity (via the
// ContainerManager) and actual usage at monotask granularity, which is what
// produces the paper's low UE numbers for these systems.
#ifndef SRC_BASELINES_EXECUTOR_RUNTIME_H_
#define SRC_BASELINES_EXECUTOR_RUNTIME_H_

#include <memory>
#include <vector>

#include "src/baselines/container_manager.h"
#include "src/dag/job.h"
#include "src/exec/cluster.h"
#include "src/metrics/metrics.h"

namespace ursa {

enum class ExecutorMode : int {
  kTaskSlots = 0,
  kMonotaskQueues = 1,
};

struct ExecutorModelConfig {
  ExecutorMode mode = ExecutorMode::kTaskSlots;
  int executor_cores = 4;
  double executor_memory_bytes = 8.0 * 1024 * 1024 * 1024;
  // Upper bound on concurrently-held executors per job.
  int max_executors_per_job = 160;
  bool dynamic_allocation = true;
  double idle_timeout = 2.0;
  // Fixed scheduling/deserialization delay before a task starts in a slot.
  double task_launch_overhead = 0.02;
  // Driver / ApplicationMaster startup cost per job.
  double job_startup_delay = 1.0;
  // Per-executor network monotask concurrency in kMonotaskQueues mode.
  int network_concurrency = 2;
};

class ExecutorModelScheduler {
 public:
  ExecutorModelScheduler(Simulator* sim, Cluster* cluster, const ExecutorModelConfig& config,
                         const ContainerManagerConfig& cm_config);
  ~ExecutorModelScheduler();

  void SubmitJob(std::unique_ptr<Job> job);

  bool AllJobsFinished() const { return finished_jobs_ == total_jobs_; }
  int finished_jobs() const { return finished_jobs_; }
  const std::vector<JobRecord>& job_records() const { return records_; }

  // Per-job, per-stage task completion timestamps (straggler analysis).
  const std::vector<std::vector<std::vector<double>>>& stage_task_times() const {
    return stage_task_times_;
  }

 private:
  class ExecutorJob;

  void OnJobFinished(size_t index);

  Simulator* sim_;
  Cluster* cluster_;
  ExecutorModelConfig config_;
  ContainerManager cm_;
  std::vector<std::unique_ptr<Job>> owned_jobs_;
  std::vector<std::unique_ptr<ExecutorJob>> jobs_;
  std::vector<JobRecord> records_;
  std::vector<std::vector<std::vector<double>>> stage_task_times_;
  int total_jobs_ = 0;
  int finished_jobs_ = 0;
};

}  // namespace ursa

#endif  // SRC_BASELINES_EXECUTOR_RUNTIME_H_
