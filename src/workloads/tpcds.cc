#include "src/workloads/tpcds.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/units.h"

namespace ursa {

namespace {

// TPC-DS has 99 queries; we synthesize profiles procedurally from the query
// number so a given query id always has the same shape. The depth
// distribution is tuned to the paper's report: range 5-43, mean ~9.
SqlQueryProfile TpcdsProfile(int query) {
  Rng rng(0xDC0DE + static_cast<uint64_t>(query) * 65537);
  SqlQueryProfile profile;
  profile.query_id = query;
  // Heavy-tailed depth: most queries 4-11, a few very deep (up to ~42).
  const double u = rng.NextDouble();
  if (u < 0.80) {
    profile.depth = static_cast<int>(rng.UniformInt(static_cast<int64_t>(4), 11));
  } else if (u < 0.95) {
    profile.depth = static_cast<int>(rng.UniformInt(static_cast<int64_t>(12), 22));
  } else {
    profile.depth = static_cast<int>(rng.UniformInt(static_cast<int64_t>(23), 42));
  }
  profile.tables = static_cast<int>(rng.UniformInt(static_cast<int64_t>(2), 5));
  profile.touched_fraction = rng.Uniform(0.05, 0.35);
  profile.scan_selectivity = rng.Uniform(0.3, 0.55);
  // Deep plans must keep selectivity high enough that late stages still have
  // work (paper: alternating high/low parallelism along the DAG).
  profile.join_selectivity =
      profile.depth > 12 ? rng.Uniform(0.88, 0.97) : rng.Uniform(0.75, 0.90);
  profile.cpu_complexity = rng.Uniform(1.8, 3.0);
  profile.skew = rng.Uniform(1.2, 2.2);
  return profile;
}

double PickDbBytes(Rng& rng) {
  const double u = rng.NextDouble();
  if (u < 0.60) {
    return 200.0 * kGiB;
  }
  if (u < 0.90) {
    return 500.0 * kGiB;
  }
  return 1024.0 * kGiB;
}

}  // namespace

JobSpec MakeTpcdsQuery(int query, double db_bytes, uint64_t seed) {
  CHECK_GE(query, 1);
  CHECK_LE(query, 99);
  SqlBuildOptions options;
  // Partitioned tables: many small partitions, especially visible on the
  // small databases (the paper blames this for Y+S overheads on TPC-DS).
  options.bytes_per_partition = 96.0 * 1024 * 1024;
  SqlQueryProfile profile = TpcdsProfile(query);
  // Same cluster-saturation calibration as TPC-H (see MakeTpchQuery).
  profile.cpu_complexity *= 2.0;
  profile.touched_fraction = std::min(0.5, profile.touched_fraction * 1.4);
  return BuildSqlJob(profile, db_bytes, options, seed,
                     "tpcds-q" + std::to_string(query), "tpcds");
}

Workload MakeTpcdsWorkload(const TpcdsWorkloadConfig& config) {
  Workload workload;
  workload.name = "tpcds";
  Rng rng(config.seed);
  for (int i = 0; i < config.num_jobs; ++i) {
    const int query = static_cast<int>(rng.UniformInt(static_cast<int64_t>(1), 99));
    WorkloadJob job;
    job.spec = MakeTpcdsQuery(query, PickDbBytes(rng),
                              config.seed * 15485863 + static_cast<uint64_t>(i));
    job.spec.name += "-" + std::to_string(i);
    job.submit_time = config.submit_interval * i;
    workload.jobs.push_back(std::move(job));
  }
  return workload;
}

}  // namespace ursa
