// Synthetic jobs with expectable performance (section 5.3): 5 stages of
// homogeneous tasks, each stage computing over its input (random-number
// generation) and shuffling the result. Parallelism is one task per
// "usable" core (30 x 20 by default). Type 1 jobs handle twice the data of
// Type 2 jobs; individually their JCTs are ~40 s and ~22 s with ~57% / ~50%
// average CPU utilization, enabling the closed-form expected JCTs of
// Figures 9 and 10.
#ifndef SRC_WORKLOADS_SYNTHETIC_H_
#define SRC_WORKLOADS_SYNTHETIC_H_

#include "src/workloads/workload.h"

namespace ursa {

struct SyntheticJobParams {
  int type = 1;  // 1 or 2.
  int stages = 5;
  int parallelism = 600;  // 30 usable cores x 20 machines.
  // Per-task input bytes for a Type 1 job; Type 2 halves this.
  double type1_task_bytes = 125.0 * 1024 * 1024;
  // CPU byte-equivalents per input byte (tunes the ~5 s compute phase).
  double complexity = 10.0;
};

JobSpec BuildSyntheticJob(const SyntheticJobParams& params, uint64_t seed);

// Setting 1 of section 5.3: `count` Type 1 jobs submitted together.
Workload MakeSyntheticType1Workload(int count, uint64_t seed);
// Setting 2: Type 1 and Type 2 jobs alternating.
Workload MakeSyntheticMixedWorkload(int count_each, uint64_t seed);

// Closed-form expected JCTs under ideal fine-grained sharing with EJF (the
// paper's derivation: jobs pair up, CPU of one overlapping network of the
// other; stage times alternate). `jct1`/`stage1` are the single-job JCT and
// per-stage time of Type 1.
std::vector<double> ExpectedJctsType1Only(int count, double jct1, double stage1);

// Expected JCTs in the ideal fine-grained schedule for arbitrary mixes of
// alternating CPU/network jobs (setting 2 of section 5.3). Model: a job's
// CPU phase occupies the whole cluster (stage parallelism = all cores), so
// at most one job computes at a time; network phases overlap freely. The
// policy picks which ready job computes: EJF by submission index, SRJF by
// least remaining work.
struct AlternatingJobModel {
  int stages = 5;
  double cpu_phase = 5.0;  // Seconds per stage of CPU.
  double net_phase = 3.0;  // Seconds per stage of network.
};
std::vector<double> ExpectedJctsIdealAlternating(const std::vector<AlternatingJobModel>& jobs,
                                                 bool srjf);

}  // namespace ursa

#endif  // SRC_WORKLOADS_SYNTHETIC_H_
