// Graph analytics jobs (PageRank, Connected Components): iterative
// message-passing over a cached edge list, with heavily skewed shuffles
// (power-law vertex degrees) and, for CC, a shrinking frontier. These
// reproduce Figures 1c/1d and the graph share of the Mixed workload.
#ifndef SRC_WORKLOADS_GRAPH_H_
#define SRC_WORKLOADS_GRAPH_H_

#include "src/workloads/workload.h"

namespace ursa {

struct GraphJobParams {
  std::string name = "pagerank";
  int iterations = 16;
  double edge_bytes = 80.0 * 1024 * 1024 * 1024;
  // CPU work per edge byte per iteration.
  double complexity = 2.5;
  // Message bytes produced per edge byte in iteration 0.
  double message_fraction = 0.25;
  // Per-iteration decay of the message volume (1.0 for PR, < 1 for CC).
  double frontier_decay = 1.0;
  // Shuffle skew (power-law vertex degrees).
  double skew = 3.0;
  int parallelism = 640;
};

// PageRank on a WebUK-scale graph.
GraphJobParams PagerankParams();
// Connected components on a Friendster-scale graph.
GraphJobParams CcParams();

JobSpec BuildGraphJob(const GraphJobParams& params, uint64_t seed);

}  // namespace ursa

#endif  // SRC_WORKLOADS_GRAPH_H_
