// Open-loop workload source (DESIGN.md section 11): continuous job arrivals
// that do not wait for completions, the serving-style load pattern the
// admission controller and backpressure ladder are built for.
//
// Arrivals come from a seeded Poisson process (rate jobs/s) or from a
// trace file of inter-arrival gaps (one per line, cycled when the run is
// longer than the trace). Each arrival is assigned to a tenant by weighted
// deterministic draw; tenants carry a priority tier and an SLO that the
// generated JobSpec inherits. Jobs themselves are synthetic alternating
// Type 1 / Type 2 jobs (section 5.3) scaled by `job_template`.
//
// The source is a pull-based iterator: the experiment driver asks for the
// next gap and next job, which lets it stretch gaps by the scheduler's
// throttle factor (client backoff) without breaking determinism — the
// arrival *sequence* is fixed by the seed, only its timing shifts.
#ifndef SRC_WORKLOADS_OPENLOOP_H_
#define SRC_WORKLOADS_OPENLOOP_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/synthetic.h"
#include "src/workloads/workload.h"

namespace ursa {

// One tenant's share of the open-loop arrival stream.
struct TenantSpec {
  std::string name;
  double weight = 1.0;  // Arrival share relative to the other tenants.
  int tier = 0;         // Priority tier; 0 is the highest.
  double slo = 0.0;     // Per-job SLO seconds (0 = admission default).
};

struct OpenLoopConfig {
  bool enabled = false;
  uint64_t seed = 2020;
  // Aggregate Poisson arrival rate in jobs/s; ignored when trace_file is set.
  double arrival_rate = 0.5;
  // Inter-arrival gap trace: whitespace-separated non-negative seconds,
  // cycled when the run outlasts the trace. Overrides arrival_rate.
  std::string trace_file;
  // Stop generating after this many arrivals.
  int max_jobs = 100;
  // Stop generating once the simulated clock passes this (0 = no horizon).
  double horizon = 0.0;
  // Empty -> a single "default" tenant with tier 0 and no SLO.
  std::vector<TenantSpec> tenants;
  // Shape of the generated synthetic jobs; `type` alternates 1/2 per arrival.
  SyntheticJobParams job_template;
};

// Parses `spec` of the form "name:weight:tier:slo[,name:weight:tier:slo...]"
// (weight/tier/slo optional, e.g. "batch,interactive:2:0:60"). Returns false
// and sets *error on malformed input.
bool ParseTenantSpecs(const std::string& spec, std::vector<TenantSpec>* out,
                      std::string* error);

// Loads an inter-arrival trace file. Returns false and sets *error when the
// file is unreadable, empty, or contains a negative or non-numeric entry.
bool LoadInterarrivalTrace(const std::string& path, std::vector<double>* gaps,
                           std::string* error);

class OpenLoopSource {
 public:
  explicit OpenLoopSource(const OpenLoopConfig& config);

  // True once max_jobs arrivals were generated or `now` passed the horizon.
  bool Exhausted(double now) const;
  // Next raw inter-arrival gap in seconds (before any throttling).
  double NextGap();
  // Builds the next arriving job's spec (tenant, tier, SLO filled in).
  JobSpec NextJob();

  int generated() const { return generated_; }
  const std::vector<TenantSpec>& tenants() const { return tenants_; }

 private:
  const TenantSpec& PickTenant();

  OpenLoopConfig config_;
  std::vector<TenantSpec> tenants_;  // Normalized: never empty.
  double total_weight_ = 0.0;
  std::vector<double> trace_gaps_;   // Empty -> Poisson arrivals.
  size_t trace_pos_ = 0;
  Rng arrival_rng_;
  Rng tenant_rng_;
  int generated_ = 0;
};

}  // namespace ursa

#endif  // SRC_WORKLOADS_OPENLOOP_H_
