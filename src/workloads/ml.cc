#include "src/workloads/ml.h"

#include "src/common/logging.h"
#include "src/common/units.h"

namespace ursa {

MlJobParams LrParams() {
  MlJobParams params;
  params.name = "lr";
  params.iterations = 12;
  params.dataset_bytes = 50.0 * kGiB;  // webspam-scale features.
  params.model_bytes = 64.0 * kMiB;
  params.complexity = 4.0;
  params.parallelism = 320;
  params.gradient_fraction = 0.1;  // Sparse gradients.
  return params;
}

MlJobParams KmeansParams() {
  MlJobParams params;
  params.name = "kmeans";
  params.iterations = 10;
  params.dataset_bytes = 26.0 * kGiB;  // mnist8m-scale.
  params.model_bytes = 16.0 * kMiB;    // centroids.
  params.complexity = 6.0;
  params.parallelism = 320;
  params.gradient_fraction = 0.25;  // Per-cluster sums.
  return params;
}

JobSpec BuildMlJob(const MlJobParams& params, uint64_t seed) {
  CHECK_GE(params.iterations, 1);
  JobSpec spec;
  spec.name = params.name;
  spec.klass = "ml";
  spec.seed = seed;
  spec.true_m2i = 1.3;
  spec.default_m2i = 2.0;
  // The training set stays cached, so the user declares memory for it.
  spec.declared_memory_bytes = params.dataset_bytes * 1.3;
  OpGraph& graph = spec.graph;

  const int p = params.parallelism;
  const int p_small = 32;
  const double replicated_model = params.model_bytes * p;  // Broadcast volume.

  // Training data: cached input partitions.
  std::vector<double> data_sizes(static_cast<size_t>(p),
                                 params.dataset_bytes / p);
  const DataId data = graph.CreateExternalData(std::move(data_sizes), "train");

  // Model seed: a tiny external blob the init op expands into the
  // replicated model dataset.
  std::vector<double> seed_sizes(static_cast<size_t>(p_small),
                                 params.model_bytes / p_small);
  const DataId model_seed = graph.CreateExternalData(std::move(seed_sizes), "seed");

  DataId params_data = graph.CreateData(p_small, "params0");
  OpCostModel init_cost;
  init_cost.cpu_complexity = 1.0;
  init_cost.output_selectivity = replicated_model / params.model_bytes;
  OpHandle prev_cpu = graph.CreateOp(ResourceType::kCpu, "init")
                          .Read(model_seed)
                          .Create(params_data)
                          .SetCost(init_cost);

  for (int k = 0; k < params.iterations; ++k) {
    const std::string suffix = std::to_string(k);
    // Broadcast: every task pulls the full model.
    const DataId replicated = graph.CreateData(p, "model" + suffix);
    OpHandle bcast = graph.CreateOp(ResourceType::kNetwork, "bcast" + suffix)
                         .Read(params_data)
                         .Create(replicated);
    prev_cpu.To(bcast, DepKind::kSync);

    // Gradient / assignment pass over the cached data.
    const DataId grads = graph.CreateData(p, "grad" + suffix);
    OpCostModel grad_cost;
    grad_cost.cpu_complexity = params.complexity;
    const double grad_in = params.dataset_bytes + replicated_model;
    const double grad_out = params.gradient_fraction * replicated_model;
    grad_cost.output_selectivity = grad_out / grad_in;
    grad_cost.fixed_cpu_work = 1e6;
    OpHandle grad = graph.CreateOp(ResourceType::kCpu, "grad" + suffix)
                        .Read(data)
                        .Read(replicated)
                        .Create(grads)
                        .SetCost(grad_cost)
                        .SetM2i(1.5);
    bcast.To(grad, DepKind::kAsync);

    // Aggregate gradients to a few reducers, then update the model.
    const DataId agg = graph.CreateData(p_small, "agg" + suffix);
    OpHandle aggregate = graph.CreateOp(ResourceType::kNetwork, "agg" + suffix)
                             .Read(grads)
                             .Create(agg);
    grad.To(aggregate, DepKind::kSync);

    params_data = graph.CreateData(p_small, "params" + std::to_string(k + 1));
    OpCostModel upd_cost;
    upd_cost.cpu_complexity = 1.0;
    upd_cost.output_selectivity = replicated_model / grad_out;
    OpHandle update = graph.CreateOp(ResourceType::kCpu, "update" + suffix)
                          .Read(agg)
                          .Create(params_data)
                          .SetCost(upd_cost);
    aggregate.To(update, DepKind::kAsync);
    prev_cpu = update;
  }

  // Persist the final model.
  OpHandle write = graph.CreateOp(ResourceType::kDisk, "write")
                       .Read(params_data)
                       .SetParallelism(p_small);
  prev_cpu.To(write, DepKind::kAsync);

  graph.Validate();
  return spec;
}

}  // namespace ursa
