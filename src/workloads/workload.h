// Shared workload types: a Workload is a list of JobSpecs with submission
// times. Generators in this directory synthesize jobs whose DAG shapes, data
// volumes and skew match the statistics the paper reports for its TPC-H /
// TPC-DS / ML / graph workloads (section 5, "Workloads").
#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/dag/job.h"

namespace ursa {

struct WorkloadJob {
  JobSpec spec;
  double submit_time = 0.0;
};

struct Workload {
  std::string name;
  std::vector<WorkloadJob> jobs;
};

}  // namespace ursa

#endif  // SRC_WORKLOADS_WORKLOAD_H_
