#include "src/workloads/synthetic.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace ursa {

JobSpec BuildSyntheticJob(const SyntheticJobParams& params, uint64_t seed) {
  CHECK(params.type == 1 || params.type == 2);
  JobSpec spec;
  spec.name = "type" + std::to_string(params.type);
  spec.klass = "synthetic";
  spec.seed = seed;
  spec.true_m2i = 1.0;
  spec.default_m2i = 1.5;
  OpGraph& graph = spec.graph;

  const int p = params.parallelism;
  const double task_bytes =
      params.type == 1 ? params.type1_task_bytes : params.type1_task_bytes / 2.0;
  spec.declared_memory_bytes = 1.6 * task_bytes * p;

  std::vector<double> input_sizes(static_cast<size_t>(p), task_bytes);
  const DataId input = graph.CreateExternalData(std::move(input_sizes), "gen-seed");

  OpCostModel cpu_cost;
  cpu_cost.cpu_complexity = params.complexity;
  cpu_cost.output_selectivity = 1.0;

  DataId current = graph.CreateData(p, "stage0-out");
  OpHandle prev = graph.CreateOp(ResourceType::kCpu, "gen0")
                      .Read(input)
                      .Create(current)
                      .SetCost(cpu_cost);
  for (int s = 1; s < params.stages; ++s) {
    const std::string suffix = std::to_string(s);
    const DataId shuffled = graph.CreateData(p, "shuffled" + suffix);
    OpHandle shuffle = graph.CreateOp(ResourceType::kNetwork, "shuffle" + suffix)
                           .Read(current)
                           .Create(shuffled);
    prev.To(shuffle, DepKind::kSync);
    current = graph.CreateData(p, "stage" + suffix + "-out");
    OpHandle compute = graph.CreateOp(ResourceType::kCpu, "gen" + suffix)
                           .Read(shuffled)
                           .Create(current)
                           .SetCost(cpu_cost);
    shuffle.To(compute, DepKind::kAsync);
    prev = compute;
  }
  graph.Validate();
  return spec;
}

Workload MakeSyntheticType1Workload(int count, uint64_t seed) {
  Workload workload;
  workload.name = "synthetic-type1";
  for (int i = 0; i < count; ++i) {
    SyntheticJobParams params;
    params.type = 1;
    WorkloadJob job;
    job.spec = BuildSyntheticJob(params, seed + static_cast<uint64_t>(i));
    job.spec.name += "-" + std::to_string(i);
    job.submit_time = 0.25 * i;  // Closely spaced, strictly ordered.
    workload.jobs.push_back(std::move(job));
  }
  return workload;
}

Workload MakeSyntheticMixedWorkload(int count_each, uint64_t seed) {
  Workload workload;
  workload.name = "synthetic-mixed";
  for (int i = 0; i < 2 * count_each; ++i) {
    SyntheticJobParams params;
    params.type = (i % 2 == 0) ? 1 : 2;
    WorkloadJob job;
    job.spec = BuildSyntheticJob(params, seed + static_cast<uint64_t>(i));
    job.spec.name += "-" + std::to_string(i);
    job.submit_time = 0.25 * i;
    workload.jobs.push_back(std::move(job));
  }
  return workload;
}

std::vector<double> ExpectedJctsIdealAlternating(const std::vector<AlternatingJobModel>& jobs,
                                                 bool srjf) {
  struct State {
    int stage = 0;          // Completed stages.
    bool in_net = false;    // Currently in the network phase of `stage`.
    double net_end = 0.0;   // When the network phase completes.
    double finish = -1.0;
  };
  std::vector<State> states(jobs.size());
  std::vector<double> remaining(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    remaining[j] = jobs[j].stages * (jobs[j].cpu_phase + jobs[j].net_phase);
  }
  double now = 0.0;
  size_t done = 0;
  while (done < jobs.size()) {
    // Pick the ready-to-compute job by policy.
    int pick = -1;
    for (size_t j = 0; j < jobs.size(); ++j) {
      State& s = states[j];
      if (s.finish >= 0.0 || (s.in_net && s.net_end > now)) {
        continue;
      }
      if (s.in_net && s.net_end <= now) {
        s.in_net = false;
        ++s.stage;
        if (s.stage == jobs[j].stages) {
          s.finish = s.net_end;
          ++done;
          continue;
        }
      }
      if (pick == -1 ||
          (srjf ? remaining[j] < remaining[static_cast<size_t>(pick)] : false)) {
        pick = static_cast<int>(j);  // EJF: first (lowest index) ready job.
      }
    }
    if (done == jobs.size()) {
      break;
    }
    if (pick == -1) {
      // Everyone is in a network phase; jump to the earliest completion.
      double next = 1e18;
      for (size_t j = 0; j < jobs.size(); ++j) {
        if (states[j].finish < 0.0 && states[j].in_net) {
          next = std::min(next, states[j].net_end);
        }
      }
      CHECK(next < 1e18);
      now = next;
      continue;
    }
    // Run the picked job's CPU phase exclusively, then launch its network
    // phase (which overlaps future compute).
    const auto& model = jobs[static_cast<size_t>(pick)];
    now += model.cpu_phase;
    remaining[static_cast<size_t>(pick)] -= model.cpu_phase + model.net_phase;
    State& s = states[static_cast<size_t>(pick)];
    s.in_net = true;
    s.net_end = now + model.net_phase;
  }
  std::vector<double> expected;
  expected.reserve(jobs.size());
  for (const State& s : states) {
    expected.push_back(s.finish);
  }
  return expected;
}

std::vector<double> ExpectedJctsType1Only(int count, double jct1, double stage1) {
  // Paper's ideal-case schedule: jobs run in EJF pairs; within a pair the
  // second job's stages slot into the first job's network phases, finishing
  // one stage time later. Pair k starts when pair k-1's first job finishes.
  std::vector<double> expected;
  expected.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int pair = i / 2;
    const double base = pair * jct1;
    expected.push_back(i % 2 == 0 ? base + jct1 : base + jct1 + stage1);
  }
  return expected;
}

}  // namespace ursa
