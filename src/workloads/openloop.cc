#include "src/workloads/openloop.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace ursa {

namespace {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(s);
  while (std::getline(in, field, sep)) {
    out.push_back(field);
  }
  if (!s.empty() && s.back() == sep) {
    out.emplace_back();
  }
  return out;
}

bool ParseDoubleField(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool ParseIntField(const std::string& s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

bool ParseTenantSpecs(const std::string& spec, std::vector<TenantSpec>* out,
                      std::string* error) {
  out->clear();
  for (const std::string& entry : Split(spec, ',')) {
    const std::vector<std::string> fields = Split(entry, ':');
    if (fields.empty() || fields[0].empty() || fields.size() > 4) {
      *error = "malformed tenant spec '" + entry + "' (want name[:weight[:tier[:slo]]])";
      return false;
    }
    TenantSpec tenant;
    tenant.name = fields[0];
    if (fields.size() > 1 && !ParseDoubleField(fields[1], &tenant.weight)) {
      *error = "bad tenant weight in '" + entry + "'";
      return false;
    }
    if (fields.size() > 2 && !ParseIntField(fields[2], &tenant.tier)) {
      *error = "bad tenant tier in '" + entry + "'";
      return false;
    }
    if (fields.size() > 3 && !ParseDoubleField(fields[3], &tenant.slo)) {
      *error = "bad tenant slo in '" + entry + "'";
      return false;
    }
    if (tenant.weight <= 0.0) {
      *error = "tenant weight must be > 0 in '" + entry + "'";
      return false;
    }
    if (tenant.tier < 0) {
      *error = "tenant tier must be >= 0 in '" + entry + "'";
      return false;
    }
    if (tenant.slo < 0.0) {
      *error = "tenant slo must be >= 0 in '" + entry + "'";
      return false;
    }
    out->push_back(std::move(tenant));
  }
  if (out->empty()) {
    *error = "empty tenant spec";
    return false;
  }
  return true;
}

bool LoadInterarrivalTrace(const std::string& path, std::vector<double>* gaps,
                           std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open arrival trace " + path;
    return false;
  }
  gaps->clear();
  std::string token;
  while (in >> token) {
    double gap = 0.0;
    if (!ParseDoubleField(token, &gap) || gap < 0.0) {
      *error = "bad inter-arrival gap '" + token + "' in " + path;
      return false;
    }
    gaps->push_back(gap);
  }
  if (gaps->empty()) {
    *error = "arrival trace " + path + " is empty";
    return false;
  }
  return true;
}

OpenLoopSource::OpenLoopSource(const OpenLoopConfig& config)
    : config_(config),
      // Independent streams: stretching arrival gaps must not perturb the
      // tenant/job sequence, and vice versa.
      arrival_rng_(config.seed * 2 + 1),
      tenant_rng_(config.seed * 2 + 2) {
  CHECK_GE(config_.max_jobs, 0);
  tenants_ = config_.tenants;
  if (tenants_.empty()) {
    TenantSpec tenant;
    tenant.name = "default";
    tenants_.push_back(std::move(tenant));
  }
  for (const TenantSpec& tenant : tenants_) {
    CHECK_GT(tenant.weight, 0.0) << "tenant " << tenant.name;
    total_weight_ += tenant.weight;
  }
  if (!config_.trace_file.empty()) {
    std::string error;
    CHECK(LoadInterarrivalTrace(config_.trace_file, &trace_gaps_, &error)) << error;
  } else {
    CHECK_GT(config_.arrival_rate, 0.0);
  }
}

bool OpenLoopSource::Exhausted(double now) const {
  if (generated_ >= config_.max_jobs) {
    return true;
  }
  return config_.horizon > 0.0 && now >= config_.horizon;
}

double OpenLoopSource::NextGap() {
  if (!trace_gaps_.empty()) {
    const double gap = trace_gaps_[trace_pos_];
    trace_pos_ = (trace_pos_ + 1) % trace_gaps_.size();
    return gap;
  }
  return arrival_rng_.Exponential(config_.arrival_rate);
}

const TenantSpec& OpenLoopSource::PickTenant() {
  double draw = tenant_rng_.Uniform(0.0, total_weight_);
  for (const TenantSpec& tenant : tenants_) {
    draw -= tenant.weight;
    if (draw < 0.0) {
      return tenant;
    }
  }
  return tenants_.back();
}

JobSpec OpenLoopSource::NextJob() {
  const TenantSpec& tenant = PickTenant();
  SyntheticJobParams params = config_.job_template;
  params.type = generated_ % 2 == 0 ? 1 : 2;  // Alternate job sizes.
  JobSpec spec =
      BuildSyntheticJob(params, config_.seed + static_cast<uint64_t>(generated_) * 7919);
  spec.name = tenant.name + "-" + std::to_string(generated_);
  spec.klass = "openloop";
  spec.tenant = tenant.name;
  spec.priority_tier = tenant.tier;
  spec.slo_seconds = tenant.slo;
  ++generated_;
  return spec;
}

}  // namespace ursa
