#include "src/workloads/tpch.h"
#include <algorithm>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/units.h"

namespace ursa {

namespace {

// Per-query shape profiles. Depth/table counts follow the structure of the
// actual TPC-H queries (e.g. Q1 is a single-table aggregation, Q8 joins 8
// tables through a deep tree with skewed intermediates, Q14 is a simple
// two-table join). touched_fraction reflects column pruning on the columnar
// format plus filters.
constexpr SqlQueryProfile kTpchProfiles[22] = {
    // id depth tables touched scan_sel join_sel complexity skew
    {1, 1, 1, 0.30, 0.50, 0.50, 2.8, 1.2},    // Q1: big scan + agg
    {2, 4, 4, 0.04, 0.40, 0.40, 1.8, 1.6},    // Q2
    {3, 3, 3, 0.22, 0.45, 0.50, 2.0, 1.4},    // Q3
    {4, 2, 2, 0.12, 0.40, 0.35, 1.6, 1.3},    // Q4
    {5, 5, 4, 0.24, 0.45, 0.50, 2.2, 1.5},    // Q5
    {6, 1, 1, 0.07, 0.30, 0.50, 1.4, 1.1},    // Q6: scan + filter
    {7, 5, 4, 0.22, 0.45, 0.45, 2.2, 1.6},    // Q7
    {8, 7, 4, 0.35, 0.50, 0.60, 3.6, 2.4},    // Q8: many joins & group-by
    {9, 6, 4, 0.40, 0.55, 0.65, 4.2, 2.0},    // Q9: the heaviest query
    {10, 3, 3, 0.24, 0.45, 0.50, 2.0, 1.5},   // Q10
    {11, 3, 3, 0.05, 0.40, 0.40, 1.6, 1.3},   // Q11
    {12, 2, 2, 0.16, 0.35, 0.40, 1.6, 1.2},   // Q12
    {13, 2, 2, 0.12, 0.50, 0.60, 1.8, 1.4},   // Q13
    {14, 2, 2, 0.14, 0.40, 0.45, 1.7, 1.2},   // Q14: simple join
    {15, 3, 2, 0.14, 0.35, 0.40, 1.7, 1.3},   // Q15
    {16, 3, 3, 0.06, 0.40, 0.45, 1.6, 1.3},   // Q16
    {17, 4, 2, 0.16, 0.40, 0.40, 2.0, 1.6},   // Q17
    {18, 4, 3, 0.30, 0.50, 0.55, 3.0, 1.7},   // Q18
    {19, 2, 2, 0.14, 0.35, 0.40, 1.8, 1.3},   // Q19
    {20, 4, 3, 0.10, 0.40, 0.40, 1.8, 1.4},   // Q20
    {21, 5, 4, 0.32, 0.50, 0.55, 3.2, 1.8},   // Q21
    {22, 2, 2, 0.04, 0.30, 0.35, 1.5, 1.2},   // Q22
};

double PickDbBytes(Rng& rng) {
  const double u = rng.NextDouble();
  if (u < 0.60) {
    return 200.0 * kGiB;
  }
  if (u < 0.90) {
    return 500.0 * kGiB;
  }
  return 1024.0 * kGiB;
}

}  // namespace

JobSpec MakeTpchQuery(int query, double db_bytes, uint64_t seed) {
  CHECK_GE(query, 1);
  CHECK_LE(query, 22);
  SqlQueryProfile profile = kTpchProfiles[query - 1];
  // Calibration against the paper's testbed: queries keep a solo JCT in the
  // 3-297 s band while collectively saturating the 640-core cluster at the
  // 5 s submission interval (load factor > 1, as the paper's makespans
  // imply). Columnar scans feed heavier join/agg pipelines.
  profile.cpu_complexity *= 2.2;
  profile.touched_fraction = std::min(0.5, profile.touched_fraction * 1.5);
  SqlBuildOptions options;
  options.bytes_per_partition = 128.0 * 1024 * 1024;
  return BuildSqlJob(profile, db_bytes, options, seed,
                     "tpch-q" + std::to_string(query), "tpch");
}

Workload MakeTpchWorkload(const TpchWorkloadConfig& config) {
  Workload workload;
  workload.name = "tpch";
  Rng rng(config.seed);
  for (int i = 0; i < config.num_jobs; ++i) {
    const int query = static_cast<int>(rng.UniformInt(static_cast<int64_t>(1), 22));
    const double db = PickDbBytes(rng);
    WorkloadJob job;
    job.spec = MakeTpchQuery(query, db, config.seed * 7919 + static_cast<uint64_t>(i));
    job.spec.name += "-" + std::to_string(i);
    job.submit_time = config.submit_interval * i;
    workload.jobs.push_back(std::move(job));
  }
  return workload;
}

Workload MakeTpch2Workload(uint64_t seed) {
  // The "hard" subset: deeper DAGs, heavier skew, more irregular utilization
  // (average depth ~7.2 per the paper).
  Workload workload;
  workload.name = "tpch2";
  Rng rng(seed);
  constexpr int kHardQueries[] = {2, 5, 7, 8, 9, 17, 18, 20, 21};
  for (int i = 0; i < 25; ++i) {
    const int query = kHardQueries[rng.UniformInt(sizeof(kHardQueries) / sizeof(int))];
    SqlQueryProfile profile = kTpchProfiles[query - 1];
    profile.depth += static_cast<int>(rng.UniformInt(static_cast<int64_t>(1), 3));
    profile.skew *= rng.Uniform(1.2, 1.8);
    // Same saturation calibration as MakeTpchQuery, and heavier: this burst
    // of 25 jobs must contend for the cluster (paper's makespans are ~600 s)
    // so that ordering and placement ablations have room to differ.
    profile.cpu_complexity *= 2.2;
    profile.touched_fraction =
        std::min(0.5, profile.touched_fraction * 1.5 * rng.Uniform(0.8, 1.3));
    SqlBuildOptions options;
    options.bytes_per_partition = 128.0 * 1024 * 1024;
    WorkloadJob job;
    job.spec = BuildSqlJob(profile, 500.0 * kGiB, options, seed * 104729 + i,
                           "tpch2-q" + std::to_string(query) + "-" + std::to_string(i),
                           "tpch2");
    job.submit_time = 2.0 * i;
    workload.jobs.push_back(std::move(job));
  }
  return workload;
}

}  // namespace ursa
