// TPC-H-shaped workload generator (section 5, "Workloads"): 200 jobs drawn
// uniformly from 22 query templates, each run against a 200 GB / 500 GB /
// 1 TB database with probability 60% / 30% / 10%, submitted every 5 seconds.
// DAG depths range 2-10; individually-executed JCTs land in the paper's
// 3-297 s band (see tests/workloads_test.cc for the calibration check).
#ifndef SRC_WORKLOADS_TPCH_H_
#define SRC_WORKLOADS_TPCH_H_

#include "src/workloads/sql_builder.h"
#include "src/workloads/workload.h"

namespace ursa {

struct TpchWorkloadConfig {
  int num_jobs = 200;
  double submit_interval = 5.0;
  uint64_t seed = 42;
};

// One of the 22 query templates; `query` in [1, 22].
JobSpec MakeTpchQuery(int query, double db_bytes, uint64_t seed);

// The full 200-job online workload.
Workload MakeTpchWorkload(const TpchWorkloadConfig& config);

// TPC-H2 (section 5.2): 25 jobs with deeper DAGs (average depth ~7) and
// more heterogeneous, skewed tasks, submitted in a burst.
Workload MakeTpch2Workload(uint64_t seed);

}  // namespace ursa

#endif  // SRC_WORKLOADS_TPCH_H_
