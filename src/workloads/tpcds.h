// TPC-DS-shaped workload: 200 jobs like the TPC-H workload but with much
// deeper DAGs (paper: depth 5-43, mean 9), partitioned tables that produce
// many small tasks on the small databases, and single-job JCTs of 9-212 s.
#ifndef SRC_WORKLOADS_TPCDS_H_
#define SRC_WORKLOADS_TPCDS_H_

#include "src/workloads/sql_builder.h"
#include "src/workloads/workload.h"

namespace ursa {

struct TpcdsWorkloadConfig {
  int num_jobs = 200;
  double submit_interval = 5.0;
  uint64_t seed = 77;
};

JobSpec MakeTpcdsQuery(int query, double db_bytes, uint64_t seed);
Workload MakeTpcdsWorkload(const TpcdsWorkloadConfig& config);

}  // namespace ursa

#endif  // SRC_WORKLOADS_TPCDS_H_
