#include "src/workloads/mixed.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/workloads/graph.h"
#include "src/workloads/ml.h"
#include "src/workloads/tpch.h"

namespace ursa {

Workload MakeMixedWorkload(const MixedWorkloadConfig& config) {
  Workload workload;
  workload.name = "mixed";
  Rng rng(config.seed);

  // 32 TPC-H queries on the 200 GB database (70% of CPU).
  for (int i = 0; i < 32; ++i) {
    const int query = static_cast<int>(rng.UniformInt(static_cast<int64_t>(1), 22));
    WorkloadJob job;
    job.spec = MakeTpchQuery(query, 200.0 * kGiB, config.seed * 31 + i);
    job.spec.name = "mixed-" + job.spec.name + "-" + std::to_string(i);
    workload.jobs.push_back(std::move(job));
  }

  // 4 ML jobs (20% of CPU): 2x LR, 2x k-means.
  for (int i = 0; i < 2; ++i) {
    WorkloadJob lr;
    lr.spec = BuildMlJob(LrParams(), config.seed * 97 + i);
    lr.spec.name += "-" + std::to_string(i);
    workload.jobs.push_back(std::move(lr));
    WorkloadJob km;
    km.spec = BuildMlJob(KmeansParams(), config.seed * 101 + i);
    km.spec.name += "-" + std::to_string(i);
    workload.jobs.push_back(std::move(km));
  }

  // 2 graph jobs (10% of CPU): PR and CC.
  {
    WorkloadJob pr;
    pr.spec = BuildGraphJob(PagerankParams(), config.seed * 131);
    workload.jobs.push_back(std::move(pr));
    WorkloadJob cc;
    cc.spec = BuildGraphJob(CcParams(), config.seed * 137);
    workload.jobs.push_back(std::move(cc));
  }

  // Interleave deterministically and spread submissions.
  for (size_t i = workload.jobs.size(); i > 1; --i) {
    std::swap(workload.jobs[i - 1], workload.jobs[rng.UniformInt(i)]);
  }
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    workload.jobs[i].submit_time = config.submit_interval * static_cast<double>(i);
  }
  return workload;
}

}  // namespace ursa
