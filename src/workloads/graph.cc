#include "src/workloads/graph.h"

#include "src/common/logging.h"
#include "src/common/units.h"

namespace ursa {

GraphJobParams PagerankParams() {
  GraphJobParams params;
  params.name = "pagerank";
  params.iterations = 16;
  params.edge_bytes = 80.0 * kGiB;  // uk-union web graph scale.
  params.complexity = 2.5;
  params.message_fraction = 0.25;
  params.frontier_decay = 1.0;
  params.skew = 3.5;
  params.parallelism = 640;
  return params;
}

GraphJobParams CcParams() {
  GraphJobParams params;
  params.name = "cc";
  params.iterations = 12;
  params.edge_bytes = 50.0 * kGiB;  // Friendster scale.
  params.complexity = 1.8;
  params.message_fraction = 0.30;
  params.frontier_decay = 0.65;  // Label propagation converges.
  params.skew = 3.0;
  params.parallelism = 640;
  return params;
}

JobSpec BuildGraphJob(const GraphJobParams& params, uint64_t seed) {
  CHECK_GE(params.iterations, 1);
  JobSpec spec;
  spec.name = params.name;
  spec.klass = "graph";
  spec.seed = seed;
  spec.true_m2i = 1.4;
  spec.default_m2i = 2.0;
  spec.declared_memory_bytes = params.edge_bytes * 1.4;
  OpGraph& graph = spec.graph;

  const int p = params.parallelism;
  std::vector<double> edge_sizes(static_cast<size_t>(p), params.edge_bytes / p);
  const DataId edges = graph.CreateExternalData(std::move(edge_sizes), "edges");

  // Initialization: build vertex state + first messages from the edges.
  DataId messages = graph.CreateData(p, "msg0");
  OpCostModel init_cost;
  init_cost.cpu_complexity = 1.0;
  init_cost.output_selectivity = params.message_fraction;
  init_cost.output_skew = params.skew;
  OpHandle prev_cpu = graph.CreateOp(ResourceType::kCpu, "init")
                          .Read(edges)
                          .Create(messages)
                          .SetCost(init_cost)
                          .SetM2i(1.8);

  double frontier = 1.0;
  for (int k = 0; k < params.iterations; ++k) {
    const std::string suffix = std::to_string(k);
    // Shuffle messages to their destination vertices (skewed by degree).
    const DataId delivered = graph.CreateData(p, "delivered" + suffix);
    OpCostModel shuffle_cost;
    shuffle_cost.output_skew = params.skew;
    OpHandle shuffle = graph.CreateOp(ResourceType::kNetwork, "shuffle" + suffix)
                           .Read(messages)
                           .Create(delivered)
                           .SetCost(shuffle_cost);
    prev_cpu.To(shuffle, DepKind::kSync);

    // Apply messages and generate the next round (reads the cached edges).
    frontier *= params.frontier_decay;
    messages = graph.CreateData(p, "msg" + std::to_string(k + 1));
    OpCostModel apply_cost;
    apply_cost.cpu_complexity = params.complexity;
    // Message volume relative to the apply input (edges + delivered).
    const double delivered_bytes =
        params.edge_bytes * params.message_fraction;  // Approximate, pre-decay.
    const double next_bytes = params.edge_bytes * params.message_fraction * frontier;
    apply_cost.output_selectivity = next_bytes / (params.edge_bytes + delivered_bytes);
    apply_cost.output_skew = params.skew;
    apply_cost.fixed_cpu_work = 1e6;
    OpHandle apply = graph.CreateOp(ResourceType::kCpu, "apply" + suffix)
                         .Read(edges)
                         .Read(delivered)
                         .Create(messages)
                         .SetCost(apply_cost)
                         .SetM2i(1.8);
    shuffle.To(apply, DepKind::kAsync);
    prev_cpu = apply;
  }

  OpHandle write = graph.CreateOp(ResourceType::kDisk, "write")
                       .Read(messages)
                       .SetParallelism(p);
  prev_cpu.To(write, DepKind::kAsync);

  graph.Validate();
  return spec;
}

}  // namespace ursa
