#include "src/workloads/sql_builder.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace ursa {

namespace {

int Parallelism(double bytes, const SqlBuildOptions& options) {
  const int p = static_cast<int>(std::ceil(bytes / options.bytes_per_partition));
  return std::clamp(p, options.min_parallelism, options.max_parallelism);
}

// External dataset with mild per-partition jitter (HDFS blocks are nearly
// uniform; real skew enters at shuffles).
DataId MakeExternalTable(OpGraph& graph, double bytes, int partitions, Rng& rng,
                         const std::string& name) {
  std::vector<double> sizes(static_cast<size_t>(partitions));
  double total = 0.0;
  for (double& s : sizes) {
    s = rng.Uniform(0.85, 1.15);
    total += s;
  }
  for (double& s : sizes) {
    s *= bytes / total;
  }
  return graph.CreateExternalData(std::move(sizes), name);
}

}  // namespace

JobSpec BuildSqlJob(const SqlQueryProfile& profile, double db_bytes,
                    const SqlBuildOptions& options, uint64_t seed, const std::string& name,
                    const std::string& klass) {
  CHECK_GE(profile.depth, 1);
  CHECK_GE(profile.tables, 1);
  Rng rng(seed);
  JobSpec spec;
  spec.name = name;
  spec.klass = klass;
  spec.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  spec.true_m2i = options.true_m2i;
  spec.default_m2i = options.default_m2i;
  OpGraph& graph = spec.graph;

  const double touched = db_bytes * profile.touched_fraction;
  spec.declared_memory_bytes =
      std::max(touched * options.declared_memory_factor, 4.0 * 1024 * 1024 * 1024);

  // Table byte shares: the first (fact) table dominates.
  std::vector<double> table_bytes(static_cast<size_t>(profile.tables));
  if (profile.tables == 1) {
    table_bytes[0] = touched;
  } else {
    table_bytes[0] = touched * 0.6;
    const double rest = touched * 0.4 / (profile.tables - 1);
    for (int t = 1; t < profile.tables; ++t) {
      table_bytes[static_cast<size_t>(t)] = rest;
    }
  }

  // Scans: external read + filter/project CPU op per table.
  struct ScanResult {
    OpHandle op;
    DataId output;
    int parallelism;
  };
  std::vector<ScanResult> scans;
  for (int t = 0; t < profile.tables; ++t) {
    const double bytes = table_bytes[static_cast<size_t>(t)];
    const int p = Parallelism(bytes, options);
    const DataId input =
        MakeExternalTable(graph, bytes, p, rng, "table" + std::to_string(t));
    const DataId filtered = graph.CreateData(p, "scan" + std::to_string(t));
    OpCostModel cost;
    cost.cpu_complexity = profile.cpu_complexity * rng.Uniform(0.5, 0.9);
    cost.output_selectivity = profile.scan_selectivity * rng.Uniform(0.7, 1.3);
    cost.fixed_cpu_work = 2e6;  // Decompression / codegen setup.
    OpHandle scan = graph.CreateOp(ResourceType::kCpu, "scan" + std::to_string(t))
                        .Read(input)
                        .Create(filtered)
                        .SetCost(cost)
                        .SetM2i(2.0);
    scans.push_back(ScanResult{scan, filtered, p});
  }

  // Left-deep join/aggregate tree over `depth` shuffle levels.
  OpHandle current_op = scans[0].op;
  DataId current_data = scans[0].output;
  double current_bytes = table_bytes[0] * profile.scan_selectivity;
  int next_scan = 1;
  for (int level = 0; level < profile.depth; ++level) {
    const bool last = level == profile.depth - 1;
    int p = Parallelism(current_bytes, options);
    if (last) {
      p = std::max(options.min_parallelism, p / 8);  // Final aggregation is narrow.
    }
    const std::string suffix = std::to_string(level);
    const DataId shuffled = graph.CreateData(p, "shuffled" + suffix);
    OpCostModel shuffle_cost;
    shuffle_cost.output_skew = profile.skew;
    OpHandle shuffle = graph.CreateOp(ResourceType::kNetwork, "shuffle" + suffix)
                           .Read(current_data)
                           .Create(shuffled)
                           .SetCost(shuffle_cost);
    current_op.To(shuffle, DepKind::kSync);

    const DataId joined = graph.CreateData(p, "joined" + suffix);
    OpCostModel join_cost;
    join_cost.cpu_complexity = profile.cpu_complexity * rng.Uniform(0.7, 1.4);
    join_cost.output_selectivity =
        last ? 0.05 : profile.join_selectivity * rng.Uniform(0.6, 1.3);
    join_cost.fixed_cpu_work = 1e6;
    OpHandle join = graph.CreateOp(ResourceType::kCpu, (last ? "agg" : "join") + suffix)
                        .Read(shuffled)
                        .Create(joined)
                        .SetCost(join_cost)
                        // Paper: m2i = 1 + s for joins, s = join selectivity.
                        .SetM2i(last ? 2.0 : 1.0 + profile.join_selectivity);
    shuffle.To(join, DepKind::kAsync);

    // Join in one extra scanned table per level while available.
    if (!last && next_scan < profile.tables) {
      ScanResult& side = scans[static_cast<size_t>(next_scan)];
      const DataId side_shuffled = graph.CreateData(p, "sideshuf" + suffix);
      OpHandle side_shuffle =
          graph.CreateOp(ResourceType::kNetwork, "sideshuffle" + suffix)
              .Read(side.output)
              .Create(side_shuffled)
              .SetCost(shuffle_cost);
      side.op.To(side_shuffle, DepKind::kSync);
      join.Read(side_shuffled);
      side_shuffle.To(join, DepKind::kAsync);
      current_bytes += table_bytes[static_cast<size_t>(next_scan)] * profile.scan_selectivity;
      ++next_scan;
    }

    current_bytes *= join_cost.output_selectivity;
    current_op = join;
    current_data = joined;
  }

  // Final result written to disk (section 4.2.1: output far smaller than
  // input; disk is not a bottleneck).
  const int out_p = graph.dataset(current_data).partitions;
  OpHandle write = graph.CreateOp(ResourceType::kDisk, "write")
                       .Read(current_data)
                       .SetParallelism(out_p);
  current_op.To(write, DepKind::kAsync);

  graph.Validate();
  return spec;
}

}  // namespace ursa
