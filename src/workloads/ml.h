// Iterative machine-learning jobs (LR, k-means): per iteration, a broadcast
// of the model, a CPU-heavy gradient/assignment pass over the cached
// training data, and a network aggregation - producing the regular
// CPU/network alternation of Figures 1a/1b.
#ifndef SRC_WORKLOADS_ML_H_
#define SRC_WORKLOADS_ML_H_

#include "src/workloads/workload.h"

namespace ursa {

struct MlJobParams {
  std::string name = "lr";
  int iterations = 12;
  double dataset_bytes = 50.0 * 1024 * 1024 * 1024;
  double model_bytes = 64.0 * 1024 * 1024;
  // CPU byte-equivalents of work per training-data byte per iteration.
  double complexity = 6.0;
  int parallelism = 320;
  // Gradient compression: aggregate bytes produced per task relative to the
  // model size.
  double gradient_fraction = 0.5;
};

// Logistic regression on a webspam-sized dataset (paper's LR job).
MlJobParams LrParams();
// k-means on an mnist8m-sized dataset.
MlJobParams KmeansParams();

JobSpec BuildMlJob(const MlJobParams& params, uint64_t seed);

}  // namespace ursa

#endif  // SRC_WORKLOADS_ML_H_
