// Shared builder for SQL-style analytical jobs (TPC-H / TPC-DS shapes):
// a left-deep tree of scans, shuffles and join/aggregate stages, ending in a
// small aggregation plus a disk write of the final result. The scheduler
// only ever sees the DAG shape and data volumes, so matching the paper's
// reported distributions (DAG depth, per-stage parallelism, intermediate
// sizes, skew) exercises the same scheduling decisions as real queries.
#ifndef SRC_WORKLOADS_SQL_BUILDER_H_
#define SRC_WORKLOADS_SQL_BUILDER_H_

#include <string>

#include "src/dag/job.h"

namespace ursa {

struct SqlQueryProfile {
  int query_id = 0;
  // Number of join/aggregate levels after the scans; the op-tree depth the
  // paper reports is roughly depth + 1.
  int depth = 3;
  int tables = 2;
  // Fraction of the database bytes this query reads after column pruning.
  double touched_fraction = 0.15;
  double scan_selectivity = 0.5;
  double join_selectivity = 0.6;
  // CPU byte-equivalents of work per input byte for join/agg stages.
  double cpu_complexity = 2.0;
  // Skew of shuffle partition sizes (1 = uniform).
  double skew = 1.5;
};

struct SqlBuildOptions {
  // Target bytes per scan partition (controls task granularity).
  double bytes_per_partition = 256.0 * 1024 * 1024;
  int max_parallelism = 640;
  int min_parallelism = 4;
  // User memory declaration M(j) = declared_memory_factor * touched bytes.
  double declared_memory_factor = 1.5;
  double true_m2i = 1.1;
  double default_m2i = 2.0;
};

// Builds one SQL job over a database of `db_bytes`.
JobSpec BuildSqlJob(const SqlQueryProfile& profile, double db_bytes,
                    const SqlBuildOptions& options, uint64_t seed, const std::string& name,
                    const std::string& klass);

}  // namespace ursa

#endif  // SRC_WORKLOADS_SQL_BUILDER_H_
