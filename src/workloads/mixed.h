// The Mixed workload of section 5.1.2: 2 graph-analytics jobs (PR, CC),
// 4 ML jobs (2x k-means, 2x LR) and 32 randomly-chosen TPC-H queries, sized
// so TPC-H / ML / graph account for roughly 70% / 20% / 10% of the total CPU
// consumption.
#ifndef SRC_WORKLOADS_MIXED_H_
#define SRC_WORKLOADS_MIXED_H_

#include "src/workloads/workload.h"

namespace ursa {

struct MixedWorkloadConfig {
  uint64_t seed = 2020;
  double submit_interval = 2.0;
};

Workload MakeMixedWorkload(const MixedWorkloadConfig& config);

}  // namespace ursa

#endif  // SRC_WORKLOADS_MIXED_H_
