// Chaos fault-injection harness.
//
// A FaultPlan is a list of timed fault events — worker crashes, crash +
// recover cycles, transient monotask failures and degraded-rate (straggler)
// windows. Plans are either constructed explicitly or generated from a seed
// with MakeRandomFaultPlan, so chaos experiments are fully reproducible. The
// FaultInjector arms every event on the simulator; the failure detector and
// the recovery machinery then react with no further help from the injector.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/exec/cluster.h"
#include "src/fault/fault_stats.h"
#include "src/sim/simulator.h"

namespace ursa {

enum class FaultKind : int {
  kCrash = 0,         // Worker dies and stays dead.
  kCrashRecover = 1,  // Worker dies, rejoins after `downtime` seconds.
  kTransient = 2,     // Next `count` monotasks completing on the worker fail.
  kDegrade = 3,       // Worker runs at `factor` speed for `duration` seconds.
  // Control-plane faults (DESIGN.md section 14). `worker` is ignored; the
  // scheduler loses its live state and recovers from checkpoint + journal
  // (or full restarts every job when journaling is off).
  kSchedulerCrash = 4,         // Fast failover: recovery starts immediately.
  kSchedulerCrashRecover = 5,  // Scheduler stays down `downtime` seconds first.
};

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  double time = 0.0;
  WorkerId worker = kInvalidId;
  double downtime = 0.0;   // kCrashRecover.
  int count = 1;           // kTransient.
  double duration = 0.0;   // kDegrade.
  double factor = 1.0;     // kDegrade speed factor in (0, 1].
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  bool empty() const { return events.empty(); }
};

struct FaultPlanConfig {
  uint64_t seed = 1;
  int num_workers = 20;
  // Events are drawn uniformly in [horizon_start, horizon_end).
  double horizon_start = 5.0;
  double horizon_end = 100.0;
  int crashes = 0;
  int crash_recovers = 0;
  int transients = 0;
  int degrades = 0;
  double min_downtime = 5.0;
  double max_downtime = 30.0;
  int transient_count = 1;      // Monotask failures injected per transient event.
  double degrade_factor = 0.5;  // Speed multiplier during a degrade window.
  double degrade_duration = 10.0;
  // Control-plane faults: scheduler crashes with immediate failover and
  // crashes that keep the scheduler down for a drawn downtime.
  int sched_crashes = 0;
  int sched_crash_recovers = 0;
  double min_sched_downtime = 2.0;
  double max_sched_downtime = 10.0;
};

// Deterministic random plan. Permanently-crashed workers are distinct and
// capped below half the cluster so the workload always remains schedulable.
// CHECK-fails on malformed configs: an empty or inverted horizon, negative
// event counts or downtimes, or a degrade factor outside (0, 1].
FaultPlan MakeRandomFaultPlan(const FaultPlanConfig& config);

class FaultInjector {
 public:
  // `stats` may be null; when set, injected events are counted there.
  FaultInjector(Simulator* sim, Cluster* cluster, FaultPlan plan, FaultStats* stats);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every event of the plan on the simulator. The injector must
  // outlive the simulation run. A plan containing scheduler-crash events
  // requires a scheduler crash handler.
  void Arm();

  // Receives `downtime` for each kSchedulerCrash{Recover} event; typically
  // bound to UrsaScheduler::InjectSchedulerCrash.
  void set_scheduler_crash_handler(std::function<void(double)> handler) {
    scheduler_crash_handler_ = std::move(handler);
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  void Apply(const FaultEvent& event);

  Simulator* sim_;
  Cluster* cluster_;
  FaultPlan plan_;
  FaultStats* stats_;
  std::function<void(double)> scheduler_crash_handler_;
  bool armed_ = false;
};

}  // namespace ursa

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
