#include "src/fault/fault_injector.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace ursa {

FaultPlan MakeRandomFaultPlan(const FaultPlanConfig& config) {
  // Reject malformed plans up front instead of producing a quietly-empty or
  // crash-prone event list (events drawn from an inverted horizon would all
  // land at the same instant; negative counts would silently inject nothing).
  CHECK_GT(config.num_workers, 0);
  CHECK_GE(config.horizon_start, 0.0);
  CHECK_GT(config.horizon_end, config.horizon_start)
      << "fault horizon is empty or inverted";
  CHECK_GE(config.crashes, 0);
  CHECK_GE(config.crash_recovers, 0);
  CHECK_GE(config.transients, 0);
  CHECK_GE(config.degrades, 0);
  CHECK_GE(config.sched_crashes, 0);
  CHECK_GE(config.sched_crash_recovers, 0);
  CHECK_GE(config.transient_count, 0);
  CHECK_GE(config.min_downtime, 0.0);
  CHECK_GE(config.max_downtime, config.min_downtime);
  CHECK_GE(config.min_sched_downtime, 0.0);
  CHECK_GE(config.max_sched_downtime, config.min_sched_downtime);
  CHECK_GE(config.degrade_duration, 0.0);
  CHECK_GT(config.degrade_factor, 0.0);
  CHECK_LE(config.degrade_factor, 1.0);
  FaultPlan plan;
  Rng rng(config.seed);
  auto draw_time = [&] { return rng.Uniform(config.horizon_start, config.horizon_end); };

  // Permanent crashes hit distinct workers and never a majority of the
  // cluster, so at least one worker survives to carry the workload.
  const int max_crashes = std::max(0, (config.num_workers - 1) / 2);
  const int crashes = std::min(config.crashes, max_crashes);
  if (crashes < config.crashes) {
    LOG(Warning) << "fault plan capped crashes at " << crashes << " of "
                 << config.num_workers << " workers";
  }
  std::vector<bool> crashed(static_cast<size_t>(config.num_workers), false);
  for (int i = 0; i < crashes; ++i) {
    WorkerId w;
    do {
      w = static_cast<WorkerId>(rng.UniformInt(static_cast<uint64_t>(config.num_workers)));
    } while (crashed[static_cast<size_t>(w)]);
    crashed[static_cast<size_t>(w)] = true;
    FaultEvent event;
    event.kind = FaultKind::kCrash;
    event.time = draw_time();
    event.worker = w;
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.crash_recovers; ++i) {
    WorkerId w;
    do {
      w = static_cast<WorkerId>(rng.UniformInt(static_cast<uint64_t>(config.num_workers)));
    } while (crashed[static_cast<size_t>(w)]);
    FaultEvent event;
    event.kind = FaultKind::kCrashRecover;
    event.time = draw_time();
    event.worker = w;
    event.downtime = rng.Uniform(config.min_downtime, config.max_downtime);
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.transients; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kTransient;
    event.time = draw_time();
    event.worker =
        static_cast<WorkerId>(rng.UniformInt(static_cast<uint64_t>(config.num_workers)));
    event.count = config.transient_count;
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.degrades; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kDegrade;
    event.time = draw_time();
    event.worker =
        static_cast<WorkerId>(rng.UniformInt(static_cast<uint64_t>(config.num_workers)));
    event.duration = config.degrade_duration;
    event.factor = config.degrade_factor;
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.sched_crashes; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kSchedulerCrash;
    event.time = draw_time();
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.sched_crash_recovers; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kSchedulerCrashRecover;
    event.time = draw_time();
    event.downtime = rng.Uniform(config.min_sched_downtime, config.max_sched_downtime);
    plan.events.push_back(event);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  return plan;
}

FaultInjector::FaultInjector(Simulator* sim, Cluster* cluster, FaultPlan plan,
                             FaultStats* stats)
    : sim_(sim), cluster_(cluster), plan_(std::move(plan)), stats_(stats) {}

void FaultInjector::Arm() {
  CHECK(!armed_) << "fault plan already armed";
  armed_ = true;
  for (const FaultEvent& event : plan_.events) {
    if (event.kind == FaultKind::kSchedulerCrash ||
        event.kind == FaultKind::kSchedulerCrashRecover) {
      CHECK(scheduler_crash_handler_)
          << "fault plan injects scheduler crashes but no handler is set";
    } else {
      CHECK_GE(event.worker, 0);
      CHECK_LT(event.worker, cluster_->size());
    }
    sim_->ScheduleAt(event.time, [this, event] { Apply(event); });
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  if (event.kind == FaultKind::kSchedulerCrash ||
      event.kind == FaultKind::kSchedulerCrashRecover) {
    // Control-plane fault: no worker involved. The scheduler records its own
    // crash/recovery counters.
    scheduler_crash_handler_(
        event.kind == FaultKind::kSchedulerCrash ? 0.0 : event.downtime);
    return;
  }
  Worker& worker = cluster_->worker(event.worker);
  switch (event.kind) {
    case FaultKind::kCrash:
      if (worker.failed()) {
        return;  // Already down; crashing twice is a no-op.
      }
      worker.Fail();
      if (stats_ != nullptr) {
        stats_->RecordCrashInjected();
      }
      break;
    case FaultKind::kCrashRecover:
      if (worker.failed()) {
        return;
      }
      worker.Fail();
      if (stats_ != nullptr) {
        stats_->RecordCrashInjected();
      }
      sim_->Schedule(event.downtime, [this, w = event.worker] {
        cluster_->worker(w).Recover();
        if (stats_ != nullptr) {
          stats_->RecordRecoveryInjected();
        }
      });
      break;
    case FaultKind::kTransient:
      worker.InjectTransientFailures(event.count);
      if (stats_ != nullptr) {
        stats_->RecordTransientsInjected(event.count);
      }
      break;
    case FaultKind::kDegrade: {
      CHECK_GT(event.factor, 0.0);
      worker.set_speed_factor(event.factor);
      if (stats_ != nullptr) {
        stats_->RecordDegradeInjected();
      }
      sim_->Schedule(event.duration, [this, w = event.worker] {
        cluster_->worker(w).set_speed_factor(1.0);
      });
      break;
    }
    case FaultKind::kSchedulerCrash:
    case FaultKind::kSchedulerCrashRecover:
      break;  // Dispatched to the scheduler crash handler above.
  }
}

}  // namespace ursa
