#include "src/fault/fault_injector.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace ursa {

FaultPlan MakeRandomFaultPlan(const FaultPlanConfig& config) {
  CHECK_GT(config.num_workers, 0);
  CHECK_GE(config.horizon_end, config.horizon_start);
  FaultPlan plan;
  Rng rng(config.seed);
  auto draw_time = [&] { return rng.Uniform(config.horizon_start, config.horizon_end); };

  // Permanent crashes hit distinct workers and never a majority of the
  // cluster, so at least one worker survives to carry the workload.
  const int max_crashes = std::max(0, (config.num_workers - 1) / 2);
  const int crashes = std::min(config.crashes, max_crashes);
  if (crashes < config.crashes) {
    LOG(Warning) << "fault plan capped crashes at " << crashes << " of "
                 << config.num_workers << " workers";
  }
  std::vector<bool> crashed(static_cast<size_t>(config.num_workers), false);
  for (int i = 0; i < crashes; ++i) {
    WorkerId w;
    do {
      w = static_cast<WorkerId>(rng.UniformInt(static_cast<uint64_t>(config.num_workers)));
    } while (crashed[static_cast<size_t>(w)]);
    crashed[static_cast<size_t>(w)] = true;
    FaultEvent event;
    event.kind = FaultKind::kCrash;
    event.time = draw_time();
    event.worker = w;
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.crash_recovers; ++i) {
    WorkerId w;
    do {
      w = static_cast<WorkerId>(rng.UniformInt(static_cast<uint64_t>(config.num_workers)));
    } while (crashed[static_cast<size_t>(w)]);
    FaultEvent event;
    event.kind = FaultKind::kCrashRecover;
    event.time = draw_time();
    event.worker = w;
    event.downtime = rng.Uniform(config.min_downtime, config.max_downtime);
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.transients; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kTransient;
    event.time = draw_time();
    event.worker =
        static_cast<WorkerId>(rng.UniformInt(static_cast<uint64_t>(config.num_workers)));
    event.count = config.transient_count;
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.degrades; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kDegrade;
    event.time = draw_time();
    event.worker =
        static_cast<WorkerId>(rng.UniformInt(static_cast<uint64_t>(config.num_workers)));
    event.duration = config.degrade_duration;
    event.factor = config.degrade_factor;
    plan.events.push_back(event);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  return plan;
}

FaultInjector::FaultInjector(Simulator* sim, Cluster* cluster, FaultPlan plan,
                             FaultStats* stats)
    : sim_(sim), cluster_(cluster), plan_(std::move(plan)), stats_(stats) {}

void FaultInjector::Arm() {
  CHECK(!armed_) << "fault plan already armed";
  armed_ = true;
  for (const FaultEvent& event : plan_.events) {
    CHECK_GE(event.worker, 0);
    CHECK_LT(event.worker, cluster_->size());
    sim_->ScheduleAt(event.time, [this, event] { Apply(event); });
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  Worker& worker = cluster_->worker(event.worker);
  switch (event.kind) {
    case FaultKind::kCrash:
      if (worker.failed()) {
        return;  // Already down; crashing twice is a no-op.
      }
      worker.Fail();
      if (stats_ != nullptr) {
        stats_->RecordCrashInjected();
      }
      break;
    case FaultKind::kCrashRecover:
      if (worker.failed()) {
        return;
      }
      worker.Fail();
      if (stats_ != nullptr) {
        stats_->RecordCrashInjected();
      }
      sim_->Schedule(event.downtime, [this, w = event.worker] {
        cluster_->worker(w).Recover();
        if (stats_ != nullptr) {
          stats_->RecordRecoveryInjected();
        }
      });
      break;
    case FaultKind::kTransient:
      worker.InjectTransientFailures(event.count);
      if (stats_ != nullptr) {
        stats_->RecordTransientsInjected(event.count);
      }
      break;
    case FaultKind::kDegrade: {
      CHECK_GT(event.factor, 0.0);
      worker.set_speed_factor(event.factor);
      if (stats_ != nullptr) {
        stats_->RecordDegradeInjected();
      }
      sim_->Schedule(event.duration, [this, w = event.worker] {
        cluster_->worker(w).set_speed_factor(1.0);
      });
      break;
    }
  }
}

}  // namespace ursa
