// Counters and time series describing fault-tolerance behavior of one run:
// injected faults, heartbeat detections, monotask retries, lineage-recovery
// resets and full restarts. The scheduler, job managers, failure detector and
// fault injector all write into one shared FaultStats instance so the metrics
// layer can report recovery behavior instead of merely asserting it.
//
// Split in two (DESIGN.md section 10): FaultCounters is the plain copyable
// value — what the metrics layer reads and ExperimentResult carries — and
// FaultStats is the internally synchronized recorder the runtime writes
// through. Readers take a Snapshot(); no reference to guarded state escapes.
#ifndef SRC_FAULT_FAULT_STATS_H_
#define SRC_FAULT_FAULT_STATS_H_

#include <cstdint>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/time_series.h"
#include "src/dag/types.h"

namespace ursa {

struct FaultCounters {
  // --- Injected faults (written by the FaultInjector). ---
  int crashes_injected = 0;
  int recoveries_injected = 0;
  int transients_injected = 0;
  int degrades_injected = 0;

  // --- Detection (written by the scheduler / failure detector). ---
  int detections = 0;
  int rejoins = 0;
  // Sum over detections of (declare time - actual failure time).
  double total_detection_latency = 0.0;

  // --- Monotask-level failures (written by job managers). ---
  int transient_failures = 0;   // Monotask failed on a live worker.
  int worker_loss_failures = 0; // Monotask lost because its worker died.
  int retries = 0;              // Backoff resubmissions to the same worker.
  int escalations = 0;          // Task re-placements after exhausted retries.

  // --- Recovery (written by the scheduler / job managers). ---
  int tasks_reset = 0;                 // Tasks re-executed by lineage recovery.
  int full_restart_equivalent_tasks = 0;  // Started tasks a full restart would redo.
  int full_restarts = 0;               // Whole-job restarts (lineage disabled).
  // Per recovery episode: detection -> all reset tasks re-completed.
  std::vector<double> recovery_latencies;

  // --- Speculation (written by the speculation manager / job managers). ---
  int speculations_launched = 0;
  int speculations_won = 0;        // Copy finished first; original cancelled.
  int speculations_lost = 0;       // Original finished first; copy cancelled.
  int speculations_cancelled = 0;  // Copy torn down (worker failure, reset, abort).
  // Duplicate work discarded by first-finisher-wins cancellation, per
  // monotask resource: bytes actually processed by the losing side and the
  // busy seconds it held the resource for.
  double wasted_bytes[kNumMonotaskResources] = {};
  double wasted_seconds[kNumMonotaskResources] = {};

  // --- Control plane (written by the message layer / scheduler). ---
  int msgs_sent = 0;        // Message sends (including retransmissions).
  int msgs_lost = 0;        // Sends dropped by the fault model.
  int msgs_duplicated = 0;  // Sends delivered twice by the fault model.
  int msgs_delayed = 0;     // Sends hit by the extra-delay fault.
  int msgs_fenced = 0;      // Deliveries discarded by epoch/incarnation fencing.
  int dup_suppressed = 0;   // Duplicate deliveries absorbed by dedup.
  int retransmits = 0;      // Ack-timeout retransmissions.

  // --- Scheduler crash-recovery (written by the scheduler). ---
  int scheduler_crashes = 0;
  int scheduler_recoveries = 0;
  int checkpoints = 0;            // Periodic journal checkpoints taken.
  int64_t journal_records = 0;    // Decision-journal records appended.
  int redispatched_monotasks = 0; // Dispatches re-sent by post-crash resync.
  // Per crash episode: crash -> scheduler back up (downtime + replay).
  std::vector<double> scheduler_recovery_latencies;

  // --- Cumulative time series for post-run plots. ---
  StepTracker detections_series;
  StepTracker retries_series;
  StepTracker reexec_series;
  StepTracker wasted_series;  // Cumulative wasted busy seconds.

  double avg_detection_latency() const {
    return detections > 0 ? total_detection_latency / detections : 0.0;
  }
  double avg_recovery_latency() const {
    if (recovery_latencies.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (double v : recovery_latencies) {
      sum += v;
    }
    return sum / static_cast<double>(recovery_latencies.size());
  }
  double total_wasted_seconds() const {
    double sum = 0.0;
    for (double v : wasted_seconds) {
      sum += v;
    }
    return sum;
  }
  double total_wasted_bytes() const {
    double sum = 0.0;
    for (double v : wasted_bytes) {
      sum += v;
    }
    return sum;
  }
  int speculations_active() const {
    return speculations_launched - speculations_won - speculations_lost -
           speculations_cancelled;
  }
  double avg_scheduler_recovery_latency() const {
    if (scheduler_recovery_latencies.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (double v : scheduler_recovery_latencies) {
      sum += v;
    }
    return sum / static_cast<double>(scheduler_recovery_latencies.size());
  }
  bool any_faults() const {
    return crashes_injected + recoveries_injected + transients_injected + degrades_injected +
               detections + transient_failures + worker_loss_failures + full_restarts +
               speculations_launched + scheduler_crashes + msgs_lost + msgs_duplicated +
               msgs_delayed >
           0;
  }
};

// Thread-safe recorder. Every mutation is one short critical section; the
// lock is never held across foreign code. Sits below UrsaScheduler::state_mu_
// in the lock hierarchy (see src/common/mutex.h) because job managers record
// into it from inside scheduler-driven callbacks.
class FaultStats {
 public:
  // --- Injection (FaultInjector). ---
  void RecordCrashInjected() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.crashes_injected;
  }
  void RecordRecoveryInjected() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.recoveries_injected;
  }
  void RecordTransientsInjected(int count) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    c_.transients_injected += count;
  }
  void RecordDegradeInjected() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.degrades_injected;
  }

  // --- Detection (scheduler / failure detector). ---
  void RecordDetection(double now, double latency) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.detections;
    c_.total_detection_latency += latency;
    c_.detections_series.Set(now, static_cast<double>(c_.detections));
  }
  void RecordRejoin([[maybe_unused]] double now) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.rejoins;
  }

  // --- Monotask-level failures (job managers). ---
  void RecordTransientFailure() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.transient_failures;
  }
  void RecordWorkerLossFailure() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.worker_loss_failures;
  }
  void RecordRetry(double now) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.retries;
    c_.retries_series.Set(now, static_cast<double>(c_.retries));
  }
  void RecordEscalation() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.escalations;
  }

  // --- Recovery (scheduler / job managers). ---
  void RecordTasksReset(double now, int count) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    c_.tasks_reset += count;
    c_.reexec_series.Set(now, static_cast<double>(c_.tasks_reset));
  }
  void RecordFullRestartEquivalentTasks(int count) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    c_.full_restart_equivalent_tasks += count;
  }
  void RecordFullRestart() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.full_restarts;
  }
  void RecordRecoveryLatency(double seconds) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    c_.recovery_latencies.push_back(seconds);
  }

  // --- Control plane (message layer). ---
  void RecordMsgSent() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.msgs_sent;
  }
  void RecordMsgLost() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.msgs_lost;
  }
  void RecordMsgDuplicated() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.msgs_duplicated;
  }
  void RecordMsgDelayed() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.msgs_delayed;
  }
  void RecordMsgFenced() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.msgs_fenced;
  }
  void RecordDupSuppressed() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.dup_suppressed;
  }
  void RecordRetransmit() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.retransmits;
  }

  // --- Scheduler crash-recovery (scheduler). ---
  void RecordSchedulerCrash() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.scheduler_crashes;
  }
  void RecordSchedulerRecovery(double latency) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.scheduler_recoveries;
    c_.scheduler_recovery_latencies.push_back(latency);
  }
  void RecordCheckpoint(int64_t journal_records) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.checkpoints;
    c_.journal_records = journal_records;
  }
  void RecordJournalSize(int64_t journal_records) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    c_.journal_records = journal_records;
  }
  void RecordRedispatched(int count) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    c_.redispatched_monotasks += count;
  }

  // --- Speculation (speculation manager). ---
  void RecordSpeculationLaunched() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.speculations_launched;
  }
  void RecordSpeculationWon() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.speculations_won;
  }
  void RecordSpeculationLost() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.speculations_lost;
  }
  void RecordSpeculationCancelled() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++c_.speculations_cancelled;
  }
  void RecordWastedWork(double now, ResourceType r, double bytes, double seconds)
      EXCLUDES(mu_) {
    MutexLock lock(mu_);
    c_.wasted_bytes[static_cast<int>(r)] += bytes;
    c_.wasted_seconds[static_cast<int>(r)] += seconds;
    c_.wasted_series.Set(now, c_.total_wasted_seconds());
  }

  // Copy of every counter and series at this instant.
  FaultCounters Snapshot() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return c_;
  }

 private:
  mutable Mutex mu_;
  FaultCounters c_ GUARDED_BY(mu_);
};

}  // namespace ursa

#endif  // SRC_FAULT_FAULT_STATS_H_
