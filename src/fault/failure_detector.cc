#include "src/fault/failure_detector.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa {

FailureDetector::FailureDetector(Simulator* sim, Cluster* cluster,
                                 const FailureDetectorConfig& config)
    : sim_(sim), cluster_(cluster), config_(config) {
  CHECK_GT(config_.heartbeat_interval, 0.0);
  CHECK_GT(config_.detect_timeout, config_.heartbeat_interval)
      << "detect_timeout must cover at least one missed heartbeat";
  last_heartbeat_.resize(static_cast<size_t>(cluster_->size()), 0.0);
  dead_.resize(static_cast<size_t>(cluster_->size()), false);
}

void FailureDetector::Activate(std::function<bool()> active) {
  active_ = std::move(active);
  if (running_) {
    return;
  }
  running_ = true;
  const double now = sim_->Now();
  for (int w = 0; w < cluster_->size(); ++w) {
    // Grace period: a silent gap while the detector was idle is not evidence
    // of failure.
    last_heartbeat_[static_cast<size_t>(w)] = now;
    cluster_->worker(static_cast<WorkerId>(w))
        .StartHeartbeats(config_.heartbeat_interval,
                         [this](WorkerId id) {
                           if (transport_) {
                             // Route the beat through the control-plane
                             // transport; a dropped closure is a lost beat.
                             transport_(id, [this, id] { OnHeartbeat(id); });
                           } else {
                             OnHeartbeat(id);
                           }
                         },
                         [this] { return active_ && active_(); });
  }
  ScheduleSweep();
}

void FailureDetector::Reset(double now) {
  std::fill(last_heartbeat_.begin(), last_heartbeat_.end(), now);
  for (int w = 0; w < cluster_->size(); ++w) {
    // Workers that are down stay declared-dead (the recovering scheduler
    // re-handles them immediately), so their comeback heartbeat still fires
    // the rejoin callback. Live workers restart from a clean slate.
    dead_[static_cast<size_t>(w)] = cluster_->worker(static_cast<WorkerId>(w)).failed();
  }
}

void FailureDetector::OnHeartbeat(WorkerId w) {
  last_heartbeat_[static_cast<size_t>(w)] = sim_->Now();
  if (dead_[static_cast<size_t>(w)]) {
    // The worker came back after a downtime: re-register it.
    dead_[static_cast<size_t>(w)] = false;
    if (on_rejoin_) {
      on_rejoin_(w);
    }
  }
}

void FailureDetector::ScheduleSweep() {
  // Sweep at least twice per timeout so detection latency stays within
  // detect_timeout + sweep_interval.
  const double sweep = std::min(config_.heartbeat_interval, config_.detect_timeout / 2.0);
  sim_->Schedule(sweep, [this] {
    if (!active_ || !active_()) {
      running_ = false;
      return;
    }
    Sweep();
    ScheduleSweep();
  });
}

void FailureDetector::Sweep() {
  const double now = sim_->Now();
  for (int w = 0; w < cluster_->size(); ++w) {
    const size_t i = static_cast<size_t>(w);
    if (dead_[i]) {
      continue;
    }
    const double silence = now - last_heartbeat_[i];
    if (silence > config_.detect_timeout) {
      dead_[i] = true;
      ++detections_;
      if (on_death_) {
        on_death_(static_cast<WorkerId>(w), silence);
      }
    }
  }
}

}  // namespace ursa
