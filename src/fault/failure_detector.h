// Heartbeat-based worker failure detection (section 4.3).
//
// Every worker emits a heartbeat into the simulator each heartbeat_interval
// while it is alive; the detector sweeps the cluster and declares a worker
// dead once it has been silent for longer than detect_timeout. A heartbeat
// arriving from a declared-dead worker means the machine came back: the
// detector un-declares it and fires the rejoin callback so the scheduler can
// re-admit it to placement.
//
// Heartbeat and sweep chains are gated on an activity predicate (typically
// "the scheduler has active or waiting jobs") so the event queue can drain
// and Simulator::Run() terminates once the workload finishes.
#ifndef SRC_FAULT_FAILURE_DETECTOR_H_
#define SRC_FAULT_FAILURE_DETECTOR_H_

#include <functional>
#include <vector>

#include "src/exec/cluster.h"
#include "src/sim/simulator.h"

namespace ursa {

struct FailureDetectorConfig {
  // Seconds between heartbeats of a live worker.
  double heartbeat_interval = 0.5;
  // A worker silent for longer than this is declared dead.
  double detect_timeout = 2.0;
};

// Fault-tolerance policy knobs shared by the scheduler and job managers.
struct FaultToleranceConfig {
  // When true the scheduler detects worker deaths from missed heartbeats
  // instead of relying on an external FailWorker() call.
  bool enable_heartbeat_detection = true;
  FailureDetectorConfig detector;
  // When true, a worker failure triggers stage-level lineage recovery (only
  // the lost tasks and their invalidated dependents re-execute). When false,
  // every affected job restarts from its input checkpoint.
  bool enable_lineage_recovery = true;
  // Transient monotask failures: attempts on the same worker before the task
  // is re-placed on a different worker.
  int max_monotask_attempts = 3;
  // Capped exponential backoff between attempts (seconds).
  double retry_backoff_base = 0.25;
  double retry_backoff_cap = 4.0;
};

class FailureDetector {
 public:
  // `silence` is how long the worker had been silent when declared.
  using DeathCallback = std::function<void(WorkerId worker, double silence)>;
  using RejoinCallback = std::function<void(WorkerId worker)>;

  FailureDetector(Simulator* sim, Cluster* cluster, const FailureDetectorConfig& config);

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  void set_on_death(DeathCallback cb) { on_death_ = std::move(cb); }
  void set_on_rejoin(RejoinCallback cb) { on_rejoin_ = std::move(cb); }

  // Routes each heartbeat delivery through a transport hook (e.g. the lossy
  // control-plane message layer). The hook receives the sender and a closure
  // that performs the actual delivery; dropping the closure drops the beat.
  using Transport = std::function<void(WorkerId, std::function<void()>)>;
  void set_transport(Transport transport) { transport_ = std::move(transport); }

  // Re-seeds liveness state after a scheduler crash: a restarted scheduler
  // has no heartbeat history, so silence is measured from `now`. Workers the
  // caller knows to be down (and re-handles itself at recovery) stay
  // declared-dead so their comeback heartbeat still fires the rejoin hook.
  void Reset(double now);

  // Starts the heartbeat and sweep chains if they are not already running.
  // Both stop once `active` returns false; calling Activate again restarts
  // them (with a fresh grace period so idle gaps do not cause false
  // positives).
  void Activate(std::function<bool()> active);

  bool declared_dead(WorkerId w) const { return dead_[static_cast<size_t>(w)]; }
  int detections() const { return detections_; }

 private:
  void OnHeartbeat(WorkerId w);
  void ScheduleSweep();
  void Sweep();

  Simulator* sim_;
  Cluster* cluster_;
  FailureDetectorConfig config_;
  DeathCallback on_death_;
  RejoinCallback on_rejoin_;
  Transport transport_;

  std::vector<double> last_heartbeat_;
  std::vector<bool> dead_;
  std::function<bool()> active_;
  bool running_ = false;
  int detections_ = 0;
};

}  // namespace ursa

#endif  // SRC_FAULT_FAILURE_DETECTOR_H_
