// Size and bandwidth unit helpers. All sizes in the library are plain doubles
// measured in bytes; all rates are bytes/second; all times are seconds.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

namespace ursa {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;
inline constexpr double kTiB = 1024.0 * kGiB;

// Network link rates are conventionally given in decimal bits per second.
constexpr double GbpsToBytesPerSec(double gbps) { return gbps * 1e9 / 8.0; }
constexpr double MBps(double mb) { return mb * 1e6; }

}  // namespace ursa

#endif  // SRC_COMMON_UNITS_H_
