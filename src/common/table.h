// Console table printing for the benchmark harness. Produces fixed-width
// aligned tables resembling the tables in the paper, e.g.:
//
//   scheme      makespan   avgJCT   UEcpu   SEcpu
//   Ursa-EJF      2803.0    600.0   99.64   92.47
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace ursa {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Starts a new row; subsequent Cell() calls fill it left to right.
  Table& Row();
  Table& Cell(const std::string& value);
  Table& Cell(double value, int precision = 2);
  Table& Cell(int64_t value);

  // Renders with padded columns. A title line is printed first if non-empty.
  std::string ToString(const std::string& title = "") const;
  void Print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a resampled utilization series as CSV rows prefixed with a label:
//   label,t,cpu%,mem%,net%
void PrintSeriesCsv(const std::string& label, double t0, double step,
                    const std::vector<double>& cpu, const std::vector<double>& mem,
                    const std::vector<double>& net);

}  // namespace ursa

#endif  // SRC_COMMON_TABLE_H_
