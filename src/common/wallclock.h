// The single sanctioned wall-clock access point in src/ (detlint rule
// `wallclock`). Simulated time must come from Simulator::Now(); host time is
// legitimate only for measuring the scheduler's own computation cost (e.g.
// the per-tick wall-time recorded in traces). Funneling every host-clock
// read through this header keeps wall time out of simulation logic, where
// it would silently break seeded reproducibility.
#ifndef SRC_COMMON_WALLCLOCK_H_
#define SRC_COMMON_WALLCLOCK_H_

#include <chrono>

namespace ursa {

// Measures elapsed host time (monotonic) between construction and
// ElapsedMicros(). Never use this to derive simulated timestamps.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ursa

#endif  // SRC_COMMON_WALLCLOCK_H_
