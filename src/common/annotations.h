// Clang thread-safety-analysis attribute macros (DESIGN.md section 10).
//
// The macros expand to clang's capability attributes when the compiler
// supports them and to nothing otherwise, so GCC builds are unaffected. CI
// compiles the tree with `clang++ -Wthread-safety -Werror`, which turns the
// annotated lock graph into a machine-checked invariant: every access to a
// GUARDED_BY member must happen while its mutex is held, before a single
// real thread exists in the simulator core.
//
// Annotation conventions used across src/ (see DESIGN.md section 10):
//  * shared state is private and GUARDED_BY a leaf mutex of the owning class;
//  * public methods acquire the mutex with MutexLock for their whole body;
//  * private helpers that expect the caller to hold the lock are REQUIRES;
//  * locks are never held across foreign code (callbacks, other components).
#ifndef SRC_COMMON_ANNOTATIONS_H_
#define SRC_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define URSA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define URSA_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) URSA_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY URSA_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) URSA_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) URSA_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) URSA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) URSA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) URSA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) URSA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) URSA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) URSA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) URSA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) URSA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) URSA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) URSA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) URSA_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) URSA_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS URSA_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SRC_COMMON_ANNOTATIONS_H_
