// Small statistics helpers used by the metrics layer: summary statistics,
// percentiles (linear interpolation), and the outlier threshold the paper
// uses for straggler detection (Q3 + 1.5 * IQR).
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace ursa {

struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p80 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Percentile with linear interpolation between closest ranks. `p` in [0, 100].
// Returns 0 for an empty vector.
double Percentile(std::vector<double> values, double p);

// Full summary of a sample. Returns a zeroed Summary for an empty input.
Summary Summarize(const std::vector<double>& values);

// The paper's straggler threshold: Q3 + 1.5 * IQR of the sample (general
// statistical outlier definition, see section 5.1.2).
double OutlierThreshold(const std::vector<double>& values);

// Mean absolute deviation from the mean, expressed in the same unit as the
// input. Used for the cross-worker utilization spread reported in section 5.
double MeanAbsoluteDeviation(const std::vector<double>& values);

// Incremental mean/variance accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace ursa

#endif  // SRC_COMMON_STATS_H_
