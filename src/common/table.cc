#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/logging.h"

namespace ursa {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& value) {
  CHECK(!rows_.empty()) << "Cell() before Row()";
  CHECK_LT(rows_.back().size(), headers_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return Cell(std::string(buf));
}

Table& Table::Cell(int64_t value) { return Cell(std::to_string(value)); }

std::string Table::ToString(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  if (!title.empty()) {
    out << "== " << title << " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        out << "  ";
      }
      // Left-align the first column (labels), right-align the rest (numbers).
      const size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        out << cells[c] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << cells[c];
      }
    }
    out << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void Table::Print(const std::string& title) const {
  const std::string s = ToString(title);
  std::fputs(s.c_str(), stdout);
  std::fputs("\n", stdout);
}

void PrintSeriesCsv(const std::string& label, double t0, double step,
                    const std::vector<double>& cpu, const std::vector<double>& mem,
                    const std::vector<double>& net) {
  std::printf("series,%s,t,cpu,mem,net\n", label.c_str());
  const size_t n = std::max({cpu.size(), mem.size(), net.size()});
  auto at = [](const std::vector<double>& v, size_t i) {
    return i < v.size() ? v[i] : 0.0;
  };
  for (size_t i = 0; i < n; ++i) {
    std::printf("%s,%.2f,%.1f,%.1f,%.1f\n", label.c_str(),
                t0 + static_cast<double>(i) * step, at(cpu, i), at(mem, i), at(net, i));
  }
}

}  // namespace ursa
