// Annotated mutex wrappers (DESIGN.md section 10).
//
// Mutex wraps std::mutex with clang capability attributes so that
// `-Wthread-safety` can verify the lock graph statically; MutexLock is the
// RAII guard. In today's single-threaded simulator every acquisition is
// uncontended (a few nanoseconds), so taking the locks "trivially" costs
// nothing while letting the analysis machine-check lock discipline before
// the morsel-parallel core lands.
//
// Lock hierarchy (acquire strictly downward; see DESIGN.md section 10):
//   UrsaScheduler::state_mu_
//     > AdmissionController::mu_
//     > FaultStats::mu_ / SpeculationManager::mu_
//     > Worker's OccupancyLedger::mu_ > MonotaskQueue::mu_
//     > EventQueue::mu_
// All of these are leaf-like: no lock is ever held while invoking foreign
// code (simulator callbacks, job-manager notifications, waste sinks).
#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <mutex>

#include "src/common/annotations.h"

namespace ursa {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Escape hatch for APIs (std::condition_variable etc.) that need the
  // underlying handle; using it bypasses the static analysis.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII guard. Scoped-capability so the analysis knows the mutex is held for
// exactly the guard's lifetime.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace ursa

#endif  // SRC_COMMON_MUTEX_H_
