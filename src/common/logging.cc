#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace ursa {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Trim the path down to the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  std::fputs(line.c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace log_internal

}  // namespace ursa
