#include "src/common/time_series.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace ursa {

void StepTracker::Set(double now, double value) {
  if (!times_.empty()) {
    CHECK_GE(now, times_.back());
  }
  if (!times_.empty() && times_.back() == now) {
    values_.back() = value;
  } else if (values_.empty() || values_.back() != value) {
    times_.push_back(now);
    values_.push_back(value);
  }
  current_ = value;
}

void StepTracker::Add(double now, double delta) { Set(now, current_ + delta); }

double StepTracker::Integral(double from, double to) const {
  if (times_.empty() || to <= from) {
    return 0.0;
  }
  double total = 0.0;
  // Find the first change point at or after `from`; the value in force at
  // `from` is the one from the previous change point (or 0 if none).
  auto it = std::upper_bound(times_.begin(), times_.end(), from);
  size_t i = static_cast<size_t>(it - times_.begin());
  double t = from;
  double v = (i == 0) ? 0.0 : values_[i - 1];
  while (t < to) {
    const double next = (i < times_.size()) ? std::min(times_[i], to) : to;
    total += v * (next - t);
    t = next;
    if (i < times_.size() && times_[i] <= to) {
      v = values_[i];
      ++i;
    }
  }
  return total;
}

double StepTracker::Average(double from, double to) const {
  if (to <= from) {
    return 0.0;
  }
  return Integral(from, to) / (to - from);
}

double StepTracker::Max(double from, double to) const {
  if (times_.empty() || to <= from) {
    return 0.0;
  }
  auto it = std::upper_bound(times_.begin(), times_.end(), from);
  size_t i = static_cast<size_t>(it - times_.begin());
  double best = (i == 0) ? 0.0 : values_[i - 1];
  for (; i < times_.size() && times_[i] <= to; ++i) {
    best = std::max(best, values_[i]);
  }
  return best;
}

std::vector<double> StepTracker::Resample(double from, double to, double step) const {
  CHECK_GT(step, 0.0);
  std::vector<double> out;
  if (to <= from) {
    return out;
  }
  const size_t n = static_cast<size_t>(std::ceil((to - from) / step));
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double lo = from + static_cast<double>(i) * step;
    const double hi = std::min(lo + step, to);
    out.push_back(Average(lo, hi));
  }
  return out;
}

}  // namespace ursa
