#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace ursa {

namespace {

// Percentile over an already-sorted sample.
double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double Percentile(std::vector<double> values, double p) {
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, p);
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) {
    return s;
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  RunningStat rs;
  for (double v : sorted) {
    rs.Add(v);
  }
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.p50 = PercentileSorted(sorted, 50.0);
  s.p80 = PercentileSorted(sorted, 80.0);
  s.p95 = PercentileSorted(sorted, 95.0);
  s.p99 = PercentileSorted(sorted, 99.0);
  return s;
}

double OutlierThreshold(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double q1 = PercentileSorted(sorted, 25.0);
  const double q3 = PercentileSorted(sorted, 75.0);
  return q3 + 1.5 * (q3 - q1);
}

double MeanAbsoluteDeviation(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double mean = 0.0;
  for (double v : values) {
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  double mad = 0.0;
  for (double v : values) {
    mad += std::abs(v - mean);
  }
  return mad / static_cast<double>(values.size());
}

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace ursa
