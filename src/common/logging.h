// Lightweight logging and invariant-checking facilities.
//
// The library avoids exceptions on hot paths (Google C++ style); fatal
// invariant violations abort through CHECK/DCHECK macros instead. Log output
// goes to stderr and can be silenced globally, which benchmarks use to keep
// their stdout machine-readable.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace ursa {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Returns / sets the minimum level that is actually emitted. Thread-safe
// (relaxed atomics); intended to be set once at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {

// Accumulates one log line and emits it (and possibly aborts) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Used to swallow the stream expression when a log statement is disabled.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal

#define URSA_LOG_IS_ON(level) \
  (::ursa::LogLevel::k##level >= ::ursa::GetLogLevel())

#define LOG(level)                 \
  !URSA_LOG_IS_ON(level)           \
      ? (void)0                    \
      : ::ursa::log_internal::Voidify() & \
            ::ursa::log_internal::LogMessage(::ursa::LogLevel::k##level, __FILE__, __LINE__).stream()

// CHECK aborts (after logging) when the condition is false, in all builds.
#define CHECK(cond)                                                                        \
  (cond) ? (void)0                                                                         \
         : ::ursa::log_internal::Voidify() &                                               \
               ::ursa::log_internal::LogMessage(::ursa::LogLevel::kFatal, __FILE__, __LINE__) \
                   .stream()                                                               \
               << "CHECK failed: " #cond " "

#define CHECK_OP(a, b, op) CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

#ifdef NDEBUG
#define DCHECK(cond) CHECK(true || (cond))
#else
#define DCHECK(cond) CHECK(cond)
#endif

}  // namespace ursa

#endif  // SRC_COMMON_LOGGING_H_
