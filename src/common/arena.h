// Block-based object pools for hot-path allocations (DESIGN.md section 12).
//
// The simulator core allocates and frees small, identically sized objects at
// very high rates: calendar-queue nodes, in-flight monotask records, map
// nodes. General-purpose malloc handles this fine at paper scale but becomes
// a visible fraction of the tick at 10k workers. These pools trade a little
// slack memory for O(1) allocate/free with no global-heap traffic after
// warm-up.
//
// Determinism: pools never consult addresses for ordering, never shrink, and
// recycle slots strictly LIFO, so allocation patterns are a pure function of
// the simulation's own event order.
//
// Thread-compatibility: pools are NOT internally synchronized. Each pool is
// owned by exactly one component (a worker, an event queue) and inherits that
// component's synchronization discipline.
#ifndef SRC_COMMON_ARENA_H_
#define SRC_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace ursa {

// Fixed-type object pool: placement-new into recycled slots backed by
// geometrically growing blocks.
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(size_t first_block = 64) : next_block_(first_block) {}
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  template <typename... Args>
  T* New(Args&&... args) {
    if (free_.empty()) {
      Grow();
    }
    void* slot = free_.back();
    free_.pop_back();
    return ::new (slot) T(std::forward<Args>(args)...);
  }

  void Delete(T* obj) {
    obj->~T();
    free_.push_back(obj);
  }

  // Slots currently live (allocated minus freed); for tests and footprint
  // accounting.
  size_t LiveCount() const { return capacity_ - free_.size(); }
  size_t Capacity() const { return capacity_; }

 private:
  struct alignas(alignof(T)) Slot {
    std::byte bytes[sizeof(T)];
  };

  void Grow() {
    const size_t n = next_block_;
    next_block_ *= 2;
    blocks_.push_back(std::make_unique<Slot[]>(n));
    Slot* base = blocks_.back().get();
    free_.reserve(free_.size() + n);
    // Hand slots out from the front of the block: push in reverse so the
    // LIFO free list yields ascending addresses on first use.
    for (size_t i = n; i > 0; --i) {
      free_.push_back(&base[i - 1]);
    }
    capacity_ += n;
  }

  std::vector<std::unique_ptr<Slot[]>> blocks_;
  std::vector<void*> free_;
  size_t capacity_ = 0;
  size_t next_block_;
};

// Type-erased free-list resource for node-based standard containers. Single
// allocations are pooled per (size, alignment) class; array allocations fall
// through to the global heap (node containers never make them).
class PoolResource {
 public:
  PoolResource() = default;
  PoolResource(const PoolResource&) = delete;
  PoolResource& operator=(const PoolResource&) = delete;

  ~PoolResource() {
    for (auto& size_class : classes_) {
      for (void* block : size_class.blocks) {
        ::operator delete(block, std::align_val_t(size_class.align));
      }
    }
  }

  void* Allocate(size_t bytes, size_t align) {
    SizeClass& size_class = ClassFor(bytes, align);
    if (size_class.free.empty()) {
      GrowClass(size_class);
    }
    void* slot = size_class.free.back();
    size_class.free.pop_back();
    return slot;
  }

  void Deallocate(void* slot, size_t bytes, size_t align) {
    ClassFor(bytes, align).free.push_back(slot);
  }

 private:
  struct SizeClass {
    size_t bytes = 0;
    size_t align = 0;
    size_t next_block = 64;
    std::vector<void*> blocks;
    std::vector<void*> free;
  };

  SizeClass& ClassFor(size_t bytes, size_t align) {
    // A handful of distinct node types per container owner; linear scan wins.
    for (SizeClass& size_class : classes_) {
      if (size_class.bytes == bytes && size_class.align == align) {
        return size_class;
      }
    }
    classes_.push_back(SizeClass{bytes, align, 64, {}, {}});
    return classes_.back();
  }

  static void GrowClass(SizeClass& size_class) {
    const size_t n = size_class.next_block;
    size_class.next_block *= 2;
    const size_t stride =
        (size_class.bytes + size_class.align - 1) / size_class.align * size_class.align;
    auto* base = static_cast<std::byte*>(
        ::operator new(stride * n, std::align_val_t(size_class.align)));
    // Record the raw block for ~PoolResource; sized-delete is not required
    // because we free via the unsized aligned operator delete.
    size_class.blocks.push_back(base);
    size_class.free.reserve(size_class.free.size() + n);
    for (size_t i = n; i > 0; --i) {
      size_class.free.push_back(base + (i - 1) * stride);
    }
  }

  std::vector<SizeClass> classes_;
};

// Minimal std-allocator adapter over PoolResource. Containers rebind this to
// their node type; every node of a given container then comes from the
// owner's pool. The resource must outlive every container using it.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(PoolResource* resource) : resource_(resource) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : resource_(other.resource()) {}  // NOLINT

  T* allocate(size_t n) {
    if (n == 1) {
      return static_cast<T*>(resource_->Allocate(sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* ptr, size_t n) {
    if (n == 1) {
      resource_->Deallocate(ptr, sizeof(T), alignof(T));
      return;
    }
    ::operator delete(ptr);
  }

  PoolResource* resource() const { return resource_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return resource_ == other.resource();
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const {
    return resource_ != other.resource();
  }

 private:
  PoolResource* resource_;
};

}  // namespace ursa

#endif  // SRC_COMMON_ARENA_H_
