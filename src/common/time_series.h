// Piecewise-constant time-series tracking.
//
// StepTracker records a quantity that changes at discrete instants (busy CPU
// cores, bytes/s of network receive, allocated memory...) and supports exact
// time-integrals as well as resampling onto a fixed grid. The metrics layer
// builds SE/UE from integrals, and the figure benches print resampled series.
#ifndef SRC_COMMON_TIME_SERIES_H_
#define SRC_COMMON_TIME_SERIES_H_

#include <cstddef>
#include <vector>

namespace ursa {

class StepTracker {
 public:
  StepTracker() = default;

  // Records that the tracked quantity has `value` from time `now` onward.
  // Times must be non-decreasing across calls.
  void Set(double now, double value);

  // Adds `delta` to the current value at time `now`.
  void Add(double now, double delta);

  double current() const { return current_; }

  // Exact integral of the quantity over [from, to]. The value before the
  // first Set is 0; the value after the last change extends indefinitely.
  double Integral(double from, double to) const;

  // Average value over [from, to]; 0 when the window is empty.
  double Average(double from, double to) const;

  // Maximum value attained in [from, to].
  double Max(double from, double to) const;

  // Resamples onto a grid of `step`-spaced points covering [from, to]; each
  // output point is the average over its step window (so short spikes still
  // show up proportionally).
  std::vector<double> Resample(double from, double to, double step) const;

  size_t num_changes() const { return times_.size(); }

 private:
  // Change points: value becomes values_[i] at times_[i].
  std::vector<double> times_;
  std::vector<double> values_;
  double current_ = 0.0;
};

}  // namespace ursa

#endif  // SRC_COMMON_TIME_SERIES_H_
