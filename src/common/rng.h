// Deterministic random number generation for workload synthesis.
//
// Every experiment takes an explicit seed; a fixed seed reproduces the exact
// event sequence. The generator is xoshiro256++, seeded via splitmix64 so that
// small consecutive seeds give unrelated streams.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "src/common/logging.h"

namespace ursa {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n) {
    DCHECK(n > 0);
    return NextU64() % n;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller (one value per call; the spare is dropped
  // to keep the state trajectory simple and reproducible).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
  }

  // Log-normal with the given mean/sigma of the underlying normal.
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

  double Exponential(double rate) {
    DCHECK(rate > 0);
    double u = NextDouble();
    while (u <= 1e-300) {
      u = NextDouble();
    }
    return -std::log(u) / rate;
  }

  // Bounded Zipf-like skew multiplier used for partition size skew: returns a
  // value in [1/skew, skew] with mean roughly 1. skew = 1 means no skew.
  double SkewFactor(double skew) {
    DCHECK(skew >= 1.0);
    if (skew == 1.0) {
      return 1.0;
    }
    const double e = Uniform(-1.0, 1.0);
    return std::pow(skew, e);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace ursa

#endif  // SRC_COMMON_RNG_H_
