// Pregel-like vertex-centric API (section 4.1.2 mentions Ursa provides one).
//
// A vertex program runs in supersteps: in each superstep every vertex
// receives the messages sent to it in the previous superstep, updates its
// value, and sends messages to other vertices. Each superstep compiles to
// one CPU op (compute + message bucketing) and one sync network op (message
// shuffle); vertex state rides through the shuffle in the partition's
// self-slice, so the barrier semantics come entirely from the monotask plan.
//
//   auto ranks = RunPregel<double, double>(
//       partitions, /*supersteps=*/10,
//       [](int64_t id, int degree) { return 1.0; },          // init
//       [](PregelVertex<double>& v, const std::vector<double>& inbox, int step,
//          const MessageSender<double>& send) { ... });
#ifndef SRC_API_PREGEL_H_
#define SRC_API_PREGEL_H_

#include <any>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/dag/opgraph.h"
#include "src/runtime/local_runtime.h"

namespace ursa {

template <typename V>
struct PregelVertex {
  int64_t id = 0;
  V value{};
  std::vector<int64_t> neighbors;
};

// Adjacency-only input vertex.
struct GraphVertex {
  int64_t id = 0;
  std::vector<int64_t> neighbors;
};

template <typename M>
using MessageSender = std::function<void(int64_t dst, const M& message)>;

template <typename V, typename M>
using PregelCompute = std::function<void(PregelVertex<V>& vertex, const std::vector<M>& inbox,
                                         int superstep, const MessageSender<M>& send)>;

template <typename V>
using PregelInit = std::function<V(int64_t id, int degree)>;

// Vertices must be pre-partitioned with this function.
inline size_t PregelPartitionOf(int64_t id, size_t partitions) {
  return static_cast<size_t>(static_cast<uint64_t>(id)) % partitions;
}

namespace pregel_internal {

template <typename V, typename M>
struct Slice {
  // Messages from the source partition destined to this partition.
  std::vector<std::pair<int64_t, M>> messages;
  // Vertex states, carried only in the self-slice (src == dst).
  std::vector<PregelVertex<V>> states;
};

}  // namespace pregel_internal

// Runs a vertex program over `partitions`. Returns all (id, value) pairs
// after `supersteps` rounds. Messages sent in the final superstep are
// discarded (there is no next round to receive them).
template <typename V, typename M>
std::vector<std::pair<int64_t, V>> RunPregel(std::vector<std::vector<GraphVertex>> partitions,
                                             int supersteps, PregelInit<V> init,
                                             PregelCompute<V, M> compute,
                                             const LocalRuntimeOptions& options = {}) {
  using Slice = pregel_internal::Slice<V, M>;
  CHECK_GE(supersteps, 1);
  const int p = static_cast<int>(partitions.size());
  CHECK_GT(p, 0);

  LocalRuntime runtime(options);
  OpGraph graph;

  // External adjacency input.
  std::vector<double> sizes;
  std::vector<std::any> input_parts;
  for (auto& part : partitions) {
    double bytes = 1.0;
    for (const GraphVertex& v : part) {
      bytes += 16.0 + 8.0 * static_cast<double>(v.neighbors.size());
    }
    sizes.push_back(bytes);
    input_parts.emplace_back(std::move(part));
  }
  const DataId adjacency = graph.CreateExternalData(std::move(sizes), "adjacency");
  runtime.SetInput(adjacency, std::move(input_parts));

  // Runs `compute` over the partition's vertices and buckets the outgoing
  // messages by destination partition; the self-slice carries the states.
  auto run_step = [p, compute](std::vector<PregelVertex<V>> vertices,
                               const std::vector<std::vector<M>>& inboxes,
                               int step) -> std::vector<std::any> {
    const int self = vertices.empty()
                         ? 0
                         : static_cast<int>(PregelPartitionOf(vertices.front().id,
                                                              static_cast<size_t>(p)));
    std::vector<Slice> buckets(static_cast<size_t>(p));
    static const std::vector<M> kEmptyInbox;
    for (size_t i = 0; i < vertices.size(); ++i) {
      MessageSender<M> send = [&buckets, p](int64_t dst, const M& message) {
        buckets[PregelPartitionOf(dst, static_cast<size_t>(p))].messages.emplace_back(dst,
                                                                                      message);
      };
      compute(vertices[i], i < inboxes.size() ? inboxes[i] : kEmptyInbox, step, send);
    }
    buckets[static_cast<size_t>(self)].states = std::move(vertices);
    std::vector<std::any> bucket_anys;
    bucket_anys.reserve(buckets.size());
    for (Slice& b : buckets) {
      bucket_anys.emplace_back(std::move(b));
    }
    return {std::any(std::move(bucket_anys))};
  };

  // Rebuilds (vertices, inboxes) from the gathered slices.
  auto unpack = [](const std::vector<std::any>& slices) {
    std::vector<PregelVertex<V>> vertices;
    for (const std::any& s : slices) {
      const Slice& slice = *std::any_cast<Slice>(&s);
      if (!slice.states.empty()) {
        CHECK(vertices.empty()) << "multiple state slices in one partition";
        vertices = slice.states;
      }
    }
    std::unordered_map<int64_t, size_t> index;
    index.reserve(vertices.size());
    for (size_t i = 0; i < vertices.size(); ++i) {
      index.emplace(vertices[i].id, i);
    }
    std::vector<std::vector<M>> inboxes(vertices.size());
    for (const std::any& s : slices) {
      const Slice& slice = *std::any_cast<Slice>(&s);
      for (const auto& [dst, msg] : slice.messages) {
        auto it = index.find(dst);
        if (it != index.end()) {
          inboxes[it->second].push_back(msg);
        }
      }
    }
    return std::make_pair(std::move(vertices), std::move(inboxes));
  };

  // Extracts the states from a step's output buckets (final superstep).
  auto extract_states = [](std::vector<std::any> outputs) {
    auto& bucket_anys = *std::any_cast<std::vector<std::any>>(&outputs[0]);
    std::vector<PregelVertex<V>> result;
    for (std::any& b : bucket_anys) {
      Slice& slice = *std::any_cast<Slice>(&b);
      if (!slice.states.empty()) {
        result = std::move(slice.states);
      }
    }
    return result;
  };

  OpHandle prev;
  DataId current = adjacency;
  for (int step = 0; step < supersteps; ++step) {
    const bool first = step == 0;
    const bool last = step == supersteps - 1;
    const std::string suffix = std::to_string(step);
    const DataId out = graph.CreateData(p, (last ? "result" : "buckets") + suffix);

    Udf udf = [run_step, unpack, extract_states, init, first, last,
               step](const UdfInputs& inputs) -> std::vector<std::any> {
      std::vector<PregelVertex<V>> vertices;
      std::vector<std::vector<M>> inboxes;
      if (first) {
        const auto& adj = *std::any_cast<std::vector<GraphVertex>>(inputs[0]);
        vertices.reserve(adj.size());
        for (const GraphVertex& gv : adj) {
          PregelVertex<V> v;
          v.id = gv.id;
          v.value = init(gv.id, static_cast<int>(gv.neighbors.size()));
          v.neighbors = gv.neighbors;
          vertices.push_back(std::move(v));
        }
      } else {
        const auto& slices = *std::any_cast<std::vector<std::any>>(inputs[0]);
        std::tie(vertices, inboxes) = unpack(slices);
      }
      std::vector<std::any> buckets = run_step(std::move(vertices), inboxes, step);
      if (last) {
        return {std::any(extract_states(std::move(buckets)))};
      }
      return buckets;
    };

    OpHandle op = graph.CreateOp(ResourceType::kCpu, "superstep" + suffix)
                      .Read(current)
                      .Create(out)
                      .SetUdf(runtime.RegisterUdf(std::move(udf)));
    if (!first) {
      prev.To(op, DepKind::kAsync);
    }
    if (!last) {
      const DataId delivered = graph.CreateData(p, "delivered" + suffix);
      OpHandle shuffle = graph.CreateOp(ResourceType::kNetwork, "msgshuffle" + suffix)
                             .Read(out)
                             .Create(delivered);
      op.To(shuffle, DepKind::kSync);
      prev = shuffle;
      current = delivered;
    } else {
      current = out;
    }
  }

  runtime.Run(graph);
  std::vector<std::pair<int64_t, V>> result;
  for (int part = 0; part < p; ++part) {
    const auto& vertices =
        *std::any_cast<std::vector<PregelVertex<V>>>(&runtime.Partition(current, part));
    for (const PregelVertex<V>& v : vertices) {
      result.emplace_back(v.id, v.value);
    }
  }
  return result;
}

}  // namespace ursa

#endif  // SRC_API_PREGEL_H_
