// High-level typed dataset API (section 4.1.2): Spark-like transformations
// built on top of the OpGraph primitives, executable for real through
// LocalRuntime. Mirrors the paper's example - ReduceByKey compiles to a
// serialize CPU op, a sync network shuffle, and a deserialize/combine CPU
// op, exactly like the C++ snippet in section 4.1.2.
//
//   UrsaContext ctx;
//   auto words = ctx.Parallelize<std::string>(partitions);
//   auto counts = words
//       .Map([](const std::string& w) { return std::make_pair(w, 1); })
//       .ReduceByKey([](int a, int b) { return a + b; }, 4);
//   for (auto& [word, n] : counts.Collect()) { ... }
//
// The same OpGraph a context builds can be handed to the cluster simulator
// (the ops carry cost models settable via WithCost), so one program works as
// both a real local computation and a simulated distributed job.
#ifndef SRC_API_DATASET_H_
#define SRC_API_DATASET_H_

#include <any>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/dag/opgraph.h"
#include "src/runtime/local_runtime.h"

namespace ursa {

template <typename T>
class TypedDataset;

class UrsaContext {
 public:
  explicit UrsaContext(const LocalRuntimeOptions& options = {}) : runtime_(options) {}

  // Creates a dataset from in-memory partitions.
  template <typename T>
  TypedDataset<T> Parallelize(std::vector<std::vector<T>> partitions,
                              const std::string& name = "input");

  // Executes the graph (idempotent; Collect() calls this automatically).
  void Run() {
    if (!ran_) {
      graph_.Validate();
      runtime_.Run(graph_);
      ran_ = true;
    }
  }

  OpGraph& graph() { return graph_; }
  LocalRuntime& runtime() { return runtime_; }

 private:
  template <typename T>
  friend class TypedDataset;

  OpGraph graph_;
  LocalRuntime runtime_;
  bool ran_ = false;
};

template <typename T>
class TypedDataset {
 public:
  TypedDataset(UrsaContext* ctx, DataId data, OpHandle creator, int partitions)
      : ctx_(ctx), data_(data), creator_(creator), partitions_(partitions) {}

  int partitions() const { return partitions_; }
  DataId data() const { return data_; }

  // --- Element-wise transformations (async, chainable; the plan compiler
  // collapses chains of these into single CPU monotasks). ---

  template <typename F, typename U = std::invoke_result_t<F, const T&>>
  TypedDataset<U> Map(F f, const std::string& name = "map") const {
    return Transform<U>(name, 1.0, [f = std::move(f)](const std::vector<T>& in) {
      std::vector<U> out;
      out.reserve(in.size());
      for (const T& x : in) {
        out.push_back(f(x));
      }
      return out;
    });
  }

  template <typename F>
  TypedDataset<T> Filter(F pred, const std::string& name = "filter") const {
    return Transform<T>(name, 0.5, [pred = std::move(pred)](const std::vector<T>& in) {
      std::vector<T> out;
      for (const T& x : in) {
        if (pred(x)) {
          out.push_back(x);
        }
      }
      return out;
    });
  }

  template <typename F,
            typename U = typename std::invoke_result_t<F, const T&>::value_type>
  TypedDataset<U> FlatMap(F f, const std::string& name = "flatMap") const {
    return Transform<U>(name, 1.5, [f = std::move(f)](const std::vector<T>& in) {
      std::vector<U> out;
      for (const T& x : in) {
        for (U& y : f(x)) {
          out.push_back(std::move(y));
        }
      }
      return out;
    });
  }

  // --- Shuffle: ReduceByKey for T = std::pair<K, V> (paper section 4.1.2).
  // `combine` must be associative and commutative. ---
  template <typename Combine>
  TypedDataset<T> ReduceByKey(Combine combine, int out_partitions,
                              const std::string& name = "reduceByKey") const {
    using K = typename T::first_type;
    using V = typename T::second_type;
    OpGraph& graph = ctx_->graph_;
    const DataId msg = graph.CreateData(partitions_, name + "-msg");
    const DataId shuffled = graph.CreateData(out_partitions, name + "-shuffled");
    const DataId result = graph.CreateData(out_partitions, name + "-out");

    // Serialize: combine locally, bucket by hash(key) % out_partitions.
    const int ser_udf = ctx_->runtime_.RegisterUdf(
        [out_partitions, combine](const UdfInputs& inputs) -> std::vector<std::any> {
          const auto& in = *std::any_cast<std::vector<T>>(inputs[0]);
          std::unordered_map<K, V> local;
          for (const auto& [k, v] : in) {
            auto [it, inserted] = local.emplace(k, v);
            if (!inserted) {
              it->second = combine(it->second, v);
            }
          }
          std::vector<std::vector<T>> buckets(static_cast<size_t>(out_partitions));
          for (auto& [k, v] : local) {
            const size_t b = std::hash<K>{}(k) % static_cast<size_t>(out_partitions);
            buckets[b].emplace_back(k, std::move(v));
          }
          std::vector<std::any> bucket_anys;
          bucket_anys.reserve(buckets.size());
          for (auto& b : buckets) {
            bucket_anys.emplace_back(std::move(b));
          }
          return {std::any(std::move(bucket_anys))};
        });
    OpCostModel ser_cost;
    ser_cost.cpu_complexity = 1.5;
    ser_cost.output_selectivity = 0.8;
    OpHandle ser = graph.CreateOp(ResourceType::kCpu, name + "-ser")
                       .Read(data_)
                       .Create(msg)
                       .SetCost(ser_cost)
                       .SetUdf(ser_udf);
    if (creator_.valid()) {
      const_cast<OpHandle&>(creator_).To(ser, DepKind::kAsync);
    }

    OpHandle shuffle =
        graph.CreateOp(ResourceType::kNetwork, name + "-shuffle").Read(msg).Create(shuffled);
    ser.To(shuffle, DepKind::kSync);

    // Deserialize: merge the slices and apply the combiner across sources.
    const int deser_udf = ctx_->runtime_.RegisterUdf(
        [combine](const UdfInputs& inputs) -> std::vector<std::any> {
          const auto& slices = *std::any_cast<std::vector<std::any>>(inputs[0]);
          std::unordered_map<K, V> merged;
          for (const std::any& slice : slices) {
            for (const auto& [k, v] : *std::any_cast<std::vector<T>>(&slice)) {
              auto [it, inserted] = merged.emplace(k, v);
              if (!inserted) {
                it->second = combine(it->second, v);
              }
            }
          }
          std::vector<T> out;
          out.reserve(merged.size());
          for (auto& [k, v] : merged) {
            out.emplace_back(k, std::move(v));
          }
          return {std::any(std::move(out))};
        });
    OpCostModel deser_cost;
    deser_cost.cpu_complexity = 1.0;
    OpHandle deser = graph.CreateOp(ResourceType::kCpu, name + "-deser")
                         .Read(shuffled)
                         .Create(result)
                         .SetCost(deser_cost)
                         .SetUdf(deser_udf);
    shuffle.To(deser, DepKind::kAsync);
    return TypedDataset<T>(ctx_, result, deser, out_partitions);
  }

  // --- GroupByKey for T = std::pair<K, V>: groups all values per key. ---
  // (Deduced lazily via TT so non-pair datasets still instantiate.)
  template <typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type>
  auto GroupByKey(int out_partitions, const std::string& name = "groupByKey") const {
    // Wrap each value in a singleton list, then concatenate lists per key
    // through the standard ser/shuffle/deser pattern.
    return Map([](const T& kv) { return std::make_pair(kv.first, std::vector<V>{kv.second}); },
               name + "-wrap")
        .ReduceByKey(
            [](std::vector<V> a, std::vector<V> b) {
              a.insert(a.end(), std::make_move_iterator(b.begin()),
                       std::make_move_iterator(b.end()));
              return a;
            },
            out_partitions, name);
  }

  // --- Inner equi-join with `other` on the pair key (hash partitioned). ---
  template <typename U, typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type,
            typename W = typename U::second_type>
  auto Join(const TypedDataset<U>& other, int out_partitions,
            const std::string& name = "join") const {
    auto left = GroupByKey(out_partitions, name + "-l");
    auto right = other.GroupByKey(out_partitions, name + "-r");
    // Zip the co-partitioned groups with a CPU op reading both datasets.
    using Out = std::pair<K, std::pair<V, W>>;
    OpGraph& graph = ctx_->graph_;
    const DataId out = graph.CreateData(out_partitions, name + "-out");
    const int udf = ctx_->runtime_.RegisterUdf([](const UdfInputs& inputs) {
      const auto& lhs =
          *std::any_cast<std::vector<std::pair<K, std::vector<V>>>>(inputs[0]);
      const auto& rhs =
          *std::any_cast<std::vector<std::pair<K, std::vector<W>>>>(inputs[1]);
      std::unordered_map<K, const std::vector<W>*> index;
      index.reserve(rhs.size());
      for (const auto& [k, values] : rhs) {
        index.emplace(k, &values);
      }
      std::vector<Out> out_rows;
      for (const auto& [k, left_values] : lhs) {
        auto it = index.find(k);
        if (it == index.end()) {
          continue;
        }
        for (const V& v : left_values) {
          for (const W& w : *it->second) {
            out_rows.emplace_back(k, std::make_pair(v, w));
          }
        }
      }
      return std::vector<std::any>{std::any(std::move(out_rows))};
    });
    OpCostModel cost;
    cost.cpu_complexity = 2.0;
    OpHandle op = graph.CreateOp(ResourceType::kCpu, name)
                      .Read(left.data())
                      .Read(right.data())
                      .Create(out)
                      .SetCost(cost)
                      .SetUdf(udf);
    left.creator_.To(op, DepKind::kAsync);
    right.creator_.To(op, DepKind::kAsync);
    return TypedDataset<Out>(ctx_, out, op, out_partitions);
  }

  // Runs the graph (if needed) and concatenates all partitions.
  std::vector<T> Collect() const {
    ctx_->Run();
    std::vector<T> out;
    for (int p = 0; p < partitions_; ++p) {
      const auto& part = *std::any_cast<std::vector<T>>(&ctx_->runtime_.Partition(data_, p));
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  // Overrides the cost model of the op producing this dataset (used when the
  // same program is fed to the cluster simulator).
  TypedDataset<T>& WithCost(const OpCostModel& cost) {
    CHECK(creator_.valid());
    creator_.SetCost(cost);
    return *this;
  }

 private:
  template <typename U>
  friend class TypedDataset;

  template <typename U, typename Fn>
  TypedDataset<U> Transform(const std::string& name, double selectivity, Fn fn) const {
    OpGraph& graph = ctx_->graph_;
    const DataId out = graph.CreateData(partitions_, name + "-out");
    const int udf =
        ctx_->runtime_.RegisterUdf([fn = std::move(fn)](const UdfInputs& inputs) {
          const auto& in = *std::any_cast<std::vector<T>>(inputs[0]);
          return std::vector<std::any>{std::any(fn(in))};
        });
    OpCostModel cost;
    cost.cpu_complexity = 1.0;
    cost.output_selectivity = selectivity;
    OpHandle op = graph.CreateOp(ResourceType::kCpu, name)
                      .Read(data_)
                      .Create(out)
                      .SetCost(cost)
                      .SetUdf(udf);
    if (creator_.valid()) {
      const_cast<OpHandle&>(creator_).To(op, DepKind::kAsync);
    }
    return TypedDataset<U>(ctx_, out, op, partitions_);
  }

  UrsaContext* ctx_;
  DataId data_;
  OpHandle creator_;
  int partitions_;
};

template <typename T>
TypedDataset<T> UrsaContext::Parallelize(std::vector<std::vector<T>> partitions,
                                         const std::string& name) {
  CHECK(!partitions.empty());
  std::vector<double> sizes;
  sizes.reserve(partitions.size());
  for (const auto& p : partitions) {
    sizes.push_back(static_cast<double>(p.size() * sizeof(T)) + 1.0);
  }
  const DataId data = graph_.CreateExternalData(std::move(sizes), name);
  std::vector<std::any> anys;
  anys.reserve(partitions.size());
  for (auto& p : partitions) {
    anys.emplace_back(std::move(p));
  }
  runtime_.SetInput(data, std::move(anys));
  return TypedDataset<T>(this, data, OpHandle(), static_cast<int>(partitions.size()));
}

}  // namespace ursa

#endif  // SRC_API_DATASET_H_
