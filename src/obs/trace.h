// Monotask-level tracing & profiling (DESIGN.md section 8).
//
// The Tracer records, per monotask, the full lifecycle (queued -> dispatched
// -> completed/failed/lost, with resource type, worker, job id, input bytes,
// queue-wait and service durations), per-task scheduling milestones
// (ready/placed/completed), scheduler-tick spans (candidates scored, tasks
// placed, host wall-time per tick) and fault events (worker fail/recover,
// detections, rejoins). Events land in a fixed-capacity ring buffer so the
// overhead per event is one branch and one struct copy; when the ring wraps,
// the oldest events are dropped and counted.
//
// Two consumers exist:
//  * WriteChromeTrace exports the ring as Chrome `chrome://tracing` /
//    Perfetto-loadable JSON (async "b"/"e" pairs per monotask keyed by a
//    unique sequence id, instant events for everything else);
//  * SummarizeMonotasks / PrintSummary reduce the ring to per-resource
//    queue-wait and service-time histogram summaries for the text report.
//
// Sampling: with TracerConfig::sample = N > 1, every Nth monotask (decided
// at queue time, sticky for the monotask's whole lifecycle so dispatch and
// completion events always pair up) is traced; task/tick/fault events are
// always recorded.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/dag/types.h"

namespace ursa {

enum class TraceEventKind : int8_t {
  // Monotask lifecycle (carry a pairing `seq`; kDispatch opens a span that
  // exactly one kComplete / kFail / kLost closes).
  kQueued = 0,
  kDispatch = 1,
  kComplete = 2,
  kFail = 3,   // Transient execution failure; resources were consumed.
  kLost = 4,   // In-flight work discarded by a worker-failure epoch change.
  // Task milestones (job manager).
  kTaskReady = 5,
  kTaskPlaced = 6,
  kTaskCompleted = 7,
  // Scheduler tick span.
  kTick = 8,
  // Fault path.
  kWorkerFail = 9,
  kWorkerRecover = 10,
  kDetection = 11,
  kRejoin = 12,
  // Speculation. kCancelled is a monotask finish kind (cooperative cancel of
  // a losing copy; resources were partially consumed, the elapsed time is
  // wasted work). The kSpec* kinds are task-level instants recording a
  // speculative copy's lifecycle: launched on another worker, won the race,
  // lost it (the original finished first), or was torn down for some other
  // reason (worker failure, lineage reset, job abort).
  kCancelled = 13,
  kSpecLaunched = 14,
  kSpecWon = 15,
  kSpecLost = 16,
  kSpecCancelled = 17,
  // Admission control & backpressure (DESIGN.md section 11). Job-level
  // instants: a job entering the active set, a job shed (at submit or by
  // eviction), a low-tier activation deferred under degradation, and a
  // backpressure level transition (job == kInvalidId for the latter).
  kAdmit = 18,
  kShed = 19,
  kDefer = 20,
  kBackpressure = 21,
  // A placement tick exhausted max_scored_pairs_per_tick and deferred the
  // remaining jobs to the next tick (job == kInvalidId; a = pairs scored,
  // b = jobs skipped). Recorded through AdmissionEvent.
  kScoringTruncated = 22,
  // Control-plane message layer + scheduler crash-recovery (DESIGN.md
  // section 14). Recorded through WorkerEvent; worker == kInvalidId for
  // scheduler-side events (crash, recover, checkpoint, resync).
  kMsgDrop = 23,      // A send was dropped by the fault model.
  kMsgDup = 24,       // A send was duplicated by the fault model.
  kMsgFenced = 25,    // A delivery was discarded by epoch/incarnation fencing.
  kSchedCrash = 26,   // Scheduler crash injected; live state wiped.
  kSchedRecover = 27, // Scheduler back up (a = downtime + replay seconds).
  kCheckpoint = 28,   // Journal checkpoint taken (a = records folded).
  kResync = 29,       // Post-recovery worker resync (a = re-dispatches).
};

const char* TraceEventKindName(TraceEventKind kind);

// One ring slot. Field meaning depends on `kind`:
//   a: input bytes (monotask), candidates scored (tick), latency s (detection)
//   b: queue wait s (dispatch), service s (finish), placed count (tick)
struct TraceEvent {
  double t = 0.0;  // Simulated seconds.
  double a = 0.0;
  double b = 0.0;
  double wall_us = 0.0;          // Host wall-time of a tick (kTick only).
  uint64_t seq = 0;              // Monotask pairing id; 0 for non-monotask events.
  JobId job = kInvalidId;
  TaskId task = kInvalidId;
  MonotaskId monotask = kInvalidId;
  StageId stage = kInvalidId;
  WorkerId worker = kInvalidId;
  TraceEventKind kind = TraceEventKind::kQueued;
  int8_t resource = -1;          // ResourceType when >= 0.
  bool counted = true;           // Monotask held a concurrency slot.
};

struct TracerConfig {
  // Ring capacity in events; the oldest events are dropped past this.
  size_t capacity = size_t{1} << 20;
  // Trace every Nth monotask (1 = all). Decided at queue time, sticky.
  int sample = 1;
};

class Tracer {
 public:
  explicit Tracer(const TracerConfig& config = TracerConfig{});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- Recording (hot path). ---
  // Returns the monotask's trace id, or 0 when sampled out; callers pass the
  // id back on dispatch/finish so the whole lifecycle shares one key.
  uint64_t MonotaskQueued(double now, ResourceType r, WorkerId w, JobId j,
                          MonotaskId m, double bytes);
  void MonotaskDispatched(double now, uint64_t id, ResourceType r, WorkerId w, JobId j,
                          MonotaskId m, double bytes, double queue_wait, bool counted);
  // `kind` is kComplete, kFail, kLost or kCancelled; `service` is the span
  // duration.
  void MonotaskFinished(double now, uint64_t id, TraceEventKind kind, ResourceType r,
                        WorkerId w, JobId j, MonotaskId m, double bytes, double service,
                        bool counted);
  void TaskEvent(double now, TraceEventKind kind, JobId j, TaskId task, StageId stage,
                 WorkerId w);
  void SchedulerTick(double now, int64_t candidates, int64_t placed, double wall_us);
  // kWorkerFail / kWorkerRecover / kDetection / kRejoin; `latency` is the
  // detection latency in seconds for kDetection.
  void WorkerEvent(double now, TraceEventKind kind, WorkerId w, double latency = 0.0);
  // kAdmit / kShed / kDefer / kBackpressure. `a`/`b` meaning per kind:
  // admit -> (admission latency s, pending depth after admit); shed ->
  // (u_j, 0); defer -> (age s, 0); backpressure -> (level, throttle factor).
  // `tier` is the job's priority tier (stored in the stage field).
  void AdmissionEvent(double now, TraceEventKind kind, JobId j, int tier, double a,
                      double b);

  // --- Introspection. ---
  size_t size() const { return ring_.size(); }
  uint64_t dropped() const { return dropped_; }
  uint64_t monotasks_traced() const { return next_seq_; }
  int sample() const { return config_.sample; }
  // Ring contents, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  // --- Export. ---
  // Chrome trace JSON ({"traceEvents": [...]}) with events in time order.
  void WriteChromeTrace(std::ostream& os) const;
  // Returns false (and logs) when the file cannot be written.
  bool WriteChromeTraceFile(const std::string& path) const;

  // --- Text report. ---
  struct ResourceSummary {
    int64_t queued = 0;
    int64_t dispatches = 0;
    int64_t completes = 0;
    int64_t fails = 0;
    int64_t lost = 0;
    int64_t cancelled = 0;
    double busy_time = 0.0;    // Sum of counted service durations (seconds).
    double wasted_time = 0.0;  // Counted service seconds of cancelled copies.
    Summary queue_wait;        // Seconds.
    Summary service;           // Seconds.
  };
  // Reduced over the events currently retained in the ring.
  std::array<ResourceSummary, kNumMonotaskResources> SummarizeMonotasks() const;

  struct TickSummary {
    int64_t ticks = 0;
    int64_t candidates = 0;
    int64_t placed = 0;
    double total_wall_us = 0.0;
    double max_wall_us = 0.0;
  };
  // Aggregated over every tick of the run (not subject to ring eviction).
  const TickSummary& tick_summary() const { return ticks_; }

  // Prints the per-resource histogram summaries and tick aggregates.
  void PrintSummary(const std::string& title) const;

 private:
  void Push(const TraceEvent& event);

  TracerConfig config_;
  std::vector<TraceEvent> ring_;
  size_t next_slot_ = 0;     // Overwrite position once the ring is full.
  uint64_t dropped_ = 0;
  uint64_t next_seq_ = 0;    // Monotask trace ids handed out.
  uint64_t sample_counter_ = 0;
  TickSummary ticks_;
};

}  // namespace ursa

#endif  // SRC_OBS_TRACE_H_
