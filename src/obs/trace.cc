#include "src/obs/trace.h"

#include <cinttypes>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "src/common/logging.h"
#include "src/common/table.h"

namespace ursa {

namespace {

// Synthetic pid for events that belong to no worker (scheduler ticks, task
// readiness); workers use their WorkerId as pid.
constexpr int kSchedulerPid = 999999;

const char* StatusName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kComplete:
      return "complete";
    case TraceEventKind::kFail:
      return "fail";
    case TraceEventKind::kLost:
      return "lost";
    case TraceEventKind::kCancelled:
      return "cancelled";
    default:
      return "?";
  }
}

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kQueued:
      return "queued";
    case TraceEventKind::kDispatch:
      return "dispatch";
    case TraceEventKind::kComplete:
      return "complete";
    case TraceEventKind::kFail:
      return "fail";
    case TraceEventKind::kLost:
      return "lost";
    case TraceEventKind::kTaskReady:
      return "task_ready";
    case TraceEventKind::kTaskPlaced:
      return "task_placed";
    case TraceEventKind::kTaskCompleted:
      return "task_completed";
    case TraceEventKind::kTick:
      return "tick";
    case TraceEventKind::kWorkerFail:
      return "worker_fail";
    case TraceEventKind::kWorkerRecover:
      return "worker_recover";
    case TraceEventKind::kDetection:
      return "detection";
    case TraceEventKind::kRejoin:
      return "rejoin";
    case TraceEventKind::kCancelled:
      return "cancelled";
    case TraceEventKind::kSpecLaunched:
      return "spec_launched";
    case TraceEventKind::kSpecWon:
      return "spec_won";
    case TraceEventKind::kSpecLost:
      return "spec_lost";
    case TraceEventKind::kSpecCancelled:
      return "spec_cancelled";
    case TraceEventKind::kAdmit:
      return "admit";
    case TraceEventKind::kShed:
      return "shed";
    case TraceEventKind::kDefer:
      return "defer";
    case TraceEventKind::kBackpressure:
      return "backpressure";
    case TraceEventKind::kScoringTruncated:
      return "scoring_truncated";
    case TraceEventKind::kMsgDrop:
      return "msg_drop";
    case TraceEventKind::kMsgDup:
      return "msg_dup";
    case TraceEventKind::kMsgFenced:
      return "msg_fenced";
    case TraceEventKind::kSchedCrash:
      return "sched_crash";
    case TraceEventKind::kSchedRecover:
      return "sched_recover";
    case TraceEventKind::kCheckpoint:
      return "checkpoint";
    case TraceEventKind::kResync:
      return "resync";
  }
  return "?";
}

Tracer::Tracer(const TracerConfig& config) : config_(config) {
  CHECK_GT(config_.capacity, 0u);
  CHECK_GE(config_.sample, 1);
  ring_.reserve(std::min(config_.capacity, size_t{1} << 16));
}

void Tracer::Push(const TraceEvent& event) {
  if (ring_.size() < config_.capacity) {
    ring_.push_back(event);
    return;
  }
  ring_[next_slot_] = event;
  if (++next_slot_ == config_.capacity) {
    next_slot_ = 0;
  }
  ++dropped_;
}

uint64_t Tracer::MonotaskQueued(double now, ResourceType r, WorkerId w, JobId j,
                                MonotaskId m, double bytes) {
  if (config_.sample > 1 &&
      (sample_counter_++ % static_cast<uint64_t>(config_.sample)) != 0) {
    return 0;
  }
  const uint64_t id = ++next_seq_;
  TraceEvent event;
  event.kind = TraceEventKind::kQueued;
  event.t = now;
  event.a = bytes;
  event.seq = id;
  event.job = j;
  event.monotask = m;
  event.worker = w;
  event.resource = static_cast<int8_t>(r);
  Push(event);
  return id;
}

void Tracer::MonotaskDispatched(double now, uint64_t id, ResourceType r, WorkerId w,
                                JobId j, MonotaskId m, double bytes, double queue_wait,
                                bool counted) {
  if (id == 0) {
    return;
  }
  TraceEvent event;
  event.kind = TraceEventKind::kDispatch;
  event.t = now;
  event.a = bytes;
  event.b = queue_wait;
  event.seq = id;
  event.job = j;
  event.monotask = m;
  event.worker = w;
  event.resource = static_cast<int8_t>(r);
  event.counted = counted;
  Push(event);
}

void Tracer::MonotaskFinished(double now, uint64_t id, TraceEventKind kind, ResourceType r,
                              WorkerId w, JobId j, MonotaskId m, double bytes,
                              double service, bool counted) {
  if (id == 0) {
    return;
  }
  CHECK(kind == TraceEventKind::kComplete || kind == TraceEventKind::kFail ||
        kind == TraceEventKind::kLost || kind == TraceEventKind::kCancelled);
  TraceEvent event;
  event.kind = kind;
  event.t = now;
  event.a = bytes;
  event.b = service;
  event.seq = id;
  event.job = j;
  event.monotask = m;
  event.worker = w;
  event.resource = static_cast<int8_t>(r);
  event.counted = counted;
  Push(event);
}

void Tracer::TaskEvent(double now, TraceEventKind kind, JobId j, TaskId task,
                       StageId stage, WorkerId w) {
  TraceEvent event;
  event.kind = kind;
  event.t = now;
  event.job = j;
  event.task = task;
  event.stage = stage;
  event.worker = w;
  Push(event);
}

void Tracer::SchedulerTick(double now, int64_t candidates, int64_t placed,
                           double wall_us) {
  ++ticks_.ticks;
  ticks_.candidates += candidates;
  ticks_.placed += placed;
  ticks_.total_wall_us += wall_us;
  ticks_.max_wall_us = std::max(ticks_.max_wall_us, wall_us);
  TraceEvent event;
  event.kind = TraceEventKind::kTick;
  event.t = now;
  event.a = static_cast<double>(candidates);
  event.b = static_cast<double>(placed);
  event.wall_us = wall_us;
  Push(event);
}

void Tracer::WorkerEvent(double now, TraceEventKind kind, WorkerId w, double latency) {
  TraceEvent event;
  event.kind = kind;
  event.t = now;
  event.a = latency;
  event.worker = w;
  Push(event);
}

void Tracer::AdmissionEvent(double now, TraceEventKind kind, JobId j, int tier, double a,
                            double b) {
  CHECK(kind == TraceEventKind::kAdmit || kind == TraceEventKind::kShed ||
        kind == TraceEventKind::kDefer || kind == TraceEventKind::kBackpressure ||
        kind == TraceEventKind::kScoringTruncated);
  TraceEvent event;
  event.kind = kind;
  event.t = now;
  event.a = a;
  event.b = b;
  event.job = j;
  event.stage = tier;  // No stage for job-level events; the slot carries the tier.
  Push(event);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  // Oldest-first: once the ring wrapped, next_slot_ points at the oldest.
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_slot_), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(next_slot_));
  return out;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  char buf[512];
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const char* line) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << line;
  };
  // Name the synthetic scheduler process so traces are self-describing.
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                "\"args\":{\"name\":\"scheduler\"}}",
                kSchedulerPid);
  emit(buf);
  for (const TraceEvent& e : Snapshot()) {
    const double ts = e.t * 1e6;  // Chrome expects microseconds.
    const char* res =
        e.resource >= 0 ? ResourceTypeName(static_cast<ResourceType>(e.resource)) : "-";
    switch (e.kind) {
      case TraceEventKind::kQueued:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"queued\",\"cat\":\"monotask\",\"ph\":\"i\","
                      "\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
                      "\"args\":{\"seq\":%" PRIu64
                      ",\"job\":%d,\"monotask\":%d,\"resource\":\"%s\",\"bytes\":%.9g}}",
                      ts, e.worker, e.resource, e.seq, e.job, e.monotask, res, e.a);
        emit(buf);
        break;
      case TraceEventKind::kDispatch:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s j%d m%d\",\"cat\":\"monotask\",\"ph\":\"b\","
                      "\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
                      "\"args\":{\"seq\":%" PRIu64
                      ",\"job\":%d,\"monotask\":%d,\"resource\":\"%s\",\"bytes\":%.9g,"
                      "\"queue_wait_s\":%.9g,\"counted\":%s}}",
                      res, e.job, e.monotask, e.seq, ts, e.worker, e.resource, e.seq,
                      e.job, e.monotask, res, e.a, e.b, e.counted ? "true" : "false");
        emit(buf);
        break;
      case TraceEventKind::kComplete:
      case TraceEventKind::kFail:
      case TraceEventKind::kLost:
      case TraceEventKind::kCancelled:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s j%d m%d\",\"cat\":\"monotask\",\"ph\":\"e\","
                      "\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
                      "\"args\":{\"seq\":%" PRIu64
                      ",\"status\":\"%s\",\"resource\":\"%s\",\"service_s\":%.9g,"
                      "\"counted\":%s}}",
                      res, e.job, e.monotask, e.seq, ts, e.worker, e.resource, e.seq,
                      StatusName(e.kind), res, e.b, e.counted ? "true" : "false");
        emit(buf);
        break;
      case TraceEventKind::kSpecLaunched:
      case TraceEventKind::kSpecWon:
      case TraceEventKind::kSpecLost:
      case TraceEventKind::kSpecCancelled:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"spec\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":%.3f,\"pid\":%d,\"tid\":0,"
                      "\"args\":{\"job\":%d,\"task\":%d,\"stage\":%d,\"worker\":%d}}",
                      TraceEventKindName(e.kind), ts,
                      e.worker == kInvalidId ? kSchedulerPid : e.worker, e.job, e.task,
                      e.stage, e.worker);
        emit(buf);
        break;
      case TraceEventKind::kTaskReady:
      case TraceEventKind::kTaskPlaced:
      case TraceEventKind::kTaskCompleted:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"task\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":%.3f,\"pid\":%d,\"tid\":0,"
                      "\"args\":{\"job\":%d,\"task\":%d,\"stage\":%d,\"worker\":%d}}",
                      TraceEventKindName(e.kind), ts,
                      e.worker == kInvalidId ? kSchedulerPid : e.worker, e.job, e.task,
                      e.stage, e.worker);
        emit(buf);
        break;
      case TraceEventKind::kTick:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"tick\",\"cat\":\"scheduler\",\"ph\":\"i\",\"s\":\"p\","
                      "\"ts\":%.3f,\"pid\":%d,\"tid\":0,"
                      "\"args\":{\"candidates\":%.0f,\"placed\":%.0f,\"wall_us\":%.3f}}",
                      ts, kSchedulerPid, e.a, e.b, e.wall_us);
        emit(buf);
        break;
      case TraceEventKind::kWorkerFail:
      case TraceEventKind::kWorkerRecover:
      case TraceEventKind::kDetection:
      case TraceEventKind::kRejoin:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\","
                      "\"ts\":%.3f,\"pid\":%d,\"tid\":0,"
                      "\"args\":{\"worker\":%d,\"latency_s\":%.9g}}",
                      TraceEventKindName(e.kind), ts, e.worker, e.worker, e.a);
        emit(buf);
        break;
      case TraceEventKind::kMsgDrop:
      case TraceEventKind::kMsgDup:
      case TraceEventKind::kMsgFenced:
      case TraceEventKind::kSchedCrash:
      case TraceEventKind::kSchedRecover:
      case TraceEventKind::kCheckpoint:
      case TraceEventKind::kResync:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\","
                      "\"ts\":%.3f,\"pid\":%d,\"tid\":0,"
                      "\"args\":{\"worker\":%d,\"latency_s\":%.9g}}",
                      TraceEventKindName(e.kind), ts,
                      e.worker == kInvalidId ? kSchedulerPid : e.worker, e.worker, e.a);
        emit(buf);
        break;
      case TraceEventKind::kAdmit:
      case TraceEventKind::kShed:
      case TraceEventKind::kDefer:
      case TraceEventKind::kBackpressure:
      case TraceEventKind::kScoringTruncated:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"admission\",\"ph\":\"i\",\"s\":\"g\","
                      "\"ts\":%.3f,\"pid\":%d,\"tid\":0,"
                      "\"args\":{\"job\":%d,\"tier\":%d,\"a\":%.9g,\"b\":%.9g}}",
                      TraceEventKindName(e.kind), ts, kSchedulerPid, e.job, e.stage, e.a,
                      e.b);
        emit(buf);
        break;
    }
  }
  os << "\n]}\n";
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    LOG(Warning) << "cannot open trace output file " << path;
    return false;
  }
  WriteChromeTrace(out);
  return static_cast<bool>(out);
}

std::array<Tracer::ResourceSummary, kNumMonotaskResources> Tracer::SummarizeMonotasks()
    const {
  std::array<ResourceSummary, kNumMonotaskResources> out;
  std::array<std::vector<double>, kNumMonotaskResources> waits;
  std::array<std::vector<double>, kNumMonotaskResources> services;
  // Iterate the ring in place (counts and histograms are order-independent);
  // Snapshot() would copy every retained event.
  for (const TraceEvent& e : ring_) {
    if (e.resource < 0 || e.resource >= kNumMonotaskResources) {
      continue;
    }
    ResourceSummary& rs = out[static_cast<size_t>(e.resource)];
    switch (e.kind) {
      case TraceEventKind::kQueued:
        ++rs.queued;
        break;
      case TraceEventKind::kDispatch:
        ++rs.dispatches;
        waits[static_cast<size_t>(e.resource)].push_back(e.b);
        break;
      case TraceEventKind::kComplete:
      case TraceEventKind::kFail:
        if (e.kind == TraceEventKind::kComplete) {
          ++rs.completes;
        } else {
          ++rs.fails;
        }
        services[static_cast<size_t>(e.resource)].push_back(e.b);
        if (e.counted) {
          rs.busy_time += e.b;
        }
        break;
      case TraceEventKind::kLost:
        ++rs.lost;
        break;
      case TraceEventKind::kCancelled:
        ++rs.cancelled;
        if (e.counted) {
          rs.wasted_time += e.b;
        }
        break;
      default:
        break;
    }
  }
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    out[static_cast<size_t>(r)].queue_wait = Summarize(waits[static_cast<size_t>(r)]);
    out[static_cast<size_t>(r)].service = Summarize(services[static_cast<size_t>(r)]);
  }
  return out;
}

void Tracer::PrintSummary(const std::string& title) const {
  const auto summaries = SummarizeMonotasks();
  Table counts({"resource", "queued", "dispatched", "completed", "failed", "lost",
                "cancelled", "busy(s)", "wasted(s)"});
  Table latencies({"resource", "qwait-mean(ms)", "qwait-p50", "qwait-p95", "qwait-p99",
                   "svc-mean(ms)", "svc-p50", "svc-p95", "svc-p99"});
  for (int r = 0; r < kNumMonotaskResources; ++r) {
    const ResourceSummary& rs = summaries[static_cast<size_t>(r)];
    const char* name = ResourceTypeName(static_cast<ResourceType>(r));
    counts.Row()
        .Cell(name)
        .Cell(rs.queued)
        .Cell(rs.dispatches)
        .Cell(rs.completes)
        .Cell(rs.fails)
        .Cell(rs.lost)
        .Cell(rs.cancelled)
        .Cell(rs.busy_time, 2)
        .Cell(rs.wasted_time, 2);
    latencies.Row()
        .Cell(name)
        .Cell(rs.queue_wait.mean * 1e3, 3)
        .Cell(rs.queue_wait.p50 * 1e3, 3)
        .Cell(rs.queue_wait.p95 * 1e3, 3)
        .Cell(rs.queue_wait.p99 * 1e3, 3)
        .Cell(rs.service.mean * 1e3, 3)
        .Cell(rs.service.p50 * 1e3, 3)
        .Cell(rs.service.p95 * 1e3, 3)
        .Cell(rs.service.p99 * 1e3, 3);
  }
  counts.Print(title + " - monotask counts");
  latencies.Print(title + " - monotask latencies");
  if (ticks_.ticks > 0) {
    Table ticks({"ticks", "candidates", "placed", "avgWall(us)", "maxWall(us)"});
    ticks.Row()
        .Cell(ticks_.ticks)
        .Cell(ticks_.candidates)
        .Cell(ticks_.placed)
        .Cell(ticks_.total_wall_us / static_cast<double>(ticks_.ticks), 1)
        .Cell(ticks_.max_wall_us, 1);
    ticks.Print(title + " - scheduler ticks");
  }
  if (dropped_ > 0) {
    std::printf("note: ring capacity exceeded, %" PRIu64
                " oldest events dropped (raise trace capacity)\n",
                dropped_);
  }
  if (config_.sample > 1) {
    std::printf("note: monotask sampling 1/%d; counts and busy(s) cover the sample only\n",
                config_.sample);
  }
}

}  // namespace ursa
