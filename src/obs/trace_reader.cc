#include "src/obs/trace_reader.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ursa {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(out)) {
      if (error != nullptr) {
        std::ostringstream oss;
        oss << error_ << " at byte " << pos_;
        *error = oss.str();
      }
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing garbage at byte " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const char* message) {
    error_ = message;
    return false;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return ConsumeLiteral("true") || Fail("bad literal");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return ConsumeLiteral("false") || Fail("bad literal");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ConsumeLiteral("null") || Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          // Keep it simple: decode BMP code points as Latin-1 when they fit
          // a byte, '?' otherwise; our writer never emits \u escapes.
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          const unsigned long cp = std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          out->push_back(cp <= 0xff ? static_cast<char>(cp) : '?');
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("bad number");
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  const char* error_ = "parse error";
};

void FlattenEvent(const JsonValue& v, ChromeTraceEvent* out) {
  for (const auto& [key, value] : v.object) {
    if (key == "name" && value.type == JsonValue::Type::kString) {
      out->name = value.str;
    } else if (key == "cat" && value.type == JsonValue::Type::kString) {
      out->cat = value.str;
    } else if (key == "ph" && value.type == JsonValue::Type::kString) {
      out->ph = value.str;
    } else if (key == "ts" && value.type == JsonValue::Type::kNumber) {
      out->ts = value.number;
    } else if (key == "dur" && value.type == JsonValue::Type::kNumber) {
      out->dur = value.number;
    } else if (key == "pid" && value.type == JsonValue::Type::kNumber) {
      out->pid = static_cast<int64_t>(value.number);
    } else if (key == "tid" && value.type == JsonValue::Type::kNumber) {
      out->tid = static_cast<int64_t>(value.number);
    } else if (key == "id" && value.type == JsonValue::Type::kNumber) {
      out->id = static_cast<uint64_t>(value.number);
    } else if (key == "args" && value.type == JsonValue::Type::kObject) {
      for (const auto& [ak, av] : value.object) {
        if (av.type == JsonValue::Type::kNumber) {
          out->args[ak] = av.number;
        } else if (av.type == JsonValue::Type::kString) {
          out->string_args[ak] = av.str;
        } else if (av.type == JsonValue::Type::kBool) {
          out->args[ak] = av.boolean ? 1.0 : 0.0;
        }
      }
    }
  }
}

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return JsonParser(text).Parse(out, error);
}

bool ParseChromeTrace(const std::string& text, ChromeTrace* out, std::string* error) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) {
    return false;
  }
  const JsonValue* events = &root;
  if (root.type == JsonValue::Type::kObject) {
    events = root.Find("traceEvents");
    if (events == nullptr) {
      if (error != nullptr) {
        *error = "no traceEvents key";
      }
      return false;
    }
  }
  if (events->type != JsonValue::Type::kArray) {
    if (error != nullptr) {
      *error = "traceEvents is not an array";
    }
    return false;
  }
  out->events.clear();
  out->events.reserve(events->array.size());
  for (const JsonValue& v : events->array) {
    if (v.type != JsonValue::Type::kObject) {
      if (error != nullptr) {
        *error = "trace event is not an object";
      }
      return false;
    }
    ChromeTraceEvent event;
    FlattenEvent(v, &event);
    out->events.push_back(std::move(event));
  }
  return true;
}

bool ReadChromeTraceFile(const std::string& path, ChromeTrace* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return ParseChromeTrace(oss.str(), out, error);
}

}  // namespace ursa
