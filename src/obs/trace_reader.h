// Reader for the Chrome trace JSON produced by Tracer::WriteChromeTrace.
//
// Shared by tools/trace_summary and the trace-schema validation test so both
// exercise the exact on-disk format. The parser is a small self-contained
// JSON recursive-descent parser (objects, arrays, strings, numbers, bools,
// null) — enough for any well-formed Chrome trace file, not just ours.
#ifndef SRC_OBS_TRACE_READER_H_
#define SRC_OBS_TRACE_READER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ursa {

// A minimal JSON value tree.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const;
};

// Parses `text` into a JSON tree. Returns false and fills `error` (with a
// byte offset) on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// One event row of a Chrome trace, flattened to the fields the tooling needs.
struct ChromeTraceEvent {
  std::string name;
  std::string cat;
  std::string ph;        // "b", "e", "i", "M", "X", ...
  double ts = 0.0;       // Microseconds.
  double dur = 0.0;      // Microseconds ("X" events).
  int64_t pid = 0;
  int64_t tid = 0;
  uint64_t id = 0;       // Async pairing id ("b"/"e" events).
  // Scalar args, e.g. args["bytes"]; string args land in string_args.
  std::map<std::string, double> args;
  std::map<std::string, std::string> string_args;
};

struct ChromeTrace {
  std::vector<ChromeTraceEvent> events;
};

// Parses a whole Chrome trace JSON document ({"traceEvents": [...]} or a
// bare array). Returns false and fills `error` on malformed input.
bool ParseChromeTrace(const std::string& text, ChromeTrace* out, std::string* error);

// Convenience: reads and parses a trace file.
bool ReadChromeTraceFile(const std::string& path, ChromeTrace* out, std::string* error);

}  // namespace ursa

#endif  // SRC_OBS_TRACE_READER_H_
