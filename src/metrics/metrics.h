// Cluster-level metrics (section 5, "Performance metrics").
//
// Definitions from the paper: with X the allocated core/memory time, Y the
// total core/memory time (capacity times makespan) and Z the actually
// utilized time, scheduling efficiency SE = X / Y and utilization efficiency
// UE = Z / X. The average cluster utilization equals SE * UE. We compute all
// three from the workers' StepTrackers, plus makespan, average JCT, the
// straggler measure of section 5.1.2 (Q3 + 1.5 IQR outlier threshold per
// stage) and the cross-worker utilization imbalance.
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <string>
#include <vector>

#include "src/exec/cluster.h"
#include "src/fault/fault_stats.h"

namespace ursa {

struct EfficiencyReport {
  double makespan = 0.0;
  double avg_jct = 0.0;
  double ue_cpu = 0.0;   // Percent.
  double se_cpu = 0.0;   // Percent.
  double ue_mem = 0.0;   // Percent.
  double se_mem = 0.0;   // Percent.
  // Mean absolute deviation of per-worker average CPU utilization (percent
  // points); the paper reports ~2% for Ursa vs 16-21% for Y+S.
  double cpu_imbalance = 0.0;
  double net_imbalance = 0.0;
  int jobs = 0;
};

// Per-job record every scheduler implementation fills in, shared so the
// experiment driver can compare schemes uniformly.
struct JobRecord {
  JobId id = kInvalidId;
  std::string name;
  std::string klass;
  std::string tenant;           // "" for single-tenant workloads.
  int tier = 0;                 // Priority tier; 0 is the highest.
  double slo = 0.0;             // Declared SLO in seconds (0 = none).
  double submit_time = 0.0;
  double admit_time = -1.0;
  double finish_time = -1.0;
  double cpu_seconds = 0.0;
  bool shed = false;            // Rejected/evicted by admission control.
  double shed_time = -1.0;
  bool completed() const { return finish_time >= 0.0; }
  bool met_slo() const { return completed() && (slo <= 0.0 || jct() <= slo); }
  double jct() const { return finish_time - submit_time; }
};

class MetricsCollector {
 public:
  // Computes cluster efficiency over [t0, t1] (typically 0 .. makespan).
  static EfficiencyReport Compute(const Cluster& cluster, const std::vector<JobRecord>& jobs,
                                  double t0, double t1);

  // Cluster-aggregated utilization series in percent (cpu, mem, net),
  // resampled at `step` over [t0, t1].
  struct UtilizationSeries {
    double t0 = 0.0;
    double step = 0.0;
    std::vector<double> cpu;
    std::vector<double> mem;
    std::vector<double> net;
  };
  static UtilizationSeries Sample(const Cluster& cluster, double t0, double t1, double step);

  // Straggler analysis (section 5.1.2): per stage, tasks finishing later
  // than Q3 + 1.5 IQR of the stage's task completion times are stragglers;
  // the stage's straggler time is the last completion minus the threshold.
  // Returns the average over jobs of (total straggler time / JCT), percent.
  // `stage_task_times[j]` holds, for job j, one vector of task completion
  // times per stage.
  static double StragglerTimeRatio(
      const std::vector<std::vector<std::vector<double>>>& stage_task_times,
      const std::vector<double>& jcts);

  // Prints the fault-tolerance summary of one run (injected faults,
  // detection latency, retries, lineage-recovery savings). No-op when the
  // run had no faults.
  static void PrintFaultReport(const FaultCounters& stats, const std::string& title);

  // --- Multi-tenant open-loop serving (DESIGN.md section 11). ---
  struct TenantStats {
    std::string tenant;
    int tier = 0;
    int submitted = 0;
    int completed = 0;
    int shed = 0;
    double p50_jct = 0.0;
    double p95_jct = 0.0;
    double p99_jct = 0.0;
    // Fraction of SLO-carrying completed jobs that met their SLO, in
    // [0, 1]; 1 when no job declared an SLO.
    double slo_attainment = 1.0;
    // Completed jobs per second over the report horizon.
    double goodput = 0.0;
    // Completed / submitted: the fraction of offered load actually served.
    double service_ratio = 0.0;
  };
  struct TenantReport {
    std::vector<TenantStats> tenants;  // Ordered by tenant name.
    // Jain fairness index over per-tenant service ratios, in (0, 1];
    // 1 = every tenant got the same fraction of its offered load served.
    double jain_fairness = 1.0;
    int total_completed = 0;
    int total_shed = 0;
    double goodput = 0.0;  // Cluster-wide completed jobs per second.
  };
  // `horizon` is the wall of the run in simulated seconds (> 0) used for
  // goodput; records with an empty tenant are grouped under "default".
  static TenantReport ComputeTenantReport(const std::vector<JobRecord>& records,
                                          double horizon);
  static void PrintTenantReport(const TenantReport& report, const std::string& title);
};

// Jain's fairness index (sum x)^2 / (n * sum x^2) over non-negative shares;
// returns 1.0 for empty or all-zero input.
double JainFairnessIndex(const std::vector<double>& shares);

}  // namespace ursa

#endif  // SRC_METRICS_METRICS_H_
