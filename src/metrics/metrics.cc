#include "src/metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace ursa {

EfficiencyReport MetricsCollector::Compute(const Cluster& cluster,
                                           const std::vector<JobRecord>& jobs, double t0,
                                           double t1) {
  EfficiencyReport report;
  CHECK_GT(t1, t0);
  const double window = t1 - t0;
  report.makespan = window;

  // Only completed jobs enter the JCT average; shed or unfinished records
  // (open-loop runs with admission control) carry finish_time == -1.
  double jct_sum = 0.0;
  int completed = 0;
  for (const JobRecord& job : jobs) {
    if (job.completed()) {
      jct_sum += job.jct();
      ++completed;
    }
  }
  report.jobs = completed;
  report.avg_jct = completed > 0 ? jct_sum / static_cast<double>(completed) : 0.0;

  // Core/memory time integrals across workers.
  double busy_cpu = 0.0;
  double alloc_cpu = 0.0;
  double used_mem = 0.0;
  double alloc_mem = 0.0;
  double total_cpu = 0.0;
  double total_mem = 0.0;
  std::vector<double> worker_cpu_util;
  std::vector<double> worker_net_util;
  for (int w = 0; w < cluster.size(); ++w) {
    const Worker& worker = cluster.worker(w);
    busy_cpu += worker.cpu_busy_tracker().Integral(t0, t1);
    alloc_cpu += worker.cpu_alloc_tracker().Integral(t0, t1);
    used_mem += worker.mem_used_tracker().Integral(t0, t1);
    alloc_mem += worker.mem_alloc_tracker().Integral(t0, t1);
    total_cpu += worker.config().cores * window;
    total_mem += worker.memory_capacity() * window;
    worker_cpu_util.push_back(100.0 * worker.cpu_busy_tracker().Average(t0, t1) /
                              worker.config().cores);
    worker_net_util.push_back(100.0 * worker.net_rx_tracker().Average(t0, t1) /
                              worker.downlink());
  }
  report.se_cpu = total_cpu > 0.0 ? 100.0 * alloc_cpu / total_cpu : 0.0;
  report.ue_cpu = alloc_cpu > 0.0 ? 100.0 * busy_cpu / alloc_cpu : 0.0;
  report.se_mem = total_mem > 0.0 ? 100.0 * alloc_mem / total_mem : 0.0;
  report.ue_mem = alloc_mem > 0.0 ? 100.0 * used_mem / alloc_mem : 0.0;
  report.cpu_imbalance = MeanAbsoluteDeviation(worker_cpu_util);
  report.net_imbalance = MeanAbsoluteDeviation(worker_net_util);
  return report;
}

MetricsCollector::UtilizationSeries MetricsCollector::Sample(const Cluster& cluster,
                                                             double t0, double t1,
                                                             double step) {
  UtilizationSeries series;
  series.t0 = t0;
  series.step = step;
  if (t1 <= t0) {
    return series;
  }
  const size_t n = static_cast<size_t>(std::ceil((t1 - t0) / step));
  series.cpu.assign(n, 0.0);
  series.mem.assign(n, 0.0);
  series.net.assign(n, 0.0);
  double cpu_capacity = 0.0;
  double mem_capacity = 0.0;
  double net_capacity = 0.0;
  for (int w = 0; w < cluster.size(); ++w) {
    const Worker& worker = cluster.worker(w);
    cpu_capacity += worker.config().cores;
    mem_capacity += worker.memory_capacity();
    net_capacity += worker.downlink();
    const auto cpu = worker.cpu_busy_tracker().Resample(t0, t1, step);
    const auto mem = worker.mem_used_tracker().Resample(t0, t1, step);
    const auto net = worker.net_rx_tracker().Resample(t0, t1, step);
    for (size_t i = 0; i < n; ++i) {
      series.cpu[i] += i < cpu.size() ? cpu[i] : 0.0;
      series.mem[i] += i < mem.size() ? mem[i] : 0.0;
      series.net[i] += i < net.size() ? net[i] : 0.0;
    }
  }
  // Guard the divides: an empty cluster (or one whose capacity config is
  // degenerate) must yield 0% utilization, not NaNs.
  for (size_t i = 0; i < n; ++i) {
    series.cpu[i] = cpu_capacity > 0.0 ? 100.0 * series.cpu[i] / cpu_capacity : 0.0;
    series.mem[i] = mem_capacity > 0.0 ? 100.0 * series.mem[i] / mem_capacity : 0.0;
    series.net[i] = net_capacity > 0.0 ? 100.0 * series.net[i] / net_capacity : 0.0;
  }
  return series;
}

double MetricsCollector::StragglerTimeRatio(
    const std::vector<std::vector<std::vector<double>>>& stage_task_times,
    const std::vector<double>& jcts) {
  CHECK_EQ(stage_task_times.size(), jcts.size());
  if (jcts.empty()) {
    return 0.0;
  }
  double ratio_sum = 0.0;
  for (size_t j = 0; j < jcts.size(); ++j) {
    double straggler_time = 0.0;
    for (const std::vector<double>& stage : stage_task_times[j]) {
      if (stage.size() < 4) {
        continue;  // IQR is meaningless for tiny stages.
      }
      const double threshold = OutlierThreshold(stage);
      const double last = *std::max_element(stage.begin(), stage.end());
      if (last > threshold) {
        straggler_time += last - threshold;
      }
    }
    if (jcts[j] > 0.0) {
      ratio_sum += straggler_time / jcts[j];
    }
  }
  return 100.0 * ratio_sum / static_cast<double>(jcts.size());
}

void MetricsCollector::PrintFaultReport(const FaultCounters& stats, const std::string& title) {
  if (!stats.any_faults()) {
    return;
  }
  Table injected({"crashes", "crash+recover", "transients", "degrades"});
  injected.Row()
      .Cell(static_cast<int64_t>(stats.crashes_injected))
      .Cell(static_cast<int64_t>(stats.recoveries_injected))
      .Cell(static_cast<int64_t>(stats.transients_injected))
      .Cell(static_cast<int64_t>(stats.degrades_injected));
  injected.Print(title + " - injected faults");

  Table detection({"detections", "rejoins", "avgDetectLat(s)", "avgRecoveryLat(s)"});
  detection.Row()
      .Cell(static_cast<int64_t>(stats.detections))
      .Cell(static_cast<int64_t>(stats.rejoins))
      .Cell(stats.avg_detection_latency(), 3)
      .Cell(stats.avg_recovery_latency(), 3);
  detection.Print(title + " - detection & recovery");

  Table recovery({"transientFails", "lostOnWorker", "retries", "escalations", "tasksReset",
                  "fullRestartEquiv", "fullRestarts"});
  recovery.Row()
      .Cell(static_cast<int64_t>(stats.transient_failures))
      .Cell(static_cast<int64_t>(stats.worker_loss_failures))
      .Cell(static_cast<int64_t>(stats.retries))
      .Cell(static_cast<int64_t>(stats.escalations))
      .Cell(static_cast<int64_t>(stats.tasks_reset))
      .Cell(static_cast<int64_t>(stats.full_restart_equivalent_tasks))
      .Cell(static_cast<int64_t>(stats.full_restarts));
  recovery.Print(title + " - recovery work");

  if (stats.speculations_launched > 0) {
    Table spec({"launched", "won", "lost", "cancelled", "active", "wastedCPU(B)",
                "wastedDisk(B)", "wastedNet(B)", "wasted(s)"});
    spec.Row()
        .Cell(static_cast<int64_t>(stats.speculations_launched))
        .Cell(static_cast<int64_t>(stats.speculations_won))
        .Cell(static_cast<int64_t>(stats.speculations_lost))
        .Cell(static_cast<int64_t>(stats.speculations_cancelled))
        .Cell(static_cast<int64_t>(stats.speculations_active()))
        .Cell(stats.wasted_bytes[static_cast<int>(ResourceType::kCpu)], 0)
        .Cell(stats.wasted_bytes[static_cast<int>(ResourceType::kDisk)], 0)
        .Cell(stats.wasted_bytes[static_cast<int>(ResourceType::kNetwork)], 0)
        .Cell(stats.total_wasted_seconds(), 2);
    spec.Print(title + " - speculation");
  }

  if (stats.msgs_sent > 0) {
    Table ctrl({"msgs", "lost", "dup", "delayed", "fenced", "dupSuppressed", "retransmits"});
    ctrl.Row()
        .Cell(static_cast<int64_t>(stats.msgs_sent))
        .Cell(static_cast<int64_t>(stats.msgs_lost))
        .Cell(static_cast<int64_t>(stats.msgs_duplicated))
        .Cell(static_cast<int64_t>(stats.msgs_delayed))
        .Cell(static_cast<int64_t>(stats.msgs_fenced))
        .Cell(static_cast<int64_t>(stats.dup_suppressed))
        .Cell(static_cast<int64_t>(stats.retransmits));
    ctrl.Print(title + " - control plane");
  }

  if (stats.scheduler_crashes > 0 || stats.checkpoints > 0) {
    Table crash({"schedCrashes", "recoveries", "avgRecoveryLat(s)", "checkpoints",
                 "journalRecords", "redispatched"});
    crash.Row()
        .Cell(static_cast<int64_t>(stats.scheduler_crashes))
        .Cell(static_cast<int64_t>(stats.scheduler_recoveries))
        .Cell(stats.avg_scheduler_recovery_latency(), 3)
        .Cell(static_cast<int64_t>(stats.checkpoints))
        .Cell(stats.journal_records)
        .Cell(static_cast<int64_t>(stats.redispatched_monotasks));
    crash.Print(title + " - scheduler crash recovery");
  }
}

double JainFairnessIndex(const std::vector<double>& shares) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (shares.empty() || sum_sq <= 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

MetricsCollector::TenantReport MetricsCollector::ComputeTenantReport(
    const std::vector<JobRecord>& records, double horizon) {
  TenantReport report;
  // Ordered map: the report (and anything serialized from it) is
  // deterministic across runs.
  std::map<std::string, TenantStats> by_tenant;
  std::map<std::string, std::vector<double>> jcts;
  std::map<std::string, int> slo_carrying;
  std::map<std::string, int> slo_met;
  for (const JobRecord& r : records) {
    const std::string tenant = r.tenant.empty() ? "default" : r.tenant;
    TenantStats& stats = by_tenant[tenant];
    stats.tenant = tenant;
    stats.tier = r.tier;
    ++stats.submitted;
    if (r.shed) {
      ++stats.shed;
    } else if (r.completed()) {
      ++stats.completed;
      jcts[tenant].push_back(r.jct());
      if (r.slo > 0.0) {
        ++slo_carrying[tenant];
        if (r.met_slo()) {
          ++slo_met[tenant];
        }
      }
    }
  }
  std::vector<double> service_ratios;
  for (auto& [tenant, stats] : by_tenant) {
    const Summary jct = Summarize(jcts[tenant]);
    stats.p50_jct = jct.p50;
    stats.p95_jct = jct.p95;
    stats.p99_jct = jct.p99;
    stats.slo_attainment =
        slo_carrying[tenant] > 0
            ? static_cast<double>(slo_met[tenant]) / slo_carrying[tenant]
            : 1.0;
    stats.goodput = horizon > 0.0 ? stats.completed / horizon : 0.0;
    stats.service_ratio =
        stats.submitted > 0 ? static_cast<double>(stats.completed) / stats.submitted : 0.0;
    service_ratios.push_back(stats.service_ratio);
    report.total_completed += stats.completed;
    report.total_shed += stats.shed;
    report.tenants.push_back(stats);
  }
  report.jain_fairness = JainFairnessIndex(service_ratios);
  report.goodput = horizon > 0.0 ? report.total_completed / horizon : 0.0;
  return report;
}

void MetricsCollector::PrintTenantReport(const TenantReport& report,
                                         const std::string& title) {
  if (report.tenants.empty()) {
    return;
  }
  Table table({"tenant", "tier", "submitted", "completed", "shed", "p50JCT", "p95JCT",
               "p99JCT", "SLO%", "goodput/s"});
  for (const TenantStats& t : report.tenants) {
    table.Row()
        .Cell(t.tenant)
        .Cell(static_cast<int64_t>(t.tier))
        .Cell(static_cast<int64_t>(t.submitted))
        .Cell(static_cast<int64_t>(t.completed))
        .Cell(static_cast<int64_t>(t.shed))
        .Cell(t.p50_jct, 2)
        .Cell(t.p95_jct, 2)
        .Cell(t.p99_jct, 2)
        .Cell(100.0 * t.slo_attainment, 1)
        .Cell(t.goodput, 3);
  }
  table.Print(title + " - tenants (Jain fairness " +
              std::to_string(report.jain_fairness).substr(0, 5) + ")");
}

}  // namespace ursa
