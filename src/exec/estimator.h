// Resource usage estimation by the job manager (section 4.2.1).
//
// Network and disk usage of a monotask are estimated as its input size; CPU
// usage is *also* estimated as the input size (the scheduler's processing
// rate monitoring absorbs per-op complexity differences - footnote 3 of the
// paper). Memory is estimated per task as min(r * M(j), m2i(t) * I(t)) where
// r is the task's share of the job's currently-ready input and m2i is the
// configured memory-to-input ratio.
//
// Because our execution model is deterministic given the recorded metadata,
// the estimator walks the task's monotasks in topological order, propagating
// intermediate output sizes, which yields the exact per-resource input bytes
// the paper computes from dataset metadata.
#ifndef SRC_EXEC_ESTIMATOR_H_
#define SRC_EXEC_ESTIMATOR_H_

#include <vector>

#include "src/dag/job.h"
#include "src/exec/metadata_store.h"
#include "src/exec/monotask_queue.h"

namespace ursa {

struct TaskUsage {
  // Estimated per-resource usage in bytes (input-size proxy), indexed by
  // ResourceType.
  double bytes[kNumMonotaskResources] = {0.0, 0.0, 0.0};
  // Estimated memory in bytes.
  double memory = 0.0;
  // Task input I(t): bytes entering the task from outside.
  double input_bytes = 0.0;
};

struct OutputRecord {
  DataId data = kInvalidId;
  int partition = -1;
  double bytes = 0.0;
};

class UsageEstimator {
 public:
  // Input bytes of a monotask given recorded metadata. For monotasks whose
  // inputs are produced inside the same task, `local` carries the projected
  // sizes (keyed the same way as OutputRecord); pass nullptr when all inputs
  // are already in the metadata store.
  static double MonotaskInputBytes(const Job& job, MonotaskId mt, const MetadataStore& meta,
                                   const std::vector<OutputRecord>* local);

  // Outputs a monotask produces given its input size (selectivity and skew
  // weights applied).
  static std::vector<OutputRecord> ComputeOutputs(const Job& job, MonotaskId mt,
                                                  double input_bytes);

  // Network pulls for a network monotask (aggregated per source worker).
  static std::vector<RunnableMonotask::Pull> ResolvePulls(const Job& job, MonotaskId mt,
                                                          const MetadataStore& meta);

  // As above, but partitions found in `local` (outputs buffered by a
  // speculative copy running on `local_worker`) are pulled from there instead
  // of from the location the metadata store records for the primary.
  static std::vector<RunnableMonotask::Pull> ResolvePulls(
      const Job& job, MonotaskId mt, const MetadataStore& meta,
      const std::vector<OutputRecord>* local, WorkerId local_worker);

  // Full task usage estimate. `ready_input_total` is the total input bytes
  // of the job's currently-ready tasks (for the r * M(j) memory cap).
  static TaskUsage EstimateTask(const Job& job, TaskId task, const MetadataStore& meta,
                                double ready_input_total);
};

}  // namespace ursa

#endif  // SRC_EXEC_ESTIMATOR_H_
