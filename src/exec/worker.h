// Simulated worker node.
//
// A worker owns the physical resources of one machine (CPU cores, memory,
// disks; its network links live in the FlowSimulator) and the per-resource
// monotask queues of section 4.2.3. It executes monotasks as resources free
// up, enforces concurrency limits (CPU = #cores, disk = 1 per disk, network =
// a small configurable constant), lets latency-sensitive small network
// monotasks bypass the queue, and monitors per-resource processing rates
// that the scheduler uses for APT load estimates (section 4.2.2).
//
// Worker also exposes raw occupancy/allocation trackers so the baseline
// runtimes (executor model, BSP) can account container-granular allocation
// against the same metrics pipeline.
#ifndef SRC_EXEC_WORKER_H_
#define SRC_EXEC_WORKER_H_

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/arena.h"
#include "src/common/rng.h"
#include "src/common/time_series.h"
#include "src/exec/monotask_queue.h"
#include "src/exec/occupancy.h"
#include "src/net/flow_simulator.h"
#include "src/sim/simulator.h"

namespace ursa {

class Tracer;

struct WorkerConfig {
  int cores = 32;
  // Byte-equivalents of CPU work one core processes per second.
  double cpu_byte_rate = 250e6;
  double memory_bytes = 128.0 * 1024 * 1024 * 1024;
  int disks = 1;
  double disk_bytes_per_sec = 150e6;
  // Concurrency limit for network monotasks (paper: 1 to 4).
  int network_concurrency = 2;
  // Network monotasks smaller than this skip the queue (paper: 16KB).
  double small_transfer_bypass_bytes = 16.0 * 1024;
  // Observation window for processing-rate monitoring.
  double rate_window = 5.0;
  // Default network processing rate before any measurement (bytes/s); set
  // this to the downlink bandwidth.
  double default_net_rate = 1.25e9;
};

class Worker {
 public:
  Worker(Simulator* sim, FlowSimulator* net, WorkerId id, const WorkerConfig& config);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  WorkerId id() const { return id_; }
  const WorkerConfig& config() const { return config_; }

  // --- Monotask execution path (Ursa). ---
  // Enqueues a monotask. If the worker already failed, the monotask is not
  // executed and its on_failure callback (when set) fires asynchronously so
  // the submitting job manager never hangs on a silently-dropped monotask.
  void Submit(RunnableMonotask mt);
  // Re-sorts all queues after job priorities changed (SRJF).
  void Reprioritize(const std::function<double(JobId)>& priority_of);

  // --- Fault injection (section 4.3). ---
  // Marks the worker failed: queued monotasks are dropped, in-flight
  // completions are suppressed, memory accounting is zeroed, and further
  // submissions are rejected. Utilization trackers stop at the failure time.
  // Idempotent: calling Fail() on an already-failed worker is a no-op.
  void Fail();
  bool failed() const { return failed_; }
  // Simulated time of the most recent Fail(); -1 if never failed.
  double failed_since() const { return failed_since_; }
  // Incremented on every Fail(); lets the scheduler handle each failure
  // episode exactly once even when both an external FailWorker() call and
  // the heartbeat detector report it.
  int failure_epoch() const { return failure_epoch_; }

  // Brings a failed worker back online with empty queues, zeroed memory
  // accounting and factory-default processing rates. Heartbeats resume on
  // the next beat, which is how the failure detector learns of the rejoin.
  // No-op if the worker is not failed.
  void Recover();

  // --- Heartbeats (section 4.3). ---
  // Starts a periodic heartbeat chain on the simulator: every `interval`
  // seconds, while `active` returns true, the worker reports to `sink`
  // unless it is failed. The chain stops (and can be restarted) once
  // `active` turns false so the simulator can drain. Idempotent while a
  // chain is running.
  void StartHeartbeats(double interval, std::function<void(WorkerId)> sink,
                       std::function<bool()> active);

  // --- Chaos knobs (FaultInjector). ---
  // The next `count` monotasks finishing on this worker fail instead of
  // completing (their on_failure callback fires; the work is wasted).
  void InjectTransientFailures(int count) { pending_transient_failures_ += count; }
  // Every finishing monotask independently fails with probability `p`,
  // drawn from a deterministic per-worker stream seeded with `seed`.
  void SetTransientFailureProfile(double p, uint64_t seed);
  // Degraded-rate (straggler) mode: CPU and disk monotasks run at `factor`
  // times normal speed (0 < factor <= 1 slows the worker down). The change
  // also applies to in-flight monotasks: work done so far is banked at the
  // old rate and the remainder is rescheduled at the new one, so short
  // injection windows slow (or speed up) work that was already dispatched.
  void set_speed_factor(double factor);
  double speed_factor() const { return speed_factor_; }

  // --- Cooperative cancellation (speculation, DESIGN.md section 9). ---
  // Dequeues queued monotasks whose cancel token fired (their resources were
  // never charged) and disarms cancelled in-flight CPU/disk monotasks: the
  // completion event is cancelled, the concurrency slot is freed immediately
  // and the elapsed busy time is reported as wasted work. In-flight network
  // monotasks cannot be retracted from the flow simulator; they are disarmed
  // when their flow completes.
  void SweepCancelled();
  // Sink for the wasted work of cancelled monotasks: bytes actually
  // processed by the losing copy and the seconds it occupied the resource.
  using WasteSink = std::function<void(ResourceType, double bytes, double seconds)>;
  void set_waste_sink(WasteSink sink) { waste_sink_ = std::move(sink); }

  // --- Memory accounting (task granularity). ---
  bool TryAllocateMemory(double bytes);
  void ReleaseMemory(double bytes);
  // Actual consumption, for UE_mem (may be below the allocated estimate).
  void AddActualMemoryUse(double delta);
  double free_memory() const { return config_.memory_bytes - ledger_.mem_allocated(); }
  double memory_capacity() const { return config_.memory_bytes; }

  // --- Load reporting for the scheduler. ---
  // APT_r(w): approximate seconds to finish all queued + running type-r
  // monotasks at the current processing rate. APT_cpu is 0 when the worker
  // has idle cores (paper section 4.2.2).
  double ApproxProcessingTime(ResourceType r) const;
  // Overall processing rate for resource r in bytes/s (CPU rate is per-core
  // rate times core count).
  double ProcessingRate(ResourceType r) const;
  bool HasIdleCpu() const {
    return ledger_.slots_in_use(ResourceType::kCpu) < config_.cores;
  }
  int idle_cores() const {
    return config_.cores - ledger_.slots_in_use(ResourceType::kCpu);
  }
  size_t QueueLength(ResourceType r) const { return queue(r).Size(); }

  // --- Raw occupancy hooks for baseline runtimes. ---
  // `delta` cores busy (actual compute) / allocated (container reservation).
  void AddCpuBusy(double delta);
  void AddCpuAllocated(double delta);
  void AddDiskBusy(double delta);

  // --- Metrics access. ---
  const StepTracker& cpu_busy_tracker() const { return cpu_busy_; }
  const StepTracker& cpu_alloc_tracker() const { return cpu_alloc_; }
  const StepTracker& mem_used_tracker() const { return mem_used_; }
  const StepTracker& mem_alloc_tracker() const { return mem_alloc_; }
  const StepTracker& disk_busy_tracker() const { return disk_busy_; }
  const StepTracker& net_rx_tracker() const { return net_->rx_tracker(id_); }
  double downlink() const { return net_->downlink(id_); }

  // Completed monotask counters (per resource), for tests.
  int64_t completed(ResourceType r) const { return ledger_.completed(r); }

  // --- Tracing (src/obs). ---
  // Attaches an event tracer (not owned; may be null). Every monotask
  // lifecycle transition and fault event on this worker is recorded.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // --- Incremental load maintenance (DESIGN.md section 12). ---
  // At most one listener; invoked with this worker's id whenever an input of
  // the scheduler's load snapshot changes (queue depths, running bytes,
  // measured rates, memory allocation, fail/recover). The callback must be
  // cheap — the scheduler just marks the worker dirty — and must not call
  // back into the worker.
  void set_load_listener(std::function<void(WorkerId)> listener) {
    load_listener_ = std::move(listener);
  }

  // At most one listener; invoked with this worker's id at the end of every
  // Fail() (once per failure episode, regardless of who injected it). The
  // control plane uses it to drop the worker's delivered-dispatch dedup set:
  // that set models worker-side state, so it dies with the machine and the
  // post-recovery resync can re-send dispatches the dead process had acked.
  void set_fail_listener(std::function<void(WorkerId)> listener) {
    fail_listener_ = std::move(listener);
  }

  // Current occupancy, for invariant checks in tests.
  int busy_cores() const { return ledger_.slots_in_use(ResourceType::kCpu); }
  int busy_disks() const { return ledger_.slots_in_use(ResourceType::kDisk); }
  int active_network() const { return ledger_.slots_in_use(ResourceType::kNetwork); }
  double running_bytes(ResourceType r) const { return ledger_.running_bytes(r); }
  double cpu_busy_now() const { return ledger_.occupancy(OccupancyKind::kCpuBusy); }
  double disk_busy_now() const { return ledger_.occupancy(OccupancyKind::kDiskBusy); }

  // The annotated occupancy ledger (DESIGN.md section 10); exposed so tests
  // can hammer it from multiple threads under TSan.
  OccupancyLedger& ledger() { return ledger_; }

 private:
  struct RateMonitor {
    double rate = 0.0;          // Last computed rate (bytes/s per "lane").
    double window_start = 0.0;
    double acc_bytes = 0.0;
    double acc_time = 0.0;
  };

  // A dispatched CPU or disk monotask awaiting its completion event. Keeping
  // the remaining work and effective rate here lets set_speed_factor
  // reschedule mid-flight and lets SweepCancelled disarm a losing copy
  // promptly. Network monotasks are not registered: their finish time is
  // owned by the FlowSimulator. Keys are never reused, so a completion event
  // that outlives its entry (failure epoch, cancellation) finds nothing and
  // is a no-op.
  struct InFlight {
    ResourceType type = ResourceType::kCpu;
    double input_bytes = 0.0;
    double work = 0.0;       // Total work bytes.
    double done_work = 0.0;  // Work banked before the last (re)schedule.
    double start = 0.0;      // Dispatch time.
    double resumed = 0.0;    // Last (re)schedule time.
    double rate = 0.0;       // Effective bytes/s since `resumed`.
    bool counted = true;
    JobId job = kInvalidId;
    MonotaskId id = kInvalidId;
    uint64_t trace_id = 0;
    std::shared_ptr<const CancelToken> cancel;
    std::function<void()> on_complete;
    std::function<void()> on_failure;
    EventId event = kInvalidEventId;
  };

  MonotaskQueue& queue(ResourceType r) { return queues_[static_cast<size_t>(r)]; }
  const MonotaskQueue& queue(ResourceType r) const {
    return queues_[static_cast<size_t>(r)];
  }

  // Concurrency limit for resource `r` (cores, disk arms, network slots).
  int SlotLimit(ResourceType r) const;
  // Starts queued monotasks while concurrency allows.
  void PumpQueue(ResourceType r);
  // Runs one monotask (resource already accounted by the caller).
  void Execute(RunnableMonotask mt, bool counted);
  void OnMonotaskDone(ResourceType r, double input_bytes, double elapsed, bool counted,
                      JobId job, MonotaskId monotask, uint64_t trace_id,
                      std::function<void()> on_complete, std::function<void()> on_failure);
  // Records the loss of an in-flight monotask whose completion event fired
  // after this worker failed (and possibly recovered: epoch mismatch).
  void TraceLost(ResourceType r, double input_bytes, double elapsed, bool counted,
                 JobId job, MonotaskId monotask, uint64_t trace_id);
  // Completion-event target for registered CPU/disk monotasks.
  void FinishInFlight(uint64_t key);
  // Final accounting for a cancelled monotask: releases running bytes and
  // the concurrency slot, records the kCancelled trace span and reports
  // `done_bytes` / `elapsed` to the waste sink.
  void DiscardCancelled(ResourceType r, double input_bytes, double elapsed, bool counted,
                        JobId job, MonotaskId monotask, uint64_t trace_id,
                        double done_bytes);
  // Work completed so far by an in-flight entry at time `now`.
  static double DoneWork(const InFlight& fl, double now);
  void RecordRate(ResourceType r, double bytes, double elapsed);
  void ScheduleHeartbeat();
  void ResetRateMonitors(double now);
  // Notifies the scheduler's dirty set; safe to call redundantly.
  void MarkLoadChanged() {
    if (load_listener_) {
      load_listener_(id_);
    }
  }

  Simulator* sim_;
  FlowSimulator* net_;
  WorkerId id_;
  WorkerConfig config_;
  Tracer* tracer_ = nullptr;

  MonotaskQueue queues_[kNumMonotaskResources];
  // Map nodes are recycled through the worker-owned pool: at steady state a
  // worker churns through thousands of in-flight records per simulated
  // second, all the same size. Declared before inflight_ so the nodes die
  // before their arena.
  PoolResource inflight_arena_;
  // Ordered map: PumpQueue (via DiscardCancelled) may insert new entries
  // while SweepCancelled iterates, which std::map iterators tolerate.
  using InFlightMap = std::map<uint64_t, InFlight, std::less<uint64_t>,
                               PoolAllocator<std::pair<const uint64_t, InFlight>>>;
  InFlightMap inflight_{
      PoolAllocator<std::pair<const uint64_t, InFlight>>(&inflight_arena_)};
  uint64_t next_inflight_key_ = 1;
  WasteSink waste_sink_;
  bool failed_ = false;
  double failed_since_ = -1.0;
  int failure_epoch_ = 0;
  // Chaos state.
  int pending_transient_failures_ = 0;
  double transient_failure_prob_ = 0.0;
  Rng transient_rng_{0};
  double speed_factor_ = 1.0;
  // Heartbeat chain state.
  bool hb_running_ = false;
  double hb_interval_ = 0.0;
  std::function<void(WorkerId)> hb_sink_;
  std::function<bool()> hb_active_;
  std::function<void(WorkerId)> load_listener_;
  std::function<void(WorkerId)> fail_listener_;

  // Concurrency slots, running bytes, completion counters, memory accounting
  // and the occupancy mirrors all live in the internally synchronized ledger
  // (DESIGN.md section 10); no unlocked access path exists.
  OccupancyLedger ledger_;

  RateMonitor rates_[kNumMonotaskResources];

  StepTracker cpu_busy_;
  StepTracker cpu_alloc_;
  StepTracker mem_used_;
  StepTracker mem_alloc_;
  StepTracker disk_busy_;
};

}  // namespace ursa

#endif  // SRC_EXEC_WORKER_H_
