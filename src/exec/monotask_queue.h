// Per-resource monotask queues maintained by each worker (section 4.2.3).
//
// Monotasks wait in the queue of their resource type until the worker can
// allocate that resource. Ordering is policy-driven, not FIFO:
//  * across jobs: by the job priority assigned by the scheduling policy
//    (EJF: admission order; SRJF: remaining-work rank);
//  * within a job: by an intra-job key the job manager computes — CPU
//    monotasks of a stage descending by input size (big tasks first shortens
//    the stage), network/disk monotasks ascending (make dependents ready
//    sooner);
//  * ties broken by enqueue sequence for determinism.
//
// Internally synchronized (DESIGN.md section 10): `mu_` guards the queue
// structures, and Reprioritize releases it while consulting the scheduler's
// priority function so no foreign code ever runs under a queue lock.
#ifndef SRC_EXEC_MONOTASK_QUEUE_H_
#define SRC_EXEC_MONOTASK_QUEUE_H_

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "src/common/mutex.h"
#include "src/dag/types.h"

namespace ursa {

// Cooperative cancellation handle (DESIGN.md section 9). The job manager
// keeps the mutable end and flips `cancelled` when a speculative race is
// decided; every RunnableMonotask of the losing copy shares the const end.
// A cancelled monotask must never deliver its callbacks: queued copies are
// dequeued by Worker::SweepCancelled before their resources are charged,
// in-flight copies are disarmed and their elapsed busy time is recorded as
// wasted work.
struct CancelToken {
  bool cancelled = false;
};

// A fully-resolved monotask handed to a worker for execution. The job
// manager resolves sizes and source locations before enqueueing, so the
// worker needs no knowledge of the DAG.
struct RunnableMonotask {
  JobId job = kInvalidId;
  MonotaskId id = kInvalidId;
  ResourceType type = ResourceType::kCpu;

  // CPU: byte-equivalents of compute. Disk: bytes read/written.
  double work = 0.0;
  // Network: pulls from source workers (bytes per source), all concurrent.
  struct Pull {
    WorkerId src = kInvalidId;
    double bytes = 0.0;
  };
  std::vector<Pull> pulls;

  // Total input bytes (for ordering, rate monitoring, APT accounting).
  double input_bytes = 0.0;

  // Ordering keys (smaller runs first).
  double job_priority = 0.0;
  double intra_key = 0.0;

  // Cancellation token shared by every monotask of one task copy; null for
  // non-cancellable work.
  std::shared_ptr<const CancelToken> cancel;

  // Tracing (src/obs): set by Worker::Submit. `queued_time` is when the
  // monotask entered the worker; `trace_id` is the sampled trace key (0 when
  // the monotask is not traced).
  double queued_time = 0.0;
  uint64_t trace_id = 0;

  // Fired on the simulator when the monotask finishes.
  std::function<void()> on_complete;
  // Fired instead of on_complete when the monotask fails: a transient
  // execution fault, or submission to an already-failed worker. Optional.
  std::function<void()> on_failure;
};

class MonotaskQueue {
 public:
  void Push(RunnableMonotask mt) EXCLUDES(mu_);
  bool Empty() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return order_.empty();
  }
  size_t Size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return order_.size();
  }

  // Removes and returns the highest-priority monotask.
  RunnableMonotask Pop() EXCLUDES(mu_);

  // Re-sorts after job priorities changed (SRJF re-ranking). `priority_of`
  // maps a job id to its current priority; it is invoked with the queue
  // lock released.
  void Reprioritize(const std::function<double(JobId)>& priority_of) EXCLUDES(mu_);

  // Drops every queued monotask whose cancel token fired, without invoking
  // callbacks (cancellation means nobody is waiting for the result). Returns
  // the number removed.
  size_t RemoveCancelled() EXCLUDES(mu_);

  // Total queued input bytes (for APT load reporting).
  double queued_bytes() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return queued_bytes_;
  }

 private:
  struct Entry {
    double job_priority;
    double intra_key;
    uint64_t seq;
    bool operator<(const Entry& other) const {
      if (job_priority != other.job_priority) {
        return job_priority < other.job_priority;
      }
      if (intra_key != other.intra_key) {
        return intra_key < other.intra_key;
      }
      return seq < other.seq;
    }
  };

  mutable Mutex mu_;
  std::set<Entry> order_ GUARDED_BY(mu_);
  // Indexed by seq; holes after Pop.
  std::vector<RunnableMonotask> slots_ GUARDED_BY(mu_);
  std::vector<uint64_t> free_slots_ GUARDED_BY(mu_);
  double queued_bytes_ GUARDED_BY(mu_) = 0.0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
};

}  // namespace ursa

#endif  // SRC_EXEC_MONOTASK_QUEUE_H_
