#include "src/exec/cluster.h"

#include "src/common/logging.h"

namespace ursa {

Cluster::Cluster(Simulator* sim, const ClusterConfig& config)
    : sim_(sim),
      config_(config),
      net_(sim, config.num_workers, config.uplink_bytes_per_sec,
           config.downlink_bytes_per_sec) {
  CHECK_GT(config.num_workers, 0);
  net_.set_enforce_uplinks(config.enforce_uplinks);
  WorkerConfig wc = config.worker;
  wc.default_net_rate = config.downlink_bytes_per_sec;
  workers_.reserve(static_cast<size_t>(config.num_workers));
  for (int i = 0; i < config.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(sim, &net_, static_cast<WorkerId>(i), wc));
  }
}

int Cluster::total_cores() const {
  return size() * config_.worker.cores;
}

double Cluster::total_memory() const {
  return static_cast<double>(size()) * config_.worker.memory_bytes;
}

}  // namespace ursa
