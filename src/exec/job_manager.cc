#include "src/exec/job_manager.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa {

JobManager::JobManager(Simulator* sim, Cluster* cluster, Job* job, JobManagerListener* listener)
    : sim_(sim), cluster_(cluster), job_(job), listener_(listener) {
  tasks_.resize(plan().tasks().size());
  monotasks_.resize(plan().monotasks().size());
  stages_.resize(plan().stages().size());
  remaining_work_ = plan().ExpectedWorkByResource();
}

void JobManager::Start() {
  for (const StageSpec& stage : plan().stages()) {
    stages_[static_cast<size_t>(stage.id)].remaining_tasks = stage.num_tasks;
  }
  for (const MonotaskSpec& mt : plan().monotasks()) {
    monotasks_[static_cast<size_t>(mt.id)].remaining_deps =
        static_cast<int>(mt.intask_deps.size());
  }
  for (const TaskSpec& task : plan().tasks()) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    rt.remaining_async_parents = static_cast<int>(task.async_parents.size());
    rt.remaining_sync_stages = static_cast<int>(task.sync_parent_stages.size());
    rt.remaining_monotasks = static_cast<int>(task.monotasks.size());
  }
  for (const TaskSpec& task : plan().tasks()) {
    const TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    if (rt.remaining_async_parents == 0 && rt.remaining_sync_stages == 0) {
      MarkReady(task.id);
    }
  }
}

void JobManager::MarkReady(TaskId t) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.state == TaskState::kBlocked);
  rt.state = TaskState::kReady;
  rt.timing.ready_time = sim_->Now();
  // Per-resource bytes are exact now: all inputs from outside the task are
  // materialized (parents completed).
  rt.usage = UsageEstimator::EstimateTask(*job_, t, cluster_->metadata(), 0.0);
  ready_unplaced_.push_back(t);
  ready_input_total_ += rt.usage.input_bytes;
  listener_->OnTaskReady(job_->id, t);
}

TaskUsage JobManager::GetUsage(TaskId t) const {
  const TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  TaskUsage usage = rt.usage;
  // Refresh the memory estimate against the current ready set (the r * M(j)
  // cap of section 4.2.1).
  const StageSpec& stage = plan().stage(plan().task(t).stage);
  const double m2i = stage.m2i > 0.0 ? stage.m2i : job_->spec.default_m2i;
  double r = 1.0;
  if (ready_input_total_ > 0.0) {
    r = std::min(1.0, usage.input_bytes / ready_input_total_);
  }
  usage.memory =
      std::min(r * job_->spec.declared_memory_bytes, m2i * usage.input_bytes);
  usage.memory = std::max(usage.memory, 16.0 * 1024 * 1024);
  return usage;
}

void JobManager::RemoveFromReady(TaskId t) {
  auto it = std::find(ready_unplaced_.begin(), ready_unplaced_.end(), t);
  CHECK(it != ready_unplaced_.end());
  ready_unplaced_.erase(it);
  ready_input_total_ -= tasks_[static_cast<size_t>(t)].usage.input_bytes;
  ready_input_total_ = std::max(ready_input_total_, 0.0);
}

bool JobManager::PlaceTask(TaskId t, WorkerId worker_id) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.state == TaskState::kReady) << "placing task in state "
                                       << static_cast<int>(rt.state);
  const TaskUsage usage = GetUsage(t);
  Worker& worker = cluster_->worker(worker_id);
  if (!worker.TryAllocateMemory(usage.memory)) {
    return false;
  }
  rt.state = TaskState::kPlaced;
  rt.worker = worker_id;
  rt.allocated_memory = usage.memory;
  rt.actual_memory = std::min(job_->spec.true_m2i * usage.input_bytes, usage.memory);
  rt.timing.place_time = sim_->Now();
  worker.AddActualMemoryUse(rt.actual_memory);
  RemoveFromReady(t);
  // Stream the task's root monotasks into the worker's queues.
  for (MonotaskId m : plan().task(t).monotasks) {
    if (monotasks_[static_cast<size_t>(m)].remaining_deps == 0) {
      SubmitMonotask(m);
    }
  }
  return true;
}

void JobManager::SubmitMonotask(MonotaskId m) {
  MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
  CHECK(!mrt.submitted);
  mrt.submitted = true;
  const MonotaskSpec& mt = plan().monotask(m);
  const CollapsedOp& cop = plan().cop(mt.cop);
  const TaskRuntime& trt = tasks_[static_cast<size_t>(mt.task)];
  CHECK_NE(trt.worker, kInvalidId);

  RunnableMonotask run;
  run.job = job_->id;
  run.id = m;
  run.type = mt.type;
  run.job_priority = priority_;
  const double input =
      UsageEstimator::MonotaskInputBytes(*job_, m, cluster_->metadata(), nullptr);
  mrt.input_bytes = input;
  run.input_bytes = input;
  switch (mt.type) {
    case ResourceType::kCpu:
      run.work = cop.cost.fixed_cpu_work + input * cop.cost.cpu_complexity;
      break;
    case ResourceType::kDisk:
      run.work = input;
      break;
    case ResourceType::kNetwork:
      run.pulls = UsageEstimator::ResolvePulls(*job_, m, cluster_->metadata());
      break;
  }
  // Queue ordering within the job (section 4.2.3): stage-major; within a
  // stage CPU monotasks run largest-first, network/disk smallest-first.
  if (use_intra_ordering_) {
    const double stage_major = static_cast<double>(plan().task(mt.task).stage) * 1e15;
    run.intra_key = stage_major + (mt.type == ResourceType::kCpu ? -input : input);
  } else {
    run.intra_key = 0.0;
  }
  run.on_complete = [this, m] { OnMonotaskComplete(m); };
  cluster_->worker(trt.worker).Submit(std::move(run));
}

void JobManager::Abort() {
  CHECK(!finished());
  aborted_ = true;
  for (const TaskSpec& task : plan().tasks()) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    if (rt.state == TaskState::kPlaced) {
      Worker& worker = cluster_->worker(rt.worker);
      worker.ReleaseMemory(rt.allocated_memory);
      worker.AddActualMemoryUse(-rt.actual_memory);
    }
  }
  cluster_->metadata().DropJob(job_->id);
}

bool JobManager::DependsOnWorker(WorkerId worker) const {
  for (const TaskSpec& task : plan().tasks()) {
    const TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    if (rt.worker == worker &&
        (rt.state == TaskState::kPlaced || rt.state == TaskState::kCompleted)) {
      return true;
    }
  }
  return false;
}

void JobManager::OnMonotaskComplete(MonotaskId m) {
  if (aborted_) {
    return;  // A late completion from before the abort; the restart owns
             // the job now.
  }
  MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
  const MonotaskSpec& mt = plan().monotask(m);
  TaskRuntime& trt = tasks_[static_cast<size_t>(mt.task)];
  // Record outputs in the metadata store at this task's worker.
  for (const OutputRecord& rec :
       UsageEstimator::ComputeOutputs(*job_, m, mrt.input_bytes)) {
    cluster_->metadata().Put(job_->id, rec.data, rec.partition, rec.bytes, trt.worker);
  }
  remaining_work_[static_cast<size_t>(mt.type)] -= mrt.input_bytes;
  remaining_work_[static_cast<size_t>(mt.type)] =
      std::max(remaining_work_[static_cast<size_t>(mt.type)], 0.0);
  if (mt.type == ResourceType::kCpu) {
    const CollapsedOp& cop = plan().cop(mt.cop);
    cpu_seconds_used_ +=
        (cop.cost.fixed_cpu_work + mrt.input_bytes * cop.cost.cpu_complexity) /
        cluster_->config().worker.cpu_byte_rate;
  }
  listener_->OnMonotaskCompleted(job_->id, mt.type, mrt.input_bytes);
  // Release newly-runnable monotasks of the same task to the same worker.
  for (MonotaskId dep : mt.intask_dependents) {
    MonotaskRuntime& drt = monotasks_[static_cast<size_t>(dep)];
    CHECK_GT(drt.remaining_deps, 0);
    if (--drt.remaining_deps == 0) {
      SubmitMonotask(dep);
    }
  }
  if (--trt.remaining_monotasks == 0) {
    CompleteTask(mt.task);
  }
}

void JobManager::CompleteTask(TaskId t) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.state == TaskState::kPlaced);
  rt.state = TaskState::kCompleted;
  rt.timing.finish_time = sim_->Now();
  Worker& worker = cluster_->worker(rt.worker);
  worker.ReleaseMemory(rt.allocated_memory);
  worker.AddActualMemoryUse(-rt.actual_memory);
  ++completed_tasks_;
  listener_->OnTaskCompleted(job_->id, t);

  const TaskSpec& spec = plan().task(t);
  // Async children: same-index tasks of downstream stages.
  for (TaskId child : spec.async_children) {
    TaskRuntime& crt = tasks_[static_cast<size_t>(child)];
    CHECK_GT(crt.remaining_async_parents, 0);
    if (--crt.remaining_async_parents == 0 && crt.remaining_sync_stages == 0) {
      MarkReady(child);
    }
  }
  // Stage barrier: when the whole stage is done, release sync children.
  StageRuntime& srt = stages_[static_cast<size_t>(spec.stage)];
  CHECK_GT(srt.remaining_tasks, 0);
  if (--srt.remaining_tasks == 0) {
    for (StageId child_stage : plan().stage(spec.stage).sync_child_stages) {
      for (TaskId child : plan().stage(child_stage).tasks) {
        TaskRuntime& crt = tasks_[static_cast<size_t>(child)];
        CHECK_GT(crt.remaining_sync_stages, 0);
        if (--crt.remaining_sync_stages == 0 && crt.remaining_async_parents == 0) {
          MarkReady(child);
        }
      }
    }
  }
  if (finished()) {
    finish_time_ = sim_->Now();
    cluster_->metadata().DropJob(job_->id);
    listener_->OnJobFinished(job_->id);
  }
}

}  // namespace ursa
