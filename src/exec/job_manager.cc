#include "src/exec/job_manager.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/ctrl/control_plane.h"
#include "src/ctrl/journal.h"
#include "src/obs/trace.h"

namespace ursa {

namespace {

// Position of monotask `m` within its task's monotask list (copy state is
// indexed positionally). Task DAGs are small, so a linear scan is fine.
int IndexInTask(const TaskSpec& task, MonotaskId m) {
  for (size_t i = 0; i < task.monotasks.size(); ++i) {
    if (task.monotasks[i] == m) {
      return static_cast<int>(i);
    }
  }
  LOG(Fatal) << "monotask " << m << " not in task " << task.id;
  return -1;
}

}  // namespace

JobManager::JobManager(Simulator* sim, Cluster* cluster, Job* job, JobManagerListener* listener)
    : sim_(sim), cluster_(cluster), job_(job), listener_(listener) {
  tasks_.resize(plan().tasks().size());
  monotasks_.resize(plan().monotasks().size());
  stages_.resize(plan().stages().size());
  remaining_work_ = plan().ExpectedWorkByResource();
}

void JobManager::Start() {
  for (const StageSpec& stage : plan().stages()) {
    stages_[static_cast<size_t>(stage.id)].remaining_tasks = stage.num_tasks;
  }
  for (const MonotaskSpec& mt : plan().monotasks()) {
    monotasks_[static_cast<size_t>(mt.id)].remaining_deps =
        static_cast<int>(mt.intask_deps.size());
  }
  for (const TaskSpec& task : plan().tasks()) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    rt.remaining_async_parents = static_cast<int>(task.async_parents.size());
    rt.remaining_sync_stages = static_cast<int>(task.sync_parent_stages.size());
    rt.remaining_monotasks = static_cast<int>(task.monotasks.size());
  }
  for (const TaskSpec& task : plan().tasks()) {
    const TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    if (rt.remaining_async_parents == 0 && rt.remaining_sync_stages == 0) {
      MarkReady(task.id);
    }
  }
}

void JobManager::MarkReady(TaskId t) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.state == TaskState::kBlocked);
  rt.state = TaskState::kReady;
  rt.timing.ready_time = sim_->Now();
  // Per-resource bytes are exact now: all inputs from outside the task are
  // materialized (parents completed).
  rt.usage = UsageEstimator::EstimateTask(*job_, t, cluster_->metadata(), 0.0);
  ready_unplaced_.push_back(t);
  ready_input_total_ += rt.usage.input_bytes;
  if (tracer_ != nullptr) {
    tracer_->TaskEvent(sim_->Now(), TraceEventKind::kTaskReady, job_->id, t,
                       plan().task(t).stage, kInvalidId);
  }
  listener_->OnTaskReady(job_->id, t);
}

TaskUsage JobManager::GetUsage(TaskId t) const {
  const TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  TaskUsage usage = rt.usage;
  // Refresh the memory estimate against the current ready set (the r * M(j)
  // cap of section 4.2.1).
  const StageSpec& stage = plan().stage(plan().task(t).stage);
  const double m2i = stage.m2i > 0.0 ? stage.m2i : job_->spec.default_m2i;
  double r = 1.0;
  if (ready_input_total_ > 0.0) {
    r = std::min(1.0, usage.input_bytes / ready_input_total_);
  }
  usage.memory =
      std::min(r * job_->spec.declared_memory_bytes, m2i * usage.input_bytes);
  usage.memory = std::max(usage.memory, 16.0 * 1024 * 1024);
  return usage;
}

void JobManager::RemoveFromReady(TaskId t) {
  auto it = std::find(ready_unplaced_.begin(), ready_unplaced_.end(), t);
  CHECK(it != ready_unplaced_.end());
  ready_unplaced_.erase(it);
  ready_input_total_ -= tasks_[static_cast<size_t>(t)].usage.input_bytes;
  ready_input_total_ = std::max(ready_input_total_, 0.0);
}

bool JobManager::PlaceTask(TaskId t, WorkerId worker_id) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.state == TaskState::kReady) << "placing task in state "
                                       << static_cast<int>(rt.state);
  const TaskUsage usage = GetUsage(t);
  Worker& worker = cluster_->worker(worker_id);
  if (!worker.TryAllocateMemory(usage.memory)) {
    return false;
  }
  rt.state = TaskState::kPlaced;
  rt.worker = worker_id;
  rt.avoid_worker = kInvalidId;
  rt.allocated_memory = usage.memory;
  rt.actual_memory = std::min(job_->spec.true_m2i * usage.input_bytes, usage.memory);
  rt.timing.place_time = sim_->Now();
  // Fresh cancel token per placement: flipped if a speculative copy wins.
  rt.cancel = spec_manager_ != nullptr ? std::make_shared<CancelToken>() : nullptr;
  worker.AddActualMemoryUse(rt.actual_memory);
  if (journal_ != nullptr) {
    journal_->Append({JournalKind::kPlace, job_->id, t, worker_id, rt.generation,
                      rt.allocated_memory, rt.actual_memory, sim_->Now()});
  }
  if (tracer_ != nullptr) {
    tracer_->TaskEvent(sim_->Now(), TraceEventKind::kTaskPlaced, job_->id, t,
                       plan().task(t).stage, worker_id);
  }
  RemoveFromReady(t);
  // Stream the task's root monotasks into the worker's queues.
  for (MonotaskId m : plan().task(t).monotasks) {
    if (monotasks_[static_cast<size_t>(m)].remaining_deps == 0) {
      SubmitMonotask(m);
    }
  }
  return true;
}

void JobManager::SubmitMonotask(MonotaskId m) {
  MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
  CHECK(!mrt.submitted);
  mrt.submitted = true;
  DispatchMonotask(m);
}

void JobManager::DispatchMonotask(MonotaskId m) {
  MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
  const MonotaskSpec& mt = plan().monotask(m);
  const CollapsedOp& cop = plan().cop(mt.cop);
  const TaskRuntime& trt = tasks_[static_cast<size_t>(mt.task)];
  CHECK_NE(trt.worker, kInvalidId);

  RunnableMonotask run;
  run.job = job_->id;
  run.id = m;
  run.type = mt.type;
  run.job_priority = priority_;
  run.cancel = trt.cancel;
  const double input =
      UsageEstimator::MonotaskInputBytes(*job_, m, cluster_->metadata(), nullptr);
  mrt.input_bytes = input;
  run.input_bytes = input;
  switch (mt.type) {
    case ResourceType::kCpu:
      run.work = cop.cost.fixed_cpu_work + input * cop.cost.cpu_complexity;
      break;
    case ResourceType::kDisk:
      run.work = input;
      break;
    case ResourceType::kNetwork:
      run.pulls = UsageEstimator::ResolvePulls(*job_, m, cluster_->metadata());
      break;
  }
  // Queue ordering within the job (section 4.2.3): stage-major; within a
  // stage CPU monotasks run largest-first, network/disk smallest-first.
  if (use_intra_ordering_) {
    const double stage_major = static_cast<double>(plan().task(mt.task).stage) * 1e15;
    run.intra_key = stage_major + (mt.type == ResourceType::kCpu ? -input : input);
  } else {
    run.intra_key = 0.0;
  }
  // Callbacks carry the task's generation so completions or failures of an
  // execution that has since been invalidated (lineage reset, re-placement)
  // are ignored.
  // The weak `alive` guard makes the callbacks safe even if this JM was
  // destroyed (aborted and reclaimed) before a deferred callback fires.
  const int gen = trt.generation;
  if (ctrl_ != nullptr) {
    // Identity-routed wire reports: the callbacks capture no JM pointer, so
    // an orphaned monotask survives a scheduler crash and its report is
    // routed to (or fenced against) whichever incarnation owns the job when
    // it finally lands.
    ControlPlane* ctrl = ctrl_;
    ControlPlane::CompletionMsg msg;
    msg.job = job_->id;
    msg.incarnation = incarnation_;
    msg.monotask = m;
    msg.generation = gen;
    msg.attempt = mrt.attempts;
    msg.worker = trt.worker;
    run.on_complete = [ctrl, msg] {
      ControlPlane::CompletionMsg report = msg;
      report.failed = false;
      ctrl->CompletionToScheduler(report);
    };
    run.on_failure = [ctrl, msg] {
      ControlPlane::CompletionMsg report = msg;
      report.failed = true;
      ctrl->CompletionToScheduler(report);
    };
    MsgKey key;
    key.job = job_->id;
    key.incarnation = incarnation_;
    key.monotask = m;
    key.generation = gen;
    key.attempt = mrt.attempts;
    key.channel = 0;
    ctrl->Dispatch(trt.worker, key, std::move(run));
    return;
  }
  run.on_complete = [this, m, gen, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnMonotaskComplete(m, gen);
  };
  run.on_failure = [this, m, gen, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnMonotaskFailed(m, gen);
  };
  cluster_->worker(trt.worker).Submit(std::move(run));
}

void JobManager::OnMonotaskCompleteWire(MonotaskId m, int generation, int attempt) {
  (void)attempt;  // Completion dedup is the done-flag; attempt is informational.
  OnMonotaskComplete(m, generation);
}

void JobManager::OnMonotaskFailedWire(MonotaskId m, int generation, int attempt) {
  if (aborted_) {
    return;
  }
  const MonotaskSpec& mt = plan().monotask(m);
  if (generation != tasks_[static_cast<size_t>(mt.task)].generation) {
    return;  // Failure of an invalidated execution.
  }
  const MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
  if (mrt.done || attempt != mrt.attempts) {
    // Duplicate of an already-handled failure (the handler bumped attempts),
    // or the completion raced ahead of a retransmitted failure report.
    return;
  }
  OnMonotaskFailed(m, generation);
}

void JobManager::Abort() {
  CHECK(!finished());
  aborted_ = true;
  for (const TaskSpec& task : plan().tasks()) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    if (rt.spec != nullptr) {
      CancelSpeculativeCopy(task.id, SpecEnd::kCancelled);
    }
    if (rt.state == TaskState::kPlaced) {
      Worker& worker = cluster_->worker(rt.worker);
      worker.ReleaseMemory(rt.allocated_memory);
      worker.AddActualMemoryUse(-rt.actual_memory);
    }
  }
  cluster_->metadata().DropJob(job_->id);
}

bool JobManager::DependsOnWorker(WorkerId worker) const {
  for (const TaskSpec& task : plan().tasks()) {
    const TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    if (rt.worker == worker &&
        (rt.state == TaskState::kPlaced || rt.state == TaskState::kCompleted)) {
      return true;
    }
  }
  return false;
}

void JobManager::OnMonotaskComplete(MonotaskId m, int generation) {
  if (aborted_) {
    return;  // A late completion from before the abort; the restart owns
             // the job now.
  }
  MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
  const MonotaskSpec& mt = plan().monotask(m);
  TaskRuntime& trt = tasks_[static_cast<size_t>(mt.task)];
  if (generation != trt.generation) {
    return;  // Stale completion of an invalidated execution.
  }
  if (mrt.done) {
    return;  // Duplicate delivery of this execution's completion report.
  }
  mrt.done = true;
  mrt.attempts = 0;
  if (journal_ != nullptr) {
    journal_->Append({JournalKind::kMonoDone, job_->id, m, trt.worker, trt.generation,
                      mrt.input_bytes, 0.0, sim_->Now()});
  }
  // Record outputs in the metadata store at this task's worker.
  for (const OutputRecord& rec :
       UsageEstimator::ComputeOutputs(*job_, m, mrt.input_bytes)) {
    cluster_->metadata().Put(job_->id, rec.data, rec.partition, rec.bytes, trt.worker);
  }
  remaining_work_[static_cast<size_t>(mt.type)] -= mrt.input_bytes;
  remaining_work_[static_cast<size_t>(mt.type)] =
      std::max(remaining_work_[static_cast<size_t>(mt.type)], 0.0);
  if (mt.type == ResourceType::kCpu) {
    const CollapsedOp& cop = plan().cop(mt.cop);
    cpu_seconds_used_ +=
        (cop.cost.fixed_cpu_work + mrt.input_bytes * cop.cost.cpu_complexity) /
        cluster_->config().worker.cpu_byte_rate;
  }
  listener_->OnMonotaskCompleted(job_->id, mt.type, mrt.input_bytes);
  // Release newly-runnable monotasks of the same task to the same worker.
  for (MonotaskId dep : mt.intask_dependents) {
    MonotaskRuntime& drt = monotasks_[static_cast<size_t>(dep)];
    CHECK_GT(drt.remaining_deps, 0);
    if (--drt.remaining_deps == 0) {
      SubmitMonotask(dep);
    }
  }
  if (--trt.remaining_monotasks == 0) {
    CompleteTask(mt.task);
  }
}

void JobManager::ConfigureFaultPolicy(int max_attempts, double backoff_base,
                                      double backoff_cap, FaultStats* stats) {
  CHECK_GE(max_attempts, 1);
  CHECK_GT(backoff_base, 0.0);
  CHECK_GE(backoff_cap, backoff_base);
  max_monotask_attempts_ = max_attempts;
  retry_backoff_base_ = backoff_base;
  retry_backoff_cap_ = backoff_cap;
  fault_stats_ = stats;
}

void JobManager::OnMonotaskFailed(MonotaskId m, int generation) {
  if (aborted_) {
    return;
  }
  const MonotaskSpec& mt = plan().monotask(m);
  TaskRuntime& trt = tasks_[static_cast<size_t>(mt.task)];
  if (generation != trt.generation) {
    return;  // Failure of an already-invalidated execution.
  }
  MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
  ++mrt.attempts;
  if (journal_ != nullptr) {
    journal_->Append({JournalKind::kMonoFailed, job_->id, m, trt.worker, trt.generation,
                      0.0, 0.0, sim_->Now()});
  }
  const Worker& worker = cluster_->worker(trt.worker);
  if (worker.failed()) {
    // The worker died under us (submission dropped or the scheduler has not
    // recovered yet): retrying there is pointless.
    if (fault_stats_ != nullptr) {
      fault_stats_->RecordWorkerLossFailure();
    }
    if (trt.spec != nullptr) {
      // A live speculative copy keeps the task going: hand it the race
      // instead of resetting. (HandleWorkerFailureForSpeculation usually
      // sets this first; a dropped submission's deferred failure can win.)
      // The dead worker's memory ledger was wiped at Fail(); drop the stale
      // claim so a later reset or abort cannot release it against the
      // worker after a rejoin.
      trt.primary_lost = true;
      trt.allocated_memory = 0.0;
      trt.actual_memory = 0.0;
      return;
    }
    if (fault_stats_ != nullptr) {
      fault_stats_->RecordEscalation();
    }
    ResetTaskForReplacement(mt.task);
    return;
  }
  if (fault_stats_ != nullptr) {
    fault_stats_->RecordTransientFailure();
  }
  if (mrt.attempts < max_monotask_attempts_) {
    // Capped exponential backoff on the same worker.
    const double delay = std::min(
        retry_backoff_cap_, retry_backoff_base_ * std::pow(2.0, mrt.attempts - 1));
    if (fault_stats_ != nullptr) {
      fault_stats_->RecordRetry(sim_->Now());
    }
    sim_->Schedule(delay, [this, m, generation, alive = std::weak_ptr<const bool>(alive_)] {
      if (alive.expired()) {
        return;
      }
      ResubmitMonotask(m, generation);
    });
  } else {
    if (fault_stats_ != nullptr) {
      fault_stats_->RecordEscalation();
    }
    ResetTaskForReplacement(mt.task);
  }
}

void JobManager::ResubmitMonotask(MonotaskId m, int generation) {
  if (aborted_) {
    return;
  }
  const MonotaskSpec& mt = plan().monotask(m);
  if (generation != tasks_[static_cast<size_t>(mt.task)].generation) {
    return;  // The task moved on (reset or re-placed) during the backoff.
  }
  monotasks_[static_cast<size_t>(m)].submitted = false;
  SubmitMonotask(m);
}

void JobManager::ResetTaskRuntime(TaskId t) {
  const TaskSpec& spec = plan().task(t);
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  if (rt.spec != nullptr) {
    // A reset invalidates the race along with the primary execution.
    CancelSpeculativeCopy(t, SpecEnd::kCancelled);
  }
  // The old primary's monotasks are invalidated by the generation bump (as
  // before speculation existed); the token is abandoned, not flipped, so
  // resets do not inflate the speculation waste counters.
  rt.cancel.reset();
  rt.primary_lost = false;
  rt.restored = false;
  ++rt.generation;
  if (journal_ != nullptr) {
    journal_->Append({JournalKind::kTaskReset, job_->id, t, kInvalidId, rt.generation,
                      0.0, 0.0, sim_->Now()});
  }
  rt.worker = kInvalidId;
  rt.allocated_memory = 0.0;
  rt.actual_memory = 0.0;
  rt.avoid_worker = kInvalidId;
  rt.timing.place_time = -1.0;
  rt.timing.finish_time = -1.0;
  rt.remaining_monotasks = static_cast<int>(spec.monotasks.size());
  for (MonotaskId m : spec.monotasks) {
    MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
    if (mrt.done) {
      // The re-execution has to redo this work; put it back into R.
      const auto type = static_cast<size_t>(plan().monotask(m).type);
      remaining_work_[type] += mrt.input_bytes;
    }
    mrt.done = false;
    mrt.submitted = false;
    mrt.attempts = 0;
    mrt.remaining_deps = static_cast<int>(plan().monotask(m).intask_deps.size());
  }
}

void JobManager::ResetTaskForReplacement(TaskId t) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.state == TaskState::kPlaced);
  const WorkerId old_worker = rt.worker;
  Worker& worker = cluster_->worker(old_worker);
  worker.ReleaseMemory(rt.allocated_memory);
  worker.AddActualMemoryUse(-rt.actual_memory);
  ResetTaskRuntime(t);
  rt.avoid_worker = old_worker;
  rt.state = TaskState::kBlocked;
  MarkReady(t);
}

JobManager::RecoveryResult JobManager::RecoverFromWorkerFailure(WorkerId failed) {
  RecoveryResult result;
  if (aborted_ || finished()) {
    return result;
  }
  // Idempotent: the scheduler may already have done this (it must when
  // lineage recovery is disabled), but seeding below relies on it.
  HandleWorkerFailureForSpeculation(failed);
  const size_t n = tasks_.size();
  for (size_t i = 0; i < n; ++i) {
    if (tasks_[i].state == TaskState::kPlaced || tasks_[i].state == TaskState::kCompleted) {
      ++result.tasks_started_before;
    }
  }

  // Phase 1 - lineage analysis. Seed with in-flight placements on the dead
  // worker, then propagate to a fixpoint:
  //  * a completed task whose outputs lived on the dead worker is lost iff
  //    some consumer still needs those outputs (it is not completed, or it
  //    is itself being reset);
  //  * a ready/placed task is invalidated when any producer it reads from
  //    (async parent or any task of a sync parent stage) is being reset.
  // Blocked tasks need no flag: their counters are rebuilt in phase 2.
  std::vector<char> reset(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const TaskRuntime& rt = tasks_[i];
    // A placement on the dead worker with a live copy elsewhere is NOT lost:
    // HandleWorkerFailureForSpeculation marked it primary_lost and the copy
    // races on alone. Conversely a primary_lost task whose copy just died
    // (cancelled above by the same failure episode) has no runner left and
    // must be reset.
    if (rt.state == TaskState::kPlaced && rt.spec == nullptr &&
        (rt.worker == failed || rt.primary_lost)) {
      reset[i] = 1;
    }
  }
  auto any_dependent_needs = [&](const TaskSpec& spec) {
    for (TaskId child : spec.async_children) {
      const TaskRuntime& crt = tasks_[static_cast<size_t>(child)];
      if (crt.state != TaskState::kCompleted || reset[static_cast<size_t>(child)]) {
        return true;
      }
    }
    for (StageId cs : plan().stage(spec.stage).sync_child_stages) {
      for (TaskId child : plan().stage(cs).tasks) {
        const TaskRuntime& crt = tasks_[static_cast<size_t>(child)];
        if (crt.state != TaskState::kCompleted || reset[static_cast<size_t>(child)]) {
          return true;
        }
      }
    }
    return false;
  };
  auto any_producer_reset = [&](const TaskSpec& spec) {
    for (TaskId parent : spec.async_parents) {
      if (reset[static_cast<size_t>(parent)]) {
        return true;
      }
    }
    for (StageId ps : spec.sync_parent_stages) {
      for (TaskId parent : plan().stage(ps).tasks) {
        if (reset[static_cast<size_t>(parent)]) {
          return true;
        }
      }
    }
    return false;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (reset[i]) {
        continue;
      }
      const TaskRuntime& rt = tasks_[i];
      const TaskSpec& spec = plan().task(static_cast<TaskId>(i));
      if (rt.state == TaskState::kCompleted) {
        if (rt.worker == failed && any_dependent_needs(spec)) {
          reset[i] = 1;
          changed = true;
        }
      } else if (rt.state == TaskState::kReady || rt.state == TaskState::kPlaced) {
        if (any_producer_reset(spec)) {
          reset[i] = 1;
          changed = true;
        }
      }
    }
  }

  // Phase 2 - apply. Un-complete / de-schedule every reset task, then
  // rebuild stage barriers, dependency counters and the ready frontier.
  // Untouched completed tasks and untouched placements keep running.
  int num_reset = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!reset[i]) {
      continue;
    }
    ++num_reset;
    TaskRuntime& rt = tasks_[i];
    if (rt.state == TaskState::kPlaced) {
      // Placements on the failed worker itself release nothing: their charges
      // were wiped with the rest of the worker-side state when it failed.
      // This must not rely on the worker still being down — a worker that
      // failed AND rejoined while the scheduler was crashed is alive again
      // with a fresh ledger by the time recovery reconciles the episode, and
      // releasing against it would underflow. Placements reset on OTHER
      // (alive) workers by the lineage fixpoint release normally.
      if (rt.worker != failed) {
        Worker& worker = cluster_->worker(rt.worker);
        worker.ReleaseMemory(rt.allocated_memory);
        worker.AddActualMemoryUse(-rt.actual_memory);
      }
    } else if (rt.state == TaskState::kCompleted) {
      --completed_tasks_;
    }
    ResetTaskRuntime(static_cast<TaskId>(i));
    rt.state = TaskState::kBlocked;
    if (!rt.recovering) {
      rt.recovering = true;
      if (recovering_outstanding_ == 0) {
        recovery_start_ = sim_->Now();
      }
      ++recovering_outstanding_;
    }
  }
  result.tasks_reset = num_reset;
  if (num_reset == 0) {
    return result;  // Job untouched by this failure.
  }

  for (const StageSpec& stage : plan().stages()) {
    int remaining = 0;
    for (TaskId t : stage.tasks) {
      if (tasks_[static_cast<size_t>(t)].state != TaskState::kCompleted) {
        ++remaining;
      }
    }
    stages_[static_cast<size_t>(stage.id)].remaining_tasks = remaining;
  }
  // Rebuild dependency counters for every task that is not completed and not
  // an untouched in-flight placement, then recompute the ready frontier.
  ready_unplaced_.clear();
  ready_input_total_ = 0.0;
  for (const TaskSpec& spec : plan().tasks()) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(spec.id)];
    if (rt.state == TaskState::kCompleted || rt.state == TaskState::kPlaced) {
      continue;
    }
    rt.state = TaskState::kBlocked;
    int async_parents = 0;
    for (TaskId parent : spec.async_parents) {
      if (tasks_[static_cast<size_t>(parent)].state != TaskState::kCompleted) {
        ++async_parents;
      }
    }
    rt.remaining_async_parents = async_parents;
    int sync_stages = 0;
    for (StageId ps : spec.sync_parent_stages) {
      if (stages_[static_cast<size_t>(ps)].remaining_tasks > 0) {
        ++sync_stages;
      }
    }
    rt.remaining_sync_stages = sync_stages;
  }
  for (const TaskSpec& spec : plan().tasks()) {
    const TaskRuntime& rt = tasks_[static_cast<size_t>(spec.id)];
    if (rt.state == TaskState::kBlocked && rt.remaining_async_parents == 0 &&
        rt.remaining_sync_stages == 0) {
      MarkReady(spec.id);
    }
  }
  return result;
}

void JobManager::RestoreFromImage(const JobImage& image) {
  CHECK(!aborted_);
  CHECK_EQ(image.tasks.size(), plan().tasks().size());
  CHECK_EQ(image.mono_done.size(), plan().monotasks().size());
  // Base counters, exactly as Start() would set them.
  for (const StageSpec& stage : plan().stages()) {
    stages_[static_cast<size_t>(stage.id)].remaining_tasks = stage.num_tasks;
  }
  for (const MonotaskSpec& mt : plan().monotasks()) {
    monotasks_[static_cast<size_t>(mt.id)].remaining_deps =
        static_cast<int>(mt.intask_deps.size());
  }
  for (const TaskSpec& task : plan().tasks()) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    rt.remaining_async_parents = static_cast<int>(task.async_parents.size());
    rt.remaining_sync_stages = static_cast<int>(task.sync_parent_stages.size());
    rt.remaining_monotasks = static_cast<int>(task.monotasks.size());
  }
  // Fold journaled monotask completions back in without re-running their
  // side effects: outputs already live in the metadata store (worker-side
  // state that survived the crash), the listener was already told, and the
  // arrival-rate estimators already counted them. Only the counters replay.
  for (const MonotaskSpec& mt : plan().monotasks()) {
    const size_t i = static_cast<size_t>(mt.id);
    MonotaskRuntime& mrt = monotasks_[i];
    mrt.attempts = image.mono_attempts[i];
    if (image.mono_done[i] == 0) {
      continue;
    }
    mrt.done = true;
    mrt.submitted = true;
    mrt.attempts = 0;
    mrt.input_bytes = image.mono_bytes[i];
    auto& remaining = remaining_work_[static_cast<size_t>(mt.type)];
    remaining = std::max(remaining - mrt.input_bytes, 0.0);
    if (mt.type == ResourceType::kCpu) {
      const CollapsedOp& cop = plan().cop(mt.cop);
      cpu_seconds_used_ +=
          (cop.cost.fixed_cpu_work + mrt.input_bytes * cop.cost.cpu_complexity) /
          cluster_->config().worker.cpu_byte_rate;
    }
    for (MonotaskId dep : mt.intask_dependents) {
      --monotasks_[static_cast<size_t>(dep)].remaining_deps;
    }
    --tasks_[static_cast<size_t>(mt.task)].remaining_monotasks;
  }
  // Task states. Completed tasks re-complete without side effects; placed
  // tasks are restored WITHOUT TryAllocateMemory — their memory charges are
  // worker-side state and survived the crash.
  for (const TaskSpec& task : plan().tasks()) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    const TaskImage& ti = image.tasks[static_cast<size_t>(task.id)];
    rt.generation = ti.generation;
    if (ti.done) {
      rt.state = TaskState::kCompleted;
      rt.worker = ti.worker;
      rt.timing.ready_time = ti.place_time;
      rt.timing.place_time = ti.place_time;
      rt.timing.finish_time = ti.finish_time;
      ++completed_tasks_;
      StageRuntime& srt = stages_[static_cast<size_t>(task.stage)];
      CHECK_GT(srt.remaining_tasks, 0);
      --srt.remaining_tasks;
    } else if (ti.worker != kInvalidId) {
      rt.state = TaskState::kPlaced;
      rt.worker = ti.worker;
      rt.allocated_memory = ti.allocated_memory;
      rt.actual_memory = ti.actual_memory;
      rt.timing.ready_time = ti.place_time;
      rt.timing.place_time = ti.place_time;
      rt.usage = UsageEstimator::EstimateTask(*job_, task.id, cluster_->metadata(), 0.0);
      // The pre-crash monotasks on the worker hold the old incarnation's
      // cancel token, so this execution can no longer be cancelled
      // cooperatively: mark it restored and keep it out of speculation.
      rt.cancel = nullptr;
      rt.restored = true;
      // A monotask was dispatched exactly when its last in-task dependency
      // completed; re-derive the flag (ResyncDispatches then re-sends any
      // dispatch the worker never acked).
      for (MonotaskId m : task.monotasks) {
        MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
        if (!mrt.done) {
          mrt.submitted = mrt.remaining_deps == 0;
        }
      }
    }
  }
  // Rebuild dependency counters and the readiness frontier (same
  // recomputation as lineage recovery's apply phase).
  ready_unplaced_.clear();
  ready_input_total_ = 0.0;
  for (const TaskSpec& spec : plan().tasks()) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(spec.id)];
    if (rt.state == TaskState::kCompleted || rt.state == TaskState::kPlaced) {
      continue;
    }
    rt.state = TaskState::kBlocked;
    int async_parents = 0;
    for (TaskId parent : spec.async_parents) {
      if (tasks_[static_cast<size_t>(parent)].state != TaskState::kCompleted) {
        ++async_parents;
      }
    }
    rt.remaining_async_parents = async_parents;
    int sync_stages = 0;
    for (StageId ps : spec.sync_parent_stages) {
      if (stages_[static_cast<size_t>(ps)].remaining_tasks > 0) {
        ++sync_stages;
      }
    }
    rt.remaining_sync_stages = sync_stages;
  }
  for (const TaskSpec& spec : plan().tasks()) {
    const TaskRuntime& rt = tasks_[static_cast<size_t>(spec.id)];
    if (rt.state == TaskState::kBlocked && rt.remaining_async_parents == 0 &&
        rt.remaining_sync_stages == 0) {
      MarkReady(spec.id);
    }
  }
}

int JobManager::ResyncDispatches() {
  CHECK(ctrl_ != nullptr);
  int redispatched = 0;
  for (const TaskSpec& task : plan().tasks()) {
    const TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    if (rt.state != TaskState::kPlaced) {
      continue;
    }
    for (MonotaskId m : task.monotasks) {
      const MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
      if (!mrt.submitted || mrt.done) {
        continue;
      }
      MsgKey key;
      key.job = job_->id;
      key.incarnation = incarnation_;
      key.monotask = m;
      key.generation = rt.generation;
      key.attempt = mrt.attempts;
      key.channel = 0;
      if (ctrl_->Delivered(rt.worker, key)) {
        // The worker acked this dispatch before the crash: the orphan is
        // still queued or running there and its report will re-attach.
        continue;
      }
      // Either the send died with the old scheduler (fenced / never
      // delivered) or a retry-backoff event was lost in the crash.
      DispatchMonotask(m);
      ++redispatched;
    }
  }
  return redispatched;
}

void JobManager::ForfeitSpeculation() {
  if (aborted_ || finished()) {
    return;
  }
  for (const TaskSpec& task : plan().tasks()) {
    if (tasks_[static_cast<size_t>(task.id)].spec != nullptr) {
      // The copy's cancel/liveness tokens die with this JM: tear it down
      // deterministically instead of leaking the race onto the worker. A
      // primary_lost task left without a runner is re-seeded by the
      // post-recovery failed-worker reconciliation pass.
      CancelSpeculativeCopy(task.id, SpecEnd::kCancelled);
    }
  }
}

void JobManager::CompleteTask(TaskId t) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.state == TaskState::kPlaced);
  if (rt.spec != nullptr) {
    // The primary finished every monotask first: the copy loses the race.
    CancelSpeculativeCopy(t, SpecEnd::kLost);
  }
  if (spec_manager_ != nullptr && rt.timing.place_time >= 0.0) {
    // Feed the straggler detector. Speculatively-won tasks still measure
    // from the primary's placement: the duration the stage actually paid.
    stage_durations_[static_cast<size_t>(plan().task(t).stage)].Add(
        sim_->Now() - rt.timing.place_time);
  }
  rt.state = TaskState::kCompleted;
  rt.timing.finish_time = sim_->Now();
  if (journal_ != nullptr) {
    journal_->Append({JournalKind::kTaskDone, job_->id, t, rt.worker, rt.generation,
                      rt.timing.place_time, 0.0, sim_->Now()});
  }
  if (tracer_ != nullptr) {
    tracer_->TaskEvent(sim_->Now(), TraceEventKind::kTaskCompleted, job_->id, t,
                       plan().task(t).stage, rt.worker);
  }
  if (rt.recovering) {
    rt.recovering = false;
    CHECK_GT(recovering_outstanding_, 0);
    if (--recovering_outstanding_ == 0 && fault_stats_ != nullptr) {
      fault_stats_->RecordRecoveryLatency(sim_->Now() - recovery_start_);
    }
  }
  Worker& worker = cluster_->worker(rt.worker);
  worker.ReleaseMemory(rt.allocated_memory);
  worker.AddActualMemoryUse(-rt.actual_memory);
  ++completed_tasks_;
  listener_->OnTaskCompleted(job_->id, t);

  const TaskSpec& spec = plan().task(t);
  // Async children: same-index tasks of downstream stages. Children past the
  // blocked state are skipped: after lineage recovery a reset task can
  // re-complete while a child that survived the failure is already running
  // or done, and its dependency counters are long since spent.
  for (TaskId child : spec.async_children) {
    TaskRuntime& crt = tasks_[static_cast<size_t>(child)];
    if (crt.state != TaskState::kBlocked) {
      continue;
    }
    CHECK_GT(crt.remaining_async_parents, 0);
    if (--crt.remaining_async_parents == 0 && crt.remaining_sync_stages == 0) {
      MarkReady(child);
    }
  }
  // Stage barrier: when the whole stage is done, release sync children.
  StageRuntime& srt = stages_[static_cast<size_t>(spec.stage)];
  CHECK_GT(srt.remaining_tasks, 0);
  if (--srt.remaining_tasks == 0) {
    for (StageId child_stage : plan().stage(spec.stage).sync_child_stages) {
      for (TaskId child : plan().stage(child_stage).tasks) {
        TaskRuntime& crt = tasks_[static_cast<size_t>(child)];
        if (crt.state != TaskState::kBlocked) {
          continue;  // Barrier re-fired after recovery; child already moved on.
        }
        CHECK_GT(crt.remaining_sync_stages, 0);
        if (--crt.remaining_sync_stages == 0 && crt.remaining_async_parents == 0) {
          MarkReady(child);
        }
      }
    }
  }
  if (finished()) {
    finish_time_ = sim_->Now();
    cluster_->metadata().DropJob(job_->id);
    listener_->OnJobFinished(job_->id);
  }
}

// --- Speculative execution (DESIGN.md section 9). ---

void JobManager::ConfigureSpeculation(SpeculationManager* manager) {
  spec_manager_ = manager;
  stage_durations_.assign(plan().stages().size(), RobustSample());
}

int JobManager::CountPlacedTasks() const {
  int placed = 0;
  for (const TaskRuntime& rt : tasks_) {
    placed += rt.state == TaskState::kPlaced ? 1 : 0;
  }
  return placed;
}

void JobManager::CollectPlacedStages(std::vector<std::pair<WorkerId, StageId>>* out) const {
  if (aborted_) {
    return;
  }
  for (size_t t = 0; t < tasks_.size(); ++t) {
    const TaskRuntime& rt = tasks_[t];
    if (rt.state != TaskState::kPlaced) {
      continue;
    }
    const StageId stage = plan().task(static_cast<TaskId>(t)).stage;
    if (rt.worker != kInvalidId && !rt.primary_lost) {
      out->emplace_back(rt.worker, stage);
    }
    if (rt.spec != nullptr && rt.spec->worker != kInvalidId) {
      out->emplace_back(rt.spec->worker, stage);
    }
  }
}

void JobManager::CollectStragglerCandidates(double now,
                                            std::vector<StragglerCandidate>* out) const {
  if (spec_manager_ == nullptr || aborted_ || finished()) {
    return;
  }
  const SpeculationConfig& cfg = spec_manager_->config();
  for (const TaskSpec& task : plan().tasks()) {
    const TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    if (rt.state != TaskState::kPlaced || rt.spec != nullptr || rt.primary_lost ||
        rt.restored) {
      // `restored`: the placement survived a scheduler crash, but its cancel
      // token did not — a copy could never cancel it, so don't race one.
      continue;
    }
    if (rt.worker == kInvalidId || cluster_->worker(rt.worker).failed()) {
      continue;  // Lineage recovery owns this one.
    }
    const double elapsed = now - rt.timing.place_time;
    if (!IsStraggler(cfg, stage_durations_[static_cast<size_t>(task.stage)], elapsed)) {
      continue;
    }
    StragglerCandidate cand;
    cand.job = job_->id;
    cand.task = task.id;
    cand.stage = task.stage;
    cand.worker = rt.worker;
    cand.elapsed = elapsed;
    double total = 0.0;
    for (size_t r = 0; r < kNumMonotaskResources; ++r) {
      cand.bytes[r] = rt.usage.bytes[r];
      total += rt.usage.bytes[r];
    }
    double done = 0.0;
    for (MonotaskId m : task.monotasks) {
      const MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
      if (mrt.done) {
        done += mrt.input_bytes;
      }
    }
    cand.memory = rt.allocated_memory;
    cand.estimated_time_to_finish =
        EstimatedTimeToFinish(elapsed, total > 0.0 ? done / total : 0.0);
    out->push_back(cand);
  }
}

bool JobManager::PlaceSpeculative(TaskId t, WorkerId worker_id) {
  CHECK(spec_manager_ != nullptr);
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  if (rt.state != TaskState::kPlaced || rt.spec != nullptr || rt.primary_lost ||
      worker_id == rt.worker) {
    return false;
  }
  Worker& worker = cluster_->worker(worker_id);
  if (worker.failed() || !worker.TryAllocateMemory(rt.allocated_memory)) {
    return false;
  }
  const TaskSpec& spec = plan().task(t);
  auto copy = std::make_unique<SpecCopy>();
  copy->worker = worker_id;
  copy->channel = 1 + spec_seq_++;
  copy->start_time = sim_->Now();
  copy->allocated_memory = rt.allocated_memory;
  copy->actual_memory = rt.actual_memory;
  worker.AddActualMemoryUse(copy->actual_memory);
  const size_t n = spec.monotasks.size();
  copy->remaining_monotasks = static_cast<int>(n);
  copy->remaining_deps.resize(n);
  copy->submitted.assign(n, 0);
  copy->done.assign(n, 0);
  copy->input_bytes.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    copy->remaining_deps[i] =
        static_cast<int>(plan().monotask(spec.monotasks[i]).intask_deps.size());
  }
  rt.spec = std::move(copy);
  spec_manager_->OnLaunched();
  if (tracer_ != nullptr) {
    tracer_->TaskEvent(sim_->Now(), TraceEventKind::kSpecLaunched, job_->id, t,
                       spec.stage, worker_id);
  }
  // Completion events are scheduled, never synchronous, so this loop cannot
  // re-enter the copy's state.
  for (size_t i = 0; i < n; ++i) {
    if (rt.spec->remaining_deps[i] == 0) {
      SubmitSpecMonotask(t, static_cast<int>(i));
    }
  }
  return true;
}

void JobManager::SubmitSpecMonotask(TaskId t, int idx) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  SpecCopy& copy = *rt.spec;
  CHECK(!copy.submitted[static_cast<size_t>(idx)]);
  copy.submitted[static_cast<size_t>(idx)] = 1;
  const TaskSpec& spec = plan().task(t);
  const MonotaskId m = spec.monotasks[static_cast<size_t>(idx)];
  const MonotaskSpec& mt = plan().monotask(m);
  const CollapsedOp& cop = plan().cop(mt.cop);

  RunnableMonotask run;
  run.job = job_->id;
  run.id = m;
  run.type = mt.type;
  run.job_priority = priority_;
  run.cancel = copy.cancel;
  // Inputs produced inside the copy come from its local buffer; everything
  // from outside the task is already committed metadata (parents completed).
  const double input =
      UsageEstimator::MonotaskInputBytes(*job_, m, cluster_->metadata(), &copy.outputs);
  copy.input_bytes[static_cast<size_t>(idx)] = input;
  run.input_bytes = input;
  switch (mt.type) {
    case ResourceType::kCpu:
      run.work = cop.cost.fixed_cpu_work + input * cop.cost.cpu_complexity;
      break;
    case ResourceType::kDisk:
      run.work = input;
      break;
    case ResourceType::kNetwork:
      run.pulls = UsageEstimator::ResolvePulls(*job_, m, cluster_->metadata(),
                                               &copy.outputs, copy.worker);
      break;
  }
  if (use_intra_ordering_) {
    const double stage_major = static_cast<double>(spec.stage) * 1e15;
    run.intra_key = stage_major + (mt.type == ResourceType::kCpu ? -input : input);
  } else {
    run.intra_key = 0.0;
  }
  // The copy's liveness token replaces generation bookkeeping: deciding the
  // race (either way) destroys the copy and disarms every pending callback.
  auto on_complete = [this, t, idx, alive = std::weak_ptr<const bool>(copy.alive)] {
    if (alive.expired()) {
      return;
    }
    OnSpecMonotaskComplete(t, idx);
  };
  auto on_failure = [this, t, idx, alive = std::weak_ptr<const bool>(copy.alive)] {
    if (alive.expired()) {
      return;
    }
    OnSpecMonotaskFailed(t, idx);
  };
  if (ctrl_ != nullptr) {
    // Copy reports ride the reliable notify channel; their routing state is
    // the liveness token (a scheduler crash forfeits every copy, expiring the
    // token, so late deliveries are no-ops rather than misroutes).
    ControlPlane* ctrl = ctrl_;
    const WorkerId cw = copy.worker;
    run.on_complete = [ctrl, cw, cb = std::move(on_complete)] {
      ctrl->NotifyScheduler(cw, cb);
    };
    run.on_failure = [ctrl, cw, cb = std::move(on_failure)] {
      ctrl->NotifyScheduler(cw, cb);
    };
    MsgKey key;
    key.job = job_->id;
    key.incarnation = incarnation_;
    key.monotask = m;
    key.generation = rt.generation;
    key.attempt = 0;
    key.channel = copy.channel;
    ctrl->Dispatch(copy.worker, key, std::move(run));
    return;
  }
  run.on_complete = std::move(on_complete);
  run.on_failure = std::move(on_failure);
  cluster_->worker(copy.worker).Submit(std::move(run));
}

void JobManager::OnSpecMonotaskComplete(TaskId t, int idx) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.spec != nullptr);
  SpecCopy& copy = *rt.spec;
  if (copy.done[static_cast<size_t>(idx)]) {
    return;  // Duplicate delivery; the dependent fan-out already ran.
  }
  copy.done[static_cast<size_t>(idx)] = 1;
  const TaskSpec& spec = plan().task(t);
  const MonotaskId m = spec.monotasks[static_cast<size_t>(idx)];
  const MonotaskSpec& mt = plan().monotask(m);
  // Buffer outputs locally; they reach the metadata store only on a win.
  for (OutputRecord& rec : UsageEstimator::ComputeOutputs(
           *job_, m, copy.input_bytes[static_cast<size_t>(idx)])) {
    copy.outputs.push_back(rec);
  }
  for (MonotaskId dep : mt.intask_dependents) {
    const int didx = IndexInTask(spec, dep);
    CHECK_GT(copy.remaining_deps[static_cast<size_t>(didx)], 0);
    if (--copy.remaining_deps[static_cast<size_t>(didx)] == 0) {
      SubmitSpecMonotask(t, didx);
    }
  }
  CHECK_GT(copy.remaining_monotasks, 0);
  if (--copy.remaining_monotasks == 0) {
    OnSpecWin(t);
  }
}

void JobManager::OnSpecMonotaskFailed(TaskId t, int idx) {
  (void)idx;
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.spec != nullptr);
  const bool solo = rt.primary_lost;
  // Copies get no retries: speculation is best-effort and the straggler
  // detector can always launch a new copy later.
  CancelSpeculativeCopy(t, SpecEnd::kCancelled);
  if (solo) {
    // The copy was the only live execution (primary's worker died): escalate
    // like a worker loss so the task is re-placed from scratch.
    if (fault_stats_ != nullptr) {
      fault_stats_->RecordEscalation();
    }
    ResetTaskForReplacement(t);
  }
}

void JobManager::OnSpecWin(TaskId t) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  const std::unique_ptr<SpecCopy> copy = std::move(rt.spec);
  const TaskSpec& spec = plan().task(t);
  const double now = sim_->Now();
  if (tracer_ != nullptr) {
    tracer_->TaskEvent(now, TraceEventKind::kSpecWon, job_->id, t, spec.stage,
                       copy->worker);
  }
  // 1. Cancel the primary execution: queued monotasks are dequeued before
  // they charge anything; in-flight ones are disarmed and their elapsed busy
  // time flows into the waste counters through the worker's waste sink.
  if (rt.cancel != nullptr) {
    rt.cancel->cancelled = true;
  }
  const bool primary_alive =
      !rt.primary_lost && rt.worker != kInvalidId && !cluster_->worker(rt.worker).failed();
  if (primary_alive) {
    Worker& pworker = cluster_->worker(rt.worker);
    pworker.SweepCancelled();
    pworker.ReleaseMemory(rt.allocated_memory);
    pworker.AddActualMemoryUse(-rt.actual_memory);
  }
  // 2. Monotasks the primary had already finished are duplicate work now.
  for (MonotaskId m : spec.monotasks) {
    const MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
    if (mrt.done) {
      spec_manager_->RecordWaste(now, plan().monotask(m).type, mrt.input_bytes,
                                 EstimateWasteSeconds(m, mrt.input_bytes));
    }
  }
  // 3. Commit the copy's buffered outputs at its worker. This overwrites the
  // primary's partial Puts, so lineage tracks the surviving replica. No
  // consumer has read the primary's entries: downstream tasks only read
  // after this task completes.
  for (const OutputRecord& rec : copy->outputs) {
    cluster_->metadata().Put(job_->id, rec.data, rec.partition, rec.bytes, copy->worker);
  }
  // 4. Catch up per-monotask accounting for work the primary never finished,
  // so a later lineage reset of this task round-trips correctly.
  for (size_t i = 0; i < spec.monotasks.size(); ++i) {
    const MonotaskId m = spec.monotasks[i];
    MonotaskRuntime& mrt = monotasks_[static_cast<size_t>(m)];
    if (mrt.done) {
      continue;
    }
    mrt.done = true;
    mrt.submitted = true;
    mrt.attempts = 0;
    mrt.input_bytes = copy->input_bytes[i];
    if (journal_ != nullptr) {
      journal_->Append({JournalKind::kMonoDone, job_->id, m, copy->worker,
                        rt.generation, mrt.input_bytes, 0.0, now});
    }
    const MonotaskSpec& mt = plan().monotask(m);
    auto& remaining = remaining_work_[static_cast<size_t>(mt.type)];
    remaining = std::max(remaining - mrt.input_bytes, 0.0);
    if (mt.type == ResourceType::kCpu) {
      const CollapsedOp& cop = plan().cop(mt.cop);
      cpu_seconds_used_ +=
          (cop.cost.fixed_cpu_work + mrt.input_bytes * cop.cost.cpu_complexity) /
          cluster_->config().worker.cpu_byte_rate;
    }
    listener_->OnMonotaskCompleted(job_->id, mt.type, mrt.input_bytes);
  }
  rt.remaining_monotasks = 0;
  // 5. The copy's worker inherits the task; CompleteTask releases the copy's
  // memory there and records completion against it.
  rt.worker = copy->worker;
  rt.allocated_memory = copy->allocated_memory;
  rt.actual_memory = copy->actual_memory;
  rt.primary_lost = false;
  spec_manager_->OnWon();
  CompleteTask(t);
}

void JobManager::CancelSpeculativeCopy(TaskId t, SpecEnd reason) {
  TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
  CHECK(rt.spec != nullptr);
  const std::unique_ptr<SpecCopy> copy = std::move(rt.spec);
  const TaskSpec& spec = plan().task(t);
  const double now = sim_->Now();
  copy->cancel->cancelled = true;
  Worker& worker = cluster_->worker(copy->worker);
  if (!worker.failed()) {
    // Dequeue the copy's queued monotasks and disarm in-flight ones (their
    // busy time reaches the waste counters via the worker's waste sink).
    worker.SweepCancelled();
    worker.ReleaseMemory(copy->allocated_memory);
    worker.AddActualMemoryUse(-copy->actual_memory);
  }
  // Monotasks the copy finished are pure duplicate work.
  for (size_t i = 0; i < spec.monotasks.size(); ++i) {
    if (!copy->done[i]) {
      continue;
    }
    const MonotaskId m = spec.monotasks[i];
    spec_manager_->RecordWaste(now, plan().monotask(m).type, copy->input_bytes[i],
                               EstimateWasteSeconds(m, copy->input_bytes[i]));
  }
  if (reason == SpecEnd::kLost) {
    spec_manager_->OnLost();
  } else {
    spec_manager_->OnCancelled();
  }
  if (tracer_ != nullptr) {
    tracer_->TaskEvent(now,
                       reason == SpecEnd::kLost ? TraceEventKind::kSpecLost
                                                : TraceEventKind::kSpecCancelled,
                       job_->id, t, spec.stage, copy->worker);
  }
}

void JobManager::HandleWorkerFailureForSpeculation(WorkerId worker) {
  if (spec_manager_ == nullptr || aborted_ || finished()) {
    return;
  }
  for (const TaskSpec& task : plan().tasks()) {
    TaskRuntime& rt = tasks_[static_cast<size_t>(task.id)];
    if (rt.spec != nullptr && rt.spec->worker == worker) {
      // Copies die with their worker; the primary (or lineage) carries on.
      CancelSpeculativeCopy(task.id, SpecEnd::kCancelled);
    }
    if (rt.state == TaskState::kPlaced && rt.worker == worker && rt.spec != nullptr) {
      // A live copy elsewhere survives the primary's death: the race becomes
      // a solo run and the task must not be treated as lost. The dead
      // worker's memory ledger was wiped at Fail(); drop the stale claim so
      // a later reset or abort cannot release it against the worker after a
      // rejoin.
      rt.primary_lost = true;
      rt.allocated_memory = 0.0;
      rt.actual_memory = 0.0;
    }
  }
}

double JobManager::EstimateWasteSeconds(MonotaskId m, double input_bytes) const {
  const MonotaskSpec& mt = plan().monotask(m);
  const WorkerConfig& wc = cluster_->config().worker;
  switch (mt.type) {
    case ResourceType::kCpu: {
      const CollapsedOp& cop = plan().cop(mt.cop);
      return (cop.cost.fixed_cpu_work + input_bytes * cop.cost.cpu_complexity) /
             wc.cpu_byte_rate;
    }
    case ResourceType::kDisk:
      return input_bytes / wc.disk_bytes_per_sec;
    case ResourceType::kNetwork:
      return wc.default_net_rate > 0.0 ? input_bytes / wc.default_net_rate : 0.0;
  }
  return 0.0;
}

}  // namespace ursa
